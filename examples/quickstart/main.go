// Quickstart: build the paper's Figure 1 deadlock ring, run it under PFC
// and under Gentle Flow Control, and watch PFC deadlock while GFC keeps
// every flow moving.
package main

import (
	"fmt"

	gfc "github.com/gfcsim/gfc"
)

func run(name string, factory gfc.FlowControlFactory) {
	// Three switches in a cycle, two hosts each; every host sends an
	// unbounded flow two switches clockwise, creating a cyclic buffer
	// dependency with oversubscribed cycle links.
	topo := gfc.RingHosts(3, 2, gfc.DefaultLinkParams())
	sim, err := gfc.NewSimulation(topo, gfc.Options{
		BufferSize:  1000 * gfc.KB,
		Tau:         90 * gfc.Microsecond,
		FlowControl: factory,
	})
	if err != nil {
		panic(err)
	}
	var flows []*gfc.Flow
	for i, path := range gfc.RingClockwisePaths(topo, 3) {
		_ = i
		f := &gfc.Flow{
			ID:   len(flows) + 1,
			Src:  path[0].Node,
			Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
			Path: path,
		}
		if err := sim.AddFlow(f, 0); err != nil {
			panic(err)
		}
		flows = append(flows, f)
	}
	// Add the sibling hosts' flows too (they share the same pattern).
	for i := 0; i < 3; i++ {
		src := fmt.Sprintf("H%db", i+1)
		s1 := fmt.Sprintf("S%d", i+1)
		s2 := fmt.Sprintf("S%d", (i+1)%3+1)
		s3 := fmt.Sprintf("S%d", (i+2)%3+1)
		dst := fmt.Sprintf("H%db", (i+2)%3+1)
		path, err := gfc.ExplicitPath(topo, src, s1, s2, s3, dst)
		if err != nil {
			panic(err)
		}
		f := &gfc.Flow{
			ID:   len(flows) + 1,
			Src:  path[0].Node,
			Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
			Path: path,
		}
		if err := sim.AddFlow(f, 0); err != nil {
			panic(err)
		}
		flows = append(flows, f)
	}

	det := gfc.NewDeadlockDetector(sim)
	det.Install()
	sim.Run(100 * gfc.Millisecond)

	var delivered gfc.Size
	for _, f := range flows {
		delivered += f.Delivered
	}
	fmt.Printf("%-12s delivered=%-10v drops=%d ", name, delivered, sim.Drops())
	if rep := det.Deadlocked(); rep != nil {
		fmt.Printf("DEADLOCK at %v (cycle of %d channels)\n", rep.At, len(rep.Cycle))
	} else {
		fmt.Println("no deadlock — all buffers kept draining")
	}
}

func main() {
	fmt.Println("Figure 1 deadlock ring, 6 unbounded flows, 100 ms:")
	run("PFC", gfc.NewPFC(gfc.PFCConfig{XOFF: 800 * gfc.KB, XON: 797 * gfc.KB}))
	run("GFC", gfc.NewGFCBuffer(gfc.GFCBufferConfig{B1: 750 * gfc.KB}))
}
