// Mini Table 1: generate random fat-tree failure scenarios, pre-filter the
// CBD-prone ones statically, drive them with the enterprise workload and
// count deadlock cases per flow-control scheme. A reduced-scale version of
// the paper's §6.2.3 sweep; cmd/gfcsim runs the full one.
//
// Scenarios are simulated in parallel (-workers); each is a share-nothing
// Network seeded from its index and results are folded in scenario order,
// so the output is byte-identical for every worker count.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	gfc "github.com/gfcsim/gfc"
	"github.com/gfcsim/gfc/internal/runner"
)

// runScenario resolves ref against the scenario registry (or loads it from a
// JSON file when it looks like a path), runs it once with an attached metrics
// registry and prints the verdict — the same declarative path cmd/gfcsim
// -scenario takes, here through the public facade.
func runScenario(ref string) {
	var spec gfc.Scenario
	if strings.ContainsAny(ref, "./\\") {
		loaded, err := gfc.LoadScenario(ref)
		if err != nil {
			panic(err)
		}
		spec = *loaded
	} else {
		var ok bool
		if spec, ok = gfc.GetScenario(ref); !ok {
			panic(fmt.Sprintf("unknown scenario %q; registered: %s",
				ref, strings.Join(gfc.ScenarioNames(), ", ")))
		}
	}
	reg := gfc.NewMetricsRegistry(gfc.MetricsOptions{})
	sim, err := gfc.BuildScenario(spec, &gfc.ScenarioOverrides{Metrics: reg})
	if err != nil {
		panic(err)
	}
	res := sim.Run()
	fmt.Printf("scenario %s (%s): ran to %v\n", res.Name, res.FC, res.End)
	if res.Deadlocked {
		fmt.Printf("  DEADLOCK (%v) at %v\n", res.DeadlockKind, res.DeadlockAt)
	} else if sim.Detector != nil {
		fmt.Println("  no deadlock")
	}
	fmt.Printf("  delivered %v, drops %d, violations %d\n",
		res.Delivered, res.Drops, res.Violations)
}

func main() {
	k := flag.Int("k", 4, "fat-tree arity")
	networks := flag.Int("networks", 120, "random scenarios to scan")
	repeats := flag.Int("repeats", 2, "workload repeats per prone scenario")
	seed := flag.Int64("seed", 1, "base seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "scenarios simulated concurrently")
	metricsOut := flag.String("metrics-out", "", "write per-scheme merged metrics summaries (JSON)")
	faultsFlag := flag.String("faults", "", "fault scenario: a preset name or a JSON spec file path,\ninjected into every simulated run (deterministic per -seed)")
	scenarioFlag := flag.String("scenario", "", "run one declarative scenario instead of the sweep:\na registered name or a JSON spec file path")
	ckptPath := flag.String("checkpoint", "", "JSONL checkpoint file: cells flush as they finish and a\nrerun with the same flags resumes instead of recomputing")
	budgetEvents := flag.Uint64("budget-events", 0, "quarantine any cell whose run exceeds this many events (0 = unlimited)")
	budgetWall := flag.Duration("budget-wall", 0, "quarantine any cell whose run exceeds this wall-clock time (0 = unlimited)")
	flag.Parse()

	// ^C / SIGTERM cancels the sweep at the next governor check; finished
	// cells are already in the checkpoint, and we exit with code 4.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *scenarioFlag != "" {
		runScenario(*scenarioFlag)
		return
	}

	var faultSpec *gfc.FaultSpec
	if *faultsFlag != "" {
		var err error
		if strings.ContainsAny(*faultsFlag, "./\\") {
			faultSpec, err = gfc.LoadFaultSpec(*faultsFlag)
		} else {
			faultSpec, err = gfc.FaultPreset(*faultsFlag)
		}
		if err != nil {
			panic(err)
		}
	}

	type scheme struct {
		name    string
		factory gfc.FlowControlFactory
	}
	schemes := []scheme{
		{"PFC", gfc.NewPFC(gfc.PFCConfig{XOFF: 280 * gfc.KB, XON: 277 * gfc.KB})},
		{"GFC-buffer", gfc.NewGFCBuffer(gfc.GFCBufferConfig{B1: 275 * gfc.KB, Bm: 294 * gfc.KB})},
		{"CBFC", gfc.NewCBFC(gfc.CBFCConfig{Period: 52400 * gfc.Nanosecond})},
		{"GFC-time", gfc.NewGFCTime(gfc.GFCTimeConfig{Period: 52400 * gfc.Nanosecond, B0: 153 * gfc.KB, Bm: 294 * gfc.KB})},
	}

	// outcome is one scenario's result: whether it was CBD-prone and, if
	// so, which schemes deadlocked on any repeat. Per-scheme metrics
	// summaries ride along so the fold below can merge them in scenario
	// order, keeping the aggregate deterministic across worker counts.
	// Fields are exported so a checkpointed cell JSON-round-trips exactly.
	type outcome struct {
		Prone   bool                 `json:"prone,omitempty"`
		Dead    []bool               `json:"dead,omitempty"`
		Metrics []gfc.MetricsSummary `json:"metrics,omitempty"`
	}
	budget := gfc.Budget{MaxEvents: *budgetEvents, MaxWall: *budgetWall}
	wantMetrics := *metricsOut != ""
	jobs := make([]runner.Job[outcome], *networks)
	for i := 0; i < *networks; i++ {
		i := i
		jobs[i] = func(jctx context.Context) (outcome, error) {
			topo := gfc.FatTree(*k, gfc.DefaultLinkParams())
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			topo.FailRandomLinks(rng, 0.05)
			tab := gfc.NewSPF(topo)
			if !gfc.CBDFromAllPairs(topo, tab, gfc.EdgeRacks(topo)).HasCycle() {
				return outcome{}, nil // statically CBD-free: cannot deadlock
			}
			// Compile the fault scenario against this scenario's topology
			// (the failed-link sets differ), once for all schemes/repeats.
			var faultPlan *gfc.FaultPlan
			if faultSpec != nil {
				var err error
				if faultPlan, err = faultSpec.Compile(topo); err != nil {
					return outcome{}, err
				}
			}
			out := outcome{
				Prone:   true,
				Dead:    make([]bool, len(schemes)),
				Metrics: make([]gfc.MetricsSummary, len(schemes)),
			}
			for si, s := range schemes {
				for r := 0; r < *repeats && !out.Dead[si]; r++ {
					var reg *gfc.MetricsRegistry
					if wantMetrics {
						reg = gfc.NewMetricsRegistry(gfc.MetricsOptions{})
					}
					opt := gfc.Options{
						BufferSize:  300 * gfc.KB,
						FlowControl: s.factory,
						Metrics:     reg,
					}
					if faultPlan != nil {
						opt.Faults = faultPlan.NewInjector(*seed*1000 + int64(i*(*repeats)+r))
					}
					sim, err := gfc.NewSimulation(topo, opt)
					if err != nil {
						return outcome{}, err
					}
					gen := gfc.NewTrafficGenerator(sim, tab,
						gfc.EnterpriseWorkload(), gfc.EdgeRacks(topo),
						*seed*1000+int64(i*(*repeats)+r))
					if err := gen.Start(); err != nil {
						return outcome{}, err
					}
					det := gfc.NewDeadlockDetector(sim)
					det.Install()
					if err := sim.RunBounded(jctx, 20*gfc.Millisecond, budget); err != nil {
						return outcome{}, fmt.Errorf("scheme %s repeat %d: %w", s.name, r, err)
					}
					if det.Deadlocked() != nil {
						out.Dead[si] = true
					}
					if reg != nil {
						out.Metrics[si].Merge(reg.Summary())
					}
				}
			}
			return out, nil
		}
	}
	opts := runner.Options[outcome]{
		Workers: *workers,
		Seed:    func(job int) int64 { return *seed + int64(job) },
	}
	if *ckptPath != "" {
		key := fmt.Sprintf("examples/sweep/k=%d/n=%d/r=%d/seed=%d/faults=%s",
			*k, *networks, *repeats, *seed, *faultsFlag)
		store, err := gfc.OpenCheckpoint(*ckptPath, key)
		if err != nil {
			panic(err)
		}
		opts.Checkpoint = store
	}
	results := runner.RunWith(ctx, jobs, opts)
	if opts.Checkpoint != nil {
		if err := opts.Checkpoint.Close(); err != nil {
			panic(err)
		}
	}

	// Quarantine-and-continue: a cell that blew its budget (or was replayed
	// as failed from the checkpoint) is reported and skipped; cancelled
	// cells mean the sweep was interrupted.
	deadlocks := make([]int, len(schemes))
	merged := make([]gfc.MetricsSummary, len(schemes))
	prone, quarantined, interrupted := 0, 0, false
	for i, res := range results {
		if err := res.Err; err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted = true
				continue
			}
			quarantined++
			fmt.Fprintf(os.Stderr, "quarantined %v\n", err)
			continue
		}
		if !res.Value.Prone {
			continue
		}
		prone++
		for si, d := range res.Value.Dead {
			if d {
				deadlocks[si]++
			}
			if wantMetrics {
				merged[si].Merge(res.Value.Metrics[si])
			}
		}
		fmt.Printf("scenario %d/%d is CBD-prone (%d so far)\n", i+1, *networks, prone)
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "interrupted; finished cells are checkpointed, rerun to resume")
		os.Exit(4)
	}
	fmt.Printf("\nk=%d: %d scenarios scanned, %d CBD-prone\n", *k, *networks, prone)
	if faultSpec != nil {
		fmt.Printf("injected faults: %s\n", faultSpec.Name)
	}
	fmt.Println("Deadlock cases (any repeat deadlocked):")
	for si, s := range schemes {
		fmt.Printf("  %-12s %d\n", s.name, deadlocks[si])
	}

	if wantMetrics {
		type schemeSummary struct {
			Scheme  string             `json:"scheme"`
			Summary gfc.MetricsSummary `json:"summary"`
		}
		out := make([]schemeSummary, len(schemes))
		for si, s := range schemes {
			out[si] = schemeSummary{Scheme: s.name, Summary: merged[si]}
		}
		f, err := os.Create(*metricsOut)
		if err != nil {
			panic(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		fmt.Printf("metrics: wrote per-scheme summaries to %s\n", *metricsOut)
	}
	if quarantined > 0 {
		fmt.Fprintf(os.Stderr, "%d cells quarantined by the run governor\n", quarantined)
		os.Exit(3)
	}
}
