// Mini Table 1: generate random fat-tree failure scenarios, pre-filter the
// CBD-prone ones statically, drive them with the enterprise workload and
// count deadlock cases per flow-control scheme. A reduced-scale version of
// the paper's §6.2.3 sweep; cmd/gfcsim runs the full one.
//
// Scenarios are simulated in parallel (-workers); each is a share-nothing
// Network seeded from its index and results are folded in scenario order,
// so the output is byte-identical for every worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"runtime"

	gfc "github.com/gfcsim/gfc"
	"github.com/gfcsim/gfc/internal/runner"
)

func main() {
	k := flag.Int("k", 4, "fat-tree arity")
	networks := flag.Int("networks", 120, "random scenarios to scan")
	repeats := flag.Int("repeats", 2, "workload repeats per prone scenario")
	seed := flag.Int64("seed", 1, "base seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "scenarios simulated concurrently")
	flag.Parse()

	type scheme struct {
		name    string
		factory gfc.FlowControlFactory
	}
	schemes := []scheme{
		{"PFC", gfc.NewPFC(gfc.PFCConfig{XOFF: 280 * gfc.KB, XON: 277 * gfc.KB})},
		{"GFC-buffer", gfc.NewGFCBuffer(gfc.GFCBufferConfig{B1: 275 * gfc.KB, Bm: 294 * gfc.KB})},
		{"CBFC", gfc.NewCBFC(gfc.CBFCConfig{Period: 52400 * gfc.Nanosecond})},
		{"GFC-time", gfc.NewGFCTime(gfc.GFCTimeConfig{Period: 52400 * gfc.Nanosecond, B0: 153 * gfc.KB, Bm: 294 * gfc.KB})},
	}

	// outcome is one scenario's result: whether it was CBD-prone and, if
	// so, which schemes deadlocked on any repeat.
	type outcome struct {
		prone bool
		dead  []bool
	}
	jobs := make([]runner.Job[outcome], *networks)
	for i := 0; i < *networks; i++ {
		i := i
		jobs[i] = func(context.Context) (outcome, error) {
			topo := gfc.FatTree(*k, gfc.DefaultLinkParams())
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			topo.FailRandomLinks(rng, 0.05)
			tab := gfc.NewSPF(topo)
			if !gfc.CBDFromAllPairs(topo, tab, gfc.EdgeRacks(topo)).HasCycle() {
				return outcome{}, nil // statically CBD-free: cannot deadlock
			}
			out := outcome{prone: true, dead: make([]bool, len(schemes))}
			for si, s := range schemes {
				for r := 0; r < *repeats && !out.dead[si]; r++ {
					sim, err := gfc.NewSimulation(topo, gfc.Options{
						BufferSize:  300 * gfc.KB,
						FlowControl: s.factory,
					})
					if err != nil {
						return outcome{}, err
					}
					gen := gfc.NewTrafficGenerator(sim, tab,
						gfc.EnterpriseWorkload(), gfc.EdgeRacks(topo),
						*seed*1000+int64(i*(*repeats)+r))
					if err := gen.Start(); err != nil {
						return outcome{}, err
					}
					det := gfc.NewDeadlockDetector(sim)
					det.Install()
					sim.Run(20 * gfc.Millisecond)
					if det.Deadlocked() != nil {
						out.dead[si] = true
					}
				}
			}
			return out, nil
		}
	}
	results := runner.Run(context.Background(), jobs, *workers)
	if err := runner.FirstErr(results); err != nil {
		panic(err)
	}

	deadlocks := make([]int, len(schemes))
	prone := 0
	for i, res := range results {
		if !res.Value.prone {
			continue
		}
		prone++
		for si, d := range res.Value.dead {
			if d {
				deadlocks[si]++
			}
		}
		fmt.Printf("scenario %d/%d is CBD-prone (%d so far)\n", i+1, *networks, prone)
	}
	fmt.Printf("\nk=%d: %d scenarios scanned, %d CBD-prone\n", *k, *networks, prone)
	fmt.Println("Deadlock cases (any repeat deadlocked):")
	for si, s := range schemes {
		fmt.Printf("  %-12s %d\n", s.name, deadlocks[si])
	}
}
