// Fat-tree deadlock case study (paper Figures 11-14): link failures force
// shortest paths into a cyclic buffer dependency among two core and two
// aggregation switches; four flows exercise the cycle, a fifth squeezes it.
// PFC deadlocks and starves a victim flow; GFC keeps the fabric alive.
package main

import (
	"fmt"

	gfc "github.com/gfcsim/gfc"
)

func buildScenario() (*gfc.Topology, [][]gfc.Hop) {
	topo := gfc.FatTree(4, gfc.DefaultLinkParams())
	// Failures forcing up-down-up detours through the core plane.
	for _, pair := range [][2]string{
		{"C1", "A5"}, {"A1", "C2"}, {"E1", "A2"}, {"E5", "A6"},
	} {
		topo.FailLinkBetween(pair[0], pair[1])
	}
	mustPath := func(names ...string) []gfc.Hop {
		p, err := gfc.ExplicitPath(topo, names...)
		if err != nil {
			panic(err)
		}
		return p
	}
	paths := [][]gfc.Hop{
		// The four CBD flows (C1→A3→C2→A7→C1)...
		mustPath("H0", "E1", "A1", "C1", "A3", "C2", "A5", "E5", "H8"),
		mustPath("H4", "E3", "A3", "C2", "A7", "E7", "H12"),
		mustPath("H9", "E5", "A5", "C2", "A7", "C1", "A1", "E1", "H1"),
		mustPath("H13", "E7", "A7", "C1", "A3", "E3", "H5"),
		// ...the squeeze trigger...
		mustPath("H6", "E4", "A3", "C2", "A7", "E8", "H14"),
		// ...and the victim, which shares switches but avoids the
		// cyclic channels.
		mustPath("H12", "E7", "A7", "C2", "A3", "E3", "H4"),
	}
	return topo, paths
}

func run(name string, factory gfc.FlowControlFactory) {
	topo, paths := buildScenario()
	sim, err := gfc.NewSimulation(topo, gfc.Options{
		BufferSize:  300 * gfc.KB,
		FlowControl: factory,
	})
	if err != nil {
		panic(err)
	}
	var flows []*gfc.Flow
	for i, p := range paths {
		f := &gfc.Flow{
			ID:   i + 1,
			Src:  p[0].Node,
			Dst:  p[len(p)-1].Link.Other(p[len(p)-1].Node),
			Path: p,
		}
		if err := sim.AddFlow(f, 0); err != nil {
			panic(err)
		}
		flows = append(flows, f)
	}
	det := gfc.NewDeadlockDetector(sim)
	det.Install()
	sim.Run(60 * gfc.Millisecond)

	fmt.Printf("%-6s", name)
	if rep := det.Deadlocked(); rep != nil {
		fmt.Printf(" DEADLOCK at %-10v", rep.At)
	} else {
		fmt.Printf(" no deadlock        ")
	}
	victim := flows[len(flows)-1]
	fmt.Printf(" victim(H12→H4)=%-10v drops=%d  per-flow: ",
		gfc.RateOf(victim.Delivered, sim.Now()), sim.Drops())
	for _, f := range flows[:4] {
		fmt.Printf("%.2fG ", gfc.RateOf(f.Delivered, sim.Now()).Gigabits())
	}
	fmt.Println()
}

func main() {
	fmt.Println("k=4 fat-tree, 4 failed links, CBD C1→A3→C2→A7→C1, 60 ms:")
	run("PFC", gfc.NewPFC(gfc.PFCConfig{XOFF: 280 * gfc.KB, XON: 277 * gfc.KB}))
	run("CBFC", gfc.NewCBFC(gfc.CBFCConfig{Period: 52400 * gfc.Nanosecond}))
	run("GFC", gfc.NewGFCBuffer(gfc.GFCBufferConfig{B1: 275 * gfc.KB, Bm: 294 * gfc.KB}))
}
