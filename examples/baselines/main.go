// Baselines: compare GFC against the related-work deadlock-handling
// families (paper §8) on the deadlock ring — Up*/Down* routing, dateline
// virtual channels, Tagger-style priority escalation and detect-and-drop
// recovery.
package main

import (
	"fmt"

	gfc "github.com/gfcsim/gfc"
)

func ringPaths(topo *gfc.Topology) [][]gfc.Hop {
	var out [][]gfc.Hop
	for i := 0; i < 3; i++ {
		for _, suffix := range []string{"", "b"} {
			src := fmt.Sprintf("H%d%s", i+1, suffix)
			dst := fmt.Sprintf("H%d%s", (i+2)%3+1, suffix)
			p, err := gfc.ExplicitPath(topo, src,
				fmt.Sprintf("S%d", i+1),
				fmt.Sprintf("S%d", (i+1)%3+1),
				fmt.Sprintf("S%d", (i+2)%3+1),
				dst)
			if err != nil {
				panic(err)
			}
			out = append(out, p)
		}
	}
	return out
}

func run(name string, prios int, esc func(*gfc.Packet, gfc.NodeID) int,
	factory gfc.FlowControlFactory, recovery bool) {
	topo := gfc.RingHosts(3, 2, gfc.DefaultLinkParams())
	sim, err := gfc.NewSimulation(topo, gfc.Options{
		BufferSize:  1000 * gfc.KB,
		Tau:         90 * gfc.Microsecond,
		Priorities:  prios,
		FlowControl: factory,
		Escalation:  esc,
	})
	if err != nil {
		panic(err)
	}
	for i, p := range ringPaths(topo) {
		f := &gfc.Flow{ID: i + 1, Src: p[0].Node,
			Dst:  p[len(p)-1].Link.Other(p[len(p)-1].Node),
			Path: p}
		if err := sim.AddFlow(f, 0); err != nil {
			panic(err)
		}
	}
	det := gfc.NewDeadlockDetector(sim)
	det.Install()
	var rec *gfc.DeadlockRecovery
	if recovery {
		rec = gfc.NewDeadlockRecovery(sim)
		rec.Install()
	}
	sim.Run(100 * gfc.Millisecond)
	verdict := "no deadlock"
	if det.Deadlocked() != nil {
		verdict = "DEADLOCK"
	}
	extra := ""
	if rec != nil {
		extra = fmt.Sprintf(" (interventions: %d)", rec.Interventions)
	}
	fmt.Printf("%-16s %-12s drops=%-4d delivered=%-10v%s\n",
		name, verdict, sim.Drops(), sim.TotalDelivered(), extra)
}

func main() {
	fmt.Println("Deadlock ring (2 hosts/switch), 100 ms, §8 baselines vs GFC:")
	pfc := gfc.NewPFC(gfc.PFCConfig{XOFF: 800 * gfc.KB, XON: 797 * gfc.KB})
	gentle := gfc.NewGFCBuffer(gfc.GFCBufferConfig{B1: 750 * gfc.KB})

	topoRef := gfc.RingHosts(3, 2, gfc.DefaultLinkParams())
	dateline, err := gfc.DatelineEscalation(topoRef, "S3", "S1")
	if err != nil {
		panic(err)
	}
	tagger, err := gfc.NewTagger(topoRef, ringPaths(topoRef))
	if err != nil {
		panic(err)
	}
	fmt.Printf("(tagger derived %d escalation rules, %d classes)\n\n",
		len(tagger.Rules()), tagger.Classes)

	run("PFC", 1, nil, pfc, false)
	run("PFC+dateline", 2, dateline, pfc, false)
	run("PFC+tagger", tagger.Classes, tagger.Escalation(), pfc, false)
	run("PFC+recovery", 1, nil, pfc, true)
	run("GFC", 1, nil, gentle, false)

	ud, err := gfc.NewUpDown(topoRef)
	if err != nil {
		panic(err)
	}
	stretch, inflated, err := ud.AllPairsStretch(gfc.NewSPF(topoRef))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nUp*/Down* routing: CBD-free by construction; mean path stretch %.2f, %.0f%% pairs inflated\n",
		stretch, inflated*100)
}
