// DCQCN interaction study (paper §7, Figure 20): an 8-to-1 incast on a
// dumbbell with both buffer-based GFC (hop-by-hop) and DCQCN (end-to-end)
// active. GFC caps the port rate within a hop RTT of the onset; DCQCN then
// converges to the fair share, leaving GFC inactive — flow control as a
// safeguard, congestion control in charge.
package main

import (
	"fmt"

	gfc "github.com/gfcsim/gfc"
)

func main() {
	topo := gfc.Dumbbell(8, gfc.DefaultLinkParams())
	sim, err := gfc.NewSimulation(topo, gfc.Options{
		BufferSize:   300 * gfc.KB,
		ECNThreshold: 40 * gfc.KB, // DCQCN marking threshold K
		FlowControl:  gfc.NewGFCBuffer(gfc.GFCBufferConfig{}),
	})
	if err != nil {
		panic(err)
	}
	tab := gfc.NewSPF(topo)
	recv := topo.MustLookup("H9")
	var rps []*gfc.DCQCNReactionPoint
	var flows []*gfc.Flow
	for i := 1; i <= 8; i++ {
		src := topo.MustLookup(fmt.Sprintf("H%d", i))
		path, err := tab.Path(src, recv, uint64(i))
		if err != nil {
			panic(err)
		}
		f := &gfc.Flow{ID: i, Src: src, Dst: recv, Path: path}
		rps = append(rps, gfc.AttachDCQCN(sim, f, gfc.DefaultDCQCNConfig(10*gfc.Gbps)))
		if err := sim.AddFlow(f, 0); err != nil {
			panic(err)
		}
		flows = append(flows, f)
	}

	h1 := topo.MustLookup("H1")
	fmt.Println("t(ms)   GFC port rate   DCQCN rate(H1)  queue(S1<-H1)")
	var sample func()
	sample = func() {
		fmt.Printf("%5.1f   %-15v %-15v %v\n",
			sim.Now().Millis(),
			sim.SenderRate(h1, 0, 0),
			rps[0].Rate(),
			sim.IngressQueue(topo.MustLookup("S1"), 0, 0))
		if sim.Now() < 20*gfc.Millisecond {
			sim.Engine().After(2*gfc.Millisecond, sample)
		}
	}
	sim.Engine().After(100*gfc.Microsecond, sample)
	sim.Run(20 * gfc.Millisecond)

	var total gfc.Size
	for _, f := range flows {
		total += f.Delivered
	}
	fmt.Printf("\naggregate goodput %v over 20ms (bottleneck 10G), drops=%d\n",
		gfc.RateOf(total, sim.Now()), sim.Drops())
}
