// Command benchjson runs the repository's hot-path benchmarks — the netsim
// forwarding loops and the eventsim Schedule/Step microbenchmarks — and
// emits one machine-readable JSON report with the derived throughput
// figures: ns/event, events/sec and allocs/op per benchmark. The committed
// BENCH_6.json at the repo root is one such report from a CI-class run;
// regenerate it with:
//
//	go run ./cmd/benchjson -out BENCH_6.json
//
// benchjson shells out to `go test -bench` rather than linking the
// benchmarks in, so the numbers come from exactly the same harness a
// developer runs by hand, and the tool stays decoupled from test-internal
// symbols.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

var (
	out       = flag.String("out", "", "write the JSON report here (default stdout)")
	count     = flag.Int("count", 1, "benchmark repetitions (-count); medians are not taken, every run is reported")
	benchtime = flag.String("benchtime", "", "per-benchmark time or iteration budget (-benchtime), e.g. 2s or 100x")
)

// targets are the benchmark suites the report covers: the simulation
// hot path (forwarding, congestion retry, metrics-enabled forwarding) and
// the event-engine core (shallow and deep heap regimes, schedule+cancel).
var targets = []struct {
	pkg     string
	pattern string
}{
	{"./internal/netsim", "BenchmarkLinearForwarding$|BenchmarkCongestedFabric$|BenchmarkLinearForwardingMetrics$"},
	{"./internal/eventsim", "BenchmarkScheduleRun$|BenchmarkEngineScheduleCancel$|BenchmarkScheduleRunDeep$"},
}

// Benchmark is one parsed benchmark line plus its derived rates. EventsPerOp
// comes from the benchmarks' own events/op ReportMetric; benchmarks that
// fire no events (schedule+cancel round trips) carry only the raw ns/op.
type Benchmark struct {
	Name         string  `json:"name"`
	Package      string  `json:"package"`
	Iterations   int64   `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	NsPerEvent   float64 `json:"ns_per_event,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	flag.Parse()
	rep := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, t := range targets {
		args := []string{"test", t.pkg, "-run", "^$", "-bench", t.pattern,
			"-benchmem", "-count", strconv.Itoa(*count)}
		if *benchtime != "" {
			args = append(args, "-benchtime", *benchtime)
		}
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		outBytes, err := cmd.Output()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
			os.Exit(1)
		}
		benches, cpu := parse(string(outBytes), t.pkg)
		if len(benches) == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines in %s output\n", t.pkg)
			os.Exit(1)
		}
		if cpu != "" {
			rep.CPU = cpu
		}
		rep.Benchmarks = append(rep.Benchmarks, benches...)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse extracts benchmark result lines from `go test -bench` output. A line
// looks like:
//
//	BenchmarkName-8   1992   683126 ns/op   6638 events/op   19128 B/op   157 allocs/op
//
// i.e. the name, the iteration count, then value/unit pairs.
func parse(output, pkg string) (benches []Benchmark, cpu string) {
	for _, line := range strings.Split(output, "\n") {
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       strings.SplitN(fields[0], "-", 2)[0],
			Package:    pkg,
			Iterations: iters,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "events/op":
				b.EventsPerOp = v
			case "B/op":
				b.BytesPerOp = int64(v)
			case "allocs/op":
				b.AllocsPerOp = int64(v)
			}
		}
		if b.EventsPerOp > 0 && b.NsPerOp > 0 {
			b.NsPerEvent = b.NsPerOp / b.EventsPerOp
			b.EventsPerSec = b.EventsPerOp * 1e9 / b.NsPerOp
		}
		benches = append(benches, b)
	}
	return benches, cpu
}
