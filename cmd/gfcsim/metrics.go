package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/units"
)

// metricsSink collects one metrics registry per sub-run of an experiment and
// writes them all to -metrics-out at exit. A nil sink (flag unset) is fully
// inert: registry() hands experiments a nil *metrics.Registry, which keeps
// the simulator's observability hooks disabled.
type metricsSink struct {
	path string
	csv  bool
	runs []metricsRun
}

type metricsRun struct {
	name string
	rep  *metrics.Report
	err  error
}

func newMetricsSink(path string) *metricsSink {
	if path == "" {
		return nil
	}
	return &metricsSink{path: path, csv: strings.HasSuffix(path, ".csv")}
}

// registry returns a fresh registry for one simulation run, or nil when the
// sink is disabled. Each run gets its own instance — a registry binds to
// exactly one network.
func (s *metricsSink) registry() *metrics.Registry {
	if s == nil {
		return nil
	}
	return metrics.New(metrics.Options{SeriesCap: 2048})
}

// record snapshots reg after the named run finished at simulated time at.
func (s *metricsSink) record(name string, reg *metrics.Registry, at units.Time) {
	if s == nil || reg == nil {
		return
	}
	s.runs = append(s.runs, metricsRun{name: name, rep: reg.Report(at), err: reg.Err()})
}

// flush writes the collected reports and then returns the first invariant
// violation (the report is written first so a failing run still leaves its
// evidence on disk).
func (s *metricsSink) flush() error {
	if s == nil || len(s.runs) == 0 {
		return nil
	}
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	defer f.Close()
	if s.csv {
		err = s.writeCSV(f)
	} else {
		err = s.writeJSON(f)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "metrics: wrote %d run report(s) to %s\n", len(s.runs), s.path)
	for _, r := range s.runs {
		if r.err != nil {
			return fmt.Errorf("run %s violated invariants: %w", r.name, r.err)
		}
	}
	return nil
}

func (s *metricsSink) writeJSON(f *os.File) error {
	type namedReport struct {
		Run    string          `json:"run"`
		Report *metrics.Report `json:"report"`
	}
	out := make([]namedReport, len(s.runs))
	for i, r := range s.runs {
		out[i] = namedReport{Run: r.name, Report: r.rep}
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func (s *metricsSink) writeCSV(f *os.File) error {
	row := func(cells []string) error {
		_, err := fmt.Fprintln(f, strings.Join(cells, ","))
		return err
	}
	if err := row(append([]string{"run"}, metrics.CSVHeader()...)); err != nil {
		return err
	}
	for _, r := range s.runs {
		for _, rec := range r.rep.CSVRecords() {
			if err := row(append([]string{r.name}, rec...)); err != nil {
				return err
			}
		}
	}
	return nil
}
