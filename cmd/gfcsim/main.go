// Command gfcsim reproduces the evaluation of "Gentle Flow Control:
// Avoiding Deadlock in Lossless Networks" (SIGCOMM 2019). Each experiment
// regenerates the rows or series of one table or figure of the paper.
//
// Usage:
//
//	gfcsim -exp <experiment> [flags]
//	gfcsim -scenario <name | file.json> [flags]
//	gfcsim -list
//
// Experiments: fig5, fig9, fig10, fig12, fig13, fig14, fig15, table1,
// fig16, fig17, fig18, fig19, fig20, faults. See EXPERIMENTS.md for what
// each reports and how it maps to the paper.
//
// -scenario runs one declarative scenario end-to-end: either a registered
// name (-list enumerates the catalogue with per-scenario host counts; it
// includes every figure's canonical setup plus the Clos-scale clos128-* and
// clos1024-* scenarios) or a path to a user-authored spec file in the JSON
// format documented in EXPERIMENTS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"github.com/gfcsim/gfc/internal/experiments"
	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/runner"
	"github.com/gfcsim/gfc/internal/scenario"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/units"
	"github.com/gfcsim/gfc/internal/viz"
)

var (
	expName    = flag.String("exp", "", "experiment to run (fig5, fig9, ..., table1)")
	duration   = flag.Duration("duration", 0, "override simulated duration (e.g. 50ms)")
	networks   = flag.Int("networks", 300, "table1/fig16/fig17: scenarios to scan per scale")
	repeats    = flag.Int("repeats", 3, "table1: workload repeats per scenario")
	scales     = flag.String("scales", "4,8", "table1: comma-separated fat-tree arities")
	seed       = flag.Int64("seed", 1, "base random seed")
	workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "table1/fig16/fig17: scenarios simulated concurrently")
	series     = flag.Bool("series", false, "print raw time-series data points")
	chart      = flag.Bool("chart", false, "render time series as ASCII charts")
	metricsOut = flag.String("metrics-out", "",
		"write per-channel metrics reports (JSON, or CSV when the path ends in .csv)\nand fail on invariant violations; supported by fig9/fig10/fig12/fig13/fig14")
	faultSpec = flag.String("faults", "",
		"fault scenario: a preset name (resume-loss, feedback-loss, feedback-delay,\nflap, degrade) or a path to a JSON spec file; applies to fig9/fig10 and the\nfaults matrix (deterministic per -seed)")
	scenarioName = flag.String("scenario", "",
		"run a declarative scenario: a registered name (see -list) or a path to a\nspec JSON file (format in EXPERIMENTS.md)")
	listScenarios = flag.Bool("list", false, "list the registered scenarios and exit")
	checkpoint    = flag.String("checkpoint", "",
		"sweeps: JSONL checkpoint file; completed cells are flushed as they finish\nand a rerun with the same flags resumes, replaying them instead of recomputing")
	budgetEvents = flag.Uint64("budget-events", 0,
		"abort any single run after this many simulator events (0 = unlimited)")
	budgetWall = flag.Duration("budget-wall", 0,
		"abort any single run after this much wall-clock time (0 = unlimited)")
	budgetHeap = flag.Uint64("budget-heap", 0,
		"abort any single run once the process heap exceeds this many bytes\n(OOM guard, sampled every 64 governor checks; 0 = unlimited)")
	stallEvents = flag.Uint64("stall-events", 0,
		"declare livelock if this many events pass with no sim-time, delivery or\ndrop progress (0 = watchdog off)")
	jobTimeout = flag.Duration("job-timeout", 0,
		"sweeps: per-cell wall-clock deadline; a cell that blows it is quarantined\nand the sweep continues (0 = none)")
	analytic = flag.Bool("analytic", false,
		"sweeps: enforce the network-wide analytic checker on every repeat\n(internal/analytic; violated repeats quarantine their cell; changes the\ncheckpoint key)")
	table1Scale = flag.String("table1-scale", "",
		"table1: preset overriding the count flags — \"ci\" (k=4, 200 networks × 1\nrepeat, checker on: the CI gate) or \"full\" (paper scale: 10000 networks ×\n100 repeats, 1 flow/host, checker on; run with -checkpoint, see\nEXPERIMENTS.md)")
	retries = flag.Int("retries", 2,
		"sweeps: re-run a cell this many times after a transient failure (wall or\nheap budget trip) with seed-derived backoff; deterministic failures —\npanics, invariant violations, event budgets — never retry (0 = off)")
	retryBackoff = flag.Duration("retry-backoff", time.Second,
		"sweeps: base backoff before the first retry; doubles per attempt with\nseed-derived jitter")
	degrade = flag.Bool("degrade", true,
		"sweeps: when a packet cell exhausts its retry budget on transient\nfailures, recompute it on the fluid backend where the analytic model\nvouches for the result (cells it cannot vouch for quarantine); degraded\ncells are marked in provenance and the checkpoint key, and a sweep with\ndegraded cells exits 5")
	backendName = flag.String("backend", "",
		"simulation backend for -scenario and the sweeps: \"packet\" (default;\nreplays every packet), \"fluid\" (network-of-queues rate integration —\norders of magnitude faster, rejects specs it cannot represent faithfully)\nor \"auto\" (fluid where faithful, packet otherwise; sweeps additionally\nre-run cells near the analytic envelope at packet fidelity)")
	cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
)

// ctx is cancelled on SIGINT/SIGTERM so runs stop at the next governor check,
// checkpoints flush, and the process exits with code 4.
var ctx context.Context

// errGovernor marks a run (or sweep cell) stopped by the run governor:
// budget blown, livelock, or quarantined cells. It maps to exit code 3.
var errGovernor = errors.New("run governor tripped")

// errDegraded marks a sweep that completed but holds degraded-fidelity
// (fluid-computed) cells: the numbers are vouched for by the analytic model
// yet below packet fidelity, so scripts get exit code 5 to tell "clean"
// from "self-healed". Quarantined cells (exit 3) take precedence.
var errDegraded = errors.New("sweep completed with degraded-fidelity cells")

// flagBudget assembles the per-run Budget from the -budget-* / -stall-events
// flags; it overlays (and so overrides) any limits block in a scenario spec.
func flagBudget() netsim.Budget {
	return netsim.Budget{
		MaxEvents:   *budgetEvents,
		MaxWall:     *budgetWall,
		MaxHeap:     *budgetHeap,
		StallEvents: *stallEvents,
	}
}

// flagRetry assembles the sweep retry policy from -retries/-retry-backoff.
func flagRetry() runner.Retry {
	return runner.Retry{Max: *retries, BackoffBase: *retryBackoff}
}

// exitCode maps an error to the process exit status: 0 ok, 4 interrupted,
// 3 governor-tripped, 5 degraded-fidelity cells, 1 anything else (2, usage,
// is handled inline).
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.Canceled):
		return 4
	case errors.Is(err, errGovernor):
		return 3
	case errors.Is(err, errDegraded):
		return 5
	default:
		return 1
	}
}

// finish flushes the metrics sink (even after a failed run, so an interrupted
// sweep still writes its partial report), stops any requested profiles —
// finish may os.Exit, so deferred stops would be skipped — and exits
// accordingly.
func finish(err error) {
	if ferr := sink.flush(); err == nil {
		err = ferr
	}
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(exitCode(err))
}

// cpuProfileFile is the open -cpuprofile sink while profiling is running.
var cpuProfileFile *os.File

// startProfiles starts the -cpuprofile collection; -memprofile is written at
// stop time.
func startProfiles() error {
	if *cpuProfile == "" {
		return nil
	}
	f, err := os.Create(*cpuProfile)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	cpuProfileFile = f
	return nil
}

// stopProfiles stops the CPU profile and snapshots the heap (after a GC, so
// the profile reflects live memory, not garbage). Idempotent: finish may run
// on both the scenario and the experiment path.
func stopProfiles() error {
	var err error
	if cpuProfileFile != nil {
		pprof.StopCPUProfile()
		err = cpuProfileFile.Close()
		cpuProfileFile = nil
	}
	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			if err == nil {
				err = ferr
			}
			return err
		}
		runtime.GC()
		if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
			err = werr
		}
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		*memProfile = ""
	}
	return err
}

// sink gathers the per-run metrics registries when -metrics-out is set; nil
// (and inert) otherwise.
var sink *metricsSink

func main() {
	flag.Parse()
	if *listScenarios {
		fmt.Println("Registered scenarios (run with -scenario <name>):")
		for _, name := range scenario.Names() {
			s, _ := scenario.Get(name)
			be := "packet"
			if (scenario.FluidBackend{}).Supports(&s) == nil {
				be = "packet+fluid"
			}
			fmt.Printf("  %-28s %5d hosts  %-12s  %s\n", name, s.Topology.HostCount(), be, s.Description)
		}
		return
	}
	if *expName == "" && *scenarioName == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *expName != "" && *scenarioName != "" {
		fmt.Fprintln(os.Stderr, "give -exp or -scenario, not both")
		os.Exit(2)
	}
	var stop context.CancelFunc
	ctx, stop = signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sink = newMetricsSink(*metricsOut)
	if err := startProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *scenarioName != "" {
		finish(runScenario())
		return
	}
	var err error
	switch *expName {
	case "fig5":
		err = runFig5()
	case "fig9":
		err = runRing(experiments.PFC, experiments.GFCBuf)
	case "fig10":
		err = runRing(experiments.CBFC, experiments.GFCTime)
	case "fig12":
		err = runCaseStudy(experiments.PFC, experiments.GFCBuf)
	case "fig13":
		err = runCaseStudy(experiments.CBFC, experiments.GFCTime)
	case "fig14":
		err = runVictim()
	case "fig15":
		fmt.Print(experiments.Fig15Rows().String())
	case "table1", "fig16", "fig17":
		err = runSweep(*expName)
	case "fig18":
		err = runEvolution()
	case "fig19":
		err = runOverhead()
	case "fig20":
		err = runFig20()
	case "faults":
		err = runFaultMatrix()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expName)
		os.Exit(2)
	}
	finish(err)
}

// runScenario resolves -scenario (registry name or spec file), applies the
// -duration override and runs it to completion.
func runScenario() error {
	var spec scenario.Spec
	if strings.ContainsAny(*scenarioName, "./\\") {
		s, err := scenario.Load(*scenarioName)
		if err != nil {
			return err
		}
		spec = *s
	} else {
		s, ok := scenario.Get(*scenarioName)
		if !ok {
			return fmt.Errorf("unknown scenario %q (pass a .json file, or one of: %s)",
				*scenarioName, strings.Join(scenario.Names(), ", "))
		}
		spec = s
	}
	if *duration > 0 {
		spec.Run.DurationNs = units.Time(*duration)
	}
	if *backendName != "" {
		spec.Sim.Backend = *backendName
	}
	reg := sink.registry()
	sim, err := scenario.BuildBackend(spec, &scenario.Overrides{Metrics: reg})
	if err != nil {
		return err
	}
	res, rerr := sim.RunBounded(ctx, flagBudget())
	if res == nil {
		return rerr
	}
	sink.record(spec.Name, reg, res.End)

	fmt.Printf("scenario %s (%s)\n", spec.Name, spec.Scheme.FC)
	if spec.Description != "" {
		fmt.Printf("  %s\n", spec.Description)
	}
	if res.Backend != "" && res.Backend != "packet" {
		fmt.Printf("  backend: %s\n", res.Backend)
	}
	verdict := "no deadlock"
	if res.Deadlocked {
		verdict = fmt.Sprintf("DEADLOCK (%v) at %v", res.DeadlockKind, res.DeadlockAt)
	} else if ps, ok := sim.(*scenario.Sim); ok && ps.Detector == nil {
		verdict = "deadlock detection off"
	}
	fmt.Printf("  ran to %v: %s\n", res.End, verdict)
	fmt.Printf("  delivered %v, drops %d\n", res.Delivered, res.Drops)
	if reg != nil {
		fmt.Printf("  invariant violations: %d\n", res.Violations)
	}
	if s := res.FaultStats; s != (faults.Stats{}) {
		fmt.Printf("  faults: feedback dropped=%d delayed=%d\n", s.FeedbackDropped, s.FeedbackDelayed)
	}
	if rerr != nil {
		if re := res.Stopped; re != nil && re.Snapshot != nil {
			fmt.Fprint(os.Stderr, re.Snapshot.String())
		}
		if errors.Is(rerr, context.Canceled) {
			return rerr
		}
		return fmt.Errorf("%w: %v", errGovernor, rerr)
	}
	return nil
}

func dur(def units.Time) units.Time {
	if *duration > 0 {
		return units.Time(*duration)
	}
	return def
}

func printSeries(name string, s *stats.Series, max int) {
	if *chart {
		c := viz.DefaultChart(name)
		switch {
		case strings.Contains(name, "rate"):
			c.FormatY = viz.FormatRate
		case strings.Contains(name, "queue"):
			c.FormatY = viz.FormatSize
		}
		fmt.Print(c.Render(s))
	}
	if !*series {
		return
	}
	d := s.Downsample(max)
	fmt.Printf("# %s\n", name)
	for i := range d.T {
		fmt.Printf("%.3f\t%.0f\n", d.T[i].Millis(), d.V[i])
	}
}

func runFig5() error {
	fmt.Println("Figure 5: input rate and queue evolution, 2-to-1 congestion (C=10G, τ=25µs)")
	for _, fc := range []experiments.FC{experiments.PFC, experiments.GFCConceptual} {
		res, err := experiments.RunFig5(fc, dur(20*units.Millisecond))
		if err != nil {
			return err
		}
		fmt.Printf("%-16s steady queue %-8v (paper: PFC saws at XON/XOFF=77/80KB; GFC settles at B_s=75KB) drops=%d\n",
			res.FC, res.SteadyQueue, res.Drops)
		printSeries(string(res.FC)+" queue (bytes)", res.Queue, 60)
		printSeries(string(res.FC)+" rate (bps)", res.Rate, 60)
	}
	return nil
}

func runRing(pause, gentle experiments.FC) error {
	spec, err := loadFaultSpec()
	if err != nil {
		return err
	}
	// ringFaults compiles the -faults scenario against the exact ring the
	// section simulates; nil when no scenario was requested.
	ringFaults := func(hostsPerSwitch int) (*faults.Plan, error) {
		if spec == nil {
			return nil, nil
		}
		return spec.Compile(experiments.RingTopology(hostsPerSwitch))
	}
	fmt.Printf("Figures 9/10: 3-switch ring, testbed parameters (1MB buffers, τ=90µs)\n")
	if spec != nil {
		fmt.Printf("with injected faults: %s (seed %d)\n", spec.Name, *seed)
	}
	fmt.Println("\n(a) deadlock formation regime (2 hosts/switch):")
	plan, err := ringFaults(2)
	if err != nil {
		return err
	}
	for _, fc := range []experiments.FC{pause, gentle} {
		reg := sink.registry()
		d := dur(200 * units.Millisecond)
		res, err := experiments.RunRing(experiments.RingConfig{
			FC: fc, Duration: d, HostsPerSwitch: 2, Metrics: reg,
			Faults: plan, FaultSeed: *seed,
		})
		if err != nil {
			return err
		}
		sink.record("ring-formation-"+string(fc), reg, d)
		verdict := "no deadlock"
		if res.Deadlocked {
			verdict = fmt.Sprintf("DEADLOCK (%v) at %v", res.DeadlockKind, res.DeadlockAt)
		}
		fmt.Printf("  %-12s %-34s drops=%d%s\n", fc, verdict, res.Drops, faultNote(res))
	}
	fmt.Println("\n(b) steady state, critically loaded (1 host/switch):")
	if plan, err = ringFaults(1); err != nil {
		return err
	}
	for _, fc := range []experiments.FC{pause, gentle} {
		reg := sink.registry()
		d := dur(60 * units.Millisecond)
		cfg := experiments.RingConfig{
			FC: fc, Duration: d, Metrics: reg,
			Faults: plan, FaultSeed: *seed,
		}
		if plan != nil && fc == experiments.GFCBuf {
			// Loss repair under faulted feedback, as in the matrix.
			cfg.Refresh = 90 * units.Microsecond
		}
		res, err := experiments.RunRing(cfg)
		if err != nil {
			return err
		}
		sink.record("ring-steady-"+string(fc), reg, d)
		fmt.Printf("  %-12s steady queue %-9v steady rate %-9v (paper GFC: ≈840KB/5G buffer-based, ≈745KB/5G time-based)%s\n",
			fc, res.SteadyQueue, res.SteadyRate, faultNote(res))
		printSeries(string(fc)+" queue", res.Queue, 60)
	}
	return nil
}

// loadFaultSpec resolves the -faults flag: empty means none, a value with
// path-ish characters is a JSON spec file, anything else a preset name.
func loadFaultSpec() (*faults.Spec, error) {
	if *faultSpec == "" {
		return nil, nil
	}
	if strings.ContainsAny(*faultSpec, "./\\") {
		return faults.Load(*faultSpec)
	}
	return faults.Preset(*faultSpec)
}

// faultNote renders a run's injected-fault counters; empty for clean runs.
func faultNote(res *experiments.RingResult) string {
	s := res.FaultStats
	if s == (faults.Stats{}) {
		return ""
	}
	return fmt.Sprintf("  [feedback dropped=%d delayed=%d]", s.FeedbackDropped, s.FeedbackDelayed)
}

func runFaultMatrix() error {
	cfg := experiments.FaultMatrixConfig{
		Duration: dur(60 * units.Millisecond),
		Seed:     *seed,
		Ctx:      ctx,
		Budget:   flagBudget(),
		Retry:    flagRetry(),
	}
	if *faultSpec != "" {
		// The matrix compiles presets by name; restrict the columns to the
		// requested scenario (plus the clean baseline for contrast).
		if _, err := faults.Preset(*faultSpec); err != nil {
			return fmt.Errorf("-exp faults wants a preset name in -faults: %w", err)
		}
		cfg.Scenarios = []string{experiments.CleanScenario, *faultSpec}
	}
	cells, err := experiments.RunFaultMatrix(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Fault matrix: scheme × scenario on the critically loaded fig9 ring")
	fmt.Print(experiments.FaultMatrixRows(cells).String())
	fmt.Println("(resume-loss wedges the on/off schemes shut — one lost RESUME/QRESUME is a permanent")
	fmt.Println(" pause for PFC and BFC alike — while both GFC variants keep every flow progressing,")
	fmt.Println(" lossless, under every scenario; DCFIT convicts only where pause edges close a cycle)")
	return nil
}

func runCaseStudy(pause, gentle experiments.FC) error {
	fmt.Println("Figures 12/13: k=4 fat-tree with failed links, CBD C1→A3→C2→A7→C1")
	fmt.Println("\n(a) deadlock formation (with cross-flow squeeze):")
	for _, fc := range []experiments.FC{pause, gentle} {
		reg := sink.registry()
		d := dur(60 * units.Millisecond)
		res, _, err := experiments.RunCaseStudy(experiments.CaseStudyConfig{
			FC: fc, Duration: d, WithCross: true, Metrics: reg,
		})
		if err != nil {
			return err
		}
		sink.record("casestudy-formation-"+string(fc), reg, d)
		verdict := "no deadlock"
		if res.Deadlocked {
			verdict = fmt.Sprintf("DEADLOCK at %v", res.DeadlockAt)
		}
		fmt.Printf("  %-12s %-22s drops=%d\n", fc, verdict, res.Drops)
	}
	fmt.Println("\n(b) steady state (the paper's four flows):")
	for _, fc := range []experiments.FC{pause, gentle} {
		reg := sink.registry()
		d := dur(60 * units.Millisecond)
		res, _, err := experiments.RunCaseStudy(experiments.CaseStudyConfig{
			FC: fc, Duration: d, Metrics: reg,
		})
		if err != nil {
			return err
		}
		sink.record("casestudy-steady-"+string(fc), reg, d)
		fmt.Printf("  %-12s per-flow rates:", fc)
		for _, r := range res.FlowRates {
			fmt.Printf(" %v", r)
		}
		fmt.Printf("  (paper: 5G each under GFC)\n")
	}
	return nil
}

func runVictim() error {
	fmt.Println("Figure 14: victim flow H12→H4 (shares switches with the CBD, avoids its channels)")
	for _, fc := range experiments.AllFCs() {
		reg := sink.registry()
		d := dur(60 * units.Millisecond)
		res, _, err := experiments.RunCaseStudy(experiments.CaseStudyConfig{
			FC: fc, Duration: d,
			WithCross: true, WithVictim: true, Metrics: reg,
		})
		if err != nil {
			return err
		}
		sink.record("victim-"+string(fc), reg, d)
		verdict := "alive"
		if res.Deadlocked {
			verdict = "DEADLOCK"
		}
		progress := "frozen"
		if res.VictimProgressed {
			progress = "progressing"
		}
		fmt.Printf("  %-12s %-9s victim: %v delivered, %s\n",
			fc, verdict, res.VictimTotal, progress)
	}
	fmt.Println("(paper: the victim freezes once PFC/CBFC deadlock; under GFC it keeps moving)")
	return nil
}

func runSweep(which string) error {
	var ks []int
	for _, s := range splitComma(*scales) {
		var k int
		fmt.Sscanf(s, "%d", &k)
		if k > 0 {
			ks = append(ks, k)
		}
	}
	switch *table1Scale {
	case "", "full":
	case "ci":
		ks = []int{4}
	default:
		return fmt.Errorf("unknown -table1-scale %q (want \"ci\" or \"full\")", *table1Scale)
	}
	results := make(map[int]map[experiments.FC]*experiments.SweepResult)
	quarantined, degradedCells := 0, 0
	for _, k := range ks {
		results[k] = make(map[experiments.FC]*experiments.SweepResult)
		cfg := experiments.DefaultSweep(k)
		cfg.Networks = *networks
		cfg.Repeats = *repeats
		cfg.Seed = *seed
		cfg.Duration = dur(cfg.Duration)
		cfg.Workers = *workers
		cfg.Budget = flagBudget()
		cfg.JobTimeout = *jobTimeout
		cfg.Checkpoint = *checkpoint
		cfg.Analytic = *analytic
		cfg.Backend = *backendName
		cfg.Retry = flagRetry()
		cfg.Degrade = *degrade && *backendName != "fluid"
		switch *table1Scale {
		case "ci":
			// The CI gate: a k=4 slice with the checker enforced, small
			// enough to kill and resume inside a CI step.
			cfg.Networks, cfg.Repeats, cfg.Analytic = 200, 1, true
		case "full":
			// §6.2.3 paper scale. Resumable: run with -checkpoint and the
			// governor flags; see EXPERIMENTS.md for the overnight recipe.
			cfg.Networks, cfg.Repeats = 10000, 100
			cfg.FlowsPerHost, cfg.Analytic = 1, true
		}
		for _, fc := range experiments.AllFCs() {
			fmt.Fprintf(os.Stderr, "sweep k=%d %s...\n", k, fc)
			res, err := experiments.RunSweep(ctx, fc, cfg)
			if err != nil {
				// Interrupted: the checkpoint has every finished cell, so
				// skip the (partial) tables and report the resume path.
				if *checkpoint != "" && errors.Is(err, context.Canceled) {
					fmt.Fprintf(os.Stderr, "interrupted; rerun with -checkpoint %s to resume\n", *checkpoint)
				}
				return err
			}
			if sum := res.ResilienceSummary(); sum != "" {
				fmt.Fprintf(os.Stderr, "self-healing report (k=%d %s):\n%s", k, fc, sum)
			}
			if len(res.Failures) > 0 {
				fmt.Fprintln(os.Stderr, res.FailureSummary())
				quarantined += len(res.Failures)
			}
			degradedCells += len(res.Degraded)
			results[k][fc] = res
		}
	}
	switch which {
	case "table1":
		fmt.Println("Table 1: deadlock cases (paper: PFC=CBFC>0 and falling with scale; GFC=0)")
		fmt.Print(experiments.Table1Rows(results, ks).String())
	case "fig16":
		fmt.Println("Figure 16: average available bandwidth over deadlock-free runs")
		fmt.Print(experiments.Fig16Rows(results, ks).String())
	case "fig17":
		fmt.Println("Figure 17: average slowdown (normalised to the per-scale minimum)")
		fmt.Print(experiments.Fig17Rows(results, ks).String())
	}
	if quarantined > 0 {
		return fmt.Errorf("%w: %d sweep cells quarantined", errGovernor, quarantined)
	}
	if degradedCells > 0 {
		return fmt.Errorf("%w: %d", errDegraded, degradedCells)
	}
	return nil
}

func runEvolution() error {
	fmt.Println("Figure 18: network throughput evolution on a deadlock-prone scenario")
	for _, fc := range []experiments.FC{experiments.PFC, experiments.GFCBuf} {
		cfg := experiments.DefaultEvolution(fc)
		cfg.Duration = dur(cfg.Duration)
		res, err := experiments.RunEvolution(cfg)
		if err != nil {
			return err
		}
		verdict := "no deadlock"
		if res.Deadlocked {
			verdict = fmt.Sprintf("DEADLOCK at %v", res.DeadlockAt)
		}
		fmt.Printf("  %-12s %-22s final aggregate %-10v drops=%d\n",
			fc, verdict, res.FinalRate, res.Drops)
		if *series {
			for i, r := range res.Throughput.Rates() {
				fmt.Printf("%.1f\t%.0f\n", (units.Time(i) * res.Throughput.Width).Millis(), float64(r))
			}
		}
	}
	return nil
}

func runOverhead() error {
	res, err := experiments.RunOverhead(experiments.OverheadConfig{
		Seed: *seed, Duration: dur(10 * units.Millisecond),
	})
	if err != nil {
		return err
	}
	fmt.Println("Figure 19: buffer-based GFC feedback bandwidth per port (fraction of 10G)")
	fmt.Printf("  mean %.4f%%  p99 %.4f%%  max %.4f%%\n",
		res.Mean*100, res.P99*100, res.Max*100)
	fmt.Println("  (paper: mean 0.21%, 99% of ports < 0.4%, max 0.49%)")
	return nil
}

func runFig20() error {
	res, err := experiments.RunFig20(dur(20 * units.Millisecond))
	if err != nil {
		return err
	}
	fmt.Println("Figure 20: GFC + DCQCN interaction (8:1 incast, ECN K=40KB)")
	fmt.Printf("  max ingress queue %v (buffer 300KB), final DCQCN rate %v (fair share 1.25G), drops=%d\n",
		res.MaxQueue, res.FinalDCQCN, res.Drops)
	printSeries("queue", res.Queue, 60)
	printSeries("dcqcn-rate", res.DCQCNRate, 60)
	printSeries("gfc-rate", res.GFCRate, 60)
	return nil
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
