package main

import (
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/scenario"
)

// TestUnknownScenarioListsNames pins the -scenario error UX: a typo'd name
// must come back with the full registry so the user can pick without a
// second -list invocation.
func TestUnknownScenarioListsNames(t *testing.T) {
	old := *scenarioName
	defer func() { *scenarioName = old }()
	*scenarioName = "definitely-not-registered"
	err := runScenario()
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	for _, name := range scenario.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list %q: %v", name, err)
		}
	}
}

func TestSplitComma(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"4,8", []string{"4", "8"}},
		{"4", []string{"4"}},
		{"", nil},
		{"4,8,16", []string{"4", "8", "16"}},
		{"4,", []string{"4"}},
	}
	for _, c := range cases {
		got := splitComma(c.in)
		if len(got) != len(c.want) {
			t.Errorf("splitComma(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitComma(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}
