package main

import (
	"testing"
)

func TestSplitComma(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"4,8", []string{"4", "8"}},
		{"4", []string{"4"}},
		{"", nil},
		{"4,8,16", []string{"4", "8", "16"}},
		{"4,", []string{"4"}},
	}
	for _, c := range cases {
		got := splitComma(c.in)
		if len(got) != len(c.want) {
			t.Errorf("splitComma(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitComma(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}
