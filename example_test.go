package gfc_test

import (
	"fmt"

	gfc "github.com/gfcsim/gfc"
)

// ExampleNewSimulation runs the paper's Figure 1 scenario under Gentle Flow
// Control and confirms no deadlock forms.
func ExampleNewSimulation() {
	topo := gfc.Ring(3, gfc.DefaultLinkParams())
	sim, err := gfc.NewSimulation(topo, gfc.Options{
		BufferSize:  1000 * gfc.KB,
		Tau:         90 * gfc.Microsecond,
		FlowControl: gfc.NewGFCBuffer(gfc.GFCBufferConfig{}),
	})
	if err != nil {
		panic(err)
	}
	for _, path := range gfc.RingClockwisePaths(topo, 3) {
		f := &gfc.Flow{
			Src:  path[0].Node,
			Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
			Path: path,
		}
		if err := sim.AddFlow(f, 0); err != nil {
			panic(err)
		}
	}
	det := gfc.NewDeadlockDetector(sim)
	det.Install()
	sim.Run(20 * gfc.Millisecond)
	fmt.Println("deadlocked:", det.Deadlocked() != nil)
	fmt.Println("lossless:", sim.Drops() == 0)
	// Output:
	// deadlocked: false
	// lossless: true
}

// ExampleNewSafeStageTable derives the §5.4 buffer-based GFC parameters for
// a 10 GbE port.
func ExampleNewSafeStageTable() {
	c := 10 * gfc.Gbps
	tau := gfc.Tau(c, 1500*gfc.Byte, gfc.Microsecond, 3*gfc.Microsecond)
	bm := 1000 * gfc.KB
	b1 := gfc.BufferBasedB1Bound(bm, c, tau)
	table, err := gfc.NewSafeStageTable(c, bm, b1, tau)
	if err != nil {
		panic(err)
	}
	fmt.Println("tau:", tau)
	fmt.Println("R1:", table.StageRate(1))
	fmt.Println("R2:", table.StageRate(2))
	// Output:
	// tau: 7.4µs
	// R1: 5Gbps
	// R2: 2.5Gbps
}

// ExampleContinuousMapping shows the Figure 5 steady state: with a 5 Gb/s
// draining rate the queue settles at B_s = 75 KB.
func ExampleContinuousMapping() {
	m := gfc.ContinuousMapping{C: 10 * gfc.Gbps, B0: 50 * gfc.KB, Bm: 100 * gfc.KB}
	fmt.Println("B_s:", m.SteadyQueue(5*gfc.Gbps))
	fmt.Println("rate at B_s:", m.Rate(75*gfc.KB))
	// Output:
	// B_s: 75KB
	// rate at B_s: 5Gbps
}

// ExampleCBDFromAllPairs checks a topology for cyclic buffer dependencies
// before deployment.
func ExampleCBDFromAllPairs() {
	topo := gfc.FatTree(4, gfc.DefaultLinkParams())
	tab := gfc.NewSPF(topo)
	g := gfc.CBDFromAllPairs(topo, tab, gfc.EdgeRacks(topo))
	fmt.Println("CBD possible:", g.HasCycle())
	// Output:
	// CBD possible: false
}
