// Package gfc is a packet-level simulation library for lossless network
// fabrics, built around Gentle Flow Control (GFC) — the deadlock-avoiding
// hop-by-hop flow control of Qian, Cheng, Zhang and Ren, "Gentle Flow
// Control: Avoiding Deadlock in Lossless Networks", SIGCOMM 2019.
//
// The library provides:
//
//   - the GFC mapping functions, parameter bounds (Theorems 4.1/5.1) and
//     rate-limiter model of the paper, alongside reference implementations
//     of PFC (IEEE 802.1Qbb) and InfiniBand credit-based flow control;
//   - a deterministic discrete-event simulator of input-buffered lossless
//     switches with configurable switching disciplines;
//   - topology builders (rings, fat-trees, dumbbells), shortest-path
//     routing, cyclic-buffer-dependency analysis and a runtime deadlock
//     detector;
//   - a deterministic, seeded fault-injection layer (feedback loss, delay
//     and reordering, link flaps, capacity degradation, arrival
//     perturbations) for robustness studies;
//   - the DCQCN congestion control for interaction studies; and
//   - drivers reproducing every table and figure of the paper's evaluation
//     (see the EXPERIMENTS.md of this repository).
//
// # Quick start
//
//	topo := gfc.Ring(3, gfc.DefaultLinkParams())
//	sim, err := gfc.NewSimulation(topo, gfc.Options{
//	        BufferSize:  1000 * gfc.KB,
//	        FlowControl: gfc.NewGFCBuffer(gfc.GFCBufferConfig{}),
//	})
//	...
//	sim.Run(100 * gfc.Millisecond)
//
// See examples/ for complete programs.
package gfc

import (
	"github.com/gfcsim/gfc/internal/baselines"
	"github.com/gfcsim/gfc/internal/cbd"
	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/dcqcn"
	"github.com/gfcsim/gfc/internal/deadlock"
	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/fluid"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/runner"
	"github.com/gfcsim/gfc/internal/scenario"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
	"github.com/gfcsim/gfc/internal/workload"
)

// Quantities.
type (
	// Time is simulation time in nanoseconds.
	Time = units.Time
	// Size is a data amount in bytes.
	Size = units.Size
	// Rate is a data rate in bits per second.
	Rate = units.Rate
)

// Common constants re-exported for building configurations.
const (
	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second

	Byte = units.Byte
	KB   = units.KB
	MB   = units.MB

	Kbps = units.Kbps
	Mbps = units.Mbps
	Gbps = units.Gbps
)

// TransmissionTime reports how long transmitting s at rate r takes.
func TransmissionTime(s Size, r Rate) Time { return units.TransmissionTime(s, r) }

// RateOf reports the average rate delivering s bytes in d.
func RateOf(s Size, d Time) Rate { return units.RateOf(s, d) }

// Topology modelling.
type (
	// Topology is a network graph of hosts, switches and links.
	Topology = topology.Topology
	// NodeID identifies a node in a Topology.
	NodeID = topology.NodeID
	// LinkParams carries link capacity and propagation delay.
	LinkParams = topology.LinkParams
)

// Topology constructors.
var (
	// NewTopology returns an empty topology.
	NewTopology = topology.New
	// Ring builds the paper's Figure 1 deadlock ring (n switches, one
	// host each).
	Ring = topology.Ring
	// RingHosts builds an n-switch ring with h hosts per switch.
	RingHosts = topology.RingHosts
	// FatTree builds a k-ary fat-tree (Al-Fares et al.).
	FatTree = topology.FatTree
	// Dumbbell builds an n-sender incast dumbbell.
	Dumbbell = topology.Dumbbell
	// Linear builds a chain of switches with one host each.
	Linear = topology.Linear
	// DefaultLinkParams is 10 Gb/s with 1 µs propagation delay.
	DefaultLinkParams = topology.DefaultLinkParams
)

// Routing.
type (
	// RoutingTable holds shortest-path-first routes.
	RoutingTable = routing.Table
	// Hop is one forwarding step of a path.
	Hop = routing.Hop
)

// Routing constructors and helpers.
var (
	// NewSPF computes shortest-path routing toward every host.
	NewSPF = routing.NewSPF
	// ExplicitPath pins a route through named nodes.
	ExplicitPath = routing.ExplicitPath
	// RingClockwisePaths is the Figure 1 traffic pattern.
	RingClockwisePaths = routing.RingClockwisePaths
	// PathLatency is the unloaded one-packet latency of a path.
	PathLatency = routing.PathLatency
)

// Flow control.
type (
	// FlowControlFactory builds a controller per channel and priority.
	FlowControlFactory = flowcontrol.Factory
	// PFCConfig holds PFC XOFF/XON thresholds.
	PFCConfig = flowcontrol.PFCConfig
	// CBFCConfig holds the credit-based flow control period.
	CBFCConfig = flowcontrol.CBFCConfig
	// GFCBufferConfig configures buffer-based GFC (§5.1).
	GFCBufferConfig = flowcontrol.GFCBufferConfig
	// GFCTimeConfig configures time-based GFC (§5.2).
	GFCTimeConfig = flowcontrol.GFCTimeConfig
	// GFCConceptualConfig configures the conceptual design (§4.1).
	GFCConceptualConfig = flowcontrol.GFCConceptualConfig
	// RateLimiter is the §5.3 egress rate limiter model.
	RateLimiter = flowcontrol.RateLimiter
)

// Flow-control constructors.
var (
	// NewPFC builds IEEE 802.1Qbb Priority Flow Control.
	NewPFC = flowcontrol.NewPFC
	// NewPFCDefault derives recommended PFC thresholds.
	NewPFCDefault = flowcontrol.NewPFCDefault
	// NewCBFC builds InfiniBand credit-based flow control.
	NewCBFC = flowcontrol.NewCBFC
	// NewGFCBuffer builds buffer-based Gentle Flow Control.
	NewGFCBuffer = flowcontrol.NewGFCBuffer
	// NewGFCTime builds time-based Gentle Flow Control.
	NewGFCTime = flowcontrol.NewGFCTime
	// NewGFCConceptual builds the conceptual (continuous-feedback) GFC.
	NewGFCConceptual = flowcontrol.NewGFCConceptual
	// RecommendedCBFCPeriod is the InfiniBand feedback period for a
	// link rate.
	RecommendedCBFCPeriod = flowcontrol.RecommendedCBFCPeriod
)

// GFC parameter mathematics (package core of the paper).
type (
	// StageTable is the multi-stage mapping function of practical GFC.
	StageTable = core.StageTable
	// ContinuousMapping is the conceptual linear mapping function.
	ContinuousMapping = core.ContinuousMapping
	// OverheadModel quantifies feedback bandwidth (§4.2).
	OverheadModel = core.OverheadModel
)

// Parameter helpers.
var (
	// Tau bounds the feedback latency per equation (6).
	Tau = core.Tau
	// ConceptualB0Bound is the Theorem 4.1 threshold bound.
	ConceptualB0Bound = core.ConceptualB0Bound
	// TimeBasedB0Bound is the Theorem 5.1 threshold bound.
	TimeBasedB0Bound = core.TimeBasedB0Bound
	// BufferBasedB1Bound is the §5.4 first-stage bound B_m − 2Cτ.
	BufferBasedB1Bound = core.BufferBasedB1Bound
	// NewStageTable constructs a stage table.
	NewStageTable = core.NewStageTable
	// NewSafeStageTable constructs a stage table enforcing the bound.
	NewSafeStageTable = core.NewSafeStageTable
)

// Simulation.
type (
	// Options configures a simulation (buffer sizes, flow control,
	// switching discipline, tracing, ...).
	Options = netsim.Config
	// Simulation is a runnable network instance.
	Simulation = netsim.Network
	// Flow is one transfer between hosts.
	Flow = netsim.Flow
	// Packet is one frame in flight.
	Packet = netsim.Packet
	// Trace carries observation hooks.
	Trace = netsim.Trace
	// Scheduling selects the switching discipline.
	Scheduling = netsim.Scheduling
	// Pacer rate-limits a flow at its source.
	Pacer = netsim.Pacer
)

// Switching disciplines.
const (
	// SchedInputQueued is the default: per-input FIFOs with round-robin
	// service and head-of-line blocking, as in the paper's testbed.
	SchedInputQueued = netsim.SchedInputQueued
	// SchedFIFO is a simple output-queued switch.
	SchedFIFO = netsim.SchedFIFO
	// SchedVOQ is per-input virtual output queueing.
	SchedVOQ = netsim.SchedVOQ
	// SchedBlocking models a software switch whose forwarding core
	// stalls on a full egress ring.
	SchedBlocking = netsim.SchedBlocking
)

// NewSimulation builds a simulation of topo under the given options.
func NewSimulation(topo *Topology, opt Options) (*Simulation, error) {
	return netsim.New(topo, opt)
}

// Run governor: Simulation.RunBounded runs under a Budget (event/wall
// limits, livelock watchdog, ctx cancellation) and reports a tripped run as
// a *RunError carrying a flight-recorder Snapshot.
type (
	// Budget bounds one RunBounded call; the zero value only honours ctx.
	Budget = netsim.Budget
	// RunError is the structured verdict of a tripped governor.
	RunError = netsim.RunError
	// RunSnapshot is the flight-recorder state attached to a RunError.
	RunSnapshot = netsim.Snapshot
	// StopReason says why the governor ended a run.
	StopReason = netsim.StopReason
	// CheckpointStore is the sweep checkpoint/resume store (JSONL of
	// completed cells, torn-line tolerant).
	CheckpointStore = runner.Store
)

// Governor stop reasons.
const (
	StopCancelled   = netsim.StopCancelled
	StopEventBudget = netsim.StopEventBudget
	StopWallBudget  = netsim.StopWallBudget
	StopStalled     = netsim.StopStalled
	StopHeapBudget  = netsim.StopHeapBudget
)

// OpenCheckpoint opens (creating if absent) a sweep checkpoint for
// resume-and-append; key identifies the sweep configuration.
func OpenCheckpoint(path, key string) (*CheckpointStore, error) {
	return runner.OpenStore(path, key)
}

// Observability: per-channel counters, occupancy series and runtime
// invariant checking (internal/metrics). Attach a fresh registry via
// Options.Metrics; the simulator keeps it updated at zero cost when nil.
type (
	// MetricsRegistry accumulates per-channel counters for one simulation.
	MetricsRegistry = metrics.Registry
	// MetricsOptions configures a MetricsRegistry.
	MetricsOptions = metrics.Options
	// MetricsReport is a full point-in-time export of a registry.
	MetricsReport = metrics.Report
	// MetricsSummary is the compact roll-up sweeps aggregate.
	MetricsSummary = metrics.Summary
	// InvariantViolation is one recorded invariant failure.
	InvariantViolation = metrics.Violation
	// InvariantError is the structured failure report of a violated run.
	InvariantError = metrics.InvariantError
)

// Observability constructors.
var (
	// NewMetricsRegistry returns an unbound registry to pass via
	// Options.Metrics.
	NewMetricsRegistry = metrics.New
	// ValidateStageTable statically checks a stage table's monotonicity.
	ValidateStageTable = metrics.ValidateStageTable
)

// Deadlock analysis.
type (
	// DeadlockDetector polls a simulation for circular standstill.
	DeadlockDetector = deadlock.Detector
	// DeadlockReport describes a detected deadlock.
	DeadlockReport = deadlock.Report
	// DeadlockKind distinguishes the detector's verdicts.
	DeadlockKind = deadlock.Kind
	// CBDGraph is the static cyclic-buffer-dependency graph.
	CBDGraph = cbd.Graph
)

// Deadlock verdicts.
const (
	// DeadlockCircularWait is the classic cycle of mutually waiting
	// buffers (§2.1).
	DeadlockCircularWait = deadlock.CircularWait
	// DeadlockWedgedChannel is a fault-induced permanent stall: a lost
	// release signal (PFC RESUME, CBFC credit) holding a channel shut.
	DeadlockWedgedChannel = deadlock.WedgedChannel
)

// Deadlock and CBD constructors.
var (
	// NewDeadlockDetector watches a simulation for deadlock.
	NewDeadlockDetector = deadlock.NewDetector
	// NewCBDGraph builds an empty buffer-dependency graph.
	NewCBDGraph = cbd.NewGraph
	// CBDFromAllPairs builds the dependency graph of all host pairs.
	CBDFromAllPairs = cbd.FromAllPairs
)

// Fault injection (deterministic, seeded fault scenarios). Compile a
// FaultSpec against a topology once, then bind one FaultInjector per
// simulation via Options.Faults: the same (plan, seed) pair replays
// bit-identically regardless of what else runs in the process.
type (
	// FaultSpec is a declarative fault scenario (JSON-serialisable).
	FaultSpec = faults.Spec
	// LinkFault is the fault plan of one link pattern.
	LinkFault = faults.LinkFault
	// FeedbackFault drops, delays or reorders flow-control messages.
	FeedbackFault = faults.FeedbackFault
	// LinkFlap takes a link administratively down and back up.
	LinkFlap = faults.Flap
	// LinkDegrade runs a link at a fraction of its capacity for a window.
	LinkDegrade = faults.Degrade
	// HostFault perturbs a host's arrivals (bursts, delayed flow onsets).
	HostFault = faults.HostFault
	// FaultPlan is a spec compiled against one topology (immutable,
	// shareable across runs).
	FaultPlan = faults.Plan
	// FaultInjector executes a plan for one simulation (Options.Faults).
	FaultInjector = faults.Injector
	// FaultStats counts what an injector actually did.
	FaultStats = faults.Stats
)

// Fault-injection constructors.
var (
	// ParseFaultSpec decodes a JSON scenario.
	ParseFaultSpec = faults.Parse
	// LoadFaultSpec reads a JSON scenario file.
	LoadFaultSpec = faults.Load
	// FaultPreset returns a named built-in scenario (see FaultPresetNames).
	FaultPreset = faults.Preset
	// FaultPresetNames lists the built-in scenario names.
	FaultPresetNames = faults.PresetNames
)

// Declarative scenarios: one JSON-serialisable Scenario declares topology,
// routing, workload, scheme, faults and stop conditions, and BuildScenario
// compiles it into a ready-to-run simulation. The registry carries every
// paper figure's canonical setup plus the Clos-scale clos128-* scenarios.
type (
	// Scenario is a complete declarative experiment description.
	Scenario = scenario.Spec
	// ScenarioOverrides carries the runtime-only hooks (traces, prebuilt
	// topologies, metrics) a serialised Scenario cannot express.
	ScenarioOverrides = scenario.Overrides
	// ScenarioSim is a built, ready-to-run scenario.
	ScenarioSim = scenario.Sim
	// ScenarioResult summarises one ScenarioSim.Run.
	ScenarioResult = scenario.Result
	// FC names a flow-control scheme in a Scenario.
	FC = scenario.FC
	// FCParams carries per-scheme parameters (thresholds, periods).
	FCParams = scenario.FCParams
)

// The paper's flow-control schemes, as Scenario scheme names.
const (
	PFC           = scenario.PFC
	CBFC          = scenario.CBFC
	GFCBuffer     = scenario.GFCBuf
	GFCTime       = scenario.GFCTime
	GFCConceptual = scenario.GFCConceptual
)

// Scenario functions.
var (
	// BuildScenario compiles a Scenario (+ optional overrides) into a
	// runnable simulation.
	BuildScenario = scenario.Build
	// ParseScenario decodes a JSON Scenario, rejecting unknown fields.
	ParseScenario = scenario.Parse
	// LoadScenario reads a Scenario from a JSON file.
	LoadScenario = scenario.Load
	// GetScenario returns a registered scenario by name.
	GetScenario = scenario.Get
	// ScenarioNames lists the registered scenarios.
	ScenarioNames = scenario.Names
	// RegisterScenario adds a Scenario to the registry.
	RegisterScenario = scenario.Register
	// AllFCs lists the paper's four schemes in presentation order.
	AllFCs = scenario.AllFCs
)

// Workloads.
type (
	// SizeDist is a flow-size distribution.
	SizeDist = workload.SizeDist
	// TrafficGenerator drives hosts with random inter-rack flows.
	TrafficGenerator = workload.Generator
)

// Workload constructors.
var (
	// EnterpriseWorkload is the paper's Figure 15 flow-size mix.
	EnterpriseWorkload = workload.Enterprise
	// DataMiningWorkload is a heavier-tailed alternative.
	DataMiningWorkload = workload.DataMining
	// NewTrafficGenerator wires a generator to a simulation.
	NewTrafficGenerator = workload.NewGenerator
	// EdgeRacks groups fat-tree hosts into racks by edge switch.
	EdgeRacks = workload.EdgeRacks
)

// Congestion control.
type (
	// DCQCNConfig holds the DCQCN constants.
	DCQCNConfig = dcqcn.Config
	// DCQCNReactionPoint is a per-flow DCQCN sender state machine.
	DCQCNReactionPoint = dcqcn.RP
)

// DCQCN constructors.
var (
	// AttachDCQCN installs DCQCN on a flow.
	AttachDCQCN = dcqcn.Attach
	// DefaultDCQCNConfig is the paper's Figure 20 parameterisation.
	DefaultDCQCNConfig = dcqcn.DefaultConfig
)

// Related-work baselines (§8 of the paper).
type (
	// UpDownRouting is Autonet-style CBD-free Up*/Down* routing.
	UpDownRouting = baselines.UpDown
	// DeadlockRecovery is the reactive detect-and-drop family.
	DeadlockRecovery = baselines.Recovery
	// Tagger is the static priority-escalation scheme of Hu et al.
	Tagger = baselines.Tagger
)

// Baseline constructors.
var (
	// NewUpDown orients a topology for Up*/Down* routing.
	NewUpDown = baselines.NewUpDown
	// DatelineEscalation builds the ring virtual-channel hook.
	DatelineEscalation = baselines.Dateline
	// NewDeadlockRecovery builds a detect-and-drop recovery agent.
	NewDeadlockRecovery = baselines.NewRecovery
	// NewTagger derives priority-escalation rules breaking all CBDs of
	// the given routes.
	NewTagger = baselines.NewTagger
)

// Fluid modelling (the continuous dynamics behind Figures 4–6 and the
// theorems).
type (
	// FluidConfig parameterises a fluid-model run.
	FluidConfig = fluid.Config
	// FluidResult carries the integrated trajectories.
	FluidResult = fluid.Result
)

// Fluid-model helpers.
var (
	// RunFluid integrates one controlled-queue trajectory.
	RunFluid = fluid.Run
	// FluidConstantDrain builds a constant draining rate.
	FluidConstantDrain = fluid.ConstantDrain
	// FluidStepDrain builds a two-phase draining rate.
	FluidStepDrain = fluid.StepDrain
	// RequiredBuffer compares the Theorem 4.1 headroom with an
	// empirical bisection on the fluid model.
	RequiredBuffer = fluid.RequiredBuffer
)
