// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs one experiment per iteration and reports the headline
// quantities as custom metrics; run with -v to get the full rows via b.Log.
// EXPERIMENTS.md records paper-vs-measured values produced by this harness.
package gfc_test

import (
	"context"

	"testing"

	"github.com/gfcsim/gfc/internal/baselines"
	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/deadlock"
	"github.com/gfcsim/gfc/internal/experiments"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// BenchmarkFig5 regenerates Figure 5: queue/rate evolution under PFC vs
// conceptual GFC in a 2-to-1 congestion scenario. Headline: GFC's steady
// queue sits at B_s = 75 KB.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pfc, err := experiments.RunFig5(experiments.PFC, 20*units.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		gfc, err := experiments.RunFig5(experiments.GFCConceptual, 20*units.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(pfc.SteadyQueue)/1e3, "PFC-steadyQ-KB")
			b.ReportMetric(float64(gfc.SteadyQueue)/1e3, "GFC-steadyQ-KB")
			b.Logf("Fig5: PFC steady queue %v (saws at 77..80KB), GFC steady queue %v (paper: B_s=75KB)",
				pfc.SteadyQueue, gfc.SteadyQueue)
		}
	}
}

func benchRing(b *testing.B, pause, gentle experiments.FC) {
	for i := 0; i < b.N; i++ {
		dead, err := experiments.RunRing(experiments.RingConfig{
			FC: pause, Duration: 150 * units.Millisecond, HostsPerSwitch: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		steady, err := experiments.RunRing(experiments.RingConfig{
			FC: gentle, Duration: 50 * units.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			deadAt := float64(-1)
			if dead.Deadlocked {
				deadAt = dead.DeadlockAt.Millis()
			}
			b.ReportMetric(deadAt, string(pause)+"-deadlock-ms")
			b.ReportMetric(float64(steady.SteadyQueue)/1e3, string(gentle)+"-steadyQ-KB")
			b.ReportMetric(steady.SteadyRate.Gigabits(), string(gentle)+"-rate-Gbps")
			b.Logf("%s deadlocked=%v at %v; %s steady queue %v rate %v",
				pause, dead.Deadlocked, dead.DeadlockAt, gentle, steady.SteadyQueue, steady.SteadyRate)
		}
	}
}

// BenchmarkFig9 regenerates Figure 9: PFC deadlocks on the ring while
// buffer-based GFC stabilises (paper: queue ≈840 KB, rate 5 Gb/s).
func BenchmarkFig9(b *testing.B) { benchRing(b, experiments.PFC, experiments.GFCBuf) }

// BenchmarkFig10 regenerates Figure 10: CBFC deadlocks while time-based GFC
// stabilises (paper: queue ≈745 KB, rate 5 Gb/s).
func BenchmarkFig10(b *testing.B) { benchRing(b, experiments.CBFC, experiments.GFCTime) }

func benchCaseStudy(b *testing.B, pause, gentle experiments.FC) {
	for i := 0; i < b.N; i++ {
		dead, _, err := experiments.RunCaseStudy(experiments.CaseStudyConfig{
			FC: pause, Duration: 40 * units.Millisecond, WithCross: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		steady, _, err := experiments.RunCaseStudy(experiments.CaseStudyConfig{
			FC: gentle, Duration: 40 * units.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			deadAt := float64(-1)
			if dead.Deadlocked {
				deadAt = dead.DeadlockAt.Millis()
			}
			var min units.Rate = 100 * units.Gbps
			for _, r := range steady.FlowRates {
				if r < min {
					min = r
				}
			}
			b.ReportMetric(deadAt, string(pause)+"-deadlock-ms")
			b.ReportMetric(min.Gigabits(), string(gentle)+"-minflow-Gbps")
			b.Logf("%s deadlocked=%v at %v; %s flow rates %v (paper: 5G each)",
				pause, dead.Deadlocked, dead.DeadlockAt, gentle, steady.FlowRates)
		}
	}
}

// BenchmarkFig12 regenerates Figure 12: PFC deadlock vs buffer-based GFC
// keeping 5 Gb/s per flow in the fat-tree case study.
func BenchmarkFig12(b *testing.B) { benchCaseStudy(b, experiments.PFC, experiments.GFCBuf) }

// BenchmarkFig13 regenerates Figure 13: CBFC vs time-based GFC.
func BenchmarkFig13(b *testing.B) { benchCaseStudy(b, experiments.CBFC, experiments.GFCTime) }

// BenchmarkFig14 regenerates Figure 14: the victim flow freezes under a
// PFC deadlock but keeps progressing under GFC.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// The long horizon lets the squeezed GFC fabric's trickle show
		// up in the final measurement window (packet gaps reach ~100 ms
		// at the deepest stage). Deadlocked/trickling simulations have
		// very sparse event queues, so this is cheap.
		pfc, _, err := experiments.RunCaseStudy(experiments.CaseStudyConfig{
			FC: experiments.PFC, Duration: 600 * units.Millisecond,
			WithCross: true, WithVictim: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		gfc, _, err := experiments.RunCaseStudy(experiments.CaseStudyConfig{
			FC: experiments.GFCBuf, Duration: 600 * units.Millisecond,
			WithCross: true, WithVictim: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			frozen := 0.0
			if !pfc.VictimProgressed {
				frozen = 1
			}
			alive := 0.0
			if gfc.VictimProgressed {
				alive = 1
			}
			b.ReportMetric(frozen, "PFC-victim-frozen")
			b.ReportMetric(alive, "GFC-victim-alive")
			b.Logf("PFC victim total %v (frozen=%v); GFC victim total %v (progressing=%v)",
				pfc.VictimTotal, !pfc.VictimProgressed, gfc.VictimTotal, gfc.VictimProgressed)
		}
	}
}

// BenchmarkFig15 regenerates the Figure 15 workload CDF.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig15Rows()
		if i == 0 {
			b.Logf("Fig15 enterprise flow-size CDF:\n%s", t.String())
		}
	}
}

// BenchmarkTable1 regenerates Table 1 at reduced scale: deadlock cases per
// scheme among CBD-prone random failure scenarios. Shape: PFC/CBFC > 0 and
// GFC = 0.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultSweep(4)
		results := map[int]map[experiments.FC]*experiments.SweepResult{4: {}}
		for _, fc := range experiments.AllFCs() {
			res, err := experiments.RunSweep(context.Background(), fc, cfg)
			if err != nil {
				b.Fatal(err)
			}
			results[4][fc] = res
		}
		if i == 0 {
			b.ReportMetric(float64(results[4][experiments.PFC].DeadlockCases), "PFC-deadlocks")
			b.ReportMetric(float64(results[4][experiments.CBFC].DeadlockCases), "CBFC-deadlocks")
			b.ReportMetric(float64(results[4][experiments.GFCBuf].DeadlockCases), "GFCbuf-deadlocks")
			b.ReportMetric(float64(results[4][experiments.GFCTime].DeadlockCases), "GFCtime-deadlocks")
			b.Logf("Table 1 (k=4, %d scenarios, %d repeats):\n%s",
				cfg.Networks, cfg.Repeats,
				experiments.Table1Rows(results, []int{4}).String())
			b.Logf("Fig 16 rows:\n%s", experiments.Fig16Rows(results, []int{4}).String())
			b.Logf("Fig 17 rows:\n%s", experiments.Fig17Rows(results, []int{4}).String())
		}
	}
}

// BenchmarkFig16 regenerates Figure 16(a): average available bandwidth on
// CBD-free scenarios is essentially identical across all four schemes.
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := map[int]map[experiments.FC]*experiments.SweepResult{4: {}}
		cfg := experiments.DefaultSweep(4)
		cfg.Networks = 12
		cfg.Repeats = 1
		// Use only CBD-free scenarios: shift seed space to a region and
		// invert the filter by running all scenarios through RunScenario.
		for _, fc := range experiments.AllFCs() {
			out := &experiments.SweepResult{FC: fc, K: 4}
			count := 0
			for s := int64(0); count < cfg.Networks && s < 400; s++ {
				topo, tab, prone := experiments.GenerateScenario(4, 0.05, 9000+s)
				if prone {
					continue // Figure 16(a) uses CBD-free cases
				}
				count++
				res, err := experiments.RunScenario(context.Background(), topo, tab, fc, cfg, 100+s)
				if err != nil {
					b.Fatal(err)
				}
				out.Bandwidth.Add(float64(res.HostBandwidth))
				for _, sl := range res.Slowdowns {
					out.Slowdown.Add(sl)
				}
			}
			results[4][fc] = out
		}
		if i == 0 {
			b.ReportMetric(results[4][experiments.PFC].Bandwidth.Mean()/1e9, "PFC-BW-Gbps")
			b.ReportMetric(results[4][experiments.GFCBuf].Bandwidth.Mean()/1e9, "GFCbuf-BW-Gbps")
			b.Logf("Fig16(a) CBD-free bandwidth:\n%s",
				experiments.Fig16Rows(results, []int{4}).String())
			b.Logf("Fig17(a) CBD-free slowdown:\n%s",
				experiments.Fig17Rows(results, []int{4}).String())
		}
	}
}

// BenchmarkFig17 is covered by the Fig16/Table1 harnesses (the slowdown
// rows come from the same runs); this alias keeps one bench target per
// figure as DESIGN.md promises.
func BenchmarkFig17(b *testing.B) { BenchmarkFig16(b) }

// BenchmarkFig18 regenerates Figure 18: throughput evolution on a
// deadlock-prone scenario — PFC collapses mid-run, GFC keeps the network
// moving.
func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pfc, err := experiments.RunEvolution(experiments.DefaultEvolution(experiments.PFC))
		if err != nil {
			b.Fatal(err)
		}
		gfc, err := experiments.RunEvolution(experiments.DefaultEvolution(experiments.GFCBuf))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			deadAt := float64(-1)
			if pfc.Deadlocked {
				deadAt = pfc.DeadlockAt.Millis()
			}
			b.ReportMetric(deadAt, "PFC-collapse-ms")
			b.ReportMetric(gfc.FinalRate.Gigabits(), "GFC-final-Gbps")
			b.Logf("Fig18: PFC deadlocked=%v at %v final %v; GFC deadlocked=%v final %v (paper: collapse at 8.5ms under PFC)",
				pfc.Deadlocked, pfc.DeadlockAt, pfc.FinalRate, gfc.Deadlocked, gfc.FinalRate)
		}
	}
}

// BenchmarkFig19 regenerates Figure 19: the CDF of buffer-based GFC's
// feedback bandwidth (paper: mean 0.21%, p99 < 0.4%, max 0.49%).
func BenchmarkFig19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunOverhead(experiments.OverheadConfig{
			K: 4, Duration: 10 * units.Millisecond, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Mean*100, "mean-%")
			b.ReportMetric(res.P99*100, "p99-%")
			b.ReportMetric(res.Max*100, "max-%")
			b.Logf("Fig19: mean %.4f%% p99 %.4f%% max %.4f%% (paper: 0.21%% / <0.4%% / 0.49%%)",
				res.Mean*100, res.P99*100, res.Max*100)
		}
	}
}

// BenchmarkFig20 regenerates the Figure 20 interaction study.
func BenchmarkFig20(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig20(20 * units.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.MaxQueue)/1e3, "maxQ-KB")
			b.ReportMetric(res.FinalDCQCN.Gigabits(), "DCQCN-final-Gbps")
			b.Logf("Fig20: max queue %v, final DCQCN rate %v (fair share 1.25G), drops=%d",
				res.MaxQueue, res.FinalDCQCN, res.Drops)
		}
	}
}

// BenchmarkOverheadModel evaluates the closed-form §4.2 bandwidth model
// (worst case m/τ and steady case m/8τ).
func BenchmarkOverheadModel(b *testing.B) {
	tau := core.Tau(10*units.Gbps, 1500*units.Byte, units.Microsecond, 3*units.Microsecond)
	model := core.OverheadModel{MessageSize: 64 * units.Byte, Tau: tau}
	for i := 0; i < b.N; i++ {
		worst := model.WorstCase()
		steady := model.Steady()
		if i == 0 {
			b.ReportMetric(float64(worst)/1e6, "worst-Mbps")
			b.ReportMetric(float64(steady)/1e6, "steady-Mbps")
			b.Logf("§4.2 model at 10GbE (τ=%v): worst %v (paper 69Mbps / 0.69%%), steady %v (paper 8.6Mbps / 0.086%%)",
				tau, worst, steady)
		}
	}
}

// BenchmarkAblationScheduling compares the switching disciplines on the
// fat-tree case study: FIFO output queueing deadlocks PFC even without the
// squeeze flow, while input-queued and VOQ need structural oversubscription
// — the reproduction note DESIGN.md discusses.
func BenchmarkAblationScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var row string
		for _, sched := range []netsim.Scheduling{
			netsim.SchedInputQueued, netsim.SchedFIFO, netsim.SchedVOQ,
		} {
			res, _, err := experiments.RunCaseStudy(experiments.CaseStudyConfig{
				FC: experiments.PFC, Scheduling: sched,
				Duration: 40 * units.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			row += sched.String() + "="
			if res.Deadlocked {
				row += "deadlock "
			} else {
				row += "stable "
			}
		}
		if i == 0 {
			b.Logf("PFC on the static 4-flow case study: %s", row)
		}
	}
}

// BenchmarkAblationTau sweeps the configured feedback latency τ: the safe
// B1 bound B_m − 2Cτ moves earlier as τ grows, so the steady queue settles
// lower — the buffer/latency trade-off behind equation (6) and §5.4.
func BenchmarkAblationTau(b *testing.B) {
	taus := []units.Time{
		10 * units.Microsecond, 45 * units.Microsecond, 90 * units.Microsecond,
	}
	for i := 0; i < b.N; i++ {
		var prev units.Size
		for j, tau := range taus {
			res, err := experiments.RunRing(experiments.RingConfig{
				FC: experiments.GFCBuf, Duration: 30 * units.Millisecond, Tau: tau,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("τ=%v: steady queue %v, steady rate %v", tau, res.SteadyQueue, res.SteadyRate)
				b.ReportMetric(float64(res.SteadyQueue)/1e3,
					"steadyQ-KB-tau"+tau.String())
				if j > 0 && res.SteadyQueue > prev {
					b.Logf("note: steady queue did not shrink with larger τ")
				}
			}
			prev = res.SteadyQueue
		}
	}
}

// BenchmarkAblationBaselines compares GFC with the related-work families
// (§8) on the deadlock ring: Up*/Down* routing (CBD-free by construction,
// at a path-stretch cost), dateline priority escalation (deadlock-free with
// an extra priority class) and detect-and-drop recovery (keeps moving at
// the price of dropped packets). GFC is the only one that is simultaneously
// deadlock-free, lossless, single-class and topology-agnostic.
func BenchmarkAblationBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Up*/Down* path stretch on a 5-ring and a healthy fat-tree.
		ring := topology.Ring(5, topology.DefaultLinkParams())
		ud, err := baselines.NewUpDown(ring)
		if err != nil {
			b.Fatal(err)
		}
		stretch, inflated, err := ud.AllPairsStretch(routing.NewSPF(ring))
		if err != nil {
			b.Fatal(err)
		}

		// Dateline vs plain PFC vs GFC vs recovery on the formation ring.
		type outcome struct {
			name      string
			deadlock  bool
			drops     int64
			delivered units.Size
		}
		var rows []outcome
		run := func(name string, prios int, weights []int,
			esc func(*netsim.Packet, topology.NodeID) int,
			factory flowcontrol.Factory, withRecovery bool) {
			topo := topology.RingHosts(3, 2, topology.DefaultLinkParams())
			cfg := netsim.Config{
				BufferSize:      1000 * units.KB,
				Tau:             90 * units.Microsecond,
				Priorities:      prios,
				PriorityWeights: weights,
				FlowControl:     factory,
				Escalation:      esc,
			}
			n, err := netsim.New(topo, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for fi, path := range routing.RingHostsClockwisePaths(topo, 3, 2) {
				f := &netsim.Flow{ID: fi + 1, Src: path[0].Node,
					Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
					Path: path}
				if err := n.AddFlow(f, 0); err != nil {
					b.Fatal(err)
				}
			}
			det := deadlock.NewDetector(n)
			det.Install()
			if withRecovery {
				rec := baselines.NewRecovery(n)
				rec.Install()
			}
			n.Run(100 * units.Millisecond)
			rows = append(rows, outcome{name, det.Deadlocked() != nil, n.Drops(), n.TotalDelivered()})
		}
		pfc := flowcontrol.NewPFC(flowcontrol.PFCConfig{XOFF: 800 * units.KB, XON: 797 * units.KB})
		gfc := flowcontrol.NewGFCBuffer(flowcontrol.GFCBufferConfig{B1: 750 * units.KB})
		topoRef := topology.RingHosts(3, 2, topology.DefaultLinkParams())
		esc, err := baselines.Dateline(topoRef, "S3", "S1")
		if err != nil {
			b.Fatal(err)
		}
		tg, err := baselines.NewTagger(topoRef,
			routing.RingHostsClockwisePaths(topoRef, 3, 2))
		if err != nil {
			b.Fatal(err)
		}
		run("PFC", 1, nil, nil, pfc, false)
		run("PFC+dateline", 2, nil, esc, pfc, false)
		run("PFC+tagger", tg.Classes, nil, tg.Escalation(), pfc, false)
		run("PFC+recovery", 1, nil, nil, pfc, true)
		run("GFC", 1, nil, nil, gfc, false)

		if i == 0 {
			b.Logf("Up*/Down* on 5-ring: mean stretch %.2f, %.0f%% of pairs inflated (CBD-free by construction)",
				stretch, inflated*100)
			for _, r := range rows {
				b.Logf("%-14s deadlock=%-5v drops=%-4d delivered=%v",
					r.name, r.deadlock, r.drops, r.delivered)
			}
		}
	}
}

// BenchmarkAblationStageRatio compares the per-stage rate ratio of the
// multi-stage mapping: the paper derives r ≤ 3/4 from Theorem 4.1 (equation
// 3) and selects r = 1/2 (equation 4). A larger ratio descends in finer
// steps — smoother rates, higher steady queue for the same B1 bound.
func BenchmarkAblationStageRatio(b *testing.B) {
	run := func(ratio float64) (units.Size, units.Rate) {
		topo := topology.Ring(3, topology.DefaultLinkParams())
		cfg := netsim.Config{
			BufferSize: 1000 * units.KB,
			Tau:        90 * units.Microsecond,
			FlowControl: flowcontrol.NewGFCBuffer(flowcontrol.GFCBufferConfig{
				Ratio: ratio,
			}),
		}
		n, err := netsim.New(topo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var flows []*netsim.Flow
		for fi, path := range routing.RingClockwisePaths(topo, 3) {
			f := &netsim.Flow{ID: fi + 1, Src: path[0].Node,
				Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
				Path: path}
			if err := n.AddFlow(f, 0); err != nil {
				b.Fatal(err)
			}
			flows = append(flows, f)
		}
		n.Run(40 * units.Millisecond)
		if n.Drops() != 0 {
			b.Fatalf("ratio %v dropped %d packets", ratio, n.Drops())
		}
		s1 := topo.MustLookup("S1")
		q := n.IngressQueue(s1, 0, 0)
		var total units.Size
		for _, f := range flows {
			total += f.Delivered
		}
		return q, units.RateOf(total, n.Now()) / 3
	}
	for i := 0; i < b.N; i++ {
		for _, ratio := range []float64{0.5, 0.625, 0.75} {
			q, r := run(ratio)
			if i == 0 {
				b.Logf("ratio %.3f: steady host queue %v, per-flow rate %v", ratio, q, r)
			}
		}
	}
}
