package gfc_test

import (
	"testing"

	gfc "github.com/gfcsim/gfc"
)

// TestPublicAPIQuickstart exercises the façade end to end the way the
// README shows: build the Figure 1 ring, run GFC, observe no deadlock.
func TestPublicAPIQuickstart(t *testing.T) {
	topo := gfc.Ring(3, gfc.DefaultLinkParams())
	sim, err := gfc.NewSimulation(topo, gfc.Options{
		BufferSize:  1000 * gfc.KB,
		Tau:         90 * gfc.Microsecond,
		FlowControl: gfc.NewGFCBuffer(gfc.GFCBufferConfig{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range gfc.RingClockwisePaths(topo, 3) {
		f := &gfc.Flow{
			Src:  path[0].Node,
			Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
			Path: path,
		}
		if err := sim.AddFlow(f, 0); err != nil {
			t.Fatal(err)
		}
	}
	det := gfc.NewDeadlockDetector(sim)
	det.Install()
	sim.Run(20 * gfc.Millisecond)
	if det.Deadlocked() != nil {
		t.Fatal("GFC deadlocked")
	}
	if sim.Drops() != 0 {
		t.Fatalf("drops = %d", sim.Drops())
	}
	if sim.TotalDelivered() == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestPublicAPIMath spot-checks the re-exported parameter mathematics.
func TestPublicAPIMath(t *testing.T) {
	tau := gfc.Tau(10*gfc.Gbps, 1500*gfc.Byte, gfc.Microsecond, 3*gfc.Microsecond)
	if tau < 7*gfc.Microsecond || tau > 8*gfc.Microsecond {
		t.Fatalf("Tau = %v, want ≈7.4µs", tau)
	}
	b1 := gfc.BufferBasedB1Bound(1000*gfc.KB, 10*gfc.Gbps, tau)
	if b1 >= 1000*gfc.KB || b1 <= 900*gfc.KB {
		t.Fatalf("B1 bound = %v", b1)
	}
	st, err := gfc.NewSafeStageTable(10*gfc.Gbps, 1000*gfc.KB, b1, tau)
	if err != nil {
		t.Fatal(err)
	}
	if st.StageRate(1) != 5*gfc.Gbps {
		t.Fatalf("R1 = %v", st.StageRate(1))
	}
	m := gfc.ContinuousMapping{C: 10 * gfc.Gbps, B0: 50 * gfc.KB, Bm: 100 * gfc.KB}
	if m.SteadyQueue(5*gfc.Gbps) != 75*gfc.KB {
		t.Fatal("SteadyQueue wrong through the façade")
	}
}

// TestPublicAPICBD checks the static analysis entry points.
func TestPublicAPICBD(t *testing.T) {
	topo := gfc.FatTree(4, gfc.DefaultLinkParams())
	tab := gfc.NewSPF(topo)
	g := gfc.CBDFromAllPairs(topo, tab, gfc.EdgeRacks(topo))
	if g.HasCycle() {
		t.Fatal("healthy fat-tree reported CBD")
	}
}

// TestPublicAPIWorkload drives the traffic generator through the façade.
func TestPublicAPIWorkload(t *testing.T) {
	topo := gfc.FatTree(4, gfc.DefaultLinkParams())
	sim, err := gfc.NewSimulation(topo, gfc.Options{
		BufferSize:  300 * gfc.KB,
		FlowControl: gfc.NewPFCDefault(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := gfc.NewTrafficGenerator(sim, gfc.NewSPF(topo), gfc.EnterpriseWorkload(), gfc.EdgeRacks(topo), 11)
	if err := gen.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Run(gfc.Millisecond)
	if len(gen.Completed) == 0 {
		t.Fatal("no flows completed")
	}
}
