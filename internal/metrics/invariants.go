package metrics

import (
	"fmt"
	"strings"

	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// ViolationKind enumerates the runtime invariants the registry asserts.
type ViolationKind uint8

// Invariant kinds.
const (
	// ViolationOverflow: an ingress occupancy exceeded its buffer
	// allocation — losslessness is already lost in any real switch.
	ViolationOverflow ViolationKind = iota
	// ViolationDrop: a packet was dropped. The defining failure of a
	// lossless fabric (the simulator admits-or-drops, so overflow
	// normally manifests here).
	ViolationDrop
	// ViolationCeiling: an occupancy exceeded the theorem-derived GFC
	// ceiling (B_m plus the transient headroom the positive floor rate
	// needs, Theorems 4.1/5.1) — the flow control reacted too late.
	ViolationCeiling
	// ViolationStageRange: stage feedback carried a stage ID outside the
	// channel's stage table.
	ViolationStageRange
	// ViolationStageTable: a channel's stage table failed monotonicity
	// validation (thresholds not ascending or rates increasing).
	ViolationStageTable
	// The network-wide kinds below are produced only by CheckNetwork —
	// end-of-run assertions against an analytic prediction, never recorded
	// into the registry. New kinds must keep being appended here so the
	// numeric values of existing ones stay stable.

	// ViolationNetOccupancy: a switch channel's high-water mark exceeded
	// the analytic occupancy envelope for the run's scheme.
	ViolationNetOccupancy
	// ViolationNetThroughput: total delivered bytes exceeded the analytic
	// aggregate throughput bound (host link capacity × duration).
	ViolationNetThroughput
	// ViolationNetProgress: total delivered bytes fell below the analytic
	// progress floor of a run predicted deadlock-free.
	ViolationNetProgress
	// ViolationNetLoss: a run the analysis predicted lossless dropped
	// packets.
	ViolationNetLoss
	// ViolationNetDeadlock: a run the analysis predicted deadlock-free
	// was convicted by its deadlock detector.
	ViolationNetDeadlock
)

func (k ViolationKind) String() string {
	switch k {
	case ViolationOverflow:
		return "overflow"
	case ViolationDrop:
		return "drop"
	case ViolationCeiling:
		return "ceiling"
	case ViolationStageRange:
		return "stage-range"
	case ViolationStageTable:
		return "stage-table"
	case ViolationNetOccupancy:
		return "net-occupancy"
	case ViolationNetThroughput:
		return "net-throughput"
	case ViolationNetProgress:
		return "net-progress"
	case ViolationNetLoss:
		return "net-loss"
	case ViolationNetDeadlock:
		return "net-deadlock"
	default:
		return fmt.Sprintf("violation(%d)", uint8(k))
	}
}

// Violation is one recorded invariant failure, located on its channel.
type Violation struct {
	Kind     ViolationKind
	At       units.Time
	Node     topology.NodeID
	NodeName string
	Port     int
	Prio     int
	From     topology.NodeID
	FromName string
	// Occupancy and Limit carry the violated quantity and its bound
	// (for stage violations: the stage ID and table maximum).
	Occupancy units.Size
	Limit     units.Size
	Detail    string
	// FaultsSoFar is how many faults had been injected when the violation
	// fired — zero means it happened on a clean network; otherwise
	// Registry.Faults()[:FaultsSoFar] are the candidate triggers (the last
	// of them the most likely one).
	FaultsSoFar int64
}

func (v Violation) String() string {
	loc := fmt.Sprintf("%s port %d prio %d (from %s)", v.NodeName, v.Port, v.Prio, v.FromName)
	switch v.Kind {
	case ViolationNetThroughput, ViolationNetProgress, ViolationNetLoss, ViolationNetDeadlock:
		return fmt.Sprintf("%v %s network-wide: %s (%d vs bound %d)",
			v.At, v.Kind, v.Detail, int64(v.Occupancy), int64(v.Limit))
	case ViolationStageRange:
		return fmt.Sprintf("%v %s at %s: stage %d outside table (max %d)",
			v.At, v.Kind, loc, int64(v.Occupancy), int64(v.Limit))
	case ViolationStageTable:
		return fmt.Sprintf("%v %s at %s: %s", v.At, v.Kind, loc, v.Detail)
	default:
		return fmt.Sprintf("%v %s at %s: occupancy %v exceeds %v",
			v.At, v.Kind, loc, v.Occupancy, v.Limit)
	}
}

// InvariantError is the structured failure report of a run that violated at
// least one invariant.
type InvariantError struct {
	Violations []Violation
	// Truncated counts violations beyond Options.MaxViolations that were
	// tallied but not recorded in full.
	Truncated int64
}

func (e *InvariantError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics: %d invariant violation(s)", int64(len(e.Violations))+e.Truncated)
	for i, v := range e.Violations {
		if i == 3 {
			fmt.Fprintf(&b, "; ... %d more", int64(len(e.Violations)-3)+e.Truncated)
			break
		}
		b.WriteString("; ")
		b.WriteString(v.String())
	}
	return b.String()
}

// violate records v against channel idx, filling in the channel identity.
func (r *Registry) violate(v Violation, idx int) {
	ch := r.chans[idx]
	v.Node, v.NodeName, v.Port, v.Prio = ch.Node, ch.NodeName, ch.Port, ch.Prio
	v.From, v.FromName = ch.From, ch.FromName
	v.FaultsSoFar = r.faultCount
	if len(r.violations) < r.opt.MaxViolations {
		r.violations = append(r.violations, v)
	} else {
		r.truncated++
	}
	if r.opt.OnViolation != nil {
		r.opt.OnViolation(v)
	}
}

// Violations returns the recorded violations (up to Options.MaxViolations).
func (r *Registry) Violations() []Violation { return r.violations }

// Err returns nil when every invariant held, else an *InvariantError
// carrying the recorded violations — the structured report a violated run
// fails with.
func (r *Registry) Err() error {
	if len(r.violations) == 0 && r.truncated == 0 {
		return nil
	}
	return &InvariantError{Violations: r.violations, Truncated: r.truncated}
}

// ValidateStageTable statically checks the monotone behaviour practical GFC
// depends on: thresholds strictly ascending below B_m, rates positive and
// non-increasing with stage 0 at line rate, and StageFor monotone across
// every threshold.
func ValidateStageTable(t *core.StageTable) error {
	n := t.Stages()
	if n < 1 {
		return fmt.Errorf("stage table has no stages")
	}
	if t.StageRate(0) != t.C {
		return fmt.Errorf("stage 0 rate %v is not line rate %v", t.StageRate(0), t.C)
	}
	prevRate := t.C
	var prevThr units.Size
	for k := 1; k <= n; k++ {
		thr, rate := t.Threshold(k), t.StageRate(k)
		if rate <= 0 {
			return fmt.Errorf("stage %d rate %v not positive", k, rate)
		}
		if rate > prevRate {
			return fmt.Errorf("stage %d rate %v exceeds stage %d rate %v", k, rate, k-1, prevRate)
		}
		if k > 1 && thr <= prevThr {
			return fmt.Errorf("threshold B_%d (%v) not above B_%d (%v)", k, thr, k-1, prevThr)
		}
		if thr > t.Bm {
			return fmt.Errorf("threshold B_%d (%v) above B_m (%v)", k, thr, t.Bm)
		}
		if got := t.StageFor(thr); got != k {
			return fmt.Errorf("StageFor(B_%d) = %d, want %d", k, got, k)
		}
		if got := t.StageFor(thr - 1); got != k-1 {
			return fmt.Errorf("StageFor(B_%d − 1) = %d, want %d", k, got, k-1)
		}
		prevRate, prevThr = rate, thr
	}
	return nil
}

// NetworkBounds are the network-wide guarantees an analytic prediction
// asserts over a finished run's registry aggregates. Zero-valued fields
// disable their check, so a prediction only asserts what its model actually
// guarantees (internal/analytic derives the values; DESIGN.md §3.8 maps each
// field to its bound).
type NetworkBounds struct {
	// MaxOccupancy is the per-channel occupancy envelope: no switch
	// ingress channel's high-water mark may exceed it. Host channels are
	// exempt — host ingress "buffers" are nominally unbounded sinks with
	// no flow-control semantics. Zero disables the check.
	MaxOccupancy units.Size
	// MaxDelivered bounds total delivered bytes from above (aggregate
	// host link capacity × duration). Zero disables the check.
	MaxDelivered units.Size
	// MinDelivered is the progress floor of a run predicted deadlock-free:
	// total delivered bytes must reach it. Zero disables the check.
	MinDelivered units.Size
	// Lossless asserts the run recorded zero drops.
	Lossless bool
	// DeadlockFree asserts the run's detector (if any) stayed silent.
	// The registry cannot see detectors, so CheckNetwork takes the
	// verdict as an argument.
	DeadlockFree bool
}

// netViolationCap bounds how many per-channel envelope violations one
// CheckNetwork call reports in full; the rest are only counted. It mirrors
// the registry's own MaxViolations default.
const netViolationCap = 64

// CheckNetwork validates the end-of-run aggregates against b, returning nil
// when every bound held or an *InvariantError in the same structured shape
// the runtime checks produce. at is the run's end time, delivered its total
// delivered bytes and deadlocked its detector verdict.
//
// Unlike the runtime checks, CheckNetwork records nothing into the registry:
// Summary(), Violations() and Err() are unchanged, so attaching the
// network-wide checker to a run cannot perturb outputs (golden traces,
// fault-matrix violation columns) that fold the registry's own counts.
func (r *Registry) CheckNetwork(b NetworkBounds, at units.Time, delivered units.Size, deadlocked bool) *InvariantError {
	var e InvariantError
	var drops int64
	for idx := range r.chans {
		ch := &r.chans[idx]
		c := &r.counters[idx]
		drops += c.Drops
		if ch.Host || b.MaxOccupancy <= 0 || c.HighWater <= b.MaxOccupancy {
			continue
		}
		if len(e.Violations) >= netViolationCap {
			e.Truncated++
			continue
		}
		v := Violation{
			Kind: ViolationNetOccupancy, At: at,
			Occupancy: c.HighWater, Limit: b.MaxOccupancy,
			Detail: "high-water above analytic envelope",
		}
		v.Node, v.NodeName, v.Port, v.Prio = ch.Node, ch.NodeName, ch.Port, ch.Prio
		v.From, v.FromName = ch.From, ch.FromName
		e.Violations = append(e.Violations, v)
	}
	if b.MaxDelivered > 0 && delivered > b.MaxDelivered {
		e.Violations = append(e.Violations, Violation{
			Kind: ViolationNetThroughput, At: at,
			Occupancy: delivered, Limit: b.MaxDelivered,
			Detail: "total delivered above analytic throughput bound",
		})
	}
	if b.MinDelivered > 0 && delivered < b.MinDelivered {
		e.Violations = append(e.Violations, Violation{
			Kind: ViolationNetProgress, At: at,
			Occupancy: delivered, Limit: b.MinDelivered,
			Detail: "total delivered below analytic progress floor",
		})
	}
	if b.Lossless && drops > 0 {
		e.Violations = append(e.Violations, Violation{
			Kind: ViolationNetLoss, At: at,
			Occupancy: units.Size(drops),
			Detail:    "drops on a run predicted lossless",
		})
	}
	if b.DeadlockFree && deadlocked {
		e.Violations = append(e.Violations, Violation{
			Kind: ViolationNetDeadlock, At: at,
			Detail: "deadlock detected on a run predicted deadlock-free",
		})
	}
	if len(e.Violations) == 0 && e.Truncated == 0 {
		return nil
	}
	return &e
}

// CheckStageTable validates channel idx's stage table, recording a
// ViolationStageTable on failure, and arms the per-message stage-range check
// with the table's stage count.
func (r *Registry) CheckStageTable(idx int, t *core.StageTable) {
	if err := ValidateStageTable(t); err != nil {
		r.violate(Violation{Kind: ViolationStageTable, Detail: err.Error()}, idx)
		return
	}
	r.maxStage[idx] = int32(t.Stages())
}
