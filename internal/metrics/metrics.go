// Package metrics is the simulation-wide observability layer: a registry of
// per-channel (node, ingress port, priority) counters — bytes in/out,
// occupancy high-water marks, feedback-message accounting split by kind
// (pause/resume, stage, credit, queue) — backed by preallocated ring-buffer
// occupancy series, plus a runtime invariant checker that turns losslessness
// and the paper's Theorem 4.1/5.1 buffer bounds into continuously asserted
// properties (see invariants.go).
//
// A Registry is bound to exactly one netsim.Network — netsim binds it when
// Config.Metrics is set — and shares no state with any other instance,
// matching the share-nothing concurrency model of internal/runner. All
// hot-path methods are allocation-free after Bind (violations are the
// exception: each recorded violation may allocate, and runs that violate
// invariants have already failed). When Config.Metrics is nil the simulator
// skips every call behind a single nil check, so the disabled cost is zero.
package metrics

import (
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// FeedbackClass buckets flow-control feedback messages for accounting. It
// mirrors flowcontrol.Kind without importing it, so the dependency points
// from the simulator into metrics only.
type FeedbackClass uint8

// Feedback classes.
const (
	FeedbackPause FeedbackClass = iota
	FeedbackResume
	FeedbackStage
	FeedbackCredit
	FeedbackQueue
)

// Options configures a Registry.
type Options struct {
	// SeriesCap is the per-channel occupancy ring-buffer capacity in
	// samples. Zero disables occupancy series (counters only) — the
	// right default for large sweeps.
	SeriesCap int
	// SeriesGap is the minimum spacing between occupancy samples; zero
	// means 100 µs, the paper's §6.2.3 measurement bin.
	SeriesGap units.Time
	// MaxViolations caps how many violations are recorded in full; later
	// ones only increment a truncation counter. Zero means 64.
	MaxViolations int
	// MaxFaults caps how many injected fault events are recorded in full
	// (the count is always exact). Zero means 256.
	MaxFaults int
	// OnViolation, when non-nil, is called synchronously for every
	// violation (including truncated ones) — e.g. to stop a run early.
	OnViolation func(Violation)
}

// PortInfo describes one ingress attachment for Bind.
type PortInfo struct {
	Peer     topology.NodeID // upstream end of the channel into this port
	PeerName string
	Buffer   units.Size // per-priority ingress allocation
}

// NodeInfo describes one node for Bind.
type NodeInfo struct {
	ID    topology.NodeID
	Name  string
	Host  bool
	Ports []PortInfo
}

// Channel is the static identity of one metrics channel: the directed
// link From→Node at one priority, observed at Node's ingress port Port.
type Channel struct {
	Node     topology.NodeID
	NodeName string
	Port     int
	Prio     int
	From     topology.NodeID
	FromName string
	Host     bool // Node is a host (its ingress consumes immediately)
}

// Counters is the per-channel counter block. All byte quantities are
// cumulative over the run.
type Counters struct {
	// BytesIn is data admitted into the ingress buffer; BytesOut is data
	// serialised by the upstream transmitter onto this channel (BytesOut −
	// BytesIn is in flight or dropped).
	BytesIn  units.Size
	BytesOut units.Size
	// Departed is data released from the ingress buffer downstream.
	Departed units.Size
	// HighWater is the maximum ingress occupancy observed.
	HighWater units.Size
	// LastDepartAt is the time of the most recent release — the progress
	// signal the deadlock detector consumes.
	LastDepartAt units.Time
	Admits       int64
	Drops        int64
	// FeedbackMsgs / FeedbackWire count flow-control messages emitted by
	// this channel's receiver and their wire bytes (the Figure 19 /
	// Table 1 overhead numerators).
	FeedbackMsgs int64
	FeedbackWire units.Size
	PauseMsgs    int64
	ResumeMsgs   int64
	StageMsgs    int64
	CreditMsgs   int64
	QueueMsgs    int64
	// LastStage / MaxStage track GFC stage feedback on this channel.
	LastStage int32
	MaxStage  int32
}

// Registry accumulates per-channel counters and invariant verdicts for one
// simulation. The zero value is unusable; construct with New and attach via
// netsim.Config.Metrics (netsim calls Bind).
type Registry struct {
	opt   Options
	bound bool
	k     int   // priority classes
	base  []int // per node, first channel index (ports*k channels follow)

	chans    []Channel
	counters []Counters
	buffers  []units.Size
	ceilings []units.Size // 0: no theorem ceiling known for the channel
	maxStage []int32      // -1: no stage table known
	rings    []ring       // empty unless SeriesCap > 0
	lastSamp []units.Time

	violations []Violation
	truncated  int64

	faults          []FaultEvent
	faultCount      int64
	faultsTruncated int64
}

// New returns an unbound registry.
func New(opt Options) *Registry {
	if opt.SeriesCap > 0 && opt.SeriesGap <= 0 {
		opt.SeriesGap = 100 * units.Microsecond
	}
	if opt.MaxViolations == 0 {
		opt.MaxViolations = 64
	}
	if opt.MaxFaults == 0 {
		opt.MaxFaults = 256
	}
	return &Registry{opt: opt}
}

// Bind allocates the counter storage for the given node/port layout with k
// priority classes. netsim calls it once from New; binding twice panics
// (a Registry serves exactly one Network).
func (r *Registry) Bind(nodes []NodeInfo, k int) {
	if r.bound {
		panic("metrics: registry already bound to a network")
	}
	if k < 1 {
		panic("metrics: need at least one priority class")
	}
	r.bound = true
	r.k = k
	r.base = make([]int, len(nodes))
	total := 0
	for i, n := range nodes {
		r.base[i] = total
		total += len(n.Ports) * k
	}
	r.chans = make([]Channel, total)
	r.counters = make([]Counters, total)
	r.buffers = make([]units.Size, total)
	r.ceilings = make([]units.Size, total)
	r.maxStage = make([]int32, total)
	r.lastSamp = make([]units.Time, total)
	for i := range r.maxStage {
		r.maxStage[i] = -1
	}
	for i := range r.lastSamp {
		r.lastSamp[i] = -1
	}
	for _, n := range nodes {
		for pi, p := range n.Ports {
			for prio := 0; prio < k; prio++ {
				idx := r.base[n.ID] + pi*k + prio
				r.chans[idx] = Channel{
					Node: n.ID, NodeName: n.Name, Port: pi, Prio: prio,
					From: p.Peer, FromName: p.PeerName, Host: n.Host,
				}
				r.buffers[idx] = p.Buffer
			}
		}
	}
	if r.opt.SeriesCap > 0 {
		r.rings = make([]ring, total)
		for i := range r.rings {
			r.rings[i].init(r.opt.SeriesCap)
		}
	}
}

// ChannelIndex returns the dense index of (node, port, prio). The simulator
// caches the prio-0 index per port so its hot path is a single add.
func (r *Registry) ChannelIndex(node topology.NodeID, port, prio int) int {
	return r.base[node] + port*r.k + prio
}

// NumChannels reports the number of bound channels.
func (r *Registry) NumChannels() int { return len(r.chans) }

// ChannelAt returns the static identity of channel idx.
func (r *Registry) ChannelAt(idx int) Channel { return r.chans[idx] }

// Counter returns a copy of the counter block of channel idx.
func (r *Registry) Counter(idx int) Counters { return r.counters[idx] }

// Buffer reports the ingress allocation of channel idx.
func (r *Registry) Buffer(idx int) units.Size { return r.buffers[idx] }

// OnAdmit records a packet of size s admitted to channel idx at time t,
// bringing the ingress occupancy to occ. It updates the high-water mark and
// asserts the losslessness and theorem-ceiling invariants on new maxima.
func (r *Registry) OnAdmit(idx int, t units.Time, s, occ units.Size) {
	c := &r.counters[idx]
	c.BytesIn += s
	c.Admits++
	if occ > c.HighWater {
		c.HighWater = occ
		if b := r.buffers[idx]; occ > b {
			r.violate(Violation{
				Kind: ViolationOverflow, At: t, Occupancy: occ, Limit: b,
			}, idx)
		} else if ceil := r.ceilings[idx]; ceil > 0 && occ > ceil {
			r.violate(Violation{
				Kind: ViolationCeiling, At: t, Occupancy: occ, Limit: ceil,
			}, idx)
		}
	}
	r.sample(idx, t, occ)
}

// OnRelease records a packet of size s leaving channel idx's ingress buffer
// at time t, bringing the occupancy to occ.
func (r *Registry) OnRelease(idx int, t units.Time, s, occ units.Size) {
	c := &r.counters[idx]
	c.Departed += s
	c.LastDepartAt = t
	r.sample(idx, t, occ)
}

// OnTx records s bytes serialised by the upstream transmitter onto channel
// idx.
func (r *Registry) OnTx(idx int, s units.Size) {
	r.counters[idx].BytesOut += s
}

// OnDrop records a dropped packet of size s at channel idx: occ is the
// occupancy the admission would have produced (or held, for forced drops).
// Every drop is a losslessness violation.
func (r *Registry) OnDrop(idx int, t units.Time, s, occ units.Size) {
	r.counters[idx].Drops++
	r.violate(Violation{
		Kind: ViolationDrop, At: t, Occupancy: occ, Limit: r.buffers[idx],
	}, idx)
}

// OnFeedback records one flow-control message emitted by channel idx's
// receiver: class buckets the message kind, stage carries the GFC stage for
// FeedbackStage, and wire is the frame's wire size. Stage feedback is checked
// against the channel's stage table when one was registered
// (CheckStageTable).
func (r *Registry) OnFeedback(idx int, t units.Time, class FeedbackClass, stage int, wire units.Size) {
	c := &r.counters[idx]
	c.FeedbackMsgs++
	c.FeedbackWire += wire
	switch class {
	case FeedbackPause:
		c.PauseMsgs++
	case FeedbackResume:
		c.ResumeMsgs++
	case FeedbackStage:
		c.StageMsgs++
		c.LastStage = int32(stage)
		if int32(stage) > c.MaxStage {
			c.MaxStage = int32(stage)
		}
		if max := r.maxStage[idx]; stage < 0 || (max >= 0 && int32(stage) > max) {
			r.violate(Violation{
				Kind: ViolationStageRange, At: t,
				Occupancy: units.Size(stage), Limit: units.Size(max),
			}, idx)
		}
	case FeedbackCredit:
		c.CreditMsgs++
	case FeedbackQueue:
		c.QueueMsgs++
	}
}

// RecordContinuous seeds channel idx's counters from a continuous-model
// backend in one call: bytesIn admitted to the ingress, bytesOut released
// (and transmitted) from it, peak the model's exact maximum occupancy,
// final the end-of-run occupancy and drops the whole-packet drop count.
// The invariants OnAdmit and OnDrop enforce per event apply once here — a
// peak above the buffer (or the installed ceiling) and any drop raise the
// matching violations — so CheckNetwork and the report writers treat
// fluid-produced channels exactly like packet-produced ones. Continuous
// backends track occupancy exactly in their own state, which makes one
// end-of-run call both cheaper and more precise than streaming millions of
// fractional per-step events through the per-packet hooks.
func (r *Registry) RecordContinuous(idx int, end units.Time, bytesIn, bytesOut, peak, final units.Size, drops int64) {
	c := &r.counters[idx]
	c.BytesIn += bytesIn
	c.BytesOut += bytesOut
	c.Departed += bytesOut
	if bytesOut > 0 {
		c.LastDepartAt = end
	}
	if peak > c.HighWater {
		c.HighWater = peak
		if b := r.buffers[idx]; peak > b {
			r.violate(Violation{
				Kind: ViolationOverflow, At: end, Occupancy: peak, Limit: b,
			}, idx)
		} else if ceil := r.ceilings[idx]; ceil > 0 && peak > ceil {
			r.violate(Violation{
				Kind: ViolationCeiling, At: end, Occupancy: peak, Limit: ceil,
			}, idx)
		}
	}
	if drops > 0 {
		c.Drops += drops
		r.violate(Violation{
			Kind: ViolationDrop, At: end, Occupancy: peak, Limit: r.buffers[idx],
		}, idx)
	}
	r.sample(idx, end, final)
}

// SetCeiling installs the theorem-derived occupancy ceiling for channel idx
// (B_m plus transient headroom, clamped to the buffer). netsim derives it
// from the channel's flowcontrol.Bounded sender; tests may override it to
// seed deliberate violations. Zero disables the check.
func (r *Registry) SetCeiling(idx int, ceil units.Size) {
	r.ceilings[idx] = ceil
}

// Ceiling reports the installed ceiling of channel idx (0 when none).
func (r *Registry) Ceiling(idx int) units.Size { return r.ceilings[idx] }

// sample pushes an occupancy point into the channel's ring series, rate
// limited to one sample per SeriesGap.
func (r *Registry) sample(idx int, t units.Time, occ units.Size) {
	if r.rings == nil {
		return
	}
	if last := r.lastSamp[idx]; last >= 0 && t-last < r.opt.SeriesGap {
		return
	}
	r.lastSamp[idx] = t
	r.rings[idx].push(t, float64(occ))
}
