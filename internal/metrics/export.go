package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/gfcsim/gfc/internal/units"
)

// Summary is a compact roll-up over all channels — what sweep-scale callers
// aggregate instead of full reports.
type Summary struct {
	Channels       int        `json:"channels"`
	BytesIn        units.Size `json:"bytes_in"`
	BytesOut       units.Size `json:"bytes_out"`
	Drops          int64      `json:"drops"`
	MaxOccupancy   units.Size `json:"max_occupancy"`
	FeedbackMsgs   int64      `json:"feedback_msgs"`
	FeedbackWire   units.Size `json:"feedback_wire_bytes"`
	PauseMsgs      int64      `json:"pause_msgs"`
	ResumeMsgs     int64      `json:"resume_msgs"`
	StageMsgs      int64      `json:"stage_msgs"`
	CreditMsgs     int64      `json:"credit_msgs"`
	QueueMsgs      int64      `json:"queue_msgs"`
	Violations     int64      `json:"violations"`
	FaultsInjected int64      `json:"faults_injected,omitempty"`
}

// Merge folds o into s (channel counts add; occupancy takes the max).
func (s *Summary) Merge(o Summary) {
	s.Channels += o.Channels
	s.BytesIn += o.BytesIn
	s.BytesOut += o.BytesOut
	s.Drops += o.Drops
	if o.MaxOccupancy > s.MaxOccupancy {
		s.MaxOccupancy = o.MaxOccupancy
	}
	s.FeedbackMsgs += o.FeedbackMsgs
	s.FeedbackWire += o.FeedbackWire
	s.PauseMsgs += o.PauseMsgs
	s.ResumeMsgs += o.ResumeMsgs
	s.StageMsgs += o.StageMsgs
	s.CreditMsgs += o.CreditMsgs
	s.QueueMsgs += o.QueueMsgs
	s.Violations += o.Violations
	s.FaultsInjected += o.FaultsInjected
}

// Summary rolls up the registry's counters.
func (r *Registry) Summary() Summary {
	s := Summary{
		Channels:       len(r.chans),
		Violations:     int64(len(r.violations)) + r.truncated,
		FaultsInjected: r.faultCount,
	}
	for i := range r.counters {
		c := &r.counters[i]
		s.BytesIn += c.BytesIn
		s.BytesOut += c.BytesOut
		s.Drops += c.Drops
		if c.HighWater > s.MaxOccupancy {
			s.MaxOccupancy = c.HighWater
		}
		s.FeedbackMsgs += c.FeedbackMsgs
		s.FeedbackWire += c.FeedbackWire
		s.PauseMsgs += c.PauseMsgs
		s.ResumeMsgs += c.ResumeMsgs
		s.StageMsgs += c.StageMsgs
		s.CreditMsgs += c.CreditMsgs
		s.QueueMsgs += c.QueueMsgs
	}
	return s
}

// SwitchHighWater returns the maximum occupancy high-water mark over the
// switch ingress channels (host channels excluded) — the quantity the
// network-wide analytic envelope bounds (NetworkBounds.MaxOccupancy).
func (r *Registry) SwitchHighWater() units.Size {
	var hw units.Size
	for i := range r.counters {
		if r.chans[i].Host {
			continue
		}
		if c := r.counters[i].HighWater; c > hw {
			hw = c
		}
	}
	return hw
}

// SeriesDump is an exported occupancy series.
type SeriesDump struct {
	T []units.Time `json:"t_ns"`
	V []float64    `json:"v"`
}

// ChannelReport is the per-channel slice of a Report. Channels with no
// activity at all are omitted from reports to keep fat-tree exports small.
type ChannelReport struct {
	Node    string     `json:"node"`
	Port    int        `json:"port"`
	Prio    int        `json:"prio"`
	From    string     `json:"from"`
	Host    bool       `json:"host,omitempty"`
	Buffer  units.Size `json:"buffer_bytes"`
	Ceiling units.Size `json:"ceiling_bytes,omitempty"`

	BytesIn      units.Size  `json:"bytes_in"`
	BytesOut     units.Size  `json:"bytes_out"`
	Departed     units.Size  `json:"departed_bytes"`
	HighWater    units.Size  `json:"occupancy_high_water"`
	LastDepartAt units.Time  `json:"last_depart_ns,omitempty"`
	Admits       int64       `json:"admits"`
	Drops        int64       `json:"drops,omitempty"`
	FeedbackMsgs int64       `json:"feedback_msgs"`
	FeedbackWire units.Size  `json:"feedback_wire_bytes"`
	PauseMsgs    int64       `json:"pause_msgs,omitempty"`
	ResumeMsgs   int64       `json:"resume_msgs,omitempty"`
	StageMsgs    int64       `json:"stage_msgs,omitempty"`
	CreditMsgs   int64       `json:"credit_msgs,omitempty"`
	QueueMsgs    int64       `json:"queue_msgs,omitempty"`
	LastStage    int32       `json:"last_stage,omitempty"`
	MaxStage     int32       `json:"max_stage,omitempty"`
	Occupancy    *SeriesDump `json:"occupancy_series,omitempty"`
}

// ViolationReport is the exported form of a Violation.
type ViolationReport struct {
	Kind        string     `json:"kind"`
	At          units.Time `json:"at_ns"`
	Node        string     `json:"node"`
	Port        int        `json:"port"`
	Prio        int        `json:"prio"`
	From        string     `json:"from"`
	Occupancy   units.Size `json:"occupancy"`
	Limit       units.Size `json:"limit"`
	Detail      string     `json:"detail,omitempty"`
	FaultsSoFar int64      `json:"faults_so_far,omitempty"`
}

// Report is a full point-in-time export of the registry.
type Report struct {
	At                  units.Time        `json:"at_ns"`
	Priorities          int               `json:"priorities"`
	Totals              Summary           `json:"totals"`
	Channels            []ChannelReport   `json:"channels"`
	Violations          []ViolationReport `json:"violations,omitempty"`
	ViolationsTruncated int64             `json:"violations_truncated,omitempty"`
	Faults              []FaultReport     `json:"faults,omitempty"`
	FaultsTruncated     int64             `json:"faults_truncated,omitempty"`
}

// Report builds the export at simulation time at (the caller's clock; the
// registry does not keep one).
func (r *Registry) Report(at units.Time) *Report {
	rep := &Report{
		At:                  at,
		Priorities:          r.k,
		Totals:              r.Summary(),
		ViolationsTruncated: r.truncated,
	}
	for idx := range r.chans {
		c := &r.counters[idx]
		if c.BytesIn == 0 && c.BytesOut == 0 && c.FeedbackMsgs == 0 && c.Drops == 0 {
			continue
		}
		ch := r.chans[idx]
		cr := ChannelReport{
			Node: ch.NodeName, Port: ch.Port, Prio: ch.Prio,
			From: ch.FromName, Host: ch.Host,
			Buffer: r.buffers[idx], Ceiling: r.ceilings[idx],
			BytesIn: c.BytesIn, BytesOut: c.BytesOut,
			Departed: c.Departed, HighWater: c.HighWater,
			LastDepartAt: c.LastDepartAt, Admits: c.Admits,
			Drops: c.Drops, FeedbackMsgs: c.FeedbackMsgs,
			FeedbackWire: c.FeedbackWire, PauseMsgs: c.PauseMsgs,
			ResumeMsgs: c.ResumeMsgs, StageMsgs: c.StageMsgs,
			CreditMsgs: c.CreditMsgs, QueueMsgs: c.QueueMsgs,
			LastStage: c.LastStage, MaxStage: c.MaxStage,
		}
		if s := r.Series(idx); s != nil {
			cr.Occupancy = &SeriesDump{T: s.T, V: s.V}
		}
		rep.Channels = append(rep.Channels, cr)
	}
	for _, v := range r.violations {
		rep.Violations = append(rep.Violations, ViolationReport{
			Kind: v.Kind.String(), At: v.At, Node: v.NodeName,
			Port: v.Port, Prio: v.Prio, From: v.FromName,
			Occupancy: v.Occupancy, Limit: v.Limit, Detail: v.Detail,
			FaultsSoFar: v.FaultsSoFar,
		})
	}
	rep.FaultsTruncated = r.faultsTruncated
	for _, ev := range r.faults {
		rep.Faults = append(rep.Faults, r.faultReport(ev))
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// CSVHeader returns the column names of CSVRecords.
func CSVHeader() []string {
	return []string{
		"node", "port", "prio", "from", "host",
		"buffer_bytes", "ceiling_bytes",
		"bytes_in", "bytes_out", "departed_bytes",
		"occupancy_high_water", "admits", "drops",
		"feedback_msgs", "feedback_wire_bytes",
		"pause_msgs", "resume_msgs", "stage_msgs", "credit_msgs", "queue_msgs",
		"last_stage", "max_stage",
	}
}

// CSVRecords renders the per-channel rows (no header, no series).
func (rep *Report) CSVRecords() [][]string {
	out := make([][]string, 0, len(rep.Channels))
	for _, c := range rep.Channels {
		out = append(out, []string{
			c.Node, strconv.Itoa(c.Port), strconv.Itoa(c.Prio), c.From,
			strconv.FormatBool(c.Host),
			strconv.FormatInt(int64(c.Buffer), 10),
			strconv.FormatInt(int64(c.Ceiling), 10),
			strconv.FormatInt(int64(c.BytesIn), 10),
			strconv.FormatInt(int64(c.BytesOut), 10),
			strconv.FormatInt(int64(c.Departed), 10),
			strconv.FormatInt(int64(c.HighWater), 10),
			strconv.FormatInt(c.Admits, 10),
			strconv.FormatInt(c.Drops, 10),
			strconv.FormatInt(c.FeedbackMsgs, 10),
			strconv.FormatInt(int64(c.FeedbackWire), 10),
			strconv.FormatInt(c.PauseMsgs, 10),
			strconv.FormatInt(c.ResumeMsgs, 10),
			strconv.FormatInt(c.StageMsgs, 10),
			strconv.FormatInt(c.CreditMsgs, 10),
			strconv.FormatInt(c.QueueMsgs, 10),
			strconv.FormatInt(int64(c.LastStage), 10),
			strconv.FormatInt(int64(c.MaxStage), 10),
		})
	}
	return out
}

// WriteCSV writes a header plus the per-channel rows.
func (rep *Report) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(CSVHeader()); err != nil {
		return err
	}
	for _, rec := range rep.CSVRecords() {
		if err := writeRow(rec); err != nil {
			return err
		}
	}
	return nil
}

// String summarises the report in one line (diagnostics).
func (rep *Report) String() string {
	return fmt.Sprintf("metrics: %d active channels, %v in / %v out, %d feedback msgs (%v), max occupancy %v, %d violations",
		len(rep.Channels), rep.Totals.BytesIn, rep.Totals.BytesOut,
		rep.Totals.FeedbackMsgs, rep.Totals.FeedbackWire,
		rep.Totals.MaxOccupancy, rep.Totals.Violations)
}
