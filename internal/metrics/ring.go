package metrics

import (
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/units"
)

// ring is a fixed-capacity circular time series. All storage is allocated at
// Bind; push never allocates, so long runs keep the most recent window of
// samples at zero steady-state cost.
type ring struct {
	t    []units.Time
	v    []float64
	head int // next write position
	n    int // live samples
}

func (r *ring) init(cap int) {
	r.t = make([]units.Time, cap)
	r.v = make([]float64, cap)
}

func (r *ring) push(t units.Time, v float64) {
	r.t[r.head] = t
	r.v[r.head] = v
	r.head++
	if r.head == len(r.t) {
		r.head = 0
	}
	if r.n < len(r.t) {
		r.n++
	}
}

// series copies the live window, oldest first, into a stats.Series.
func (r *ring) series() *stats.Series {
	if r.n == 0 {
		return nil
	}
	s := &stats.Series{
		T: make([]units.Time, 0, r.n),
		V: make([]float64, 0, r.n),
	}
	start := r.head - r.n
	if start < 0 {
		start += len(r.t)
	}
	for i := 0; i < r.n; i++ {
		j := start + i
		if j >= len(r.t) {
			j -= len(r.t)
		}
		s.Append(r.t[j], r.v[j])
	}
	return s
}

// Series returns the recorded occupancy series of channel idx (the most
// recent SeriesCap samples, at most one per SeriesGap), or nil when series
// recording is disabled or the channel never sampled.
func (r *Registry) Series(idx int) *stats.Series {
	if r.rings == nil {
		return nil
	}
	return r.rings[idx].series()
}
