package metrics

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// twoNodeLayout binds r to a minimal two-node topology: node 0 (a host with
// one port fed by node 1) and node 1 (a switch with two ports fed by nodes 0
// and 0 again), k priorities.
func twoNodeLayout(r *Registry, k int) {
	r.Bind([]NodeInfo{
		{ID: 0, Name: "h0", Host: true, Ports: []PortInfo{
			{Peer: 1, PeerName: "s1", Buffer: 10000},
		}},
		{ID: 1, Name: "s1", Ports: []PortInfo{
			{Peer: 0, PeerName: "h0", Buffer: 20000},
			{Peer: 0, PeerName: "h0", Buffer: 30000},
		}},
	}, k)
}

func TestBindIndexing(t *testing.T) {
	r := New(Options{})
	twoNodeLayout(r, 2)
	if got := r.NumChannels(); got != 6 {
		t.Fatalf("NumChannels = %d, want 6", got)
	}
	// Dense layout: every (node, port, prio) maps to a distinct in-range
	// index with the matching identity.
	seen := make(map[int]bool)
	for _, tc := range []struct {
		node, port, prio int
	}{{0, 0, 0}, {0, 0, 1}, {1, 0, 0}, {1, 0, 1}, {1, 1, 0}, {1, 1, 1}} {
		idx := r.ChannelIndex(topology.NodeID(tc.node), tc.port, tc.prio)
		if idx < 0 || idx >= 6 || seen[idx] {
			t.Fatalf("ChannelIndex(%d,%d,%d) = %d (dup or out of range)", tc.node, tc.port, tc.prio, idx)
		}
		seen[idx] = true
		ch := r.ChannelAt(idx)
		if int(ch.Node) != tc.node || ch.Port != tc.port || ch.Prio != tc.prio {
			t.Fatalf("ChannelAt(%d) = %+v, want node %d port %d prio %d", idx, ch, tc.node, tc.port, tc.prio)
		}
	}
	if ch := r.ChannelAt(r.ChannelIndex(1, 1, 0)); ch.FromName != "h0" || ch.NodeName != "s1" || ch.Host {
		t.Errorf("channel identity = %+v", ch)
	}
	if got := r.Buffer(r.ChannelIndex(1, 1, 0)); got != 30000 {
		t.Errorf("Buffer = %v, want 30000", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("second Bind did not panic")
		}
	}()
	twoNodeLayout(r, 2)
}

func TestCountersAndHighWater(t *testing.T) {
	r := New(Options{})
	twoNodeLayout(r, 1)
	idx := r.ChannelIndex(1, 0, 0)
	r.OnTx(idx, 1500)
	r.OnAdmit(idx, 10, 1500, 1500)
	r.OnTx(idx, 1500)
	r.OnAdmit(idx, 20, 1500, 3000)
	r.OnRelease(idx, 30, 1500, 1500)
	r.OnAdmit(idx, 40, 500, 2000) // below high water: no new mark
	c := r.Counter(idx)
	if c.BytesIn != 3500 || c.BytesOut != 3000 || c.Departed != 1500 {
		t.Errorf("bytes in/out/departed = %v/%v/%v", c.BytesIn, c.BytesOut, c.Departed)
	}
	if c.HighWater != 3000 {
		t.Errorf("HighWater = %v, want 3000", c.HighWater)
	}
	if c.Admits != 3 || c.Drops != 0 {
		t.Errorf("Admits/Drops = %d/%d", c.Admits, c.Drops)
	}
	if c.LastDepartAt != 30 {
		t.Errorf("LastDepartAt = %v", c.LastDepartAt)
	}
	if err := r.Err(); err != nil {
		t.Errorf("Err = %v, want nil", err)
	}
}

func TestFeedbackClasses(t *testing.T) {
	r := New(Options{})
	twoNodeLayout(r, 1)
	idx := r.ChannelIndex(1, 0, 0)
	r.OnFeedback(idx, 1, FeedbackPause, 0, 64)
	r.OnFeedback(idx, 2, FeedbackResume, 0, 64)
	r.OnFeedback(idx, 3, FeedbackStage, 2, 64)
	r.OnFeedback(idx, 4, FeedbackStage, 1, 64)
	r.OnFeedback(idx, 5, FeedbackCredit, 0, 12)
	r.OnFeedback(idx, 6, FeedbackQueue, 0, 64)
	c := r.Counter(idx)
	if c.FeedbackMsgs != 6 || c.FeedbackWire != 64*5+12 {
		t.Errorf("FeedbackMsgs/Wire = %d/%v", c.FeedbackMsgs, c.FeedbackWire)
	}
	if c.PauseMsgs != 1 || c.ResumeMsgs != 1 || c.StageMsgs != 2 || c.CreditMsgs != 1 || c.QueueMsgs != 1 {
		t.Errorf("per-class counts = %+v", c)
	}
	if c.LastStage != 1 || c.MaxStage != 2 {
		t.Errorf("LastStage/MaxStage = %d/%d", c.LastStage, c.MaxStage)
	}
}

func TestViolationsOverflowCeilingDrop(t *testing.T) {
	var seen []Violation
	r := New(Options{OnViolation: func(v Violation) { seen = append(seen, v) }})
	twoNodeLayout(r, 1)
	idx := r.ChannelIndex(1, 0, 0)

	// Ceiling violation on a new high-water mark above the theorem bound.
	r.SetCeiling(idx, 15000)
	r.OnAdmit(idx, 10, 1500, 16000)
	// Overflow wins over ceiling when both are exceeded.
	r.OnAdmit(idx, 20, 1500, 21000)
	// Not a new high-water mark: no repeat violation.
	r.OnAdmit(idx, 30, 1500, 21000)
	// Drops always violate.
	r.OnDrop(idx, 40, 1500, 21000)

	vs := r.Violations()
	if len(vs) != 3 {
		t.Fatalf("violations = %d, want 3: %v", len(vs), vs)
	}
	if vs[0].Kind != ViolationCeiling || vs[0].Occupancy != 16000 || vs[0].Limit != 15000 {
		t.Errorf("violation 0 = %+v", vs[0])
	}
	if vs[1].Kind != ViolationOverflow || vs[1].Limit != 20000 {
		t.Errorf("violation 1 = %+v", vs[1])
	}
	if vs[2].Kind != ViolationDrop {
		t.Errorf("violation 2 = %+v", vs[2])
	}
	if len(seen) != 3 {
		t.Errorf("OnViolation calls = %d, want 3", len(seen))
	}
	if vs[0].NodeName != "s1" || vs[0].FromName != "h0" {
		t.Errorf("violation identity = %+v", vs[0])
	}
	err := r.Err()
	if err == nil {
		t.Fatal("Err = nil after violations")
	}
	var ie *InvariantError
	if !errors.As(err, &ie) || len(ie.Violations) != 3 {
		t.Fatalf("Err = %v", err)
	}
	if !strings.Contains(err.Error(), "overflow") {
		t.Errorf("Error() = %q", err.Error())
	}
}

func TestViolationTruncation(t *testing.T) {
	calls := 0
	r := New(Options{MaxViolations: 2, OnViolation: func(Violation) { calls++ }})
	twoNodeLayout(r, 1)
	idx := r.ChannelIndex(1, 0, 0)
	for i := 0; i < 5; i++ {
		r.OnDrop(idx, units.Time(i), 100, 100)
	}
	if got := len(r.Violations()); got != 2 {
		t.Errorf("recorded = %d, want 2", got)
	}
	if calls != 5 {
		t.Errorf("OnViolation calls = %d, want 5", calls)
	}
	var ie *InvariantError
	if !errors.As(r.Err(), &ie) || ie.Truncated != 3 {
		t.Fatalf("Err = %v", r.Err())
	}
	if !strings.Contains(ie.Error(), "5 invariant violation(s)") {
		t.Errorf("Error() = %q", ie.Error())
	}
}

func TestStageRangeViolation(t *testing.T) {
	r := New(Options{})
	twoNodeLayout(r, 1)
	idx := r.ChannelIndex(1, 0, 0)
	tbl, err := core.NewStageTableRatio(100*units.Gbps, 18000, 10000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r.CheckStageTable(idx, tbl)
	if r.Err() != nil {
		t.Fatalf("valid table recorded violation: %v", r.Err())
	}
	r.OnFeedback(idx, 1, FeedbackStage, tbl.Stages(), 64) // in range
	if r.Err() != nil {
		t.Fatalf("in-range stage violated: %v", r.Err())
	}
	r.OnFeedback(idx, 2, FeedbackStage, tbl.Stages()+1, 64)
	r.OnFeedback(idx, 3, FeedbackStage, -1, 64)
	vs := r.Violations()
	if len(vs) != 2 || vs[0].Kind != ViolationStageRange || vs[1].Kind != ViolationStageRange {
		t.Fatalf("violations = %v", vs)
	}
	// Without an armed table, out-of-range stages are not checkable.
	idx2 := r.ChannelIndex(1, 1, 0)
	r.OnFeedback(idx2, 4, FeedbackStage, 99, 64)
	if got := len(r.Violations()); got != 2 {
		t.Errorf("unarmed channel recorded stage violation (total %d)", got)
	}
}

func TestValidateStageTable(t *testing.T) {
	tbl, err := core.NewStageTableRatio(100*units.Gbps, 18000, 10000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateStageTable(tbl); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
}

func TestRingSeries(t *testing.T) {
	r := New(Options{SeriesCap: 4, SeriesGap: 1})
	twoNodeLayout(r, 1)
	idx := r.ChannelIndex(1, 0, 0)
	if r.Series(idx) != nil {
		t.Fatal("empty channel has a series")
	}
	for i := 1; i <= 6; i++ {
		r.OnAdmit(idx, units.Time(i*10), 100, units.Size(i*100))
	}
	s := r.Series(idx)
	if s == nil || s.Len() != 4 {
		t.Fatalf("series = %+v, want 4 samples", s)
	}
	// Ring keeps the most recent window, oldest first.
	if s.T[0] != 30 || s.T[3] != 60 || s.V[3] != 600 {
		t.Errorf("series window = %+v", s)
	}
}

func TestSeriesGapRateLimit(t *testing.T) {
	r := New(Options{SeriesCap: 16, SeriesGap: 100})
	twoNodeLayout(r, 1)
	idx := r.ChannelIndex(1, 0, 0)
	r.OnAdmit(idx, 0, 100, 100)   // sampled (first)
	r.OnAdmit(idx, 50, 100, 200)  // suppressed: within gap
	r.OnAdmit(idx, 100, 100, 300) // sampled
	r.OnRelease(idx, 150, 100, 200)
	r.OnRelease(idx, 250, 100, 100) // sampled
	s := r.Series(idx)
	if s.Len() != 3 {
		t.Fatalf("series len = %d, want 3 (%+v)", s.Len(), s)
	}
	if s.T[0] != 0 || s.T[1] != 100 || s.T[2] != 250 {
		t.Errorf("sample times = %v", s.T)
	}
}

func TestReportAndJSONRoundTrip(t *testing.T) {
	r := New(Options{SeriesCap: 8, SeriesGap: 1})
	twoNodeLayout(r, 2)
	idx := r.ChannelIndex(1, 0, 1)
	r.OnTx(idx, 1500)
	r.OnAdmit(idx, 10, 1500, 1500)
	r.OnRelease(idx, 20, 1500, 0)
	r.OnFeedback(idx, 30, FeedbackStage, 1, 64)

	rep := r.Report(1000)
	if rep.At != 1000 || rep.Priorities != 2 {
		t.Errorf("report header = %+v", rep)
	}
	// Idle channels are skipped.
	if len(rep.Channels) != 1 {
		t.Fatalf("channels = %d, want 1", len(rep.Channels))
	}
	c := rep.Channels[0]
	if c.Node != "s1" || c.Port != 0 || c.Prio != 1 || c.From != "h0" {
		t.Errorf("channel identity = %+v", c)
	}
	if c.Occupancy == nil || len(c.Occupancy.T) != 2 {
		t.Errorf("occupancy series = %+v", c.Occupancy)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Totals.BytesIn != 1500 || back.Totals.FeedbackMsgs != 1 {
		t.Errorf("round-tripped totals = %+v", back.Totals)
	}
	if len(back.Channels) != 1 || back.Channels[0].HighWater != 1500 {
		t.Errorf("round-tripped channels = %+v", back.Channels)
	}
}

func TestReportCSV(t *testing.T) {
	r := New(Options{})
	twoNodeLayout(r, 1)
	idx := r.ChannelIndex(1, 1, 0)
	r.OnAdmit(idx, 10, 1500, 1500)
	var buf bytes.Buffer
	if err := r.Report(0).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(CSVHeader()) || len(row) != len(header) {
		t.Fatalf("column mismatch: %d header, %d row", len(header), len(row))
	}
	if row[0] != "s1" || row[1] != "1" {
		t.Errorf("row = %v", row)
	}
}

func TestSummaryMerge(t *testing.T) {
	a := Summary{Channels: 2, BytesIn: 100, MaxOccupancy: 50, Drops: 1}
	b := Summary{Channels: 3, BytesIn: 200, MaxOccupancy: 80, FeedbackMsgs: 4}
	a.Merge(b)
	if a.Channels != 5 || a.BytesIn != 300 || a.Drops != 1 || a.FeedbackMsgs != 4 {
		t.Errorf("merged = %+v", a)
	}
	if a.MaxOccupancy != 80 {
		t.Errorf("MaxOccupancy = %v, want max 80", a.MaxOccupancy)
	}
}
