package metrics

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// FaultKind buckets injected faults for attribution. It mirrors the fault
// taxonomy of internal/faults without importing it, keeping metrics a leaf
// package (same reason FeedbackClass mirrors flowcontrol.Kind).
type FaultKind uint8

// Fault kinds.
const (
	// FaultFeedbackDrop: a flow-control message was destroyed in flight.
	FaultFeedbackDrop FaultKind = iota
	// FaultFeedbackDelay: a flow-control message was delivered late.
	FaultFeedbackDelay
	// FaultLinkDown / FaultLinkUp: administrative link state flips.
	FaultLinkDown
	FaultLinkUp
	// FaultRateScale: a link's capacity was scaled by Factor.
	FaultRateScale
	// FaultBurst: a host received a pacer-bypass burst budget of Bytes.
	FaultBurst
)

func (k FaultKind) String() string {
	switch k {
	case FaultFeedbackDrop:
		return "feedback-drop"
	case FaultFeedbackDelay:
		return "feedback-delay"
	case FaultLinkDown:
		return "link-down"
	case FaultLinkUp:
		return "link-up"
	case FaultRateScale:
		return "rate-scale"
	case FaultBurst:
		return "burst"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// FaultEvent is one injected fault as the simulator reported it. Channel is
// the dense channel index the fault acted on, or -1 for link/node-level
// faults; Link and Node locate those.
type FaultEvent struct {
	Kind    FaultKind
	At      units.Time
	Channel int
	Link    topology.LinkID
	Node    topology.NodeID
	Factor  float64
	Bytes   units.Size
}

// OnFault records one injected fault. The full event list is bounded by
// Options.MaxFaults; the count is not. Recording faults is what lets a
// violation be attributed to its trigger: every Violation carries the
// number of faults injected before it (FaultsSoFar), so "which fault
// tripped this" is a lookup into Faults(), and a violation with
// FaultsSoFar == 0 happened on a clean network.
func (r *Registry) OnFault(ev FaultEvent) {
	r.faultCount++
	if len(r.faults) < r.opt.MaxFaults {
		r.faults = append(r.faults, ev)
	} else {
		r.faultsTruncated++
	}
}

// FaultsInjected reports how many faults have been recorded (including
// ones beyond the MaxFaults event cap).
func (r *Registry) FaultsInjected() int64 { return r.faultCount }

// Faults returns the recorded fault events (up to Options.MaxFaults).
func (r *Registry) Faults() []FaultEvent { return r.faults }

// FaultReport is the exported form of a FaultEvent.
type FaultReport struct {
	Kind string     `json:"kind"`
	At   units.Time `json:"at_ns"`
	// Node/Port/Prio/From name the channel for feedback faults; Node alone
	// locates host bursts; Link locates link-level faults.
	Node   string     `json:"node,omitempty"`
	Port   int        `json:"port,omitempty"`
	Prio   int        `json:"prio,omitempty"`
	From   string     `json:"from,omitempty"`
	Link   int        `json:"link"`
	Factor float64    `json:"factor,omitempty"`
	Bytes  units.Size `json:"bytes,omitempty"`
}

// faultReport resolves ev's channel identity for export.
func (r *Registry) faultReport(ev FaultEvent) FaultReport {
	fr := FaultReport{
		Kind: ev.Kind.String(), At: ev.At,
		Link: int(ev.Link), Factor: ev.Factor, Bytes: ev.Bytes,
	}
	if ev.Channel >= 0 && ev.Channel < len(r.chans) {
		ch := r.chans[ev.Channel]
		fr.Node, fr.Port, fr.Prio, fr.From = ch.NodeName, ch.Port, ch.Prio, ch.FromName
	} else if id := int(ev.Node); id >= 0 && id < len(r.base) {
		// Node-level fault: name the node via its first bound channel.
		if ci := r.base[id]; ci < len(r.chans) && r.chans[ci].Node == ev.Node {
			fr.Node = r.chans[ci].NodeName
		}
	}
	return fr
}
