package metrics

import (
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/units"
)

// netLayout binds r to one host port and n switch ports, returning the
// switch channel indices.
func netLayout(r *Registry, n int) []int {
	ports := make([]PortInfo, n)
	for i := range ports {
		ports[i] = PortInfo{Peer: 0, PeerName: "h0", Buffer: 100 * units.KB}
	}
	r.Bind([]NodeInfo{
		{ID: 0, Name: "h0", Host: true, Ports: []PortInfo{
			{Peer: 1, PeerName: "s1", Buffer: 100 * units.KB},
		}},
		{ID: 1, Name: "s1", Ports: ports},
	}, 1)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = r.ChannelIndex(1, i, 0)
	}
	return idx
}

func TestCheckNetworkClean(t *testing.T) {
	r := New(Options{})
	netLayout(r, 2)
	b := NetworkBounds{
		MaxOccupancy: 50 * units.KB, MaxDelivered: units.MB, MinDelivered: 1,
		Lossless: true, DeadlockFree: true,
	}
	if e := r.CheckNetwork(b, 1000, 500*units.KB, false); e != nil {
		t.Fatalf("clean run flagged: %v", e)
	}
	// The all-zero bounds assert nothing, whatever the run did.
	if e := r.CheckNetwork(NetworkBounds{}, 1000, units.MB, true); e != nil {
		t.Fatalf("disabled bounds flagged: %v", e)
	}
}

func TestCheckNetworkOccupancyEnvelope(t *testing.T) {
	r := New(Options{})
	idx := netLayout(r, 2)
	hostIdx := r.ChannelIndex(0, 0, 0)
	// The host sink and one switch channel exceed the envelope; only the
	// switch channel may be flagged.
	r.OnAdmit(hostIdx, 10, 80*units.KB, 80*units.KB)
	r.OnAdmit(idx[0], 10, 80*units.KB, 80*units.KB)
	r.OnAdmit(idx[1], 10, 10*units.KB, 10*units.KB)
	b := NetworkBounds{MaxOccupancy: 60 * units.KB}
	e := r.CheckNetwork(b, 2000, 0, false)
	if e == nil || len(e.Violations) != 1 {
		t.Fatalf("violations = %+v, want exactly the switch channel", e)
	}
	v := e.Violations[0]
	if v.Kind != ViolationNetOccupancy || v.NodeName != "s1" || v.Port != 0 {
		t.Fatalf("violation = %+v", v)
	}
	if v.Occupancy != 80*units.KB || v.Limit != 60*units.KB || v.At != 2000 {
		t.Fatalf("violation payload = %+v", v)
	}
	if !strings.Contains(v.String(), "net-occupancy") {
		t.Errorf("String() = %q, want the net-occupancy kind", v.String())
	}
	// The checker recorded nothing into the registry itself.
	if r.Err() != nil || len(r.Violations()) != 0 {
		t.Fatal("CheckNetwork perturbed the registry's own verdicts")
	}
}

func TestCheckNetworkOccupancyTruncation(t *testing.T) {
	r := New(Options{})
	idx := netLayout(r, netViolationCap+10)
	for _, i := range idx {
		r.OnAdmit(i, 10, 90*units.KB, 90*units.KB)
	}
	e := r.CheckNetwork(NetworkBounds{MaxOccupancy: units.KB}, 100, 0, false)
	if e == nil || len(e.Violations) != netViolationCap {
		t.Fatalf("reported %d violations, want the %d cap", len(e.Violations), netViolationCap)
	}
	if e.Truncated != 10 {
		t.Fatalf("Truncated = %d, want 10", e.Truncated)
	}
	if !strings.Contains(e.Error(), "74 invariant violation(s)") {
		t.Errorf("Error() = %q does not count the truncated tail", e.Error())
	}
}

func TestCheckNetworkScalarBounds(t *testing.T) {
	for _, tc := range []struct {
		name       string
		b          NetworkBounds
		delivered  units.Size
		deadlocked bool
		drop       bool
		kind       ViolationKind
		detail     string
	}{
		{"throughput", NetworkBounds{MaxDelivered: units.KB}, 2 * units.KB, false, false,
			ViolationNetThroughput, "above analytic throughput bound"},
		{"progress", NetworkBounds{MinDelivered: 1}, 0, false, false,
			ViolationNetProgress, "below analytic progress floor"},
		{"loss", NetworkBounds{Lossless: true}, 0, false, true,
			ViolationNetLoss, "predicted lossless"},
		{"deadlock", NetworkBounds{DeadlockFree: true}, 0, true, false,
			ViolationNetDeadlock, "predicted deadlock-free"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := New(Options{})
			idx := netLayout(r, 1)
			if tc.drop {
				r.OnDrop(idx[0], 50, 1500, 90*units.KB)
			}
			e := r.CheckNetwork(tc.b, 100, tc.delivered, tc.deadlocked)
			if e == nil || len(e.Violations) != 1 {
				t.Fatalf("violations = %+v, want one %v", e, tc.kind)
			}
			v := e.Violations[0]
			if v.Kind != tc.kind || !strings.Contains(v.Detail, tc.detail) {
				t.Fatalf("violation = %+v", v)
			}
		})
	}
}
