package fluid

import (
	"context"
	"testing"

	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// twoToOne builds H1,H2 → S → H3 with 10G links everywhere: two senders
// share one egress, so each converges to 5 Gb/s — the fig-5 congestion shape
// as a network.
func twoToOne(t *testing.T) (*topology.Topology, *routing.Table, []NetFlow) {
	t.Helper()
	topo := topology.New("twotoone")
	h1 := topo.AddHost("H1")
	h2 := topo.AddHost("H2")
	s := topo.AddSwitch("S")
	h3 := topo.AddHost("H3")
	topo.AddLink(h1, s, 10*units.Gbps, units.Microsecond)
	topo.AddLink(h2, s, 10*units.Gbps, units.Microsecond)
	topo.AddLink(s, h3, 10*units.Gbps, units.Microsecond)
	tab := routing.NewSPF(topo)
	var flows []NetFlow
	for _, src := range []topology.NodeID{h1, h2} {
		p, err := tab.Path(src, h3, 1)
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, NetFlow{Path: p})
	}
	return topo, tab, flows
}

// chansFor lists every ingress channel of topo: switch ingress ports get the
// given mapping factory's law, host ingress ports are consuming sinks.
func chansFor(t *testing.T, topo *topology.Topology, buffer units.Size, tau units.Time, period units.Time, mk func() Mapping) []NetChannel {
	t.Helper()
	var out []NetChannel
	for n := 0; n < topo.NumNodes(); n++ {
		id := topology.NodeID(n)
		host := topo.Node(id).Kind == topology.Host
		for _, at := range topo.Ports(id) {
			ch := NetChannel{
				Node:     id,
				Port:     at.Port,
				Capacity: at.Link.Capacity,
				Buffer:   buffer,
				Tau:      tau,
				Host:     host,
			}
			if !host {
				ch.Mapping = mk()
				ch.Period = period
			}
			out = append(out, ch)
		}
	}
	return out
}

func stagedSim(t *testing.T) func() Mapping {
	t.Helper()
	return func() Mapping {
		st, err := core.NewStageTableRatio(10*units.Gbps, 294*units.KB, 275*units.KB, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return Staged{st}
	}
}

func TestRunNetValidation(t *testing.T) {
	if _, err := RunNet(NetConfig{}); err == nil {
		t.Error("no channels accepted")
	}
	if _, err := RunNet(NetConfig{Channels: []NetChannel{{Capacity: units.Gbps, Buffer: units.KB}}}); err == nil {
		t.Error("no flows accepted")
	}
	if _, err := RunNet(NetConfig{
		Channels: []NetChannel{{Capacity: units.Gbps, Buffer: units.KB}},
		Flows:    []NetFlow{{}},
	}); err == nil {
		t.Error("empty path accepted")
	}
	topo, _, flows := twoToOne(t)
	if _, err := RunNet(NetConfig{
		Channels: chansFor(t, topo, 300*units.KB, 10*units.Microsecond, 0, stagedSim(t))[:1],
		Flows:    flows,
	}); err == nil {
		t.Error("path over unknown channel accepted")
	}
}

func TestRunNetTwoToOneStaged(t *testing.T) {
	topo, _, flows := twoToOne(t)
	tau := 10 * units.Microsecond
	res, err := RunNet(NetConfig{
		Channels: chansFor(t, topo, 300*units.KB, tau, 0, stagedSim(t)),
		Flows:    flows,
		Horizon:  20 * units.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked || res.Drops != 0 {
		t.Fatalf("deadlocked=%v drops=%d on a healthy 2:1", res.Deadlocked, res.Drops)
	}
	// Each sender gets ~5 Gb/s of the shared 10G egress.
	want := units.BytesIn(5*units.Gbps, 20*units.Millisecond)
	for i, d := range res.FlowDelivered {
		if d < want*9/10 || d > want*11/10 {
			t.Errorf("flow %d delivered %v, want ≈%v", i, d, want)
		}
	}
	// The congested ingress queues park inside the stage-1 band
	// (R1 = 5G): above B1, below the table ceiling plus overshoot slack.
	if res.HighWater < 270*units.KB || res.HighWater > 300*units.KB {
		t.Errorf("high water %v, want within the stage-1 band", res.HighWater)
	}
}

func TestRunNetTwoToOnePFC(t *testing.T) {
	topo, _, flows := twoToOne(t)
	tau := 10 * units.Microsecond
	buffer := 300 * units.KB
	xoff := buffer - units.BytesIn(10*units.Gbps, tau)
	mk := func() Mapping {
		return &OnOff{C: 10 * units.Gbps, XOFF: xoff, XON: xoff - 3*units.KB}
	}
	res, err := RunNet(NetConfig{
		Channels: chansFor(t, topo, buffer, tau, 0, mk),
		Flows:    flows,
		Horizon:  20 * units.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked || res.Drops != 0 {
		t.Fatalf("deadlocked=%v drops=%d on a healthy 2:1", res.Deadlocked, res.Drops)
	}
	// PFC saws between XON and XOFF + Cτ overshoot; it must stay inside
	// the buffer (that is what the xoff headroom is for).
	if res.HighWater > buffer {
		t.Errorf("high water %v above buffer %v", res.HighWater, buffer)
	}
	if res.HighWater < xoff {
		t.Errorf("high water %v never reached XOFF %v", res.HighWater, xoff)
	}
	want := units.BytesIn(5*units.Gbps, 20*units.Millisecond)
	total := res.FlowDelivered[0] + res.FlowDelivered[1]
	if total < want*2*9/10 {
		t.Errorf("total delivered %v, want ≈%v", total, 2*want)
	}
}

func TestRunNetTimeBased(t *testing.T) {
	topo, _, flows := twoToOne(t)
	m := core.ContinuousMapping{C: 10 * units.Gbps, B0: 153 * units.KB, Bm: 294 * units.KB}
	mk := func() Mapping { return Floored{M: Continuous{m}, Min: 8 * units.Kbps} }
	res, err := RunNet(NetConfig{
		Channels: chansFor(t, topo, 300*units.KB, 10*units.Microsecond, 52400*units.Nanosecond, mk),
		Flows:    flows,
		Horizon:  20 * units.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked || res.Drops != 0 {
		t.Fatalf("deadlocked=%v drops=%d", res.Deadlocked, res.Drops)
	}
	// The sampled feedback oscillates around the mapping's steady point
	// for a 5G drain; the peak stays within the buffer.
	steady := m.SteadyQueue(5 * units.Gbps)
	if res.HighWater < steady || res.HighWater > 300*units.KB {
		t.Errorf("high water %v, want between steady %v and the buffer", res.HighWater, steady)
	}
}

func TestRunNetFillsRegistry(t *testing.T) {
	topo, _, flows := twoToOne(t)
	reg := metrics.New(metrics.Options{})
	var nodes []metrics.NodeInfo
	for n := 0; n < topo.NumNodes(); n++ {
		id := topology.NodeID(n)
		ni := metrics.NodeInfo{ID: id, Name: topo.Node(id).Name, Host: topo.Node(id).Kind == topology.Host}
		for _, at := range topo.Ports(id) {
			ni.Ports = append(ni.Ports, metrics.PortInfo{
				Peer: at.Peer, PeerName: topo.Node(at.Peer).Name, Buffer: 300 * units.KB,
			})
		}
		nodes = append(nodes, ni)
	}
	reg.Bind(nodes, 1)
	res, err := RunNet(NetConfig{
		Channels: chansFor(t, topo, 300*units.KB, 10*units.Microsecond, 0, stagedSim(t)),
		Flows:    flows,
		Horizon:  10 * units.Millisecond,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := reg.Summary()
	if sum.BytesIn == 0 || sum.BytesOut == 0 {
		t.Fatalf("registry counters not filled: %+v", sum)
	}
	if sum.Drops != 0 {
		t.Errorf("registry drops %d, want 0", sum.Drops)
	}
	// The registry's switch high-water must agree with the solver's own
	// (byte-quantised admits can lag by at most a packet).
	hw := reg.SwitchHighWater()
	if diff := hw - res.HighWater; diff > 2*units.KB || diff < -2*units.KB {
		t.Errorf("registry high water %v vs solver %v", hw, res.HighWater)
	}
	if err := reg.Err(); err != nil {
		t.Errorf("runtime invariants tripped: %v", err)
	}
}

// zeroMapping admits nothing once feedback arrives — a stand-in for a fully
// wedged downstream, to exercise the stall detector.
type zeroMapping struct{}

func (zeroMapping) RateAt(units.Size) units.Rate { return 0 }
func (zeroMapping) LineRate() units.Rate         { return 10 * units.Gbps }

func TestRunNetDeadlockStall(t *testing.T) {
	topo := topology.New("chain")
	h1 := topo.AddHost("H1")
	s1 := topo.AddSwitch("S1")
	s2 := topo.AddSwitch("S2")
	h2 := topo.AddHost("H2")
	topo.AddLink(h1, s1, 10*units.Gbps, units.Microsecond)
	topo.AddLink(s1, s2, 10*units.Gbps, units.Microsecond)
	topo.AddLink(s2, h2, 10*units.Gbps, units.Microsecond)
	tab := routing.NewSPF(topo)
	path, err := tab.Path(h1, h2, 1)
	if err != nil {
		t.Fatal(err)
	}
	buffer := 300 * units.KB
	tau := 10 * units.Microsecond
	var chans []NetChannel
	for n := 0; n < topo.NumNodes(); n++ {
		id := topology.NodeID(n)
		host := topo.Node(id).Kind == topology.Host
		for _, at := range topo.Ports(id) {
			ch := NetChannel{
				Node: id, Port: at.Port, Capacity: at.Link.Capacity,
				Buffer: buffer, Tau: tau, Host: host,
			}
			switch {
			case host:
			case id == s2:
				// S2 refuses everything: the wedge.
				ch.Mapping = zeroMapping{}
			default:
				// S1 pauses its own sender before overflowing, so
				// nothing moves at all once the wedge propagates.
				xoff := buffer - units.BytesIn(10*units.Gbps, tau)
				ch.Mapping = &OnOff{C: 10 * units.Gbps, XOFF: xoff, XON: xoff - 3*units.KB}
			}
			chans = append(chans, ch)
		}
	}
	res, err := RunNet(NetConfig{
		Channels: chans,
		Flows:    []NetFlow{{Path: path}},
		Horizon:  20 * units.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("wedged chain not declared deadlocked (hw %v, delivered %v)", res.HighWater, res.Delivered)
	}
	if res.DeadlockAt <= 0 || res.DeadlockAt >= 20*units.Millisecond {
		t.Errorf("deadlock at %v", res.DeadlockAt)
	}
	if res.Drops != 0 {
		t.Errorf("lossless wedge recorded %d drops", res.Drops)
	}
	if res.End >= 20*units.Millisecond {
		t.Error("run did not stop early on deadlock")
	}
}

func TestRunNetHonoursCancellation(t *testing.T) {
	topo, _, flows := twoToOne(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunNet(NetConfig{
		Channels: chansFor(t, topo, 300*units.KB, 10*units.Microsecond, 0, stagedSim(t)),
		Flows:    flows,
		Horizon:  20 * units.Millisecond,
		Ctx:      ctx,
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
