package fluid

import (
	"testing"

	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/units"
)

func fig5Mapping() core.ContinuousMapping {
	return core.ContinuousMapping{C: 10 * units.Gbps, B0: 50 * units.KB, Bm: 100 * units.KB}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil mapping accepted")
	}
	if _, err := Run(Config{Mapping: Continuous{fig5Mapping()}}); err == nil {
		t.Error("nil drain accepted")
	}
	if _, err := Run(Config{
		Mapping: Continuous{fig5Mapping()},
		Drain:   ConstantDrain(0),
		Tau:     -1,
	}); err == nil {
		t.Error("negative tau accepted")
	}
}

func TestFig5FluidSteadyState(t *testing.T) {
	// The paper's Figure 5 numbers in the fluid model: with a 5 Gb/s
	// drain the queue converges to exactly B_s = 75 KB.
	res, err := Run(Config{
		Mapping: Continuous{fig5Mapping()},
		Drain:   ConstantDrain(5 * units.Gbps),
		Tau:     25 * units.Microsecond,
		Horizon: 5 * units.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steady < 74*units.KB || res.Steady > 76*units.KB {
		t.Errorf("steady queue %v, want 75KB", res.Steady)
	}
	// τ=25µs with B0 at the Theorem 4.1 bound for this mapping:
	// 4Cτ = 125KB > Bm−B0 = 50KB — B0 is beyond the safe bound, so an
	// overshoot above B_s is expected but the run still converges
	// because the drain never stalls.
	if res.QMax < res.Steady {
		t.Error("QMax below steady value")
	}
}

func TestStepDrainRecovery(t *testing.T) {
	// Drain stalls for 1 ms then resumes: queue rises toward Bm then
	// returns to the steady point.
	res, err := Run(Config{
		Mapping: Continuous{fig5Mapping()},
		Drain:   StepDrain(0, 5*units.Gbps, units.Millisecond),
		Tau:     5 * units.Microsecond,
		Horizon: 6 * units.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.QMax < 90*units.KB {
		t.Errorf("stalled phase peaked at only %v", res.QMax)
	}
	if res.QMax > 100*units.KB {
		t.Errorf("queue exceeded Bm: %v", res.QMax)
	}
	if res.Steady < 74*units.KB || res.Steady > 76*units.KB {
		t.Errorf("post-recovery steady %v, want 75KB", res.Steady)
	}
}

func TestStagedMapping(t *testing.T) {
	st, err := core.NewStageTable(10*units.Gbps, 300*units.KB, 275*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Mapping: Staged{st},
		Drain:   ConstantDrain(5 * units.Gbps),
		Tau:     7400 * units.Nanosecond,
		Horizon: 3 * units.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The queue parks in the stage-1 band (R1 = 5G = drain).
	if res.Steady < 270*units.KB || res.Steady > 295*units.KB {
		t.Errorf("staged steady %v, want within stage 1", res.Steady)
	}
	if res.Rate.Last() != 5e9 {
		t.Errorf("final rate %v, want 5G", units.Rate(res.Rate.Last()))
	}
}

func TestTimeBasedFeedback(t *testing.T) {
	m := core.ContinuousMapping{C: 10 * units.Gbps, B0: 400 * units.KB, Bm: 600 * units.KB}
	res, err := Run(Config{
		Mapping: Continuous{m},
		Drain:   ConstantDrain(2.5 * units.Gbps),
		Tau:     7 * units.Microsecond,
		Period:  52 * units.Microsecond,
		Horizon: 10 * units.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := m.SteadyQueue(2.5 * units.Gbps) // 550KB
	if res.Steady < want-10*units.KB || res.Steady > want+10*units.KB {
		t.Errorf("steady %v, want ≈%v", res.Steady, want)
	}
}

// TestRunHistBoundary pins the hist sizing: `steps` slots exactly, one per
// integration step, with the lagged read staying in range even when the lag
// spans the whole horizon. The original allocation was steps+1 — one slot
// was never written — and a regression to steps−1 would panic here.
func TestRunHistBoundary(t *testing.T) {
	step := 100 * units.Nanosecond
	horizon := 100 * step
	for _, tau := range []units.Time{0, step, horizon - step, horizon, 2 * horizon} {
		res, err := Run(Config{
			Mapping: Continuous{fig5Mapping()},
			Drain:   ConstantDrain(5 * units.Gbps),
			Tau:     tau,
			Step:    step,
			Horizon: horizon,
		})
		if err != nil {
			t.Fatalf("tau %v: %v", tau, err)
		}
		steps := int(horizon / step)
		if res.Queue.Len() != steps || res.Rate.Len() != steps {
			t.Fatalf("tau %v: %d queue / %d rate samples, want %d",
				tau, res.Queue.Len(), res.Rate.Len(), steps)
		}
		// The series were preallocated to exactly `steps`; append must
		// not have regrown them.
		if cap(res.Queue.V) != steps || cap(res.Rate.V) != steps {
			t.Errorf("tau %v: series capacity %d/%d, want %d (preallocated)",
				tau, cap(res.Queue.V), cap(res.Rate.V), steps)
		}
		// A lag at or beyond the horizon keeps the sender at line rate
		// for the whole run — the warmup branch, never an out-of-range
		// hist read.
		if tau >= horizon && res.Rate.Last() != 1e10 {
			t.Errorf("tau %v: final rate %v, want line rate", tau, res.Rate.Last())
		}
	}
}

// TestTimeBasedPipelineReuse pins the feedback-pipeline fix: a long
// time-based run must drain its in-flight sample queue in place (head
// index + reset) rather than re-slicing, so the backing array stops
// growing once the pipeline depth stabilises.
func TestTimeBasedPipelineReuse(t *testing.T) {
	m := core.ContinuousMapping{C: 10 * units.Gbps, B0: 400 * units.KB, Bm: 600 * units.KB}
	cfg := Config{
		Mapping: Continuous{m},
		Drain:   ConstantDrain(2.5 * units.Gbps),
		Tau:     7 * units.Microsecond,
		Period:  52 * units.Microsecond,
		Horizon: 50 * units.Millisecond,
	}
	// ~960 samples cross the pipeline; with the head-index reuse the whole
	// run costs a handful of allocations (series, hist, one pending grow).
	// The old per-update re-slice allocated once per sample.
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 50 {
		t.Errorf("Run allocated %.0f times; feedback pipeline is not reusing its backing array", allocs)
	}
}

func TestRequiredBufferMatchesTheorem(t *testing.T) {
	// The empirical minimum headroom must be at most the theorem's (the
	// bound is sufficient) and within a small constant factor of it
	// (the bound is not wildly loose: the proof's l ≥ 4 is tight for
	// the worst-case drain).
	theorem, empirical := RequiredBuffer(10*units.Gbps, 10*units.Microsecond)
	if theorem != 4*units.BytesIn(10*units.Gbps, 10*units.Microsecond) {
		t.Fatalf("theorem headroom = %v", theorem)
	}
	if empirical > theorem {
		t.Errorf("empirical %v exceeds the theorem's sufficient bound %v", empirical, theorem)
	}
	if empirical < theorem/3 {
		t.Errorf("empirical %v far below theorem %v; bound looks vacuous", empirical, theorem)
	}
}
