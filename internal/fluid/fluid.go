// Package fluid provides a continuous (fluid) model of one GFC-controlled
// queue: the deterministic dynamics behind Figures 4–6 and the Theorem
// 4.1/5.1 proofs. Where package netsim simulates packets, fluid integrates
// rates — useful for parameter design (how big must the buffer be for a
// given τ?), for validating the theorems' bounds, and for plotting the
// idealised evolutions the paper sketches.
package fluid

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/units"
)

// Mapping abstracts the queue-to-rate mapping function: the conceptual
// linear mapping and the practical stage table both satisfy it.
type Mapping interface {
	// RateAt maps an instantaneous queue length to the sending rate.
	RateAt(q units.Size) units.Rate
	// LineRate is the uncontrolled rate C.
	LineRate() units.Rate
}

// Continuous adapts core.ContinuousMapping.
type Continuous struct{ M core.ContinuousMapping }

// RateAt implements Mapping.
func (c Continuous) RateAt(q units.Size) units.Rate { return c.M.Rate(q) }

// LineRate implements Mapping.
func (c Continuous) LineRate() units.Rate { return c.M.C }

// Staged adapts a core.StageTable.
type Staged struct{ T *core.StageTable }

// RateAt implements Mapping.
func (s Staged) RateAt(q units.Size) units.Rate { return s.T.RateFor(q) }

// LineRate implements Mapping.
func (s Staged) LineRate() units.Rate { return s.T.C }

// Drain is a time-varying draining rate.
type Drain func(units.Time) units.Rate

// ConstantDrain drains at rate r forever.
func ConstantDrain(r units.Rate) Drain {
	return func(units.Time) units.Rate { return r }
}

// StepDrain drains at `before` until t, then at `after` — the "downstream
// stalls" scenarios of the proofs.
func StepDrain(before, after units.Rate, at units.Time) Drain {
	return func(t units.Time) units.Rate {
		if t < at {
			return before
		}
		return after
	}
}

// Config parameterises one fluid run.
type Config struct {
	Mapping Mapping
	Drain   Drain
	// Tau is the feedback latency: the sender's rate at time t follows
	// the queue at t − Tau.
	Tau units.Time
	// Period, when positive, models time-based feedback: the queue is
	// sampled every Period and each sample takes Tau to take effect
	// (several samples can be in flight). Zero means continuous
	// feedback (conceptual GFC / buffer-based stage crossings).
	Period units.Time
	// Step is the integration step; default 100 ns.
	Step units.Time
	// Horizon is the run length; default 5 ms.
	Horizon units.Time
}

// Result carries the integrated trajectories.
type Result struct {
	// Queue and Rate sample the trajectory at every integration step
	// (downsample before plotting).
	Queue *stats.Series
	Rate  *stats.Series
	// QMax is the maximum queue length reached.
	QMax units.Size
	// Steady is the mean queue over the final quarter of the horizon.
	Steady units.Size
}

// Run integrates the model.
func Run(cfg Config) (*Result, error) {
	if cfg.Mapping == nil || cfg.Drain == nil {
		return nil, fmt.Errorf("fluid: Mapping and Drain are required")
	}
	if cfg.Step == 0 {
		cfg.Step = 100 * units.Nanosecond
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 5 * units.Millisecond
	}
	if cfg.Tau < 0 || cfg.Period < 0 {
		return nil, fmt.Errorf("fluid: negative Tau or Period")
	}
	steps := int(cfg.Horizon / cfg.Step)
	lag := int(cfg.Tau / cfg.Step)
	res := &Result{
		Queue: &stats.Series{T: make([]units.Time, 0, steps), V: make([]float64, 0, steps)},
		Rate:  &stats.Series{T: make([]units.Time, 0, steps), V: make([]float64, 0, steps)},
	}

	hist := make([]float64, steps)
	var q, qmax float64
	rate := cfg.Mapping.LineRate()

	// Time-based feedback pipeline. Samples are applied in FIFO order via a
	// head index; the slice is reset (not re-sliced) once drained so the
	// backing array is reused instead of leaking one element per update.
	type update struct {
		at units.Time
		r  units.Rate
	}
	var pending []update
	head := 0
	nextReport := cfg.Period

	for i := 0; i < steps; i++ {
		now := units.Time(i) * cfg.Step
		hist[i] = q
		if cfg.Period > 0 {
			for head < len(pending) && now >= pending[head].at {
				rate = pending[head].r
				head++
			}
			if head == len(pending) && head > 0 {
				pending = pending[:0]
				head = 0
			}
			if now >= nextReport {
				pending = append(pending, update{
					at: now + cfg.Tau,
					r:  cfg.Mapping.RateAt(units.Size(q)),
				})
				nextReport += cfg.Period
			}
		} else {
			if i <= lag {
				rate = cfg.Mapping.LineRate()
			} else {
				rate = cfg.Mapping.RateAt(units.Size(hist[i-lag]))
			}
		}
		rd := cfg.Drain(now)
		q += (float64(rate) - float64(rd)) / 8 * cfg.Step.Seconds()
		if q < 0 {
			q = 0
		}
		if q > qmax {
			qmax = q
		}
		res.Queue.Append(now, q)
		res.Rate.Append(now, float64(rate))
	}
	res.QMax = units.Size(qmax)
	res.Steady = units.Size(res.Queue.MeanAfter(cfg.Horizon * 3 / 4))
	return res, nil
}

// RequiredBuffer searches for the smallest mapping ceiling B_m that keeps
// the conceptual queue below it for a stalled drain, given τ — the design
// question behind Theorem 4.1. It returns the theorem's closed-form answer
// alongside the empirical one from bisection on the fluid model, so the two
// can be compared.
func RequiredBuffer(c units.Rate, tau units.Time) (theorem, empirical units.Size) {
	theorem = 4 * units.BytesIn(c, tau) // B_m − B_0 ≥ 4Cτ

	ok := func(headroom units.Size) bool {
		bm := 10 * headroom // generous ceiling; B0 = bm − headroom
		m := core.ContinuousMapping{C: c, B0: bm - headroom, Bm: bm}
		res, err := Run(Config{
			Mapping: Continuous{m},
			Drain:   ConstantDrain(0),
			Tau:     tau,
			Horizon: 100 * tau,
		})
		if err != nil {
			return false
		}
		// At the theorem's exact bound the trajectory asymptotes to
		// B_m (l = 4 is the tight root), so integration error needs a
		// small allowance.
		return res.QMax <= bm+units.KB
	}
	lo, hi := units.Size(1), 8*theorem
	for hi-lo > theorem/128+1 {
		mid := (lo + hi) / 2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return theorem, hi
}
