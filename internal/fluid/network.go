// Network-of-queues fluid solver: the generalisation of Run from one
// GFC-controlled queue to a whole compiled topology. Each directed ingress
// channel carries its own lagged queue signal and queue-to-rate law; flows
// move bytes hop by hop, sharing each channel's admission budget
// proportionally. Where netsim replays every packet, RunNet integrates rates
// — orders of magnitude faster — and fills the same metrics.Registry
// counters (bytes in/out, high-water occupancy, drops) so invariant
// checking, CheckNetwork and report writers work unchanged.
package fluid

import (
	"context"
	"fmt"
	"math"

	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// OnOff is a stateful pause/resume law: PFC hysteresis as a Mapping. The
// rate is C until the (lagged) queue reaches XOFF, then zero until it falls
// back to XON. One instance per channel — the pause state is history, not a
// function of the instantaneous queue.
type OnOff struct {
	C         units.Rate
	XOFF, XON units.Size
	paused    bool
}

// RateAt implements Mapping.
func (o *OnOff) RateAt(q units.Size) units.Rate {
	if o.paused {
		if q <= o.XON {
			o.paused = false
		}
	} else if q >= o.XOFF {
		o.paused = true
	}
	if o.paused {
		return 0
	}
	return o.C
}

// LineRate implements Mapping.
func (o *OnOff) LineRate() units.Rate { return o.C }

// Floored clamps a mapping's output to a minimum rate — the 8 Kbps floor the
// practical GFC schemes keep so progress never fully stops (Theorem 5.1's
// deadlock-freedom argument).
type Floored struct {
	M   Mapping
	Min units.Rate
}

// RateAt implements Mapping.
func (f Floored) RateAt(q units.Size) units.Rate {
	r := f.M.RateAt(q)
	if r < f.Min {
		return f.Min
	}
	return r
}

// LineRate implements Mapping.
func (f Floored) LineRate() units.Rate { return f.M.LineRate() }

// Band is the differential tolerance between the fluid and packet models of
// the same channel: the bytes a line-rate sender emits during the ~3 µs of
// feedback-latency ambiguity the fluid model elides (serialisation,
// scheduler quantisation), plus four packets of discretisation slack. The
// backend-conformance suite asserts it per scenario and auto-mode sweeps
// enforce it as a runtime invariant on every escalation.
func Band(c units.Rate, mtu units.Size) units.Size {
	return units.BytesIn(c, 3*units.Microsecond) + 4*mtu
}

// NetChannel is one directed ingress queue of the network model: traffic
// arriving at Node through Port (priority 0 — the fluid model is
// single-priority). The channel index space is whatever order the caller
// lists them in; metrics mapping goes through Registry.ChannelIndex.
type NetChannel struct {
	Node topology.NodeID
	Port int
	// Capacity is the feeding link's line rate — the admission ceiling.
	Capacity units.Rate
	// Buffer bounds the queue; inflow beyond it is dropped.
	Buffer units.Size
	// Tau is the feedback latency of this hop: the upstream sender's rate
	// at time t follows this queue at t − Tau.
	Tau units.Time
	// Period, when positive, models time-based feedback (the queue is
	// sampled every Period, each sample taking Tau to take effect).
	Period units.Time
	// Mapping is the queue-to-rate law; nil means uncontrolled (admit at
	// Capacity — host ingress, or schemes the caller handles elsewhere).
	Mapping Mapping
	// Host marks a destination host ingress: bytes arriving here are
	// consumed (delivered) immediately and never queue.
	Host bool
}

// NetFlow routes Size bytes (0 = unbounded) along Path, starting at Start.
// Path follows routing.Hop convention: one hop per transmitting node, the
// destination not included.
type NetFlow struct {
	Path  []routing.Hop
	Size  units.Size
	Start units.Time
}

// NetConfig parameterises one network fluid run.
type NetConfig struct {
	Channels []NetChannel
	Flows    []NetFlow
	// Step is the integration step; default 500 ns (coarser than the
	// single-queue default — a network smooths its own transients).
	Step units.Time
	// Horizon is the run length; default 5 ms.
	Horizon units.Time
	// MTU quantises drop accounting (drops are reported in packets);
	// default 1500 B.
	MTU units.Size
	// Metrics, when non-nil, is seeded once at the end of the run with
	// every channel's exact totals (bytes in/out, peak occupancy, drops)
	// via RecordContinuous — the solver tracks occupancy exactly, so
	// streaming per-step events through the per-packet hooks would only be
	// slower and lossier. The registry must already be bound with a layout
	// whose ChannelIndex resolves every (Node, Port, 0) listed in Channels.
	Metrics *metrics.Registry
	// StallWindow is how long the network must hold positive backlog with
	// zero byte movement before RunNet declares deadlock; default 1 ms.
	StallWindow units.Time
	// Ctx, when non-nil, is polled every few thousand steps so bounded
	// runs honour cancellation.
	Ctx context.Context
}

// NetResult aggregates one network fluid run.
type NetResult struct {
	End       units.Time
	Delivered units.Size
	// FlowDelivered is per-flow delivered bytes, in Flows order.
	FlowDelivered []units.Size
	// Drops counts whole dropped packets (bytes/MTU).
	Drops int64
	// HighWater is the maximum queue reached on any non-host channel.
	HighWater  units.Size
	Deadlocked bool
	DeadlockAt units.Time
	Steps      int
}

// chanState is the per-channel integration state (struct-of-arrays would
// buy little here: the step loop is dominated by the per-flow inner loop).
type chanState struct {
	q        float64   // current queue, bytes
	hist     []float64 // lagged-queue ring, len lag+1
	lag      int
	rate     units.Rate // current admission rate (Period channels)
	pending  []rateUpdate
	head     int
	nextSamp units.Time
	// Per-step scratch.
	want, budget, inflow, outflow float64
	sendScale, keepScale          float64
	dropStep, capStep             float64
	// Fast-forward window accumulators: queue snapshot at the last window
	// boundary, the previous window's queue delta, and in/out/dropped
	// bytes since the boundary.
	qSnap, dqPrev, winIn, winOut, winDrop float64
	// Run totals, seeded into the metrics registry once at the end of the
	// run. dropAcc carries fractional dropped bytes until they amount to a
	// whole packet.
	totalIn, totalOut, dropAcc float64
	dropPkts                   int64
	qmax                       float64
	idx                        int // metrics channel index, -1 without registry
}

type rateUpdate struct {
	at units.Time
	r  units.Rate
}

// flowState tracks one flow's backlog at each hop's ingress channel.
type flowState struct {
	chans   []int // channel index per hop
	backlog []float64
	remain  float64 // source bytes left; +Inf for unbounded
	srcCap  units.Rate
	start   units.Time
	done    bool
	winDel  float64 // bytes delivered this fast-forward window
}

// RunNet integrates the network model.
func RunNet(cfg NetConfig) (*NetResult, error) {
	if len(cfg.Channels) == 0 {
		return nil, fmt.Errorf("fluid: no channels")
	}
	if len(cfg.Flows) == 0 {
		return nil, fmt.Errorf("fluid: no flows")
	}
	if cfg.Step == 0 {
		cfg.Step = 500 * units.Nanosecond
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 5 * units.Millisecond
	}
	if cfg.MTU == 0 {
		cfg.MTU = 1500 * units.Byte
	}
	if cfg.StallWindow == 0 {
		cfg.StallWindow = units.Millisecond
	}
	if cfg.Step < 0 || cfg.Horizon < 0 {
		return nil, fmt.Errorf("fluid: negative Step or Horizon")
	}

	// Channel lookup by (node, port).
	type key struct {
		n topology.NodeID
		p int
	}
	byKey := make(map[key]int, len(cfg.Channels))
	chans := make([]chanState, len(cfg.Channels))
	for i := range cfg.Channels {
		ch := &cfg.Channels[i]
		if ch.Capacity <= 0 {
			return nil, fmt.Errorf("fluid: channel %d (node %d port %d): non-positive capacity", i, ch.Node, ch.Port)
		}
		if ch.Buffer <= 0 && !ch.Host {
			return nil, fmt.Errorf("fluid: channel %d (node %d port %d): non-positive buffer", i, ch.Node, ch.Port)
		}
		if ch.Tau < 0 || ch.Period < 0 {
			return nil, fmt.Errorf("fluid: channel %d: negative Tau or Period", i)
		}
		k := key{ch.Node, ch.Port}
		if _, dup := byKey[k]; dup {
			return nil, fmt.Errorf("fluid: duplicate channel for node %d port %d", ch.Node, ch.Port)
		}
		byKey[k] = i
		st := &chans[i]
		st.lag = int(ch.Tau / cfg.Step)
		st.hist = make([]float64, st.lag+1)
		st.rate = ch.Capacity
		if ch.Mapping != nil {
			st.rate = ch.Mapping.LineRate()
		}
		st.nextSamp = ch.Period
		st.idx = -1
		if cfg.Metrics != nil {
			st.idx = cfg.Metrics.ChannelIndex(ch.Node, ch.Port, 0)
		}
	}

	// Resolve flow paths to channel indices: hop h of a flow feeds the
	// ingress channel of the node *after* the hop's link.
	flows := make([]flowState, len(cfg.Flows))
	for fi := range cfg.Flows {
		f := &cfg.Flows[fi]
		if len(f.Path) == 0 {
			return nil, fmt.Errorf("fluid: flow %d: empty path", fi)
		}
		if f.Start < 0 {
			return nil, fmt.Errorf("fluid: flow %d: negative start", fi)
		}
		fs := &flows[fi]
		fs.chans = make([]int, len(f.Path))
		fs.backlog = make([]float64, len(f.Path))
		fs.start = f.Start
		fs.srcCap = f.Path[0].Link.Capacity
		fs.remain = math.Inf(1)
		if f.Size > 0 {
			fs.remain = float64(f.Size)
		}
		for h, hop := range f.Path {
			if hop.Link == nil {
				return nil, fmt.Errorf("fluid: flow %d hop %d: nil link", fi, h)
			}
			if hop.Link.Failed {
				return nil, fmt.Errorf("fluid: flow %d hop %d: routes over failed link", fi, h)
			}
			next := hop.Link.Other(hop.Node)
			ci, ok := byKey[key{next, hop.Link.PortOn(next)}]
			if !ok {
				return nil, fmt.Errorf("fluid: flow %d hop %d: no channel at node %d port %d",
					fi, h, next, hop.Link.PortOn(next))
			}
			fs.chans[h] = ci
		}
	}

	steps := int(cfg.Horizon / cfg.Step)
	dt := cfg.Step.Seconds()
	mtu := float64(cfg.MTU)
	res := &NetResult{FlowDelivered: make([]units.Size, len(flows))}
	flowDel := make([]float64, len(flows))
	var delivered float64
	var drops int64
	stallStart := units.Time(-1)

	// Quasi-steady fast-forward: with constant demand the dynamics are
	// deterministic, so once the network settles into a linear regime the
	// rest of the horizon is extrapolated from window-mean rates in one
	// shot, including each queue's own trajectory. Linearity is judged per
	// window — one window spans the deepest feedback pipeline (lag ring
	// plus any periodic sampler), so the queue-to-rate micro-oscillation
	// that periodic resampling sustains forever averages out. Per channel:
	// a slow drain — the quasi-static tail of a congested victim queue —
	// passes up to 0.1% of line rate (draining can neither raise the peak
	// nor start dropping; the residual only perturbs delivered totals by a
	// few KB out of tens of MB); a climb passes when it is steady — the
	// window-to-window change, integrated over the tail, stays under the
	// 4-MTU slack that Band reserves for discretisation — and its linear
	// projection stays below the buffer (reaching the buffer would start
	// dropping, a qualitative change). Hysteretic (OnOff) channels ride a
	// relaxation limit cycle that is never linear, so they only pass
	// essentially still. Two consecutive calm windows are required so the
	// extrapolation basis is not the tail of a transient, and a pending
	// stall always blocks — the watch, not the extrapolation, owns the
	// deadlock verdict.
	window := 64
	for c := range chans {
		st := &chans[c]
		st.capStep = float64(cfg.Channels[c].Capacity) / 8 * dt
		w := st.lag + 2
		if p := cfg.Channels[c].Period; p > 0 {
			if pw := int(p/cfg.Step) + st.lag + 2; pw > w {
				w = pw
			}
		}
		if w > window {
			window = w
		}
	}
	const drainFrac = 1e-3 // tolerated drain, fraction of line rate
	stableWins := 0

	for i := 0; i < steps; i++ {
		now := units.Time(i) * cfg.Step
		res.End = now + cfg.Step
		res.Steps = i + 1
		if cfg.Ctx != nil && i&4095 == 0 {
			if err := cfg.Ctx.Err(); err != nil {
				return res, err
			}
		}

		// Phase A: per-channel admission budgets from the lagged queue
		// signal (or the periodic-sample pipeline).
		for c := range chans {
			st := &chans[c]
			ch := &cfg.Channels[c]
			r := ch.Capacity
			if ch.Mapping != nil {
				if ch.Period > 0 {
					for st.head < len(st.pending) && now >= st.pending[st.head].at {
						st.rate = st.pending[st.head].r
						st.head++
					}
					if st.head == len(st.pending) && st.head > 0 {
						st.pending = st.pending[:0]
						st.head = 0
					}
					if now >= st.nextSamp {
						st.pending = append(st.pending, rateUpdate{
							at: now + ch.Tau,
							r:  ch.Mapping.RateAt(units.Size(st.q)),
						})
						st.nextSamp += ch.Period
					}
					r = st.rate
				} else if i <= st.lag {
					r = ch.Mapping.LineRate()
				} else {
					r = ch.Mapping.RateAt(units.Size(st.hist[(i-st.lag)%(st.lag+1)]))
				}
			}
			if r > ch.Capacity {
				r = ch.Capacity
			}
			st.budget = float64(r) / 8 * dt
			st.want, st.inflow, st.outflow = 0, 0, 0
		}

		// Phase B: wants from start-of-step stores, then per-channel
		// send/keep scales. A transfer leaves its upstream store at
		// sendScale (admission budget) and survives into the queue at
		// keepScale (buffer space); the difference is dropped bytes.
		for fi := range flows {
			fs := &flows[fi]
			if fs.done || now < fs.start {
				continue
			}
			src := fs.remain
			if cap := float64(fs.srcCap) / 8 * dt; src > cap {
				src = cap
			}
			chans[fs.chans[0]].want += src
			for h := 1; h < len(fs.chans); h++ {
				chans[fs.chans[h]].want += fs.backlog[h-1]
			}
		}
		for c := range chans {
			st := &chans[c]
			ch := &cfg.Channels[c]
			x := st.want
			if x > st.budget {
				x = st.budget
			}
			fits := x
			if !ch.Host {
				free := float64(ch.Buffer) - st.q
				if free < 0 {
					free = 0
				}
				if fits > free {
					fits = free
				}
			}
			st.sendScale, st.keepScale = 1, 1
			if st.want > 0 {
				st.sendScale = x / st.want
			}
			if x > 0 {
				st.keepScale = fits / x
			}
			st.dropStep = x - fits
			st.dropAcc += st.dropStep
		}

		// Phase C: apply transfers. Hops are walked last-to-first so each
		// upstream store is read (as this hop's avail) before its own
		// earlier hop writes it — every move is computed from
		// start-of-step state, keeping the step order-independent.
		var moved float64
		for fi := range flows {
			fs := &flows[fi]
			if fs.done || now < fs.start {
				continue
			}
			srcAvail := fs.remain
			if cap := float64(fs.srcCap) / 8 * dt; srcAvail > cap {
				srcAvail = cap
			}
			for h := len(fs.chans) - 1; h >= 0; h-- {
				st := &chans[fs.chans[h]]
				avail := srcAvail
				if h > 0 {
					avail = fs.backlog[h-1]
				}
				out := avail * st.sendScale
				if out <= 0 {
					continue
				}
				in := out * st.keepScale
				if h == 0 {
					fs.remain -= out
				} else {
					fs.backlog[h-1] -= out
					chans[fs.chans[h-1]].outflow += out
				}
				if cfg.Channels[fs.chans[h]].Host {
					flowDel[fi] += in
					fs.winDel += in
					delivered += in
					st.inflow += in
					st.outflow += in
				} else {
					fs.backlog[h] += in
					st.inflow += in
				}
				moved += out
			}
			if fs.remain <= 0 {
				fs.remain = 0
				var backlog float64
				for _, b := range fs.backlog {
					backlog += b
				}
				if backlog < 1 { // fully drained: below one byte in flight
					fs.done = true
				}
			}
		}

		// Phase D: queue updates, metrics, lag history, deadlock watch.
		var backlog float64
		for c := range chans {
			st := &chans[c]
			st.q += st.inflow - st.outflow
			if st.q < 0 {
				st.q = 0
			}
			if !cfg.Channels[c].Host {
				backlog += st.q
				if st.q > st.qmax {
					st.qmax = st.q
				}
			}
			st.totalIn += st.inflow
			st.totalOut += st.outflow
			st.winIn += st.inflow
			st.winOut += st.outflow
			st.winDrop += st.dropStep
			if st.dropAcc >= mtu {
				n := math.Floor(st.dropAcc / mtu)
				st.dropAcc -= n * mtu
				st.dropPkts += int64(n)
				drops += int64(n)
			}
			st.hist[(i+1)%(st.lag+1)] = st.q
		}
		if backlog > mtu && moved < 1 {
			if stallStart < 0 {
				stallStart = now
			}
			if now-stallStart >= cfg.StallWindow {
				res.Deadlocked = true
				res.DeadlockAt = stallStart
				break
			}
		} else {
			stallStart = -1
		}

		// Window boundary: judge quiescence, fast-forward if two calm
		// windows have accrued, then roll the accumulators. A pending
		// stall must run its course (the watch, not the extrapolation,
		// owns the deadlock verdict); bounded or not-yet-started flows
		// make the future non-linear, so they block the fast-forward too.
		if (i+1)%window == 0 {
			w := float64(window)
			rem := float64(steps - (i + 1))
			calm := stallStart < 0
			if calm {
				for c := range chans {
					st := &chans[c]
					ch := &cfg.Channels[c]
					dq := st.q - st.qSnap
					var ok bool
					if _, hyst := ch.Mapping.(*OnOff); hyst {
						ok = dq <= 1 && dq >= -1
					} else if dq <= 0 {
						ok = -dq <= st.capStep*drainFrac*w
					} else {
						curve := dq - st.dqPrev
						if curve < 0 {
							curve = -curve
						}
						ok = curve*rem/w <= 4*mtu &&
							st.q+dq/w*rem < float64(ch.Buffer)
					}
					if !ok {
						calm = false
						break
					}
				}
			}
			if calm {
				stableWins++
			} else {
				stableWins = 0
			}
			if stableWins >= 2 && rem > 0 {
				linear := true
				for fi := range flows {
					fs := &flows[fi]
					if fs.done {
						continue
					}
					if now < fs.start || !math.IsInf(fs.remain, 1) {
						linear = false
						break
					}
				}
				if linear {
					for c := range chans {
						st := &chans[c]
						ch := &cfg.Channels[c]
						st.totalIn += st.winIn / w * rem
						st.totalOut += st.winOut / w * rem
						st.dropAcc += st.winDrop / w * rem
						if st.dropAcc >= mtu {
							n := math.Floor(st.dropAcc / mtu)
							st.dropAcc -= n * mtu
							st.dropPkts += int64(n)
							drops += int64(n)
						}
						if ch.Host {
							continue
						}
						st.q += (st.q - st.qSnap) / w * rem
						if st.q < 0 {
							st.q = 0
						}
						if b := float64(ch.Buffer); st.q > b {
							st.q = b
						}
						if st.q > st.qmax {
							st.qmax = st.q
						}
					}
					for fi := range flows {
						fs := &flows[fi]
						if fs.done {
							continue
						}
						add := fs.winDel / w * rem
						flowDel[fi] += add
						delivered += add
					}
					res.End = units.Time(steps) * cfg.Step
					res.Steps = steps
					break
				}
			}
			for c := range chans {
				st := &chans[c]
				st.dqPrev = st.q - st.qSnap
				st.qSnap = st.q
				st.winIn, st.winOut, st.winDrop = 0, 0, 0
			}
			for fi := range flows {
				flows[fi].winDel = 0
			}
		}
	}

	res.Delivered = units.Size(delivered)
	res.Drops = drops
	for fi := range flows {
		res.FlowDelivered[fi] = units.Size(flowDel[fi])
	}
	var hw float64
	for c := range chans {
		if !cfg.Channels[c].Host && chans[c].qmax > hw {
			hw = chans[c].qmax
		}
	}
	res.HighWater = units.Size(hw)
	if cfg.Metrics != nil {
		for c := range chans {
			st := &chans[c]
			if st.idx < 0 {
				continue
			}
			cfg.Metrics.RecordContinuous(st.idx, res.End,
				units.Size(st.totalIn), units.Size(st.totalOut),
				units.Size(st.qmax), units.Size(st.q), st.dropPkts)
		}
	}
	return res, nil
}
