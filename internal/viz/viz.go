// Package viz renders time series and CDFs as compact ASCII charts for the
// CLI and examples — enough to see the shape of a queue trace or a rate
// evolution in a terminal, in the spirit of the paper's figures.
package viz

import (
	"fmt"
	"math"
	"strings"

	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/units"
)

// Chart renders series as an ASCII line chart of the given width and height
// (in character cells). The series is resampled to the width; the y-axis is
// scaled to [0, max]. yLabel names the quantity; the value formatter turns
// a y value into an axis label (nil: %.3g).
type Chart struct {
	Width, Height int
	YLabel        string
	FormatY       func(float64) string
}

// DefaultChart is 72×12 cells.
func DefaultChart(yLabel string) Chart {
	return Chart{Width: 72, Height: 12, YLabel: yLabel}
}

// Render draws the series.
func (c Chart) Render(s *stats.Series) string {
	if c.Width <= 0 {
		c.Width = 72
	}
	if c.Height <= 0 {
		c.Height = 12
	}
	fy := c.FormatY
	if fy == nil {
		fy = func(v float64) string { return fmt.Sprintf("%.3g", v) }
	}
	if s == nil || s.Len() == 0 {
		return "(no data)\n"
	}
	d := s.Downsample(c.Width)
	ymax := d.Max()
	if ymax <= 0 {
		ymax = 1
	}

	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(d.V)))
	}
	for col, v := range d.V {
		level := int(math.Round(v / ymax * float64(c.Height-1)))
		if level < 0 {
			level = 0
		}
		if level >= c.Height {
			level = c.Height - 1
		}
		row := c.Height - 1 - level
		grid[row][col] = '*'
	}

	var b strings.Builder
	top := fy(ymax)
	fmt.Fprintf(&b, "%s (max %s)\n", c.YLabel, top)
	for r := range grid {
		b.WriteByte('|')
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", len(d.V)))
	b.WriteByte('\n')
	fmt.Fprintf(&b, " %s .. %s\n",
		d.T[0].Duration(), d.T[len(d.T)-1].Duration())
	return b.String()
}

// RenderCDF draws an empirical CDF as quantile rows.
func RenderCDF(c *stats.CDF, label string, format func(float64) string) string {
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.4g", v) }
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", label, c.Len())
	if c.Len() == 0 {
		return b.String()
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := c.Quantile(q)
		bar := int(q * 40)
		fmt.Fprintf(&b, "  p%-5.3g %-10s |%s\n", q*100, format(v),
			strings.Repeat("#", bar))
	}
	return b.String()
}

// RateSeries converts a BinCounter into a Series of rates for charting.
func RateSeries(bc *stats.BinCounter) *stats.Series {
	s := &stats.Series{}
	for i, r := range bc.Rates() {
		s.Append(units.Time(i)*bc.Width, float64(r))
	}
	return s
}

// FormatRate renders a y value that is a rate in bits/s.
func FormatRate(v float64) string { return units.Rate(v).String() }

// FormatSize renders a y value that is a size in bytes.
func FormatSize(v float64) string { return units.Size(v).String() }
