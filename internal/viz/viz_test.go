package viz

import (
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/units"
)

func TestChartRender(t *testing.T) {
	s := &stats.Series{}
	for i := 0; i < 200; i++ {
		s.Append(units.Time(i)*units.Microsecond, float64(i%100))
	}
	out := DefaultChart("queue").Render(s)
	if !strings.Contains(out, "queue (max") {
		t.Fatalf("missing header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + 12 rows + axis + range line.
	if len(lines) != 15 {
		t.Fatalf("lines = %d, want 15:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data points plotted")
	}
	// Width respected: plotted rows are at most 72+1 chars.
	for _, l := range lines[1:13] {
		if len(l) > 73 {
			t.Fatalf("row too wide: %d", len(l))
		}
	}
}

func TestChartEmpty(t *testing.T) {
	out := DefaultChart("x").Render(&stats.Series{})
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty series: %q", out)
	}
	if out := DefaultChart("x").Render(nil); !strings.Contains(out, "no data") {
		t.Fatalf("nil series: %q", out)
	}
}

func TestChartFlatAndZero(t *testing.T) {
	s := &stats.Series{}
	for i := 0; i < 10; i++ {
		s.Append(units.Time(i), 0)
	}
	out := Chart{Width: 10, Height: 4, YLabel: "zeros"}.Render(s)
	if !strings.Contains(out, "*") {
		t.Fatal("zero series should still plot on the baseline")
	}
}

func TestChartCustomFormat(t *testing.T) {
	s := &stats.Series{}
	s.Append(0, 5e9)
	s.Append(1, 10e9)
	c := DefaultChart("rate")
	c.FormatY = FormatRate
	out := c.Render(s)
	if !strings.Contains(out, "10Gbps") {
		t.Fatalf("rate formatting missing:\n%s", out)
	}
}

func TestRenderCDF(t *testing.T) {
	var c stats.CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	out := RenderCDF(&c, "slowdown", nil)
	if !strings.Contains(out, "n=100") || !strings.Contains(out, "p50") {
		t.Fatalf("CDF render:\n%s", out)
	}
	if !strings.Contains(out, "p99") {
		t.Fatal("missing p99 row")
	}
	empty := RenderCDF(&stats.CDF{}, "empty", nil)
	if !strings.Contains(empty, "n=0") {
		t.Fatal("empty CDF header wrong")
	}
}

func TestRateSeries(t *testing.T) {
	bc := stats.NewBinCounter(units.Millisecond)
	bc.Add(0, 1250) // 10 Mb/s in a 1ms bin... 1250B*8/1ms = 10Mbps
	bc.Add(units.Millisecond, 2500)
	s := RateSeries(bc)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.V[0] != 10e6 || s.V[1] != 20e6 {
		t.Fatalf("rates = %v", s.V)
	}
	if FormatSize(1000) != "1KB" {
		t.Fatal("FormatSize wrong")
	}
}
