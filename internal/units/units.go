// Package units defines the physical quantities used throughout the
// simulator: simulation time, data sizes and data rates. Keeping them as
// distinct types catches unit mix-ups at compile time and gives every
// experiment a single, consistent arithmetic.
package units

import (
	"fmt"
	"math"
	"time"
)

// Time is a point on the simulation clock, in nanoseconds since the start of
// the run. It is deliberately distinct from time.Duration so wall-clock and
// simulated time cannot be confused.
type Time int64

// Common simulation-time constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Never is a sentinel meaning "no scheduled time".
const Never Time = math.MaxInt64

// Duration converts a simulated interval to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t in microseconds as a float.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t in milliseconds as a float.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return t.Duration().String()
}

// Size is an amount of data in bytes.
type Size int64

// Common data-size constants.
const (
	Byte Size = 1
	KB   Size = 1000 * Byte // decimal kilobyte, as used in the paper
	MB   Size = 1000 * KB
	KiB  Size = 1024 * Byte
	MiB  Size = 1024 * KiB
)

// Bits reports the size in bits.
func (s Size) Bits() int64 { return int64(s) * 8 }

func (s Size) String() string {
	switch {
	case s >= MB && s%MB == 0:
		return fmt.Sprintf("%dMB", s/MB)
	case s >= KB && s%KB == 0:
		return fmt.Sprintf("%dKB", s/KB)
	default:
		return fmt.Sprintf("%dB", int64(s))
	}
}

// Rate is a data rate in bits per second. Zero means fully paused.
type Rate float64

// Common rate constants.
const (
	BitPerSecond Rate = 1
	Kbps         Rate = 1e3
	Mbps         Rate = 1e6
	Gbps         Rate = 1e9
)

// Gigabits reports the rate in Gb/s.
func (r Rate) Gigabits() float64 { return float64(r) / float64(Gbps) }

func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.4gGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.4gMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.4gKbps", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%.4gbps", float64(r))
	}
}

// TransmissionTime reports how long transmitting s at rate r takes, rounded
// up to the next nanosecond. A zero or negative rate yields Never: the data
// cannot be transmitted.
func TransmissionTime(s Size, r Rate) Time {
	if r <= 0 {
		return Never
	}
	ns := float64(s.Bits()) / float64(r) * 1e9
	t := Time(math.Ceil(ns))
	if t < 0 {
		return Never
	}
	return t
}

// BytesIn reports how many whole bytes rate r delivers in interval d.
func BytesIn(r Rate, d Time) Size {
	if r <= 0 || d <= 0 {
		return 0
	}
	return Size(float64(r) * d.Seconds() / 8)
}

// RateOf reports the average rate that delivers s bytes in interval d.
func RateOf(s Size, d Time) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(float64(s.Bits()) / d.Seconds())
}
