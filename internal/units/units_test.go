package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConstants(t *testing.T) {
	if Second != 1e9*Nanosecond {
		t.Fatalf("Second = %d ns", Second)
	}
	if Millisecond != 1e6 || Microsecond != 1e3 {
		t.Fatalf("unexpected constants: ms=%d us=%d", Millisecond, Microsecond)
	}
}

func TestTimeConversions(t *testing.T) {
	tt := 1500 * Microsecond
	if got := tt.Millis(); got != 1.5 {
		t.Errorf("Millis() = %v, want 1.5", got)
	}
	if got := tt.Micros(); got != 1500 {
		t.Errorf("Micros() = %v, want 1500", got)
	}
	if got := tt.Seconds(); got != 0.0015 {
		t.Errorf("Seconds() = %v, want 0.0015", got)
	}
}

func TestTimeString(t *testing.T) {
	if got := Never.String(); got != "never" {
		t.Errorf("Never.String() = %q", got)
	}
	if got := (2 * Millisecond).String(); got != "2ms" {
		t.Errorf("(2ms).String() = %q", got)
	}
}

func TestSizeBits(t *testing.T) {
	if got := (1 * KB).Bits(); got != 8000 {
		t.Errorf("1KB.Bits() = %d, want 8000", got)
	}
	if got := (1 * KiB).Bits(); got != 8192 {
		t.Errorf("1KiB.Bits() = %d, want 8192", got)
	}
}

func TestSizeString(t *testing.T) {
	cases := []struct {
		s    Size
		want string
	}{
		{1500 * Byte, "1500B"},
		{100 * KB, "100KB"},
		{2 * MB, "2MB"},
		{1536 * Byte, "1536B"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.s), got, c.want)
		}
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		r    Rate
		want string
	}{
		{10 * Gbps, "10Gbps"},
		{5 * Mbps, "5Mbps"},
		{8 * Kbps, "8Kbps"},
		{100, "100bps"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.r), got, c.want)
		}
	}
}

func TestTransmissionTime(t *testing.T) {
	// 1500B at 10Gbps = 1.2 us.
	got := TransmissionTime(1500*Byte, 10*Gbps)
	if got != 1200*Nanosecond {
		t.Errorf("TransmissionTime(1500B,10G) = %v, want 1.2us", got)
	}
	// Zero rate: cannot transmit.
	if got := TransmissionTime(1*Byte, 0); got != Never {
		t.Errorf("TransmissionTime at rate 0 = %v, want Never", got)
	}
	if got := TransmissionTime(1*Byte, -5); got != Never {
		t.Errorf("TransmissionTime at negative rate = %v, want Never", got)
	}
}

func TestTransmissionTimeRoundsUp(t *testing.T) {
	// 1 byte at 3 bps: 8/3 s = 2.666..s -> must round up.
	got := TransmissionTime(1*Byte, 3)
	want := Time(math.Ceil(8.0 / 3.0 * 1e9))
	if got != want {
		t.Errorf("TransmissionTime = %v, want %v", got, want)
	}
}

func TestBytesIn(t *testing.T) {
	// 10Gbps for 1us = 10e9 * 1e-6 / 8 = 1250 bytes.
	if got := BytesIn(10*Gbps, Microsecond); got != 1250 {
		t.Errorf("BytesIn = %d, want 1250", got)
	}
	if got := BytesIn(10*Gbps, 0); got != 0 {
		t.Errorf("BytesIn(d=0) = %d, want 0", got)
	}
	if got := BytesIn(0, Second); got != 0 {
		t.Errorf("BytesIn(r=0) = %d, want 0", got)
	}
}

func TestRateOf(t *testing.T) {
	// 1250 bytes in 1us = 10Gbps.
	if got := RateOf(1250*Byte, Microsecond); got != 10*Gbps {
		t.Errorf("RateOf = %v, want 10Gbps", got)
	}
	if got := RateOf(100*Byte, 0); got != 0 {
		t.Errorf("RateOf(d=0) = %v, want 0", got)
	}
}

// Property: transmission time is monotone in size and antitone in rate.
func TestTransmissionTimeMonotone(t *testing.T) {
	f := func(sz uint16, extra uint16) bool {
		s := Size(sz)
		r := 1 * Gbps
		t1 := TransmissionTime(s, r)
		t2 := TransmissionTime(s+Size(extra), r)
		t3 := TransmissionTime(s, 2*r)
		return t2 >= t1 && (s == 0 || t3 <= t1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BytesIn and TransmissionTime are approximately inverse:
// transmitting for the computed time carries at least the size.
func TestTransmissionRoundTrip(t *testing.T) {
	f := func(sz uint16) bool {
		s := Size(sz) + 1
		r := 10 * Gbps
		d := TransmissionTime(s, r)
		got := BytesIn(r, d)
		// Rounding up time can deliver at most one extra byte + rounding.
		return got >= s-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
