// Package deadlock detects network deadlock in a running simulation. A
// deadlock is a set of ingress buffers that (a) hold traffic, (b) have made
// no forwarding progress for a sustained window, and (c) form a cycle in the
// wait-for graph — each stalled buffer's traffic must enter the next stalled
// buffer. This is the *hold and wait* + *circular wait* combination of §2.1
// observed dynamically, on exactly the channel graph the static CBD analysis
// (package cbd) reasons about.
package deadlock

import (
	"sort"

	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// ChannelKey identifies one ingress buffer: the directed channel From→Node
// at a priority.
type ChannelKey struct {
	From topology.NodeID
	Node topology.NodeID
	Prio int
}

// Report describes a detected deadlock.
type Report struct {
	// At is the simulation time of detection.
	At units.Time
	// Cycle is one cycle of mutually waiting ingress buffers, in order:
	// each element's traffic waits on the next.
	Cycle []ChannelKey
	// StallFor is how long the cycle's buffers had been stalled at
	// detection.
	StallFor units.Time
}

// Detector polls a Network for sustained circular standstill. Create one
// with NewDetector and call Install to schedule periodic checks, or drive
// Check manually.
//
// The detector is stateless between polls: each buffer's no-progress
// interval is read off the network's own progress counters (the
// LastDepartAt/OccupiedSince timestamps every ingress maintains — the same
// counters the metrics registry exports), so a single snapshot decides
// stall, in the spirit of counter-based in-network detection (DCFIT).
type Detector struct {
	net *netsim.Network
	// Window is how long a buffer must hold bytes without progress to
	// count as stalled; default 5 ms.
	Window units.Time
	// Interval is the polling period; default 1 ms.
	Interval units.Time

	report *Report
}

// NewDetector returns a detector over n with default window and interval.
func NewDetector(n *netsim.Network) *Detector {
	return &Detector{
		net:      n,
		Window:   5 * units.Millisecond,
		Interval: units.Millisecond,
	}
}

// Install schedules periodic checks on the network's engine until a
// deadlock is found.
func (d *Detector) Install() {
	var tick func()
	tick = func() {
		if d.Check() != nil {
			return // stop polling once detected
		}
		d.net.Engine().After(d.Interval, tick)
	}
	d.net.Engine().After(d.Interval, tick)
}

// Deadlocked reports the detection result so far; nil when none.
func (d *Detector) Deadlocked() *Report { return d.report }

// Check samples the network once and returns a Report when a sustained
// circular standstill exists, updating the detector's state. Subsequent
// calls after detection keep returning the same report.
func (d *Detector) Check() *Report {
	if d.report != nil {
		return d.report
	}
	now := d.net.Now()
	states := d.net.IngressStates()

	// A buffer is deadlock-eligible only when it holds bytes, its own
	// progress counters show no release for a full window (measured from
	// the later of the last departure and the moment it became occupied),
	// AND every channel it waits on is blocked with zero permitted rate —
	// a positive rate means hold-and-wait is broken and the buffer will
	// drain, however slowly (the GFC regime).
	stalled := make(map[ChannelKey]netsim.IngressState)
	stallStart := make(map[ChannelKey]units.Time)
	for _, is := range states {
		if is.Occupancy == 0 {
			continue
		}
		blockedForever := len(is.WaitRates) > 0
		for _, r := range is.WaitRates {
			if r > 0 {
				blockedForever = false
				break
			}
		}
		if !blockedForever {
			continue
		}
		start := is.LastDepartAt
		if is.OccupiedSince > start {
			start = is.OccupiedSince
		}
		if now-start < d.Window {
			continue
		}
		key := ChannelKey{From: is.From, Node: is.Node, Prio: is.Prio}
		stalled[key] = is
		stallStart[key] = start
	}
	if len(stalled) == 0 {
		return nil
	}

	// Wait-for edges among stalled buffers: (u→v) waits on (v→w) when
	// traffic held in (u→v) must next enter w's buffer fed by v.
	adj := make(map[ChannelKey][]ChannelKey, len(stalled))
	for key, is := range stalled {
		for _, w := range is.WaitsOn {
			next := ChannelKey{From: key.Node, Node: w, Prio: key.Prio}
			if _, ok := stalled[next]; ok {
				adj[key] = append(adj[key], next)
			}
		}
		sort.Slice(adj[key], func(i, j int) bool { return less(adj[key][i], adj[key][j]) })
	}

	// Find a cycle with DFS over the stalled subgraph.
	keys := make([]ChannelKey, 0, len(stalled))
	for k := range stalled {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })

	color := make(map[ChannelKey]int, len(stalled)) // 0 white 1 grey 2 black
	parent := make(map[ChannelKey]ChannelKey, len(stalled))
	var cycFrom, cycTo *ChannelKey
	var dfs func(u ChannelKey) bool
	dfs = func(u ChannelKey) bool {
		color[u] = 1
		for _, v := range adj[u] {
			switch color[v] {
			case 0:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case 1:
				uu, vv := u, v
				cycFrom, cycTo = &uu, &vv
				return true
			}
		}
		color[u] = 2
		return false
	}
	for _, k := range keys {
		if color[k] == 0 && dfs(k) {
			break
		}
	}
	if cycFrom == nil {
		return nil
	}
	var rev []ChannelKey
	for u := *cycFrom; ; u = parent[u] {
		rev = append(rev, u)
		if u == *cycTo {
			break
		}
	}
	cycle := make([]ChannelKey, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		cycle = append(cycle, rev[i])
	}
	stallFor := units.Never
	for _, k := range cycle {
		if s := now - stallStart[k]; s < stallFor {
			stallFor = s
		}
	}
	d.report = &Report{At: now, Cycle: cycle, StallFor: stallFor}
	return d.report
}

func less(a, b ChannelKey) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Prio < b.Prio
}
