// Package deadlock detects network deadlock in a running simulation. A
// deadlock is a set of ingress buffers that (a) hold traffic, (b) have made
// no forwarding progress for a sustained window, and (c) form a cycle in the
// wait-for graph — each stalled buffer's traffic must enter the next stalled
// buffer. This is the *hold and wait* + *circular wait* combination of §2.1
// observed dynamically, on exactly the channel graph the static CBD analysis
// (package cbd) reasons about.
package deadlock

import (
	"sort"

	"github.com/gfcsim/gfc/internal/eventsim"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// Network is the observational slice of netsim.Network the detector needs.
// Taking an interface keeps the stall predicate unit-testable against
// synthetic snapshots (the false-positive regressions around link flaps are
// timing-dependent and near-impossible to stage reliably end-to-end).
type Network interface {
	Now() units.Time
	IngressStates() []netsim.IngressState
	Engine() *eventsim.Engine
}

// ChannelKey identifies one ingress buffer: the directed channel From→Node
// at a priority.
type ChannelKey struct {
	From topology.NodeID
	Node topology.NodeID
	Prio int
}

// Kind distinguishes the two permanent-standstill shapes the detector
// reports.
type Kind uint8

const (
	// CircularWait is the classic deadlock of §2.1: a cycle of occupied
	// buffers, each waiting on the next.
	CircularWait Kind = iota
	// WedgedChannel is a fault-induced permanent stall: a channel held at
	// rate zero by flow control whose downstream buffer — the only
	// legitimate holder of that backpressure — has long been empty. The
	// release signal (PFC RESUME, CBFC credit) was lost in flight, so the
	// hold never clears and everything upstream of the wedged channel
	// freezes into a stalled chain rather than a cycle.
	WedgedChannel
)

func (k Kind) String() string {
	if k == WedgedChannel {
		return "wedged-channel"
	}
	return "circular-wait"
}

// Wedge identifies a wedged channel: the stalled ingress buffer and the
// next-hop node its zero-rate egress points at (the channel
// Ingress.Node→Via is the one flow control holds shut).
type Wedge struct {
	Ingress ChannelKey
	Via     topology.NodeID
}

// Report describes a detected permanent standstill.
type Report struct {
	// At is the simulation time of detection.
	At units.Time
	// Kind says whether the standstill is a circular wait or a wedged
	// channel.
	Kind Kind
	// Cycle is one cycle of mutually waiting ingress buffers, in order:
	// each element's traffic waits on the next (CircularWait only).
	Cycle []ChannelKey
	// Wedged describes the held-shut channel (WedgedChannel only).
	Wedged *Wedge
	// StallFor is how long the reported buffers had been stalled at
	// detection.
	StallFor units.Time
}

// Detector polls a Network for sustained circular standstill. Create one
// with NewDetector and call Install to schedule periodic checks, or drive
// Check manually.
//
// The detector is stateless between polls: each buffer's no-progress
// interval is read off the network's own progress counters (the
// LastDepartAt/OccupiedSince timestamps every ingress maintains — the same
// counters the metrics registry exports), so a single snapshot decides
// stall, in the spirit of counter-based in-network detection (DCFIT).
type Detector struct {
	net Network
	// Window is how long a buffer must hold bytes without progress to
	// count as stalled; default 5 ms.
	Window units.Time
	// Interval is the polling period; default 1 ms.
	Interval units.Time

	report *Report
}

// NewDetector returns a detector over n with default window and interval.
func NewDetector(n Network) *Detector {
	return &Detector{
		net:      n,
		Window:   5 * units.Millisecond,
		Interval: units.Millisecond,
	}
}

// Install schedules periodic checks on the network's engine until a
// deadlock is found.
func (d *Detector) Install() {
	var tick func()
	tick = func() {
		if d.Check() != nil {
			return // stop polling once detected
		}
		d.net.Engine().After(d.Interval, tick)
	}
	d.net.Engine().After(d.Interval, tick)
}

// Deadlocked reports the detection result so far; nil when none.
func (d *Detector) Deadlocked() *Report { return d.report }

// Check samples the network once and returns a Report when a sustained
// circular standstill exists, updating the detector's state. Subsequent
// calls after detection keep returning the same report.
func (d *Detector) Check() *Report {
	if d.report != nil {
		return d.report
	}
	now := d.net.Now()
	states := d.net.IngressStates()

	// A buffer is deadlock-eligible only when it holds bytes, its own
	// progress counters show no release for a full window (measured from
	// the later of the last departure and the moment it became occupied),
	// AND every channel it waits on is blocked with zero permitted rate —
	// a positive rate means hold-and-wait is broken and the buffer will
	// drain, however slowly (the GFC regime). A wait on an
	// administratively-down egress is likewise excluded: a link outage is
	// a transient condition that resolves when the link returns, not a
	// flow-control hold — counting it would report every flap on a ring
	// as a deadlock.
	stalled := make(map[ChannelKey]netsim.IngressState)
	stallStart := make(map[ChannelKey]units.Time)
	for _, is := range states {
		if is.Occupancy == 0 {
			continue
		}
		blockedForever := len(is.WaitRates) > 0
		for i, r := range is.WaitRates {
			if r > 0 || is.WaitsDown[i] {
				blockedForever = false
				break
			}
		}
		if !blockedForever {
			continue
		}
		start := is.LastDepartAt
		if is.OccupiedSince > start {
			start = is.OccupiedSince
		}
		if now-start < d.Window {
			continue
		}
		key := ChannelKey{From: is.From, Node: is.Node, Prio: is.Prio}
		stalled[key] = is
		stallStart[key] = start
	}
	if len(stalled) == 0 {
		return nil
	}

	// Wait-for edges among stalled buffers: (u→v) waits on (v→w) when
	// traffic held in (u→v) must next enter w's buffer fed by v.
	adj := make(map[ChannelKey][]ChannelKey, len(stalled))
	for key, is := range stalled {
		for _, w := range is.WaitsOn {
			next := ChannelKey{From: key.Node, Node: w, Prio: key.Prio}
			if _, ok := stalled[next]; ok {
				adj[key] = append(adj[key], next)
			}
		}
		sort.Slice(adj[key], func(i, j int) bool { return less(adj[key][i], adj[key][j]) })
	}

	// Find a cycle with DFS over the stalled subgraph.
	keys := make([]ChannelKey, 0, len(stalled))
	for k := range stalled {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })

	color := make(map[ChannelKey]int, len(stalled)) // 0 white 1 grey 2 black
	parent := make(map[ChannelKey]ChannelKey, len(stalled))
	var cycFrom, cycTo *ChannelKey
	var dfs func(u ChannelKey) bool
	dfs = func(u ChannelKey) bool {
		color[u] = 1
		for _, v := range adj[u] {
			switch color[v] {
			case 0:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case 1:
				uu, vv := u, v
				cycFrom, cycTo = &uu, &vv
				return true
			}
		}
		color[u] = 2
		return false
	}
	for _, k := range keys {
		if color[k] == 0 && dfs(k) {
			break
		}
	}
	if cycFrom == nil {
		return d.checkWedge(now, states, keys, stalled, stallStart)
	}
	var rev []ChannelKey
	for u := *cycFrom; ; u = parent[u] {
		rev = append(rev, u)
		if u == *cycTo {
			break
		}
	}
	cycle := make([]ChannelKey, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		cycle = append(cycle, rev[i])
	}
	stallFor := units.Never
	for _, k := range cycle {
		if s := now - stallStart[k]; s < stallFor {
			stallFor = s
		}
	}
	d.report = &Report{At: now, Kind: CircularWait, Cycle: cycle, StallFor: stallFor}
	return d.report
}

// checkWedge looks for a fault-induced permanent stall that forms a chain
// instead of a cycle. Lossless flow control only holds an egress at rate
// zero while the downstream ingress buffer it protects is (near-)full —
// that buffer is the holder of the backpressure, and draining it is what
// releases the hold. A stalled buffer waiting on a zero-rate,
// administratively-up egress whose holder has been empty and idle for a
// full window is therefore wedged: the release signal (RESUME, credit) was
// lost in flight and will never be re-sent, because re-emission is
// edge-triggered on a queue the loss left permanently quiet. Transient
// holds never look like this — an in-flight release clears within a
// feedback latency, far inside the window — and GFC cannot produce the
// shape at all, since its rates never reach zero.
func (d *Detector) checkWedge(
	now units.Time, states []netsim.IngressState, keys []ChannelKey,
	stalled map[ChannelKey]netsim.IngressState, stallStart map[ChannelKey]units.Time,
) *Report {
	byKey := make(map[ChannelKey]netsim.IngressState, len(states))
	for _, is := range states {
		byKey[ChannelKey{From: is.From, Node: is.Node, Prio: is.Prio}] = is
	}
	for _, key := range keys {
		is := stalled[key]
		for i, w := range is.WaitsOn {
			if is.WaitRates[i] > 0 || is.WaitsDown[i] {
				continue
			}
			holder, ok := byKey[ChannelKey{From: key.Node, Node: w, Prio: key.Prio}]
			if !ok || holder.Occupancy > 0 {
				continue // host-facing or still legitimately held
			}
			idle := holder.LastDepartAt
			if holder.OccupiedSince > idle {
				idle = holder.OccupiedSince
			}
			if now-idle < d.Window {
				continue
			}
			d.report = &Report{
				At:       now,
				Kind:     WedgedChannel,
				Wedged:   &Wedge{Ingress: key, Via: w},
				StallFor: now - stallStart[key],
			}
			return d.report
		}
	}
	return nil
}

func less(a, b ChannelKey) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Prio < b.Prio
}
