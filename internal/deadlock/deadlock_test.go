package deadlock

import (
	"testing"

	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// testbed parameters of §6.1: 1 MB ingress buffers, τ = 90 µs (software
// switching), 10 Gb/s links.
func testbedConfig(factory flowcontrol.Factory) netsim.Config {
	return netsim.Config{
		BufferSize:  1000 * units.KB,
		Tau:         90 * units.Microsecond,
		FlowControl: factory,
	}
}

func pfcTestbed() flowcontrol.Factory {
	return flowcontrol.NewPFC(flowcontrol.PFCConfig{XOFF: 800 * units.KB, XON: 797 * units.KB})
}

func gfcTestbed() flowcontrol.Factory {
	return flowcontrol.NewGFCBuffer(flowcontrol.GFCBufferConfig{B1: 750 * units.KB})
}

func cbfcTestbed() flowcontrol.Factory {
	return flowcontrol.NewCBFC(flowcontrol.CBFCConfig{Period: 52400 * units.Nanosecond})
}

func gfcTimeTestbed() flowcontrol.Factory {
	return flowcontrol.NewGFCTime(flowcontrol.GFCTimeConfig{
		Period: 52400 * units.Nanosecond, B0: 492 * units.KB})
}

// buildRing creates a Figure 1-class deadlock scenario: an n-switch ring
// with h hosts per switch, every host sending an unbounded flow two switches
// clockwise. With h = 2 the cyclic buffers fill deterministically (transit
// traffic is squeezed below its arrival rate at every ring egress).
func buildRing(t *testing.T, h int, factory flowcontrol.Factory) (*netsim.Network, []*netsim.Flow) {
	t.Helper()
	topo := topology.RingHosts(3, h, topology.DefaultLinkParams())
	n, err := netsim.New(topo, testbedConfig(factory))
	if err != nil {
		t.Fatal(err)
	}
	var flows []*netsim.Flow
	for i, path := range routing.RingHostsClockwisePaths(topo, 3, h) {
		f := &netsim.Flow{
			ID:   i + 1,
			Src:  path[0].Node,
			Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
			Size: 0, // unbounded
			Path: path,
		}
		if err := n.AddFlow(f, 0); err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	return n, flows
}

func runWithDetector(n *netsim.Network, until units.Time) *Detector {
	d := NewDetector(n)
	d.Install()
	n.Run(until)
	return d
}

func TestPFCRingDeadlocks(t *testing.T) {
	n, flows := buildRing(t, 2, pfcTestbed())
	d := runWithDetector(n, 100*units.Millisecond)
	rep := d.Deadlocked()
	if rep == nil {
		t.Fatal("PFC on the deadlock ring did not deadlock")
	}
	if len(rep.Cycle) < 3 {
		t.Fatalf("cycle = %v, want the 3 inter-switch channels", rep.Cycle)
	}
	// The cycle must chain channel-to-channel.
	for i, c := range rep.Cycle {
		next := rep.Cycle[(i+1)%len(rep.Cycle)]
		if c.Node != next.From {
			t.Fatalf("cycle does not chain: %v", rep.Cycle)
		}
	}
	// After deadlock, throughput stops entirely.
	before := make([]units.Size, len(flows))
	for i, f := range flows {
		before[i] = f.Delivered
	}
	n.Run(n.Now() + 20*units.Millisecond)
	for i, f := range flows {
		if f.Delivered != before[i] {
			t.Errorf("flow %d progressed after deadlock (%v -> %v)",
				f.ID, before[i], f.Delivered)
		}
	}
	if n.Drops() != 0 {
		t.Fatalf("drops = %d; PFC must be lossless even deadlocked", n.Drops())
	}
}

func TestCBFCRingDeadlocks(t *testing.T) {
	// CBFC's periodic credit feedback makes its collapse slower than
	// PFC's; give it a longer horizon.
	n, _ := buildRing(t, 2, cbfcTestbed())
	d := runWithDetector(n, 300*units.Millisecond)
	if d.Deadlocked() == nil {
		t.Fatal("CBFC on the deadlock ring did not deadlock")
	}
	if n.Drops() != 0 {
		t.Fatalf("drops = %d", n.Drops())
	}
}

func TestGFCBufferRingNoDeadlock(t *testing.T) {
	n, flows := buildRing(t, 2, gfcTestbed())
	d := runWithDetector(n, 100*units.Millisecond)
	if rep := d.Deadlocked(); rep != nil {
		t.Fatalf("buffer-based GFC deadlocked: %+v", rep)
	}
	// Hold-and-wait is eliminated: every flow keeps making progress —
	// however slowly under this persistently oversubscribed CBD.
	var total units.Size
	for _, f := range flows {
		total += f.Delivered
	}
	if total == 0 {
		t.Fatal("no progress at all under GFC")
	}
	if n.Drops() != 0 {
		t.Fatalf("drops = %d", n.Drops())
	}
}

func TestGFCTimeRingNoDeadlock(t *testing.T) {
	n, flows := buildRing(t, 2, gfcTimeTestbed())
	d := runWithDetector(n, 100*units.Millisecond)
	if rep := d.Deadlocked(); rep != nil {
		t.Fatalf("time-based GFC deadlocked: %+v", rep)
	}
	var total units.Size
	for _, f := range flows {
		total += f.Delivered
	}
	if total == 0 {
		t.Fatal("no progress at all under time-based GFC")
	}
	if n.Drops() != 0 {
		t.Fatalf("drops = %d", n.Drops())
	}
}

// TestGFCSteadyStateFig9 checks the Figure 9(b) shape on the critically
// loaded 1-host ring: the host-facing ingress queue settles in the first
// stage band (B1=750KB .. B2) and the host rate converges to 5 Gb/s.
func TestGFCSteadyStateFig9(t *testing.T) {
	n, flows := buildRing(t, 1, gfcTestbed())
	n.Run(50 * units.Millisecond)
	topo := n.Topology()
	s1 := topo.MustLookup("S1")
	q := n.IngressQueue(s1, 0, 0) // ingress from H1
	if q < 740*units.KB || q > 890*units.KB {
		t.Errorf("steady host-facing queue %v, want within the stage-1/2 band (paper: ≈840KB)", q)
	}
	h1 := topo.MustLookup("H1")
	if r := n.SenderRate(h1, 0, 0); r != 5*units.Gbps {
		t.Errorf("steady H1 rate %v, want 5Gbps", r)
	}
	for _, f := range flows {
		rate := units.RateOf(f.Delivered, n.Now())
		if rate < 4.5*units.Gbps || rate > 5.5*units.Gbps {
			t.Errorf("flow %d rate %v, want ≈5G", f.ID, rate)
		}
	}
	if n.Drops() != 0 {
		t.Fatalf("drops = %d", n.Drops())
	}
}

// TestGFCTimeSteadyStateFig10 checks the Figure 10(b) shape: queue ≈745KB,
// rate 5 Gb/s.
func TestGFCTimeSteadyStateFig10(t *testing.T) {
	n, flows := buildRing(t, 1, gfcTimeTestbed())
	n.Run(50 * units.Millisecond)
	topo := n.Topology()
	q := n.IngressQueue(topo.MustLookup("S1"), 0, 0)
	if q < 650*units.KB || q > 800*units.KB {
		t.Errorf("steady queue %v, want ≈745KB (paper)", q)
	}
	for _, f := range flows {
		rate := units.RateOf(f.Delivered, n.Now())
		if rate < 4.5*units.Gbps || rate > 5.5*units.Gbps {
			t.Errorf("flow %d rate %v, want ≈5G", f.ID, rate)
		}
	}
	if n.Drops() != 0 {
		t.Fatalf("drops = %d", n.Drops())
	}
}

func TestDetectorNoFalsePositive(t *testing.T) {
	// Plain congestion (2:1 incast under PFC) pauses ports but is not a
	// deadlock: progress continues.
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	n, err := netsim.New(topo, netsim.Config{
		BufferSize:  300 * units.KB,
		FlowControl: flowcontrol.NewPFCDefault(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewSPF(topo)
	for i, src := range []string{"H1", "H2"} {
		s := topo.MustLookup(src)
		dst := topo.MustLookup("H3")
		path, err := tab.Path(s, dst, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := n.AddFlow(&netsim.Flow{ID: i, Src: s, Dst: dst, Path: path}, 0); err != nil {
			t.Fatal(err)
		}
	}
	d := runWithDetector(n, 50*units.Millisecond)
	if rep := d.Deadlocked(); rep != nil {
		t.Fatalf("false positive on congestion: %+v", rep)
	}
}

func TestDetectorManualCheck(t *testing.T) {
	n, _ := buildRing(t, 2, pfcTestbed())
	d := NewDetector(n)
	var rep *Report
	for i := 0; i < 100 && rep == nil; i++ {
		// Keep the clock advancing even after the network goes
		// silent: Check needs elapsing time to age stalls.
		at := n.Now() + units.Millisecond
		n.Engine().Schedule(at, func() {})
		n.Run(at)
		rep = d.Check()
	}
	if rep == nil {
		t.Fatal("manual checking missed the deadlock")
	}
	// Check is stable after detection.
	if again := d.Check(); again != rep {
		t.Fatal("Check did not return the cached report")
	}
	if rep.StallFor < d.Window {
		t.Fatalf("StallFor %v below window %v", rep.StallFor, d.Window)
	}
}

// TestPauseQuantaWatchdog shows the 802.1Qbb timer semantics interacting
// with deadlock: with receiver refresh (the default in real deployments)
// the ring deadlock persists exactly as with pause-until-resume; without
// refresh the pauses expire and the cycle trickles — the mechanism vendor
// "PFC watchdog" mitigations exploit, at the price of making PFC behave
// like a crude rate limiter rather than lossless backpressure.
func TestPauseQuantaWatchdog(t *testing.T) {
	run := func(noRefresh bool) (*netsim.Network, *Detector) {
		topo := topology.RingHosts(3, 2, topology.DefaultLinkParams())
		cfg := testbedConfig(flowcontrol.NewPFC(flowcontrol.PFCConfig{
			XOFF: 800 * units.KB, XON: 797 * units.KB,
			PauseQuanta: 2000, // 102.4 µs at 10G
			NoRefresh:   noRefresh,
		}))
		n, err := netsim.New(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, path := range routing.RingHostsClockwisePaths(topo, 3, 2) {
			f := &netsim.Flow{ID: i + 1, Src: path[0].Node,
				Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
				Path: path}
			if err := n.AddFlow(f, 0); err != nil {
				t.Fatal(err)
			}
		}
		d := NewDetector(n)
		d.Install()
		n.Run(120 * units.Millisecond)
		return n, d
	}
	refreshed, dRef := run(false)
	if dRef.Deadlocked() == nil {
		t.Error("refreshed quanta pauses did not deadlock")
	}
	expiring, dExp := run(true)
	if dExp.Deadlocked() != nil {
		t.Error("expiring pauses still deadlocked; watchdog effect missing")
	}
	if expiring.TotalDelivered() <= refreshed.TotalDelivered() {
		t.Errorf("expiring pauses delivered %v, refreshed %v",
			expiring.TotalDelivered(), refreshed.TotalDelivered())
	}
}
