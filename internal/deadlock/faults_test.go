package deadlock

import (
	"testing"

	"github.com/gfcsim/gfc/internal/eventsim"
	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// fakeNet feeds the detector a synthetic snapshot: the stall predicate and
// cycle search run on exactly this data, so the link-flap regressions can
// be pinned without staging a timing-sensitive outage end-to-end.
type fakeNet struct {
	now    units.Time
	states []netsim.IngressState
}

func (f *fakeNet) Now() units.Time                      { return f.now }
func (f *fakeNet) IngressStates() []netsim.IngressState { return f.states }
func (f *fakeNet) Engine() *eventsim.Engine             { panic("Check-only fake") }

// ringStall builds the canonical 3-cycle of mutually waiting ring buffers
// (1→2 waits on 2→3 waits on 3→1 waits on 1→2), every buffer occupied and
// progress-free for well over the detection window, every waited-on egress
// at rate zero. down[i] marks buffer i's egress administratively down.
func ringStall(down [3]bool) *fakeNet {
	nodes := [3]topology.NodeID{1, 2, 3}
	var states []netsim.IngressState
	for i := 0; i < 3; i++ {
		prev, next := nodes[(i+2)%3], nodes[(i+1)%3]
		states = append(states, netsim.IngressState{
			Node: nodes[i], Port: 0, Prio: 0, From: prev,
			Occupancy:     800 * units.KB,
			OccupiedSince: units.Millisecond,
			WaitsOn:       []topology.NodeID{next},
			WaitRates:     []units.Rate{0},
			WaitsDown:     []bool{down[i]},
		})
	}
	return &fakeNet{now: 100 * units.Millisecond, states: states}
}

// TestCheckReportsCleanCycle is the positive control: the synthetic cycle
// with every link up must be reported.
func TestCheckReportsCleanCycle(t *testing.T) {
	d := NewDetector(ringStall([3]bool{}))
	rep := d.Check()
	if rep == nil {
		t.Fatal("clean 3-cycle of zero-rate waits not reported")
	}
	if len(rep.Cycle) != 3 {
		t.Fatalf("cycle %v, want all 3 buffers", rep.Cycle)
	}
}

// TestCheckExcludesAdminDownWait is the flap regression: a buffer whose
// only zero-rate wait is an administratively-down egress is in a transient
// outage, not hold-and-wait, so the cycle must not be reported — a flapped
// ring link would otherwise read as a ring deadlock for the duration of
// every outage longer than the window.
func TestCheckExcludesAdminDownWait(t *testing.T) {
	for i := 0; i < 3; i++ {
		var down [3]bool
		down[i] = true
		d := NewDetector(ringStall(down))
		if rep := d.Check(); rep != nil {
			t.Errorf("buffer %d waiting on a down link, cycle still reported: %+v", i, rep)
		}
	}
	// All three down: the whole ring is an outage, not a deadlock.
	if rep := NewDetector(ringStall([3]bool{true, true, true})).Check(); rep != nil {
		t.Errorf("fully flapped ring reported as deadlock: %+v", rep)
	}
}

// TestFlapRecoversWithoutDeadlock runs the fig9 ring under buffer-based GFC
// through a mid-run link flap twice as long as the detection window: the
// detector must stay silent throughout (during the outage included), the
// fabric must stay lossless, and forwarding must resume after the link
// returns.
func TestFlapRecoversWithoutDeadlock(t *testing.T) {
	topo := topology.RingHosts(3, 1, topology.DefaultLinkParams())
	spec := &faults.Spec{
		Name: "flap",
		Links: []faults.LinkFault{{
			Link: "S1-S2",
			Flaps: []faults.Flap{{
				DownAt: 10 * units.Millisecond,
				UpAt:   20 * units.Millisecond,
			}},
		}},
	}
	plan, err := spec.Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testbedConfig(gfcTestbed())
	cfg.Faults = plan.NewInjector(1)
	n, err := netsim.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var flows []*netsim.Flow
	for i, path := range routing.RingHostsClockwisePaths(topo, 3, 1) {
		f := &netsim.Flow{ID: i + 1, Src: path[0].Node,
			Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
			Path: path}
		if err := n.AddFlow(f, 0); err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	d := NewDetector(n)
	d.Install()

	n.Run(20 * units.Millisecond) // through the outage
	if rep := d.Deadlocked(); rep != nil {
		t.Fatalf("deadlock reported during the outage: %+v", rep)
	}
	link := topo.LinkBetween(topo.MustLookup("S1"), topo.MustLookup("S2"))
	if n.LinkAdminDown(link.ID) {
		t.Fatal("link still down at UpAt")
	}
	before := make([]units.Size, len(flows))
	for i, f := range flows {
		before[i] = f.Delivered
	}
	n.Run(60 * units.Millisecond)
	if rep := d.Deadlocked(); rep != nil {
		t.Fatalf("deadlock reported after recovery: %+v", rep)
	}
	for i, f := range flows {
		if f.Delivered <= before[i] {
			t.Errorf("flow %d made no progress after the link returned", f.ID)
		}
	}
	if n.Drops() != 0 {
		t.Fatalf("drops = %d; an administrative flap must stay lossless", n.Drops())
	}
}

// TestDownLinkHoldsTraffic pins the outage semantics: while the link is
// down nothing crosses it, and the held traffic is not dropped.
func TestDownLinkHoldsTraffic(t *testing.T) {
	topo := topology.Linear(3, topology.DefaultLinkParams())
	n, err := netsim.New(topo, testbedConfig(gfcTestbed()))
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewSPF(topo)
	src, dst := topo.MustLookup("H1"), topo.MustLookup("H3")
	path, err := tab.Path(src, dst, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := &netsim.Flow{ID: 1, Src: src, Dst: dst, Path: path}
	if err := n.AddFlow(f, 0); err != nil {
		t.Fatal(err)
	}
	link := topo.LinkBetween(topo.MustLookup("S1"), topo.MustLookup("S2"))
	n.Engine().Schedule(2*units.Millisecond, func() {
		n.SetLinkAdminState(link.ID, true)
	})
	n.Run(3 * units.Millisecond)
	mid := f.Delivered
	n.Run(8 * units.Millisecond)
	if f.Delivered != mid {
		t.Errorf("delivered %v -> %v across a down link", mid, f.Delivered)
	}
	n.SetLinkAdminState(link.ID, false)
	n.Run(12 * units.Millisecond)
	if f.Delivered <= mid {
		t.Error("no recovery after link up")
	}
	if n.Drops() != 0 {
		t.Fatalf("drops = %d", n.Drops())
	}
}
