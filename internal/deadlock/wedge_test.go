package deadlock

import (
	"testing"

	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// chainStall builds the lost-RESUME shape: buffer 1→2 is occupied and
// stalled, waiting at rate zero on the egress toward node 3; the holder of
// that backpressure — ingress 2→3 — is present in the snapshot but empty.
// No cycle exists, so only the wedge rule can fire. The returned fake is at
// now = 100 ms with all timestamps at 1 ms, far beyond any window.
func chainStall() *fakeNet {
	return &fakeNet{
		now: 100 * units.Millisecond,
		states: []netsim.IngressState{
			{
				Node: 2, Port: 0, Prio: 0, From: 1,
				Occupancy:     800 * units.KB,
				OccupiedSince: units.Millisecond,
				WaitsOn:       []topology.NodeID{3},
				WaitRates:     []units.Rate{0},
				WaitsDown:     []bool{false},
			},
			{
				Node: 3, Port: 0, Prio: 0, From: 2,
				Occupancy:    0,
				LastDepartAt: units.Millisecond,
			},
		},
	}
}

// TestCheckReportsWedgedChannel is the positive control for the
// fault-induced stall: a zero-rate hold whose downstream holder has been
// empty for a full window is a lost release signal, and must be reported as
// a wedged channel (not a circular wait).
func TestCheckReportsWedgedChannel(t *testing.T) {
	d := NewDetector(chainStall())
	rep := d.Check()
	if rep == nil {
		t.Fatal("wedged chain not reported")
	}
	if rep.Kind != WedgedChannel {
		t.Fatalf("Kind = %v, want wedged-channel", rep.Kind)
	}
	if rep.Wedged == nil {
		t.Fatal("Wedged detail missing")
	}
	want := ChannelKey{From: 1, Node: 2, Prio: 0}
	if rep.Wedged.Ingress != want || rep.Wedged.Via != 3 {
		t.Fatalf("Wedged = %+v, want ingress %v via 3", rep.Wedged, want)
	}
	if rep.Cycle != nil {
		t.Fatalf("wedge report carries a cycle: %v", rep.Cycle)
	}
	// Detection latches like the cycle path does.
	if again := d.Check(); again != rep {
		t.Fatal("second Check did not return the latched report")
	}
}

// TestWedgeRequiresEmptyHolder: while the downstream holder still holds
// bytes the backpressure is legitimate (the buffer really is protecting
// itself), so no wedge may be reported however long the upstream stall.
func TestWedgeRequiresEmptyHolder(t *testing.T) {
	f := chainStall()
	f.states[1].Occupancy = 900 * units.KB
	// Keep the holder itself out of the stalled set (it is draining),
	// otherwise the scenario is just a stalled chain awaiting progress.
	f.states[1].WaitsOn = []topology.NodeID{4}
	f.states[1].WaitRates = []units.Rate{5 * units.Gbps}
	f.states[1].WaitsDown = []bool{false}
	if rep := NewDetector(f).Check(); rep != nil {
		t.Fatalf("occupied holder reported as wedge: %+v", rep)
	}
}

// TestWedgeRequiresIdleHolder: a holder that drained recently is inside the
// feedback-latency transient — the release signal may still be in flight —
// so the wedge verdict must wait out a full window of holder idleness.
func TestWedgeRequiresIdleHolder(t *testing.T) {
	f := chainStall()
	f.states[1].LastDepartAt = f.now - units.Millisecond // < default 5 ms window
	if rep := NewDetector(f).Check(); rep != nil {
		t.Fatalf("recently active holder reported as wedge: %+v", rep)
	}
}

// TestWedgeSkipsMissingHolder: a wait whose downstream buffer is not in the
// snapshot (a host-facing egress) has no observable holder, so the rule
// cannot conclude anything and must stay silent.
func TestWedgeSkipsMissingHolder(t *testing.T) {
	f := chainStall()
	f.states = f.states[:1] // drop the holder's state entirely
	if rep := NewDetector(f).Check(); rep != nil {
		t.Fatalf("missing holder reported as wedge: %+v", rep)
	}
}

// TestWedgeExcludesAdminDownWait: the flap exclusion applies to wedges as it
// does to cycles — a zero-rate wait on a down link is an outage, and the
// buffer is not considered stalled at all.
func TestWedgeExcludesAdminDownWait(t *testing.T) {
	f := chainStall()
	f.states[0].WaitsDown = []bool{true}
	if rep := NewDetector(f).Check(); rep != nil {
		t.Fatalf("down-link wait reported as wedge: %+v", rep)
	}
}

// TestWedgeRequiresZeroRate: any positive permitted rate — however small —
// means the hold is not permanent (the GFC regime); the buffer is excluded
// from the stalled set and no wedge exists.
func TestWedgeRequiresZeroRate(t *testing.T) {
	f := chainStall()
	f.states[0].WaitRates = []units.Rate{units.Rate(1)}
	if rep := NewDetector(f).Check(); rep != nil {
		t.Fatalf("positive-rate wait reported as wedge: %+v", rep)
	}
}
