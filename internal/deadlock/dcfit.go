package deadlock

import (
	"sort"

	"github.com/gfcsim/gfc/internal/eventsim"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// Probe is the pluggable detector interface the scenario layer drives: a
// detector is installed on the network's engine, and reports at most one
// permanent standstill. Both the global snapshot Detector and the
// in-data-plane DCFIT implement it.
type Probe interface {
	// Install schedules the detector's periodic work on the network's
	// engine.
	Install()
	// Deadlocked reports the detection result so far; nil when none.
	Deadlocked() *Report
	// PollInterval is the detector's polling period — the cadence
	// StopOnDeadlock watchers should check Deadlocked at.
	PollInterval() units.Time
}

// PollInterval implements Probe for the global Detector.
func (d *Detector) PollInterval() units.Time { return d.Interval }

// FeedbackNetwork is the observational slice of netsim.Network DCFIT needs:
// unlike the global Detector it never snapshots buffer state — it taps the
// feedback plane itself.
type FeedbackNetwork interface {
	Now() units.Time
	Engine() *eventsim.Engine
	SetFeedbackObserver(fn func(from, to topology.NodeID, prio int, m flowcontrol.Message))
}

// EdgeKey identifies one pause-dependency edge in the data plane: the
// channel Up→Down is held shut because Down delivered a PAUSE to Up. Queue
// scopes the edge to one physical queue for per-flow-queue schemes (BFC
// QPAUSE); -1 for class-scoped PFC PAUSE.
type EdgeKey struct {
	Up, Down topology.NodeID
	Prio     int
	Queue    int
}

// trigger is the initial-trigger tag a dependency edge carries: which node
// minted the pause chain this edge belongs to, and a global mint sequence
// number (older = smaller) that identifies the chain across inheritance.
type trigger struct {
	creator topology.NodeID
	seq     int64
}

// dcfitEdge is the live state of one pause edge.
type dcfitEdge struct {
	tag   trigger
	since units.Time
}

// DCFIT is an in-data-plane deadlock detector in the style of DCFIT: instead
// of polling global buffer snapshots, it observes PAUSE/RESUME frames at
// their delivery instant and maintains the pause-dependency graph those
// frames create. Each new edge inherits the initial-trigger tag of the
// pause currently blocking its own downstream node (or mints a fresh one
// when that node is unblocked); when the chain of pauses downstream of a
// trigger loops back and pauses the trigger's own upstream — the initial
// trigger re-appearing in its own downstream set — and the closed cycle
// persists for a full window, DCFIT reports a circular wait.
//
// Scope and honesty notes, which the fault matrix deliberately surfaces:
//   - DCFIT only sees pause-based schemes (PFC PAUSE/RESUME, BFC
//     QPAUSE/QRESUME). Credit (CBFC) and rate (GFC) feedback creates no
//     pause edges, so DCFIT stays silent there by design.
//   - A lost RESUME leaves a wedged chain, not a cycle; DCFIT cannot see
//     it (the global Detector's WedgedChannel verdict can). Conversely a
//     lost PAUSE simply never creates the edge — consistent with the
//     sender's view, since the observer taps delivery, not emission.
//   - Pause-quanta expiry clears a pause sender-side without a RESUME
//     frame; with PauseQuanta > 0 edges can go stale. The presets all use
//     the pause-until-RESUME model (quanta 0), where every edge is closed
//     by an observable RESUME.
type DCFIT struct {
	net FeedbackNetwork
	// Window is how long a closed pause cycle must persist before it is
	// reported; default 5 ms, matching the global Detector.
	Window units.Time
	// Interval is the confirmation polling period; default 1 ms.
	Interval units.Time

	edges map[EdgeKey]*dcfitEdge
	seq   int64

	// Candidate cycle awaiting persistence: the lowest-keyed edge on the
	// cycle plus the cycle's initial-trigger mint sequence. A resumed edge
	// or a different cycle resets the clock.
	candKey EdgeKey
	candSeq int64
	candAt  units.Time
	hasCand bool

	report    *Report
	installed bool
}

// NewDCFIT returns a DCFIT detector over n with default window and interval.
// Call Install to start observing.
func NewDCFIT(n FeedbackNetwork) *DCFIT {
	return &DCFIT{
		net:      n,
		Window:   5 * units.Millisecond,
		Interval: units.Millisecond,
		edges:    make(map[EdgeKey]*dcfitEdge),
	}
}

// Install taps the network's feedback plane and schedules periodic cycle
// confirmation until a deadlock is found.
func (d *DCFIT) Install() {
	if d.installed {
		return
	}
	d.installed = true
	d.net.SetFeedbackObserver(d.onDeliver)
	var tick func()
	tick = func() {
		if d.Check() != nil {
			return // stop polling once detected
		}
		d.net.Engine().After(d.Interval, tick)
	}
	d.net.Engine().After(d.Interval, tick)
}

// Deadlocked reports the detection result so far; nil when none.
func (d *DCFIT) Deadlocked() *Report { return d.report }

// PollInterval implements Probe.
func (d *DCFIT) PollInterval() units.Time { return d.Interval }

// Edges reports the number of live pause-dependency edges (diagnostic).
func (d *DCFIT) Edges() int { return len(d.edges) }

// onDeliver is the feedback observer: it runs at the instant a message
// reaches its sender, after fault loss/delay.
func (d *DCFIT) onDeliver(from, to topology.NodeID, prio int, m flowcontrol.Message) {
	queue := -1
	switch m.Kind {
	case flowcontrol.KindQueuePause, flowcontrol.KindQueueResume:
		queue = m.QueueID
	case flowcontrol.KindPause, flowcontrol.KindResume:
	default:
		return // credit/stage/queue-length feedback creates no pause edges
	}
	key := EdgeKey{Up: to, Down: from, Prio: prio, Queue: queue}
	switch m.Kind {
	case flowcontrol.KindPause, flowcontrol.KindQueuePause:
		if _, ok := d.edges[key]; ok {
			return // refresh of a held pause: dependency age unchanged
		}
		tag := trigger{creator: from, seq: d.seq}
		if p := d.parentOf(from, prio); p != nil {
			// The pausing node is itself paused: this pause continues
			// that chain, carrying its initial trigger downstream.
			tag = p.tag
		} else {
			d.seq++
		}
		d.edges[key] = &dcfitEdge{tag: tag, since: d.net.Now()}
	case flowcontrol.KindResume, flowcontrol.KindQueueResume:
		delete(d.edges, key)
		if d.hasCand && d.candKey == key {
			d.hasCand = false
		}
	}
}

// parentOf returns the pause edge currently blocking node at prio — the
// oldest edge whose Up side is node (ties broken by key order, so the choice
// is deterministic regardless of map iteration) — or nil.
func (d *DCFIT) parentOf(node topology.NodeID, prio int) *dcfitEdge {
	var bestKey EdgeKey
	var best *dcfitEdge
	for k, e := range d.edges {
		if k.Up != node || k.Prio != prio {
			continue
		}
		if best == nil || e.since < best.since ||
			(e.since == best.since && edgeLess(k, bestKey)) {
			best, bestKey = e, k
		}
	}
	return best
}

// parentKeyOf is parentOf returning the key; ok is false when unblocked.
func (d *DCFIT) parentKeyOf(node topology.NodeID, prio int) (EdgeKey, bool) {
	var bestKey EdgeKey
	var best *dcfitEdge
	for k, e := range d.edges {
		if k.Up != node || k.Prio != prio {
			continue
		}
		if best == nil || e.since < best.since ||
			(e.since == best.since && edgeLess(k, bestKey)) {
			best, bestKey = e, k
		}
	}
	return bestKey, best != nil
}

// Check confirms whether a closed pause cycle has persisted for the window,
// updating the detector's state. Subsequent calls after detection keep
// returning the same report.
func (d *DCFIT) Check() *Report {
	if d.report != nil {
		return d.report
	}
	now := d.net.Now()
	cycle := d.findCycle()
	if cycle == nil {
		d.hasCand = false
		return nil
	}
	// The cycle's initial trigger: the earliest-minted tag among its
	// edges. Together with the anchor edge it is the cycle's identity
	// across polls — a re-formed cycle restarts the persistence clock.
	minSeq := d.edges[cycle[0]].tag.seq
	for _, k := range cycle[1:] {
		if s := d.edges[k].tag.seq; s < minSeq {
			minSeq = s
		}
	}
	if !d.hasCand || d.candKey != cycle[0] || d.candSeq != minSeq {
		d.hasCand = true
		d.candKey, d.candSeq, d.candAt = cycle[0], minSeq, now
		return nil
	}
	if now-d.candAt < d.Window {
		return nil
	}
	keys := make([]ChannelKey, len(cycle))
	for i, k := range cycle {
		keys[i] = ChannelKey{From: k.Up, Node: k.Down, Prio: k.Prio}
	}
	d.report = &Report{
		At:       now,
		Kind:     CircularWait,
		Cycle:    keys,
		StallFor: now - d.candAt,
	}
	return d.report
}

// findCycle walks the pause-dependency parent function — each edge U→D
// depends on the edge currently blocking D — from every edge in key order
// and returns the first closed cycle found, anchored at its lowest-keyed
// member, or nil.
func (d *DCFIT) findCycle() []EdgeKey {
	if len(d.edges) == 0 {
		return nil
	}
	keys := make([]EdgeKey, 0, len(d.edges))
	for k := range d.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return edgeLess(keys[i], keys[j]) })
	for _, start := range keys {
		path := []EdgeKey{start}
		cur := start
		for range keys {
			next, ok := d.parentKeyOf(cur.Down, cur.Prio)
			if !ok {
				path = nil
				break
			}
			if next == start {
				return path // closed: the walk returned to its origin
			}
			path = append(path, next)
			cur = next
		}
		// The walk either dead-ended or entered a cycle not containing
		// start; that cycle is found when iteration reaches its members.
	}
	return nil
}

func edgeLess(a, b EdgeKey) bool {
	if a.Up != b.Up {
		return a.Up < b.Up
	}
	if a.Down != b.Down {
		return a.Down < b.Down
	}
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.Queue < b.Queue
}
