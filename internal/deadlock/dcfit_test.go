package deadlock

import (
	"testing"

	"github.com/gfcsim/gfc/internal/eventsim"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// fakeFeedbackNet drives DCFIT's observer and clock directly, so the edge
// bookkeeping and cycle walk can be pinned without staging real traffic.
type fakeFeedbackNet struct {
	now units.Time
	obs func(from, to topology.NodeID, prio int, m flowcontrol.Message)
}

func (f *fakeFeedbackNet) Now() units.Time          { return f.now }
func (f *fakeFeedbackNet) Engine() *eventsim.Engine { panic("Check-only fake") }
func (f *fakeFeedbackNet) SetFeedbackObserver(fn func(from, to topology.NodeID, prio int, m flowcontrol.Message)) {
	f.obs = fn
}

func newFakeDCFIT() (*DCFIT, *fakeFeedbackNet) {
	f := &fakeFeedbackNet{now: units.Millisecond}
	d := NewDCFIT(f)
	d.net.SetFeedbackObserver(d.onDeliver)
	return d, f
}

// pause delivers a PAUSE emitted by down to its upstream up, creating the
// dependency edge up→down.
func (f *fakeFeedbackNet) pause(up, down topology.NodeID) {
	f.obs(down, up, 0, flowcontrol.Message{Kind: flowcontrol.KindPause})
}

func (f *fakeFeedbackNet) resume(up, down topology.NodeID) {
	f.obs(down, up, 0, flowcontrol.Message{Kind: flowcontrol.KindResume})
}

// TestDCFITReportsCycleAfterWindow is the positive control: a closed
// 3-cycle of pauses (1→2→3→1) persisting a full window is a circular wait.
func TestDCFITReportsCycleAfterWindow(t *testing.T) {
	d, f := newFakeDCFIT()
	f.pause(1, 2)
	f.pause(2, 3)
	f.pause(3, 1)
	if rep := d.Check(); rep != nil {
		t.Fatalf("cycle reported before the persistence window: %+v", rep)
	}
	f.now += d.Window
	rep := d.Check()
	if rep == nil {
		t.Fatal("persistent pause cycle not reported")
	}
	if rep.Kind != CircularWait {
		t.Fatalf("Kind = %v, want circular wait", rep.Kind)
	}
	if len(rep.Cycle) != 3 {
		t.Fatalf("cycle %v, want all 3 channels", rep.Cycle)
	}
	for i, c := range rep.Cycle {
		next := rep.Cycle[(i+1)%len(rep.Cycle)]
		if c.Node != next.From {
			t.Fatalf("cycle does not chain: %v", rep.Cycle)
		}
	}
	if rep.StallFor < d.Window {
		t.Fatalf("StallFor = %v, want ≥ window", rep.StallFor)
	}
	// Detection latches.
	if again := d.Check(); again != rep {
		t.Fatal("second Check did not return the latched report")
	}
}

// TestDCFITCycleAnyFormationOrder pins the parent-walk design decision: the
// cycle must be found regardless of the order the pauses were delivered in —
// including orders where delivery-time tag inheritance alone would leave the
// closing edge carrying a stale trigger.
func TestDCFITCycleAnyFormationOrder(t *testing.T) {
	edges := [3][2]topology.NodeID{{1, 2}, {2, 3}, {3, 1}}
	perms := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, p := range perms {
		d, f := newFakeDCFIT()
		for _, i := range p {
			f.pause(edges[i][0], edges[i][1])
		}
		d.Check()
		f.now += d.Window
		if rep := d.Check(); rep == nil || len(rep.Cycle) != 3 {
			t.Errorf("order %v: cycle not reported (rep=%+v)", p, rep)
		}
	}
}

// TestDCFITChainIsNotACycle: a linear pause chain — however long-lived —
// has an unpaused tail and must never be reported.
func TestDCFITChainIsNotACycle(t *testing.T) {
	d, f := newFakeDCFIT()
	f.pause(1, 2)
	f.pause(2, 3)
	f.pause(3, 4) // node 4 is not paused by anyone: chain, not cycle
	for i := 0; i < 5; i++ {
		f.now += d.Window
		if rep := d.Check(); rep != nil {
			t.Fatalf("pause chain reported as deadlock: %+v", rep)
		}
	}
}

// TestDCFITResumeResetsPersistence: a RESUME on a cycle edge breaks the
// candidate; the window must restart when the cycle re-forms.
func TestDCFITResumeResetsPersistence(t *testing.T) {
	d, f := newFakeDCFIT()
	f.pause(1, 2)
	f.pause(2, 3)
	f.pause(3, 1)
	d.Check() // candidate armed
	f.now += d.Window / 2
	f.resume(3, 1) // cycle broken mid-window
	if rep := d.Check(); rep != nil {
		t.Fatalf("broken cycle reported: %+v", rep)
	}
	f.pause(3, 1) // re-formed: a new pause, so the clock restarts
	d.Check()
	f.now += d.Window - 1
	if rep := d.Check(); rep != nil {
		t.Fatalf("re-formed cycle reported before a fresh full window: %+v", rep)
	}
	f.now += 1
	if rep := d.Check(); rep == nil {
		t.Fatal("re-formed cycle never reported")
	}
}

// TestDCFITQueueScopedEdges: BFC QPAUSE edges are scoped per physical
// queue — a QRESUME on one queue must not clear another queue's edge, and a
// cycle of per-queue pauses is detected like a class-level one.
func TestDCFITQueueScopedEdges(t *testing.T) {
	d, f := newFakeDCFIT()
	qpause := func(up, down topology.NodeID, q int) {
		f.obs(down, up, 0, flowcontrol.Message{Kind: flowcontrol.KindQueuePause, QueueID: q})
	}
	qresume := func(up, down topology.NodeID, q int) {
		f.obs(down, up, 0, flowcontrol.Message{Kind: flowcontrol.KindQueueResume, QueueID: q})
	}
	qpause(1, 2, 3)
	qpause(2, 3, 1)
	qpause(3, 1, 5)
	qresume(1, 2, 4) // different queue: edge (1,2,q3) must survive
	if d.Edges() != 3 {
		t.Fatalf("edges = %d after unrelated-queue resume, want 3", d.Edges())
	}
	d.Check()
	f.now += d.Window
	if rep := d.Check(); rep == nil || len(rep.Cycle) != 3 {
		t.Fatalf("per-queue pause cycle not reported (rep=%+v)", rep)
	}
}

// TestDCFITIgnoresNonPauseFeedback: credit, rate and queue-length feedback
// create no dependency edges — DCFIT is silent for CBFC and GFC by design.
func TestDCFITIgnoresNonPauseFeedback(t *testing.T) {
	d, f := newFakeDCFIT()
	for _, k := range []flowcontrol.Kind{
		flowcontrol.KindCredit, flowcontrol.KindStage, flowcontrol.KindQueue,
	} {
		f.obs(2, 1, 0, flowcontrol.Message{Kind: k})
	}
	if d.Edges() != 0 {
		t.Fatalf("edges = %d from non-pause feedback, want 0", d.Edges())
	}
}

// TestDCFITTriggerInheritance: a pause delivered to a node whose own
// downstream is already paused continues that chain — the initial trigger
// propagates instead of a fresh one being minted per hop.
func TestDCFITTriggerInheritance(t *testing.T) {
	d, f := newFakeDCFIT()
	f.pause(2, 3) // node 3 pauses its upstream 2: trigger minted by 3
	f.pause(1, 2) // node 2 (itself paused) pauses 1: inherits 3's trigger
	e12 := d.edges[EdgeKey{Up: 1, Down: 2, Prio: 0, Queue: -1}]
	e23 := d.edges[EdgeKey{Up: 2, Down: 3, Prio: 0, Queue: -1}]
	if e12 == nil || e23 == nil {
		t.Fatal("edges missing")
	}
	if e12.tag != e23.tag {
		t.Fatalf("downstream edge minted its own trigger: %+v vs %+v", e12.tag, e23.tag)
	}
	if e23.tag.creator != 3 {
		t.Fatalf("trigger creator = %v, want the initiating node 3", e23.tag.creator)
	}
	// An unpaused node pausing someone mints fresh.
	f.pause(5, 6)
	e56 := d.edges[EdgeKey{Up: 5, Down: 6, Prio: 0, Queue: -1}]
	if e56.tag == e23.tag {
		t.Fatal("independent pause inherited an unrelated trigger")
	}
}

// TestDCFITRingAgreesWithGlobal races the two detectors on the real fig9
// deadlock ring under PFC: both must convict, with the same verdict kind,
// at onset times within a couple of windows of each other — DCFIT watching
// the feedback plane and the global detector watching buffer snapshots are
// observing the same standstill.
func TestDCFITRingAgreesWithGlobal(t *testing.T) {
	n, _ := buildRing(t, 2, pfcTestbed())
	g := NewDetector(n)
	g.Install()
	d := NewDCFIT(n)
	d.Install()
	n.Run(100 * units.Millisecond)

	grep, drep := g.Deadlocked(), d.Deadlocked()
	if grep == nil {
		t.Fatal("global detector missed the ring deadlock")
	}
	if drep == nil {
		t.Fatal("DCFIT missed the ring deadlock")
	}
	if drep.Kind != CircularWait || grep.Kind != CircularWait {
		t.Fatalf("kinds: global %v, dcfit %v, want circular wait from both", grep.Kind, drep.Kind)
	}
	if len(drep.Cycle) < 3 {
		t.Fatalf("DCFIT cycle %v, want ≥ 3 channels", drep.Cycle)
	}
	diff := grep.At - drep.At
	if diff < 0 {
		diff = -diff
	}
	if tol := 2 * g.Window; diff > tol {
		t.Errorf("onset disagreement: global %v vs dcfit %v (|Δ| = %v > %v)",
			grep.At, drep.At, diff, tol)
	}
}
