package runner

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestDefaultClassify(t *testing.T) {
	cases := []struct {
		err  error
		want FailureClass
	}{
		{nil, ClassDeterministic},
		{context.Canceled, ClassSkip},
		{fmt.Errorf("job 3: %w", context.Canceled), ClassSkip},
		{context.DeadlineExceeded, ClassTransient},
		{fmt.Errorf("cell: %w", context.DeadlineExceeded), ClassTransient},
		{errors.New("invariant violated"), ClassDeterministic},
		{&PanicError{Value: "boom"}, ClassDeterministic},
	}
	for _, c := range cases {
		if got := DefaultClassify(c.err); got != c.want {
			t.Errorf("DefaultClassify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// The backoff sequence is a pure function of (seed, attempt): same inputs,
// same durations, on any host at any time.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	r := Retry{Max: 10, BackoffBase: 100 * time.Millisecond}
	for seed := int64(0); seed < 5; seed++ {
		for attempt := 1; attempt <= 10; attempt++ {
			a := r.Backoff(seed, attempt)
			b := r.Backoff(seed, attempt)
			if a != b {
				t.Fatalf("seed %d attempt %d: %v != %v", seed, attempt, a, b)
			}
			// Nominal value doubles per attempt, capped at a minute, with
			// jitter in [0.75, 1.25).
			nominal := r.BackoffBase << (attempt - 1)
			if nominal > backoffCap || nominal <= 0 {
				nominal = backoffCap
			}
			lo := time.Duration(float64(nominal) * 0.75)
			hi := time.Duration(float64(nominal) * 1.25)
			if a < lo || a >= hi {
				t.Fatalf("seed %d attempt %d: backoff %v outside [%v, %v)", seed, attempt, a, lo, hi)
			}
		}
	}
	// Different seeds de-synchronise: at least some pairs must differ.
	if r.Backoff(1, 1) == r.Backoff(2, 1) && r.Backoff(1, 2) == r.Backoff(2, 2) {
		t.Fatal("jitter does not depend on the seed")
	}
	if (Retry{}).Backoff(9, 3) != 0 {
		t.Fatal("zero policy must not back off")
	}
}

// transientErr is what a governed job surfaces on a wall-budget trip: an
// error chain containing context.DeadlineExceeded.
func transientErr(i, attempt int) error {
	return fmt.Errorf("cell %d attempt %d: %w", i, attempt, context.DeadlineExceeded)
}

// flakyJobs fails each odd job `failures` times transiently, then succeeds.
// Attempt counting is per-job local state — fine here because each job value
// is owned by exactly one worker at a time.
func flakyJobs(n, failures int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		attempt := 0
		jobs[i] = func(context.Context) (int, error) {
			attempt++
			if i%2 == 1 && attempt <= failures {
				return 0, transientErr(i, attempt)
			}
			return i * 10, nil
		}
	}
	return jobs
}

func TestRetryRecoversTransients(t *testing.T) {
	res := RunWith(context.Background(), flakyJobs(8, 2),
		Options[int]{Workers: 3, Retry: Retry{Max: 2}, Seed: func(i int) int64 { return int64(i) }})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Value != i*10 {
			t.Fatalf("job %d value %d", i, r.Value)
		}
		if i%2 == 0 {
			if r.Prov != nil {
				t.Fatalf("clean job %d carries provenance %+v", i, r.Prov)
			}
			continue
		}
		if r.Prov == nil || r.Prov.Attempts != 3 || len(r.Prov.Retries) != 2 {
			t.Fatalf("job %d provenance %+v, want 3 attempts / 2 retries", i, r.Prov)
		}
		for k, rec := range r.Prov.Retries {
			if rec.Attempt != k+1 || rec.Class != "transient" {
				t.Fatalf("job %d retry %d: %+v", i, k, rec)
			}
			if !strings.Contains(rec.Err, "deadline") {
				t.Fatalf("job %d retry %d err %q", i, k, rec.Err)
			}
		}
	}
}

func TestRetryBudgetExhaustionQuarantines(t *testing.T) {
	res := RunWith(context.Background(), flakyJobs(2, 10),
		Options[int]{Workers: 1, Retry: Retry{Max: 3}})
	if res[0].Err != nil {
		t.Fatalf("healthy job failed: %v", res[0].Err)
	}
	if !errors.Is(res[1].Err, context.DeadlineExceeded) {
		t.Fatalf("exhausted job err = %v", res[1].Err)
	}
	if res[1].Prov == nil || res[1].Prov.Attempts != 4 || len(res[1].Prov.Retries) != 3 {
		t.Fatalf("exhausted job provenance %+v", res[1].Prov)
	}
}

func TestDeterministicFailuresDoNotRetry(t *testing.T) {
	calls := 0
	jobs := []Job[int]{func(context.Context) (int, error) {
		calls++
		return 0, errors.New("analytic invariant violated")
	}}
	res := RunWith(context.Background(), jobs, Options[int]{Workers: 1, Retry: Retry{Max: 5}})
	if calls != 1 {
		t.Fatalf("deterministic failure ran %d times", calls)
	}
	if res[0].Err == nil || res[0].Prov != nil {
		t.Fatalf("res = %+v", res[0])
	}
}

func TestPanicsDoNotRetry(t *testing.T) {
	calls := 0
	jobs := []Job[int]{func(context.Context) (int, error) { calls++; panic("wedged") }}
	res := RunWith(context.Background(), jobs, Options[int]{Workers: 1, Retry: Retry{Max: 5}})
	if calls != 1 {
		t.Fatalf("panic retried: %d calls", calls)
	}
	var pe *PanicError
	if !errors.As(res[0].Err, &pe) {
		t.Fatalf("err = %v", res[0].Err)
	}
}

// The tentpole determinism contract: retry counts, backoff sequences and
// values are identical at every worker count, and survive kill-and-resume
// through the checkpoint.
func TestRetryProvenanceDeterministicAcrossWorkers(t *testing.T) {
	opts := func(workers int) Options[int] {
		return Options[int]{
			Workers: workers,
			Retry:   Retry{Max: 2, BackoffBase: time.Microsecond},
			Seed:    func(i int) int64 { return int64(i)*1e6 + 13 },
		}
	}
	ref := RunWith(context.Background(), flakyJobs(16, 2), opts(1))
	for _, workers := range []int{4, 16} {
		got := RunWith(context.Background(), flakyJobs(16, 2), opts(workers))
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d results (incl. provenance) differ from serial", workers)
		}
	}
	// Provenance round-trips the checkpoint: replayed cells report the same
	// retry history as computed ones.
	path := filepath.Join(t.TempDir(), "retry.ckpt")
	st, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	o := opts(2)
	o.Checkpoint = st
	RunWith(context.Background(), flakyJobs(16, 2), o)
	st.Close()
	st2, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	o2 := opts(4)
	o2.Checkpoint = st2
	burned := make([]Job[int], 16)
	for i := range burned {
		i := i
		burned[i] = func(context.Context) (int, error) {
			t.Errorf("job %d recomputed on resume", i)
			return 0, nil
		}
	}
	replayed := RunWith(context.Background(), burned, o2)
	for i := range replayed {
		if replayed[i].Value != ref[i].Value || !reflect.DeepEqual(replayed[i].Prov, ref[i].Prov) {
			t.Fatalf("cell %d replayed %+v / %+v, want %+v / %+v",
				i, replayed[i].Value, replayed[i].Prov, ref[i].Value, ref[i].Prov)
		}
	}
}

func TestDegradeRunsOnlyOnTransientExhaustion(t *testing.T) {
	transient := func(context.Context) (int, error) { return 0, transientErr(0, 0) }
	deterministic := func(context.Context) (int, error) { return 0, errors.New("wedged") }
	var degraded []int
	opts := Options[int]{
		Workers: 1,
		Retry:   Retry{Max: 1},
		Degrade: func(_ context.Context, job int, cause error) (int, error) {
			degraded = append(degraded, job)
			if !errors.Is(cause, context.DeadlineExceeded) {
				t.Errorf("job %d degrade cause %v", job, cause)
			}
			return 777, nil
		},
	}
	res := RunWith(context.Background(), []Job[int]{transient, deterministic}, opts)
	if len(degraded) != 1 || degraded[0] != 0 {
		t.Fatalf("degraded jobs = %v, want [0]", degraded)
	}
	if res[0].Err != nil || res[0].Value != 777 {
		t.Fatalf("degraded cell = %+v", res[0])
	}
	if res[0].Prov == nil || res[0].Prov.Degraded == "" {
		t.Fatalf("degraded cell provenance %+v", res[0].Prov)
	}
	if !strings.Contains(res[0].Prov.Degraded, "deadline") {
		t.Fatalf("Degraded %q does not carry the cause", res[0].Prov.Degraded)
	}
	if res[1].Err == nil || res[1].Prov != nil {
		t.Fatalf("deterministic cell = %+v", res[1])
	}
}

func TestDegradeFailureKeepsBothErrors(t *testing.T) {
	jobs := []Job[int]{func(context.Context) (int, error) { return 0, transientErr(0, 0) }}
	opts := Options[int]{
		Workers: 1,
		Degrade: func(context.Context, int, error) (int, error) {
			return 0, errors.New("fluid solver rejected the scheme")
		},
	}
	res := RunWith(context.Background(), jobs, opts)
	if res[0].Err == nil {
		t.Fatal("failed degrade reported success")
	}
	// The original transient cause stays unwrappable (flight-recorder
	// chains survive), and the fallback failure is in the message.
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Fatalf("cause lost: %v", res[0].Err)
	}
	if !strings.Contains(res[0].Err.Error(), "fluid solver rejected") {
		t.Fatalf("fallback failure lost: %v", res[0].Err)
	}
}

func TestDegradePanicIsCaptured(t *testing.T) {
	jobs := []Job[int]{func(context.Context) (int, error) { return 0, transientErr(0, 0) }}
	opts := Options[int]{
		Workers: 1,
		Degrade: func(context.Context, int, error) (int, error) { panic("fallback exploded") },
	}
	res := RunWith(context.Background(), jobs, opts)
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "fallback exploded") {
		t.Fatalf("degrade panic not captured: %v", res[0].Err)
	}
}

func TestSuperviseCancelledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	fn := func(context.Context) (int, error) {
		calls++
		cancel() // cancel lands while the supervisor sleeps
		return 0, transientErr(0, calls)
	}
	_, prov, err := Supervise(ctx, 1, Retry{Max: 5, BackoffBase: time.Hour}, nil, fn)
	if calls != 1 {
		t.Fatalf("ran %d attempts past a cancellation", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if prov == nil || len(prov.Retries) != 1 {
		t.Fatalf("prov = %+v", prov)
	}
}
