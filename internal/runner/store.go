package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// This file is the checkpoint store: an append-only JSONL file recording
// each completed sweep cell as (job index, sweep key, seed, value-or-error).
// One line per cell, flushed as cells complete, so a killed sweep loses at
// most the in-flight cells. On reopen the store tolerates a torn final line
// (the signature of a mid-write kill), ignores entries whose key does not
// match (a checkpoint from a differently-configured sweep must not poison
// this one), and lets the last entry for a job win.

// Entry is one checkpoint line.
type Entry struct {
	// Job is the cell's index in the sweep's job order.
	Job int `json:"job"`
	// Key identifies the sweep configuration (a spec hash); entries with a
	// different key are ignored on load.
	Key string `json:"key"`
	// Seed is the cell's RNG seed, recorded for provenance.
	Seed int64 `json:"seed"`
	// Value is the cell's JSON-encoded result; empty when the cell failed.
	Value json.RawMessage `json:"value,omitempty"`
	// Err is the cell's rendered error; empty when the cell succeeded.
	Err string `json:"err,omitempty"`
}

// Store is a checkpoint file opened for resume-and-append. Record is safe
// for concurrent use by pool workers.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	key  string
	done map[int]Entry
}

// OpenStore opens (creating if absent) the checkpoint at path for the sweep
// identified by key. Existing entries with a matching key become replayable
// via Lookup; a torn final line is truncated away so subsequent appends
// stay parseable, and unparseable interior lines are skipped.
func OpenStore(path, key string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: reading checkpoint %s: %w", path, err)
	}
	// Keep only whole, newline-terminated lines; anything after the last
	// newline is a torn write from a killed sweep.
	valid := bytes.LastIndexByte(data, '\n') + 1
	s := &Store{f: f, key: key, done: make(map[int]Entry)}
	for _, line := range bytes.Split(data[:valid], []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var e Entry
		if json.Unmarshal(line, &e) != nil || e.Key != key || e.Job < 0 {
			continue
		}
		s.done[e.Job] = e
	}
	if valid != len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: trimming torn checkpoint line: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Lookup returns the recorded entry for a job, if any.
func (s *Store) Lookup(job int) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.done[job]
	return e, ok
}

// Done reports how many cells the store has recorded.
func (s *Store) Done() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.done)
}

// Record appends one completed cell. Exactly one of value (jobErr == nil)
// or jobErr is recorded. The line is written in a single Write call so a
// kill between cells never tears more than the final line.
func (s *Store) Record(job int, seed int64, value any, jobErr error) error {
	e := Entry{Job: job, Key: s.key, Seed: seed}
	if jobErr != nil {
		e.Err = jobErr.Error()
	} else {
		raw, err := json.Marshal(value)
		if err != nil {
			return fmt.Errorf("runner: encoding checkpoint value for job %d: %w", job, err)
		}
		e.Value = raw
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return err
	}
	s.done[job] = e
	return nil
}

// Close closes the underlying file. Recorded entries remain readable via
// Lookup afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
