package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// This file is the checkpoint store: an append-only JSONL file recording
// each completed sweep cell as (job index, sweep key, seed, value-or-error,
// provenance). One line per cell, flushed as cells complete, so a killed
// sweep loses at most the in-flight cells.
//
// Format v2 opens the file with a versioned header line and wraps every
// entry in an envelope carrying the CRC32-IEEE of the entry's JSON, so a
// mid-file bit flip — not just a torn final line — is detected instead of
// silently poisoning a resume. On reopen the store salvages the longest
// valid prefix: scanning stops at the first corrupt line, everything after
// it is truncated away (those cells recompute, which is cheap and always
// correct), and the damage is reported via Salvage instead of crashing.
// Headerless v1 files (written before the CRC format) still load with the
// old tolerant scan and keep appending v1 lines, so existing checkpoints
// stay resumable.

// storeVersion is the checkpoint format this build writes.
const storeVersion = 2

// storeHeader is the first line of a v2+ checkpoint file. The field name
// doubles as the magic: v1 files start with an entry object that has no
// "gfc_checkpoint" key.
type storeHeader struct {
	Version int    `json:"gfc_checkpoint"`
	CRC     string `json:"crc,omitempty"`
}

// envelope is one v2 entry line: the entry's JSON plus its CRC32-IEEE.
// The CRC covers the exact bytes of E as written, so any mutation — a bit
// flip inside the entry, a truncated tail, garbage splices — fails the
// check even when the result is still valid JSON.
type envelope struct {
	CRC uint32          `json:"crc"`
	E   json.RawMessage `json:"e"`
}

// Entry is one checkpoint line.
type Entry struct {
	// Job is the cell's index in the sweep's job order.
	Job int `json:"job"`
	// Key identifies the sweep configuration (a spec hash); entries with a
	// different key are ignored on load.
	Key string `json:"key"`
	// Seed is the cell's RNG seed, recorded for provenance.
	Seed int64 `json:"seed"`
	// Value is the cell's JSON-encoded result; empty when the cell failed.
	Value json.RawMessage `json:"value,omitempty"`
	// Err is the cell's rendered error; empty when the cell succeeded.
	Err string `json:"err,omitempty"`
	// Prov records the cell's retry/degradation history; nil for cells
	// that succeeded first try at full fidelity.
	Prov *Provenance `json:"prov,omitempty"`
}

// Salvage reports what OpenStore had to discard to recover a checkpoint:
// the number of corrupt or torn lines dropped and a description of the
// first corruption. The zero value means a clean open.
type Salvage struct {
	// Dropped counts discarded lines (each at most one cell, which the
	// resumed sweep recomputes).
	Dropped int `json:"dropped"`
	// Reason describes the first corruption encountered.
	Reason string `json:"reason,omitempty"`
}

// Store is a checkpoint file opened for resume-and-append. Record is safe
// for concurrent use by pool workers.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	key  string
	done map[int]Entry
	// legacy marks a headerless v1 file: appends stay in v1 format so the
	// whole file remains consistently parseable by either reader.
	legacy  bool
	salvage Salvage
}

// OpenStore opens (creating if absent) the checkpoint at path for the sweep
// identified by key. Existing entries with a matching key become replayable
// via Lookup. Corruption never fails the open: a torn final line, a CRC
// mismatch or an unparseable line drops the damaged suffix (v2) or line
// (v1), the store truncates to the salvaged prefix so appends stay
// parseable, and Salvage reports what was lost.
func OpenStore(path, key string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: reading checkpoint %s: %w", path, err)
	}
	s := &Store{f: f, key: key, done: make(map[int]Entry)}
	// Anything after the last newline is a torn write from a killed sweep.
	valid := bytes.LastIndexByte(data, '\n') + 1
	if valid != len(data) {
		s.noteDrop("torn final line (mid-write kill)")
	}
	valid = s.scan(data[:valid])
	if int64(valid) != int64(len(data)) || s.salvage.Dropped > 0 {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: trimming corrupt checkpoint tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if !s.legacy && valid == 0 {
		if err := s.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// scan parses the whole-line region of the file, fills done, and returns
// the byte length of the valid prefix to keep. Headerless non-empty files
// are v1: every line is scanned and bad ones are skipped (there is no
// integrity information to trust a prefix by). v2 files stop at the first
// corrupt line — the CRC makes "valid so far" meaningful — and count the
// dropped suffix.
func (s *Store) scan(data []byte) int {
	if len(data) == 0 {
		return 0
	}
	var hdr storeHeader
	firstLen := bytes.IndexByte(data, '\n') + 1
	if json.Unmarshal(data[:firstLen-1], &hdr) != nil || hdr.Version < storeVersion {
		s.legacy = true
		s.scanLegacy(data)
		return len(data)
	}
	off := firstLen
	end := firstLen
	line := 1
	for off < len(data) {
		line++
		nl := bytes.IndexByte(data[off:], '\n')
		raw := data[off : off+nl]
		next := off + nl + 1
		if len(raw) == 0 {
			off, end = next, next
			continue
		}
		var env envelope
		var e Entry
		switch {
		case json.Unmarshal(raw, &env) != nil || env.E == nil:
			s.noteDrop(fmt.Sprintf("line %d: unparseable envelope", line))
		case crc32.ChecksumIEEE(env.E) != env.CRC:
			s.noteDrop(fmt.Sprintf("line %d: CRC mismatch (recorded %08x)", line, env.CRC))
		case json.Unmarshal(env.E, &e) != nil || e.Job < 0:
			s.noteDrop(fmt.Sprintf("line %d: CRC-clean but undecodable entry", line))
		default:
			if e.Key == s.key {
				s.done[e.Job] = e
			}
			off, end = next, next
			continue
		}
		// First corruption: drop this line and everything after it — the
		// longest valid prefix is all that integrity can vouch for.
		s.salvage.Dropped += bytes.Count(data[next:], []byte{'\n'})
		return end
	}
	return end
}

// scanLegacy is the v1 tolerant scan: skip (and count) unparseable lines,
// ignore key mismatches, last entry per job wins.
func (s *Store) scanLegacy(data []byte) {
	line := 0
	for _, raw := range bytes.Split(data, []byte{'\n'}) {
		line++
		if len(raw) == 0 {
			continue
		}
		var e Entry
		if json.Unmarshal(raw, &e) != nil || e.Job < 0 {
			s.noteDrop(fmt.Sprintf("line %d: unparseable v1 entry", line))
			continue
		}
		if e.Key != s.key {
			continue
		}
		s.done[e.Job] = e
	}
}

// noteDrop counts one discarded line, keeping the first reason.
func (s *Store) noteDrop(reason string) {
	if s.salvage.Dropped == 0 {
		s.salvage.Reason = reason
	}
	s.salvage.Dropped++
}

// writeHeader stamps a fresh (or fully-salvaged-away) file as v2.
func (s *Store) writeHeader() error {
	line, err := json.Marshal(storeHeader{Version: storeVersion, CRC: "ieee"})
	if err != nil {
		return err
	}
	_, err = s.f.Write(append(line, '\n'))
	return err
}

// Salvage reports what the open discarded; Dropped == 0 means the
// checkpoint loaded clean.
func (s *Store) Salvage() Salvage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.salvage
}

// Lookup returns the recorded entry for a job, if any.
func (s *Store) Lookup(job int) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.done[job]
	return e, ok
}

// Done reports how many cells the store has recorded.
func (s *Store) Done() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.done)
}

// Record appends one completed cell. Exactly one of value (jobErr == nil)
// or jobErr is recorded, along with the cell's retry/degradation
// provenance. The line is written in a single Write call so a kill between
// cells never tears more than the final line.
func (s *Store) Record(job int, seed int64, value any, jobErr error, prov *Provenance) error {
	e := Entry{Job: job, Key: s.key, Seed: seed, Prov: prov}
	if jobErr != nil {
		e.Err = jobErr.Error()
	} else {
		raw, err := json.Marshal(value)
		if err != nil {
			return fmt.Errorf("runner: encoding checkpoint value for job %d: %w", job, err)
		}
		e.Value = raw
	}
	raw, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line := raw
	if !s.legacy {
		line, err = json.Marshal(envelope{CRC: crc32.ChecksumIEEE(raw), E: raw})
		if err != nil {
			return err
		}
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return err
	}
	s.done[job] = e
	return nil
}

// Close closes the underlying file. Recorded entries remain readable via
// Lookup afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
