package runner

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzCheckpointStore throws arbitrary bytes at OpenStore: whatever a crash,
// a disk hiccup or a hostile editor left in the checkpoint file, reopening
// must never panic or error, must salvage only CRC-clean entries, and must
// leave the file appendable — a subsequent Record followed by a reopen sees
// both the salvaged prefix and the new entry.
//
// The seed corpus covers the interesting shapes: a clean v2 file, a torn
// tail, a mid-file bit flip, a legacy v1 file, and plain garbage. The fuzzer
// mutates from there (truncations, splices, flips).
func FuzzCheckpointStore(f *testing.F) {
	mk := func(build func(st *Store)) []byte {
		path := filepath.Join(f.TempDir(), "seed.ckpt")
		st, err := OpenStore(path, "k")
		if err != nil {
			f.Fatal(err)
		}
		build(st)
		st.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	clean := mk(func(st *Store) {
		for i := 0; i < 4; i++ {
			st.Record(i, int64(i), map[string]int{"n": i}, nil, nil)
		}
		st.Record(4, 4, nil, &ReplayedError{Msg: "job 4: budget blown"},
			&Provenance{Attempts: 3, Retries: []RetryRecord{{Attempt: 1, Err: "x", Class: "transient"}}})
	})
	f.Add(clean)
	f.Add(clean[:len(clean)-7]) // torn tail
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x20 // mid-file bit flip
	f.Add(flipped)
	f.Add([]byte(`{"job":0,"key":"k","seed":1,"value":{"n":0}}` + "\n")) // legacy v1
	f.Add([]byte("\x00\xff garbage\nmore garbage"))
	f.Add([]byte(`{"gfc_checkpoint":2,"crc":"ieee"}` + "\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := OpenStore(path, "k")
		if err != nil {
			t.Fatalf("OpenStore errored on corrupt input: %v", err)
		}
		salvaged := st.Done()
		// The store must stay usable: record a fresh cell on top of
		// whatever was salvaged.
		if err := st.Record(1<<20, 99, map[string]int{"n": -1}, nil, nil); err != nil {
			t.Fatalf("Record after salvage: %v", err)
		}
		st.Close()
		st2, err := OpenStore(path, "k")
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer st2.Close()
		if _, ok := st2.Lookup(1 << 20); !ok {
			t.Fatal("appended entry lost on reopen")
		}
		if got := st2.Done(); got < salvaged {
			t.Fatalf("reopen salvaged %d < first open's %d: salvage not monotone", got, salvaged)
		}
	})
}
