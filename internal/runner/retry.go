package runner

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// This file is the classified-retry half of the self-healing supervisor:
// job failures are bucketed into a FailureClass, and only transient ones
// (host-condition trips: wall budgets, per-job deadlines, OOM guards) earn
// retries. The backoff sequence is a pure function of the cell's seed and
// the attempt index, so the provenance a sweep records — how many retries,
// which simulated backoffs — is bit-identical at any worker count and
// across kill-and-resume, exactly like the results themselves.

// FailureClass buckets a job failure for the retry policy.
type FailureClass uint8

const (
	// ClassDeterministic failures reproduce on re-run: panics, invariant
	// and analytic violations, event-budget and stall-watchdog trips.
	// Retrying cannot change the outcome, so the cell quarantines
	// immediately.
	ClassDeterministic FailureClass = iota
	// ClassTransient failures are host-condition verdicts — wall-clock
	// budget trips, per-job deadlines, OOM-guard trips — that a retry
	// under lighter load may clear.
	ClassTransient
	// ClassSkip marks outcomes that are not verdicts on the cell at all
	// (context cancellation): no retry, no checkpoint record, so a
	// resumed sweep re-runs the cell.
	ClassSkip
)

func (c FailureClass) String() string {
	switch c {
	case ClassDeterministic:
		return "deterministic"
	case ClassTransient:
		return "transient"
	case ClassSkip:
		return "skip"
	default:
		return fmt.Sprintf("failure class(%d)", c)
	}
}

// DefaultClassify is the classifier used when Options.Classify is nil. It
// knows only the runner's own error vocabulary: cancellation skips,
// deadline blows are transient, everything else — including panics — is
// deterministic. Callers with richer error types (e.g. *netsim.RunError)
// layer their taxonomy on top and fall back to this.
func DefaultClassify(err error) FailureClass {
	switch {
	case err == nil:
		return ClassDeterministic
	case errors.Is(err, context.Canceled):
		return ClassSkip
	case errors.Is(err, context.DeadlineExceeded):
		return ClassTransient
	}
	return ClassDeterministic
}

// Retry is the transient-failure retry policy of a pool: up to Max extra
// attempts per job, each preceded by a seed-derived exponential backoff.
// The zero value disables retries.
type Retry struct {
	// Max is how many retries a job gets after its first attempt; 0
	// disables retrying.
	Max int
	// BackoffBase is the nominal backoff before the first retry; it
	// doubles per retry (capped at one minute) and is jittered by a
	// factor in [0.75, 1.25) derived from the cell's seed. 0 retries
	// immediately.
	BackoffBase time.Duration
}

// backoffCap bounds the exponential growth so a large Max cannot park a
// worker for hours.
const backoffCap = time.Minute

// Backoff returns the deterministic backoff that precedes retry number
// attempt (1-based: the attempt that just failed). It is a pure function
// of (seed, attempt) — no clock, no shared RNG — which is what keeps the
// recorded sequence identical across worker counts and resumes.
func (r Retry) Backoff(seed int64, attempt int) time.Duration {
	if r.BackoffBase <= 0 || attempt <= 0 {
		return 0
	}
	d := r.BackoffBase
	for i := 1; i < attempt && d < backoffCap; i++ {
		d *= 2
	}
	if d > backoffCap {
		d = backoffCap
	}
	// splitmix64 of (seed, attempt) → jitter factor in [0.75, 1.25):
	// enough spread to de-synchronise cells that tripped together.
	j := splitmix64(uint64(seed) + uint64(attempt)*0x9e3779b97f4a7c15)
	frac := 0.75 + 0.5*float64(j>>11)/float64(1<<53)
	return time.Duration(float64(d) * frac)
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed hash used to
// derive backoff jitter from (seed, attempt).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RetryRecord is one transient failure absorbed by the retry policy.
type RetryRecord struct {
	// Attempt is the 1-based attempt that failed.
	Attempt int `json:"attempt"`
	// Err is the failure's rendered message.
	Err string `json:"err"`
	// Backoff is the seed-derived pause that preceded the retry.
	Backoff time.Duration `json:"backoff_ns"`
	// Class is the failure's classification (always "transient" today;
	// recorded so future taxonomies stay readable in old checkpoints).
	Class string `json:"class"`
}

// Provenance records how a cell's value was obtained when the path was
// anything other than "succeeded first try at full fidelity". It rides
// both the in-memory Result and the checkpoint Entry, so replayed cells
// report the same history as computed ones.
type Provenance struct {
	// Attempts counts primary-path attempts (1 + retries taken).
	Attempts int `json:"attempts"`
	// Retries lists the transient failures absorbed before the final
	// attempt, in order.
	Retries []RetryRecord `json:"retries,omitempty"`
	// Degraded, when non-empty, is the transient cause that exhausted the
	// retry budget and pushed the cell onto the degraded-fidelity
	// fallback (Options.Degrade); the Value came from the fallback.
	Degraded string `json:"degraded,omitempty"`
}

// Supervise runs fn under the classified-retry policy outside a pool: the
// single-call form of the Retry/Classify options, shared by drivers (the
// fault matrix) that run cells serially. Transient failures retry with the
// seed-derived backoff; the returned Provenance is nil when fn succeeded
// on its first attempt. A cancellation during backoff returns the context
// error (class skip: no verdict).
func Supervise[T any](ctx context.Context, seed int64, r Retry, classify func(error) FailureClass, fn Job[T]) (T, *Provenance, error) {
	if classify == nil {
		classify = DefaultClassify
	}
	var prov *Provenance
	var res Result[T]
	for attempt := 1; ; attempt++ {
		res = runOne(ctx, fn)
		if prov != nil {
			prov.Attempts = attempt
		}
		if res.Err == nil || attempt > r.Max || classify(res.Err) != ClassTransient {
			break
		}
		backoff := r.Backoff(seed, attempt)
		if prov == nil {
			prov = &Provenance{Attempts: attempt}
		}
		prov.Retries = append(prov.Retries, RetryRecord{
			Attempt: attempt, Err: res.Err.Error(),
			Backoff: backoff, Class: ClassTransient.String(),
		})
		if !sleepCtx(ctx, backoff) {
			return res.Value, prov, ctx.Err()
		}
	}
	return res.Value, prov, res.Err
}

// sleepCtx pauses for the simulated backoff, honouring cancellation; it
// reports whether the full pause elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
