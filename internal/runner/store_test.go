package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cell is a deliberately float-heavy result type: the resume contract
// depends on JSON float64 round-trips being exact.
type cell struct {
	Mean float64 `json:"mean"`
	P99  float64 `json:"p99"`
	N    int     `json:"n"`
}

func cellJobs(t *testing.T, n int, mustRun func(i int) bool) []Job[cell] {
	t.Helper()
	jobs := make([]Job[cell], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (cell, error) {
			if mustRun != nil && !mustRun(i) {
				t.Errorf("job %d recomputed despite a checkpoint entry", i)
			}
			if i == 3 {
				return cell{}, fmt.Errorf("cell %d diverged", i)
			}
			return cell{Mean: math.Sqrt(float64(i)) / 3, P99: float64(i) * 1.1e-9, N: i}, nil
		}
	}
	return jobs
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	const n = 12
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	// Uninterrupted reference run, no checkpoint.
	ref := RunWith(context.Background(), cellJobs(t, n, nil), Options[cell]{Workers: 1})

	// First pass: record only the first half, simulating an interrupt by
	// running a truncated job list.
	st, err := OpenStore(path, "spec-v1")
	if err != nil {
		t.Fatal(err)
	}
	seed := func(i int) int64 { return int64(i)*1e9 + 7 }
	RunWith(context.Background(), cellJobs(t, n/2, nil), Options[cell]{Workers: 2, Checkpoint: st, Seed: seed})
	if st.Done() != n/2 {
		t.Fatalf("recorded %d cells, want %d", st.Done(), n/2)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: recorded cells must be replayed, not recomputed, and the
	// aggregate must match the uninterrupted run bit for bit.
	st2, err := OpenStore(path, "spec-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	res := RunWith(context.Background(), cellJobs(t, n, func(i int) bool { return i >= n/2 }),
		Options[cell]{Workers: 3, Checkpoint: st2, Seed: seed})
	for i := range res {
		if res[i].Value != ref[i].Value {
			t.Fatalf("cell %d: resumed %+v != reference %+v", i, res[i].Value, res[i].Value)
		}
	}
	// The quarantined failure replays with its original rendered message.
	if res[3].Err == nil || res[3].Err.Error() != ref[3].Err.Error() {
		t.Fatalf("replayed failure %v != reference %v", res[3].Err, ref[3].Err)
	}
	var re *ReplayedError
	if !errors.As(res[3].Err, &re) {
		t.Fatalf("replayed failure has type %T", res[3].Err)
	}
	if st2.Done() != n {
		t.Fatalf("store holds %d cells after resume, want %d", st2.Done(), n)
	}
	// Recorded seeds survive the round trip.
	if e, ok := st2.Lookup(4); !ok || e.Seed != seed(4) {
		t.Fatalf("entry 4 seed = %+v", e)
	}
}

func TestCheckpointKeyMismatchReruns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	st, err := OpenStore(path, "spec-v1")
	if err != nil {
		t.Fatal(err)
	}
	RunWith(context.Background(), cellJobs(t, 4, nil), Options[cell]{Workers: 1, Checkpoint: st})
	st.Close()

	// A different sweep key must not replay: stale entries are ignored.
	st2, err := OpenStore(path, "spec-v2")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Done() != 0 {
		t.Fatalf("key-mismatched store replays %d cells", st2.Done())
	}
	ran := make([]bool, 4)
	RunWith(context.Background(), cellJobs(t, 4, func(i int) bool { ran[i] = true; return true }),
		Options[cell]{Workers: 1, Checkpoint: st2})
	for i, r := range ran {
		if !r {
			t.Fatalf("job %d not re-run under the new key", i)
		}
	}
}

func TestCheckpointTornLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	st, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Record(i, int64(i), cell{N: i}, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	// Simulate a kill mid-write: a partial, unterminated JSON line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"job":3,"key":"k","val`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Done() != 3 {
		t.Fatalf("recovered %d cells, want 3 (torn line dropped)", st2.Done())
	}
	if _, ok := st2.Lookup(3); ok {
		t.Fatal("torn entry replayed")
	}
	// Appending after recovery must yield a parseable file: the torn tail
	// was truncated away.
	if err := st2.Record(3, 3, cell{N: 3}, nil, nil); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.Done() != 4 {
		t.Fatalf("post-recovery store holds %d cells, want 4", st3.Done())
	}
}

func TestCheckpointSkipsCancelledCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	st, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]Job[int], 6)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			if i == 2 {
				cancel()
				return 0, ctx.Err() // cut short by the cancellation
			}
			return i, nil
		}
	}
	res := RunWith(ctx, jobs, Options[int]{Workers: 1, Checkpoint: st})
	// Jobs 0-1 completed and were recorded; job 2 and the queued jobs were
	// cancellation casualties and must NOT be in the checkpoint, so a
	// resume re-runs them.
	if st.Done() != 2 {
		t.Fatalf("recorded %d cells, want 2 (cancelled cells excluded)", st.Done())
	}
	for i := 2; i < 6; i++ {
		if _, ok := st.Lookup(i); ok {
			t.Fatalf("cancelled job %d leaked into the checkpoint", i)
		}
		if !errors.Is(res[i].Err, context.Canceled) {
			t.Fatalf("job %d err = %v", i, res[i].Err)
		}
	}
}

func TestCheckpointDeterministicAcrossWorkers(t *testing.T) {
	// Same checkpoint state + same jobs must give the same result slice at
	// any worker count, including the replayed-vs-computed partition.
	const n = 16
	dir := t.TempDir()
	mk := func(name string) *Store {
		st, err := OpenStore(filepath.Join(dir, name), "k")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i += 3 {
			if err := st.Record(i, 0, cell{Mean: float64(i) / 7, N: i}, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	base := mk("a.ckpt")
	ref := RunWith(context.Background(), cellJobs(t, n, nil), Options[cell]{Workers: 1, Checkpoint: base})
	base.Close()
	for _, workers := range []int{2, 5, 0} {
		st := mk(fmt.Sprintf("w%d.ckpt", workers))
		got := RunWith(context.Background(), cellJobs(t, n, nil), Options[cell]{Workers: workers, Checkpoint: st})
		st.Close()
		for i := range got {
			if got[i].Value != ref[i].Value {
				t.Fatalf("workers=%d cell %d: %+v != %+v", workers, i, got[i].Value, ref[i].Value)
			}
			if (got[i].Err == nil) != (ref[i].Err == nil) {
				t.Fatalf("workers=%d cell %d error mismatch: %v vs %v", workers, i, got[i].Err, ref[i].Err)
			}
		}
	}
}

func TestReplayedPanicNamesItsCell(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	st, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 0, nil },
		func(context.Context) (int, error) { panic("cbd cycle wedged") },
	}
	RunWith(context.Background(), jobs, Options[int]{Workers: 1, Checkpoint: st})
	st.Close()
	st2, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e, ok := st2.Lookup(1)
	if !ok {
		t.Fatal("panicked cell not quarantined into the checkpoint")
	}
	if !strings.HasPrefix(e.Err, "job 1: ") || !strings.Contains(e.Err, "cbd cycle wedged") {
		t.Fatalf("recorded panic %q lost its identity", e.Err)
	}
}

// readLines splits a checkpoint file into its non-empty lines.
func readLines(t *testing.T, path string) [][]byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines [][]byte
	for _, l := range bytes.Split(data, []byte{'\n'}) {
		if len(l) > 0 {
			lines = append(lines, l)
		}
	}
	return lines
}

func TestCheckpointV2HeaderAndEnvelope(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	st, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Record(0, 7, cell{Mean: 0.25, N: 1}, nil, nil); err != nil {
		t.Fatal(err)
	}
	st.Close()
	lines := readLines(t, path)
	if len(lines) != 2 {
		t.Fatalf("file has %d lines, want header + 1 entry", len(lines))
	}
	var hdr storeHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.Version != storeVersion {
		t.Fatalf("header %s parses to %+v (err %v)", lines[0], hdr, err)
	}
	var env envelope
	if err := json.Unmarshal(lines[1], &env); err != nil {
		t.Fatal(err)
	}
	if crc32.ChecksumIEEE(env.E) != env.CRC {
		t.Fatal("recorded entry fails its own CRC")
	}
	st2, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if sv := st2.Salvage(); sv.Dropped != 0 {
		t.Fatalf("clean file salvaged: %+v", sv)
	}
	if e, ok := st2.Lookup(0); !ok || e.Seed != 7 {
		t.Fatalf("entry 0 = %+v, %v", e, ok)
	}
}

func TestCheckpointMidFileBitFlipSalvagesPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	st, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := st.Record(i, int64(i), cell{Mean: float64(i) / 3, N: i}, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Flip one byte inside entry 2's value — still valid JSON shape-wise,
	// but the CRC must catch it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte{'\n'})
	target := lines[3] // header + entries 0,1 before it
	i := bytes.Index(target, []byte(`"n":2`))
	if i < 0 {
		t.Fatalf("entry 2 layout changed: %s", target)
	}
	target[i+4] = '9'
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Done() != 2 {
		t.Fatalf("salvaged %d cells, want the 2-entry valid prefix", st2.Done())
	}
	sv := st2.Salvage()
	if sv.Dropped != 4 {
		t.Fatalf("Dropped = %d, want 4 (corrupt line + 3 after it)", sv.Dropped)
	}
	if !strings.Contains(sv.Reason, "CRC mismatch") {
		t.Fatalf("Reason = %q", sv.Reason)
	}
	// Appending after salvage yields a clean file again.
	for i := 2; i < 6; i++ {
		if err := st2.Record(i, int64(i), cell{Mean: float64(i) / 3, N: i}, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	st2.Close()
	st3, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.Done() != 6 || st3.Salvage().Dropped != 0 {
		t.Fatalf("post-repair store: %d cells, salvage %+v", st3.Done(), st3.Salvage())
	}
}

func TestCheckpointGarbageLineSalvagesPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	st, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Record(i, int64(i), cell{N: i}, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\x00\x01 not json at all\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st2, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Done() != 3 {
		t.Fatalf("salvaged %d cells, want 3", st2.Done())
	}
	sv := st2.Salvage()
	if sv.Dropped != 1 || !strings.Contains(sv.Reason, "unparseable envelope") {
		t.Fatalf("salvage = %+v", sv)
	}
}

func TestCheckpointLegacyV1StillLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	// A v1 checkpoint: bare entry lines, no header, one of them mangled.
	v1 := `{"job":0,"key":"k","seed":10,"value":{"mean":0.5,"p99":0,"n":0}}
{"job":1,"key":"k","seed":11,"value":{"mean":1.5,"p99":0,"n":1}}
not json
{"job":2,"key":"k","seed":12,"err":"job 2: budget blown"}
`
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	if st.Done() != 3 {
		t.Fatalf("legacy store loaded %d cells, want 3", st.Done())
	}
	sv := st.Salvage()
	if sv.Dropped != 1 || !strings.Contains(sv.Reason, "v1") {
		t.Fatalf("legacy salvage = %+v", sv)
	}
	if e, _ := st.Lookup(2); e.Err != "job 2: budget blown" {
		t.Fatalf("entry 2 = %+v", e)
	}
	// Appends to a legacy file stay v1 so the whole file keeps one format.
	if err := st.Record(3, 13, cell{N: 3}, nil, &Provenance{Attempts: 2}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	lines := readLines(t, path)
	last := lines[len(lines)-1]
	var e Entry
	if err := json.Unmarshal(last, &e); err != nil || e.Job != 3 {
		t.Fatalf("legacy append is not a bare v1 entry: %s", last)
	}
	if e.Prov == nil || e.Prov.Attempts != 2 {
		t.Fatalf("provenance lost on legacy append: %+v", e.Prov)
	}
	st2, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Done() != 4 {
		t.Fatalf("reopened legacy store has %d cells, want 4", st2.Done())
	}
}

func TestCheckpointSalvageEverythingStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	// A v2 header followed immediately by garbage: the valid prefix is just
	// the header, and the store must keep working.
	if err := os.WriteFile(path, []byte("{\"gfc_checkpoint\":2,\"crc\":\"ieee\"}\ngarbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	if st.Done() != 0 || st.Salvage().Dropped != 1 {
		t.Fatalf("store = %d cells, salvage %+v", st.Done(), st.Salvage())
	}
	if err := st.Record(0, 0, cell{N: 0}, nil, nil); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Done() != 1 || st2.Salvage().Dropped != 0 {
		t.Fatalf("recovered store = %d cells, salvage %+v", st2.Done(), st2.Salvage())
	}
}
