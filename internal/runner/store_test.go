package runner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cell is a deliberately float-heavy result type: the resume contract
// depends on JSON float64 round-trips being exact.
type cell struct {
	Mean float64 `json:"mean"`
	P99  float64 `json:"p99"`
	N    int     `json:"n"`
}

func cellJobs(t *testing.T, n int, mustRun func(i int) bool) []Job[cell] {
	t.Helper()
	jobs := make([]Job[cell], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (cell, error) {
			if mustRun != nil && !mustRun(i) {
				t.Errorf("job %d recomputed despite a checkpoint entry", i)
			}
			if i == 3 {
				return cell{}, fmt.Errorf("cell %d diverged", i)
			}
			return cell{Mean: math.Sqrt(float64(i)) / 3, P99: float64(i) * 1.1e-9, N: i}, nil
		}
	}
	return jobs
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	const n = 12
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	// Uninterrupted reference run, no checkpoint.
	ref := RunWith(context.Background(), cellJobs(t, n, nil), Options{Workers: 1})

	// First pass: record only the first half, simulating an interrupt by
	// running a truncated job list.
	st, err := OpenStore(path, "spec-v1")
	if err != nil {
		t.Fatal(err)
	}
	seed := func(i int) int64 { return int64(i)*1e9 + 7 }
	RunWith(context.Background(), cellJobs(t, n/2, nil), Options{Workers: 2, Checkpoint: st, Seed: seed})
	if st.Done() != n/2 {
		t.Fatalf("recorded %d cells, want %d", st.Done(), n/2)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: recorded cells must be replayed, not recomputed, and the
	// aggregate must match the uninterrupted run bit for bit.
	st2, err := OpenStore(path, "spec-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	res := RunWith(context.Background(), cellJobs(t, n, func(i int) bool { return i >= n/2 }),
		Options{Workers: 3, Checkpoint: st2, Seed: seed})
	for i := range res {
		if res[i].Value != ref[i].Value {
			t.Fatalf("cell %d: resumed %+v != reference %+v", i, res[i].Value, res[i].Value)
		}
	}
	// The quarantined failure replays with its original rendered message.
	if res[3].Err == nil || res[3].Err.Error() != ref[3].Err.Error() {
		t.Fatalf("replayed failure %v != reference %v", res[3].Err, ref[3].Err)
	}
	var re *ReplayedError
	if !errors.As(res[3].Err, &re) {
		t.Fatalf("replayed failure has type %T", res[3].Err)
	}
	if st2.Done() != n {
		t.Fatalf("store holds %d cells after resume, want %d", st2.Done(), n)
	}
	// Recorded seeds survive the round trip.
	if e, ok := st2.Lookup(4); !ok || e.Seed != seed(4) {
		t.Fatalf("entry 4 seed = %+v", e)
	}
}

func TestCheckpointKeyMismatchReruns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	st, err := OpenStore(path, "spec-v1")
	if err != nil {
		t.Fatal(err)
	}
	RunWith(context.Background(), cellJobs(t, 4, nil), Options{Workers: 1, Checkpoint: st})
	st.Close()

	// A different sweep key must not replay: stale entries are ignored.
	st2, err := OpenStore(path, "spec-v2")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Done() != 0 {
		t.Fatalf("key-mismatched store replays %d cells", st2.Done())
	}
	ran := make([]bool, 4)
	RunWith(context.Background(), cellJobs(t, 4, func(i int) bool { ran[i] = true; return true }),
		Options{Workers: 1, Checkpoint: st2})
	for i, r := range ran {
		if !r {
			t.Fatalf("job %d not re-run under the new key", i)
		}
	}
}

func TestCheckpointTornLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	st, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Record(i, int64(i), cell{N: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	// Simulate a kill mid-write: a partial, unterminated JSON line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"job":3,"key":"k","val`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Done() != 3 {
		t.Fatalf("recovered %d cells, want 3 (torn line dropped)", st2.Done())
	}
	if _, ok := st2.Lookup(3); ok {
		t.Fatal("torn entry replayed")
	}
	// Appending after recovery must yield a parseable file: the torn tail
	// was truncated away.
	if err := st2.Record(3, 3, cell{N: 3}, nil); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.Done() != 4 {
		t.Fatalf("post-recovery store holds %d cells, want 4", st3.Done())
	}
}

func TestCheckpointSkipsCancelledCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	st, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]Job[int], 6)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context) (int, error) {
			if i == 2 {
				cancel()
				return 0, ctx.Err() // cut short by the cancellation
			}
			return i, nil
		}
	}
	res := RunWith(ctx, jobs, Options{Workers: 1, Checkpoint: st})
	// Jobs 0-1 completed and were recorded; job 2 and the queued jobs were
	// cancellation casualties and must NOT be in the checkpoint, so a
	// resume re-runs them.
	if st.Done() != 2 {
		t.Fatalf("recorded %d cells, want 2 (cancelled cells excluded)", st.Done())
	}
	for i := 2; i < 6; i++ {
		if _, ok := st.Lookup(i); ok {
			t.Fatalf("cancelled job %d leaked into the checkpoint", i)
		}
		if !errors.Is(res[i].Err, context.Canceled) {
			t.Fatalf("job %d err = %v", i, res[i].Err)
		}
	}
}

func TestCheckpointDeterministicAcrossWorkers(t *testing.T) {
	// Same checkpoint state + same jobs must give the same result slice at
	// any worker count, including the replayed-vs-computed partition.
	const n = 16
	dir := t.TempDir()
	mk := func(name string) *Store {
		st, err := OpenStore(filepath.Join(dir, name), "k")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i += 3 {
			if err := st.Record(i, 0, cell{Mean: float64(i) / 7, N: i}, nil); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	base := mk("a.ckpt")
	ref := RunWith(context.Background(), cellJobs(t, n, nil), Options{Workers: 1, Checkpoint: base})
	base.Close()
	for _, workers := range []int{2, 5, 0} {
		st := mk(fmt.Sprintf("w%d.ckpt", workers))
		got := RunWith(context.Background(), cellJobs(t, n, nil), Options{Workers: workers, Checkpoint: st})
		st.Close()
		for i := range got {
			if got[i].Value != ref[i].Value {
				t.Fatalf("workers=%d cell %d: %+v != %+v", workers, i, got[i].Value, ref[i].Value)
			}
			if (got[i].Err == nil) != (ref[i].Err == nil) {
				t.Fatalf("workers=%d cell %d error mismatch: %v vs %v", workers, i, got[i].Err, ref[i].Err)
			}
		}
	}
}

func TestReplayedPanicNamesItsCell(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	st, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 0, nil },
		func(context.Context) (int, error) { panic("cbd cycle wedged") },
	}
	RunWith(context.Background(), jobs, Options{Workers: 1, Checkpoint: st})
	st.Close()
	st2, err := OpenStore(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e, ok := st2.Lookup(1)
	if !ok {
		t.Fatal("panicked cell not quarantined into the checkpoint")
	}
	if !strings.HasPrefix(e.Err, "job 1: ") || !strings.Contains(e.Err, "cbd cycle wedged") {
		t.Fatalf("recorded panic %q lost its identity", e.Err)
	}
}
