// Package runner is a deterministic worker pool for share-nothing
// simulation experiments.
//
// Paper-scale sweeps (Table 1: hundreds of random failure scenarios × four
// flow-control schemes) are embarrassingly parallel: each scenario builds
// its own Network, which owns its own event engine and shares no mutable
// state with any other. The runner exploits that while keeping results
// bit-identical regardless of worker count, which it guarantees by
// construction:
//
//   - every job derives all randomness from its own index/seed, never from
//     shared state or scheduling order;
//   - results land in a slice indexed by job position, so aggregation
//     happens in job order no matter which worker finished first;
//   - a panicking job is captured as that job's error instead of tearing
//     down the process (one pathological scenario must not kill a sweep).
//
// RunWith layers sweep resilience on the same pool: per-job deadlines,
// a checkpoint Store that records each completed cell as it finishes
// so an interrupted sweep resumes by replaying recorded results instead of
// recomputing them, classified retries with seed-derived backoff for
// transient failures (retry.go), and a degraded-fidelity fallback hook for
// cells that exhaust their retry budget.
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Job computes one experiment. Implementations must be self-contained:
// seeded by the closure that built them and free of shared mutable state.
// The context is the one passed to Run; long jobs may poll it.
type Job[T any] func(ctx context.Context) (T, error)

// Result is the outcome of one job, in job order.
type Result[T any] struct {
	Value T
	// Err is the job's returned error, a *PanicError if it panicked, or
	// the context error for jobs skipped after cancellation — in every
	// case wrapped as "job %d: ..." so a failed sweep names the offending
	// cell. errors.Is/As see through the wrapping.
	Err error
	// Prov records retry and degradation provenance; nil for cells that
	// succeeded on their first attempt at full fidelity. It round-trips
	// through the checkpoint, so replayed cells carry the same history.
	Prov *Provenance
}

// PanicError wraps a recovered job panic so a sweep survives a pathological
// scenario and reports it instead of crashing.
type PanicError struct {
	Value any    // the recovered value
	Stack []byte // stack of the panicking goroutine
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("job panicked: %v\n%s", p.Value, p.Stack)
}

// ReplayedError is a job failure read back from a checkpoint Store. The
// original error type is gone — only its rendered message was durable — so
// resumed sweeps report the same text without the same dynamic type.
type ReplayedError struct{ Msg string }

func (e *ReplayedError) Error() string { return e.Msg }

// Options configures RunWith. It is generic in the job result type so the
// degraded-fidelity fallback can produce a typed value.
type Options[T any] struct {
	// Workers is the pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// JobTimeout, when non-zero, derives a per-job deadline context for
	// each attempt of each job (retries get a fresh deadline). A job that
	// honours its context (e.g. via netsim.RunBounded) then fails with
	// context.DeadlineExceeded — a transient failure under the default
	// classification, so it is retried within Retry's budget and
	// quarantined only when that is exhausted.
	JobTimeout time.Duration
	// Checkpoint, when non-nil, is consulted before each job (a recorded
	// cell is replayed, not recomputed) and appended to as cells complete.
	// Jobs skipped by cancellation are NOT recorded, so a resumed sweep
	// re-runs them.
	Checkpoint *Store
	// Seed, when non-nil, supplies the seed recorded in checkpoint
	// entries for job i; it also derives the cell's backoff jitter, which
	// is what makes retry sequencing reproducible (replay does not use it).
	Seed func(job int) int64
	// Retry is the transient-failure retry policy; the zero value
	// disables retrying.
	Retry Retry
	// Classify buckets a job error for the retry policy; nil means
	// DefaultClassify. Callers whose jobs surface richer error types
	// (governor trips, invariant violations) install their own taxonomy.
	Classify func(error) FailureClass
	// Degrade, when non-nil, is consulted after a job exhausts its retry
	// budget on a transient failure: it may recompute the cell at
	// degraded fidelity (e.g. the fluid backend) and return the fallback
	// value. On success the cell's Provenance records the causing error
	// in Degraded; on failure the cell quarantines with both errors. It
	// runs under a fresh JobTimeout deadline and with panic capture, like
	// any attempt.
	Degrade func(ctx context.Context, job int, cause error) (T, error)
}

// Run executes jobs on a pool of workers and returns their results in job
// order. workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 runs the
// jobs inline in order. Because jobs are share-nothing and results are
// collected by index, the returned slice is identical for every worker
// count. When ctx is cancelled, jobs not yet started report ctx's error;
// already-running jobs finish normally.
func Run[T any](ctx context.Context, jobs []Job[T], workers int) []Result[T] {
	return RunWith(ctx, jobs, Options[T]{Workers: workers})
}

// RunWith is Run with sweep-resilience options: per-job deadlines,
// checkpoint/resume, classified retries and degraded-fidelity fallback.
// The determinism contract is unchanged — for a given (jobs, checkpoint
// state, failure pattern) the result slice is identical for every worker
// count.
func RunWith[T any](ctx context.Context, jobs []Job[T], opts Options[T]) []Result[T] {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result[T], len(jobs))
	if workers <= 1 {
		for i := range jobs {
			results[i] = runIndexed(ctx, i, jobs[i], &opts)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i] = runIndexed(ctx, i, jobs[i], &opts)
			}
		}()
	}
	wg.Wait()
	return results
}

// runIndexed runs job i through the resilience pipeline: checkpoint replay,
// cancellation skip, classified retries with per-attempt deadlines and
// panic capture, degraded-fidelity fallback, job-index error wrapping, and
// checkpoint recording.
func runIndexed[T any](ctx context.Context, i int, job Job[T], opts *Options[T]) Result[T] {
	if cp := opts.Checkpoint; cp != nil {
		if e, ok := cp.Lookup(i); ok {
			return replay[T](e)
		}
	}
	if err := ctx.Err(); err != nil {
		return Result[T]{Err: fmt.Errorf("job %d: %w", i, err)}
	}
	var seed int64
	if opts.Seed != nil {
		seed = opts.Seed(i)
	}
	classify := opts.Classify
	if classify == nil {
		classify = DefaultClassify
	}
	val, prov, err := Supervise(ctx, seed, opts.Retry, classify, func(actx context.Context) (T, error) {
		return runAttempt(actx, job, opts.JobTimeout)
	})
	res := Result[T]{Value: val, Err: err, Prov: prov}
	if err != nil && opts.Degrade != nil && classify(err) == ClassTransient {
		res = degradeJob(ctx, i, err, prov, opts)
	}
	if res.Err != nil {
		res.Err = fmt.Errorf("job %d: %w", i, res.Err)
	}
	if cp := opts.Checkpoint; cp != nil && !skipRecord(res.Err) {
		// A failed write must not corrupt the in-memory result; the
		// checkpoint is best-effort durability, not the source of truth.
		_ = cp.Record(i, seed, res.Value, res.Err, res.Prov)
	}
	return res
}

// runAttempt is one primary-path attempt: a fresh JobTimeout deadline (so
// retries are not charged for earlier attempts' time) around the job.
// Panic capture happens in runOne, inside Supervise.
func runAttempt[T any](ctx context.Context, job Job[T], timeout time.Duration) (T, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return job(ctx)
}

// degradeJob invokes the degraded-fidelity fallback for a job whose retry
// budget was exhausted by the transient cause. A successful fallback value
// carries the cause in its Provenance; a failed one quarantines the cell
// with both errors, keeping the original cause unwrappable (errors.As
// still finds its flight-recorder snapshot). A cancellation mid-fallback
// is a skip, like any cancelled cell.
func degradeJob[T any](ctx context.Context, i int, cause error, prov *Provenance, opts *Options[T]) Result[T] {
	dres := runOne(ctx, func(dctx context.Context) (T, error) {
		return runAttempt(dctx, func(actx context.Context) (T, error) {
			return opts.Degrade(actx, i, cause)
		}, opts.JobTimeout)
	})
	if prov == nil {
		prov = &Provenance{Attempts: 1}
	}
	if dres.Err == nil {
		prov.Degraded = cause.Error()
		return Result[T]{Value: dres.Value, Prov: prov}
	}
	if errors.Is(dres.Err, context.Canceled) {
		return Result[T]{Err: dres.Err, Prov: prov}
	}
	return Result[T]{
		Err:  fmt.Errorf("%w; degraded-fidelity fallback failed: %v", cause, dres.Err),
		Prov: prov,
	}
}

// skipRecord reports whether a job outcome must stay out of the checkpoint:
// a cancellation skip is not a verdict on the cell, so a resumed sweep has
// to re-run it. Per-job deadline blows are real verdicts
// (context.DeadlineExceeded, not Canceled) and are recorded.
func skipRecord(err error) bool {
	return err != nil && errors.Is(err, context.Canceled)
}

// replay converts a checkpoint entry back into a Result. The recorded error
// string (already carrying its "job %d:" prefix) comes back as a
// *ReplayedError; values round-trip through JSON bit-identically (Go emits
// the shortest float form that re-parses exactly), and retry/degradation
// provenance rides along so a resumed sweep reports the same history.
func replay[T any](e Entry) Result[T] {
	res := Result[T]{Prov: e.Prov}
	if e.Err != "" {
		res.Err = &ReplayedError{Msg: e.Err}
		return res
	}
	if err := json.Unmarshal(e.Value, &res.Value); err != nil {
		res.Err = fmt.Errorf("job %d: corrupt checkpoint value: %w", e.Job, err)
	}
	return res
}

// runOne executes a single job with panic capture.
func runOne[T any](ctx context.Context, job Job[T]) (res Result[T]) {
	defer func() {
		if r := recover(); r != nil {
			res.Err = &PanicError{Value: r, Stack: stack()}
		}
	}()
	res.Value, res.Err = job(ctx)
	return res
}

func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// FirstErr returns the error of the lowest-indexed failed job, or nil. Using
// job order (not completion order) keeps error reporting deterministic too.
func FirstErr[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// Failed returns the indices of failed jobs, in job order — the input to a
// deterministic quarantine summary.
func Failed[T any](results []Result[T]) []int {
	var idx []int
	for i := range results {
		if results[i].Err != nil {
			idx = append(idx, i)
		}
	}
	return idx
}
