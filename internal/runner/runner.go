// Package runner is a deterministic worker pool for share-nothing
// simulation experiments.
//
// Paper-scale sweeps (Table 1: hundreds of random failure scenarios × four
// flow-control schemes) are embarrassingly parallel: each scenario builds
// its own Network, which owns its own event engine and shares no mutable
// state with any other. The runner exploits that while keeping results
// bit-identical regardless of worker count, which it guarantees by
// construction:
//
//   - every job derives all randomness from its own index/seed, never from
//     shared state or scheduling order;
//   - results land in a slice indexed by job position, so aggregation
//     happens in job order no matter which worker finished first;
//   - a panicking job is captured as that job's error instead of tearing
//     down the process (one pathological scenario must not kill a sweep).
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job computes one experiment. Implementations must be self-contained:
// seeded by the closure that built them and free of shared mutable state.
// The context is the one passed to Run; long jobs may poll it.
type Job[T any] func(ctx context.Context) (T, error)

// Result is the outcome of one job, in job order.
type Result[T any] struct {
	Value T
	// Err is the job's returned error, a *PanicError if it panicked, or
	// the context error for jobs skipped after cancellation.
	Err error
}

// PanicError wraps a recovered job panic so a sweep survives a pathological
// scenario and reports it instead of crashing.
type PanicError struct {
	Value any    // the recovered value
	Stack []byte // stack of the panicking goroutine
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("job panicked: %v\n%s", p.Value, p.Stack)
}

// Run executes jobs on a pool of workers and returns their results in job
// order. workers <= 0 means runtime.GOMAXPROCS(0); workers == 1 runs the
// jobs inline in order. Because jobs are share-nothing and results are
// collected by index, the returned slice is identical for every worker
// count. When ctx is cancelled, jobs not yet started report ctx's error;
// already-running jobs finish normally.
func Run[T any](ctx context.Context, jobs []Job[T], workers int) []Result[T] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result[T], len(jobs))
	if workers <= 1 {
		for i, job := range jobs {
			if err := ctx.Err(); err != nil {
				results[i] = Result[T]{Err: err}
				continue
			}
			results[i] = runOne(ctx, job)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = Result[T]{Err: err}
					continue
				}
				results[i] = runOne(ctx, jobs[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// runOne executes a single job with panic capture.
func runOne[T any](ctx context.Context, job Job[T]) (res Result[T]) {
	defer func() {
		if r := recover(); r != nil {
			res.Err = &PanicError{Value: r, Stack: stack()}
		}
	}()
	res.Value, res.Err = job(ctx)
	return res
}

func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}

// FirstErr returns the error of the lowest-indexed failed job, or nil. Using
// job order (not completion order) keeps error reporting deterministic too.
func FirstErr[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}
