package runner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestResultsInJobOrder(t *testing.T) {
	const n = 100
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			// Stagger finishing order: later jobs finish first.
			time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
			return i * i, nil
		}
	}
	res := Run(context.Background(), jobs, 8)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Value != i*i {
			t.Fatalf("result %d = %d, want %d", i, r.Value, i*i)
		}
	}
}

// The determinism contract: seeded jobs produce identical result slices for
// every worker count.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 64
	mkJobs := func() []Job[uint64] {
		jobs := make([]Job[uint64], n)
		for i := 0; i < n; i++ {
			seed := int64(i) + 17
			jobs[i] = func(context.Context) (uint64, error) {
				rng := rand.New(rand.NewSource(seed))
				var acc uint64
				for k := 0; k < 1000; k++ {
					acc = acc*31 + uint64(rng.Int63())
				}
				return acc, nil
			}
		}
		return jobs
	}
	base := Run(context.Background(), mkJobs(), 1)
	for _, workers := range []int{2, 3, 8, n + 5, 0} {
		got := Run(context.Background(), mkJobs(), workers)
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d results differ from serial", workers)
		}
	}
}

func TestPanicCapture(t *testing.T) {
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 1, nil },
		func(context.Context) (int, error) { panic("scenario 1 exploded") },
		func(context.Context) (int, error) { return 3, nil },
	}
	res := Run(context.Background(), jobs, 2)
	if res[0].Value != 1 || res[2].Value != 3 {
		t.Fatal("healthy jobs disturbed by a panicking sibling")
	}
	var pe *PanicError
	if !errors.As(res[1].Err, &pe) {
		t.Fatalf("panic not captured: %v", res[1].Err)
	}
	if !strings.Contains(pe.Error(), "scenario 1 exploded") {
		t.Fatalf("panic message lost: %s", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if FirstErr(res) != res[1].Err {
		t.Fatal("FirstErr did not surface the panic")
	}
}

func TestJobErrors(t *testing.T) {
	boom := fmt.Errorf("boom")
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 0, nil },
		func(context.Context) (int, error) { return 0, boom },
	}
	res := Run(context.Background(), jobs, 1)
	if !errors.Is(res[1].Err, boom) {
		t.Fatalf("err = %v, want boom", res[1].Err)
	}
	// Satellite contract: failures name their cell deterministically.
	if !strings.HasPrefix(res[1].Err.Error(), "job 1: ") {
		t.Fatalf("err %q does not carry its job index", res[1].Err)
	}
	if !errors.Is(FirstErr(res), boom) {
		t.Fatal("FirstErr missed the failure")
	}
	if FirstErr(res[:1]) != nil {
		t.Fatal("FirstErr invented an error")
	}
	if got := Failed(res); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Failed = %v, want [1]", got)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	const n = 50
	jobs := make([]Job[int], n)
	for i := range jobs {
		jobs[i] = func(context.Context) (int, error) {
			if started.Add(1) == 2 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return 1, nil
		}
	}
	res := Run(ctx, jobs, 2)
	var done, skipped int
	for _, r := range res {
		switch {
		case r.Err == nil:
			done++
		case errors.Is(r.Err, context.Canceled):
			skipped++
		default:
			t.Fatalf("unexpected error: %v", r.Err)
		}
	}
	if skipped == 0 {
		t.Fatal("cancellation did not skip any queued job")
	}
	if done+skipped != n {
		t.Fatalf("done %d + skipped %d != %d", done, skipped, n)
	}
}

func TestZeroJobs(t *testing.T) {
	if res := Run[int](context.Background(), nil, 4); len(res) != 0 {
		t.Fatalf("len = %d", len(res))
	}
}

func TestDefaultWorkers(t *testing.T) {
	jobs := make([]Job[int], 10)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) { return i, nil }
	}
	res := Run(context.Background(), jobs, 0) // GOMAXPROCS
	for i, r := range res {
		if r.Value != i {
			t.Fatalf("result %d = %d", i, r.Value)
		}
	}
}

func TestJobTimeoutQuarantines(t *testing.T) {
	jobs := []Job[int]{
		func(context.Context) (int, error) { return 1, nil },
		func(ctx context.Context) (int, error) {
			// A job that honours its context, like a governed simulation.
			<-ctx.Done()
			return 0, ctx.Err()
		},
		func(context.Context) (int, error) { return 3, nil },
	}
	res := RunWith(context.Background(), jobs, Options[int]{Workers: 1, JobTimeout: 10 * time.Millisecond})
	if res[0].Value != 1 || res[2].Value != 3 {
		t.Fatal("deadline-blown cell disturbed its siblings")
	}
	if !errors.Is(res[1].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", res[1].Err)
	}
	if !strings.HasPrefix(res[1].Err.Error(), "job 1: ") {
		t.Fatalf("err %q does not name its cell", res[1].Err)
	}
}

// The cancellation-ordering contract under -race: cancellation during a
// sweep yields, for every job, either a clean result (started before the
// cancel won the race) or that job's own index-wrapped context error —
// never a torn or misattributed result.
func TestCancellationOrdering(t *testing.T) {
	const n, workers = 64, 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var running atomic.Int32
	release := make(chan struct{})
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (int, error) {
			if running.Add(1) == workers {
				cancel() // all workers busy: cancel mid-sweep
			}
			<-release
			return i, nil
		}
	}
	go func() {
		<-ctx.Done()
		close(release) // let in-flight jobs finish after the cancel
	}()
	res := RunWith(ctx, jobs, Options[int]{Workers: workers})
	var done, skipped int
	for i, r := range res {
		switch {
		case r.Err == nil:
			if r.Value != i {
				t.Fatalf("job %d returned %d: result misattributed", i, r.Value)
			}
			done++
		case errors.Is(r.Err, context.Canceled):
			if want := fmt.Sprintf("job %d: ", i); !strings.HasPrefix(r.Err.Error(), want) {
				t.Fatalf("skip error %q lacks prefix %q", r.Err, want)
			}
			skipped++
		default:
			t.Fatalf("job %d: unexpected error %v", i, r.Err)
		}
	}
	if done < workers {
		t.Fatalf("only %d jobs completed; the %d in-flight ones must finish", done, workers)
	}
	if skipped == 0 {
		t.Fatal("no queued job was skipped by the cancel")
	}
	if done+skipped != n {
		t.Fatalf("done %d + skipped %d != %d", done, skipped, n)
	}
}
