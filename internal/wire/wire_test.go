package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/units"
)

func TestPFCFrameRoundTrip(t *testing.T) {
	f := &PFCFrame{
		Source: [6]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01},
		CEV:    0b10100001,
		Time:   [8]uint16{100, 0, 0, 0, 0, 65535, 0, 42},
	}
	b := f.Marshal()
	if len(b) != 64 {
		t.Fatalf("frame length %d, want 64 (Ethernet minimum)", len(b))
	}
	g, err := UnmarshalPFC(b)
	if err != nil {
		t.Fatal(err)
	}
	if *g != *f {
		t.Fatalf("round trip: got %+v, want %+v", g, f)
	}
}

func TestUnmarshalPFCErrors(t *testing.T) {
	f := (&PFCFrame{}).Marshal()
	if _, err := UnmarshalPFC(f[:10]); err == nil {
		t.Error("short frame accepted")
	}
	bad := append([]byte(nil), f...)
	bad[0] = 0xFF
	if _, err := UnmarshalPFC(bad); err == nil {
		t.Error("bad destination accepted")
	}
	bad2 := append([]byte(nil), f...)
	bad2[13] = 0x00 // EtherType
	if _, err := UnmarshalPFC(bad2); err == nil {
		t.Error("bad EtherType accepted")
	}
	bad3 := append([]byte(nil), f...)
	bad3[15] = 0x02 // opcode
	if _, err := UnmarshalPFC(bad3); err == nil {
		t.Error("bad opcode accepted")
	}
}

func TestCBFCRoundTrip(t *testing.T) {
	p := &CBFCPacket{Init: true, VL: 7, FCTBS: 123456, FCCL: 999999}
	b := p.Marshal()
	q, err := UnmarshalCBFC(b)
	if err != nil {
		t.Fatal(err)
	}
	if *q != *p {
		t.Fatalf("round trip: got %+v want %+v", q, p)
	}
}

func TestUnmarshalCBFCErrors(t *testing.T) {
	if _, err := UnmarshalCBFC([]byte{1, 2, 3}); err == nil {
		t.Error("short packet accepted")
	}
	b := (&CBFCPacket{}).Marshal()
	b[0] = 9
	if _, err := UnmarshalCBFC(b); err == nil {
		t.Error("bad operand accepted")
	}
	b2 := (&CBFCPacket{}).Marshal()
	b2[1] = 16
	if _, err := UnmarshalCBFC(b2); err == nil {
		t.Error("bad VL accepted")
	}
}

func TestEncodeMessageKinds(t *testing.T) {
	cases := []flowcontrol.Message{
		{Kind: flowcontrol.KindPause, Priority: 3},
		{Kind: flowcontrol.KindResume, Priority: 3},
		{Kind: flowcontrol.KindStage, Priority: 0, Stage: 12},
		{Kind: flowcontrol.KindCredit, Priority: 1, FCCL: 4096},
		{Kind: flowcontrol.KindQueue, Priority: 2, Queue: 64000},
	}
	for _, m := range cases {
		b, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		// Every frame is one minimum Ethernet frame — the m=64B of the
		// §4.2 overhead analysis.
		if units.Size(len(b)) != flowcontrol.MessageSize {
			t.Errorf("%v encodes to %dB, want %v", m.Kind, len(b), flowcontrol.MessageSize)
		}
	}
	if _, err := EncodeMessage(flowcontrol.Message{Priority: 9}); err == nil {
		t.Error("priority 9 accepted")
	}
	if _, err := EncodeMessage(flowcontrol.Message{Kind: flowcontrol.KindStage, Stage: -1}); err == nil {
		t.Error("negative stage accepted")
	}
	if _, err := EncodeMessage(flowcontrol.Message{Kind: flowcontrol.Kind(99)}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestPauseResumeDecode(t *testing.T) {
	b, err := EncodeMessage(flowcontrol.Message{Kind: flowcontrol.KindPause, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := DecodePFCMessage(b, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Kind != flowcontrol.KindPause || ms[0].Priority != 5 {
		t.Fatalf("decoded %+v", ms)
	}
	b2, _ := EncodeMessage(flowcontrol.Message{Kind: flowcontrol.KindResume, Priority: 5})
	ms2, err := DecodePFCMessage(b2, false)
	if err != nil {
		t.Fatal(err)
	}
	if ms2[0].Kind != flowcontrol.KindResume {
		t.Fatalf("decoded %+v", ms2)
	}
}

func TestStageDecodeGFCMode(t *testing.T) {
	b, err := EncodeMessage(flowcontrol.Message{Kind: flowcontrol.KindStage, Priority: 2, Stage: 7})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := DecodePFCMessage(b, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Kind != flowcontrol.KindStage || ms[0].Stage != 7 || ms[0].Priority != 2 {
		t.Fatalf("decoded %+v", ms)
	}
	// The same bytes read by a PFC port mean PAUSE (nonzero timer) — the
	// §5.1 reuse is a per-link configuration, and this asymmetry is why.
	ms2, err := DecodePFCMessage(b, false)
	if err != nil {
		t.Fatal(err)
	}
	if ms2[0].Kind != flowcontrol.KindPause {
		t.Fatalf("PFC-mode reading of a stage frame: %+v", ms2)
	}
}

func TestMultiPriorityFrame(t *testing.T) {
	f := &PFCFrame{CEV: 0b0000_0101, Time: [8]uint16{0xFFFF, 0, 3, 0, 0, 0, 0, 0}}
	ms, err := DecodePFCMessage(f.Marshal(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("decoded %d messages, want 2", len(ms))
	}
	if ms[0].Kind != flowcontrol.KindPause || ms[0].Priority != 0 {
		t.Errorf("first = %+v", ms[0])
	}
	if ms[1].Kind != flowcontrol.KindPause || ms[1].Priority != 2 {
		t.Errorf("second = %+v", ms[1])
	}
}

// Property: PFC frame marshal/unmarshal is an exact inverse for arbitrary
// field values.
func TestPFCRoundTripProperty(t *testing.T) {
	f := func(src [6]byte, cev uint16, times [8]uint16) bool {
		fr := &PFCFrame{Source: src, CEV: cev, Time: times}
		got, err := UnmarshalPFC(fr.Marshal())
		return err == nil && *got == *fr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: encode→decode recovers the stage for any valid stage/priority.
func TestStageRoundTripProperty(t *testing.T) {
	f := func(stage uint16, prio uint8) bool {
		p := int(prio % 8)
		m := flowcontrol.Message{Kind: flowcontrol.KindStage, Priority: p, Stage: int(stage)}
		b, err := EncodeMessage(m)
		if err != nil {
			return false
		}
		ms, err := DecodePFCMessage(b, true)
		if err != nil || len(ms) != 1 {
			return false
		}
		return ms[0].Stage == int(stage) && ms[0].Priority == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: random byte mutations either fail to parse or parse to a frame
// whose re-encoding is consistent (no crashes, no aliasing).
func TestPFCFuzzish(t *testing.T) {
	base := (&PFCFrame{CEV: 1}).Marshal()
	f := func(idx uint8, val byte) bool {
		b := append([]byte(nil), base...)
		b[int(idx)%len(b)] = val
		fr, err := UnmarshalPFC(b)
		if err != nil {
			return true
		}
		// Re-encode and re-decode: fixed point.
		fr2, err := UnmarshalPFC(fr.Marshal())
		return err == nil && *fr2 == *fr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFrameSizesMatchOverheadModel(t *testing.T) {
	// The m = 64 B of §4.2 must equal what the encoder actually emits.
	b, _ := EncodeMessage(flowcontrol.Message{Kind: flowcontrol.KindStage})
	c, _ := EncodeMessage(flowcontrol.Message{Kind: flowcontrol.KindCredit})
	if len(b) != len(c) || len(b) != 64 {
		t.Fatalf("frame sizes %d/%d, want 64", len(b), len(c))
	}
	if !bytes.Equal(b[:12], (&PFCFrame{}).Marshal()[:12]) {
		t.Error("stage frame does not carry the PFC addressing")
	}
}
