// Package wire encodes and decodes the control frames the flow controls
// exchange, at the level of §5.1 and Figure 7 of the paper:
//
//   - PFC frames (IEEE 802.1Qbb): MAC control frames with opcode 0x0101, a
//     Class-Enable Vector selecting the priorities acted on, and eight
//     16-bit pause timers Time[0..7];
//   - GFC stage frames: the same layout with Time[k] repurposed to carry
//     the stage ID of priority k ("a two-byte field is enough", §5.1);
//   - CBFC credit packets: the InfiniBand flow-control packet carrying
//     FCTBS/FCCL for one virtual lane.
//
// The simulator itself passes flowcontrol.Message values in memory; this
// package exists so the implementation is demonstrably wire-complete (the
// moderate firmware modification the paper describes) and is exercised by
// round-trip and fuzz-style property tests.
package wire

import (
	"encoding/binary"
	"fmt"

	"github.com/gfcsim/gfc/internal/flowcontrol"
)

// Ethernet constants for PFC frames.
const (
	// EtherTypeMACControl is the MAC control EtherType (0x8808).
	EtherTypeMACControl = 0x8808
	// OpcodePFC is the priority-flow-control opcode.
	OpcodePFC = 0x0101
	// PauseQuantaMax is the "pause until further notice" timer value.
	PauseQuantaMax = 0xFFFF
)

// pfcMACDest is the reserved multicast address PFC frames are sent to.
var pfcMACDest = [6]byte{0x01, 0x80, 0xC2, 0x00, 0x00, 0x01}

// PFCFrame is the Figure 7 layout: destination/source addresses, the MAC
// control EtherType and opcode, the Class-Enable Vector, and the eight
// per-priority 16-bit timer fields.
type PFCFrame struct {
	Source [6]byte
	// CEV bit k enables the frame's action on priority k.
	CEV uint16
	// Time[k] is the pause duration in quanta for PFC, or the stage ID
	// for GFC stage frames.
	Time [8]uint16
}

// pfcFrameLen is the encoded size: 6+6 addresses, 2 EtherType, 2 opcode,
// 2 CEV, 16 timers, padded to the 64-byte Ethernet minimum.
const pfcFrameLen = 64

// Marshal encodes the frame to the minimum Ethernet frame size.
func (f *PFCFrame) Marshal() []byte {
	b := make([]byte, pfcFrameLen)
	copy(b[0:6], pfcMACDest[:])
	copy(b[6:12], f.Source[:])
	binary.BigEndian.PutUint16(b[12:14], EtherTypeMACControl)
	binary.BigEndian.PutUint16(b[14:16], OpcodePFC)
	binary.BigEndian.PutUint16(b[16:18], f.CEV)
	for k := 0; k < 8; k++ {
		binary.BigEndian.PutUint16(b[18+2*k:20+2*k], f.Time[k])
	}
	return b
}

// UnmarshalPFC decodes a PFC frame, validating EtherType, opcode and
// destination address.
func UnmarshalPFC(b []byte) (*PFCFrame, error) {
	if len(b) < 34 {
		return nil, fmt.Errorf("wire: PFC frame too short (%d bytes)", len(b))
	}
	for i, v := range pfcMACDest {
		if b[i] != v {
			return nil, fmt.Errorf("wire: bad PFC destination address")
		}
	}
	if et := binary.BigEndian.Uint16(b[12:14]); et != EtherTypeMACControl {
		return nil, fmt.Errorf("wire: EtherType %#04x is not MAC control", et)
	}
	if op := binary.BigEndian.Uint16(b[14:16]); op != OpcodePFC {
		return nil, fmt.Errorf("wire: opcode %#04x is not PFC", op)
	}
	f := &PFCFrame{}
	copy(f.Source[:], b[6:12])
	f.CEV = binary.BigEndian.Uint16(b[16:18])
	for k := 0; k < 8; k++ {
		f.Time[k] = binary.BigEndian.Uint16(b[18+2*k : 20+2*k])
	}
	return f, nil
}

// CBFCPacket is the InfiniBand flow-control packet for one virtual lane:
// operand (normal/init), VL, FCTBS and FCCL (12-bit fields in hardware;
// carried as the full counters modulo 2^32 here, with the on-wire layout
// preserving the spec's field order).
type CBFCPacket struct {
	Init  bool
	VL    uint8
	FCTBS uint32
	FCCL  uint32
}

// cbfcLen is the encoded flow-control packet length (IB FLOW_CTRL packets
// are a single 12-byte unit; padded to 64 for parity with Ethernet here).
const cbfcLen = 64

// Marshal encodes the packet.
func (p *CBFCPacket) Marshal() []byte {
	b := make([]byte, cbfcLen)
	op := byte(0)
	if p.Init {
		op = 1
	}
	b[0] = op
	b[1] = p.VL
	binary.BigEndian.PutUint32(b[2:6], p.FCTBS)
	binary.BigEndian.PutUint32(b[6:10], p.FCCL)
	return b
}

// UnmarshalCBFC decodes a credit packet.
func UnmarshalCBFC(b []byte) (*CBFCPacket, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("wire: CBFC packet too short (%d bytes)", len(b))
	}
	if b[0] > 1 {
		return nil, fmt.Errorf("wire: unknown CBFC operand %d", b[0])
	}
	if b[1] > 15 {
		return nil, fmt.Errorf("wire: VL %d out of range", b[1])
	}
	return &CBFCPacket{
		Init:  b[0] == 1,
		VL:    b[1],
		FCTBS: binary.BigEndian.Uint32(b[2:6]),
		FCCL:  binary.BigEndian.Uint32(b[6:10]),
	}, nil
}

// EncodeMessage renders a flowcontrol.Message as its on-wire frame, the
// §5.1/§5.2 implementation mapping:
//
//   - KindPause  → PFC frame, CEV bit set, Time[p] = PauseQuantaMax
//   - KindResume → PFC frame, CEV bit set, Time[p] = 0
//   - KindStage  → PFC frame, CEV bit set, Time[p] = stage ID
//   - KindCredit → CBFC packet with FCCL (FCTBS is sender state and is
//     carried as zero from the receiver side)
//   - KindQueue  → PFC-format frame carrying the queue length in 64-byte
//     units across Time[p] (conceptual design only; not deployable)
func EncodeMessage(m flowcontrol.Message) ([]byte, error) {
	if m.Priority < 0 || m.Priority > 7 {
		return nil, fmt.Errorf("wire: priority %d out of range", m.Priority)
	}
	switch m.Kind {
	case flowcontrol.KindPause, flowcontrol.KindResume, flowcontrol.KindStage, flowcontrol.KindQueue:
		f := &PFCFrame{CEV: 1 << uint(m.Priority)}
		switch m.Kind {
		case flowcontrol.KindPause:
			f.Time[m.Priority] = PauseQuantaMax
		case flowcontrol.KindResume:
			f.Time[m.Priority] = 0
		case flowcontrol.KindStage:
			if m.Stage < 0 || m.Stage > int(PauseQuantaMax) {
				return nil, fmt.Errorf("wire: stage %d does not fit the two-byte field", m.Stage)
			}
			f.Time[m.Priority] = uint16(m.Stage)
		case flowcontrol.KindQueue:
			units64 := m.Queue / 64
			if units64 > PauseQuantaMax {
				units64 = PauseQuantaMax
			}
			f.Time[m.Priority] = uint16(units64)
		}
		return f.Marshal(), nil
	case flowcontrol.KindCredit:
		return (&CBFCPacket{
			VL:   uint8(m.Priority),
			FCCL: uint32(m.FCCL),
		}).Marshal(), nil
	default:
		return nil, fmt.Errorf("wire: unknown message kind %v", m.Kind)
	}
}

// DecodePFCMessage recovers the flow-control meaning of a PFC-format frame
// for one priority. The stage-vs-pause interpretation is a configuration of
// the receiving port (buffer-based GFC reuses the PFC frame format, §5.1),
// so the caller states which protocol the link runs.
func DecodePFCMessage(b []byte, gfcMode bool) ([]flowcontrol.Message, error) {
	f, err := UnmarshalPFC(b)
	if err != nil {
		return nil, err
	}
	var out []flowcontrol.Message
	for p := 0; p < 8; p++ {
		if f.CEV&(1<<uint(p)) == 0 {
			continue
		}
		m := flowcontrol.Message{Priority: p}
		switch {
		case gfcMode:
			m.Kind = flowcontrol.KindStage
			m.Stage = int(f.Time[p])
		case f.Time[p] == 0:
			m.Kind = flowcontrol.KindResume
		default:
			m.Kind = flowcontrol.KindPause
		}
		out = append(out, m)
	}
	return out, nil
}
