package analytic_test

import (
	"fmt"
	"testing"

	"github.com/gfcsim/gfc/internal/scenario"
	"github.com/gfcsim/gfc/internal/units"
)

// FuzzAnalyticBounds drives randomly parameterised small scenarios end to
// end and asserts the analytic prediction's bounds hold on the finished run:
// no switch channel exceeds the occupancy envelope, delivered bytes stay
// inside the conservation bound, a lossless claim sees zero drops and a
// deadlock-free claim survives the detector. Any violation is a soundness
// bug in internal/analytic (or the simulator), never acceptable noise.
func FuzzAnalyticBounds(f *testing.F) {
	schemes := []scenario.FC{
		scenario.PFC, scenario.CBFC, scenario.GFCBuf,
		scenario.GFCTime, scenario.GFCConceptual, scenario.BFC,
	}
	for i := range schemes {
		f.Add(uint8(i), uint8(0), uint16(300), uint8(1), uint8(0))
		f.Add(uint8(i), uint8(2), uint16(120), uint8(2), uint8(10))
	}
	f.Add(uint8(1), uint8(3), uint16(64), uint8(1), uint8(0)) // two-to-one CBFC
	f.Fuzz(func(t *testing.T, schemeSel, topoSel uint8, bufKB uint16, stride, jitterUs uint8) {
		fc := schemes[int(schemeSel)%len(schemes)]
		// Buffers below ~48 KB cannot fit the derived GFC stage ladders on
		// 10 Gb/s links; clamp into the analysable regime, cap for speed.
		buf := units.Size(bufKB) * units.KB
		if buf < 48*units.KB {
			buf = 48 * units.KB
		}
		if buf > 600*units.KB {
			buf = 600 * units.KB
		}
		// CBFC's factory has no period derivation of its own; give it the
		// sim preset's 50 µs so the scheme is actually exercised.
		var params scenario.FCParams
		if fc == scenario.CBFC {
			params.Period = 50 * units.Microsecond
		}
		spec := scenario.Spec{
			Name:    "fuzz-analytic",
			Routing: scenario.RoutingSpec{Policy: "spf"},
			Scheme:  scenario.SchemeSpec{FC: fc, Params: params},
			Sim: scenario.SimSpec{
				BufferBytes:      buf,
				FeedbackJitterNs: units.Time(jitterUs%50) * units.Microsecond,
				JitterSeed:       int64(stride) + 1,
			},
			Run: scenario.RunSpec{
				DurationNs:     2 * units.Millisecond,
				DetectDeadlock: true,
				Analytic:       true,
			},
		}
		// Small topologies keep each case a few milliseconds of wall clock.
		switch topoSel % 4 {
		case 0, 1:
			n := 3 + int(topoSel%4) // ring-3 or ring-4
			spec.Topology = scenario.TopologySpec{Builder: "ring", N: n}
			st := 1 + int(stride)%(n-1)
			for i := 0; i < n; i++ {
				spec.Workload.Flows = append(spec.Workload.Flows, scenario.FlowSpec{
					Src: fmt.Sprintf("H%d", i+1),
					Dst: fmt.Sprintf("H%d", (i+st)%n+1),
				})
			}
		case 2:
			spec.Topology = scenario.TopologySpec{Builder: "ring", N: 3, HostsPerSwitch: 2}
			for i := 0; i < 3; i++ {
				spec.Workload.Flows = append(spec.Workload.Flows,
					scenario.FlowSpec{Src: fmt.Sprintf("H%d", i+1), Dst: fmt.Sprintf("H%d", (i+1)%3+1)},
					scenario.FlowSpec{Src: fmt.Sprintf("H%db", i+1), Dst: fmt.Sprintf("H%d", (i+1)%3+1)},
				)
			}
		case 3:
			spec.Topology = scenario.TopologySpec{Builder: "two-to-one"}
			spec.Workload.Flows = []scenario.FlowSpec{
				{Src: "H1", Dst: "H3"}, {Src: "H2", Dst: "H3"},
			}
		}
		sim, err := scenario.Build(spec, nil)
		if err != nil {
			// Some corners are legitimately unbuildable (e.g. a threshold
			// derivation rejects the buffer); that is not a bounds bug.
			t.Skipf("build: %v", err)
		}
		res := sim.Run()
		if res.Analytic == nil {
			t.Fatal("Run.Analytic set but no verdict attached")
		}
		if res.Analytic.Err != nil {
			t.Fatalf("%v on %s (buf %v): %v", fc, spec.Topology.Builder, buf, res.Analytic.Err)
		}
		if res.Analytic.Prediction == nil {
			t.Fatal("nil prediction without error")
		}
	})
}
