// Package analytic computes per-topology predictions for a compiled
// scenario and turns them into the network-wide bounds the metrics layer
// asserts at end of run (metrics.NetworkBounds / Registry.CheckNetwork).
//
// Three families of results are combined (DESIGN.md §3.8):
//
//   - Bouillard-style stability analysis over the cyclic-buffer-dependency
//     graph: a scheme whose per-channel service rate stays positive on every
//     channel of every dependency cycle cannot reach a circular-wait
//     deadlock. GFC's mapping functions never reach zero rate (the stage
//     table's deepest rate, or the time-based minimum rate), so the GFC
//     variants are deadlock-free on any topology; on/off schemes (PFC, BFC)
//     and credit schemes (CBFC) are only deadlock-free when the CBD graph is
//     acyclic and the feedback path is unfaulted.
//   - Spang-style buffer-sizing envelopes: each scheme's worst-case ingress
//     occupancy is its stop/slow threshold plus the C·τ of data in flight
//     during one worst-case feedback latency (equation 6 per link, plus any
//     configured feedback jitter), clamped to the physical buffer.
//   - Conservation bounds: total delivered bytes cannot exceed the aggregate
//     host link capacity × duration, and a deadlock-free unfaulted run must
//     deliver something once the horizon comfortably exceeds a warmup.
//
// The package sits below internal/scenario (which adapts a built Sim into an
// Input) and above internal/core / internal/flowcontrol, whose closed-form
// bounds it reuses. Predict is pure: same Input, same Prediction.
package analytic

import (
	"errors"
	"fmt"

	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// Scheme names a flow-control scheme. The values match scenario.FC so the
// two layers convert with a string cast without importing each other.
type Scheme string

// The analysed schemes.
const (
	PFC           Scheme = "PFC"
	CBFC          Scheme = "CBFC"
	GFCBuffer     Scheme = "GFC-buffer"
	GFCTime       Scheme = "GFC-time"
	GFCConceptual Scheme = "GFC-conceptual"
	BFC           Scheme = "BFC"
)

// Params carries the scheme thresholds of the run under analysis — the same
// quantities as scenario.FCParams. Zero fields are derived exactly as the
// flowcontrol factories derive them, so a preset that leaves a threshold to
// the factory is analysed with the value the factory will actually install.
type Params struct {
	XOFF   units.Size
	XON    units.Size
	B1     units.Size
	Bm     units.Size
	B0     units.Size
	Period units.Time
}

// Input is one compiled scenario to analyse.
type Input struct {
	// Topo is the (possibly link-failed) topology. Required.
	Topo *topology.Topology
	// Scheme is the flow-control scheme under test. Required.
	Scheme Scheme
	// Cfg is the resolved simulator configuration (buffer size, MTU,
	// τ override, processing delay, feedback jitter). BufferSize is
	// required; the other fields default as netsim defaults them.
	Cfg netsim.Config
	// Params are the resolved scheme thresholds.
	Params Params
	// CBDKnown reports whether the workload's cyclic-buffer-dependency
	// verdict was computed; CBDCyclic is that verdict. Unknown is treated
	// as cyclic (the conservative direction for every claim).
	CBDKnown  bool
	CBDCyclic bool
	// Faulted marks a run with an attached fault injector: feedback may
	// be lost, delayed or forged, so only fault-robust bounds are
	// asserted.
	Faulted bool
	// Duration is the declared run horizon. Required.
	Duration units.Time
}

// Prediction is the per-topology analytic verdict. Bounds() converts the
// quantitative fields into the metrics-layer checker's input.
type Prediction struct {
	Scheme Scheme
	// DeadlockFree: the analysis guarantees the run cannot deadlock
	// (positive service rate on every dependency cycle, or no cycle to
	// wait on).
	DeadlockFree bool
	// Lossless: the scheme's thresholds leave enough reaction headroom
	// that the analysis guarantees zero drops.
	Lossless bool
	// CBDKnown / CBDCyclic echo the dependency-graph verdict used.
	CBDKnown  bool
	CBDCyclic bool
	// MaxOccupancy is the per-channel occupancy envelope in bytes.
	MaxOccupancy units.Size
	// MaxDelivered bounds aggregate delivered bytes over Duration.
	MaxDelivered units.Size
	// MinDelivered is the progress floor (0 when nothing is guaranteed).
	MinDelivered units.Size
	// FloorRate is the worst-case positive service rate the scheme
	// sustains on a congested channel — the Bouillard cycle-service
	// witness (0 when the scheme can stop a channel completely).
	FloorRate units.Rate
	// Tau is the worst-case feedback latency the envelope budgets for:
	// max(configured τ override, per-link equation-6 bound) plus jitter.
	Tau units.Time
}

// Bounds converts the prediction to the metrics-layer network checker input.
func (p *Prediction) Bounds() metrics.NetworkBounds {
	return metrics.NetworkBounds{
		MaxOccupancy: p.MaxOccupancy,
		MaxDelivered: p.MaxDelivered,
		MinDelivered: p.MinDelivered,
		Lossless:     p.Lossless,
		DeadlockFree: p.DeadlockFree,
	}
}

// warmup is the horizon below which no progress floor is asserted: first
// deliveries need the workload start plus a few path traversals, and 1 ms is
// hundreds of hop latencies on every topology in the catalogue.
const warmup = 1 * units.Millisecond

// Predict computes the analytic prediction for one compiled scenario. It is
// pure and deterministic; an error means the input cannot be analysed (no
// topology, no live links, unknown scheme), never that a bound is violated.
func Predict(in Input) (*Prediction, error) {
	if in.Topo == nil {
		return nil, errors.New("analytic: topology is required")
	}
	if in.Duration <= 0 {
		return nil, fmt.Errorf("analytic: duration %d must be positive", in.Duration)
	}
	cfg := in.Cfg
	if cfg.MTU == 0 {
		cfg.MTU = 1500 * units.Byte
	}
	if cfg.ProcDelay == 0 {
		cfg.ProcDelay = 3 * units.Microsecond
	}
	if cfg.BufferSize <= 0 {
		return nil, errors.New("analytic: buffer size is required")
	}

	// Worst-case feedback latency and line rate over the live links.
	var tauDerived units.Time
	var maxCap units.Rate
	live := 0
	for i := 0; i < in.Topo.NumLinks(); i++ {
		l := in.Topo.Link(topology.LinkID(i))
		if l.Failed {
			continue
		}
		live++
		if l.Capacity > maxCap {
			maxCap = l.Capacity
		}
		if t := core.Tau(l.Capacity, cfg.MTU, l.Delay, cfg.ProcDelay); t > tauDerived {
			tauDerived = t
		}
	}
	if live == 0 || maxCap <= 0 {
		return nil, errors.New("analytic: topology has no live links")
	}
	// tauActual bounds what the simulated feedback path can actually take
	// (equation 6 plus jitter); tauBudget is what the factories sized the
	// thresholds for (the configured override, or the same derivation).
	// The envelope must absorb tauActual; the losslessness claims require
	// the budget to cover it.
	tauActual := tauDerived + cfg.FeedbackJitter
	tauBudget := cfg.Tau
	if tauBudget <= 0 {
		tauBudget = tauDerived
	}

	p := &Prediction{
		Scheme: in.Scheme, CBDKnown: in.CBDKnown, CBDCyclic: in.CBDCyclic,
		Tau: maxTime(tauActual, tauBudget),
	}
	B := cfg.BufferSize
	mtu := cfg.MTU
	inflight := units.BytesIn(maxCap, tauActual)
	acyclic := !in.Faulted && in.CBDKnown && !in.CBDCyclic

	switch in.Scheme {
	case PFC:
		if x := in.Params.XOFF; x > 0 && !in.Faulted {
			// Overshoot past XOFF is bounded by one feedback latency of
			// line-rate arrivals plus the packet in flight when PAUSE
			// lands. A faulted feedback path voids the bound (a delayed
			// PAUSE admits arbitrarily more), so faulted runs fall back
			// to the physical buffer.
			p.MaxOccupancy = minSize(x+inflight+2*mtu, B)
			p.Lossless = B-x >= inflight
		} else {
			// Factory-derived thresholds (RecommendedPFC) leave exactly
			// C·τ_budget headroom per channel, so the envelope is the
			// buffer itself and losslessness needs the budget to cover
			// the actual latency.
			p.MaxOccupancy = B
			p.Lossless = !in.Faulted && tauBudget >= tauActual
		}
		p.DeadlockFree = acyclic
	case CBFC:
		// Credits never overcommit the buffer: the receiver only grants
		// what fits, so occupancy is buffer-bounded and no drop is
		// possible — but a zero credit balance stops a channel outright.
		p.MaxOccupancy = B
		p.Lossless = !in.Faulted
		p.DeadlockFree = acyclic
	case BFC:
		// Per-queue XOFF/XON are derived from the channel parameters the
		// way PFC's are (queue-fold aware), so the class-level envelope
		// is the buffer and losslessness needs the τ budget to hold.
		p.MaxOccupancy = B
		p.Lossless = !in.Faulted && tauBudget >= tauActual
		p.DeadlockFree = acyclic
	case GFCBuffer:
		bm := in.Params.Bm
		if bm == 0 {
			bm = B - 4*mtu
		}
		// The installed runtime ceiling: B_m plus the four-MTU headroom
		// the factories budget for the deepest stage's positive trickle
		// during one feedback latency, clamped to the buffer. A faulted
		// feedback path (lost or forged stage updates) voids the ceiling,
		// leaving only the physical buffer.
		p.MaxOccupancy = B
		if !in.Faulted {
			p.MaxOccupancy = minSize(bm+4*mtu, B)
		}
		b1 := in.Params.B1
		if b1 == 0 {
			b1 = core.BufferBasedB1Bound(bm, maxCap, tauBudget)
		}
		safeB1 := core.BufferBasedB1Bound(bm, maxCap, tauActual)
		p.Lossless = !in.Faulted && bm+4*mtu <= B && b1 > 0 && b1 <= safeB1
		if bm > 0 && b1 > 0 && b1 < bm {
			if st, err := core.NewStageTableRatio(maxCap, bm, b1, 0.5); err == nil {
				p.FloorRate = st.StageRate(st.Stages())
			}
		}
		// The stage table's deepest rate is positive by construction, so
		// every dependency cycle keeps draining (Bouillard stability).
		p.DeadlockFree = true
	case GFCTime:
		bm := in.Params.Bm
		if bm == 0 {
			bm = B - 4*mtu
		}
		// As with GFC-buffer: the ceiling holds only while rate feedback
		// arrives intact.
		p.MaxOccupancy = B
		if !in.Faulted {
			p.MaxOccupancy = minSize(bm+4*mtu, B)
		}
		period := in.Params.Period
		if period <= 0 {
			period = flowcontrol.RecommendedCBFCPeriod(maxCap)
		}
		b0 := in.Params.B0
		if b0 == 0 && bm > 0 {
			b0 = core.TimeBasedB0Bound(bm, maxCap, tauBudget, period)
		}
		safeB0 := units.Size(0)
		if bm > 0 {
			safeB0 = core.TimeBasedB0Bound(bm, maxCap, tauActual, period)
		}
		p.Lossless = !in.Faulted && bm+4*mtu <= B && b0 > 0 && b0 <= safeB0
		// The Rate Adjuster clamps at a positive minimum rate instead of
		// zero (flowcontrol's 8 Kb/s default).
		p.FloorRate = 8 * units.Kbps
		p.DeadlockFree = true
	case GFCConceptual:
		bm := in.Params.Bm
		if bm == 0 {
			bm = B // the conceptual factory's default
		}
		// The continuous mapping reaches rate zero at B_m, so the queue
		// can overshoot it by a feedback latency of in-flight data (a
		// faulted feedback path voids that bound).
		p.MaxOccupancy = B
		if !in.Faulted {
			p.MaxOccupancy = minSize(bm+inflight+2*mtu, B)
		}
		b0 := in.Params.B0
		if b0 == 0 && bm > 0 {
			b0 = core.ConceptualB0Bound(bm, maxCap, tauBudget)
		}
		b0ok := b0 > 0 && b0 <= core.ConceptualB0Bound(bm, maxCap, tauActual)
		p.Lossless = !in.Faulted && bm <= B && b0ok
		// Theorem 4.1: with B_0 ≤ B_m − 4Cτ the queue provably never
		// reaches B_m, so the mapped rate never hits zero. Otherwise the
		// scheme can stall a channel and only an acyclic CBD saves it.
		p.DeadlockFree = (b0ok && !in.Faulted) || acyclic
	default:
		return nil, fmt.Errorf("analytic: unknown scheme %q", in.Scheme)
	}

	// Conservation: every delivered byte crossed some live host-attached
	// link, each of which carries at most capacity × duration plus one
	// packet already in flight at the horizon.
	for _, h := range in.Topo.Hosts() {
		for _, at := range in.Topo.Ports(h) {
			if at.Link.Failed {
				continue
			}
			p.MaxDelivered += units.BytesIn(at.Link.Capacity, in.Duration) + mtu
		}
	}

	// Progress floor: a deadlock-free, unfaulted run with a horizon well
	// past warmup must deliver something — the Bouillard positive-service
	// argument gives every cycle channel at least FloorRate of drain, and
	// acyclic schemes drain at line rate.
	if p.DeadlockFree && !in.Faulted && in.Duration >= warmup {
		p.MinDelivered = 1
	}
	return p, nil
}

func minSize(a, b units.Size) units.Size {
	if a < b {
		return a
	}
	return b
}

func maxTime(a, b units.Time) units.Time {
	if a > b {
		return a
	}
	return b
}
