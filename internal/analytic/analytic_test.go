package analytic

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// ringInput is the baseline analysable scenario: the paper's 3-switch ring
// with factory-derived thresholds and a horizon past the progress warmup.
func ringInput(s Scheme) Input {
	return Input{
		Topo:     topology.Ring(3, topology.DefaultLinkParams()),
		Scheme:   s,
		Cfg:      netsim.Config{BufferSize: 300 * units.KB},
		Duration: 10 * units.Millisecond,
	}
}

func mustPredict(t *testing.T, in Input) *Prediction {
	t.Helper()
	p, err := Predict(in)
	if err != nil {
		t.Fatalf("Predict(%v): %v", in.Scheme, err)
	}
	return p
}

var allSchemes = []Scheme{PFC, CBFC, GFCBuffer, GFCTime, GFCConceptual, BFC}

func TestPredictErrors(t *testing.T) {
	deadRing := topology.Ring(3, topology.DefaultLinkParams())
	for i := 0; i < deadRing.NumLinks(); i++ {
		deadRing.Link(topology.LinkID(i)).Failed = true
	}
	for _, tc := range []struct {
		name string
		mut  func(*Input)
		want string
	}{
		{"nil topology", func(in *Input) { in.Topo = nil }, "topology is required"},
		{"zero duration", func(in *Input) { in.Duration = 0 }, "must be positive"},
		{"negative duration", func(in *Input) { in.Duration = -1 }, "must be positive"},
		{"zero buffer", func(in *Input) { in.Cfg.BufferSize = 0 }, "buffer size is required"},
		{"unknown scheme", func(in *Input) { in.Scheme = "token-bucket" }, "unknown scheme"},
		{"no live links", func(in *Input) { in.Topo = deadRing }, "no live links"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := ringInput(PFC)
			tc.mut(&in)
			p, err := Predict(in)
			if err == nil {
				t.Fatalf("Predict = %+v, want error", p)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestPredictPFC(t *testing.T) {
	B := 300 * units.KB

	// Factory-derived thresholds: the envelope is the whole buffer and the
	// τ budget (derived) covers the actual latency exactly.
	p := mustPredict(t, ringInput(PFC))
	if p.MaxOccupancy != B {
		t.Errorf("derived envelope = %v, want buffer %v", p.MaxOccupancy, B)
	}
	if !p.Lossless {
		t.Error("derived thresholds not lossless without jitter")
	}
	if p.DeadlockFree {
		t.Error("deadlock-free with unknown CBD verdict")
	}
	if p.Tau <= 0 {
		t.Errorf("Tau = %v, want positive", p.Tau)
	}

	// An explicit XOFF with generous headroom tightens the envelope below
	// the buffer and keeps the lossless claim.
	in := ringInput(PFC)
	in.Params.XOFF = 100 * units.KB
	p = mustPredict(t, in)
	if p.MaxOccupancy >= B || p.MaxOccupancy <= in.Params.XOFF {
		t.Errorf("XOFF envelope = %v, want in (%v, %v)", p.MaxOccupancy, in.Params.XOFF, B)
	}
	if !p.Lossless {
		t.Error("XOFF with C·τ headroom not lossless")
	}

	// XOFF at the buffer top leaves no reaction headroom: overshoot clamps
	// to the buffer and drops are possible.
	in.Params.XOFF = B
	if p = mustPredict(t, in); p.Lossless || p.MaxOccupancy != B {
		t.Errorf("XOFF=B: lossless=%v envelope=%v, want false/%v", p.Lossless, p.MaxOccupancy, B)
	}

	// Feedback jitter pushes the actual latency past the derived budget.
	in = ringInput(PFC)
	in.Cfg.FeedbackJitter = 50 * units.Microsecond
	if p = mustPredict(t, in); p.Lossless {
		t.Error("lossless despite unbudgeted feedback jitter")
	}
	// An explicit τ budget that absorbs the jitter restores the claim.
	in.Cfg.Tau = 1 * units.Millisecond
	if p = mustPredict(t, in); !p.Lossless {
		t.Error("not lossless despite τ override covering jitter")
	}

	// CBD verdicts: only a known-acyclic graph makes PFC deadlock-free.
	in = ringInput(PFC)
	in.CBDKnown, in.CBDCyclic = true, false
	if p = mustPredict(t, in); !p.DeadlockFree {
		t.Error("not deadlock-free on known-acyclic CBD")
	}
	if p.MinDelivered == 0 {
		t.Error("no progress floor on deadlock-free unfaulted run")
	}
	in.CBDCyclic = true
	if p = mustPredict(t, in); p.DeadlockFree || p.MinDelivered != 0 {
		t.Errorf("cyclic CBD: deadlock-free=%v floor=%v", p.DeadlockFree, p.MinDelivered)
	}
}

// TestPredictFaulted: with a fault injector attached every scheme falls back
// to the physical-buffer envelope, drops its lossless claim and its progress
// floor — forged or lost feedback voids any threshold-derived ceiling.
func TestPredictFaulted(t *testing.T) {
	B := 300 * units.KB
	for _, s := range allSchemes {
		in := ringInput(s)
		in.Faulted = true
		in.CBDKnown, in.CBDCyclic = true, false // acyclic claim must not survive faults
		p := mustPredict(t, in)
		if p.MaxOccupancy != B {
			t.Errorf("%v faulted envelope = %v, want buffer %v", s, p.MaxOccupancy, B)
		}
		if p.Lossless {
			t.Errorf("%v lossless under faults", s)
		}
		if p.MinDelivered != 0 {
			t.Errorf("%v progress floor %v under faults", s, p.MinDelivered)
		}
		switch s {
		case GFCBuffer, GFCTime:
			if !p.DeadlockFree {
				t.Errorf("%v not deadlock-free (stage/rate floor holds under faults)", s)
			}
		default:
			if p.DeadlockFree {
				t.Errorf("%v deadlock-free under faults", s)
			}
		}
	}
}

func TestPredictGFCBuffer(t *testing.T) {
	p := mustPredict(t, ringInput(GFCBuffer))
	if !p.DeadlockFree || !p.Lossless {
		t.Errorf("derived GFC-buffer: deadlock-free=%v lossless=%v", p.DeadlockFree, p.Lossless)
	}
	if p.FloorRate <= 0 {
		t.Errorf("FloorRate = %v, want positive (deepest stage rate)", p.FloorRate)
	}
	if p.MinDelivered == 0 {
		t.Error("no progress floor")
	}
	// Deadlock freedom needs no CBD verdict: cyclic changes nothing.
	in := ringInput(GFCBuffer)
	in.CBDKnown, in.CBDCyclic = true, true
	if p = mustPredict(t, in); !p.DeadlockFree {
		t.Error("not deadlock-free on cyclic CBD")
	}
	// A B1 at B_m leaves no slowdown room before the ceiling: unsafe.
	in = ringInput(GFCBuffer)
	in.Params.Bm = 280 * units.KB
	in.Params.B1 = 280 * units.KB
	if p = mustPredict(t, in); p.Lossless {
		t.Error("lossless despite B1 = B_m")
	}
	// B_m too close to the buffer: the 4-MTU stage headroom does not fit.
	in = ringInput(GFCBuffer)
	in.Params.Bm = 299 * units.KB
	if p = mustPredict(t, in); p.Lossless {
		t.Error("lossless despite B_m + 4·MTU > B")
	}
}

func TestPredictGFCTime(t *testing.T) {
	p := mustPredict(t, ringInput(GFCTime))
	if !p.DeadlockFree || !p.Lossless {
		t.Errorf("derived GFC-time: deadlock-free=%v lossless=%v", p.DeadlockFree, p.Lossless)
	}
	if p.FloorRate != 8*units.Kbps {
		t.Errorf("FloorRate = %v, want the 8 Kb/s rate-adjuster minimum", p.FloorRate)
	}
	// An oversized explicit B0 exceeds the safe bound.
	in := ringInput(GFCTime)
	in.Params.B0 = 299 * units.KB
	if p = mustPredict(t, in); p.Lossless {
		t.Error("lossless despite B0 above the time-based bound")
	}
}

func TestPredictGFCConceptual(t *testing.T) {
	p := mustPredict(t, ringInput(GFCConceptual))
	if !p.DeadlockFree || !p.Lossless {
		t.Errorf("derived conceptual: deadlock-free=%v lossless=%v", p.DeadlockFree, p.Lossless)
	}
	if p.MaxOccupancy != 300*units.KB {
		t.Errorf("envelope = %v, want clamp to buffer (B_m defaults to B)", p.MaxOccupancy)
	}
	// B0 above B_m − 4Cτ: the zero-rate point is reachable, so deadlock
	// freedom falls back to the CBD verdict (here: unknown).
	in := ringInput(GFCConceptual)
	in.Params.B0 = 299 * units.KB
	p = mustPredict(t, in)
	if p.Lossless || p.DeadlockFree {
		t.Errorf("oversized B0: lossless=%v deadlock-free=%v", p.Lossless, p.DeadlockFree)
	}
	in.CBDKnown = true
	if p = mustPredict(t, in); !p.DeadlockFree {
		t.Error("oversized B0 on acyclic CBD not deadlock-free")
	}
	// A tight B_m with headroom below it keeps both claims and bounds the
	// envelope by B_m plus one feedback latency of arrivals.
	in = ringInput(GFCConceptual)
	in.Params.Bm = 200 * units.KB
	p = mustPredict(t, in)
	if !p.Lossless || !p.DeadlockFree {
		t.Errorf("tight B_m: lossless=%v deadlock-free=%v", p.Lossless, p.DeadlockFree)
	}
	if p.MaxOccupancy <= in.Params.Bm || p.MaxOccupancy >= 300*units.KB {
		t.Errorf("tight B_m envelope = %v, want in (%v, 300 KB)", p.MaxOccupancy, in.Params.Bm)
	}
}

func TestPredictCBFCAndBFC(t *testing.T) {
	B := 300 * units.KB
	for _, s := range []Scheme{CBFC, BFC} {
		p := mustPredict(t, ringInput(s))
		if p.MaxOccupancy != B {
			t.Errorf("%v envelope = %v, want buffer", s, p.MaxOccupancy)
		}
		if !p.Lossless {
			t.Errorf("%v not lossless unfaulted", s)
		}
		if p.DeadlockFree || p.FloorRate != 0 {
			t.Errorf("%v: deadlock-free=%v floor-rate=%v on unknown CBD", s, p.DeadlockFree, p.FloorRate)
		}
		in := ringInput(s)
		in.CBDKnown = true
		if p = mustPredict(t, in); !p.DeadlockFree {
			t.Errorf("%v not deadlock-free on acyclic CBD", s)
		}
	}
	// BFC, like PFC, additionally needs the τ budget to cover jitter.
	in := ringInput(BFC)
	in.Cfg.FeedbackJitter = 50 * units.Microsecond
	if p := mustPredict(t, in); p.Lossless {
		t.Error("BFC lossless despite unbudgeted jitter")
	}
}

func TestPredictConservation(t *testing.T) {
	in := ringInput(GFCBuffer)
	p := mustPredict(t, in)
	// 3 hosts × (10 Gb/s × 10 ms + one MTU).
	perHost := units.BytesIn(10*units.Gbps, in.Duration) + 1500*units.Byte
	if want := 3 * perHost; p.MaxDelivered != want {
		t.Errorf("MaxDelivered = %v, want %v", p.MaxDelivered, want)
	}
	// Failing one host's attachment link removes its share.
	in.Topo = topology.Ring(3, topology.DefaultLinkParams())
	h1 := in.Topo.MustLookup("H1")
	for _, at := range in.Topo.Ports(h1) {
		at.Link.Failed = true
	}
	if p = mustPredict(t, in); p.MaxDelivered != 2*perHost {
		t.Errorf("MaxDelivered with failed host link = %v, want %v", p.MaxDelivered, 2*perHost)
	}
}

func TestPredictWarmupFloor(t *testing.T) {
	in := ringInput(GFCBuffer)
	in.Duration = 500 * units.Microsecond // below the 1 ms warmup
	if p := mustPredict(t, in); p.MinDelivered != 0 {
		t.Errorf("progress floor %v asserted inside warmup", p.MinDelivered)
	}
}

func TestBoundsMapping(t *testing.T) {
	p := &Prediction{
		MaxOccupancy: 1, MaxDelivered: 2, MinDelivered: 3,
		Lossless: true, DeadlockFree: true,
	}
	b := p.Bounds()
	if b.MaxOccupancy != 1 || b.MaxDelivered != 2 || b.MinDelivered != 3 ||
		!b.Lossless || !b.DeadlockFree {
		t.Errorf("Bounds() = %+v", b)
	}
}

// TestPredictDeterministic: Predict is pure — identical inputs produce
// structurally identical predictions, across schemes and repeated calls.
func TestPredictDeterministic(t *testing.T) {
	for _, s := range allSchemes {
		a := mustPredict(t, ringInput(s))
		for i := 0; i < 3; i++ {
			if b := mustPredict(t, ringInput(s)); !reflect.DeepEqual(a, b) {
				t.Fatalf("%v call %d: %+v != %+v", s, i, b, a)
			}
		}
	}
}

// TestPredictMonotoneBuffer: growing the buffer (factory-derived thresholds)
// never shrinks the occupancy envelope and never weakens a lossless or
// deadlock-free claim, on randomly sampled buffer ladders.
func TestPredictMonotoneBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	topos := map[string]*topology.Topology{
		"ring":     topology.Ring(3, topology.DefaultLinkParams()),
		"fat-tree": topology.FatTree(4, topology.DefaultLinkParams()),
	}
	for name, topo := range topos {
		for _, s := range allSchemes {
			buf := units.Size(20*units.KB + units.Size(rng.Intn(int(10*units.KB))))
			prev := mustPredict(t, Input{
				Topo: topo, Scheme: s, Duration: 10 * units.Millisecond,
				Cfg: netsim.Config{BufferSize: buf},
			})
			for step := 0; step < 8; step++ {
				buf += units.Size(1 + rng.Intn(int(100*units.KB)))
				p := mustPredict(t, Input{
					Topo: topo, Scheme: s, Duration: 10 * units.Millisecond,
					Cfg: netsim.Config{BufferSize: buf},
				})
				if p.MaxOccupancy < prev.MaxOccupancy {
					t.Errorf("%s/%v: envelope shrank %v → %v as buffer grew to %v",
						name, s, prev.MaxOccupancy, p.MaxOccupancy, buf)
				}
				if prev.Lossless && !p.Lossless {
					t.Errorf("%s/%v: lossless claim lost as buffer grew to %v", name, s, buf)
				}
				if prev.DeadlockFree && !p.DeadlockFree {
					t.Errorf("%s/%v: deadlock-free claim lost as buffer grew to %v", name, s, buf)
				}
				if p.MaxDelivered != prev.MaxDelivered {
					t.Errorf("%s/%v: throughput bound moved with buffer size", name, s)
				}
				prev = p
			}
		}
	}
}

// TestPredictMonotoneRate: raising the line rate never decreases the
// aggregate throughput bound.
func TestPredictMonotoneRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range allSchemes {
		cap := units.Rate(1*units.Gbps) + units.Rate(rng.Intn(int(1*units.Gbps)))
		mk := func(c units.Rate) *Prediction {
			return mustPredict(t, Input{
				Topo:   topology.Ring(3, topology.LinkParams{Capacity: c, Delay: 1 * units.Microsecond}),
				Scheme: s, Duration: 10 * units.Millisecond,
				Cfg: netsim.Config{BufferSize: 300 * units.KB},
			})
		}
		prev := mk(cap)
		for step := 0; step < 8; step++ {
			cap += units.Rate(1 + rng.Intn(int(5*units.Gbps)))
			p := mk(cap)
			if p.MaxDelivered < prev.MaxDelivered {
				t.Errorf("%v: throughput bound shrank %v → %v as line rate grew to %v",
					s, prev.MaxDelivered, p.MaxDelivered, cap)
			}
			prev = p
		}
	}
}
