package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/gfcsim/gfc/internal/units"
)

func TestBinCounter(t *testing.T) {
	b := NewBinCounter(100 * units.Microsecond)
	b.Add(0, 1000)
	b.Add(50*units.Microsecond, 250)
	b.Add(150*units.Microsecond, 500)
	bins := b.Bins()
	if len(bins) != 2 || bins[0] != 1250 || bins[1] != 500 {
		t.Fatalf("bins = %v", bins)
	}
	// Bin 0: 1250B in 100µs = 100 Mb/s.
	if got := b.Rate(0); got != 100*units.Mbps {
		t.Errorf("Rate(0) = %v", got)
	}
	if got := b.Rate(5); got != 0 {
		t.Errorf("Rate out of range = %v", got)
	}
	if b.Total() != 1750 {
		t.Errorf("Total = %v", b.Total())
	}
	if got := len(b.Rates()); got != 2 {
		t.Errorf("Rates len = %d", got)
	}
}

func TestBinCounterSparse(t *testing.T) {
	b := NewBinCounter(units.Millisecond)
	b.Add(10*units.Millisecond, 1)
	if len(b.Bins()) != 11 {
		t.Fatalf("bins = %d, want 11", len(b.Bins()))
	}
	for i := 0; i < 10; i++ {
		if b.Bins()[i] != 0 {
			t.Fatal("early bins not zero")
		}
	}
}

// Regression: negative timestamps used to index bins[-1] and panic; they
// must clamp into the first bin.
func TestBinCounterNegativeTime(t *testing.T) {
	b := NewBinCounter(units.Millisecond)
	b.Add(-5*units.Millisecond, 100)
	b.Add(-1, 50)
	b.Add(0, 25)
	if got := b.Bins()[0]; got != 175 {
		t.Fatalf("bin 0 = %v, want 175", got)
	}
	if b.Saturated() {
		t.Error("negative clamp must not mark saturation")
	}
}

// Regression: a single far-future timestamp used to grow the bin slice
// unboundedly; it must clamp into the final bin and flag saturation.
func TestBinCounterFarFutureCapped(t *testing.T) {
	b := NewBinCounter(units.Millisecond)
	b.MaxBins = 100
	b.Add(units.Time(1e18), 7)
	if got := len(b.Bins()); got != 100 {
		t.Fatalf("bins = %d, want 100", got)
	}
	if got := b.Bins()[99]; got != 7 {
		t.Fatalf("final bin = %v, want 7", got)
	}
	if !b.Saturated() {
		t.Error("clamped sample did not mark saturation")
	}
	// The default cap protects zero-value configs too.
	d := NewBinCounter(units.Nanosecond)
	d.Add(units.Time(1e18), 1)
	if got := len(d.Bins()); got != DefaultMaxBins {
		t.Fatalf("default-capped bins = %d, want %d", got, DefaultMaxBins)
	}
	if !d.Saturated() {
		t.Error("default cap did not mark saturation")
	}
}

func TestBinCounterBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero width did not panic")
		}
	}()
	NewBinCounter(0)
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.Max() != 0 {
		t.Fatal("empty series not zero")
	}
	s.Append(1, 5)
	s.Append(2, 9)
	s.Append(3, 7)
	if s.Len() != 3 || s.Last() != 7 || s.Max() != 9 {
		t.Fatalf("series stats wrong: %+v", s)
	}
	if got := s.MeanAfter(2); got != 8 {
		t.Errorf("MeanAfter(2) = %v, want 8", got)
	}
	if got := s.MeanAfter(100); got != 0 {
		t.Errorf("MeanAfter(past end) = %v", got)
	}
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 1000; i++ {
		s.Append(units.Time(i), float64(i))
	}
	d := s.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled to %d", d.Len())
	}
	if d.T[0] != 0 || d.T[9] != 999 {
		t.Fatal("endpoints not preserved")
	}
	// No-op when already small.
	small := s.Downsample(2000)
	if small.Len() != 1000 {
		t.Fatal("small downsample changed length")
	}
}

// Regression: Downsample(1) used to divide by zero (step = (Len−1)/0 →
// +Inf) and panic indexing with the resulting huge j. Boundary-check every
// max around the series length.
func TestSeriesDownsampleBoundaries(t *testing.T) {
	var s Series
	const n = 100
	for i := 0; i < n; i++ {
		s.Append(units.Time(i), float64(i))
	}
	cases := []struct {
		max, wantLen int
	}{
		{0, n},     // non-positive: unchanged copy
		{1, 1},     // used to panic
		{2, 2},     // endpoints
		{n, n},     // exactly fits
		{n + 1, n}, // already within budget
	}
	for _, c := range cases {
		d := s.Downsample(c.max)
		if d.Len() != c.wantLen {
			t.Errorf("Downsample(%d).Len() = %d, want %d", c.max, d.Len(), c.wantLen)
		}
	}
	if d := s.Downsample(1); d.T[0] != n-1 || d.V[0] != n-1 {
		t.Errorf("Downsample(1) = (%v, %v), want the final point", d.T[0], d.V[0])
	}
	if d := s.Downsample(2); d.T[0] != 0 || d.T[1] != n-1 {
		t.Errorf("Downsample(2) endpoints = %v, %v", d.T[0], d.T[1])
	}
	var empty Series
	if d := empty.Downsample(1); d.Len() != 0 {
		t.Errorf("empty Downsample(1).Len() = %d", d.Len())
	}
}

func TestCDFQuantiles(t *testing.T) {
	var c CDF
	if c.Quantile(0.5) != 0 || c.Mean() != 0 {
		t.Fatal("empty CDF not zero")
	}
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Q0 = %v", got)
	}
	if got := c.Quantile(1); got != 100 {
		t.Errorf("Q1 = %v", got)
	}
	if got := c.Quantile(0.5); math.Abs(got-50.5) > 0.01 {
		t.Errorf("median = %v, want 50.5", got)
	}
	if got := c.Mean(); got != 50.5 {
		t.Errorf("mean = %v", got)
	}
	if got := c.Max(); got != 100 {
		t.Errorf("max = %v", got)
	}
}

func TestCDFAt(t *testing.T) {
	var c CDF
	for _, x := range []float64{1, 2, 3, 4} {
		c.Add(x)
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v, want 1", got)
	}
}

func TestCDFStddev(t *testing.T) {
	var c CDF
	c.Add(5)
	if c.Stddev() != 0 {
		t.Fatal("stddev of single sample not 0")
	}
	c.Add(5)
	if c.Stddev() != 0 {
		t.Fatal("stddev of identical samples not 0")
	}
	var c2 CDF
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		c2.Add(x)
	}
	if got := c2.Stddev(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("stddev = %v, want ≈2.138", got)
	}
}

func TestSlowdown(t *testing.T) {
	if got := Slowdown(200, 100); got != 2 {
		t.Errorf("Slowdown = %v", got)
	}
	if got := Slowdown(100, 0); !math.IsInf(got, 1) {
		t.Errorf("Slowdown with zero ideal = %v, want +Inf", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Header: []string{"Scale", "PFC", "GFC"}}
	tb.AddRow("k=4", "32", "0")
	tb.AddRow("k=16", "2", "0")
	out := tb.String()
	if !strings.Contains(out, "Scale") || !strings.Contains(out, "k=16") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
}

// Property: quantiles are monotone and bounded by min/max.
func TestCDFQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c CDF
		for i := 0; i < 50; i++ {
			c.Add(rng.NormFloat64() * 100)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return c.Quantile(0) <= c.Mean() && c.Mean() <= c.Quantile(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: At and Quantile are approximate inverses.
func TestCDFInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c CDF
		for i := 0; i < 100; i++ {
			c.Add(rng.Float64() * 1000)
		}
		for _, q := range []float64{0.1, 0.5, 0.9} {
			x := c.Quantile(q)
			p := c.At(x)
			if math.Abs(p-q) > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: BinCounter.Total equals the sum of added sizes regardless of
// arrival order.
func TestBinCounterTotal(t *testing.T) {
	f := func(raw []uint16) bool {
		b := NewBinCounter(units.Millisecond)
		var want units.Size
		for i, v := range raw {
			s := units.Size(v)
			b.Add(units.Time(i%50)*units.Millisecond, s)
			want += s
		}
		return b.Total() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
