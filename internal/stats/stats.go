// Package stats provides the measurement primitives the evaluation uses:
// time-binned throughput counters (the paper counts sent bytes every 100 µs,
// §6.2.3), queue/rate time series, empirical CDFs (Figure 19) and the
// slowdown metric of Figure 17.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/gfcsim/gfc/internal/units"
)

// BinCounter accumulates byte counts into fixed-width time bins. Samples at
// negative times clamp into the first bin, and samples at or beyond
// MaxBins·Width clamp into the last — the bin slice grows with the largest
// timestamp seen, so without the cap a single far-future sample would
// allocate unboundedly.
type BinCounter struct {
	Width units.Time
	// MaxBins bounds sparse growth: zero means DefaultMaxBins, negative
	// means unbounded (caller guarantees dense timestamps).
	MaxBins   int
	bins      []units.Size
	saturated bool
}

// DefaultMaxBins caps a counter at 2^20 bins (8 MiB of counts) unless the
// caller chooses otherwise — far beyond any simulated duration at the 100 µs
// and 500 µs widths the experiments use.
const DefaultMaxBins = 1 << 20

// NewBinCounter returns a counter with the given bin width.
func NewBinCounter(width units.Time) *BinCounter {
	if width <= 0 {
		panic("stats: non-positive bin width")
	}
	return &BinCounter{Width: width}
}

// Add records s bytes at time t.
func (b *BinCounter) Add(t units.Time, s units.Size) {
	if t < 0 {
		t = 0 // pre-start samples land in the first bin
	}
	idx := int(t / b.Width)
	if max := b.maxBins(); max > 0 && idx >= max {
		idx = max - 1
		b.saturated = true
	}
	for len(b.bins) <= idx {
		b.bins = append(b.bins, 0)
	}
	b.bins[idx] += s
}

func (b *BinCounter) maxBins() int {
	switch {
	case b.MaxBins > 0:
		return b.MaxBins
	case b.MaxBins < 0:
		return 0
	default:
		return DefaultMaxBins
	}
}

// Saturated reports whether any sample was clamped into the final bin
// because it fell at or beyond the MaxBins horizon.
func (b *BinCounter) Saturated() bool { return b.saturated }

// Bins returns the per-bin byte counts.
func (b *BinCounter) Bins() []units.Size { return b.bins }

// Rate reports the average rate of bin i.
func (b *BinCounter) Rate(i int) units.Rate {
	if i < 0 || i >= len(b.bins) {
		return 0
	}
	return units.RateOf(b.bins[i], b.Width)
}

// Rates returns the average rate of every bin.
func (b *BinCounter) Rates() []units.Rate {
	out := make([]units.Rate, len(b.bins))
	for i := range b.bins {
		out[i] = b.Rate(i)
	}
	return out
}

// Total reports the total bytes recorded.
func (b *BinCounter) Total() units.Size {
	var t units.Size
	for _, v := range b.bins {
		t += v
	}
	return t
}

// Series is a time-stamped scalar series (queue lengths, rates).
type Series struct {
	T []units.Time
	V []float64
}

// Append adds a point.
func (s *Series) Append(t units.Time, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.T) }

// Last returns the final value, or 0 when empty.
func (s *Series) Last() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// Max returns the maximum value, or 0 when empty.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.V {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// MeanAfter returns the mean of values at or after t; 0 when none.
func (s *Series) MeanAfter(t units.Time) float64 {
	var sum float64
	var n int
	for i, ts := range s.T {
		if ts >= t {
			sum += s.V[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Downsample returns a copy keeping at most max evenly spaced points, for
// plotting. Non-positive max (or a series already within budget) copies the
// series unchanged; max == 1 keeps the final point — the series' most recent
// state, the one useful single-sample summary.
func (s *Series) Downsample(max int) *Series {
	if max <= 0 || s.Len() <= max {
		out := &Series{T: append([]units.Time(nil), s.T...), V: append([]float64(nil), s.V...)}
		return out
	}
	if max == 1 {
		last := s.Len() - 1
		return &Series{T: []units.Time{s.T[last]}, V: []float64{s.V[last]}}
	}
	out := &Series{}
	step := float64(s.Len()-1) / float64(max-1)
	for i := 0; i < max; i++ {
		j := int(math.Round(float64(i) * step))
		out.Append(s.T[j], s.V[j])
	}
	return out
}

// CDF is an empirical cumulative distribution.
type CDF struct {
	xs     []float64
	sorted bool
}

// Add records one sample.
func (c *CDF) Add(x float64) {
	c.xs = append(c.xs, x)
	c.sorted = false
}

// Len reports the number of samples.
func (c *CDF) Len() int { return len(c.xs) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.xs)
		c.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1); 0 when empty.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	c.sort()
	if q <= 0 {
		return c.xs[0]
	}
	if q >= 1 {
		return c.xs[len(c.xs)-1]
	}
	idx := q * float64(len(c.xs)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return c.xs[lo]
	}
	frac := idx - float64(lo)
	return c.xs[lo]*(1-frac) + c.xs[hi]*frac
}

// Mean returns the sample mean; 0 when empty.
func (c *CDF) Mean() float64 {
	if len(c.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range c.xs {
		sum += x
	}
	return sum / float64(len(c.xs))
}

// Max returns the largest sample; 0 when empty.
func (c *CDF) Max() float64 { return c.Quantile(1) }

// Stddev returns the sample standard deviation; 0 with fewer than 2 samples.
func (c *CDF) Stddev() float64 {
	if len(c.xs) < 2 {
		return 0
	}
	m := c.Mean()
	var ss float64
	for _, x := range c.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(c.xs)-1))
}

// At reports the empirical P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	c.sort()
	i := sort.SearchFloat64s(c.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.xs))
}

// Slowdown computes the Figure 17 metric: actual flow completion time
// divided by the unloaded-network completion time for the same flow.
func Slowdown(fct, ideal units.Time) float64 {
	if ideal <= 0 {
		return math.Inf(1)
	}
	return float64(fct) / float64(ideal)
}

// Table renders rows of labelled values as an aligned text table — the form
// the benchmark harness prints its reproduced tables in.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
