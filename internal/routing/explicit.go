package routing

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/topology"
)

// ExplicitPath builds a forwarding path through the named nodes, in order.
// It is how experiments pin the paper's hand-configured routes — e.g. the
// clockwise two-switch-hop flows of the Figure 1 deadlock ring, which
// shortest-path routing would never choose. Consecutive nodes must be joined
// by a live link; the final name is the destination and is not included as a
// transmitting hop.
func ExplicitPath(t *topology.Topology, names ...string) ([]Hop, error) {
	if len(names) < 2 {
		return nil, fmt.Errorf("routing: explicit path needs at least 2 nodes")
	}
	path := make([]Hop, 0, len(names)-1)
	for i := 0; i+1 < len(names); i++ {
		n, ok := t.Lookup(names[i])
		if !ok {
			return nil, fmt.Errorf("routing: unknown node %q", names[i])
		}
		next, ok := t.Lookup(names[i+1])
		if !ok {
			return nil, fmt.Errorf("routing: unknown node %q", names[i+1])
		}
		l := t.LinkBetween(n, next)
		if l == nil {
			return nil, fmt.Errorf("routing: no live link %s - %s", names[i], names[i+1])
		}
		path = append(path, Hop{Node: n, Port: l.PortOn(n), Link: l})
	}
	return path, nil
}

// MustExplicitPath is ExplicitPath that panics on error; for tests and
// fixed experiment setups.
func MustExplicitPath(t *topology.Topology, names ...string) []Hop {
	p, err := ExplicitPath(t, names...)
	if err != nil {
		panic(err)
	}
	return p
}

// RingClockwisePaths returns the deadlock traffic pattern of Figure 1 on an
// n-switch ring built by topology.Ring: host i sends to host i+2 (mod n),
// routed clockwise through two inter-switch links. Every inter-switch
// channel appears in exactly two paths and the induced buffer dependencies
// form a cycle.
func RingClockwisePaths(t *topology.Topology, n int) [][]Hop {
	return RingHostsClockwisePaths(t, n, 1)
}

// RingHostsClockwisePaths is RingClockwisePaths for rings built by
// topology.RingHosts with h hosts per switch: every host on switch i sends
// to its counterpart on switch i+2 (mod n), clockwise.
func RingHostsClockwisePaths(t *topology.Topology, n, h int) [][]Hop {
	paths := make([][]Hop, 0, n*h)
	for i := 0; i < n; i++ {
		for j := 0; j < h; j++ {
			suffix := ""
			if j > 0 {
				suffix = string(rune('a' + j))
			}
			src := fmt.Sprintf("H%d%s", i+1, suffix)
			s1 := fmt.Sprintf("S%d", i+1)
			s2 := fmt.Sprintf("S%d", (i+1)%n+1)
			s3 := fmt.Sprintf("S%d", (i+2)%n+1)
			dst := fmt.Sprintf("H%d%s", (i+2)%n+1, suffix)
			paths = append(paths, MustExplicitPath(t, src, s1, s2, s3, dst))
		}
	}
	return paths
}
