package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

func ring3() *topology.Topology {
	return topology.Ring(3, topology.DefaultLinkParams())
}

func TestRingDistances(t *testing.T) {
	topo := ring3()
	tab := NewSPF(topo)
	h1 := topo.MustLookup("H1")
	h2 := topo.MustLookup("H2")
	// H1 -> S1 -> S2 -> H2 crosses 3 links.
	d, ok := tab.Distance(h1, h2)
	if !ok || d != 3 {
		t.Fatalf("Distance(H1,H2) = %d,%v; want 3", d, ok)
	}
}

func TestRingPath(t *testing.T) {
	topo := ring3()
	tab := NewSPF(topo)
	h1 := topo.MustLookup("H1")
	h2 := topo.MustLookup("H2")
	path, err := tab.Path(h1, h2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3 hops", len(path))
	}
	if path[0].Node != h1 {
		t.Error("path does not start at src")
	}
	want := []string{"H1", "S1", "S2"}
	for i, h := range path {
		if topo.Node(h.Node).Name != want[i] {
			t.Errorf("hop %d at %s, want %s", i, topo.Node(h.Node).Name, want[i])
		}
	}
}

func TestPathErrors(t *testing.T) {
	topo := ring3()
	tab := NewSPF(topo)
	h1 := topo.MustLookup("H1")
	if _, err := tab.Path(h1, h1, 0); err == nil {
		t.Error("src==dst did not error")
	}
}

func TestUnreachable(t *testing.T) {
	topo := ring3()
	// Cut both ring links around S2 and the host link... hosts never fail,
	// so cut S1-S2 and S2-S3 to isolate H2's switch.
	topo.FailLinkBetween("S1", "S2")
	topo.FailLinkBetween("S2", "S3")
	tab := NewSPF(topo)
	h1 := topo.MustLookup("H1")
	h2 := topo.MustLookup("H2")
	if tab.Reachable(h1, h2) {
		t.Fatal("H2 should be unreachable")
	}
	if _, err := tab.Path(h1, h2, 0); err == nil {
		t.Fatal("Path to unreachable dst did not error")
	}
	// H1 -> H3 still works the long way round? S1-S3 link remains.
	h3 := topo.MustLookup("H3")
	if !tab.Reachable(h1, h3) {
		t.Fatal("H3 should remain reachable via S1-S3")
	}
}

func TestHostsDoNotTransit(t *testing.T) {
	// Linear topology: H1-S1-S2-H2, and a "shortcut" host X connected to
	// both S1 and S2 must not carry transit traffic.
	topo := topology.New("transit")
	s1 := topo.AddSwitch("S1")
	s2 := topo.AddSwitch("S2")
	s3 := topo.AddSwitch("S3")
	h1 := topo.AddHost("H1")
	h2 := topo.AddHost("H2")
	x := topo.AddHost("X")
	p := topology.DefaultLinkParams()
	topo.AddLink(h1, s1, p.Capacity, p.Delay)
	topo.AddLink(h2, s2, p.Capacity, p.Delay)
	// Long switch path S1 - S3 - S2.
	topo.AddLink(s1, s3, p.Capacity, p.Delay)
	topo.AddLink(s3, s2, p.Capacity, p.Delay)
	// Tempting shortcut through host X.
	topo.AddLink(x, s1, p.Capacity, p.Delay)
	topo.AddLink(x, s2, p.Capacity, p.Delay)

	tab := NewSPF(topo)
	path, err := tab.Path(h1, h2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range path {
		if h.Node == x {
			t.Fatal("path transits a host")
		}
	}
	if len(path) != 4 { // H1,S1,S3,S2
		t.Fatalf("path length %d, want 4", len(path))
	}
}

func TestECMPDeterminism(t *testing.T) {
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	tab := NewSPF(topo)
	h0 := topo.MustLookup("H0")
	h8 := topo.MustLookup("H8")
	p1, err1 := tab.Path(h0, h8, 42)
	p2, err2 := tab.Path(h0, h8, 42)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(p1) != len(p2) {
		t.Fatal("same key gave different paths")
	}
	for i := range p1 {
		if p1[i].Node != p2[i].Node || p1[i].Port != p2[i].Port {
			t.Fatal("same key gave different paths")
		}
	}
}

func TestECMPSpreads(t *testing.T) {
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	tab := NewSPF(topo)
	h0 := topo.MustLookup("H0")
	h8 := topo.MustLookup("H8")
	// Different keys should eventually use more than one core.
	cores := map[string]bool{}
	for key := uint64(0); key < 64; key++ {
		path, err := tab.Path(h0, h8, key)
		if err != nil {
			t.Fatal(err)
		}
		for _, h := range path {
			if topo.Node(h.Node).Layer == "core" {
				cores[topo.Node(h.Node).Name] = true
			}
		}
	}
	if len(cores) < 2 {
		t.Errorf("ECMP used only %d cores over 64 keys", len(cores))
	}
}

func TestFatTreePathLengths(t *testing.T) {
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	tab := NewSPF(topo)
	h0 := topo.MustLookup("H0") // pod 0, edge E1
	h1 := topo.MustLookup("H1") // same edge
	h2 := topo.MustLookup("H2") // same pod, different edge
	h8 := topo.MustLookup("H8") // different pod

	cases := []struct {
		src, dst topology.NodeID
		hops     int // transmitting nodes: host + switches
	}{
		{h0, h1, 2}, // H0,E1
		{h0, h2, 4}, // H0,E1,A?,E2
		{h0, h8, 6}, // H0,E1,A,C,A,E
	}
	for _, c := range cases {
		path, err := tab.Path(c.src, c.dst, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != c.hops {
			t.Errorf("path %s->%s has %d hops, want %d",
				topo.Node(c.src).Name, topo.Node(c.dst).Name, len(path), c.hops)
		}
	}
}

func TestNewSPFToward(t *testing.T) {
	topo := ring3()
	h1 := topo.MustLookup("H1")
	h2 := topo.MustLookup("H2")
	h3 := topo.MustLookup("H3")
	tab := NewSPFToward(topo, []topology.NodeID{h2})
	if !tab.Reachable(h1, h2) {
		t.Fatal("routed destination unreachable")
	}
	if tab.Reachable(h1, h3) {
		t.Fatal("unrouted destination reported reachable")
	}
}

func TestPathLatency(t *testing.T) {
	topo := ring3()
	tab := NewSPF(topo)
	path, err := tab.Path(topo.MustLookup("H1"), topo.MustLookup("H2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// 3 hops at 10G with 1us delay: 3*(1.2us + 1us) = 6.6us for 1500B.
	got := PathLatency(path, 1500*units.Byte)
	want := 3 * (units.TransmissionTime(1500, 10*units.Gbps) + units.Microsecond)
	if got != want {
		t.Errorf("PathLatency = %v, want %v", got, want)
	}
}

// Property: every SPF path in a randomly failed fat-tree is loop-free, has
// length equal to the BFS distance, and uses only live links.
func TestRandomFailurePathsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := topology.FatTree(4, topology.DefaultLinkParams())
		topo.FailRandomLinks(rng, 0.1)
		tab := NewSPF(topo)
		hosts := topo.Hosts()
		for trial := 0; trial < 20; trial++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			if src == dst {
				continue
			}
			if !tab.Reachable(src, dst) {
				continue
			}
			key := rng.Uint64()
			path, err := tab.Path(src, dst, key)
			if err != nil {
				return false
			}
			d, _ := tab.Distance(src, dst)
			if len(path) != d {
				return false
			}
			seen := map[topology.NodeID]bool{}
			for _, h := range path {
				if seen[h.Node] || h.Link.Failed {
					return false
				}
				seen[h.Node] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
