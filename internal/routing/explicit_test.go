package routing

import (
	"testing"

	"github.com/gfcsim/gfc/internal/topology"
)

func TestExplicitPath(t *testing.T) {
	topo := topology.Ring(3, topology.DefaultLinkParams())
	p, err := ExplicitPath(topo, "H1", "S1", "S2", "H2")
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Fatalf("hops = %d, want 3", len(p))
	}
	want := []string{"H1", "S1", "S2"}
	for i, h := range p {
		if topo.Node(h.Node).Name != want[i] {
			t.Errorf("hop %d at %s, want %s", i, topo.Node(h.Node).Name, want[i])
		}
		// Port must be the attachment toward the next node.
		if h.Link.PortOn(h.Node) != h.Port {
			t.Errorf("hop %d port mismatch", i)
		}
	}
	// Final hop's link reaches the destination.
	last := p[len(p)-1]
	if topo.Node(last.Link.Other(last.Node)).Name != "H2" {
		t.Error("path does not end at H2")
	}
}

func TestExplicitPathErrors(t *testing.T) {
	topo := topology.Ring(3, topology.DefaultLinkParams())
	if _, err := ExplicitPath(topo, "H1"); err == nil {
		t.Error("single-node path accepted")
	}
	if _, err := ExplicitPath(topo, "nope", "S1"); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := ExplicitPath(topo, "S1", "nope"); err == nil {
		t.Error("unknown hop accepted")
	}
	if _, err := ExplicitPath(topo, "H1", "H2"); err == nil {
		t.Error("unlinked pair accepted")
	}
	// Failed links are not usable.
	topo.FailLinkBetween("S1", "S2")
	if _, err := ExplicitPath(topo, "S1", "S2"); err == nil {
		t.Error("failed link accepted")
	}
}

func TestMustExplicitPathPanics(t *testing.T) {
	topo := topology.Ring(3, topology.DefaultLinkParams())
	defer func() {
		if recover() == nil {
			t.Error("MustExplicitPath did not panic")
		}
	}()
	MustExplicitPath(topo, "H1", "H2")
}

func TestRingClockwisePathsShape(t *testing.T) {
	topo := topology.Ring(4, topology.DefaultLinkParams())
	paths := RingClockwisePaths(topo, 4)
	if len(paths) != 4 {
		t.Fatalf("paths = %d", len(paths))
	}
	for i, p := range paths {
		// H_i, S_i, S_{i+1}, S_{i+2} → 4 transmitting hops.
		if len(p) != 4 {
			t.Fatalf("path %d has %d hops", i, len(p))
		}
		if topo.Node(p[0].Node).Kind != topology.Host {
			t.Errorf("path %d does not start at a host", i)
		}
		// Two inter-switch links per path (the CBD requirement).
		interSwitch := 0
		for _, h := range p {
			a := topo.Node(h.Node).Kind
			b := topo.Node(h.Link.Other(h.Node)).Kind
			if a == topology.Switch && b == topology.Switch {
				interSwitch++
			}
		}
		if interSwitch != 2 {
			t.Errorf("path %d crosses %d inter-switch links, want 2", i, interSwitch)
		}
	}
}

func TestRingHostsClockwisePathsMultiHost(t *testing.T) {
	topo := topology.RingHosts(3, 3, topology.DefaultLinkParams())
	paths := RingHostsClockwisePaths(topo, 3, 3)
	if len(paths) != 9 {
		t.Fatalf("paths = %d, want 9", len(paths))
	}
	// Sibling hosts pair with their counterparts: srcs and dsts all
	// distinct.
	srcs := map[topology.NodeID]bool{}
	dsts := map[topology.NodeID]bool{}
	for _, p := range paths {
		src := p[0].Node
		dst := p[len(p)-1].Link.Other(p[len(p)-1].Node)
		if srcs[src] || dsts[dst] {
			t.Fatal("duplicate src or dst in the pattern")
		}
		srcs[src] = true
		dsts[dst] = true
	}
}
