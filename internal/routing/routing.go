// Package routing computes shortest-path-first routes over a topology, the
// routing discipline used throughout the paper's evaluation (§6.2.2). Ties
// between equal-cost paths are broken by a deterministic per-flow hash, so
// a given (source, destination) pair always follows the same path — which is
// what lets the Table 1 sweep pre-filter CBD-prone cases.
package routing

import (
	"fmt"
	"sort"

	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// Table holds per-destination shortest-path state for one topology. Build it
// once per (topology, failure set); it is read-only afterwards and safe for
// concurrent use.
type Table struct {
	topo *topology.Topology
	// dist[dst][n] is the hop distance from n to dst over live links, or
	// unreachable.
	dist map[topology.NodeID][]int32
}

const unreachable int32 = 1 << 30

// NewSPF computes shortest-path routing toward every host in t.
func NewSPF(t *topology.Topology) *Table {
	tab := &Table{topo: t, dist: make(map[topology.NodeID][]int32)}
	for _, h := range t.Hosts() {
		tab.dist[h] = bfsFrom(t, h)
	}
	return tab
}

// NewSPFToward computes routing toward only the given destinations; cheaper
// than NewSPF when few hosts receive traffic.
func NewSPFToward(t *topology.Topology, dsts []topology.NodeID) *Table {
	tab := &Table{topo: t, dist: make(map[topology.NodeID][]int32)}
	for _, d := range dsts {
		if _, done := tab.dist[d]; !done {
			tab.dist[d] = bfsFrom(t, d)
		}
	}
	return tab
}

func bfsFrom(t *topology.Topology, src topology.NodeID) []int32 {
	dist := make([]int32, t.NumNodes())
	for i := range dist {
		dist[i] = unreachable
	}
	dist[src] = 0
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, at := range t.Ports(n) {
			if at.Link.Failed {
				continue
			}
			// Hosts do not forward transit traffic: only the BFS
			// source (the destination host) may expand through a
			// host node.
			if t.Node(n).Kind == topology.Host && n != src {
				continue
			}
			if dist[at.Peer] > dist[n]+1 {
				dist[at.Peer] = dist[n] + 1
				queue = append(queue, at.Peer)
			}
		}
	}
	return dist
}

// Distance reports the hop count from n to dst, with ok=false when dst is
// unreachable (or not a routed destination).
func (tab *Table) Distance(n, dst topology.NodeID) (int, bool) {
	d, known := tab.dist[dst]
	if !known || d[n] >= unreachable {
		return 0, false
	}
	return int(d[n]), true
}

// Reachable reports whether dst can be reached from n.
func (tab *Table) Reachable(n, dst topology.NodeID) bool {
	_, ok := tab.Distance(n, dst)
	return ok
}

// NextHops returns the attachments of n on shortest paths toward dst,
// ordered by ascending peer NodeID (then port). The ordering is a semantic
// guarantee, not an iteration accident: ECMP selection indexes into this
// slice, so it must not depend on the order links were inserted into the
// topology. Empty when dst is unreachable.
func (tab *Table) NextHops(n, dst topology.NodeID) []topology.Attachment {
	d, known := tab.dist[dst]
	if !known || d[n] >= unreachable || n == dst {
		return nil
	}
	var out []topology.Attachment
	for _, at := range tab.topo.Ports(n) {
		if at.Link.Failed {
			continue
		}
		if tab.topo.Node(at.Peer).Kind == topology.Host && at.Peer != dst {
			continue
		}
		if d[at.Peer] == d[n]-1 {
			out = append(out, at)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Peer != out[j].Peer {
			return out[i].Peer < out[j].Peer
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// NextHop picks one next hop toward dst deterministically from flowKey
// (ECMP by flow hash). It selects the same attachment NextHops-then-index
// would, but by rank counting over the (unsorted) port list: this runs once
// per hop of every path the all-pairs CBD analysis traces, and the
// slice-plus-sort version dominated full-scale sweep setup time.
func (tab *Table) NextHop(n, dst topology.NodeID, flowKey uint64) (topology.Attachment, bool) {
	d, known := tab.dist[dst]
	if !known || d[n] >= unreachable || n == dst {
		return topology.Attachment{}, false
	}
	ports := tab.topo.Ports(n)
	eligible := func(at topology.Attachment) bool {
		if at.Link.Failed {
			return false
		}
		if tab.topo.Node(at.Peer).Kind == topology.Host && at.Peer != dst {
			return false
		}
		return d[at.Peer] == d[n]-1
	}
	count := 0
	for _, at := range ports {
		if eligible(at) {
			count++
		}
	}
	if count == 0 {
		return topology.Attachment{}, false
	}
	h := mix(flowKey ^ uint64(n)<<32 ^ uint64(dst))
	want := int(h % uint64(count))
	// Return the want-th eligible attachment in the (peer, port) order
	// NextHops guarantees. Port fan-out is the switch radix, so the
	// quadratic rank count stays cheaper than sorting an allocated slice.
	for _, at := range ports {
		if !eligible(at) {
			continue
		}
		rank := 0
		for _, o := range ports {
			if !eligible(o) {
				continue
			}
			if o.Peer < at.Peer || (o.Peer == at.Peer && o.Port < at.Port) {
				rank++
			}
		}
		if rank == want {
			return at, true
		}
	}
	return topology.Attachment{}, false
}

// Hop is one forwarding step of a path: the node, the local egress port used
// and the link it leads over.
type Hop struct {
	Node topology.NodeID
	Port int
	Link *topology.Link
}

// Path traces the full route a flow keyed by flowKey takes from src to dst,
// one Hop per transmitting node (the destination is not included). It fails
// when dst is unreachable.
func (tab *Table) Path(src, dst topology.NodeID, flowKey uint64) ([]Hop, error) {
	if src == dst {
		return nil, fmt.Errorf("routing: src == dst (%d)", src)
	}
	hops, ok := tab.Distance(src, dst)
	if !ok {
		return nil, fmt.Errorf("routing: %s unreachable from %s",
			tab.topo.Node(dst).Name, tab.topo.Node(src).Name)
	}
	// Every step moves one hop closer, so the path length is exactly the
	// hop distance: size the slice once instead of growing it.
	path := make([]Hop, 0, hops)
	n := src
	for n != dst {
		at, ok := tab.NextHop(n, dst, flowKey)
		if !ok {
			return nil, fmt.Errorf("routing: no next hop from %s to %s",
				tab.topo.Node(n).Name, tab.topo.Node(dst).Name)
		}
		path = append(path, Hop{Node: n, Port: at.Port, Link: at.Link})
		n = at.Peer
		if len(path) > tab.topo.NumNodes() {
			return nil, fmt.Errorf("routing: loop detected from %s to %s",
				tab.topo.Node(src).Name, tab.topo.Node(dst).Name)
		}
	}
	return path, nil
}

// PathLatency reports the end-to-end serialization + propagation latency of
// a path for one packet of the given size: the unloaded-network time a
// same-sized packet needs, used for the slowdown metric of Figure 17.
func PathLatency(path []Hop, pkt units.Size) units.Time {
	var total units.Time
	for _, h := range path {
		total += units.TransmissionTime(pkt, h.Link.Capacity) + h.Link.Delay
	}
	return total
}

// mix is a 64-bit finalizer (splitmix64) giving a well-distributed
// deterministic hash for ECMP selection.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
