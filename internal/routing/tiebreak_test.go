package routing

import (
	"testing"

	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// diamond builds H1–S1–{S2,S3}–S4–H2 with the four fabric links inserted in
// the given order (indices into the canonical link list). The node set — and
// hence every NodeID — is identical across permutations; only the adjacency
// (port) order varies.
func diamond(order []int) *topology.Topology {
	topo := topology.New("diamond")
	h1 := topo.AddHost("H1")
	s1 := topo.AddSwitch("S1")
	s2 := topo.AddSwitch("S2")
	s3 := topo.AddSwitch("S3")
	s4 := topo.AddSwitch("S4")
	h2 := topo.AddHost("H2")
	links := [][2]topology.NodeID{
		{s1, s2}, {s1, s3}, {s2, s4}, {s3, s4},
	}
	topo.AddLink(h1, s1, 10*units.Gbps, units.Microsecond)
	for _, i := range order {
		topo.AddLink(links[i][0], links[i][1], 10*units.Gbps, units.Microsecond)
	}
	topo.AddLink(s4, h2, 10*units.Gbps, units.Microsecond)
	return topo
}

// TestNextHopsInsertionOrderIndependent is the equal-cost tie-break
// regression test: the ECMP candidate list (and therefore every hashed path
// choice) must not depend on the order links were added to the topology.
func TestNextHopsInsertionOrderIndependent(t *testing.T) {
	orders := [][]int{
		{0, 1, 2, 3},
		{1, 0, 3, 2},
		{3, 2, 1, 0},
		{2, 3, 0, 1},
		{1, 3, 0, 2},
	}
	type pick struct {
		hops  []topology.NodeID
		paths map[uint64]string
	}
	var want *pick
	for _, order := range orders {
		topo := diamond(order)
		tab := NewSPF(topo)
		s1 := topo.MustLookup("S1")
		h1 := topo.MustLookup("H1")
		h2 := topo.MustLookup("H2")

		nh := tab.NextHops(s1, h2)
		if len(nh) != 2 {
			t.Fatalf("order %v: NextHops(S1,H2) has %d entries, want 2", order, len(nh))
		}
		got := &pick{paths: map[uint64]string{}}
		for _, at := range nh {
			got.hops = append(got.hops, at.Peer)
		}
		for i := 0; i+1 < len(got.hops); i++ {
			if got.hops[i] >= got.hops[i+1] {
				t.Fatalf("order %v: NextHops peers not ascending: %v", order, got.hops)
			}
		}
		for key := uint64(0); key < 64; key++ {
			path, err := tab.Path(h1, h2, key)
			if err != nil {
				t.Fatalf("order %v key %d: %v", order, key, err)
			}
			var s string
			for _, hop := range path {
				s += topo.Node(hop.Node).Name + ">"
			}
			got.paths[key] = s
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want.hops {
			if got.hops[i] != want.hops[i] {
				t.Fatalf("order %v: NextHops = %v, want %v (insertion order leaked into ECMP)",
					order, got.hops, want.hops)
			}
		}
		for key, p := range want.paths {
			if got.paths[key] != p {
				t.Fatalf("order %v key %d: path %q, want %q (insertion order leaked into ECMP)",
					order, key, got.paths[key], p)
			}
		}
	}
}
