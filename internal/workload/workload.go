// Package workload generates the traffic of the paper's evaluation. The
// large-scale sweeps (§6.2.3) drive every host with flows whose sizes follow
// the empirically observed enterprise traffic pattern of Figure 15 (from the
// "Let It Flow" enterprise workload [57]) toward uniformly random
// destinations in other racks; each host starts a new flow as soon as its
// previous one finishes.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/gfcsim/gfc/internal/units"
)

// SizeDist is a flow-size distribution sampled by inverse-transform over a
// piecewise log-linear CDF.
type SizeDist struct {
	// knots are (size, cumulative-probability) pairs, ascending in both.
	sizes []float64 // log10 bytes
	probs []float64
}

// point is one CDF knot: P(size ≤ Size) = Prob.
type point struct {
	Size units.Size
	Prob float64
}

func newSizeDist(knots []point) *SizeDist {
	d := &SizeDist{}
	for _, k := range knots {
		d.sizes = append(d.sizes, math.Log10(float64(k.Size)))
		d.probs = append(d.probs, k.Prob)
	}
	return d
}

// Enterprise returns the flow-size distribution of Figure 15: the enterprise
// workload measured in [57] (Let It Flow, NSDI'17) — mostly small flows
// (median ≈ a few KB) with a heavy tail of multi-MB flows carrying most of
// the bytes.
func Enterprise() *SizeDist {
	return newSizeDist([]point{
		{250 * units.Byte, 0},
		{500 * units.Byte, 0.15},
		{1 * units.KB, 0.30},
		{2 * units.KB, 0.42},
		{5 * units.KB, 0.55},
		{10 * units.KB, 0.65},
		{30 * units.KB, 0.75},
		{100 * units.KB, 0.84},
		{300 * units.KB, 0.90},
		{1 * units.MB, 0.95},
		{3 * units.MB, 0.98},
		{10 * units.MB, 0.998},
		{30 * units.MB, 1.0},
	})
}

// DataMining returns the heavier-tailed data-mining workload shape often
// paired with the enterprise one, provided for workload-sensitivity
// ablations.
func DataMining() *SizeDist {
	return newSizeDist([]point{
		{100 * units.Byte, 0},
		{300 * units.Byte, 0.45},
		{1 * units.KB, 0.60},
		{10 * units.KB, 0.75},
		{100 * units.KB, 0.82},
		{1 * units.MB, 0.88},
		{10 * units.MB, 0.94},
		{100 * units.MB, 0.99},
		{1000 * units.MB, 1.0},
	})
}

// Uniform returns a degenerate distribution that always samples size s; for
// controlled experiments.
func Uniform(s units.Size) *SizeDist {
	return newSizeDist([]point{{s, 0}, {s + 1, 1.0}})
}

// Validate checks the distribution is sampleable: at least two knots, every
// size positive (a non-positive size turns into a NaN/-Inf log knot and
// poisons every sample), sizes strictly ascending and probabilities ascending
// within [0, 1]. Uniform(0) is the canonical way to trip this.
func (d *SizeDist) Validate() error {
	if len(d.sizes) < 2 {
		return fmt.Errorf("workload: size distribution needs at least 2 CDF knots, got %d", len(d.sizes))
	}
	for i, ls := range d.sizes {
		if math.IsNaN(ls) || math.IsInf(ls, 0) {
			return fmt.Errorf("workload: size distribution knot %d has non-positive size (log10 = %v)", i, ls)
		}
		if i > 0 && ls <= d.sizes[i-1] {
			return fmt.Errorf("workload: size distribution knot %d not ascending in size", i)
		}
	}
	for i, p := range d.probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("workload: size distribution knot %d has probability %v outside [0,1]", i, p)
		}
		if i > 0 && p < d.probs[i-1] {
			return fmt.Errorf("workload: size distribution knot %d not ascending in probability", i)
		}
	}
	if last := d.probs[len(d.probs)-1]; last != 1 {
		return fmt.Errorf("workload: size distribution CDF ends at %v, want 1", last)
	}
	return nil
}

// Sample draws one flow size.
func (d *SizeDist) Sample(rng *rand.Rand) units.Size {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.probs, u)
	if i == 0 {
		return units.Size(math.Pow(10, d.sizes[0]))
	}
	if i >= len(d.probs) {
		i = len(d.probs) - 1
	}
	// Log-linear interpolation between knots i-1 and i.
	p0, p1 := d.probs[i-1], d.probs[i]
	s0, s1 := d.sizes[i-1], d.sizes[i]
	frac := 0.0
	if p1 > p0 {
		frac = (u - p0) / (p1 - p0)
	}
	return units.Size(math.Round(math.Pow(10, s0+frac*(s1-s0))))
}

// CDFAt reports P(size ≤ s) under the distribution (for Figure 15
// regeneration and goodness-of-fit tests).
func (d *SizeDist) CDFAt(s units.Size) float64 {
	ls := math.Log10(float64(s))
	if ls <= d.sizes[0] {
		return d.probs[0]
	}
	last := len(d.sizes) - 1
	if ls >= d.sizes[last] {
		return d.probs[last]
	}
	i := sort.SearchFloat64s(d.sizes, ls)
	s0, s1 := d.sizes[i-1], d.sizes[i]
	p0, p1 := d.probs[i-1], d.probs[i]
	frac := (ls - s0) / (s1 - s0)
	return p0 + frac*(p1-p0)
}

// Mean estimates the distribution's mean flow size by sampling.
func (d *SizeDist) Mean(rng *rand.Rand, n int) units.Size {
	var total units.Size
	for i := 0; i < n; i++ {
		total += d.Sample(rng)
	}
	return total / units.Size(n)
}
