package workload

import (
	"fmt"
	"math/rand"

	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// RackOf groups hosts into racks; flows are only generated between different
// racks (§6.2.3: "each host randomly chooses a destination in different
// racks").
type RackOf func(topology.NodeID) int

// EdgeRacks returns the natural rack function for fat-trees built by
// topology.FatTree: hosts under the same edge switch form a rack. For other
// topologies it falls back to per-host racks (all pairs allowed).
func EdgeRacks(t *topology.Topology) RackOf {
	rack := make(map[topology.NodeID]int)
	for _, h := range t.Hosts() {
		ports := t.Ports(h)
		if len(ports) == 1 {
			rack[h] = int(ports[0].Peer)
		} else {
			rack[h] = -1 - int(h)
		}
	}
	return func(n topology.NodeID) int { return rack[n] }
}

// Generator drives every host of a simulation with back-to-back flows drawn
// from a size distribution toward random inter-rack destinations.
type Generator struct {
	Net   *netsim.Network
	Table *routing.Table
	Dist  *SizeDist
	Racks RackOf
	Rng   *rand.Rand
	// Priority assigned to generated flows.
	Priority int
	// FlowsPerHost is how many flows each host keeps in flight
	// concurrently; default 1 (the paper's workload). Higher values
	// intensify transient convergence — useful to raise the deadlock
	// occurrence rate in budget-limited Table 1 sweeps.
	FlowsPerHost int
	// Think is the idle gap between a flow finishing and the same host
	// launching its successor. The paper's workload chains back-to-back
	// (Think 0); a positive value models application think time and turns
	// the fixed flow population into churn — connections close and reopen
	// instead of saturating, which shifts load from standing queues to
	// flow-arrival transients.
	Think units.Time

	nextID int
	// Completed accumulates finished flows for analysis.
	Completed []*netsim.Flow
}

// NewGenerator wires a generator; call Start to begin traffic.
func NewGenerator(net *netsim.Network, tab *routing.Table, dist *SizeDist, racks RackOf, seed int64) *Generator {
	return &Generator{
		Net:   net,
		Table: tab,
		Dist:  dist,
		Racks: racks,
		Rng:   rand.New(rand.NewSource(seed)),
	}
}

// validate rejects a generator that would panic or silently misbehave once
// traffic starts: every collaborator must be wired, and the size distribution
// must be well-formed (Uniform(0) and friends produce NaN knots that would
// sample garbage sizes forever).
func (g *Generator) validate() error {
	switch {
	case g.Net == nil:
		return fmt.Errorf("workload: generator: Net is nil")
	case g.Table == nil:
		return fmt.Errorf("workload: generator: Table is nil (build a routing table first)")
	case g.Dist == nil:
		return fmt.Errorf("workload: generator: Dist is nil (pick a size distribution)")
	case g.Racks == nil:
		return fmt.Errorf("workload: generator: Racks is nil (use EdgeRacks)")
	case g.Rng == nil:
		return fmt.Errorf("workload: generator: Rng is nil (construct with NewGenerator)")
	}
	if err := g.Dist.Validate(); err != nil {
		return fmt.Errorf("workload: generator: %w", err)
	}
	return nil
}

// Start launches the first flow on every host at time 0. Each completion
// triggers the next flow from the same host. The simulation's Trace hook
// OnFlowDone must be free for the generator's use (it installs its own
// chaining through AddFlow callbacks instead — completion is observed via
// per-flow goroutine-free scheduling below). FlowsPerHost values <= 0 mean
// the paper's default of one flow in flight per host.
func (g *Generator) Start() error {
	if err := g.validate(); err != nil {
		return err
	}
	k := g.FlowsPerHost
	if k < 1 {
		k = 1
	}
	hosts := g.Net.Topology().Hosts()
	for _, h := range hosts {
		for i := 0; i < k; i++ {
			if err := g.launch(h, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// launch starts one flow from src at time at and schedules its successor.
func (g *Generator) launch(src topology.NodeID, at units.Time) error {
	dst, ok := g.pickDst(src)
	if !ok {
		return nil // no reachable inter-rack destination: host stays idle
	}
	g.nextID++
	id := g.nextID
	key := uint64(id)*1315423911 ^ uint64(src)<<24 ^ uint64(dst)
	path, err := g.Table.Path(src, dst, key)
	if err != nil {
		return fmt.Errorf("workload: routing flow %d: %w", id, err)
	}
	f := &netsim.Flow{
		ID:       id,
		Src:      src,
		Dst:      dst,
		Size:     g.Dist.Sample(g.Rng),
		Priority: g.Priority,
		Path:     path,
	}
	f.OnDone = func(done *netsim.Flow) {
		g.Completed = append(g.Completed, done)
		// Chain the next flow from the same host after the think gap
		// (§6.2.3: "Once this flow is finished, the host repeats the
		// above process" — back-to-back when Think is 0). Routing
		// failures cannot occur here: the host just proved it can
		// route somewhere.
		_ = g.launch(done.Src, g.Net.Now()+g.Think)
	}
	return g.Net.AddFlow(f, at)
}

// pickDst chooses a uniformly random reachable host in a different rack.
func (g *Generator) pickDst(src topology.NodeID) (topology.NodeID, bool) {
	hosts := g.Net.Topology().Hosts()
	// Rejection-sample a bounded number of times, then scan.
	for try := 0; try < 16; try++ {
		d := hosts[g.Rng.Intn(len(hosts))]
		if d != src && g.Racks(d) != g.Racks(src) && g.Table.Reachable(src, d) {
			return d, true
		}
	}
	var candidates []topology.NodeID
	for _, d := range hosts {
		if d != src && g.Racks(d) != g.Racks(src) && g.Table.Reachable(src, d) {
			candidates = append(candidates, d)
		}
	}
	if len(candidates) == 0 {
		return topology.None, false
	}
	return candidates[g.Rng.Intn(len(candidates))], true
}
