package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

func TestEnterpriseShape(t *testing.T) {
	d := Enterprise()
	rng := rand.New(rand.NewSource(1))
	var small, large int
	const n = 20000
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		if s < 250 || s > 30*units.MB {
			t.Fatalf("sample %v outside support", s)
		}
		if s <= 10*units.KB {
			small++
		}
		if s >= units.MB {
			large++
		}
	}
	// Figure 15 shape: ~65% of flows ≤ 10KB, ~5% ≥ 1MB.
	if frac := float64(small) / n; frac < 0.55 || frac > 0.75 {
		t.Errorf("P(≤10KB) = %v, want ≈0.65", frac)
	}
	if frac := float64(large) / n; frac < 0.02 || frac > 0.10 {
		t.Errorf("P(≥1MB) = %v, want ≈0.05", frac)
	}
}

func TestEnterpriseCDFAt(t *testing.T) {
	d := Enterprise()
	cases := []struct {
		s    units.Size
		want float64
	}{
		{250, 0}, {10 * units.KB, 0.65}, {1 * units.MB, 0.95}, {30 * units.MB, 1.0},
		{100 * units.MB, 1.0}, {1, 0},
	}
	for _, c := range cases {
		if got := d.CDFAt(c.s); got != c.want {
			t.Errorf("CDFAt(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestSampleMatchesCDF(t *testing.T) {
	// Goodness of fit: empirical fraction below each knot must match the
	// analytic CDF.
	d := Enterprise()
	rng := rand.New(rand.NewSource(7))
	const n = 50000
	checks := []units.Size{units.KB, 10 * units.KB, 100 * units.KB, units.MB}
	counts := make([]int, len(checks))
	for i := 0; i < n; i++ {
		s := d.Sample(rng)
		for j, c := range checks {
			if s <= c {
				counts[j]++
			}
		}
	}
	for j, c := range checks {
		got := float64(counts[j]) / n
		want := d.CDFAt(c)
		if diff := got - want; diff > 0.02 || diff < -0.02 {
			t.Errorf("empirical P(≤%v) = %.3f, analytic %.3f", c, got, want)
		}
	}
}

func TestDataMiningHeavierTail(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := Enterprise().Mean(rng, 20000)
	m := DataMining().Mean(rng, 20000)
	if m <= e {
		t.Errorf("data-mining mean %v not heavier than enterprise %v", m, e)
	}
}

func TestUniformDist(t *testing.T) {
	d := Uniform(1234)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if s := d.Sample(rng); s < 1234 || s > 1235 {
			t.Fatalf("Uniform sampled %v", s)
		}
	}
}

func TestEdgeRacks(t *testing.T) {
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	racks := EdgeRacks(topo)
	h0 := topo.MustLookup("H0")
	h1 := topo.MustLookup("H1") // same edge switch
	h2 := topo.MustLookup("H2") // different edge
	if racks(h0) != racks(h1) {
		t.Error("same-edge hosts in different racks")
	}
	if racks(h0) == racks(h2) {
		t.Error("different-edge hosts in same rack")
	}
}

func TestGeneratorDrivesTraffic(t *testing.T) {
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	net, err := netsim.New(topo, netsim.Config{
		BufferSize:  300 * units.KB,
		FlowControl: flowcontrol.NewGFCBuffer(flowcontrol.GFCBufferConfig{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewSPF(topo)
	g := NewGenerator(net, tab, Enterprise(), EdgeRacks(topo), 42)
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	net.Run(2 * units.Millisecond)
	if len(g.Completed) == 0 {
		t.Fatal("no flows completed in 2ms of fat-tree traffic")
	}
	if net.Drops() != 0 {
		t.Fatalf("drops = %d", net.Drops())
	}
	for _, f := range g.Completed {
		if f.Src == f.Dst {
			t.Fatal("self-flow generated")
		}
		if !f.Done() {
			t.Fatal("incomplete flow recorded as completed")
		}
		// Inter-rack only.
		racks := EdgeRacks(topo)
		if racks(f.Src) == racks(f.Dst) {
			t.Fatal("intra-rack flow generated")
		}
	}
	// Chaining: more flows total than hosts (some hosts finished and
	// launched successors).
	if len(net.Flows()) <= len(topo.Hosts()) {
		t.Errorf("flows = %d, hosts = %d; no chaining observed",
			len(net.Flows()), len(topo.Hosts()))
	}
}

func TestGeneratorThinkTime(t *testing.T) {
	// The churn knob: with a think gap longer than the run, a successor
	// is scheduled but never starts, so only the initial per-host flows
	// can complete; with Think 0 the same seed chains completions well
	// past the host count.
	run := func(think units.Time) (flows int, completed int) {
		topo := topology.FatTree(4, topology.DefaultLinkParams())
		net, err := netsim.New(topo, netsim.Config{
			BufferSize:  300 * units.KB,
			FlowControl: flowcontrol.NewPFCDefault(),
		})
		if err != nil {
			t.Fatal(err)
		}
		tab := routing.NewSPF(topo)
		g := NewGenerator(net, tab, Enterprise(), EdgeRacks(topo), 42)
		g.Think = think
		if err := g.Start(); err != nil {
			t.Fatal(err)
		}
		net.Run(2 * units.Millisecond)
		return len(net.Flows()), len(g.Completed)
	}
	hosts := len(topology.FatTree(4, topology.DefaultLinkParams()).Hosts())
	chained, completedChained := run(0)
	churned, completedChurned := run(units.Second)
	if completedChained == 0 || completedChurned == 0 {
		t.Fatalf("no completions (chained %d, churned %d)", completedChained, completedChurned)
	}
	if completedChurned > hosts {
		t.Errorf("with a run-length think gap, %d completions exceed the %d initial flows", completedChurned, hosts)
	}
	if completedChained <= completedChurned {
		t.Errorf("think 0 completed %d flows, not more than the churned run's %d", completedChained, completedChurned)
	}
	if chained <= churned {
		t.Errorf("think 0 launched %d flows, not more than the churned run's %d", chained, churned)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() (int, units.Size) {
		topo := topology.FatTree(4, topology.DefaultLinkParams())
		net, err := netsim.New(topo, netsim.Config{
			BufferSize:  300 * units.KB,
			FlowControl: flowcontrol.NewPFCDefault(),
		})
		if err != nil {
			t.Fatal(err)
		}
		tab := routing.NewSPF(topo)
		g := NewGenerator(net, tab, Enterprise(), EdgeRacks(topo), 99)
		if err := g.Start(); err != nil {
			t.Fatal(err)
		}
		net.Run(units.Millisecond)
		return len(g.Completed), net.TotalDelivered()
	}
	c1, d1 := run()
	c2, d2 := run()
	if c1 != c2 || d1 != d2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", c1, d1, c2, d2)
	}
}

func TestGeneratorDisconnected(t *testing.T) {
	// Hosts with no inter-rack reachable destination stay idle rather
	// than erroring.
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	// Sever pod 0's uplinks entirely: its hosts can only reach pod-0
	// hosts, all in... pod 0 has 2 racks, so intra-pod inter-rack flows
	// remain possible. Sever edge-agg links of one edge instead.
	for _, at := range topo.Ports(topo.MustLookup("E1")) {
		if topo.Node(at.Peer).Kind == topology.Switch {
			at.Link.Failed = true
		}
	}
	net, err := netsim.New(topo, netsim.Config{
		BufferSize:  300 * units.KB,
		FlowControl: flowcontrol.NewPFCDefault(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewSPF(topo)
	g := NewGenerator(net, tab, Uniform(10*units.KB), EdgeRacks(topo), 5)
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	net.Run(units.Millisecond)
	// The isolated rack's hosts (H0, H1) must not appear as sources.
	for _, f := range net.Flows() {
		name := topo.Node(f.Src).Name
		if name == "H0" || name == "H1" {
			t.Fatalf("isolated host %s sourced a flow", name)
		}
	}
}

// Property: samples always lie within the distribution's support.
func TestSampleSupport(t *testing.T) {
	d := Enterprise()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			s := d.Sample(rng)
			if s < 250*units.Byte || s > 30*units.MB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: CDFAt is monotone non-decreasing.
func TestCDFMonotone(t *testing.T) {
	d := Enterprise()
	f := func(a, b uint32) bool {
		x := units.Size(a%50000000) + 1
		y := units.Size(b%50000000) + 1
		if x > y {
			x, y = y, x
		}
		return d.CDFAt(x) <= d.CDFAt(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
