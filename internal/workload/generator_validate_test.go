package workload

import (
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

func validationFixture(t *testing.T) (*netsim.Network, *routing.Table, *topology.Topology) {
	t.Helper()
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	net, err := netsim.New(topo, netsim.Config{
		BufferSize:  300 * units.KB,
		FlowControl: flowcontrol.NewGFCBuffer(flowcontrol.GFCBufferConfig{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, routing.NewSPF(topo), topo
}

func TestGeneratorValidation(t *testing.T) {
	net, tab, topo := validationFixture(t)
	cases := []struct {
		name string
		gen  *Generator
		want string // substring of the error
	}{
		{"nil net", func() *Generator {
			g := NewGenerator(nil, tab, Enterprise(), EdgeRacks(topo), 1)
			return g
		}(), "Net is nil"},
		{"nil table", NewGenerator(net, nil, Enterprise(), EdgeRacks(topo), 1), "Table is nil"},
		{"nil dist", NewGenerator(net, tab, nil, EdgeRacks(topo), 1), "Dist is nil"},
		{"nil racks", NewGenerator(net, tab, Enterprise(), nil, 1), "Racks is nil"},
		{"nil rng", func() *Generator {
			g := NewGenerator(net, tab, Enterprise(), EdgeRacks(topo), 1)
			g.Rng = nil
			return g
		}(), "Rng is nil"},
		{"zero uniform size", NewGenerator(net, tab, Uniform(0), EdgeRacks(topo), 1), "non-positive size"},
		{"negative uniform size", NewGenerator(net, tab, Uniform(-4*units.KB), EdgeRacks(topo), 1), "non-positive size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.gen.Start()
			if err == nil {
				t.Fatalf("Start() succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Start() error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestSizeDistValidateBoundaries(t *testing.T) {
	if err := Uniform(1 * units.Byte).Validate(); err != nil {
		t.Fatalf("Uniform(1): %v", err)
	}
	if err := Enterprise().Validate(); err != nil {
		t.Fatalf("Enterprise(): %v", err)
	}
	if err := DataMining().Validate(); err != nil {
		t.Fatalf("DataMining(): %v", err)
	}
	if err := Uniform(0).Validate(); err == nil {
		t.Fatal("Uniform(0) validated; want non-positive size error")
	}
	if err := (&SizeDist{}).Validate(); err == nil {
		t.Fatal("empty distribution validated; want knot-count error")
	}
}

// TestGeneratorFlowsPerHostDefault pins the <= 0 → 1 defaulting: zero and
// negative intensities behave exactly like the paper's one-flow-per-host
// workload.
func TestGeneratorFlowsPerHostDefault(t *testing.T) {
	launched := func(perHost int) int {
		net, tab, topo := validationFixture(t)
		g := NewGenerator(net, tab, Uniform(100*units.MB), EdgeRacks(topo), 7)
		g.FlowsPerHost = perHost
		if err := g.Start(); err != nil {
			t.Fatal(err)
		}
		// The flows are huge, so none complete instantly: the initial
		// launch count is exactly hosts × effective-intensity.
		return len(net.Flows())
	}
	one := launched(1)
	if got := launched(0); got != one {
		t.Fatalf("FlowsPerHost=0 launched %d flows, want %d (default 1)", got, one)
	}
	if got := launched(-3); got != one {
		t.Fatalf("FlowsPerHost=-3 launched %d flows, want %d (default 1)", got, one)
	}
	if got := launched(2); got != 2*one {
		t.Fatalf("FlowsPerHost=2 launched %d flows, want %d", got, 2*one)
	}
}
