package netsim

import (
	"testing"

	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

func TestSchedulingString(t *testing.T) {
	cases := map[Scheduling]string{
		SchedInputQueued: "input-queued",
		SchedFIFO:        "fifo",
		SchedVOQ:         "voq",
		SchedBlocking:    "blocking",
		Scheduling(42):   "scheduling(?)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

// Every discipline must deliver line rate on an uncongested path and stay
// lossless under 2:1 congestion.
func TestAllDisciplinesBasicService(t *testing.T) {
	for _, sched := range []Scheduling{
		SchedInputQueued, SchedFIFO, SchedVOQ, SchedBlocking,
	} {
		t.Run(sched.String(), func(t *testing.T) {
			topo := topology.TwoToOne(topology.DefaultLinkParams())
			cfg := baseConfig(gfcFactory())
			cfg.Scheduling = sched
			n, err := New(topo, cfg)
			if err != nil {
				t.Fatal(err)
			}
			f1 := spfFlow(t, topo, 1, "H1", "H3", 0)
			f2 := spfFlow(t, topo, 2, "H2", "H3", 0)
			for _, f := range []*Flow{f1, f2} {
				if err := n.AddFlow(f, 0); err != nil {
					t.Fatal(err)
				}
			}
			const dur = 10 * units.Millisecond
			n.Run(dur)
			if n.Drops() != 0 {
				t.Fatalf("drops = %d", n.Drops())
			}
			total := units.RateOf(f1.Delivered+f2.Delivered, dur)
			if total < 8.5*units.Gbps {
				t.Errorf("aggregate %v under %v, bottleneck underutilised", total, sched)
			}
		})
	}
}

// VOQ keeps per-input fairness: a line-rate input cannot crowd out a slower
// one beyond its fair share at the shared egress.
func TestVOQFairness(t *testing.T) {
	// Three senders into one sink: with VOQ each backlogged input gets
	// 1/3 of the egress.
	p := topology.DefaultLinkParams()
	topo := topology.New("three-to-one")
	s := topo.AddSwitch("S1")
	for _, h := range []string{"H1", "H2", "H3", "R"} {
		topo.AddLink(topo.AddHost(h), s, p.Capacity, p.Delay)
	}
	cfg := baseConfig(pfcFactory())
	cfg.Scheduling = SchedVOQ
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var flows []*Flow
	for i, h := range []string{"H1", "H2", "H3"} {
		f := spfFlow(t, topo, i+1, h, "R", 0)
		if err := n.AddFlow(f, 0); err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	const dur = 10 * units.Millisecond
	n.Run(dur)
	for _, f := range flows {
		r := units.RateOf(f.Delivered, dur)
		if r < 2.8*units.Gbps || r > 3.9*units.Gbps {
			t.Errorf("flow %d rate %v, want ≈3.33G fair share", f.ID, r)
		}
	}
}

// Input-queued switching exhibits head-of-line blocking: a packet behind a
// blocked head cannot leave even though its own egress is idle.
func TestInputQueuedHOL(t *testing.T) {
	// H1 sends alternating flows to R1 (congested by H2+H3) and R2
	// (idle). Under VOQ the R2 flow gets nearly full rate; under
	// input-queued it is dragged down by HOL behind R1-bound packets.
	p := topology.DefaultLinkParams()
	build := func(sched Scheduling) units.Rate {
		topo := topology.New("hol")
		s := topo.AddSwitch("S1")
		for _, h := range []string{"H1", "R2"} {
			topo.AddLink(topo.AddHost(h), s, p.Capacity, p.Delay)
		}
		// R1 sits behind a slow 1G link: R1-bound packets serialise
		// slowly at S1's egress.
		topo.AddLink(topo.AddHost("R1"), s, units.Gbps, p.Delay)
		cfg := baseConfig(pfcFactory())
		// A huge buffer keeps flow control out of the picture so the
		// measurement isolates the service discipline itself.
		cfg.BufferSize = 1 << 30
		cfg.Scheduling = sched
		n, err := New(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// H1 interleaves packets to the slow R1 and the fast R2.
		fSlow := spfFlow(t, topo, 1, "H1", "R1", 0)
		fFast := spfFlow(t, topo, 2, "H1", "R2", 0)
		for _, f := range []*Flow{fSlow, fFast} {
			if err := n.AddFlow(f, 0); err != nil {
				t.Fatal(err)
			}
		}
		const dur = 10 * units.Millisecond
		n.Run(dur)
		if n.Drops() != 0 {
			t.Fatalf("drops = %d", n.Drops())
		}
		return units.RateOf(fFast.Delivered, dur)
	}
	freeVOQ := build(SchedVOQ)
	freeIQ := build(SchedInputQueued)
	// At S1, H1's ingress FIFO interleaves R1- and R2-bound packets.
	// Under input-queued service only the head may move: every R1-bound
	// packet holds the R2 traffic behind it for a 1G serialisation
	// (12 µs), so the fast flow is dragged far below its VOQ service.
	if freeIQ >= freeVOQ/2 {
		t.Errorf("no HOL penalty: input-queued %v vs VOQ %v", freeIQ, freeVOQ)
	}
}

func TestStopFlow(t *testing.T) {
	topo := topology.Linear(2, topology.DefaultLinkParams())
	n, err := New(topo, baseConfig(pfcFactory()))
	if err != nil {
		t.Fatal(err)
	}
	f := spfFlow(t, topo, 1, "H1", "H2", 0) // unbounded
	if err := n.AddFlow(f, 0); err != nil {
		t.Fatal(err)
	}
	n.StopFlow(f, 2*units.Millisecond)
	n.Run(10 * units.Millisecond)
	if !f.Done() {
		t.Fatal("stopped flow never completed")
	}
	// Delivered ≈ 2ms at line rate ≈ 2.5MB.
	want := units.BytesIn(10*units.Gbps, 2*units.Millisecond)
	if f.Delivered < want*95/100 || f.Delivered > want*105/100 {
		t.Errorf("delivered %v, want ≈%v", f.Delivered, want)
	}
	if f.FCT() <= 0 {
		t.Error("FCT not recorded")
	}
}

func TestFeedbackJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) units.Size {
		topo := topology.TwoToOne(topology.DefaultLinkParams())
		cfg := baseConfig(pfcFactory())
		cfg.FeedbackJitter = 20 * units.Microsecond
		cfg.JitterSeed = seed
		// τ must budget for the jitter or PFC headroom is too small.
		cfg.Tau = 30 * units.Microsecond
		n, err := New(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, src := range []string{"H1", "H2"} {
			if err := n.AddFlow(spfFlow(t, topo, i+1, src, "H3", 0), 0); err != nil {
				t.Fatal(err)
			}
		}
		n.Run(5 * units.Millisecond)
		if n.Drops() != 0 {
			t.Fatalf("drops = %d with jittered feedback", n.Drops())
		}
		return n.TotalDelivered()
	}
	a1, a2 := run(7), run(7)
	if a1 != a2 {
		t.Fatal("same jitter seed produced different results")
	}
	b := run(8)
	if a1 == b {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

func TestBlockingForwardingStallsSwitch(t *testing.T) {
	// Under SchedBlocking with a paused egress, the whole switch's
	// forwarding for that priority freezes once the TX ring fills —
	// traffic to an unrelated idle port also stops.
	p := topology.DefaultLinkParams()
	topo := topology.New("blocking")
	s := topo.AddSwitch("S1")
	for _, h := range []string{"H1", "H2", "R1", "R2"} {
		topo.AddLink(topo.AddHost(h), s, p.Capacity, p.Delay)
	}
	cfg := baseConfig(pfcFactory())
	cfg.Scheduling = SchedBlocking
	cfg.TxRing = 4
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two flows saturate R1 (PFC will pause S1→R1 only if R1's ingress
	// fills — hosts sink infinitely, so instead make R1's link the
	// bottleneck by sending 2:1).
	f1 := spfFlow(t, topo, 1, "H1", "R1", 0)
	f2 := spfFlow(t, topo, 2, "H2", "R1", 0)
	f3 := spfFlow(t, topo, 3, "H2", "R2", 0)
	for _, f := range []*Flow{f1, f2, f3} {
		if err := n.AddFlow(f, 0); err != nil {
			t.Fatal(err)
		}
	}
	const dur = 10 * units.Millisecond
	n.Run(dur)
	// R2 traffic shares H2's uplink with the R1 flow; with the R1 TX
	// ring full most of the time, switch-wide stalls throttle the
	// R2-bound flow well below its VOQ share. This documents the
	// discipline's coupling; exact numbers are not asserted, only that
	// the run is lossless and makes progress.
	if n.Drops() != 0 {
		t.Fatalf("drops = %d", n.Drops())
	}
	if f3.Delivered == 0 {
		t.Fatal("R2 flow fully starved under blocking forwarding")
	}
}

func TestPriorityWeightsValidation(t *testing.T) {
	topo := topology.Linear(2, topology.DefaultLinkParams())
	cfg := baseConfig(pfcFactory())
	cfg.Priorities = 2
	cfg.PriorityWeights = []int{3} // wrong length
	if _, err := New(topo, cfg); err == nil {
		t.Error("mismatched weights accepted")
	}
	cfg.PriorityWeights = []int{3, 0} // zero weight
	if _, err := New(topo, cfg); err == nil {
		t.Error("zero weight accepted")
	}
}

func TestWeightedPrioritySharing(t *testing.T) {
	// Two saturating flows at different priorities through one
	// bottleneck: a 3:1 weighting must show up in goodput.
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	cfg := baseConfig(gfcFactory())
	cfg.Priorities = 2
	cfg.PriorityWeights = []int{3, 1}
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hi := spfFlow(t, topo, 1, "H1", "H3", 0)
	hi.Priority = 0
	lo := spfFlow(t, topo, 2, "H2", "H3", 0)
	lo.Priority = 1
	for _, f := range []*Flow{hi, lo} {
		if err := n.AddFlow(f, 0); err != nil {
			t.Fatal(err)
		}
	}
	const dur = 10 * units.Millisecond
	n.Run(dur)
	if n.Drops() != 0 {
		t.Fatalf("drops = %d", n.Drops())
	}
	rHi := units.RateOf(hi.Delivered, dur)
	rLo := units.RateOf(lo.Delivered, dur)
	ratio := float64(rHi) / float64(rLo)
	if ratio < 2.3 || ratio > 3.7 {
		t.Errorf("weighted share ratio = %.2f (hi %v, lo %v), want ≈3", ratio, rHi, rLo)
	}
	// Work conservation: the bottleneck stays full.
	if total := rHi + rLo; total < 9*units.Gbps {
		t.Errorf("aggregate %v, want ≈10G", total)
	}
	// The low class is never starved (§7's requirement).
	if rLo < units.Gbps {
		t.Errorf("low class %v, starved", rLo)
	}
}

func TestIntrospectionAccessors(t *testing.T) {
	topo := topology.Linear(2, topology.DefaultLinkParams())
	n, err := New(topo, baseConfig(pfcFactory()))
	if err != nil {
		t.Fatal(err)
	}
	if n.Topology() != topo {
		t.Error("Topology accessor wrong")
	}
	if n.Engine() == nil {
		t.Error("Engine accessor nil")
	}
	f := spfFlow(t, topo, 1, "H1", "H2", 0)
	if err := n.AddFlow(f, 0); err != nil {
		t.Fatal(err)
	}
	if len(n.Flows()) != 1 || n.Flows()[0] != f {
		t.Error("Flows accessor wrong")
	}
	n.Run(units.Millisecond)
	s1 := topo.MustLookup("S1")
	h1 := topo.MustLookup("H1")
	if p := n.PortFor(s1, h1); p < 0 {
		t.Error("PortFor failed")
	}
	if p := n.PortFor(h1, topo.MustLookup("H2")); p >= 0 {
		t.Error("PortFor found nonexistent link")
	}
	if q := n.IngressQueue(s1, n.PortFor(s1, h1), 0); q < 0 {
		t.Error("IngressQueue negative")
	}
	states := n.IngressStates()
	if len(states) == 0 {
		t.Fatal("no ingress states for a switch")
	}
	for _, is := range states {
		if topo.Node(is.Node).Kind != topology.Switch {
			t.Error("ingress state on a host")
		}
		if len(is.WaitsOn) != len(is.WaitRates) {
			t.Error("WaitsOn and WaitRates misaligned")
		}
	}
}

func TestDropIngressHead(t *testing.T) {
	// Congested 2:1 so ingress FIFOs hold packets.
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	n, err := New(topo, baseConfig(pfcFactory()))
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range []string{"H1", "H2"} {
		if err := n.AddFlow(spfFlow(t, topo, i+1, src, "H3", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(5 * units.Millisecond)
	s1 := topo.MustLookup("S1")
	h1 := topo.MustLookup("H1")
	port := n.PortFor(s1, h1)
	before := n.IngressQueue(s1, port, 0)
	if before == 0 {
		t.Fatal("ingress empty; cannot exercise drop")
	}
	if !n.DropIngressHead(s1, port, 0) {
		t.Fatal("DropIngressHead failed on occupied buffer")
	}
	if n.Drops() != 1 {
		t.Fatalf("drops = %d, want 1", n.Drops())
	}
	if after := n.IngressQueue(s1, port, 0); after >= before {
		t.Error("occupancy did not fall")
	}
	// Dropping from a host or out-of-range port fails gracefully.
	if n.DropIngressHead(h1, 0, 0) {
		t.Error("dropped from a host")
	}
	if n.DropIngressHead(s1, 99, 0) {
		t.Error("dropped from nonexistent port")
	}
}

func TestPacketHelpers(t *testing.T) {
	topo := topology.Linear(2, topology.DefaultLinkParams())
	n, err := New(topo, baseConfig(pfcFactory()))
	if err != nil {
		t.Fatal(err)
	}
	var sawLastHop bool
	cfg := baseConfig(pfcFactory())
	cfg.Trace = &Trace{
		OnTransmit: func(_ units.Time, _ topology.NodeID, _ int, pkt *Packet) {
			if pkt.CurrentHop().Link == nil {
				t.Error("CurrentHop has nil link")
			}
			if pkt.AtLastHop() {
				sawLastHop = true
			}
		},
	}
	n, err = New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := spfFlow(t, topo, 1, "H1", "H2", 10*units.KB)
	if err := n.AddFlow(f, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(units.Millisecond)
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
	if !sawLastHop {
		t.Error("AtLastHop never true on a delivered flow")
	}
}
