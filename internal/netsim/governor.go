package netsim

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/gfcsim/gfc/internal/units"
)

// This file is the run governor: a bounded-execution path for simulations
// that must not be trusted to terminate. Plain Run stays the uninstrumented
// fast path; RunBounded attaches a hook to the event engine (one nil check
// per event when detached, matching the metrics/faults pattern) that every
// few thousand events checks cancellation, event and wall-clock budgets,
// and a sim-time stall watchdog. A tripped governor returns a structured
// *RunError carrying a flight-recorder Snapshot instead of hanging the
// caller.

// Budget bounds one RunBounded execution. The zero value imposes no bounds
// (only ctx cancellation applies).
type Budget struct {
	// MaxEvents caps how many events this call may fire; 0 is unlimited.
	MaxEvents uint64
	// MaxWall caps the host wall-clock time of the call; 0 is unlimited.
	MaxWall time.Duration
	// StallEvents arms the livelock watchdog: if this many consecutive
	// events fire while neither the simulation clock nor the
	// delivered/dropped byte counters advance, the run is declared
	// stalled. A run that is slow but keeps moving sim time never trips
	// it. 0 disables the watchdog.
	StallEvents uint64
	// CheckEvery is the governor's polling interval in events; 0 means
	// 4096. Checks are O(flows), so the default keeps overhead well under
	// a percent while bounding detection latency.
	CheckEvery uint64
	// MaxHeap is the OOM guard: if the Go heap (runtime.MemStats.HeapAlloc)
	// exceeds this many bytes at a governor check, the run stops with
	// StopHeapBudget before the kernel's OOM killer takes the whole sweep
	// process down. The heap is sampled only every heapCheckStride-th check
	// (ReadMemStats stops the world briefly); 0 disables the guard.
	MaxHeap uint64
}

// Overlay returns b with every field that o sets replaced by o's value —
// how caller-side budget flags override a scenario's declared Limits.
func (b Budget) Overlay(o Budget) Budget {
	if o.MaxEvents != 0 {
		b.MaxEvents = o.MaxEvents
	}
	if o.MaxWall != 0 {
		b.MaxWall = o.MaxWall
	}
	if o.StallEvents != 0 {
		b.StallEvents = o.StallEvents
	}
	if o.CheckEvery != 0 {
		b.CheckEvery = o.CheckEvery
	}
	if o.MaxHeap != 0 {
		b.MaxHeap = o.MaxHeap
	}
	return b
}

// StopReason says why the governor ended a run.
type StopReason uint8

// Governor stop reasons.
const (
	// StopCancelled: the caller's context was cancelled.
	StopCancelled StopReason = iota
	// StopEventBudget: Budget.MaxEvents was exhausted.
	StopEventBudget
	// StopWallBudget: Budget.MaxWall elapsed on the host clock.
	StopWallBudget
	// StopStalled: the livelock watchdog saw Budget.StallEvents events
	// with no sim-time or delivery progress.
	StopStalled
	// StopHeapBudget: the Go heap exceeded Budget.MaxHeap (OOM guard).
	StopHeapBudget
)

func (r StopReason) String() string {
	switch r {
	case StopCancelled:
		return "cancelled"
	case StopEventBudget:
		return "event budget exhausted"
	case StopWallBudget:
		return "wall-clock budget exhausted"
	case StopStalled:
		return "stalled (livelock watchdog)"
	case StopHeapBudget:
		return "heap budget exhausted (OOM guard)"
	default:
		return fmt.Sprintf("stop reason(%d)", r)
	}
}

// RunError is the structured verdict of a tripped governor. It wraps the
// causing error (the context error for cancellations) and carries the
// flight-recorder snapshot taken at the stop point.
type RunError struct {
	Reason   StopReason
	Cause    error // non-nil for StopCancelled
	Snapshot *Snapshot
}

func (e *RunError) Error() string {
	s := e.Snapshot
	msg := fmt.Sprintf("netsim: run stopped: %v at t=%v after %d events", e.Reason, s.At, s.Events)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the cause, so errors.Is(err, context.Canceled) works on a
// cancelled run.
func (e *RunError) Unwrap() error { return e.Cause }

// PacketCensus counts the live packets of a network by where they sit.
type PacketCensus struct {
	// InputQueued packets wait in switch ingress FIFOs
	// (input-queued/blocking disciplines).
	InputQueued int `json:"input_queued"`
	// EgressQueued packets wait in egress VOQs / TX rings.
	EgressQueued int `json:"egress_queued"`
	// Transmitting packets are mid-serialisation at a port.
	Transmitting int `json:"transmitting"`
	// OnWire packets are propagating on a link toward their next hop.
	OnWire int `json:"on_wire"`
}

// Total is the number of live packets in the fabric.
func (c PacketCensus) Total() int {
	return c.InputQueued + c.EgressQueued + c.Transmitting + c.OnWire
}

// ChannelDump is one non-idle channel's flight-recorder line: current
// ingress occupancy and egress backlog, plus — when a metrics registry is
// bound — the occupancy high-water mark and the last/max GFC stage
// transitions seen on the channel.
type ChannelDump struct {
	Node string `json:"node"`
	Port int    `json:"port"`
	Prio int    `json:"prio"`

	Occupancy   units.Size `json:"occupancy"`
	QueuedBytes units.Size `json:"queued_bytes"`
	Rate        units.Rate `json:"rate"`

	// HighWater, LastStage and MaxStage come from the metrics registry;
	// without one they are 0, -1, -1.
	HighWater units.Size `json:"high_water,omitempty"`
	LastStage int32      `json:"last_stage"`
	MaxStage  int32      `json:"max_stage"`
}

// maxSnapshotChannels caps the per-channel section of a Snapshot; a k=16
// fat-tree has thousands of channels and a diagnostic dump needs the busy
// ones, not all of them.
const maxSnapshotChannels = 64

// heapCheckStride spaces out the OOM guard's ReadMemStats calls: the heap
// is sampled on every heapCheckStride-th governor check (including the
// first), because ReadMemStats briefly stops the world and a per-check call
// would dominate governor overhead. At the default CheckEvery of 4096 this
// samples every ~256k events — far faster than a leaking run grows gigabytes.
const heapCheckStride = 64

// Snapshot is the flight-recorder state attached to a RunError: enough to
// localise a wedged or runaway run without re-running it under a debugger.
type Snapshot struct {
	// At is the simulation time at the stop point; Events is how many
	// events the bounded run had fired, and Pending how many were still
	// queued.
	At      units.Time `json:"at_ns"`
	Events  uint64     `json:"events"`
	Pending int        `json:"pending"`
	// EngineEvents is the engine's lifetime fired-event counter (panics
	// in event callbacks report it, making stacks cross-referenceable).
	EngineEvents uint64 `json:"engine_events"`

	Delivered units.Size   `json:"delivered_bytes"`
	Drops     int64        `json:"drops"`
	Packets   PacketCensus `json:"packets"`

	// Channels lists the non-idle channels (occupied ingress or backlogged
	// egress), ordered by (node, port, priority) and capped at
	// maxSnapshotChannels; ChannelsTruncated counts the omitted ones and
	// ChannelsNonIdle the fabric-wide total, so a capped dump is never
	// misread as the complete picture.
	Channels          []ChannelDump `json:"channels,omitempty"`
	ChannelsTruncated int           `json:"channels_truncated,omitempty"`
	ChannelsNonIdle   int           `json:"channels_non_idle,omitempty"`
}

// String renders the snapshot as a human-readable flight-recorder report.
func (s *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: t=%v events=%d (engine %d) pending=%d\n",
		s.At, s.Events, s.EngineEvents, s.Pending)
	fmt.Fprintf(&b, "  delivered=%v drops=%d\n", s.Delivered, s.Drops)
	c := s.Packets
	fmt.Fprintf(&b, "  live packets: %d (ingress %d, egress %d, transmitting %d, on wire %d)\n",
		c.Total(), c.InputQueued, c.EgressQueued, c.Transmitting, c.OnWire)
	for _, ch := range s.Channels {
		fmt.Fprintf(&b, "  %s port %d prio %d: occupancy=%v queued=%v rate=%v",
			ch.Node, ch.Port, ch.Prio, ch.Occupancy, ch.QueuedBytes, ch.Rate)
		if ch.HighWater > 0 {
			fmt.Fprintf(&b, " highwater=%v", ch.HighWater)
		}
		if ch.LastStage >= 0 {
			fmt.Fprintf(&b, " stage=%d/max %d", ch.LastStage, ch.MaxStage)
		}
		b.WriteString("\n")
	}
	if s.ChannelsTruncated > 0 {
		fmt.Fprintf(&b, "  ... %d more non-idle channels (%d of %d shown)\n",
			s.ChannelsTruncated, len(s.Channels), s.ChannelsNonIdle)
	}
	return b.String()
}

// Snapshot captures the flight-recorder state of the network right now. It
// allocates (diagnostic path) and may be called at any time, not only from
// the governor.
func (n *Network) Snapshot() *Snapshot {
	s := &Snapshot{
		At:           n.eng.Now(),
		Pending:      n.eng.Pending(),
		EngineEvents: n.eng.Fired(),
		Delivered:    n.TotalDelivered(),
		Drops:        n.drops,
	}
	for _, nd := range n.nodes {
		for _, p := range nd.ports {
			if p.txPkt != nil {
				s.Packets.Transmitting++
			}
			s.Packets.OnWire += p.prop.len()
			for prio := 0; prio < n.cfg.Priorities; prio++ {
				ch := p.cb + prio
				s.Packets.InputQueued += n.inq[ch].len()
				for i := 0; i < p.slots; i++ {
					s.Packets.EgressQueued += n.voqs[p.voqBase+prio*p.slots+i].q.len()
				}
				occ := n.occupancy[ch]
				queued := n.queuedBytes[ch]
				if occ == 0 && queued == 0 {
					continue
				}
				s.ChannelsNonIdle++
				if len(s.Channels) >= maxSnapshotChannels {
					s.ChannelsTruncated++
					continue
				}
				dump := ChannelDump{
					Node: n.topo.Node(nd.id).Name, Port: p.local, Prio: prio,
					Occupancy: occ, QueuedBytes: queued,
					LastStage: -1, MaxStage: -1,
				}
				if snd := n.senders[ch]; snd != nil {
					dump.Rate = snd.Rate()
				}
				if reg := n.metrics; reg != nil {
					c := reg.Counter(ch)
					dump.HighWater = c.HighWater
					dump.LastStage = c.LastStage
					dump.MaxStage = c.MaxStage
				}
				s.Channels = append(s.Channels, dump)
			}
		}
	}
	return s
}

// RunBounded advances the simulation to the given time like Run, but under
// a governor: the context is polled cooperatively every Budget.CheckEvery
// events, event and wall-clock budgets are enforced, and the stall watchdog
// detects livelock (events firing with neither sim time nor delivery
// advancing). It returns nil when the run reached the horizon (or drained
// its queue) within budget, and a *RunError with a flight-recorder snapshot
// otherwise. The governor detaches when the call returns, so subsequent
// plain Run calls pay nothing.
func (n *Network) RunBounded(ctx context.Context, until units.Time, b Budget) error {
	check := b.CheckEvery
	if check == 0 {
		check = 4096
	}
	eng := n.eng
	start := eng.Fired()
	var deadline time.Time
	if b.MaxWall > 0 {
		deadline = time.Now().Add(b.MaxWall)
	}
	// Stall watchdog state: progress is sim time, delivered bytes or drops
	// advancing since the last check.
	lastNow := eng.Now()
	lastDelivered := n.TotalDelivered()
	lastDrops := n.drops
	stallSince := start
	var ticks uint64

	var trip *RunError
	eng.SetHook(check, func() bool {
		if err := ctx.Err(); err != nil {
			trip = &RunError{Reason: StopCancelled, Cause: err}
			return false
		}
		fired := eng.Fired() - start
		if b.MaxEvents > 0 && fired >= b.MaxEvents {
			trip = &RunError{Reason: StopEventBudget}
			return false
		}
		if b.MaxWall > 0 && time.Now().After(deadline) {
			trip = &RunError{Reason: StopWallBudget}
			return false
		}
		if b.MaxHeap > 0 && ticks%heapCheckStride == 0 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > b.MaxHeap {
				trip = &RunError{Reason: StopHeapBudget}
				return false
			}
		}
		ticks++
		if b.StallEvents > 0 {
			now, delivered, drops := eng.Now(), n.TotalDelivered(), n.drops
			if now != lastNow || delivered != lastDelivered || drops != lastDrops {
				lastNow, lastDelivered, lastDrops = now, delivered, drops
				stallSince = eng.Fired()
			} else if eng.Fired()-stallSince >= b.StallEvents {
				trip = &RunError{Reason: StopStalled}
				return false
			}
		}
		return true
	})
	defer eng.ClearHook()
	eng.Run(until)
	if trip != nil {
		trip.Snapshot = n.Snapshot()
		trip.Snapshot.Events = eng.Fired() - start
		return trip
	}
	return nil
}
