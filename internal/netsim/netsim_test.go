package netsim

import (
	"testing"

	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

func pfcFactory() flowcontrol.Factory { return flowcontrol.NewPFCDefault() }

func gfcFactory() flowcontrol.Factory { return flowcontrol.NewGFCBuffer(flowcontrol.GFCBufferConfig{}) }

func cbfcFactory() flowcontrol.Factory {
	return flowcontrol.NewCBFC(flowcontrol.CBFCConfig{Period: 10 * units.Microsecond})
}

func gfcTimeFactory() flowcontrol.Factory {
	return flowcontrol.NewGFCTime(flowcontrol.GFCTimeConfig{})
}

func baseConfig(f flowcontrol.Factory) Config {
	return Config{
		BufferSize:  300 * units.KB,
		FlowControl: f,
	}
}

// spfFlow builds a flow routed by SPF.
func spfFlow(t *testing.T, topo *topology.Topology, id int, src, dst string, size units.Size) *Flow {
	t.Helper()
	tab := routing.NewSPF(topo)
	s, d := topo.MustLookup(src), topo.MustLookup(dst)
	path, err := tab.Path(s, d, uint64(id))
	if err != nil {
		t.Fatal(err)
	}
	return &Flow{ID: id, Src: s, Dst: d, Size: size, Path: path}
}

func TestSingleFlowDelivery(t *testing.T) {
	topo := topology.Linear(2, topology.DefaultLinkParams())
	for name, f := range map[string]flowcontrol.Factory{
		"pfc": pfcFactory(), "gfc": gfcFactory(),
		"cbfc": cbfcFactory(), "gfc-time": gfcTimeFactory(),
	} {
		t.Run(name, func(t *testing.T) {
			n, err := New(topo, baseConfig(f))
			if err != nil {
				t.Fatal(err)
			}
			fl := spfFlow(t, topo, 1, "H1", "H2", 150*units.KB)
			if err := n.AddFlow(fl, 0); err != nil {
				t.Fatal(err)
			}
			n.Run(10 * units.Millisecond)
			if !fl.Done() {
				t.Fatalf("flow not done: delivered %v of %v", fl.Delivered, fl.Size)
			}
			if n.Drops() != 0 {
				t.Fatalf("drops = %d", n.Drops())
			}
			// 150KB over 3 links at 10G: ideal ≈ 100 pkts × 1.2µs
			// + pipeline; FCT must be ≥ serialization time of the
			// whole flow on one link and < 10× that.
			ideal := units.TransmissionTime(150*units.KB, 10*units.Gbps)
			if fl.FCT() < ideal {
				t.Fatalf("FCT %v below physical minimum %v", fl.FCT(), ideal)
			}
			if fl.FCT() > 10*ideal {
				t.Fatalf("FCT %v unreasonably slow (ideal %v)", fl.FCT(), ideal)
			}
		})
	}
}

func TestLineRateThroughput(t *testing.T) {
	// A single unbounded flow must achieve ≈ line rate under every FC.
	topo := topology.Linear(2, topology.DefaultLinkParams())
	for name, f := range map[string]flowcontrol.Factory{
		"pfc": pfcFactory(), "gfc": gfcFactory(),
		"cbfc": cbfcFactory(), "gfc-time": gfcTimeFactory(),
	} {
		t.Run(name, func(t *testing.T) {
			n, err := New(topo, baseConfig(f))
			if err != nil {
				t.Fatal(err)
			}
			fl := spfFlow(t, topo, 1, "H1", "H2", 0)
			if err := n.AddFlow(fl, 0); err != nil {
				t.Fatal(err)
			}
			const dur = 10 * units.Millisecond
			n.Run(dur)
			rate := units.RateOf(fl.Delivered, dur)
			if rate < 9.5*units.Gbps {
				t.Fatalf("throughput %v, want ≈10Gbps", rate)
			}
			if n.Drops() != 0 {
				t.Fatalf("drops = %d", n.Drops())
			}
		})
	}
}

func TestTwoToOneFairSharing(t *testing.T) {
	// Figure 5 scenario: two line-rate senders into one receiver. Both
	// must get ≈5G and no packets may be lost.
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	for name, f := range map[string]flowcontrol.Factory{
		"pfc": pfcFactory(), "gfc": gfcFactory(),
		"cbfc": cbfcFactory(), "gfc-time": gfcTimeFactory(),
	} {
		t.Run(name, func(t *testing.T) {
			n, err := New(topo, baseConfig(f))
			if err != nil {
				t.Fatal(err)
			}
			f1 := spfFlow(t, topo, 1, "H1", "H3", 0)
			f2 := spfFlow(t, topo, 2, "H2", "H3", 0)
			if err := n.AddFlow(f1, 0); err != nil {
				t.Fatal(err)
			}
			if err := n.AddFlow(f2, 0); err != nil {
				t.Fatal(err)
			}
			const dur = 20 * units.Millisecond
			n.Run(dur)
			if n.Drops() != 0 {
				t.Fatalf("drops = %d", n.Drops())
			}
			r1 := units.RateOf(f1.Delivered, dur)
			r2 := units.RateOf(f2.Delivered, dur)
			if r1 < 4*units.Gbps || r1 > 6*units.Gbps {
				t.Errorf("f1 rate %v, want ≈5G", r1)
			}
			if r2 < 4*units.Gbps || r2 > 6*units.Gbps {
				t.Errorf("f2 rate %v, want ≈5G", r2)
			}
			total := units.RateOf(f1.Delivered+f2.Delivered, dur)
			if total < 9*units.Gbps {
				t.Errorf("aggregate %v, bottleneck underutilised", total)
			}
		})
	}
}

func TestGFCQueueStabilises(t *testing.T) {
	// Under buffer-based GFC the congested ingress queue must stay
	// strictly below the buffer ceiling and the sender rate must stay
	// positive — hold-and-wait eliminated.
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	cfg := baseConfig(gfcFactory())
	var maxQ units.Size
	cfg.Trace = &Trace{
		OnQueue: func(_ units.Time, node topology.NodeID, _, _ int, q units.Size) {
			if topo.Node(node).Kind == topology.Switch && q > maxQ {
				maxQ = q
			}
		},
	}
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range []string{"H1", "H2"} {
		if err := n.AddFlow(spfFlow(t, topo, i+1, src, "H3", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(20 * units.Millisecond)
	if n.Drops() != 0 {
		t.Fatalf("drops = %d", n.Drops())
	}
	if maxQ >= cfg.BufferSize {
		t.Fatalf("queue reached buffer ceiling: %v", maxQ)
	}
	// Upstream host senders must never be at rate 0 now.
	h1 := topo.MustLookup("H1")
	if r := n.SenderRate(h1, 0, 0); r <= 0 {
		t.Fatalf("H1 sender rate %v — hold and wait", r)
	}
}

func TestPFCPausesUpstream(t *testing.T) {
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	cfg := baseConfig(pfcFactory())
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range []string{"H1", "H2"} {
		if err := n.AddFlow(spfFlow(t, topo, i+1, src, "H3", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Run until the queue builds; with a 2:1 overload the ingress
	// queues cross XOFF quickly and hosts get paused at least once.
	sawPause := false
	for i := 0; i < 2000 && !sawPause; i++ {
		n.Run(n.Now() + 10*units.Microsecond)
		h1 := topo.MustLookup("H1")
		if n.SenderRate(h1, 0, 0) == 0 {
			sawPause = true
		}
	}
	if !sawPause {
		t.Fatal("PFC never paused the overloading host")
	}
	if n.Drops() != 0 {
		t.Fatalf("drops = %d", n.Drops())
	}
}

func TestAddFlowValidation(t *testing.T) {
	topo := topology.Linear(2, topology.DefaultLinkParams())
	n, err := New(topo, baseConfig(pfcFactory()))
	if err != nil {
		t.Fatal(err)
	}
	h1 := topo.MustLookup("H1")
	h2 := topo.MustLookup("H2")
	s1 := topo.MustLookup("S1")
	good := spfFlow(t, topo, 1, "H1", "H2", units.KB)

	if err := n.AddFlow(&Flow{Src: h1, Dst: h2}, 0); err == nil {
		t.Error("empty path accepted")
	}
	bad := *good
	bad.Src = h2
	if err := n.AddFlow(&bad, 0); err == nil {
		t.Error("mismatched src accepted")
	}
	bad2 := *good
	bad2.Dst = s1
	if err := n.AddFlow(&bad2, 0); err == nil {
		t.Error("non-host dst accepted")
	}
	bad3 := *good
	bad3.Priority = 7
	if err := n.AddFlow(&bad3, 0); err == nil {
		t.Error("out-of-range priority accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	topo := topology.Linear(2, topology.DefaultLinkParams())
	if _, err := New(topo, Config{FlowControl: pfcFactory()}); err == nil {
		t.Error("zero buffer accepted")
	}
	if _, err := New(topo, Config{BufferSize: units.KB}); err == nil {
		t.Error("nil factory accepted")
	}
	if _, err := New(topo, Config{BufferSize: units.MB, FlowControl: pfcFactory(), Priorities: 9}); err == nil {
		t.Error("9 priorities accepted")
	}
}

func TestECNMarking(t *testing.T) {
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	cfg := baseConfig(gfcFactory())
	cfg.ECNThreshold = 40 * units.KB
	marked := 0
	total := 0
	cfg.Trace = &Trace{
		OnDeliver: func(_ units.Time, _ *Flow, pkt *Packet) {
			total++
			if pkt.ECN {
				marked++
			}
		},
	}
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range []string{"H1", "H2"} {
		if err := n.AddFlow(spfFlow(t, topo, i+1, src, "H3", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(10 * units.Millisecond)
	if total == 0 || marked == 0 {
		t.Fatalf("marked %d of %d packets; expected congestion marking", marked, total)
	}
}

type fixedPacer struct {
	rate units.Rate
	next units.Time
}

func (p *fixedPacer) NextAllowed(now units.Time, _ units.Size) units.Time { return p.next }
func (p *fixedPacer) OnRelease(now units.Time, size units.Size) {
	gap := units.TransmissionTime(size, p.rate)
	if p.next < now {
		p.next = now
	}
	p.next += gap
}

func TestPacerLimitsFlow(t *testing.T) {
	topo := topology.Linear(2, topology.DefaultLinkParams())
	n, err := New(topo, baseConfig(pfcFactory()))
	if err != nil {
		t.Fatal(err)
	}
	fl := spfFlow(t, topo, 1, "H1", "H2", 0)
	fl.Pacer = &fixedPacer{rate: 1 * units.Gbps}
	if err := n.AddFlow(fl, 0); err != nil {
		t.Fatal(err)
	}
	const dur = 10 * units.Millisecond
	n.Run(dur)
	rate := units.RateOf(fl.Delivered, dur)
	if rate < 0.9*units.Gbps || rate > 1.1*units.Gbps {
		t.Fatalf("paced rate %v, want ≈1Gbps", rate)
	}
}

func TestFeedbackAccounting(t *testing.T) {
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	cfg := baseConfig(gfcFactory())
	var traced units.Size
	cfg.Trace = &Trace{
		OnFeedback: func(_ units.Time, _, _ topology.NodeID, _ int, wire units.Size) {
			traced += wire
		},
	}
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range []string{"H1", "H2"} {
		if err := n.AddFlow(spfFlow(t, topo, i+1, src, "H3", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(5 * units.Millisecond)
	if n.FeedbackBytes() == 0 {
		t.Fatal("no feedback recorded under congestion")
	}
	if traced != n.FeedbackBytes() {
		t.Fatalf("trace %v != network %v", traced, n.FeedbackBytes())
	}
	// GFC's overhead must be a tiny fraction of capacity (§4.2: <0.7%).
	frac := float64(n.FeedbackBytes().Bits()) / (10e9 * (5 * units.Millisecond).Seconds())
	// Several channels share the accounting; even summed it stays small.
	if frac > 0.05 {
		t.Fatalf("feedback consumed %.2f%% of one link-interval", frac*100)
	}
}

func TestMultiPriorityIsolation(t *testing.T) {
	// Two priorities on the same bottleneck: each gets its own FC state
	// and both make progress.
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	cfg := baseConfig(gfcFactory())
	cfg.Priorities = 2
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f1 := spfFlow(t, topo, 1, "H1", "H3", 0)
	f1.Priority = 0
	f2 := spfFlow(t, topo, 2, "H2", "H3", 0)
	f2.Priority = 1
	if err := n.AddFlow(f1, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AddFlow(f2, 0); err != nil {
		t.Fatal(err)
	}
	const dur = 10 * units.Millisecond
	n.Run(dur)
	if n.Drops() != 0 {
		t.Fatalf("drops = %d", n.Drops())
	}
	for _, f := range []*Flow{f1, f2} {
		r := units.RateOf(f.Delivered, dur)
		if r < 3*units.Gbps {
			t.Errorf("flow %d rate %v, want fair share ≈5G", f.ID, r)
		}
	}
}

func TestChannelStates(t *testing.T) {
	topo := topology.Linear(2, topology.DefaultLinkParams())
	n, err := New(topo, baseConfig(pfcFactory()))
	if err != nil {
		t.Fatal(err)
	}
	fl := spfFlow(t, topo, 1, "H1", "H2", 0)
	if err := n.AddFlow(fl, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(units.Millisecond)
	states := n.ChannelStates()
	// linear-2: links H1-S1, H2-S2, S1-S2 → 6 directed channels.
	if len(states) != 6 {
		t.Fatalf("channels = %d, want 6", len(states))
	}
	var progress int
	for _, cs := range states {
		if cs.TxBytes > 0 {
			progress++
		}
	}
	if progress < 3 {
		t.Fatalf("only %d channels progressed; flow path has 3", progress)
	}
	if n.TotalDelivered() == 0 {
		t.Fatal("TotalDelivered zero")
	}
}

func TestStaggeredStart(t *testing.T) {
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	n, err := New(topo, baseConfig(gfcFactory()))
	if err != nil {
		t.Fatal(err)
	}
	f1 := spfFlow(t, topo, 1, "H1", "H3", 0)
	f2 := spfFlow(t, topo, 2, "H2", "H3", 0)
	if err := n.AddFlow(f1, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AddFlow(f2, 5*units.Millisecond); err != nil {
		t.Fatal(err)
	}
	n.Run(10 * units.Millisecond)
	// f1 alone for 5ms at ~10G then shares: delivered ∈ (7.5G·10ms·avg).
	r1 := units.RateOf(f1.Delivered, 10*units.Millisecond)
	if r1 < 6.5*units.Gbps {
		t.Errorf("f1 average %v, want ≈7.5G (solo then shared)", r1)
	}
	r2 := units.RateOf(f2.Delivered, 5*units.Millisecond)
	if r2 < 4*units.Gbps || r2 > 6*units.Gbps {
		t.Errorf("f2 rate %v over its active 5ms, want ≈5G", r2)
	}
}
