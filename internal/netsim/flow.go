package netsim

import (
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// Pacer rate-limits one flow at its source NIC; congestion controls such as
// DCQCN implement it. The zero pacer (nil) means unpaced: the flow offers
// packets as fast as the NIC drains them.
type Pacer interface {
	// NextAllowed reports the earliest time the flow's next packet of
	// the given size may be released to the NIC queue.
	NextAllowed(now units.Time, size units.Size) units.Time
	// OnRelease records that a packet of the given size was released at
	// the given time.
	OnRelease(now units.Time, size units.Size)
}

// Flow is one unidirectional transfer from Src to Dst.
type Flow struct {
	ID       int
	Src, Dst topology.NodeID
	// Size is the total bytes to transfer; 0 means unbounded (the flow
	// never completes), the paper's "hosts generate packets at line
	// rate" workload.
	Size     units.Size
	Priority int
	// Path is the source route; stamped on every packet.
	Path []routing.Hop
	// Pacer optionally rate-limits the flow at the source (DCQCN).
	Pacer Pacer
	// OnDone, if set, is called once when the flow completes (in
	// addition to any Trace.OnFlowDone hook); workload generators use it
	// to chain successor flows.
	OnDone func(*Flow)
	// OnPacket, if set, is called for every packet delivered to Dst;
	// congestion controls use it as their notification point (e.g.
	// DCQCN's ECN-echo).
	OnPacket func(*Flow, *Packet)

	// Runtime state, owned by the Network.
	released  units.Size // bytes handed to the NIC queue
	sent      units.Size // bytes fully serialised by the source NIC
	Delivered units.Size // bytes received at Dst
	Started   units.Time
	Finished  units.Time // delivery time of the last byte; 0 while active
	seq       int64
	active    bool
}

// Done reports whether a finite flow has been fully delivered.
func (f *Flow) Done() bool { return f.Size > 0 && f.Delivered >= f.Size }

// FCT reports the flow completion time; valid only once Done.
func (f *Flow) FCT() units.Time { return f.Finished - f.Started }

// remaining reports bytes not yet released to the NIC; unbounded flows
// always have an MTU's worth.
func (f *Flow) remaining(mtu units.Size) units.Size {
	if f.Size == 0 {
		return mtu
	}
	if r := f.Size - f.released; r > 0 {
		return r
	}
	return 0
}
