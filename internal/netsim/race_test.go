//go:build race

package netsim

// raceEnabled reports whether the race detector is active; its
// instrumentation inflates allocs/op, so the alloc-budget gate skips.
const raceEnabled = true
