package netsim

// pktQueue is a head-indexed packet FIFO with a reusable backing array. The
// naive `q = append(q, pkt)` / `q = q[1:]` FIFO consumes its backing array
// from the front, so append reallocates roughly once per packet — that
// pattern was 80%+ of the forwarding path's steady-state allocations. This
// queue instead advances a head index on pop and, when the array fills while
// a consumed prefix exists, compacts the live suffix back to the front in
// place. Steady state (bounded depth) therefore allocates nothing.
//
// The zero value is an empty queue, ready to use.
type pktQueue struct {
	buf  []*Packet
	head int
}

// len reports the number of queued packets.
func (q *pktQueue) len() int { return len(q.buf) - q.head }

// empty reports whether the queue holds no packets.
func (q *pktQueue) empty() bool { return len(q.buf) == q.head }

// front returns the head packet without removing it. The queue must not be
// empty.
func (q *pktQueue) front() *Packet { return q.buf[q.head] }

// push appends pkt at the tail.
func (q *pktQueue) push(pkt *Packet) {
	if q.head > 0 && len(q.buf) == cap(q.buf) {
		// Full, but with dead space before head: compact in place
		// instead of letting append abandon the array.
		n := copy(q.buf, q.buf[q.head:])
		clear(q.buf[n:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, pkt)
}

// pop removes and returns the head packet. The queue must not be empty. The
// vacated slot is cleared so a recycled packet is not pinned by dead queue
// space.
func (q *pktQueue) pop() *Packet {
	pkt := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return pkt
}
