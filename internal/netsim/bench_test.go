package netsim

import (
	"testing"

	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// BenchmarkLinearForwarding drives a saturated 3-hop path for a fixed
// simulated interval per iteration: the hot loop of refill → kick →
// completeTx → arrive that every experiment spends its time in. ReportAllocs
// pins the effect of the packet free-list and the pre-bound port callbacks.
func BenchmarkLinearForwarding(b *testing.B) {
	topo := topology.Linear(3, topology.DefaultLinkParams())
	tab := routing.NewSPF(topo)
	src, dst := topo.MustLookup("H1"), topo.MustLookup("H3")
	path, err := tab.Path(src, dst, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		n, err := New(topo, baseConfig(gfcFactory()))
		if err != nil {
			b.Fatal(err)
		}
		f := &Flow{ID: 1, Src: src, Dst: dst, Path: path}
		if err := n.AddFlow(f, 0); err != nil {
			b.Fatal(err)
		}
		n.Run(units.Millisecond)
		if f.Delivered == 0 {
			b.Fatal("no delivery")
		}
		events += n.Engine().Fired()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkCongestedFabric exercises the 2:1 congestion regime where flow
// control wakes transmitters via scheduled kicks — the path that used to
// allocate a fresh closure per retry.
func BenchmarkCongestedFabric(b *testing.B) {
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	tab := routing.NewSPF(topo)
	type ep struct{ src, dst topology.NodeID }
	eps := []ep{
		{topo.MustLookup("H1"), topo.MustLookup("H3")},
		{topo.MustLookup("H2"), topo.MustLookup("H3")},
	}
	paths := make([][]routing.Hop, len(eps))
	for i, e := range eps {
		p, err := tab.Path(e.src, e.dst, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		paths[i] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		n, err := New(topo, baseConfig(gfcFactory()))
		if err != nil {
			b.Fatal(err)
		}
		for j, e := range eps {
			f := &Flow{ID: j + 1, Src: e.src, Dst: e.dst, Path: paths[j]}
			if err := n.AddFlow(f, 0); err != nil {
				b.Fatal(err)
			}
		}
		n.Run(units.Millisecond)
		events += n.Engine().Fired()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkLinearForwardingMetrics is BenchmarkLinearForwarding with a full
// registry (counters + occupancy series) attached — the enabled-cost
// companion to the disabled-cost guarantee TestAllocBudget enforces.
func BenchmarkLinearForwardingMetrics(b *testing.B) {
	topo := topology.Linear(3, topology.DefaultLinkParams())
	tab := routing.NewSPF(topo)
	src, dst := topo.MustLookup("H1"), topo.MustLookup("H3")
	path, err := tab.Path(src, dst, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		cfg := baseConfig(gfcFactory())
		cfg.Metrics = metrics.New(metrics.Options{SeriesCap: 256})
		n, err := New(topo, cfg)
		if err != nil {
			b.Fatal(err)
		}
		f := &Flow{ID: 1, Src: src, Dst: dst, Path: path}
		if err := n.AddFlow(f, 0); err != nil {
			b.Fatal(err)
		}
		n.Run(units.Millisecond)
		if f.Delivered == 0 {
			b.Fatal("no delivery")
		}
		events += n.Engine().Fired()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// TestAllocBudget is the allocation-regression gate: with metrics disabled,
// the two hot-path benchmarks must not allocate more per iteration than the
// budgets set from their measured baselines (157 allocs/op each after the
// struct-of-arrays flattening, head-indexed packet FIFOs, the per-network
// packet free-list and stage-table memoization; 3697 and 1855 before), with
// ~5% headroom for toolchain noise. An increase here means a closure,
// interface box, growing queue or map crept back into the refill/kick/arrive
// loop.
func TestAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget check skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocs/op")
	}
	for _, tc := range []struct {
		name   string
		bench  func(*testing.B)
		budget int64
	}{
		{"LinearForwarding", BenchmarkLinearForwarding, 165},
		{"CongestedFabric", BenchmarkCongestedFabric, 165},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := testing.Benchmark(tc.bench)
			if got := res.AllocsPerOp(); got > tc.budget {
				t.Errorf("%s allocates %d/op with metrics disabled, budget %d",
					tc.name, got, tc.budget)
			} else {
				t.Logf("%s: %d allocs/op (budget %d)", tc.name, got, tc.budget)
			}
		})
	}
}
