package netsim

import (
	"testing"

	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// BenchmarkLinearForwarding drives a saturated 3-hop path for a fixed
// simulated interval per iteration: the hot loop of refill → kick →
// completeTx → arrive that every experiment spends its time in. ReportAllocs
// pins the effect of the packet free-list and the pre-bound port callbacks.
func BenchmarkLinearForwarding(b *testing.B) {
	topo := topology.Linear(3, topology.DefaultLinkParams())
	tab := routing.NewSPF(topo)
	src, dst := topo.MustLookup("H1"), topo.MustLookup("H3")
	path, err := tab.Path(src, dst, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := New(topo, baseConfig(gfcFactory()))
		if err != nil {
			b.Fatal(err)
		}
		f := &Flow{ID: 1, Src: src, Dst: dst, Path: path}
		if err := n.AddFlow(f, 0); err != nil {
			b.Fatal(err)
		}
		n.Run(units.Millisecond)
		if f.Delivered == 0 {
			b.Fatal("no delivery")
		}
	}
}

// BenchmarkCongestedFabric exercises the 2:1 congestion regime where flow
// control wakes transmitters via scheduled kicks — the path that used to
// allocate a fresh closure per retry.
func BenchmarkCongestedFabric(b *testing.B) {
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	tab := routing.NewSPF(topo)
	type ep struct{ src, dst topology.NodeID }
	eps := []ep{
		{topo.MustLookup("H1"), topo.MustLookup("H3")},
		{topo.MustLookup("H2"), topo.MustLookup("H3")},
	}
	paths := make([][]routing.Hop, len(eps))
	for i, e := range eps {
		p, err := tab.Path(e.src, e.dst, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		paths[i] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := New(topo, baseConfig(gfcFactory()))
		if err != nil {
			b.Fatal(err)
		}
		for j, e := range eps {
			f := &Flow{ID: j + 1, Src: e.src, Dst: e.dst, Path: paths[j]}
			if err := n.AddFlow(f, 0); err != nil {
				b.Fatal(err)
			}
		}
		n.Run(units.Millisecond)
	}
}
