package netsim

import (
	"context"
	"hash/fnv"
	"testing"

	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/runner"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// traceHash runs a congested 2:1 scenario and folds every trace record —
// queue changes, arrivals, transmissions, deliveries, feedback — into an
// FNV-1a hash. Two runs of the same configuration must produce the same
// event sequence in the same order, so the hashes must match exactly.
func traceHash(t testing.TB, flowSize units.Size) uint64 {
	h := fnv.New64a()
	mix := func(vs ...uint64) {
		var buf [8]byte
		for _, v := range vs {
			for i := range buf {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	cfg := baseConfig(gfcFactory())
	cfg.Trace = &Trace{
		OnQueue: func(at units.Time, node topology.NodeID, port, prio int, q units.Size) {
			mix(1, uint64(at), uint64(node), uint64(port), uint64(prio), uint64(q))
		},
		OnArrival: func(at units.Time, node topology.NodeID, pkt *Packet) {
			mix(2, uint64(at), uint64(node), uint64(pkt.Flow.ID), uint64(pkt.Seq))
		},
		OnTransmit: func(at units.Time, node topology.NodeID, port int, pkt *Packet) {
			mix(3, uint64(at), uint64(node), uint64(port), uint64(pkt.Flow.ID), uint64(pkt.Seq))
		},
		OnDeliver: func(at units.Time, f *Flow, pkt *Packet) {
			mix(4, uint64(at), uint64(f.ID), uint64(pkt.Seq))
		},
		OnFeedback: func(at units.Time, from, to topology.NodeID, prio int, wire units.Size) {
			mix(5, uint64(at), uint64(from), uint64(to), uint64(prio), uint64(wire))
		},
	}
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	tab := routing.NewSPF(topo)
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst := topo.MustLookup("H3")
	for i, src := range []string{"H1", "H2"} {
		s := topo.MustLookup(src)
		path, err := tab.Path(s, dst, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		f := &Flow{ID: i + 1, Src: s, Dst: dst, Size: flowSize, Path: path}
		if err := n.AddFlow(f, 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(2 * units.Millisecond)
	return h.Sum64()
}

// TestTraceDeterminism is the regression guard for the event-core refactor:
// the pooled-event engine, the packet free-list and the pre-bound callbacks
// must not perturb event ordering. The full trace of a run is hashed and
// compared against a fresh run of the identical configuration.
func TestTraceDeterminism(t *testing.T) {
	a := traceHash(t, 200*units.KB)
	b := traceHash(t, 200*units.KB)
	if a != b {
		t.Fatalf("same scenario, different traces: %#x vs %#x", a, b)
	}
	if c := traceHash(t, 150*units.KB); c == a {
		t.Fatalf("different workloads produced identical trace hash %#x", a)
	}
}

// TestTraceDeterminismUnderParallelRunner re-runs the same scenario on a
// multi-worker pool: concurrent share-nothing simulations (and their
// sync.Pool packet recycling) must still each reproduce the serial trace.
func TestTraceDeterminismUnderParallelRunner(t *testing.T) {
	want := traceHash(t, 200*units.KB)
	const copies = 8
	jobs := make([]runner.Job[uint64], copies)
	for i := range jobs {
		jobs[i] = func(context.Context) (uint64, error) {
			return traceHash(t, 200*units.KB), nil
		}
	}
	for _, r := range runner.Run(context.Background(), jobs, 4) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Value != want {
			t.Fatalf("parallel run diverged: %#x, want %#x", r.Value, want)
		}
	}
}
