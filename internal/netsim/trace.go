package netsim

import (
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// Trace carries optional observation hooks. Every field may be nil. Hooks
// fire synchronously inside the simulation loop; they must not mutate the
// network. A *Packet passed to a hook is only valid for the duration of the
// callback: delivered and dropped packets return to a free list afterwards,
// so hooks must copy the fields they need rather than retain the pointer.
type Trace struct {
	// OnQueue fires after an ingress queue changes: node, local port,
	// priority, new occupancy.
	OnQueue func(t units.Time, node topology.NodeID, port, prio int, q units.Size)
	// OnArrival fires when a packet is fully received at a node (switch
	// admission or host delivery).
	OnArrival func(t units.Time, node topology.NodeID, pkt *Packet)
	// OnTransmit fires when a node finishes serialising a packet.
	OnTransmit func(t units.Time, node topology.NodeID, port int, pkt *Packet)
	// OnDeliver fires when the destination host receives a packet.
	OnDeliver func(t units.Time, f *Flow, pkt *Packet)
	// OnFlowDone fires when a finite flow completes.
	OnFlowDone func(t units.Time, f *Flow)
	// OnFeedback fires when a flow-control message is sent from the
	// ingress side at node `from` back to the egress side at node `to`;
	// wire is the frame size (the Figure 19 overhead accounting).
	OnFeedback func(t units.Time, from, to topology.NodeID, prio int, wire units.Size)
	// OnDrop fires on a (never expected) packet drop.
	OnDrop func(t units.Time, node topology.NodeID, pkt *Packet)
}

func (tr *Trace) queue(t units.Time, n topology.NodeID, port, prio int, q units.Size) {
	if tr != nil && tr.OnQueue != nil {
		tr.OnQueue(t, n, port, prio, q)
	}
}

func (tr *Trace) arrival(t units.Time, n topology.NodeID, pkt *Packet) {
	if tr != nil && tr.OnArrival != nil {
		tr.OnArrival(t, n, pkt)
	}
}

func (tr *Trace) transmit(t units.Time, n topology.NodeID, port int, pkt *Packet) {
	if tr != nil && tr.OnTransmit != nil {
		tr.OnTransmit(t, n, port, pkt)
	}
}

func (tr *Trace) deliver(t units.Time, f *Flow, pkt *Packet) {
	if tr != nil && tr.OnDeliver != nil {
		tr.OnDeliver(t, f, pkt)
	}
}

func (tr *Trace) flowDone(t units.Time, f *Flow) {
	if tr != nil && tr.OnFlowDone != nil {
		tr.OnFlowDone(t, f)
	}
}

func (tr *Trace) feedback(t units.Time, from, to topology.NodeID, prio int, wire units.Size) {
	if tr != nil && tr.OnFeedback != nil {
		tr.OnFeedback(t, from, to, prio, wire)
	}
}

func (tr *Trace) drop(t units.Time, n topology.NodeID, pkt *Packet) {
	if tr != nil && tr.OnDrop != nil {
		tr.OnDrop(t, n, pkt)
	}
}
