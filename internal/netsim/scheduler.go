package netsim

import (
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// This file is the egress scheduling and host injection machinery: which
// packet a transmitter picks next (kick, prioOrder, nextFromInputs), the
// SchedBlocking forwarding core (forward), and the host NIC refill path
// (refill, nextFlow).
//
// Both retry timers — kick and refill — use the pre-bound callbacks wired
// at construction. Scheduling an earlier wake cancels the pending later
// event instead of piling up guarded no-op events: with generation-counted
// cancellation in eventsim this is O(log n) and allocation-free. Dropping a
// superseded timer never loses a wake-up, because every blocked kick or
// refill re-derives and re-schedules its own next wake.

// refill keeps the host NIC queue at the configured depth, drawing packets
// from active flows round-robin and honouring per-flow pacers.
func (n *Network) refill(h *node) {
	if h.kind != topology.Host || len(h.ports) == 0 {
		return
	}
	p := h.ports[0]
	now := n.eng.Now()
	for p.totalQueued() < n.cfg.HostQueueDepth {
		f, wake := n.nextFlow(h, now)
		if f == nil {
			if wake != units.Never && wake > now {
				n.scheduleRefill(h, wake)
			}
			return
		}
		size := f.remaining(n.cfg.MTU)
		if size > n.cfg.MTU {
			size = n.cfg.MTU
		}
		if f.Pacer != nil {
			f.Pacer.OnRelease(now, size)
		}
		if h.burstBytes > 0 {
			if size >= h.burstBytes {
				h.burstBytes = 0
			} else {
				h.burstBytes -= size
			}
		}
		f.released += size
		pkt := n.newPacket()
		pkt.Flow, pkt.Seq, pkt.Size, pkt.Priority = f, f.seq, size, f.Priority
		pkt.Path = f.Path
		pkt.arrivalPort = -1
		f.seq++
		if f.Size > 0 && f.released >= f.Size {
			pkt.Last = true
			f.active = false
		}
		n.enqueue(p, pkt)
	}
	n.kick(p)
}

// nextFlow picks the next eligible flow on h (round-robin); when none is
// eligible it returns the earliest pacer wake time.
func (n *Network) nextFlow(h *node, now units.Time) (*Flow, units.Time) {
	wake := units.Never
	for i := 0; i < len(h.flows); i++ {
		f := h.flows[(h.rrFlow+i)%len(h.flows)]
		if !f.active || f.remaining(n.cfg.MTU) == 0 {
			continue
		}
		// A fault-injected burst budget bypasses pacing: the host floods
		// at NIC speed until the budget drains.
		if f.Pacer != nil && h.burstBytes == 0 {
			size := f.remaining(n.cfg.MTU)
			if size > n.cfg.MTU {
				size = n.cfg.MTU
			}
			if na := f.Pacer.NextAllowed(now, size); na > now {
				if na < wake {
					wake = na
				}
				continue
			}
		}
		h.rrFlow = (h.rrFlow + i + 1) % len(h.flows)
		return f, 0
	}
	return nil, wake
}

// scheduleRefill arms the host's refill timer for time at, replacing a
// pending later wake. h.refillAt is Never exactly when no timer is pending.
func (n *Network) scheduleRefill(h *node, at units.Time) {
	if h.refillAt <= at {
		return // an earlier (or same) wake is already pending
	}
	if h.refillAt != units.Never {
		n.eng.Cancel(h.refillEv)
	}
	h.refillAt = at
	h.refillEv = n.eng.Schedule(at, h.refillFn)
}

// kick tries to start a transmission on p. When flow control blocks every
// queued priority, it schedules a retry at the earliest wake time (feedback
// events also re-kick).
func (n *Network) kick(p *port) {
	if p.busy || p.adminDown || p.link.Failed {
		return
	}
	now := n.eng.Now()
	minWake := units.Never
	inputQueued := p.sched == SchedInputQueued && p.owner.kind == topology.Switch
	k := n.cfg.Priorities
	for _, prio := range n.prioOrder(p) {
		var pkt *Packet
		var freed *port // input whose FIFO head we consumed
		if inputQueued {
			head, in, wake := n.nextFromInputs(p, prio)
			if head == nil {
				if wake < minWake {
					minWake = wake
				}
				continue
			}
			n.inq[in.cb+prio].pop()
			n.rrVoq[p.cb+prio] = int32((in.local + 1) % len(p.owner.ports))
			pkt, freed = head, in
		} else if n.fq > 0 {
			head, slot, wake := n.nextQueued(p, prio)
			if head == nil {
				if wake < minWake {
					minWake = wake
				}
				continue
			}
			pkt = n.dequeue(p, prio, slot)
		} else {
			head, slot := n.nextPacket(p, prio)
			if head == nil {
				continue
			}
			ok, wake := n.senders[p.cb+prio].TrySend(head.Size)
			if !ok {
				if wake < minWake {
					minWake = wake
				}
				continue
			}
			pkt = n.dequeue(p, prio, slot)
			if p.sched == SchedBlocking && p.owner.kind == topology.Switch {
				// TX-ring space freed: resume a stalled
				// forwarding core (no-op when not stalled or
				// re-entered from forward itself).
				defer n.forward(p.owner, prio)
			}
		}
		p.rr = (prio + 1) % k
		if p.wrrCredit != nil && p.wrrCredit[prio] > 0 {
			p.wrrCredit[prio]--
		}
		p.busy = true
		dur := units.TransmissionTime(pkt.Size, p.capacity)
		p.txPkt, p.txPrio, p.txDur = pkt, prio, dur
		n.eng.After(dur, p.txDoneFn)
		if freed != nil {
			// The freed input's new head may target an idle egress.
			if q := &n.inq[freed.cb+prio]; !q.empty() {
				head := q.front()
				n.kick(p.owner.ports[head.Path[head.hop].Port])
			}
		}
		return
	}
	if minWake != units.Never && minWake > now {
		n.scheduleKick(p, minWake)
	}
}

// scheduleKick arms p's retry timer for time at, replacing a pending later
// wake. p.kickAt is Never exactly when no timer is pending.
func (n *Network) scheduleKick(p *port, at units.Time) {
	if p.kickAt <= at {
		return
	}
	if p.kickAt != units.Never {
		n.eng.Cancel(p.kickEv)
	}
	p.kickAt = at
	p.kickEv = n.eng.Schedule(at, p.kickFn)
}

// forward runs the switch's forwarding core for one priority under
// SchedBlocking: serve ingress FIFO heads round-robin, moving each into its
// egress TX ring. When the selected head's ring is full, the whole
// forwarding path for this priority stalls until that ring drains — the
// behaviour of a software switch retrying a full TX ring, and the coupling
// that lets one paused port freeze a switch.
func (n *Network) forward(nd *node, prio int) {
	fi := nd.nb + prio
	if n.forwarding[fi] {
		return
	}
	n.forwarding[fi] = true
	defer func() { n.forwarding[fi] = false }()
	for {
		if b := n.fwdBlocked[fi]; b != nil {
			// Still stalled: re-check the blocking ring.
			if n.voqs[b.voqBase+prio*b.slots].q.len() >= n.cfg.TxRing {
				return
			}
			n.fwdBlocked[fi] = nil
		}
		var in *port
		for j := 0; j < len(nd.ports); j++ {
			c := nd.ports[(int(n.fwdCursor[fi])+j)%len(nd.ports)]
			if !n.inq[c.cb+prio].empty() {
				in = c
				break
			}
		}
		if in == nil {
			return
		}
		head := n.inq[in.cb+prio].front()
		out := nd.ports[head.Path[head.hop].Port]
		if n.voqs[out.voqBase+prio*out.slots].q.len() >= n.cfg.TxRing {
			n.fwdBlocked[fi] = out // stall switch-wide
			return
		}
		n.inq[in.cb+prio].pop()
		n.fwdCursor[fi] = int32((in.local + 1) % len(nd.ports))
		n.enqueue(out, head)
		n.kick(out)
	}
}

// prioOrder returns the order in which p's priorities are offered the
// wire. Without configured weights it is plain round-robin from the cursor.
// With weights it is packet-based weighted round-robin with a
// work-conserving second phase: classes holding WRR credit are offered
// first (cheapest classes refilled when all credits drain), then the rest,
// so a weighted class can never be starved but spare capacity is never
// wasted. The returned slice is p's reusable scratch buffer: valid until
// the next prioOrder call for p, which is safe because kick finishes with
// the order before any nested kick can touch a *different* port's scratch,
// and a nested kick of p itself bails on the busy flag first.
func (n *Network) prioOrder(p *port) []int {
	k := n.cfg.Priorities
	if k == 1 {
		return oneZero
	}
	order := p.prioScratch[:0]
	if n.cfg.PriorityWeights == nil {
		for i := 0; i < k; i++ {
			order = append(order, (p.rr+i)%k)
		}
		return order
	}
	if p.wrrCredit == nil {
		p.wrrCredit = make([]int, k)
	}
	total := 0
	for _, c := range p.wrrCredit {
		total += c
	}
	if total == 0 {
		copy(p.wrrCredit, n.cfg.PriorityWeights)
	}
	for i := 0; i < k; i++ {
		if pr := (p.rr + i) % k; p.wrrCredit[pr] > 0 {
			order = append(order, pr)
		}
	}
	for i := 0; i < k; i++ {
		if pr := (p.rr + i) % k; p.wrrCredit[pr] == 0 {
			order = append(order, pr)
		}
	}
	return order
}

// oneZero avoids allocating for the ubiquitous single-priority case.
var oneZero = []int{0}

// nextQueued scans p's physical queues round-robin (FlowQueues > 0) for a
// head packet the per-queue flow controller permits. A paused queue blocks
// only its own flows; the scan moves on to the next backlogged queue — the
// HoL-blocking elimination that is BFC's whole point. Returns the packet and
// its queue, or (nil, -1, wake) with the earliest retry time.
func (n *Network) nextQueued(p *port, prio int) (*Packet, int, units.Time) {
	qs := n.queueSenders[p.cb+prio]
	base := p.voqBase + prio*p.slots
	minWake := units.Never
	for i := 0; i < p.slots; i++ {
		k := (int(n.rrVoq[p.cb+prio]) + i) % p.slots
		v := &n.voqs[base+k]
		if v.q.empty() {
			continue
		}
		head := v.q.front()
		ok, wake := qs.TrySendQueue(k, head.Size)
		if !ok {
			if wake < minWake {
				minWake = wake
			}
			continue
		}
		return head, k, 0
	}
	return nil, -1, minWake
}

// nextFromInputs scans the owner's ingress FIFOs round-robin for a head
// packet bound for egress p at the given priority that flow control permits.
// It returns the packet and its input port, or (nil, nil, wake) where wake
// is the earliest retry time (units.Never to wait for feedback).
func (n *Network) nextFromInputs(p *port, prio int) (*Packet, *port, units.Time) {
	ports := p.owner.ports
	minWake := units.Never
	for j := 0; j < len(ports); j++ {
		in := ports[(int(n.rrVoq[p.cb+prio])+j)%len(ports)]
		q := &n.inq[in.cb+prio]
		if q.empty() {
			continue
		}
		head := q.front()
		if head.Path[head.hop].Port != p.local {
			continue // head-of-line: only the head is eligible
		}
		ok, wake := n.senders[p.cb+prio].TrySend(head.Size)
		if !ok {
			// Flow control gates the whole egress for this
			// priority; no other input can do better.
			return nil, nil, wake
		}
		return head, in, 0
	}
	return nil, nil, minWake
}
