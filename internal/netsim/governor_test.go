package netsim

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// governedNet builds a small two-host network with one unbounded flow, the
// canvas for governor tests.
func governedNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	topo := topology.Linear(2, topology.DefaultLinkParams())
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fl := spfFlow(t, topo, 1, "H1", "H2", 0)
	if err := n.AddFlow(fl, 0); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRunBoundedUnbudgetedMatchesRun(t *testing.T) {
	a := governedNet(t, baseConfig(gfcFactory()))
	b := governedNet(t, baseConfig(gfcFactory()))
	a.Run(5 * units.Millisecond)
	if err := b.RunBounded(context.Background(), 5*units.Millisecond, Budget{}); err != nil {
		t.Fatalf("unbudgeted RunBounded: %v", err)
	}
	if a.TotalDelivered() != b.TotalDelivered() || a.Now() != b.Now() ||
		a.Engine().Fired() != b.Engine().Fired() {
		t.Fatalf("RunBounded diverged from Run: delivered %v/%v, now %v/%v, fired %d/%d",
			a.TotalDelivered(), b.TotalDelivered(), a.Now(), b.Now(),
			a.Engine().Fired(), b.Engine().Fired())
	}
}

func TestEventBudgetTrips(t *testing.T) {
	n := governedNet(t, baseConfig(gfcFactory()))
	err := n.RunBounded(context.Background(), units.Never, Budget{
		MaxEvents: 10_000, CheckEvery: 64,
	})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Reason != StopEventBudget {
		t.Fatalf("reason = %v, want event budget", re.Reason)
	}
	if re.Snapshot == nil {
		t.Fatal("no flight-recorder snapshot attached")
	}
	if re.Snapshot.Events < 10_000 || re.Snapshot.Events >= 10_000+64 {
		t.Fatalf("tripped after %d events, want within one check interval of 10000", re.Snapshot.Events)
	}
	if re.Snapshot.Delivered == 0 {
		t.Fatal("snapshot shows no delivery despite an active line-rate flow")
	}
}

func TestWatchdogTripsOnLivelock(t *testing.T) {
	n := governedNet(t, baseConfig(gfcFactory()))
	// A zero-delay self-rescheduling event: sim time freezes while events
	// fire — the exact signature of an event-loop livelock.
	var spin func()
	eng := n.Engine()
	spin = func() { eng.After(0, spin) }
	eng.Schedule(units.Millisecond, spin)
	err := n.RunBounded(context.Background(), 10*units.Millisecond, Budget{
		StallEvents: 50_000, CheckEvery: 256,
	})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("livelocked run returned %v, want *RunError", err)
	}
	if re.Reason != StopStalled {
		t.Fatalf("reason = %v, want stalled", re.Reason)
	}
	if got := re.Snapshot.At; got != units.Millisecond {
		t.Fatalf("stall detected at t=%v, livelock pinned the clock at 1ms", got)
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("error text %q does not name the stall", err)
	}
}

func TestWatchdogIgnoresSlowProgress(t *testing.T) {
	// A 1ns-step self-rescheduling chain fires a huge number of events,
	// delivers nothing, but keeps sim time crawling forward: slow, not
	// livelocked. The watchdog must not false-positive on it.
	topo := topology.Linear(2, topology.DefaultLinkParams())
	n, err := New(topo, baseConfig(gfcFactory()))
	if err != nil {
		t.Fatal(err)
	}
	eng := n.Engine()
	var crawl func()
	crawl = func() {
		if eng.Now() < 200*units.Microsecond {
			eng.After(1, crawl)
		}
	}
	eng.Schedule(0, crawl)
	if err := n.RunBounded(context.Background(), units.Millisecond, Budget{
		StallEvents: 1000, CheckEvery: 16,
	}); err != nil {
		t.Fatalf("slow-but-progressing run tripped the watchdog: %v", err)
	}
}

func TestWallBudgetTrips(t *testing.T) {
	n := governedNet(t, baseConfig(gfcFactory()))
	// An unbounded livelock chain guarantees the run cannot end on its
	// own; only the wall clock stops it.
	eng := n.Engine()
	var spin func()
	spin = func() { eng.After(0, spin) }
	eng.Schedule(0, spin)
	err := n.RunBounded(context.Background(), units.Never, Budget{MaxWall: 20e6}) // 20ms
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Reason != StopWallBudget {
		t.Fatalf("reason = %v, want wall budget", re.Reason)
	}
}

func TestCancellation(t *testing.T) {
	n := governedNet(t, baseConfig(gfcFactory()))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := n.RunBounded(ctx, 10*units.Millisecond, Budget{CheckEvery: 64})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Reason != StopCancelled {
		t.Fatalf("reason = %v, want cancelled", re.Reason)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("RunError does not unwrap to context.Canceled")
	}
	if n.Now() >= 10*units.Millisecond {
		t.Fatal("cancelled run still reached the horizon")
	}
}

func TestGovernorDetaches(t *testing.T) {
	n := governedNet(t, baseConfig(gfcFactory()))
	if err := n.RunBounded(context.Background(), units.Millisecond, Budget{CheckEvery: 64}); err != nil {
		t.Fatal(err)
	}
	// After RunBounded returns, a plain Run must proceed unhindered even
	// though an earlier budget would long since have tripped.
	n.Run(20 * units.Millisecond)
	if n.Now() != 20*units.Millisecond {
		t.Fatalf("post-governor Run stopped at %v", n.Now())
	}
}

func TestSnapshotCensusAndMetrics(t *testing.T) {
	// Congest a 2-to-1 merge so the snapshot has live packets and occupied
	// channels to report, with a registry bound for high-water marks.
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	cfg := baseConfig(gfcFactory())
	reg := metrics.New(metrics.Options{})
	cfg.Metrics = reg
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range []string{"H1", "H2"} {
		if err := n.AddFlow(spfFlow(t, topo, i+1, src, "H3", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(5 * units.Millisecond)
	s := n.Snapshot()
	if s.At != 5*units.Millisecond {
		t.Fatalf("snapshot at %v", s.At)
	}
	if s.Packets.Total() == 0 {
		t.Fatal("census found no live packets in a congested merge")
	}
	if len(s.Channels) == 0 {
		t.Fatal("no non-idle channels reported")
	}
	var sawHighWater bool
	for _, ch := range s.Channels {
		if ch.HighWater > 0 {
			sawHighWater = true
		}
		if ch.Occupancy == 0 && ch.QueuedBytes == 0 {
			t.Fatalf("idle channel %s/%d/%d in snapshot", ch.Node, ch.Port, ch.Prio)
		}
	}
	if !sawHighWater {
		t.Fatal("metrics-bound snapshot carries no high-water marks")
	}
	out := s.String()
	for _, want := range []string{"flight recorder:", "live packets:", "occupancy="} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot rendering missing %q:\n%s", want, out)
		}
	}
}

func TestHeapBudgetTrips(t *testing.T) {
	n := governedNet(t, baseConfig(gfcFactory()))
	// A livelock chain keeps events firing forever; a 1-byte heap budget
	// trips on the first sampled check (tick 0 is always sampled).
	eng := n.Engine()
	var spin func()
	spin = func() { eng.After(0, spin) }
	eng.Schedule(0, spin)
	err := n.RunBounded(context.Background(), units.Never, Budget{
		MaxHeap: 1, CheckEvery: 64,
	})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Reason != StopHeapBudget {
		t.Fatalf("reason = %v, want heap budget", re.Reason)
	}
	if re.Snapshot == nil {
		t.Fatal("no flight-recorder snapshot attached")
	}
	if !strings.Contains(re.Error(), "heap budget") {
		t.Fatalf("error text %q", re.Error())
	}
}

func TestHeapBudgetGenerousDoesNotTrip(t *testing.T) {
	n := governedNet(t, baseConfig(gfcFactory()))
	if err := n.RunBounded(context.Background(), units.Millisecond, Budget{
		MaxHeap: 64 << 30, CheckEvery: 64,
	}); err != nil {
		t.Fatalf("64 GiB heap budget tripped on a 2-host run: %v", err)
	}
}

func TestSnapshotChannelAccounting(t *testing.T) {
	// On any snapshot, shown + truncated must equal the non-idle total, and
	// a dump under the cap must not be marked truncated.
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	n, err := New(topo, baseConfig(gfcFactory()))
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range []string{"H1", "H2"} {
		if err := n.AddFlow(spfFlow(t, topo, i+1, src, "H3", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(5 * units.Millisecond)
	s := n.Snapshot()
	if s.ChannelsNonIdle == 0 {
		t.Fatal("congested merge reports zero non-idle channels")
	}
	if got := len(s.Channels) + s.ChannelsTruncated; got != s.ChannelsNonIdle {
		t.Fatalf("shown %d + truncated %d != non-idle %d",
			len(s.Channels), s.ChannelsTruncated, s.ChannelsNonIdle)
	}
	if s.ChannelsNonIdle <= maxSnapshotChannels && s.ChannelsTruncated != 0 {
		t.Fatalf("under-cap snapshot claims %d truncated channels", s.ChannelsTruncated)
	}
	// A capped snapshot renders its accounting; force one by shrinking the
	// comparison instead of building a huge net: verify the String path on
	// a synthetic over-cap snapshot.
	big := &Snapshot{ChannelsNonIdle: 100, ChannelsTruncated: 36}
	big.Channels = make([]ChannelDump, maxSnapshotChannels)
	out := big.String()
	if !strings.Contains(out, "36 more non-idle channels (64 of 100 shown)") {
		t.Fatalf("truncation accounting missing from rendering:\n%s", out)
	}
}
