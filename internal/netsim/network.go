package netsim

import (
	"fmt"
	"math/rand"

	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/eventsim"
	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// arrivalEntry maps a pending link-arrival event to the port it will deliver
// to, indexed by the event's Slot. Entries go stale when their event fires or
// is absorbed; staleness is detected by comparing the stored handle (which
// carries the generation) against the engine's head, never by clearing.
type arrivalEntry struct {
	ev eventsim.Event
	p  *port
}

// Network is a runnable simulation instance. Each Network owns its own
// event engine and shares no mutable state with any other, so independent
// instances may run concurrently on different goroutines (the
// internal/runner worker pool relies on exactly this).
type Network struct {
	cfg    Config
	topo   *topology.Topology
	eng    *eventsim.Engine
	nodes  []*node
	flows  []*Flow
	drops  int64
	jitter *rand.Rand // nil when FeedbackJitter is zero
	// metrics is cfg.Metrics, cached so the hot path pays one nil check
	// when observability is disabled.
	metrics *metrics.Registry
	// faults is cfg.Faults, cached for the same single-nil-check reason.
	faults *faults.Injector

	feedbackBytes units.Size // total feedback wire bytes, all channels

	// Struct-of-arrays hot-path state. Per-channel arrays are indexed by
	// the dense channel index cb+prio (port.cb), which by construction
	// equals the metrics registry's ChannelIndex for the same (node,
	// port, priority) — one index addresses a channel everywhere. Dense
	// arrays keep each iteration's working set contiguous and make the
	// per-port construction cost a handful of bulk allocations instead of
	// ~10 small slices per port.
	ports       []port            // arena; node.ports points into it
	occupancy   []units.Size      // ingress buffer occupancy
	progress    []ingressProgress // ingress forwarding-progress records
	queuedBytes []units.Size      // egress backlog
	txBytes     []units.Size      // cumulative egress bytes serialised
	senders     []flowcontrol.Sender
	receivers   []flowcontrol.Receiver
	rrVoq       []int32    // round-robin cursor over VOQs / input ports
	inq         []pktQueue // ingress FIFOs (SchedInputQueued/SchedBlocking)
	// voqs and fedBytes have port-dependent strides; see port.voqBase and
	// port.fedBase.
	voqs     []voq
	fedBytes []units.Size

	// Per-flow queue state (Config.FlowQueues > 0, BFC). All nil/zero
	// otherwise, so the disabled cost is one int compare on the hot path.
	// fq is cfg.FlowQueues; qAssign maps flow ID → current assignment per
	// channel; slotFlows counts assigned flows per physical queue with the
	// same (voqBase + prio*slots + slot) indexing as voqs; queueSenders /
	// queueReceivers are the wired controllers' per-queue interfaces.
	fq             int
	qAssign        []map[int]flowAssign
	slotFlows      []int32
	queueSenders   []flowcontrol.QueueSender
	queueReceivers []flowcontrol.QueueReceiver

	// fbObs, when non-nil, observes every feedback message at its delivery
	// instant (after loss/delay faults have taken effect) — the in-data-
	// plane vantage point DCFIT-style deadlock detection needs. from is
	// the emitting (downstream) node, to the paused/credited (upstream)
	// node.
	fbObs func(from, to topology.NodeID, prio int, m flowcontrol.Message)
	// Per-(node, priority) SchedBlocking forwarding state, indexed
	// node.nb+prio.
	fwdCursor  []int32
	fwdBlocked []*port // egress whose full TX ring stalls forwarding
	forwarding []bool  // re-entrancy guard

	// arrEv maps pending arrival events to their ports (by event Slot)
	// so a delivery callback can absorb same-timestamp deliveries for
	// the same node straight off the head of the event queue.
	arrEv []arrivalEntry

	// Packet free list, per network: deterministic (unlike a sync.Pool,
	// which drains on GC) and allocated in arena chunks so a run costs a
	// few chunk allocations rather than one per live packet.
	freePkts []*Packet
	pktArena []Packet
}

// New builds a simulation of topo under cfg. Every live channel direction
// gets an independent flow controller per priority.
func New(topo *topology.Topology, cfg Config) (*Network, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, topo: topo, eng: eventsim.New()}
	if cfg.FeedbackJitter > 0 {
		n.jitter = rand.New(rand.NewSource(cfg.JitterSeed))
	}
	k := cfg.Priorities
	nn := topo.NumNodes()

	// Pass 1: size the dense arrays. The channel index layout must match
	// metrics.Registry.Bind exactly: channels in (node, port, priority)
	// order.
	totalPorts, totalVoqs, totalFed := 0, 0, 0
	for id := 0; id < nn; id++ {
		ats := topo.Ports(topology.NodeID(id))
		totalPorts += len(ats)
		slots := 1
		if cfg.Scheduling == SchedVOQ {
			slots = len(ats)
		}
		if cfg.FlowQueues > 0 {
			slots = cfg.FlowQueues
		}
		totalVoqs += len(ats) * k * slots
		totalFed += len(ats) * k * len(ats)
	}
	chans := totalPorts * k
	n.ports = make([]port, totalPorts)
	n.occupancy = make([]units.Size, chans)
	n.progress = make([]ingressProgress, chans)
	n.queuedBytes = make([]units.Size, chans)
	n.txBytes = make([]units.Size, chans)
	n.senders = make([]flowcontrol.Sender, chans)
	n.receivers = make([]flowcontrol.Receiver, chans)
	n.rrVoq = make([]int32, chans)
	n.inq = make([]pktQueue, chans)
	n.voqs = make([]voq, totalVoqs)
	n.fedBytes = make([]units.Size, totalFed)
	n.fwdCursor = make([]int32, nn*k)
	n.fwdBlocked = make([]*port, nn*k)
	n.forwarding = make([]bool, nn*k)
	if cfg.FlowQueues > 0 {
		n.fq = cfg.FlowQueues
		n.qAssign = make([]map[int]flowAssign, chans)
		n.slotFlows = make([]int32, totalVoqs)
		n.queueSenders = make([]flowcontrol.QueueSender, chans)
		n.queueReceivers = make([]flowcontrol.QueueReceiver, chans)
	}

	// Pass 2: build nodes and ports, assigning each port its bases.
	n.nodes = make([]*node, nn)
	pb, cb, vb, fb := 0, 0, 0, 0
	for id := range n.nodes {
		tn := topo.Node(topology.NodeID(id))
		nd := &node{id: tn.ID, kind: tn.Kind, nb: id * k, refillAt: units.Never}
		ats := topo.Ports(tn.ID)
		nd.ports = make([]*port, len(ats))
		slots := 1
		if cfg.Scheduling == SchedVOQ {
			slots = len(ats)
		}
		if cfg.FlowQueues > 0 {
			slots = cfg.FlowQueues
		}
		for i, at := range ats {
			p := &n.ports[pb]
			pb++
			*p = port{
				owner: nd, local: i, link: at.Link, peer: at.Peer,
				peerPort: at.Link.PortOn(at.Peer),
				capacity: at.Link.Capacity,
				kickAt:   units.Never,
				sched:    cfg.Scheduling,
				cb:       cb, voqBase: vb, slots: slots, fedBase: fb,
				buffer: cfg.BufferSize,
			}
			cb += k
			vb += k * slots
			fb += k * len(ats)
			if tn.Kind == topology.Host {
				p.buffer = hostBuffer
			}
			if k > 1 {
				p.prioScratch = make([]int, 0, k)
			}
			nd.ports[i] = p
		}
		n.nodes[id] = nd
	}
	// Bind the per-node and per-port event callbacks once: the hot path
	// (kick retries, transmission completions, link arrivals, host
	// refills) then schedules these stored funcs instead of allocating a
	// closure per event.
	for _, nd := range n.nodes {
		nd := nd
		nd.refillFn = func() {
			nd.refillAt = units.Never
			n.refill(nd)
		}
		for _, p := range nd.ports {
			p := p
			p.kickFn = func() {
				p.kickAt = units.Never
				n.kick(p)
			}
			p.txDoneFn = func() { n.completeTx(p) }
			p.arriveFn = func() { n.arriveBatch(p) }
		}
	}
	// Wire controllers: for channel u→v, the Sender lives on u's port
	// and the Receiver on v's port.
	for _, nd := range n.nodes {
		for _, p := range nd.ports {
			if p.link.Failed {
				continue
			}
			up := n.nodes[p.peer].ports[p.peerPort] // upstream egress port
			for prio := 0; prio < k; prio++ {
				params := flowcontrol.Params{
					Capacity: p.capacity,
					Buffer:   p.buffer,
					MTU:      cfg.MTU,
					Tau:      n.tauFor(p),
					Priority: prio,
				}
				env := &fcEnv{n: n, down: p, up: up, prio: prio}
				ctl, err := cfg.FlowControl(params, env)
				if err != nil {
					return nil, fmt.Errorf("netsim: channel %s->%s prio %d: %w",
						topo.Node(p.peer).Name, topo.Node(nd.id).Name, prio, err)
				}
				n.receivers[p.cb+prio] = ctl.Receiver
				n.senders[up.cb+prio] = ctl.Sender
				if n.fq > 0 {
					qs, ok := ctl.Sender.(flowcontrol.QueueSender)
					if !ok {
						return nil, fmt.Errorf("netsim: FlowQueues=%d but the %s->%s prio %d sender is not queue-aware",
							n.fq, topo.Node(p.peer).Name, topo.Node(nd.id).Name, prio)
					}
					if qs.Queues() != n.fq {
						return nil, fmt.Errorf("netsim: FlowQueues=%d but the wired scheme has %d queues",
							n.fq, qs.Queues())
					}
					qr, ok := ctl.Receiver.(flowcontrol.QueueReceiver)
					if !ok {
						return nil, fmt.Errorf("netsim: FlowQueues=%d but the %s->%s prio %d receiver is not queue-aware",
							n.fq, topo.Node(p.peer).Name, topo.Node(nd.id).Name, prio)
					}
					n.queueSenders[up.cb+prio] = qs
					n.queueReceivers[p.cb+prio] = qr
				}
			}
		}
	}
	// Bind the metrics registry before receivers start: initial credit
	// adverts already flow through Emit and must be counted. Ceilings and
	// stage tables come from the wired senders via the optional
	// flowcontrol.Bounded / flowcontrol.Staged interfaces.
	if reg := cfg.Metrics; reg != nil {
		n.metrics = reg
		infos := make([]metrics.NodeInfo, len(n.nodes))
		for id, nd := range n.nodes {
			info := metrics.NodeInfo{
				ID: nd.id, Name: topo.Node(nd.id).Name,
				Host:  nd.kind == topology.Host,
				Ports: make([]metrics.PortInfo, len(nd.ports)),
			}
			for i, p := range nd.ports {
				info.Ports[i] = metrics.PortInfo{
					Peer: p.peer, PeerName: topo.Node(p.peer).Name,
					Buffer: p.buffer,
				}
			}
			infos[id] = info
		}
		reg.Bind(infos, k)
		for _, nd := range n.nodes {
			for _, p := range nd.ports {
				if got := reg.ChannelIndex(nd.id, p.local, 0); got != p.cb {
					panic(fmt.Sprintf("netsim: channel index desync: node %d port %d: netsim %d, metrics %d",
						nd.id, p.local, p.cb, got))
				}
				if p.link.Failed {
					continue
				}
				up := n.nodes[p.peer].ports[p.peerPort]
				for prio := 0; prio < k; prio++ {
					s := n.senders[up.cb+prio]
					if s == nil {
						continue
					}
					if b, ok := s.(flowcontrol.Bounded); ok {
						// The final GFC stage keeps a positive rate, so
						// under a stopped drain the queue legitimately
						// overshoots B_m by up to the feedback latency's
						// worth of minimum-rate trickle; four MTUs is the
						// headroom the factories budget for exactly that.
						ceil := b.Ceiling() + 4*cfg.MTU
						if ceil > p.buffer {
							ceil = p.buffer
						}
						reg.SetCeiling(p.cb+prio, ceil)
					}
					if st, ok := s.(flowcontrol.Staged); ok {
						reg.CheckStageTable(p.cb+prio, st.StageTable())
					}
				}
			}
		}
	}
	// Bind the fault injector and schedule its timeline. Binding claims
	// the injector for this network (a second bind panics), and the
	// scheduled closures are the only per-event allocations — fault
	// timelines are a handful of events, never hot-path.
	if inj := cfg.Faults; inj != nil {
		inj.Bind()
		n.faults = inj
		for _, ev := range inj.Timeline() {
			ev := ev
			n.eng.Schedule(ev.At, func() { n.applyFault(ev) })
		}
	}
	// Start receivers (periodic feedback, initial credit adverts).
	for _, nd := range n.nodes {
		for _, p := range nd.ports {
			for prio := 0; prio < k; prio++ {
				if r := n.receivers[p.cb+prio]; r != nil {
					r.Start()
				}
			}
		}
	}
	return n, nil
}

// noteArrival records ev as the pending arrival delivering to p, keyed by
// the event's slot, so arriveBatch can recognise it at the queue head.
func (n *Network) noteArrival(ev eventsim.Event, p *port) {
	s := ev.Slot()
	for s >= len(n.arrEv) {
		n.arrEv = append(n.arrEv, make([]arrivalEntry, s+1-len(n.arrEv))...)
	}
	n.arrEv[s] = arrivalEntry{ev: ev, p: p}
}

// arriveBatch is the pre-bound arrival callback for port p: it admits p's
// oldest in-flight packet, then keeps absorbing further arrival events for
// the *same node* that are due at this exact instant and sit at the head of
// the event queue. Each absorbed event is provably the very next event the
// engine would fire (same head, same timestamp — the engine's Absorb
// enforces both), so draining the burst inline executes the identical
// admission sequence the engine would have produced with N heap pops; only
// the heap traffic is saved. Deliveries to other nodes, or any interleaved
// non-arrival event, stop the batch by failing the head comparison.
func (n *Network) arriveBatch(p *port) {
	n.arrive(p.owner, p.local, p.popInFlight())
	nd := p.owner
	for {
		top, ok := n.eng.Peek()
		if !ok || top.At() != n.eng.Now() {
			return
		}
		s := top.Slot()
		if s >= len(n.arrEv) {
			return
		}
		ent := n.arrEv[s]
		if ent.ev != top || ent.p.owner != nd {
			return
		}
		if !n.eng.Absorb(top) {
			return
		}
		n.arrive(nd, ent.p.local, ent.p.popInFlight())
	}
}

// tauFor bounds the feedback latency of channel into p per equation (6).
func (n *Network) tauFor(p *port) units.Time {
	if n.cfg.Tau > 0 {
		return n.cfg.Tau
	}
	return core.Tau(p.capacity, n.cfg.MTU, p.link.Delay, n.cfg.ProcDelay)
}

// fcEnv is the flowcontrol.Env for the receiver at downstream port `down`;
// Emit carries messages back to the paired sender at upstream port `up`.
type fcEnv struct {
	n    *Network
	down *port // receiver side (ingress)
	up   *port // sender side (upstream egress)
	prio int
}

func (e *fcEnv) Now() units.Time               { return e.n.eng.Now() }
func (e *fcEnv) After(d units.Time, fn func()) { e.n.eng.After(d, fn) }

// Emit schedules delivery of one feedback message. The closure here is
// deliberate: messages carry a payload and, under jitter, non-monotonic
// delays, so a per-port FIFO of pre-bound callbacks (the packet-path trick)
// would reorder them.
func (e *fcEnv) Emit(m flowcontrol.Message) {
	n := e.n
	wire := m.Wire()
	n.feedbackBytes += wire
	n.cfg.Trace.feedback(n.eng.Now(), e.down.owner.id, e.up.owner.id, e.prio, wire)
	if reg := n.metrics; reg != nil {
		reg.OnFeedback(e.down.cb+e.prio, n.eng.Now(), feedbackClass(m.Kind), m.Stage, wire)
	}
	delay := units.TransmissionTime(wire, e.down.capacity) +
		e.down.link.Delay + n.cfg.ProcDelay
	if n.jitter != nil {
		delay += units.Time(n.jitter.Int63n(int64(n.cfg.FeedbackJitter)))
	}
	now := n.eng.Now()
	if e.down.adminDown {
		// The link is administratively down: the frame is emitted into a
		// dead channel and lost. (The wire/trace accounting above stands —
		// the receiver did spend the emission.)
		if reg := n.metrics; reg != nil {
			reg.OnFault(metrics.FaultEvent{
				Kind: metrics.FaultFeedbackDrop, At: now,
				Channel: e.down.cb + e.prio, Link: e.down.link.ID,
				Node: e.down.owner.id,
			})
		}
		return
	}
	if inj := n.faults; inj != nil {
		drop, extra := inj.FeedbackVerdict(
			e.down.link.ID, e.down.owner.id, e.prio, m.Kind, now)
		if drop {
			if reg := n.metrics; reg != nil {
				reg.OnFault(metrics.FaultEvent{
					Kind: metrics.FaultFeedbackDrop, At: now,
					Channel: e.down.cb + e.prio, Link: e.down.link.ID,
					Node: e.down.owner.id,
				})
			}
			return
		}
		if extra > 0 {
			delay += extra
			if reg := n.metrics; reg != nil {
				reg.OnFault(metrics.FaultEvent{
					Kind: metrics.FaultFeedbackDelay, At: now,
					Channel: e.down.cb + e.prio, Link: e.down.link.ID,
					Node: e.down.owner.id,
				})
			}
		}
	}
	sender := n.senders[e.up.cb+e.prio]
	up := e.up
	from, prio := e.down.owner.id, e.prio
	n.eng.After(delay, func() {
		sender.OnFeedback(m)
		if obs := n.fbObs; obs != nil {
			obs(from, up.owner.id, prio, m)
		}
		n.kick(up)
		// A rate or credit change may also unblock the host refill
		// path indirectly; kick handles the egress side, and refill
		// is woken by its own timer.
	})
}

// SetFeedbackObserver installs fn to observe every feedback message at the
// instant it is delivered to its sender — after fault-injected loss (dropped
// messages are never observed, matching the sender's view of the world) and
// after any delay. Used by in-data-plane deadlock detection (DCFIT); at most
// one observer, nil uninstalls.
func (n *Network) SetFeedbackObserver(fn func(from, to topology.NodeID, prio int, m flowcontrol.Message)) {
	n.fbObs = fn
}

// feedbackClass buckets a flow-control message kind for metrics accounting.
func feedbackClass(k flowcontrol.Kind) metrics.FeedbackClass {
	switch k {
	case flowcontrol.KindPause, flowcontrol.KindQueuePause:
		return metrics.FeedbackPause
	case flowcontrol.KindResume, flowcontrol.KindQueueResume:
		return metrics.FeedbackResume
	case flowcontrol.KindStage:
		return metrics.FeedbackStage
	case flowcontrol.KindCredit:
		return metrics.FeedbackCredit
	default:
		return metrics.FeedbackQueue
	}
}

// Engine exposes the event engine (for custom experiment events).
func (n *Network) Engine() *eventsim.Engine { return n.eng }

// Metrics returns the bound metrics registry, or nil when disabled.
func (n *Network) Metrics() *metrics.Registry { return n.metrics }

// Topology returns the simulated topology.
func (n *Network) Topology() *topology.Topology { return n.topo }

// Now reports the current simulation time.
func (n *Network) Now() units.Time { return n.eng.Now() }

// Run advances the simulation to the given time.
func (n *Network) Run(until units.Time) { n.eng.Run(until) }

// Drops reports the number of packets dropped; in a correctly configured
// lossless fabric this must be zero.
func (n *Network) Drops() int64 { return n.drops }

// FeedbackBytes reports total flow-control message bytes emitted.
func (n *Network) FeedbackBytes() units.Size { return n.feedbackBytes }

// Flows returns all flows ever added.
func (n *Network) Flows() []*Flow { return n.flows }

// AddFlow installs f and starts it at time at. The flow's Path must start at
// its source host and end with the hop delivering to Dst.
func (n *Network) AddFlow(f *Flow, at units.Time) error {
	if len(f.Path) == 0 {
		return fmt.Errorf("netsim: flow %d has no path", f.ID)
	}
	first := f.Path[0]
	if first.Node != f.Src {
		return fmt.Errorf("netsim: flow %d path starts at node %d, not src %d",
			f.ID, first.Node, f.Src)
	}
	last := f.Path[len(f.Path)-1]
	if last.Link.Other(last.Node) != f.Dst {
		return fmt.Errorf("netsim: flow %d path ends before dst %d", f.ID, f.Dst)
	}
	if n.nodes[f.Src].kind != topology.Host || n.nodes[f.Dst].kind != topology.Host {
		return fmt.Errorf("netsim: flow %d endpoints must be hosts", f.ID)
	}
	if f.Priority < 0 || f.Priority >= n.cfg.Priorities {
		return fmt.Errorf("netsim: flow %d priority %d outside [0,%d)",
			f.ID, f.Priority, n.cfg.Priorities)
	}
	n.flows = append(n.flows, f)
	if inj := n.faults; inj != nil {
		at = inj.FlowOnset(f.ID, at)
	}
	src := n.nodes[f.Src]
	n.eng.Schedule(at, func() {
		f.Started = n.eng.Now()
		f.active = true
		src.flows = append(src.flows, f)
		n.refill(src)
	})
	return nil
}

// StopFlow makes flow f stop offering new data at time at: the source
// withdraws, already-released packets still drain. For finite flows the Size
// is truncated to what was released so Done/FCT reflect the early end. This
// models an application finishing or aborting — the event that naturally
// dissolves a cyclic buffer dependency (§6.2.3).
func (n *Network) StopFlow(f *Flow, at units.Time) {
	n.eng.Schedule(at, func() {
		f.active = false
		if f.Size == 0 || f.Size > f.released {
			f.Size = f.released
		}
		if f.Done() && f.Finished == 0 {
			f.Finished = n.eng.Now()
		}
	})
}

// IngressQueue reports the ingress occupancy of the given node/port/priority
// — what the flow-control Receiver observes.
func (n *Network) IngressQueue(node topology.NodeID, portIdx, prio int) units.Size {
	return n.occupancy[n.nodes[node].ports[portIdx].cb+prio]
}

// SenderRate reports the currently permitted rate of the egress flow
// controller at node/port/priority.
func (n *Network) SenderRate(node topology.NodeID, portIdx, prio int) units.Rate {
	s := n.senders[n.nodes[node].ports[portIdx].cb+prio]
	if s == nil {
		return 0
	}
	return s.Rate()
}

// PortFor returns the local port index on `node` of its link toward peer,
// or -1.
func (n *Network) PortFor(node, peer topology.NodeID) int {
	for _, p := range n.nodes[node].ports {
		if p.peer == peer && !p.link.Failed {
			return p.local
		}
	}
	return -1
}
