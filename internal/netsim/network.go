package netsim

import (
	"fmt"
	"math/rand"

	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/eventsim"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// hostBuffer is the ingress allocation used for host-attached receive sides:
// hosts consume packets immediately, so the buffer only needs to be
// nominally unoverflowable.
const hostBuffer = 1 << 40 * units.Byte

// Config parameterises a simulation.
type Config struct {
	// MTU is the maximum packet size; default 1500 B (Ethernet).
	MTU units.Size
	// BufferSize is the per-ingress-port, per-priority buffer of every
	// switch. Required.
	BufferSize units.Size
	// Priorities is the number of priority classes; default 1 (the
	// paper's experiments use a single lossless class).
	Priorities int
	// ProcDelay is the feedback-message processing time t_r; default
	// 3 µs (§5.4).
	ProcDelay units.Time
	// Tau overrides the per-channel worst-case feedback latency used to
	// derive flow-control parameters. Zero derives it per link from
	// equation (6). The testbed experiments set 90 µs to reflect
	// software switching.
	Tau units.Time
	// FlowControl builds the controller for every channel direction and
	// priority. Required.
	FlowControl flowcontrol.Factory
	// ECNThreshold enables DCQCN-style marking: packets enqueued to an
	// egress queue holding at least this many bytes are ECN-marked.
	// Zero disables marking.
	ECNThreshold units.Size
	// HostQueueDepth is how many packets a host NIC keeps queued;
	// default 1 (release-gated, so flow pacers are precise).
	HostQueueDepth int
	// Scheduling is the switching discipline; default SchedBlocking,
	// matching the paper's DPDK testbed switch.
	Scheduling Scheduling
	// TxRing is the per-egress TX ring capacity in packets for
	// SchedBlocking; default 128 (DPDK rings are a few hundred
	// descriptors).
	TxRing int
	// FeedbackJitter adds a uniform random [0, FeedbackJitter) component
	// to every feedback message's processing delay, seeded by
	// JitterSeed. Software switches (the paper's testbed runs DPDK
	// forwarding on general-purpose cores) have exactly this kind of
	// latency variance, and it is what lets pause cascades break the
	// perfect symmetry a deterministic simulation would otherwise
	// preserve. Zero disables jitter. When enabled, Tau must budget for
	// the added worst-case latency or PFC headroom sizing will be too
	// small to stay lossless.
	FeedbackJitter units.Time
	// JitterSeed seeds the jitter source; runs are reproducible per
	// seed.
	JitterSeed int64
	// PriorityWeights assigns weighted-round-robin shares to the
	// priority classes at every egress (§7: "the output queue scheduling
	// should be enabled to assign minimal output bandwidth to each
	// priority", preventing starvation that would exhaust a low class's
	// buffers). Length must equal Priorities; nil means equal weights.
	PriorityWeights []int
	// Escalation, when non-nil, may raise a packet's priority class at
	// switch admission — the hop-by-hop priority-increase family of
	// deadlock avoidance schemes the paper's related work surveys
	// (virtual channels, dateline routing, Tagger). It is called before
	// ingress accounting; returning the current priority is a no-op,
	// and lowering or exceeding Priorities-1 panics (a scheme bug).
	Escalation func(pkt *Packet, at topology.NodeID) int
	// Trace receives observation callbacks; may be nil.
	Trace *Trace
}

func (c *Config) fillDefaults() {
	if c.MTU == 0 {
		c.MTU = 1500 * units.Byte
	}
	if c.Priorities == 0 {
		c.Priorities = 1
	}
	if c.ProcDelay == 0 {
		c.ProcDelay = 3 * units.Microsecond
	}
	if c.HostQueueDepth == 0 {
		c.HostQueueDepth = 1
	}
	if c.TxRing == 0 {
		c.TxRing = 128
	}
}

func (c *Config) validate() error {
	if c.BufferSize <= 0 {
		return fmt.Errorf("netsim: BufferSize must be positive")
	}
	if c.FlowControl == nil {
		return fmt.Errorf("netsim: FlowControl factory is required")
	}
	if c.Priorities < 1 || c.Priorities > 8 {
		return fmt.Errorf("netsim: Priorities %d outside [1,8]", c.Priorities)
	}
	if c.PriorityWeights != nil {
		if len(c.PriorityWeights) != c.Priorities {
			return fmt.Errorf("netsim: %d priority weights for %d classes",
				len(c.PriorityWeights), c.Priorities)
		}
		for i, w := range c.PriorityWeights {
			if w < 1 {
				return fmt.Errorf("netsim: priority %d weight %d must be >= 1", i, w)
			}
		}
	}
	return nil
}

// Scheduling selects how an egress port serves packets from different input
// ports.
type Scheduling uint8

// Switching disciplines.
const (
	// SchedInputQueued models the paper's testbed switch (§6.1.1): a
	// FIFO ingress ring per input port, served round-robin by the
	// forwarding path, with head-of-line blocking — a packet whose
	// egress cannot transmit blocks everything behind it on the same
	// input and priority. This is the discipline under which PFC/CBFC
	// deadlock exactly as the paper reports, and it is the default.
	SchedInputQueued Scheduling = iota
	// SchedFIFO is a simple output-queued switch: each egress transmits
	// in arrival order across all inputs. Under sustained
	// oversubscription an input's service share equals its arrival
	// share.
	SchedFIFO
	// SchedVOQ keeps a virtual output queue per input port at each
	// egress and serves them round-robin — per-input fairness with no
	// head-of-line blocking, as in ideal crossbar fabrics.
	SchedVOQ
	// SchedBlocking models the paper's DPDK software switch faithfully:
	// a forwarding core serves the ingress FIFOs round-robin and moves
	// packets into bounded per-egress TX rings. When the selected head's
	// TX ring is full the whole forwarding path stalls until that ring
	// has room — which is what lets a PFC-paused port freeze an entire
	// switch and cascade into the deadlocks of Figures 9/10, while
	// GFC's always-positive drain keeps the stalls transient.
	SchedBlocking
)

func (s Scheduling) String() string {
	switch s {
	case SchedInputQueued:
		return "input-queued"
	case SchedFIFO:
		return "fifo"
	case SchedVOQ:
		return "voq"
	case SchedBlocking:
		return "blocking"
	default:
		return "scheduling(?)"
	}
}

// voq is one virtual output queue: the packets a single input port has
// pending on an egress. In FIFO mode only voqs[prio][0] is used and holds
// the mixed arrival-order queue; per-input byte accounting is kept either
// way for the deadlock detector's FedBy edges.
type voq struct {
	pkts  []*Packet
	bytes units.Size
}

// port is one attachment point of a node: egress transmitter plus ingress
// buffer accounting for the attached channel.
type port struct {
	owner    *node
	local    int // port index on owner
	link     *topology.Link
	peer     topology.NodeID
	peerPort int
	capacity units.Rate

	// Egress state.
	sched       Scheduling
	voqs        [][]voq        // [priority][arrival port] (FIFO mode: slot 0 only)
	fedBytes    [][]units.Size // [priority][arrival port] backlog accounting
	rrVoq       []int          // per priority, round-robin cursor over VOQs
	queuedBytes []units.Size
	queuedPkts  int
	busy        bool
	senders     []flowcontrol.Sender
	rr          int
	wrrCredit   []int // weighted-RR packet credits per priority (nil: equal)
	kickAt      units.Time
	txBytes     []units.Size // per priority, cumulative data serialised

	// Ingress state.
	occupancy []units.Size
	departed  []units.Size // per priority, cumulative bytes released
	receivers []flowcontrol.Receiver
	buffer    units.Size
	// inq is the per-priority ingress FIFO used by SchedInputQueued at
	// switches: packets wait here until their egress can take them, with
	// head-of-line blocking.
	inq [][]*Packet
}

func (p *port) totalQueued() int { return p.queuedPkts }

// arrivalKey is the per-input accounting slot of pkt at this node.
func arrivalKey(pkt *Packet) int {
	if pkt.arrivalPort < 0 {
		return 0 // host injection
	}
	return pkt.arrivalPort
}

// enqueue appends pkt to the egress for its priority.
func (p *port) enqueue(pkt *Packet) {
	key := arrivalKey(pkt)
	slot := key
	if p.sched != SchedVOQ {
		slot = 0 // FIFO / TX-ring order for every other discipline
	}
	v := &p.voqs[pkt.Priority][slot]
	v.pkts = append(v.pkts, pkt)
	v.bytes += pkt.Size
	p.fedBytes[pkt.Priority][key] += pkt.Size
	p.queuedBytes[pkt.Priority] += pkt.Size
	p.queuedPkts++
}

// nextPacket returns (without removing) the next packet of the given
// priority and its queue slot, or nil: the global head in FIFO mode, the
// round-robin VOQ head in VOQ mode.
func (p *port) nextPacket(prio int) (*Packet, int) {
	vs := p.voqs[prio]
	if p.sched != SchedVOQ {
		if len(vs[0].pkts) > 0 {
			return vs[0].pkts[0], 0
		}
		return nil, -1
	}
	for i := 0; i < len(vs); i++ {
		k := (p.rrVoq[prio] + i) % len(vs)
		if len(vs[k].pkts) > 0 {
			return vs[k].pkts[0], k
		}
	}
	return nil, -1
}

// dequeue removes the head of queue slot for prio and advances the cursor.
func (p *port) dequeue(prio, slot int) *Packet {
	v := &p.voqs[prio][slot]
	pkt := v.pkts[0]
	v.pkts = v.pkts[1:]
	v.bytes -= pkt.Size
	p.fedBytes[prio][arrivalKey(pkt)] -= pkt.Size
	p.queuedBytes[prio] -= pkt.Size
	p.queuedPkts--
	p.rrVoq[prio] = (slot + 1) % len(p.voqs[prio])
	return pkt
}

// node is a host or switch instance.
type node struct {
	id    topology.NodeID
	kind  topology.Kind
	ports []*port

	// Host state.
	flows    []*Flow
	rrFlow   int
	refillAt units.Time

	// SchedBlocking forwarding state, per priority.
	fwdCursor  []int
	fwdBlocked []*port // egress whose full TX ring stalls forwarding
	forwarding []bool  // re-entrancy guard
}

// Network is a runnable simulation instance.
type Network struct {
	cfg    Config
	topo   *topology.Topology
	eng    *eventsim.Engine
	nodes  []*node
	flows  []*Flow
	drops  int64
	jitter *rand.Rand // nil when FeedbackJitter is zero

	feedbackBytes units.Size // total feedback wire bytes, all channels
}

// New builds a simulation of topo under cfg. Every live channel direction
// gets an independent flow controller per priority.
func New(topo *topology.Topology, cfg Config) (*Network, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, topo: topo, eng: eventsim.New()}
	if cfg.FeedbackJitter > 0 {
		n.jitter = rand.New(rand.NewSource(cfg.JitterSeed))
	}
	n.nodes = make([]*node, topo.NumNodes())
	for id := range n.nodes {
		tn := topo.Node(topology.NodeID(id))
		nd := &node{id: tn.ID, kind: tn.Kind, refillAt: units.Never}
		nd.fwdCursor = make([]int, cfg.Priorities)
		nd.fwdBlocked = make([]*port, cfg.Priorities)
		nd.forwarding = make([]bool, cfg.Priorities)
		ats := topo.Ports(tn.ID)
		nd.ports = make([]*port, len(ats))
		for i, at := range ats {
			p := &port{
				owner: nd, local: i, link: at.Link, peer: at.Peer,
				peerPort: at.Link.PortOn(at.Peer),
				capacity: at.Link.Capacity,
				kickAt:   units.Never,
			}
			k := cfg.Priorities
			p.sched = cfg.Scheduling
			p.voqs = make([][]voq, k)
			p.fedBytes = make([][]units.Size, k)
			p.rrVoq = make([]int, k)
			p.inq = make([][]*Packet, k)
			for prio := 0; prio < k; prio++ {
				p.voqs[prio] = make([]voq, len(ats))
				p.fedBytes[prio] = make([]units.Size, len(ats))
			}
			p.queuedBytes = make([]units.Size, k)
			p.txBytes = make([]units.Size, k)
			p.occupancy = make([]units.Size, k)
			p.departed = make([]units.Size, k)
			p.senders = make([]flowcontrol.Sender, k)
			p.receivers = make([]flowcontrol.Receiver, k)
			p.buffer = cfg.BufferSize
			if tn.Kind == topology.Host {
				p.buffer = hostBuffer
			}
			nd.ports[i] = p
		}
		n.nodes[id] = nd
	}
	// Wire controllers: for channel u→v, the Sender lives on u's port
	// and the Receiver on v's port.
	for _, nd := range n.nodes {
		for _, p := range nd.ports {
			if p.link.Failed {
				continue
			}
			up := n.nodes[p.peer].ports[p.peerPort] // upstream egress port
			for prio := 0; prio < cfg.Priorities; prio++ {
				params := flowcontrol.Params{
					Capacity: p.capacity,
					Buffer:   p.buffer,
					MTU:      cfg.MTU,
					Tau:      n.tauFor(p),
					Priority: prio,
				}
				env := &fcEnv{n: n, down: p, up: up, prio: prio}
				ctl, err := cfg.FlowControl(params, env)
				if err != nil {
					return nil, fmt.Errorf("netsim: channel %s->%s prio %d: %w",
						topo.Node(p.peer).Name, topo.Node(nd.id).Name, prio, err)
				}
				p.receivers[prio] = ctl.Receiver
				up.senders[prio] = ctl.Sender
			}
		}
	}
	// Start receivers (periodic feedback, initial credit adverts).
	for _, nd := range n.nodes {
		for _, p := range nd.ports {
			for _, r := range p.receivers {
				if r != nil {
					r.Start()
				}
			}
		}
	}
	return n, nil
}

// tauFor bounds the feedback latency of channel into p per equation (6).
func (n *Network) tauFor(p *port) units.Time {
	if n.cfg.Tau > 0 {
		return n.cfg.Tau
	}
	return core.Tau(p.capacity, n.cfg.MTU, p.link.Delay, n.cfg.ProcDelay)
}

// fcEnv is the flowcontrol.Env for the receiver at downstream port `down`;
// Emit carries messages back to the paired sender at upstream port `up`.
type fcEnv struct {
	n    *Network
	down *port // receiver side (ingress)
	up   *port // sender side (upstream egress)
	prio int
}

func (e *fcEnv) Now() units.Time               { return e.n.eng.Now() }
func (e *fcEnv) After(d units.Time, fn func()) { e.n.eng.After(d, fn) }

func (e *fcEnv) Emit(m flowcontrol.Message) {
	n := e.n
	wire := m.Wire()
	n.feedbackBytes += wire
	n.cfg.Trace.feedback(n.eng.Now(), e.down.owner.id, e.up.owner.id, e.prio, wire)
	delay := units.TransmissionTime(wire, e.down.capacity) +
		e.down.link.Delay + n.cfg.ProcDelay
	if n.jitter != nil {
		delay += units.Time(n.jitter.Int63n(int64(n.cfg.FeedbackJitter)))
	}
	sender := e.up.senders[e.prio]
	up := e.up
	n.eng.After(delay, func() {
		sender.OnFeedback(m)
		n.kick(up)
		// A rate or credit change may also unblock the host refill
		// path indirectly; kick handles the egress side, and refill
		// is woken by its own timer.
	})
}

// Engine exposes the event engine (for custom experiment events).
func (n *Network) Engine() *eventsim.Engine { return n.eng }

// Topology returns the simulated topology.
func (n *Network) Topology() *topology.Topology { return n.topo }

// Now reports the current simulation time.
func (n *Network) Now() units.Time { return n.eng.Now() }

// Run advances the simulation to the given time.
func (n *Network) Run(until units.Time) { n.eng.Run(until) }

// Drops reports the number of packets dropped; in a correctly configured
// lossless fabric this must be zero.
func (n *Network) Drops() int64 { return n.drops }

// FeedbackBytes reports total flow-control message bytes emitted.
func (n *Network) FeedbackBytes() units.Size { return n.feedbackBytes }

// Flows returns all flows ever added.
func (n *Network) Flows() []*Flow { return n.flows }

// AddFlow installs f and starts it at time at. The flow's Path must start at
// its source host and end with the hop delivering to Dst.
func (n *Network) AddFlow(f *Flow, at units.Time) error {
	if len(f.Path) == 0 {
		return fmt.Errorf("netsim: flow %d has no path", f.ID)
	}
	first := f.Path[0]
	if first.Node != f.Src {
		return fmt.Errorf("netsim: flow %d path starts at node %d, not src %d",
			f.ID, first.Node, f.Src)
	}
	last := f.Path[len(f.Path)-1]
	if last.Link.Other(last.Node) != f.Dst {
		return fmt.Errorf("netsim: flow %d path ends before dst %d", f.ID, f.Dst)
	}
	if n.nodes[f.Src].kind != topology.Host || n.nodes[f.Dst].kind != topology.Host {
		return fmt.Errorf("netsim: flow %d endpoints must be hosts", f.ID)
	}
	if f.Priority < 0 || f.Priority >= n.cfg.Priorities {
		return fmt.Errorf("netsim: flow %d priority %d outside [0,%d)",
			f.ID, f.Priority, n.cfg.Priorities)
	}
	n.flows = append(n.flows, f)
	src := n.nodes[f.Src]
	n.eng.Schedule(at, func() {
		f.Started = n.eng.Now()
		f.active = true
		src.flows = append(src.flows, f)
		n.refill(src)
	})
	return nil
}

// StopFlow makes flow f stop offering new data at time at: the source
// withdraws, already-released packets still drain. For finite flows the Size
// is truncated to what was released so Done/FCT reflect the early end. This
// models an application finishing or aborting — the event that naturally
// dissolves a cyclic buffer dependency (§6.2.3).
func (n *Network) StopFlow(f *Flow, at units.Time) {
	n.eng.Schedule(at, func() {
		f.active = false
		if f.Size == 0 || f.Size > f.released {
			f.Size = f.released
		}
		if f.Done() && f.Finished == 0 {
			f.Finished = n.eng.Now()
		}
	})
}

// refill keeps the host NIC queue at the configured depth, drawing packets
// from active flows round-robin and honouring per-flow pacers.
func (n *Network) refill(h *node) {
	if h.kind != topology.Host || len(h.ports) == 0 {
		return
	}
	p := h.ports[0]
	now := n.eng.Now()
	for p.totalQueued() < n.cfg.HostQueueDepth {
		f, wake := n.nextFlow(h, now)
		if f == nil {
			if wake != units.Never && wake > now {
				n.scheduleRefill(h, wake)
			}
			return
		}
		size := f.remaining(n.cfg.MTU)
		if size > n.cfg.MTU {
			size = n.cfg.MTU
		}
		if f.Pacer != nil {
			f.Pacer.OnRelease(now, size)
		}
		f.released += size
		pkt := &Packet{
			Flow: f, Seq: f.seq, Size: size, Priority: f.Priority,
			Path: f.Path, arrivalPort: -1,
		}
		f.seq++
		if f.Size > 0 && f.released >= f.Size {
			pkt.Last = true
			f.active = false
		}
		p.enqueue(pkt)
	}
	n.kick(p)
}

// nextFlow picks the next eligible flow on h (round-robin); when none is
// eligible it returns the earliest pacer wake time.
func (n *Network) nextFlow(h *node, now units.Time) (*Flow, units.Time) {
	wake := units.Never
	for i := 0; i < len(h.flows); i++ {
		f := h.flows[(h.rrFlow+i)%len(h.flows)]
		if !f.active || f.remaining(n.cfg.MTU) == 0 {
			continue
		}
		if f.Pacer != nil {
			size := f.remaining(n.cfg.MTU)
			if size > n.cfg.MTU {
				size = n.cfg.MTU
			}
			if na := f.Pacer.NextAllowed(now, size); na > now {
				if na < wake {
					wake = na
				}
				continue
			}
		}
		h.rrFlow = (h.rrFlow + i + 1) % len(h.flows)
		return f, 0
	}
	return nil, wake
}

func (n *Network) scheduleRefill(h *node, at units.Time) {
	if h.refillAt <= at && h.refillAt > n.eng.Now() {
		return // an earlier (or same) wake is already pending
	}
	h.refillAt = at
	n.eng.Schedule(at, func() {
		if h.refillAt == at {
			h.refillAt = units.Never
		}
		n.refill(h)
	})
}

// kick tries to start a transmission on p. When flow control blocks every
// queued priority, it schedules a retry at the earliest wake time (feedback
// events also re-kick).
func (n *Network) kick(p *port) {
	if p.busy || p.link.Failed {
		return
	}
	now := n.eng.Now()
	minWake := units.Never
	inputQueued := p.sched == SchedInputQueued && p.owner.kind == topology.Switch
	k := len(p.voqs)
	for _, prio := range n.prioOrder(p) {
		var pkt *Packet
		var freed *port // input whose FIFO head we consumed
		if inputQueued {
			head, in, wake := n.nextFromInputs(p, prio)
			if head == nil {
				if wake < minWake {
					minWake = wake
				}
				continue
			}
			in.inq[prio] = in.inq[prio][1:]
			p.rrVoq[prio] = (in.local + 1) % len(p.owner.ports)
			pkt, freed = head, in
		} else {
			head, slot := p.nextPacket(prio)
			if head == nil {
				continue
			}
			ok, wake := p.senders[prio].TrySend(head.Size)
			if !ok {
				if wake < minWake {
					minWake = wake
				}
				continue
			}
			pkt = p.dequeue(prio, slot)
			if p.sched == SchedBlocking && p.owner.kind == topology.Switch {
				// TX-ring space freed: resume a stalled
				// forwarding core (no-op when not stalled or
				// re-entered from forward itself).
				defer n.forward(p.owner, prio)
			}
		}
		p.rr = (prio + 1) % k
		if p.wrrCredit != nil && p.wrrCredit[prio] > 0 {
			p.wrrCredit[prio]--
		}
		p.busy = true
		dur := units.TransmissionTime(pkt.Size, p.capacity)
		n.eng.After(dur, func() { n.completeTx(p, pkt, prio, dur) })
		if freed != nil {
			// The freed input's new head may target an idle egress.
			if q := freed.inq[prio]; len(q) > 0 {
				n.kick(p.owner.ports[q[0].Path[q[0].hop].Port])
			}
		}
		return
	}
	if minWake != units.Never && minWake > now {
		n.scheduleKick(p, minWake)
	}
}

// forward runs the switch's forwarding core for one priority under
// SchedBlocking: serve ingress FIFO heads round-robin, moving each into its
// egress TX ring. When the selected head's ring is full, the whole
// forwarding path for this priority stalls until that ring drains — the
// behaviour of a software switch retrying a full TX ring, and the coupling
// that lets one paused port freeze a switch.
func (n *Network) forward(nd *node, prio int) {
	if nd.forwarding[prio] {
		return
	}
	nd.forwarding[prio] = true
	defer func() { nd.forwarding[prio] = false }()
	for {
		if b := nd.fwdBlocked[prio]; b != nil {
			// Still stalled: re-check the blocking ring.
			if len(b.voqs[prio][0].pkts) >= n.cfg.TxRing {
				return
			}
			nd.fwdBlocked[prio] = nil
		}
		var in *port
		for j := 0; j < len(nd.ports); j++ {
			c := nd.ports[(nd.fwdCursor[prio]+j)%len(nd.ports)]
			if len(c.inq[prio]) > 0 {
				in = c
				break
			}
		}
		if in == nil {
			return
		}
		head := in.inq[prio][0]
		out := nd.ports[head.Path[head.hop].Port]
		if len(out.voqs[prio][0].pkts) >= n.cfg.TxRing {
			nd.fwdBlocked[prio] = out // stall switch-wide
			return
		}
		in.inq[prio] = in.inq[prio][1:]
		nd.fwdCursor[prio] = (in.local + 1) % len(nd.ports)
		out.enqueue(head)
		n.kick(out)
	}
}

// prioOrder returns the order in which p's priorities are offered the
// wire. Without configured weights it is plain round-robin from the cursor.
// With weights it is packet-based weighted round-robin with a
// work-conserving second phase: classes holding WRR credit are offered
// first (cheapest classes refilled when all credits drain), then the rest,
// so a weighted class can never be starved but spare capacity is never
// wasted.
func (n *Network) prioOrder(p *port) []int {
	k := len(p.voqs)
	if k == 1 {
		return oneZero
	}
	order := make([]int, 0, k)
	if n.cfg.PriorityWeights == nil {
		for i := 0; i < k; i++ {
			order = append(order, (p.rr+i)%k)
		}
		return order
	}
	if p.wrrCredit == nil {
		p.wrrCredit = make([]int, k)
	}
	total := 0
	for _, c := range p.wrrCredit {
		total += c
	}
	if total == 0 {
		copy(p.wrrCredit, n.cfg.PriorityWeights)
	}
	for i := 0; i < k; i++ {
		if pr := (p.rr + i) % k; p.wrrCredit[pr] > 0 {
			order = append(order, pr)
		}
	}
	for i := 0; i < k; i++ {
		if pr := (p.rr + i) % k; p.wrrCredit[pr] == 0 {
			order = append(order, pr)
		}
	}
	return order
}

// oneZero avoids allocating for the ubiquitous single-priority case.
var oneZero = []int{0}

// nextFromInputs scans the owner's ingress FIFOs round-robin for a head
// packet bound for egress p at the given priority that flow control permits.
// It returns the packet and its input port, or (nil, nil, wake) where wake
// is the earliest retry time (units.Never to wait for feedback).
func (n *Network) nextFromInputs(p *port, prio int) (*Packet, *port, units.Time) {
	ports := p.owner.ports
	minWake := units.Never
	for j := 0; j < len(ports); j++ {
		in := ports[(p.rrVoq[prio]+j)%len(ports)]
		q := in.inq[prio]
		if len(q) == 0 {
			continue
		}
		head := q[0]
		if head.Path[head.hop].Port != p.local {
			continue // head-of-line: only the head is eligible
		}
		ok, wake := p.senders[prio].TrySend(head.Size)
		if !ok {
			// Flow control gates the whole egress for this
			// priority; no other input can do better.
			return nil, nil, wake
		}
		return head, in, 0
	}
	return nil, nil, minWake
}

func (n *Network) scheduleKick(p *port, at units.Time) {
	if p.kickAt <= at && p.kickAt > n.eng.Now() {
		return
	}
	p.kickAt = at
	n.eng.Schedule(at, func() {
		if p.kickAt == at {
			p.kickAt = units.Never
		}
		n.kick(p)
	})
}

// completeTx finishes a transmission: notifies flow control, releases
// ingress accounting at the transmitting switch, propagates the packet and
// restarts the transmitter.
func (n *Network) completeTx(p *port, pkt *Packet, prio int, dur units.Time) {
	now := n.eng.Now()
	p.busy = false
	p.senders[prio].OnSent(pkt.Size, dur)
	p.txBytes[prio] += pkt.Size
	n.cfg.Trace.transmit(now, p.owner.id, p.local, pkt)

	switch p.owner.kind {
	case topology.Switch:
		// The packet leaves this switch: release the ingress buffer
		// of the port it arrived on.
		ing := p.owner.ports[pkt.arrivalPort]
		ing.occupancy[prio] -= pkt.Size
		ing.departed[prio] += pkt.Size
		n.cfg.Trace.queue(now, p.owner.id, ing.local, prio, ing.occupancy[prio])
		if r := ing.receivers[prio]; r != nil {
			r.OnDeparture(pkt.Size, ing.occupancy[prio])
		}
	case topology.Host:
		pkt.Flow.sent += pkt.Size
		pkt.sentAt = now
		n.refill(p.owner)
	}

	peer := n.nodes[p.peer]
	peerPort := p.peerPort
	n.eng.After(p.link.Delay, func() { n.arrive(peer, peerPort, pkt) })
	n.kick(p)
}

// arrive admits a fully received packet at nd via local port idx.
func (n *Network) arrive(nd *node, idx int, pkt *Packet) {
	now := n.eng.Now()
	n.cfg.Trace.arrival(now, nd.id, pkt)

	if nd.kind == topology.Host {
		f := pkt.Flow
		f.Delivered += pkt.Size
		n.cfg.Trace.deliver(now, f, pkt)
		if f.OnPacket != nil {
			f.OnPacket(f, pkt)
		}
		if f.Done() && f.Finished == 0 {
			f.Finished = now
			n.cfg.Trace.flowDone(now, f)
			if f.OnDone != nil {
				f.OnDone(f)
			}
		}
		return
	}

	if n.cfg.Escalation != nil {
		np := n.cfg.Escalation(pkt, nd.id)
		if np < pkt.Priority || np >= n.cfg.Priorities {
			panic(fmt.Sprintf("netsim: escalation moved priority %d -> %d (classes: %d)",
				pkt.Priority, np, n.cfg.Priorities))
		}
		pkt.Priority = np
	}
	prio := pkt.Priority
	ing := nd.ports[idx]
	occ := ing.occupancy[prio] + pkt.Size
	if occ > ing.buffer {
		// A lossless fabric must never get here; record and drop.
		n.drops++
		n.cfg.Trace.drop(now, nd.id, pkt)
		return
	}
	ing.occupancy[prio] = occ
	n.cfg.Trace.queue(now, nd.id, idx, prio, occ)
	if r := ing.receivers[prio]; r != nil {
		r.OnArrival(pkt.Size, occ)
	}
	pkt.arrivalPort = idx
	pkt.hop++
	hop := pkt.Path[pkt.hop]
	if hop.Node != nd.id {
		panic(fmt.Sprintf("netsim: packet path desync: at node %d, path says %d",
			nd.id, hop.Node))
	}
	out := nd.ports[hop.Port]
	switch n.cfg.Scheduling {
	case SchedInputQueued:
		// Input-queued switching: the packet waits in the ingress
		// FIFO; congestion shows as ingress occupancy.
		if n.cfg.ECNThreshold > 0 && occ >= n.cfg.ECNThreshold {
			pkt.ECN = true
		}
		ing.inq[prio] = append(ing.inq[prio], pkt)
		if len(ing.inq[prio]) == 1 {
			n.kick(out)
		}
		return
	case SchedBlocking:
		// The packet joins the ingress FIFO; the forwarding core
		// moves it to a TX ring when its turn comes.
		if n.cfg.ECNThreshold > 0 && occ >= n.cfg.ECNThreshold {
			pkt.ECN = true
		}
		ing.inq[prio] = append(ing.inq[prio], pkt)
		n.forward(nd, prio)
		return
	}
	if n.cfg.ECNThreshold > 0 && out.queuedBytes[prio] >= n.cfg.ECNThreshold {
		pkt.ECN = true
	}
	out.enqueue(pkt)
	n.kick(out)
}

// IngressQueue reports the ingress occupancy of the given node/port/priority
// — what the flow-control Receiver observes.
func (n *Network) IngressQueue(node topology.NodeID, portIdx, prio int) units.Size {
	return n.nodes[node].ports[portIdx].occupancy[prio]
}

// SenderRate reports the currently permitted rate of the egress flow
// controller at node/port/priority.
func (n *Network) SenderRate(node topology.NodeID, portIdx, prio int) units.Rate {
	s := n.nodes[node].ports[portIdx].senders[prio]
	if s == nil {
		return 0
	}
	return s.Rate()
}

// PortFor returns the local port index on `node` of its link toward peer,
// or -1.
func (n *Network) PortFor(node, peer topology.NodeID) int {
	for _, p := range n.nodes[node].ports {
		if p.peer == peer && !p.link.Failed {
			return p.local
		}
	}
	return -1
}
