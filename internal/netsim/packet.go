// Package netsim is the packet-level discrete-event simulator of a lossless
// switching fabric. It models input-buffered switches with per-priority
// ingress accounting, egress schedulers gated by pluggable hop-by-hop flow
// control (package flowcontrol), links with serialization and propagation
// delay, and hosts that source and sink flows.
//
// The simulator substitutes for the paper's DPDK testbed and OMNET++
// simulator; §6.2.1 of the paper validates that this class of model
// reproduces the testbed's flow-control dynamics. Losslessness is an
// invariant: any packet drop is recorded and experiments treat it as a
// failure.
package netsim

import (
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/units"
)

// Packet is one frame traversing the fabric. Packets are source-routed: the
// full path is stamped at the sending host, mirroring the deterministic
// per-flow ECMP decision the routing table makes.
type Packet struct {
	Flow     *Flow
	Seq      int64
	Size     units.Size
	Priority int
	// Path and hop index: Path[hop] is the node currently holding the
	// packet (next to transmit it).
	Path []routing.Hop
	hop  int

	// Ingress accounting at the current switch: which local port and
	// priority the packet arrived on. -1 at the source host.
	arrivalPort int

	// Per-flow queue accounting (Config.FlowQueues > 0): queue is the
	// physical queue the packet is assigned to at its current egress, and
	// arrivalQueue freezes the assignment it arrived downstream with — the
	// queue id the ingress BFC receiver is told about on admission and
	// departure. Both are recycled to zero with the packet.
	queue        int32
	arrivalQueue int32

	// ECN is set when the packet passed a switch whose egress queue
	// exceeded the marking threshold (used by DCQCN).
	ECN bool

	// Last marks the final packet of a finite flow.
	Last bool

	sentAt units.Time // when the source host finished serialising it
}

// pktChunk is how many packets a Network's arena grows by at a time. The
// live-packet population is bounded by queue depths, so a run costs a few
// chunk allocations total rather than one per packet.
const pktChunk = 64

// newPacket returns a zeroed packet from the network's free list. The list
// is per-network — unlike the former shared sync.Pool it never drains on
// GC, so the steady state is allocation-free regardless of collector
// timing, and recycling order is deterministic by construction.
func (n *Network) newPacket() *Packet {
	if l := len(n.freePkts); l > 0 {
		pkt := n.freePkts[l-1]
		n.freePkts = n.freePkts[:l-1]
		return pkt
	}
	if len(n.pktArena) == 0 {
		n.pktArena = make([]Packet, pktChunk)
	}
	pkt := &n.pktArena[0]
	n.pktArena = n.pktArena[1:]
	return pkt
}

// recyclePacket returns a packet whose journey ended (delivered or dropped)
// to the free list. Callers must not hold references past this point; trace
// hooks have already fired.
func (n *Network) recyclePacket(pkt *Packet) {
	*pkt = Packet{}
	n.freePkts = append(n.freePkts, pkt)
}

// CurrentHop returns the hop the packet is about to transmit over.
func (p *Packet) CurrentHop() routing.Hop { return p.Path[p.hop] }

// AtLastHop reports whether the next transmission delivers the packet to its
// destination host.
func (p *Packet) AtLastHop() bool { return p.hop == len(p.Path)-1 }
