// Package netsim is the packet-level discrete-event simulator of a lossless
// switching fabric. It models input-buffered switches with per-priority
// ingress accounting, egress schedulers gated by pluggable hop-by-hop flow
// control (package flowcontrol), links with serialization and propagation
// delay, and hosts that source and sink flows.
//
// The simulator substitutes for the paper's DPDK testbed and OMNET++
// simulator; §6.2.1 of the paper validates that this class of model
// reproduces the testbed's flow-control dynamics. Losslessness is an
// invariant: any packet drop is recorded and experiments treat it as a
// failure.
package netsim

import (
	"sync"

	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/units"
)

// Packet is one frame traversing the fabric. Packets are source-routed: the
// full path is stamped at the sending host, mirroring the deterministic
// per-flow ECMP decision the routing table makes.
type Packet struct {
	Flow     *Flow
	Seq      int64
	Size     units.Size
	Priority int
	// Path and hop index: Path[hop] is the node currently holding the
	// packet (next to transmit it).
	Path []routing.Hop
	hop  int

	// Ingress accounting at the current switch: which local port and
	// priority the packet arrived on. -1 at the source host.
	arrivalPort int

	// ECN is set when the packet passed a switch whose egress queue
	// exceeded the marking threshold (used by DCQCN).
	ECN bool

	// Last marks the final packet of a finite flow.
	Last bool

	sentAt units.Time // when the source host finished serialising it
}

// packetPool is the free list packets are drawn from at host injection and
// returned to at delivery or drop. An enterprise-workload sweep pushes
// millions of packets through each Network; recycling them keeps the hot
// path allocation-free in steady state. The pool is shared across Networks
// (and worker goroutines), which is safe because a packet is fully zeroed
// before reuse and no simulation decision ever depends on a packet's
// identity — so determinism is unaffected.
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// newPacket returns a zeroed packet from the free list.
func newPacket() *Packet { return packetPool.Get().(*Packet) }

// recyclePacket returns a packet whose journey ended (delivered or dropped)
// to the free list. Callers must not hold references past this point; trace
// hooks have already fired.
func recyclePacket(pkt *Packet) {
	*pkt = Packet{}
	packetPool.Put(pkt)
}

// CurrentHop returns the hop the packet is about to transmit over.
func (p *Packet) CurrentHop() routing.Hop { return p.Path[p.hop] }

// AtLastHop reports whether the next transmission delivers the packet to its
// destination host.
func (p *Packet) AtLastHop() bool { return p.hop == len(p.Path)-1 }
