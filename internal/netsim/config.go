package netsim

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// hostBuffer is the ingress allocation used for host-attached receive sides:
// hosts consume packets immediately, so the buffer only needs to be
// nominally unoverflowable.
const hostBuffer = 1 << 40 * units.Byte

// HostIngressBuffer exposes the host receive-side allocation so alternate
// simulation backends can bind a metrics.Registry with netsim's exact
// channel layout and per-port buffer values.
const HostIngressBuffer = hostBuffer

// Config parameterises a simulation.
type Config struct {
	// MTU is the maximum packet size; default 1500 B (Ethernet).
	MTU units.Size
	// BufferSize is the per-ingress-port, per-priority buffer of every
	// switch. Required.
	BufferSize units.Size
	// Priorities is the number of priority classes; default 1 (the
	// paper's experiments use a single lossless class).
	Priorities int
	// ProcDelay is the feedback-message processing time t_r; default
	// 3 µs (§5.4).
	ProcDelay units.Time
	// Tau overrides the per-channel worst-case feedback latency used to
	// derive flow-control parameters. Zero derives it per link from
	// equation (6). The testbed experiments set 90 µs to reflect
	// software switching.
	Tau units.Time
	// FlowControl builds the controller for every channel direction and
	// priority. Required.
	FlowControl flowcontrol.Factory
	// ECNThreshold enables DCQCN-style marking: packets enqueued to an
	// egress queue holding at least this many bytes are ECN-marked.
	// Zero disables marking.
	ECNThreshold units.Size
	// HostQueueDepth is how many packets a host NIC keeps queued;
	// default 1 (release-gated, so flow pacers are precise).
	HostQueueDepth int
	// Scheduling is the switching discipline; default SchedBlocking,
	// matching the paper's DPDK testbed switch.
	Scheduling Scheduling
	// FlowQueues, when positive, gives every egress channel that many
	// physical queues with dynamic flow→queue assignment (BFC, Goyal et
	// al.): a flow with queued packets stays in its queue, new flows take
	// the emptiest one, and the wired flow controller must implement
	// flowcontrol.QueueSender/QueueReceiver so pause/resume is scoped per
	// queue. Setting it forces the output-queued SchedFIFO discipline —
	// BFC's design point is that the physical queues themselves replace
	// ingress FIFOs and VOQs. Zero (the default) disables per-flow
	// queueing and costs the hot path nothing.
	FlowQueues int
	// TxRing is the per-egress TX ring capacity in packets for
	// SchedBlocking; default 128 (DPDK rings are a few hundred
	// descriptors).
	TxRing int
	// FeedbackJitter adds a uniform random [0, FeedbackJitter) component
	// to every feedback message's processing delay, seeded by
	// JitterSeed. Software switches (the paper's testbed runs DPDK
	// forwarding on general-purpose cores) have exactly this kind of
	// latency variance, and it is what lets pause cascades break the
	// perfect symmetry a deterministic simulation would otherwise
	// preserve. Zero disables jitter. When enabled, Tau must budget for
	// the added worst-case latency or PFC headroom sizing will be too
	// small to stay lossless.
	FeedbackJitter units.Time
	// JitterSeed seeds the jitter source; runs are reproducible per
	// seed.
	JitterSeed int64
	// PriorityWeights assigns weighted-round-robin shares to the
	// priority classes at every egress (§7: "the output queue scheduling
	// should be enabled to assign minimal output bandwidth to each
	// priority", preventing starvation that would exhaust a low class's
	// buffers). Length must equal Priorities; nil means equal weights.
	PriorityWeights []int
	// Escalation, when non-nil, may raise a packet's priority class at
	// switch admission — the hop-by-hop priority-increase family of
	// deadlock avoidance schemes the paper's related work surveys
	// (virtual channels, dateline routing, Tagger). It is called before
	// ingress accounting; returning the current priority is a no-op,
	// and lowering or exceeding Priorities-1 panics (a scheme bug).
	Escalation func(pkt *Packet, at topology.NodeID) int
	// Trace receives observation callbacks; may be nil.
	Trace *Trace
	// Metrics, when non-nil, is bound to this network at construction and
	// accumulates per-channel counters plus runtime invariant verdicts
	// (losslessness, theorem ceilings). Every hot-path call is guarded by
	// a single nil check, so a nil Metrics costs nothing. The registry
	// must be fresh (unbound) and must not be shared across networks.
	Metrics *metrics.Registry
	// Faults, when non-nil, executes a compiled fault plan against this
	// network: its timeline events (flaps, rate degradation, bursts) are
	// scheduled on the engine at construction, and the feedback path
	// consults it per message. Like Metrics it sits behind one nil check —
	// a nil Faults costs nothing — and like Metrics it must be fresh
	// (faults.Plan.NewInjector per network): the injector owns the fault
	// plan's random source, and sharing one would interleave draws across
	// networks and destroy per-seed reproducibility.
	Faults *faults.Injector
}

func (c *Config) fillDefaults() {
	if c.MTU == 0 {
		c.MTU = 1500 * units.Byte
	}
	if c.Priorities == 0 {
		c.Priorities = 1
	}
	if c.ProcDelay == 0 {
		c.ProcDelay = 3 * units.Microsecond
	}
	if c.HostQueueDepth == 0 {
		c.HostQueueDepth = 1
	}
	if c.TxRing == 0 {
		c.TxRing = 128
	}
	if c.FlowQueues > 0 {
		c.Scheduling = SchedFIFO
	}
}

func (c *Config) validate() error {
	if c.BufferSize <= 0 {
		return fmt.Errorf("netsim: BufferSize must be positive")
	}
	if c.FlowControl == nil {
		return fmt.Errorf("netsim: FlowControl factory is required")
	}
	if c.Priorities < 1 || c.Priorities > 8 {
		return fmt.Errorf("netsim: Priorities %d outside [1,8]", c.Priorities)
	}
	if c.FlowQueues < 0 || c.FlowQueues > 64 {
		return fmt.Errorf("netsim: FlowQueues %d outside [0,64]", c.FlowQueues)
	}
	if c.PriorityWeights != nil {
		if len(c.PriorityWeights) != c.Priorities {
			return fmt.Errorf("netsim: %d priority weights for %d classes",
				len(c.PriorityWeights), c.Priorities)
		}
		for i, w := range c.PriorityWeights {
			if w < 1 {
				return fmt.Errorf("netsim: priority %d weight %d must be >= 1", i, w)
			}
		}
	}
	return nil
}

// Scheduling selects how an egress port serves packets from different input
// ports.
type Scheduling uint8

// Switching disciplines.
const (
	// SchedInputQueued models the paper's testbed switch (§6.1.1): a
	// FIFO ingress ring per input port, served round-robin by the
	// forwarding path, with head-of-line blocking — a packet whose
	// egress cannot transmit blocks everything behind it on the same
	// input and priority. This is the discipline under which PFC/CBFC
	// deadlock exactly as the paper reports, and it is the default.
	SchedInputQueued Scheduling = iota
	// SchedFIFO is a simple output-queued switch: each egress transmits
	// in arrival order across all inputs. Under sustained
	// oversubscription an input's service share equals its arrival
	// share.
	SchedFIFO
	// SchedVOQ keeps a virtual output queue per input port at each
	// egress and serves them round-robin — per-input fairness with no
	// head-of-line blocking, as in ideal crossbar fabrics.
	SchedVOQ
	// SchedBlocking models the paper's DPDK software switch faithfully:
	// a forwarding core serves the ingress FIFOs round-robin and moves
	// packets into bounded per-egress TX rings. When the selected head's
	// TX ring is full the whole forwarding path stalls until that ring
	// has room — which is what lets a PFC-paused port freeze an entire
	// switch and cascade into the deadlocks of Figures 9/10, while
	// GFC's always-positive drain keeps the stalls transient.
	SchedBlocking
)

func (s Scheduling) String() string {
	switch s {
	case SchedInputQueued:
		return "input-queued"
	case SchedFIFO:
		return "fifo"
	case SchedVOQ:
		return "voq"
	case SchedBlocking:
		return "blocking"
	default:
		return "scheduling(?)"
	}
}
