package netsim

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/topology"
)

// This file is the wire half of the simulator: transmission completion at
// the sending port and admission at the receiving node. Both run on
// pre-bound callbacks — the in-flight transmission lives in the port's
// txPkt/txPrio/txDur slots (a port serialises transmissions via busy), and
// packets propagating on a channel sit in the receiving port's FIFO, popped
// in order because a link's arrivals cannot overtake one another. Arrival
// callbacks batch: see Network.arriveBatch.

// completeTx finishes the port's in-flight transmission: notifies flow
// control, releases ingress accounting at the transmitting switch,
// propagates the packet and restarts the transmitter.
func (n *Network) completeTx(p *port) {
	pkt, prio, dur := p.txPkt, p.txPrio, p.txDur
	p.txPkt = nil
	now := n.eng.Now()
	p.busy = false
	n.senders[p.cb+prio].OnSent(pkt.Size, dur)
	n.txBytes[p.cb+prio] += pkt.Size
	n.cfg.Trace.transmit(now, p.owner.id, p.local, pkt)

	switch p.owner.kind {
	case topology.Switch:
		// The packet leaves this switch: release the ingress buffer
		// of the port it arrived on.
		ing := p.owner.ports[pkt.arrivalPort]
		ch := ing.cb + prio
		n.occupancy[ch] -= pkt.Size
		n.progress[ch].departed += pkt.Size
		n.progress[ch].lastDepart = now
		n.cfg.Trace.queue(now, p.owner.id, ing.local, prio, n.occupancy[ch])
		if reg := n.metrics; reg != nil {
			reg.OnRelease(ch, now, pkt.Size, n.occupancy[ch])
		}
		if r := n.receivers[ch]; r != nil {
			r.OnDeparture(pkt.Size, n.occupancy[ch])
		}
		if n.fq > 0 {
			if qr := n.queueReceivers[ch]; qr != nil {
				qr.OnQueueDeparture(int(pkt.arrivalQueue), pkt.Size, n.occupancy[ch])
			}
		}
	case topology.Host:
		pkt.Flow.sent += pkt.Size
		pkt.sentAt = now
		n.refill(p.owner)
	}

	rp := n.nodes[p.peer].ports[p.peerPort]
	if reg := n.metrics; reg != nil {
		reg.OnTx(rp.cb+prio, pkt.Size)
	}
	rp.pushInFlight(pkt)
	n.noteArrival(n.eng.After(p.link.Delay, rp.arriveFn), rp)
	n.kick(p)
}

// arrive admits a fully received packet at nd via local port idx.
func (n *Network) arrive(nd *node, idx int, pkt *Packet) {
	now := n.eng.Now()
	n.cfg.Trace.arrival(now, nd.id, pkt)

	if nd.kind == topology.Host {
		f := pkt.Flow
		f.Delivered += pkt.Size
		if reg := n.metrics; reg != nil {
			// Hosts consume on arrival; account the delivery with a
			// permanently empty ingress.
			reg.OnAdmit(nd.ports[idx].cb+pkt.Priority, now, pkt.Size, 0)
		}
		n.cfg.Trace.deliver(now, f, pkt)
		if f.OnPacket != nil {
			f.OnPacket(f, pkt)
		}
		if f.Done() && f.Finished == 0 {
			f.Finished = now
			n.cfg.Trace.flowDone(now, f)
			if f.OnDone != nil {
				f.OnDone(f)
			}
		}
		n.recyclePacket(pkt)
		return
	}

	if n.cfg.Escalation != nil {
		np := n.cfg.Escalation(pkt, nd.id)
		if np < pkt.Priority || np >= n.cfg.Priorities {
			panic(fmt.Sprintf("netsim: escalation moved priority %d -> %d (classes: %d) at t=%v event=%d",
				pkt.Priority, np, n.cfg.Priorities, now, n.eng.Fired()))
		}
		pkt.Priority = np
	}
	prio := pkt.Priority
	ing := nd.ports[idx]
	ch := ing.cb + prio
	occ := n.occupancy[ch] + pkt.Size
	if occ > ing.buffer {
		// A lossless fabric must never get here; record and drop.
		n.drops++
		n.cfg.Trace.drop(now, nd.id, pkt)
		if reg := n.metrics; reg != nil {
			reg.OnDrop(ch, now, pkt.Size, occ)
		}
		n.recyclePacket(pkt)
		return
	}
	if n.occupancy[ch] == 0 {
		n.progress[ch].occupiedSince = now
	}
	n.occupancy[ch] = occ
	n.cfg.Trace.queue(now, nd.id, idx, prio, occ)
	if reg := n.metrics; reg != nil {
		reg.OnAdmit(ch, now, pkt.Size, occ)
	}
	if r := n.receivers[ch]; r != nil {
		r.OnArrival(pkt.Size, occ)
	}
	if n.fq > 0 {
		// Freeze the upstream queue assignment: this is the physical
		// queue the packet occupies at this ingress until it departs,
		// regardless of which queue the next hop assigns it.
		pkt.arrivalQueue = pkt.queue
		if qr := n.queueReceivers[ch]; qr != nil {
			qr.OnQueueArrival(int(pkt.arrivalQueue), pkt.Size, occ)
		}
	}
	pkt.arrivalPort = idx
	pkt.hop++
	hop := pkt.Path[pkt.hop]
	if hop.Node != nd.id {
		panic(fmt.Sprintf("netsim: packet path desync: at node %d, path says %d (t=%v event=%d)",
			nd.id, hop.Node, now, n.eng.Fired()))
	}
	out := nd.ports[hop.Port]
	switch n.cfg.Scheduling {
	case SchedInputQueued:
		// Input-queued switching: the packet waits in the ingress
		// FIFO; congestion shows as ingress occupancy.
		if n.cfg.ECNThreshold > 0 && occ >= n.cfg.ECNThreshold {
			pkt.ECN = true
		}
		q := &n.inq[ch]
		q.push(pkt)
		if q.len() == 1 {
			n.kick(out)
		}
		return
	case SchedBlocking:
		// The packet joins the ingress FIFO; the forwarding core
		// moves it to a TX ring when its turn comes.
		if n.cfg.ECNThreshold > 0 && occ >= n.cfg.ECNThreshold {
			pkt.ECN = true
		}
		n.inq[ch].push(pkt)
		n.forward(nd, prio)
		return
	}
	if n.cfg.ECNThreshold > 0 && n.queuedBytes[out.cb+prio] >= n.cfg.ECNThreshold {
		pkt.ECN = true
	}
	n.enqueue(out, pkt)
	n.kick(out)
}
