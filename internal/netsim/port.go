package netsim

import (
	"github.com/gfcsim/gfc/internal/eventsim"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// Hot-path state does not live on the port: it lives in dense struct-of-
// arrays on the Network, indexed by the dense channel index cb+prio (see
// Network's state block). The port keeps only identity, the precomputed
// index bases, and the per-port scalars (busy flag, in-flight transmission,
// timers). This mirrors the metrics registry's channel indexing, so one
// index addresses a channel's occupancy, backlog, controllers and counters
// across every array.

// voq is one virtual output queue: the packets a single input port has
// pending on an egress. In FIFO mode a port has one slot per priority and it
// holds the mixed arrival-order queue; per-input byte accounting is kept
// either way (Network.fedBytes) for the deadlock detector's FedBy edges.
type voq struct {
	q     pktQueue
	bytes units.Size
}

// port is one attachment point of a node: egress transmitter plus ingress
// buffer accounting for the attached channel.
type port struct {
	owner    *node
	local    int // port index on owner
	link     *topology.Link
	peer     topology.NodeID
	peerPort int
	capacity units.Rate
	// adminDown marks the attached link administratively down (fault
	// injection): the transmitter stops, feedback is lost, but unlike
	// link.Failed the state is dynamic and the wired controllers stay in
	// place for the link's return.
	adminDown bool

	sched Scheduling

	// Dense index bases into the Network's struct-of-arrays state.
	//
	// cb is the channel base: the index of (this port, priority 0) in
	// every per-channel array (occupancy, queuedBytes, txBytes, progress,
	// senders, receivers, rrVoq, inq) — and, by construction, the metrics
	// registry's ChannelIndex for the same channel, so cb+prio also
	// addresses the registry.
	cb int
	// voqBase and slots address Network.voqs: the egress queue for
	// (prio, slot) is voqs[voqBase + prio*slots + slot]. slots is the
	// owner's port count under SchedVOQ and 1 otherwise.
	voqBase int
	slots   int
	// fedBase addresses Network.fedBytes: the per-input backlog of
	// (prio, arrival key) is fedBytes[fedBase + prio*len(owner.ports) + key].
	fedBase int

	// Egress scalars.
	queuedPkts int
	busy       bool
	rr         int
	wrrCredit  []int // weighted-RR packet credits per priority (nil: equal)
	// prioScratch is the reusable buffer prioOrder fills when the network
	// runs more than one priority class; nil in the single-class case.
	prioScratch []int

	// Pre-bound event callbacks, created once at network construction so
	// the hot path schedules stored funcs instead of allocating a fresh
	// closure per kick, transmission and arrival.
	kickFn   func()     // wake-up timer: retry a flow-control-blocked egress
	txDoneFn func()     // transmission completion for the in-flight packet
	arriveFn func()     // link-delay arrival at the *receiving* end (this port)
	kickAt   units.Time // when the pending kick timer fires; Never if none
	kickEv   eventsim.Event
	txPkt    *Packet // the single in-flight transmission (guarded by busy)
	txPrio   int
	txDur    units.Time
	prop     pktQueue // packets in flight *toward* this port, FIFO

	// Ingress scalars.
	buffer units.Size
}

// ingressProgress is one priority's forwarding-progress record: cumulative
// bytes released, and the lastDepart / occupiedSince timestamps — when the
// buffer last released a packet and when it last went from empty to
// occupied. Together they let the deadlock detector decide "no progress for
// a window" from one snapshot instead of keeping its own departure-delta
// maps.
type ingressProgress struct {
	departed      units.Size
	lastDepart    units.Time
	occupiedSince units.Time
}

func (p *port) totalQueued() int { return p.queuedPkts }

// pushInFlight records a packet serialised onto the channel toward this
// port. Arrivals pop in push order: the upstream transmitter is serialised
// by its busy flag and the propagation delay is a per-link constant, so
// arrival times are strictly increasing.
func (p *port) pushInFlight(pkt *Packet) { p.prop.push(pkt) }

// popInFlight removes the oldest in-flight packet.
func (p *port) popInFlight() *Packet { return p.prop.pop() }

// arrivalKey is the per-input accounting slot of pkt at this node.
func arrivalKey(pkt *Packet) int {
	if pkt.arrivalPort < 0 {
		return 0 // host injection
	}
	return pkt.arrivalPort
}

// flowAssign is one flow's current queue assignment on an egress channel:
// the physical queue it occupies and how many of its packets are queued
// there. The assignment is released when the count drains to zero, so a
// returning flow can land on whatever queue is emptiest by then — BFC's
// dynamic (not hashed) flow→queue mapping.
type flowAssign struct {
	slot int32
	pkts int32
}

// assignSlot picks the physical queue for pkt on egress channel p/prio
// (Config.FlowQueues > 0): the flow's existing queue while it has packets
// there, otherwise the lowest-indexed empty queue, otherwise the queue with
// the fewest assigned flows (lowest index breaking ties). Deterministic by
// construction — no map iteration, only keyed lookups and index-order scans.
func (n *Network) assignSlot(p *port, pkt *Packet) int {
	ch := p.cb + pkt.Priority
	m := n.qAssign[ch]
	if m == nil {
		m = make(map[int]flowAssign, n.fq)
		n.qAssign[ch] = m
	}
	id := pkt.Flow.ID
	if a, ok := m[id]; ok {
		a.pkts++
		m[id] = a
		return int(a.slot)
	}
	base := p.voqBase + pkt.Priority*p.slots
	best, bestFlows := 0, n.slotFlows[base]
	for i := 0; i < p.slots && bestFlows > 0; i++ {
		if f := n.slotFlows[base+i]; f < bestFlows {
			best, bestFlows = i, f
		}
	}
	n.slotFlows[base+best]++
	m[id] = flowAssign{slot: int32(best), pkts: 1}
	return best
}

// releaseSlot decrements the dequeued packet's flow assignment, freeing the
// queue claim once its last queued packet leaves.
func (n *Network) releaseSlot(p *port, prio int, pkt *Packet) {
	ch := p.cb + prio
	m := n.qAssign[ch]
	id := pkt.Flow.ID
	a := m[id]
	a.pkts--
	if a.pkts <= 0 {
		delete(m, id)
		n.slotFlows[p.voqBase+prio*p.slots+int(a.slot)]--
		return
	}
	m[id] = a
}

// enqueue appends pkt to p's egress for its priority.
func (n *Network) enqueue(p *port, pkt *Packet) {
	key := arrivalKey(pkt)
	slot := key
	if p.sched != SchedVOQ {
		slot = 0 // FIFO / TX-ring order for every other discipline
	}
	if n.fq > 0 {
		slot = n.assignSlot(p, pkt)
		pkt.queue = int32(slot)
	}
	v := &n.voqs[p.voqBase+pkt.Priority*p.slots+slot]
	v.q.push(pkt)
	v.bytes += pkt.Size
	n.fedBytes[p.fedBase+pkt.Priority*len(p.owner.ports)+key] += pkt.Size
	n.queuedBytes[p.cb+pkt.Priority] += pkt.Size
	p.queuedPkts++
}

// nextPacket returns (without removing) the next packet of the given
// priority on p and its queue slot, or nil: the global head in FIFO mode,
// the round-robin VOQ head in VOQ mode.
func (n *Network) nextPacket(p *port, prio int) (*Packet, int) {
	base := p.voqBase + prio*p.slots
	if p.slots == 1 {
		if v := &n.voqs[base]; !v.q.empty() {
			return v.q.front(), 0
		}
		return nil, -1
	}
	for i := 0; i < p.slots; i++ {
		k := (int(n.rrVoq[p.cb+prio]) + i) % p.slots
		if v := &n.voqs[base+k]; !v.q.empty() {
			return v.q.front(), k
		}
	}
	return nil, -1
}

// dequeue removes the head of p's queue slot for prio and advances the
// round-robin cursor.
func (n *Network) dequeue(p *port, prio, slot int) *Packet {
	v := &n.voqs[p.voqBase+prio*p.slots+slot]
	pkt := v.q.pop()
	v.bytes -= pkt.Size
	n.fedBytes[p.fedBase+prio*len(p.owner.ports)+arrivalKey(pkt)] -= pkt.Size
	n.queuedBytes[p.cb+prio] -= pkt.Size
	p.queuedPkts--
	n.rrVoq[p.cb+prio] = int32((slot + 1) % p.slots)
	if n.fq > 0 {
		n.releaseSlot(p, prio, pkt)
	}
	return pkt
}

// node is a host or switch instance.
type node struct {
	id    topology.NodeID
	kind  topology.Kind
	ports []*port
	// nb is the node base into the per-(node, priority) forwarding arrays
	// (Network.fwdCursor/fwdBlocked/forwarding): nb+prio addresses this
	// node's entry.
	nb int

	// Host state.
	flows    []*Flow
	rrFlow   int
	refillAt units.Time
	refillEv eventsim.Event
	refillFn func() // pre-bound refill timer callback
	// burstBytes is the remaining fault-injected burst budget: while
	// positive, flow pacers are bypassed so the host injects at NIC speed
	// (a synchronised burst), decremented per released packet.
	burstBytes units.Size
}
