package netsim

import (
	"github.com/gfcsim/gfc/internal/eventsim"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// voq is one virtual output queue: the packets a single input port has
// pending on an egress. In FIFO mode only voqs[prio][0] is used and holds
// the mixed arrival-order queue; per-input byte accounting is kept either
// way for the deadlock detector's FedBy edges.
type voq struct {
	pkts  []*Packet
	bytes units.Size
}

// port is one attachment point of a node: egress transmitter plus ingress
// buffer accounting for the attached channel.
type port struct {
	owner    *node
	local    int // port index on owner
	link     *topology.Link
	peer     topology.NodeID
	peerPort int
	capacity units.Rate
	// adminDown marks the attached link administratively down (fault
	// injection): the transmitter stops, feedback is lost, but unlike
	// link.Failed the state is dynamic and the wired controllers stay in
	// place for the link's return.
	adminDown bool

	// Egress state.
	sched       Scheduling
	voqs        [][]voq        // [priority][arrival port] (FIFO mode: slot 0 only)
	fedBytes    [][]units.Size // [priority][arrival port] backlog accounting
	rrVoq       []int          // per priority, round-robin cursor over VOQs
	queuedBytes []units.Size
	queuedPkts  int
	busy        bool
	senders     []flowcontrol.Sender
	rr          int
	wrrCredit   []int        // weighted-RR packet credits per priority (nil: equal)
	txBytes     []units.Size // per priority, cumulative data serialised

	// Pre-bound event callbacks, created once at network construction so
	// the hot path schedules stored funcs instead of allocating a fresh
	// closure per kick, transmission and arrival.
	kickFn    func()     // wake-up timer: retry a flow-control-blocked egress
	txDoneFn  func()     // transmission completion for the in-flight packet
	arriveFn  func()     // link-delay arrival at the *receiving* end (this port)
	kickAt    units.Time // when the pending kick timer fires; Never if none
	kickEv    eventsim.Event
	txPkt     *Packet // the single in-flight transmission (guarded by busy)
	txPrio    int
	txDur     units.Time
	propQueue []*Packet // packets in flight *toward* this port, FIFO
	propHead  int

	// Ingress state.
	occupancy []units.Size
	// progress holds the per-priority forwarding-progress counters (one
	// slice, one allocation — this sits on the per-network construction
	// path the alloc benchmarks budget).
	progress  []ingressProgress
	receivers []flowcontrol.Receiver
	buffer    units.Size
	// mBase is the metrics channel index of (this port, priority 0); the
	// hot path indexes the registry with mBase+prio. Unused (0) when
	// metrics are disabled.
	mBase int
	// inq is the per-priority ingress FIFO used by SchedInputQueued at
	// switches: packets wait here until their egress can take them, with
	// head-of-line blocking.
	inq [][]*Packet
}

// ingressProgress is one priority's forwarding-progress record: cumulative
// bytes released, and the lastDepart / occupiedSince timestamps — when the
// buffer last released a packet and when it last went from empty to
// occupied. Together they let the deadlock detector decide "no progress for
// a window" from one snapshot instead of keeping its own departure-delta
// maps.
type ingressProgress struct {
	departed      units.Size
	lastDepart    units.Time
	occupiedSince units.Time
}

func (p *port) totalQueued() int { return p.queuedPkts }

// pushInFlight records a packet serialised onto the channel toward this
// port. Arrivals pop in push order: the upstream transmitter is serialised
// by its busy flag and the propagation delay is a per-link constant, so
// arrival times are strictly increasing.
func (p *port) pushInFlight(pkt *Packet) { p.propQueue = append(p.propQueue, pkt) }

// popInFlight removes the oldest in-flight packet.
func (p *port) popInFlight() *Packet {
	pkt := p.propQueue[p.propHead]
	p.propQueue[p.propHead] = nil
	p.propHead++
	if p.propHead == len(p.propQueue) {
		p.propQueue = p.propQueue[:0]
		p.propHead = 0
	}
	return pkt
}

// arrivalKey is the per-input accounting slot of pkt at this node.
func arrivalKey(pkt *Packet) int {
	if pkt.arrivalPort < 0 {
		return 0 // host injection
	}
	return pkt.arrivalPort
}

// enqueue appends pkt to the egress for its priority.
func (p *port) enqueue(pkt *Packet) {
	key := arrivalKey(pkt)
	slot := key
	if p.sched != SchedVOQ {
		slot = 0 // FIFO / TX-ring order for every other discipline
	}
	v := &p.voqs[pkt.Priority][slot]
	v.pkts = append(v.pkts, pkt)
	v.bytes += pkt.Size
	p.fedBytes[pkt.Priority][key] += pkt.Size
	p.queuedBytes[pkt.Priority] += pkt.Size
	p.queuedPkts++
}

// nextPacket returns (without removing) the next packet of the given
// priority and its queue slot, or nil: the global head in FIFO mode, the
// round-robin VOQ head in VOQ mode.
func (p *port) nextPacket(prio int) (*Packet, int) {
	vs := p.voqs[prio]
	if p.sched != SchedVOQ {
		if len(vs[0].pkts) > 0 {
			return vs[0].pkts[0], 0
		}
		return nil, -1
	}
	for i := 0; i < len(vs); i++ {
		k := (p.rrVoq[prio] + i) % len(vs)
		if len(vs[k].pkts) > 0 {
			return vs[k].pkts[0], k
		}
	}
	return nil, -1
}

// dequeue removes the head of queue slot for prio and advances the cursor.
func (p *port) dequeue(prio, slot int) *Packet {
	v := &p.voqs[prio][slot]
	pkt := v.pkts[0]
	v.pkts = v.pkts[1:]
	v.bytes -= pkt.Size
	p.fedBytes[prio][arrivalKey(pkt)] -= pkt.Size
	p.queuedBytes[prio] -= pkt.Size
	p.queuedPkts--
	p.rrVoq[prio] = (slot + 1) % len(p.voqs[prio])
	return pkt
}

// node is a host or switch instance.
type node struct {
	id    topology.NodeID
	kind  topology.Kind
	ports []*port

	// Host state.
	flows    []*Flow
	rrFlow   int
	refillAt units.Time
	refillEv eventsim.Event
	refillFn func() // pre-bound refill timer callback
	// burstBytes is the remaining fault-injected burst budget: while
	// positive, flow pacers are bypassed so the host injects at NIC speed
	// (a synchronised burst), decremented per released packet.
	burstBytes units.Size

	// SchedBlocking forwarding state, per priority.
	fwdCursor  []int
	fwdBlocked []*port // egress whose full TX ring stalls forwarding
	forwarding []bool  // re-entrancy guard
}
