package netsim

import (
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// ChannelState is a snapshot of one egress queue — the unit of progress the
// deadlock detector reasons about. The channel is identified by the
// transmitting node, its local port and the priority class; traffic flows
// toward Peer.
type ChannelState struct {
	Node topology.NodeID
	Port int
	Prio int
	Peer topology.NodeID
	// PeerPort is the ingress port index this channel feeds on Peer.
	PeerPort int

	// QueuedBytes is the egress backlog awaiting transmission.
	QueuedBytes units.Size
	// TxBytes is the cumulative data serialised on this channel; a
	// channel whose TxBytes has not advanced while QueuedBytes > 0 is
	// stalled.
	TxBytes units.Size
	// FedBy lists the local arrival-port indices whose VOQs hold bytes
	// on this egress — i.e. which ingress buffers this channel's backlog
	// is charged to. The deadlock detector derives wait-for edges from
	// it.
	FedBy []int
	// Rate is the flow-control permitted rate of this channel.
	Rate units.Rate
}

// ChannelStates snapshots every egress queue in the network. The slice is
// ordered deterministically (node, port, priority).
func (n *Network) ChannelStates() []ChannelState {
	var out []ChannelState
	for _, nd := range n.nodes {
		for _, p := range nd.ports {
			if p.link.Failed {
				continue
			}
			for prio := 0; prio < n.cfg.Priorities; prio++ {
				cs := ChannelState{
					Node: nd.id, Port: p.local, Prio: prio,
					Peer: p.peer, PeerPort: p.peerPort,
					QueuedBytes: n.queuedBytes[p.cb+prio],
					TxBytes:     n.txBytes[p.cb+prio],
				}
				cs.Rate = n.egressRate(p, prio)
				fed := n.fedBytes[p.fedBase+prio*len(nd.ports):]
				for key := 0; key < len(nd.ports); key++ {
					if fed[key] > 0 {
						cs.FedBy = append(cs.FedBy, key)
					}
				}
				out = append(out, cs)
			}
		}
	}
	return out
}

// IngressState is a snapshot of one ingress buffer — the vertex the
// deadlock detector's wait-for graph is built on, matching the CBD
// formalism: an ingress buffer (channel From→Node) waits on the downstream
// buffers its queued packets must enter next.
type IngressState struct {
	Node topology.NodeID // switch holding the buffer
	Port int             // local ingress port index
	Prio int
	From topology.NodeID // upstream end of the channel

	// Occupancy is the current buffer occupancy.
	Occupancy units.Size
	// Departed is the cumulative bytes that have left this buffer; an
	// occupied buffer whose Departed does not advance is stalled.
	Departed units.Size
	// LastDepartAt is when the buffer last released a packet (zero if
	// never), and OccupiedSince when it last went from empty to occupied.
	// max(LastDepartAt, OccupiedSince) is the start of the buffer's
	// current no-progress interval — what the deadlock detector windows
	// on, replacing per-poll departure deltas.
	LastDepartAt  units.Time
	OccupiedSince units.Time
	// WaitsOn lists the next-hop nodes this buffer's traffic must reach:
	// under input-queued switching, the head packet's next node (only
	// the head can move); under output-queued disciplines, every next
	// node with backlog from this ingress.
	WaitsOn []topology.NodeID
	// WaitRates[i] is the flow-control permitted rate of the egress
	// channel toward WaitsOn[i]. A stalled buffer whose every wait rate
	// is zero is blocked indefinitely (PFC pause, CBFC credit
	// starvation); a positive rate means the buffer still trickles —
	// GFC's hold-and-wait elimination in action.
	WaitRates []units.Rate
	// WaitsDown[i] reports that the egress toward WaitsOn[i] is
	// administratively down. Such a wait is a transient outage, not
	// hold-and-wait: the deadlock detector must not count it toward a
	// circular-wait verdict (a flapped link would otherwise read as a
	// ring deadlock).
	WaitsDown []bool
}

// IngressStates snapshots every switch ingress buffer, ordered (node, port,
// priority).
func (n *Network) IngressStates() []IngressState {
	var out []IngressState
	for _, nd := range n.nodes {
		if nd.kind != topology.Switch {
			continue
		}
		for _, p := range nd.ports {
			if p.link.Failed {
				continue
			}
			for prio := 0; prio < n.cfg.Priorities; prio++ {
				ch := p.cb + prio
				is := IngressState{
					Node: nd.id, Port: p.local, Prio: prio,
					From:          p.peer,
					Occupancy:     n.occupancy[ch],
					Departed:      n.progress[ch].departed,
					LastDepartAt:  n.progress[ch].lastDepart,
					OccupiedSince: n.progress[ch].occupiedSince,
				}
				addWait := func(eg *port) {
					is.WaitsOn = append(is.WaitsOn, eg.peer)
					is.WaitRates = append(is.WaitRates, n.egressRate(eg, prio))
					is.WaitsDown = append(is.WaitsDown, eg.adminDown)
				}
				switch n.cfg.Scheduling {
				case SchedInputQueued:
					if q := &n.inq[ch]; !q.empty() {
						head := q.front()
						addWait(nd.ports[head.Path[head.hop].Port])
					}
				case SchedBlocking:
					// Backlog already in TX rings waits on
					// those rings' peers; packets still in
					// the ingress FIFO wait on whatever the
					// forwarding core is stalled on (or on
					// their own head's egress).
					for _, eg := range nd.ports {
						if n.fedBytes[eg.fedBase+prio*len(nd.ports)+p.local] > 0 {
							addWait(eg)
						}
					}
					if !n.inq[ch].empty() {
						if b := n.fwdBlocked[nd.nb+prio]; b != nil {
							addWait(b)
						} else {
							head := n.inq[ch].front()
							addWait(nd.ports[head.Path[head.hop].Port])
						}
					}
				default:
					for _, eg := range nd.ports {
						if n.fedBytes[eg.fedBase+prio*len(nd.ports)+p.local] > 0 {
							addWait(eg)
						}
					}
				}
				out = append(out, is)
			}
		}
	}
	return out
}

// egressRate reports the effective flow-control permitted rate of egress
// channel p/prio. For channel-scoped schemes this is the sender's Rate().
// For per-flow-queue schemes (FlowQueues > 0) the channel-level Rate() stays
// at capacity while any queue is unpaused, which would hide a stall whose
// entire backlog sits in paused queues — so here the backlogged queues are
// probed: any sendable backlog means line rate, all-paused backlog means 0,
// and an idle channel falls back to Rate().
func (n *Network) egressRate(p *port, prio int) units.Rate {
	s := n.senders[p.cb+prio]
	if s == nil {
		return 0
	}
	if n.fq > 0 {
		if qs := n.queueSenders[p.cb+prio]; qs != nil {
			base := p.voqBase + prio*p.slots
			backlogged := false
			for i := 0; i < p.slots; i++ {
				if v := &n.voqs[base+i]; !v.q.empty() {
					backlogged = true
					if ok, _ := qs.TrySendQueue(i, v.q.front().Size); ok {
						return p.capacity
					}
				}
			}
			if backlogged {
				return 0
			}
		}
	}
	return s.Rate()
}

// DropIngressHead forcibly removes the head packet of the given ingress
// FIFO (SchedInputQueued only), releasing its buffer accounting as if it
// had departed. This is the primitive deadlock *recovery* schemes use —
// and the losslessness violation the paper criticises them for: the packet
// is counted as a drop. Returns false when there is no such packet.
func (n *Network) DropIngressHead(node topology.NodeID, portIdx, prio int) bool {
	if n.cfg.Scheduling != SchedInputQueued {
		return false
	}
	nd := n.nodes[node]
	if nd.kind != topology.Switch || portIdx >= len(nd.ports) {
		return false
	}
	ing := nd.ports[portIdx]
	ch := ing.cb + prio
	q := &n.inq[ch]
	if q.empty() {
		return false
	}
	pkt := q.pop()
	n.occupancy[ch] -= pkt.Size
	n.progress[ch].departed += pkt.Size
	n.drops++
	now := n.eng.Now()
	n.progress[ch].lastDepart = now
	n.cfg.Trace.drop(now, node, pkt)
	n.cfg.Trace.queue(now, node, portIdx, prio, n.occupancy[ch])
	if reg := n.metrics; reg != nil {
		reg.OnDrop(ch, now, pkt.Size, n.occupancy[ch]+pkt.Size)
		reg.OnRelease(ch, now, pkt.Size, n.occupancy[ch])
	}
	if r := n.receivers[ch]; r != nil {
		r.OnDeparture(pkt.Size, n.occupancy[ch])
	}
	n.recyclePacket(pkt)
	// The freed head may expose a packet for an idle egress.
	if !q.empty() {
		head := q.front()
		n.kick(nd.ports[head.Path[head.hop].Port])
	}
	return true
}

// TotalDelivered reports the sum of bytes delivered across all flows.
func (n *Network) TotalDelivered() units.Size {
	var total units.Size
	for _, f := range n.flows {
		total += f.Delivered
	}
	return total
}
