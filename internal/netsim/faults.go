package netsim

import (
	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// This file actuates the fault-injection timeline (internal/faults): the
// scheduled half of the fault model. The probabilistic half — per-message
// feedback verdicts — lives inline in fcEnv.Emit. Faults never bypass the
// normal machinery: a down link is a transmitter that refuses to start
// (kick's adminDown guard), a degraded link is a smaller capacity, a burst
// is a pacer bypass in the host refill path — so everything downstream
// (flow control, metrics, the deadlock detector) observes faults exactly as
// it would observe the real events.

// Faults returns the bound fault injector, or nil when fault injection is
// disabled.
func (n *Network) Faults() *faults.Injector { return n.faults }

// applyFault actuates one compiled timeline event.
func (n *Network) applyFault(ev faults.Event) {
	now := n.eng.Now()
	switch ev.Kind {
	case faults.LinkDown:
		n.SetLinkAdminState(ev.Link, true)
		n.recordFault(metrics.FaultEvent{
			Kind: metrics.FaultLinkDown, At: now, Channel: -1,
			Link: ev.Link, Node: n.topo.Link(ev.Link).A,
		})
	case faults.LinkUp:
		n.SetLinkAdminState(ev.Link, false)
		n.recordFault(metrics.FaultEvent{
			Kind: metrics.FaultLinkUp, At: now, Channel: -1,
			Link: ev.Link, Node: n.topo.Link(ev.Link).A,
		})
	case faults.RateScale:
		n.scaleLinkRate(ev.Link, ev.Factor)
		n.recordFault(metrics.FaultEvent{
			Kind: metrics.FaultRateScale, At: now, Channel: -1,
			Link: ev.Link, Node: n.topo.Link(ev.Link).A, Factor: ev.Factor,
		})
	case faults.HostBurst:
		h := n.nodes[ev.Node]
		if h.kind == topology.Host {
			h.burstBytes += ev.Bytes
			n.refill(h)
		}
		n.recordFault(metrics.FaultEvent{
			Kind: metrics.FaultBurst, At: now, Channel: -1,
			Link: -1, Node: ev.Node, Bytes: ev.Bytes,
		})
	}
}

func (n *Network) recordFault(ev metrics.FaultEvent) {
	if reg := n.metrics; reg != nil {
		reg.OnFault(ev)
	}
}

// linkPorts returns the two port instances attached to link id.
func (n *Network) linkPorts(id topology.LinkID) (*port, *port) {
	l := n.topo.Link(id)
	return n.nodes[l.A].ports[l.PortA], n.nodes[l.B].ports[l.PortB]
}

// SetLinkAdminState takes the link administratively down or up. Down: both
// transmitters stop after their in-flight packet (an administrative drain,
// not a packet loss — the fabric stays lossless), feedback crossing the
// link is destroyed, queued traffic holds. Up: both transmitters restart.
//
// Coming up also restarts the stall clock of every occupied switch ingress
// buffer in the network: the wait-for graph those windows were measured
// under included an outage, so a deadlock verdict may only accumulate from
// the repaired topology onward (the detector excludes buffers actively
// waiting on a down link, but buffers further upstream window on
// LastDepartAt/OccupiedSince and would otherwise carry outage time into a
// false verdict).
func (n *Network) SetLinkAdminState(id topology.LinkID, down bool) {
	pa, pb := n.linkPorts(id)
	pa.adminDown, pb.adminDown = down, down
	if down {
		return
	}
	now := n.eng.Now()
	for _, nd := range n.nodes {
		if nd.kind != topology.Switch {
			continue
		}
		for _, p := range nd.ports {
			for prio := 0; prio < n.cfg.Priorities; prio++ {
				if n.occupancy[p.cb+prio] > 0 {
					n.progress[p.cb+prio].occupiedSince = now
				}
			}
		}
	}
	n.kick(pa)
	n.kick(pb)
	// A host behind the restored link may have withheld injection.
	for _, nd := range []*node{pa.owner, pb.owner} {
		if nd.kind == topology.Host {
			n.refill(nd)
		}
	}
}

// LinkAdminDown reports whether link id is administratively down.
func (n *Network) LinkAdminDown(id topology.LinkID) bool {
	pa, _ := n.linkPorts(id)
	return pa.adminDown
}

// scaleLinkRate runs both directions of the link at factor × the nominal
// capacity. An in-flight transmission finishes at the old rate; the next
// one serialises at the new. Flow controllers keep their construction-time
// parameters — a degraded link looks to them like mysteriously slow
// drains, exactly as an autoneg downshift does in a real fabric.
func (n *Network) scaleLinkRate(id topology.LinkID, factor float64) {
	pa, pb := n.linkPorts(id)
	nominal := n.topo.Link(id).Capacity
	scaled := units.Rate(float64(nominal) * factor)
	if scaled <= 0 {
		scaled = 1 // a zero rate would make TransmissionTime divide by zero
	}
	pa.capacity, pb.capacity = scaled, scaled
}
