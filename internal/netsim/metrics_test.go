package netsim

import (
	"errors"
	"testing"

	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// runCongested drives the 2:1 incast with GFC and the given registry
// attached, returning the network after 5 ms of simulated time.
func runCongested(t *testing.T, reg *metrics.Registry) *Network {
	t.Helper()
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	cfg := baseConfig(gfcFactory())
	cfg.Metrics = reg
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range []string{"H1", "H2"} {
		if err := n.AddFlow(spfFlow(t, topo, i+1, src, "H3", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(5 * units.Millisecond)
	return n
}

func TestMetricsIntegration(t *testing.T) {
	reg := metrics.New(metrics.Options{SeriesCap: 256})
	n := runCongested(t, reg)
	if n.Metrics() != reg {
		t.Fatal("Metrics() does not return the attached registry")
	}

	sum := reg.Summary()
	if sum.BytesIn == 0 || sum.BytesOut == 0 {
		t.Fatalf("no traffic recorded: %+v", sum)
	}
	if sum.Drops != 0 || n.Drops() != 0 {
		t.Fatalf("drops: summary %d, network %d", sum.Drops, n.Drops())
	}
	// The registry's wire accounting must agree with the network's own.
	if sum.FeedbackWire != n.FeedbackBytes() {
		t.Fatalf("FeedbackWire %v != network FeedbackBytes %v", sum.FeedbackWire, n.FeedbackBytes())
	}
	if sum.FeedbackMsgs == 0 || sum.StageMsgs == 0 {
		t.Fatalf("GFC run recorded no stage feedback: %+v", sum)
	}

	// The congested switch ingress must have queued, stayed within its
	// buffer, recorded progress, and produced an occupancy series.
	sw, h1 := n.Topology().MustLookup("S1"), n.Topology().MustLookup("H1")
	idx := reg.ChannelIndex(sw, n.PortFor(sw, h1), 0)
	c := reg.Counter(idx)
	if c.BytesIn == 0 || c.Departed == 0 || c.Admits == 0 {
		t.Fatalf("switch ingress counters empty: %+v", c)
	}
	if c.HighWater == 0 || c.HighWater > reg.Buffer(idx) {
		t.Fatalf("HighWater %v outside (0, %v]", c.HighWater, reg.Buffer(idx))
	}
	if c.LastDepartAt == 0 {
		t.Fatal("LastDepartAt never set")
	}
	if s := reg.Series(idx); s == nil || s.Len() == 0 {
		t.Fatal("no occupancy series for the congested ingress")
	}
	// GFC under 2:1 congestion must have pushed past stage 0, and netsim
	// must have armed the stage table so the IDs were range-checked.
	if c.MaxStage < 1 {
		t.Fatalf("MaxStage = %d, want ≥ 1 under congestion", c.MaxStage)
	}
	// netsim derives the theorem ceiling from the sender's Bm.
	if reg.Ceiling(idx) == 0 || reg.Ceiling(idx) > reg.Buffer(idx) {
		t.Fatalf("ceiling %v not derived within buffer %v", reg.Ceiling(idx), reg.Buffer(idx))
	}

	// A clean lossless run reports no violations.
	if err := reg.Err(); err != nil {
		t.Fatalf("invariants violated on a clean run: %v", err)
	}
	rep := reg.Report(n.Now())
	if len(rep.Channels) == 0 || rep.Totals.BytesIn != sum.BytesIn {
		t.Fatalf("report inconsistent: %+v", rep.Totals)
	}
}

// A deliberately tightened ceiling must be caught by the invariant checker
// and surfaced as a structured report — the acceptance test for seeded
// buffer-bound violations.
func TestMetricsSeededViolation(t *testing.T) {
	reg := metrics.New(metrics.Options{})
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	cfg := baseConfig(gfcFactory())
	cfg.Metrics = reg
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sw, h1 := topo.MustLookup("S1"), topo.MustLookup("H1")
	idx := reg.ChannelIndex(sw, n.PortFor(sw, h1), 0)
	reg.SetCeiling(idx, 2*units.KB) // far below what 2:1 congestion queues
	for i, src := range []string{"H1", "H2"} {
		if err := n.AddFlow(spfFlow(t, topo, i+1, src, "H3", 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	n.Run(5 * units.Millisecond)

	err = reg.Err()
	if err == nil {
		t.Fatal("seeded ceiling violation not caught")
	}
	var ie *metrics.InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("Err type = %T (%v)", err, err)
	}
	found := false
	for _, v := range ie.Violations {
		if v.Kind == metrics.ViolationCeiling && v.Node == sw && v.Limit == 2*units.KB {
			found = true
			if v.Occupancy <= v.Limit {
				t.Fatalf("violation occupancy %v not above limit %v", v.Occupancy, v.Limit)
			}
		}
	}
	if !found {
		t.Fatalf("no ceiling violation on the seeded channel: %v", ie.Violations)
	}
}

// Disabled metrics must stay invisible: identical delivery with and without
// a registry attached.
func TestMetricsDisabledParity(t *testing.T) {
	without := runCongested(t, nil)
	with := runCongested(t, metrics.New(metrics.Options{SeriesCap: 256}))
	for i := range without.Flows() {
		a, b := without.Flows()[i], with.Flows()[i]
		if a.Delivered != b.Delivered {
			t.Fatalf("flow %d delivered %v without metrics, %v with", i, a.Delivered, b.Delivered)
		}
	}
	if without.FeedbackBytes() != with.FeedbackBytes() {
		t.Fatal("metrics changed feedback behaviour")
	}
}
