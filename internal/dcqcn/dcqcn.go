// Package dcqcn implements DCQCN (Zhu et al., SIGCOMM 2015), the end-to-end
// congestion control the paper pairs with GFC in its Figure 20 interaction
// study (§7). The three roles:
//
//   - CP (congestion point, the switch): ECN-marks packets when the queue
//     exceeds a threshold — provided by netsim.Config.ECNThreshold;
//   - NP (notification point, the receiver): echoes marks back as CNPs, at
//     most one per flow per CNP interval N;
//   - RP (reaction point, the sender NIC): multiplicative decrease on CNP,
//     then fast recovery / additive increase / hyper increase.
//
// The RP attaches to a simulated flow as its netsim.Pacer.
package dcqcn

import (
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/units"
)

// Config holds the DCQCN constants. The zero value is unusable; start from
// DefaultConfig, whose values are the paper's Figure 20 settings (α=0.5,
// g=1/256, N=50µs, K=55µs) with the DCQCN paper's defaults for the rest.
type Config struct {
	LineRate units.Rate
	// AlphaInit seeds the congestion estimate α.
	AlphaInit float64
	// G is the α averaging gain g.
	G float64
	// CNPInterval is N: the NP sends at most one CNP per flow per N.
	CNPInterval units.Time
	// AlphaTimer is K: without CNPs for K, α decays by (1−g).
	AlphaTimer units.Time
	// IncreaseTimer is the RP rate-increase period.
	IncreaseTimer units.Time
	// IncreaseBytes is the byte-counter stage size (0 disables the byte
	// counter).
	IncreaseBytes units.Size
	// F is the number of fast-recovery stages before additive increase.
	F int
	// RAI is the additive-increase step; RHAI the hyper-increase step.
	RAI  units.Rate
	RHAI units.Rate
	// MinRate floors the sending rate.
	MinRate units.Rate
	// CNPDelay is the latency from the NP observing a mark to the RP
	// reacting (reverse-path latency); zero derives ~1 RTT segment from
	// the flow path at attach time.
	CNPDelay units.Time
}

// DefaultConfig returns the paper's Figure 20 parameterisation for a line
// rate c.
func DefaultConfig(c units.Rate) Config {
	return Config{
		LineRate:      c,
		AlphaInit:     0.5,
		G:             1.0 / 256,
		CNPInterval:   50 * units.Microsecond,
		AlphaTimer:    55 * units.Microsecond,
		IncreaseTimer: 55 * units.Microsecond,
		IncreaseBytes: 10 * units.MB,
		F:             5,
		RAI:           40 * units.Mbps,
		RHAI:          400 * units.Mbps,
		MinRate:       1 * units.Mbps,
	}
}

// RP is the per-flow reaction point: a netsim.Pacer plus the DCQCN rate
// state machine.
type RP struct {
	cfg Config
	net *netsim.Network

	rc, rt   units.Rate // current and target rate
	alpha    float64
	lastCNP  units.Time
	everCNP  bool
	tStage   int
	bStage   int
	bCounter units.Size

	next units.Time // pacer release gate

	// RateLog, when non-nil, receives (time, rc) samples on every rate
	// change, for the Figure 20 trace.
	RateLog func(units.Time, units.Rate)
}

// Attach installs DCQCN on flow f within network net: the flow is paced by
// the RP, and the receiver-side NP hook echoes ECN marks as CNPs. Returns
// the RP for inspection.
func Attach(net *netsim.Network, f *netsim.Flow, cfg Config) *RP {
	rp := &RP{
		cfg:   cfg,
		net:   net,
		rc:    cfg.LineRate,
		rt:    cfg.LineRate,
		alpha: cfg.AlphaInit,
	}
	cnpDelay := cfg.CNPDelay
	if cnpDelay == 0 {
		cnpDelay = routing.PathLatency(f.Path, 64*units.Byte)
	}
	var lastEcho units.Time = -units.Never // NP state: last CNP emission
	f.Pacer = rp
	prev := f.OnPacket
	f.OnPacket = func(fl *netsim.Flow, pkt *netsim.Packet) {
		if prev != nil {
			prev(fl, pkt)
		}
		if !pkt.ECN {
			return
		}
		now := net.Now()
		if lastEcho != -units.Never && now-lastEcho < cfg.CNPInterval {
			return // NP rate-limits CNPs to one per interval
		}
		lastEcho = now
		net.Engine().After(cnpDelay, rp.onCNP)
	}
	rp.startTimers()
	return rp
}

// Rate reports the current sending rate R_C.
func (rp *RP) Rate() units.Rate { return rp.rc }

// Alpha reports the congestion estimate α.
func (rp *RP) Alpha() float64 { return rp.alpha }

// NextAllowed implements netsim.Pacer.
func (rp *RP) NextAllowed(now units.Time, _ units.Size) units.Time { return rp.next }

// OnRelease implements netsim.Pacer.
func (rp *RP) OnRelease(now units.Time, size units.Size) {
	gap := units.TransmissionTime(size, rp.rc)
	if rp.next < now {
		rp.next = now
	}
	rp.next += gap
	// Byte-counter increase stages.
	if rp.cfg.IncreaseBytes > 0 {
		rp.bCounter += size
		for rp.bCounter >= rp.cfg.IncreaseBytes {
			rp.bCounter -= rp.cfg.IncreaseBytes
			rp.bStage++
			rp.increase()
		}
	}
}

// onCNP applies the multiplicative decrease.
func (rp *RP) onCNP() {
	now := rp.net.Now()
	rp.rt = rp.rc
	rp.rc = units.Rate(float64(rp.rc) * (1 - rp.alpha/2))
	if rp.rc < rp.cfg.MinRate {
		rp.rc = rp.cfg.MinRate
	}
	rp.alpha = (1-rp.cfg.G)*rp.alpha + rp.cfg.G
	rp.lastCNP = now
	rp.everCNP = true
	rp.tStage = 0
	rp.bStage = 0
	rp.bCounter = 0
	rp.log()
}

// startTimers installs the α-decay and rate-increase timers.
func (rp *RP) startTimers() {
	var alphaTick func()
	alphaTick = func() {
		if rp.everCNP && rp.net.Now()-rp.lastCNP >= rp.cfg.AlphaTimer {
			rp.alpha *= 1 - rp.cfg.G
		}
		rp.net.Engine().After(rp.cfg.AlphaTimer, alphaTick)
	}
	rp.net.Engine().After(rp.cfg.AlphaTimer, alphaTick)

	var incTick func()
	incTick = func() {
		if rp.everCNP {
			rp.tStage++
			rp.increase()
		}
		rp.net.Engine().After(rp.cfg.IncreaseTimer, incTick)
	}
	rp.net.Engine().After(rp.cfg.IncreaseTimer, incTick)
}

// increase runs one recovery/increase step, per the DCQCN RP state machine:
// fast recovery while both stage counters are below F, hyper increase once
// both exceed F, additive increase otherwise.
func (rp *RP) increase() {
	switch {
	case rp.tStage < rp.cfg.F && rp.bStage < rp.cfg.F:
		// Fast recovery: close half the gap to the target.
	case rp.tStage > rp.cfg.F && rp.bStage > rp.cfg.F:
		rp.rt += rp.cfg.RHAI
	default:
		rp.rt += rp.cfg.RAI
	}
	if rp.rt > rp.cfg.LineRate {
		rp.rt = rp.cfg.LineRate
	}
	rp.rc = (rp.rc + rp.rt) / 2
	if rp.rc > rp.cfg.LineRate {
		rp.rc = rp.cfg.LineRate
	}
	rp.log()
}

func (rp *RP) log() {
	if rp.RateLog != nil {
		rp.RateLog(rp.net.Now(), rp.rc)
	}
}
