package dcqcn

import (
	"testing"

	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// buildIncast creates the Figure 20 dumbbell: n senders, one receiver,
// ECN marking at 40KB, GFC flow control, DCQCN on every flow.
func buildIncast(t *testing.T, senders int) (*netsim.Network, []*RP, []*netsim.Flow) {
	t.Helper()
	topo := topology.Dumbbell(senders, topology.DefaultLinkParams())
	cfg := netsim.Config{
		BufferSize:   1000 * units.KB,
		ECNThreshold: 40 * units.KB,
		FlowControl:  flowcontrol.NewGFCBuffer(flowcontrol.GFCBufferConfig{}),
	}
	net, err := netsim.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewSPF(topo)
	recv := topo.MustLookup(nodeName(senders + 1))
	var rps []*RP
	var flows []*netsim.Flow
	for i := 1; i <= senders; i++ {
		src := topo.MustLookup(nodeName(i))
		path, err := tab.Path(src, recv, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		f := &netsim.Flow{ID: i, Src: src, Dst: recv, Path: path}
		rp := Attach(net, f, DefaultConfig(10*units.Gbps))
		if err := net.AddFlow(f, 0); err != nil {
			t.Fatal(err)
		}
		rps = append(rps, rp)
		flows = append(flows, f)
	}
	return net, rps, flows
}

func nodeName(i int) string { return "H" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestDCQCNReducesIncastRate(t *testing.T) {
	net, rps, _ := buildIncast(t, 8)
	net.Run(5 * units.Millisecond)
	// 8:1 incast on a 10G bottleneck: DCQCN must cut rates well below
	// line rate; fair share is 1.25G.
	for i, rp := range rps {
		if rp.Rate() >= 10*units.Gbps {
			t.Errorf("sender %d still at line rate %v", i+1, rp.Rate())
		}
	}
	if net.Drops() != 0 {
		t.Fatalf("drops = %d", net.Drops())
	}
}

func TestDCQCNConvergesNearFairShare(t *testing.T) {
	net, _, flows := buildIncast(t, 8)
	net.Run(30 * units.Millisecond)
	// Measure goodput over a late window.
	before := make([]units.Size, len(flows))
	for i, f := range flows {
		before[i] = f.Delivered
	}
	const win = 20 * units.Millisecond
	net.Run(net.Now() + win)
	var total units.Rate
	for i, f := range flows {
		r := units.RateOf(f.Delivered-before[i], win)
		total += r
		if r < 0.3*units.Gbps || r > 3*units.Gbps {
			t.Errorf("flow %d late rate %v, want near fair share 1.25G", f.ID, r)
		}
	}
	// Bottleneck should stay well utilised.
	if total < 7*units.Gbps {
		t.Errorf("aggregate %v, bottleneck underutilised", total)
	}
}

func TestDCQCNAlphaDynamics(t *testing.T) {
	net, rps, _ := buildIncast(t, 8)
	rp := rps[0]
	if got := rp.Alpha(); got != 0.5 {
		t.Fatalf("initial alpha = %v", got)
	}
	net.Run(2 * units.Millisecond)
	// Under persistent marking alpha should have moved from its seed.
	if rp.Alpha() == 0.5 {
		t.Error("alpha never updated under congestion")
	}
	if rp.Alpha() < 0 || rp.Alpha() > 1 {
		t.Errorf("alpha = %v outside [0,1]", rp.Alpha())
	}
	_ = net
}

func TestDCQCNRecoversAfterCongestion(t *testing.T) {
	// Single sender with DCQCN on an idle path climbs back to line rate
	// after an initial artificial cut.
	topo := topology.Dumbbell(1, topology.DefaultLinkParams())
	net, err := netsim.New(topo, netsim.Config{
		BufferSize:  1000 * units.KB,
		FlowControl: flowcontrol.NewPFCDefault(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewSPF(topo)
	src := topo.MustLookup("H1")
	dst := topo.MustLookup("H2")
	path, err := tab.Path(src, dst, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := &netsim.Flow{ID: 1, Src: src, Dst: dst, Path: path}
	rp := Attach(net, f, DefaultConfig(10*units.Gbps))
	if err := net.AddFlow(f, 0); err != nil {
		t.Fatal(err)
	}
	// Inject one synthetic CNP at 1ms.
	net.Engine().Schedule(units.Millisecond, rp.onCNP)
	net.Run(2 * units.Millisecond)
	cut := rp.Rate()
	if cut >= 10*units.Gbps {
		t.Fatalf("CNP did not cut rate: %v", cut)
	}
	net.Run(30 * units.Millisecond)
	if rp.Rate() < 9*units.Gbps {
		t.Errorf("rate %v did not recover toward line rate", rp.Rate())
	}
}

func TestDCQCNRateLog(t *testing.T) {
	net, rps, _ := buildIncast(t, 4)
	var samples int
	rps[0].RateLog = func(units.Time, units.Rate) { samples++ }
	net.Run(5 * units.Millisecond)
	if samples == 0 {
		t.Fatal("RateLog never called")
	}
}

func TestDCQCNMinRateFloor(t *testing.T) {
	cfg := DefaultConfig(10 * units.Gbps)
	topo := topology.Dumbbell(1, topology.DefaultLinkParams())
	net, err := netsim.New(topo, netsim.Config{
		BufferSize:  1000 * units.KB,
		FlowControl: flowcontrol.NewPFCDefault(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewSPF(topo)
	src, dst := topo.MustLookup("H1"), topo.MustLookup("H2")
	path, _ := tab.Path(src, dst, 1)
	f := &netsim.Flow{ID: 1, Src: src, Dst: dst, Path: path}
	rp := Attach(net, f, cfg)
	// Hammer CNPs directly: rate must never fall below MinRate.
	for i := 0; i < 200; i++ {
		rp.onCNP()
	}
	if rp.Rate() < cfg.MinRate {
		t.Fatalf("rate %v below floor %v", rp.Rate(), cfg.MinRate)
	}
}

func TestGFCSafeguardCapsBeforeDCQCN(t *testing.T) {
	// The §7 observation: at incast onset GFC caps the port rate almost
	// immediately (its feedback is hop-local), while DCQCN needs several
	// RTT-scale rounds. So early in the incast the switch queue must
	// stay bounded by GFC even though DCQCN rates are still high.
	net, rps, _ := buildIncast(t, 8)
	topo := net.Topology()
	s1 := topo.MustLookup("S1")
	var maxQ units.Size
	done := false
	probe := func() {}
	probe = func() {
		if done {
			return
		}
		for p := 0; p < 8; p++ {
			if q := net.IngressQueue(s1, p, 0); q > maxQ {
				maxQ = q
			}
		}
		if net.Now() < 2*units.Millisecond {
			net.Engine().After(10*units.Microsecond, probe)
		} else {
			done = true
		}
	}
	net.Engine().After(10*units.Microsecond, probe)
	net.Run(2 * units.Millisecond)
	if maxQ >= 1000*units.KB {
		t.Fatalf("ingress queue reached %v; GFC failed to cap the onset", maxQ)
	}
	// DCQCN has engaged by now.
	for _, rp := range rps {
		if rp.Rate() == 10*units.Gbps {
			t.Error("a sender never received congestion feedback")
		}
	}
	if net.Drops() != 0 {
		t.Fatalf("drops = %d", net.Drops())
	}
}
