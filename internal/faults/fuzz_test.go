package faults_test

// Fuzz harness for the fault-plan pipeline: any JSON the spec parser
// accepts must compile and drive a simulation without panicking, and — once
// its feedback faults are clamped to the bounded regime the safety analysis
// covers — without costing buffer-based GFC a single packet. The clamp is
// the τ′ budget of the theorems made operational: MaxBurst 1 and a small
// delay cap bound feedback staleness at one refresh period plus the cap,
// and the run's Tau budgets for it, so losslessness must hold no matter
// what else the fuzzer dreamed up (flaps, degrades, bursts, onsets).

import (
	"testing"

	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// clampFeedback bounds every feedback fault to the repairable regime:
// at most one consecutive loss per channel and at most 10 µs + 5 µs of
// injected latency. Drop probability may stay anything in [0,1].
func clampFeedback(s *faults.Spec) {
	for i := range s.Links {
		for j := range s.Links[i].Feedback {
			fb := &s.Links[i].Feedback[j]
			if fb.MaxBurst < 1 || fb.MaxBurst > 1 {
				fb.MaxBurst = 1
			}
			if fb.Delay > 10*units.Microsecond {
				fb.Delay = 10 * units.Microsecond
			}
			if fb.Jitter > 5*units.Microsecond {
				fb.Jitter = 5 * units.Microsecond
			}
		}
	}
}

// faultedRun simulates 5 ms of the critically loaded fig9 ring under
// buffer-based GFC with periodic refresh and the given plan, returning
// (drops, violations, delivered, injector stats).
func faultedRun(t *testing.T, plan *faults.Plan, seed int64) (int64, int64, units.Size, faults.Stats) {
	t.Helper()
	topo := topology.RingHosts(3, 1, topology.DefaultLinkParams())
	reg := metrics.New(metrics.Options{})
	inj := plan.NewInjector(seed)
	cfg := netsim.Config{
		BufferSize: 1000 * units.KB,
		// Budget Tau for the clamped worst case: feedback latency plus
		// one lost message repaired by the next 52.4 µs refresh, plus
		// the injected delay cap.
		Tau: 150 * units.Microsecond,
		FlowControl: flowcontrol.NewGFCBuffer(flowcontrol.GFCBufferConfig{
			Refresh: 52400 * units.Nanosecond,
		}),
		Metrics: reg,
		Faults:  inj,
	}
	n, err := netsim.New(topo, cfg)
	if err != nil {
		t.Fatalf("building faulted sim: %v", err)
	}
	var delivered units.Size
	flows := make([]*netsim.Flow, 0, 3)
	for i, path := range routing.RingHostsClockwisePaths(topo, 3, 1) {
		f := &netsim.Flow{
			ID:   i + 1,
			Src:  path[0].Node,
			Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
			Path: path,
		}
		if err := n.AddFlow(f, 0); err != nil {
			t.Fatalf("adding flow: %v", err)
		}
		flows = append(flows, f)
	}
	n.Run(5 * units.Millisecond)
	for _, f := range flows {
		delivered += f.Delivered
	}
	return n.Drops(), reg.Summary().Violations, delivered, inj.Stats()
}

func FuzzFaultPlan(f *testing.F) {
	// One seed per fault family, plus a kitchen-sink combination.
	f.Add([]byte(`{"links":[{"link":"*","feedback":[{"drop_prob":0.3,"max_burst":1}]}]}`), int64(1))
	f.Add([]byte(`{"links":[{"link":"*","feedback":[{"delay_ns":10000,"jitter_ns":5000}]}]}`), int64(2))
	f.Add([]byte(`{"links":[{"link":"S1-S2","flaps":[{"down_at_ns":1000000,"up_at_ns":2000000}]}]}`), int64(3))
	f.Add([]byte(`{"links":[{"link":"*","degrade":[{"from_ns":500000,"until_ns":3000000,"factor":0.4}]}]}`), int64(4))
	f.Add([]byte(`{"hosts":[{"host":"*","bursts":[{"at_ns":1000000,"bytes":30000}],"onsets":[{"flow":2,"at_ns":2000000}]}]}`), int64(5))
	f.Add([]byte(`{"links":[{"link":"S1-*","feedback":[{"drop_prob":1,"kinds":["STAGE"],"max_burst":1}],"degrade":[{"from_ns":0,"factor":0.5}]}],"hosts":[{"host":"H1","onsets":[{"flow":1,"at_ns":500000}]}]}`), int64(6))

	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		spec, err := faults.Parse(data)
		if err != nil {
			t.Skip() // malformed JSON / invalid spec: rejection is the contract
		}
		clampFeedback(spec)
		topo := topology.RingHosts(3, 1, topology.DefaultLinkParams())
		plan, err := spec.Compile(topo)
		if err != nil {
			t.Skip() // e.g. link names not present on the ring
		}
		drops, violations, delivered, stats := faultedRun(t, plan, seed)
		if drops != 0 {
			t.Fatalf("buffer-based GFC dropped %d packets under bounded faults:\n%s", drops, data)
		}
		if violations != 0 {
			t.Fatalf("%d invariant violations under bounded faults:\n%s", violations, data)
		}
		// Replay determinism: the same (plan, seed) must reproduce the
		// run bit-identically — same injector decisions, same goodput.
		drops2, violations2, delivered2, stats2 := faultedRun(t, plan, seed)
		if drops2 != drops || violations2 != violations || delivered2 != delivered || stats2 != stats {
			t.Fatalf("faulted run not deterministic: (%d,%d,%v,%+v) vs (%d,%d,%v,%+v)",
				drops, violations, delivered, stats, drops2, violations2, delivered2, stats2)
		}
	})
}
