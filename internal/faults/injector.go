package faults

import (
	"fmt"
	"math/rand"

	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// Stats counts what an injector actually did, for reports and assertions.
type Stats struct {
	FeedbackDropped int64
	FeedbackDelayed int64
}

// Injector is a Plan bound to one network run. It owns the scenario's
// random source, so it must not be shared: every concurrently running
// Network needs its own (Plan.NewInjector is cheap). The network consults
// FeedbackVerdict from its feedback-emission path and schedules Events()
// on its engine at construction; because both happen in event order on a
// private source, a faulted run replays bit-identically regardless of how
// many sibling networks run in parallel.
type Injector struct {
	plan  *Plan
	seed  int64
	rng   *rand.Rand
	bound bool
	// burstRun counts consecutive drops per feedback channel so MaxBurst
	// can force delivery.
	burstRun map[burstKey]int
	stats    Stats
}

type burstKey struct {
	link topology.LinkID
	node topology.NodeID // emitting (receiver) side
	prio int
}

// NewInjector binds the plan for one run, seeding the injector's private
// random source. The same (plan, seed) pair always yields the same fault
// sequence for the same simulation.
func (p *Plan) NewInjector(seed int64) *Injector {
	return &Injector{
		plan:     p,
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		burstRun: make(map[burstKey]int),
	}
}

// Plan returns the immutable plan this injector executes.
func (inj *Injector) Plan() *Plan { return inj.plan }

// Seed returns the seed the injector was created with.
func (inj *Injector) Seed() int64 { return inj.seed }

// Bind marks the injector attached to a network; attaching one injector to
// two networks would interleave their random draws and destroy replay
// determinism, so the second Bind panics.
func (inj *Injector) Bind() {
	if inj.bound {
		panic("faults: Injector bound to a second network; use Plan.NewInjector per network")
	}
	inj.bound = true
}

// Timeline returns the scheduled fault actuations, sorted by time.
func (inj *Injector) Timeline() []Event { return inj.plan.events }

// FlowOnset returns the (possibly delayed) start time for the flow: the
// later of the scheduled time and any configured onset.
func (inj *Injector) FlowOnset(flowID int, at units.Time) units.Time {
	if onset, ok := inj.plan.onsets[flowID]; ok && onset > at {
		return onset
	}
	return at
}

// FeedbackVerdict decides the fate of one flow-control message about to
// cross link from the receiver on node at priority prio: dropped, or
// delivered with extra latency. Randomness is drawn in strict call order
// from the injector's private source. When several fault windows match,
// drop probabilities compound and delays add.
func (inj *Injector) FeedbackVerdict(
	link topology.LinkID, node topology.NodeID, prio int,
	kind flowcontrol.Kind, now units.Time,
) (drop bool, extra units.Time) {
	for i := range inj.plan.feedback[link] {
		f := &inj.plan.feedback[link][i]
		if !f.active(now) || !f.matches(kind) {
			continue
		}
		if f.dropProb > 0 && !drop {
			key := burstKey{link: link, node: node, prio: prio}
			if f.maxBurst > 0 && inj.burstRun[key] >= f.maxBurst {
				inj.burstRun[key] = 0 // forced delivery caps the loss burst
			} else if inj.rng.Float64() < f.dropProb {
				drop = true
				inj.burstRun[key]++
			} else {
				inj.burstRun[key] = 0
			}
		}
		extra += f.delay
		if f.jitter > 0 {
			extra += units.Time(inj.rng.Int63n(int64(f.jitter)))
		}
	}
	if drop {
		inj.stats.FeedbackDropped++
		return true, 0
	}
	if extra > 0 {
		inj.stats.FeedbackDelayed++
	}
	return false, extra
}

// Stats returns what the injector has done so far.
func (inj *Injector) Stats() Stats { return inj.stats }

// Preset returns a named built-in scenario. These are the rows of the
// fault matrix in EXPERIMENTS.md; list them with PresetNames.
func Preset(name string) (*Spec, error) {
	switch name {
	case "resume-loss":
		// Drop half of all RESUME frames on every switch-to-switch link,
		// under a transient single-link drain squeeze (S1-S2 at 40% for
		// 20 ms) that creates the congestion epoch during which PFC must
		// pause the fabric links. The critically loaded fig9 ring keeps
		// its congestion at the host ports, so without the squeeze the
		// edge-triggered schemes never emit fabric feedback and the loss
		// has nothing to bite. PFC pauses stay reliable, so the first
		// lost RESUME holds that hop shut forever and the ring freezes
		// (the detector reports a wedged channel) — and stays frozen long
		// after the squeeze lifts. GFC emits no RESUME and its rates
		// never reach zero, so it rides out the same squeeze untouched;
		// its own loss tolerance is exercised by "feedback-loss". The
		// squeeze targets S1-S2 by name, so this preset (like
		// "feedback-loss") wants the fig9 ring topology.
		return &Spec{
			Name: "resume-loss",
			Links: []LinkFault{
				{
					Link: "S1-S2",
					Degrade: []Degrade{{
						From:   2 * units.Millisecond,
						Until:  22 * units.Millisecond,
						Factor: 0.4,
					}},
				},
				{
					Link: "*",
					Feedback: []FeedbackFault{{
						DropProb: 0.5,
						Kinds:    []string{"RESUME"},
					}},
				},
			},
		}, nil
	case "feedback-loss":
		// Drop 30% of every flow-control message on switch-to-switch
		// links, at most 3 in a row per channel, under the same S1-S2
		// congestion squeeze as "resume-loss". The burst cap bounds the
		// effective feedback outage at 4 periods for periodically
		// refreshed schemes (CBFC credits, GFC-time, GFC-buffer with
		// Refresh), which ride it out losslessly; PFC's unprotected
		// PAUSE frames are lossy here too, so its ingress buffers
		// overrun — the losslessness violation the invariant layer
		// attributes to the injected faults.
		return &Spec{
			Name: "feedback-loss",
			Links: []LinkFault{
				{
					Link: "S1-S2",
					Degrade: []Degrade{{
						From:   2 * units.Millisecond,
						Until:  22 * units.Millisecond,
						Factor: 0.4,
					}},
				},
				{
					Link: "*",
					Feedback: []FeedbackFault{{
						DropProb: 0.3,
						MaxBurst: 3,
					}},
				},
			},
		}, nil
	case "feedback-delay":
		// Add 20µs fixed + up to 10µs jittered latency to all feedback on
		// switch-to-switch links: stale signals and reordering without
		// loss. Stresses the Cτ' headroom of Theorem 4.1.
		return &Spec{
			Name: "feedback-delay",
			Links: []LinkFault{{
				Link: "*",
				Feedback: []FeedbackFault{{
					Delay:  20 * units.Microsecond,
					Jitter: 10 * units.Microsecond,
				}},
			}},
		}, nil
	case "flap":
		// One switch-to-switch link drops for 8ms mid-run. Held traffic
		// must resume afterwards and the outage must not be reported as a
		// ring deadlock.
		return &Spec{
			Name: "flap",
			Links: []LinkFault{{
				Link: "*",
				Flaps: []Flap{{
					DownAt: 5 * units.Millisecond,
					UpAt:   13 * units.Millisecond,
				}},
			}},
		}, nil
	case "degrade":
		// Every switch-to-switch link runs at 40% capacity for 20ms —
		// a fabric-wide drain squeeze that inflates queues toward their
		// ceilings without ever breaking connectivity.
		return &Spec{
			Name: "degrade",
			Links: []LinkFault{{
				Link: "*",
				Degrade: []Degrade{{
					From:   2 * units.Millisecond,
					Until:  22 * units.Millisecond,
					Factor: 0.4,
				}},
			}},
		}, nil
	default:
		return nil, fmt.Errorf("faults: unknown preset %q (have %v)", name, PresetNames())
	}
}

// PresetNames lists the built-in scenario names.
func PresetNames() []string {
	return []string{"resume-loss", "feedback-loss", "feedback-delay", "flap", "degrade"}
}
