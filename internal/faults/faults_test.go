package faults

import (
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// ringTopo builds the fig9-style 3-switch ring with one host per switch.
func ringTopo(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.RingHosts(3, 1, topology.DefaultLinkParams())
}

func TestParseRoundTrip(t *testing.T) {
	src := `{
		"name": "demo",
		"links": [
			{"link": "S1-S2",
			 "feedback": [{"drop_prob": 0.5, "max_burst": 2, "kinds": ["RESUME"],
			               "delay_ns": 1000, "jitter_ns": 500, "from_ns": 0, "until_ns": 2000000}],
			 "flaps": [{"down_at_ns": 1000000, "up_at_ns": 2000000}],
			 "degrade": [{"from_ns": 100, "until_ns": 200, "factor": 0.5}]},
			{"link": "*", "feedback": [{"drop_prob": 0.1}]}
		],
		"hosts": [
			{"host": "H1", "bursts": [{"at_ns": 5000, "bytes": 150000}],
			 "onsets": [{"flow": 3, "at_ns": 250000}]}
		]
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "demo" || len(s.Links) != 2 || len(s.Hosts) != 1 {
		t.Fatalf("unexpected spec shape: %+v", s)
	}
	fb := s.Links[0].Feedback[0]
	if fb.DropProb != 0.5 || fb.MaxBurst != 2 || fb.Delay != 1000 || fb.Jitter != 500 {
		t.Errorf("feedback fault mis-parsed: %+v", fb)
	}
	if s.Hosts[0].Bursts[0].Bytes != 150000 || s.Hosts[0].Onsets[0].Flow != 3 {
		t.Errorf("host fault mis-parsed: %+v", s.Hosts[0])
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"links": [{"link": "A-B", "nope": 1}]}`,
		"bad drop prob":    `{"links": [{"link": "A-B", "feedback": [{"drop_prob": 1.5}]}]}`,
		"no effect":        `{"links": [{"link": "A-B", "feedback": [{}]}]}`,
		"unknown kind":     `{"links": [{"link": "A-B", "feedback": [{"drop_prob": 0.1, "kinds": ["XON"]}]}]}`,
		"empty window":     `{"links": [{"link": "A-B", "feedback": [{"drop_prob": 0.1, "from_ns": 10, "until_ns": 10}]}]}`,
		"inverted flap":    `{"links": [{"link": "A-B", "flaps": [{"down_at_ns": 20, "up_at_ns": 10}]}]}`,
		"degrade factor 1": `{"links": [{"link": "A-B", "degrade": [{"from_ns": 0, "factor": 1.0}]}]}`,
		"zero-byte burst":  `{"hosts": [{"host": "H1", "bursts": [{"at_ns": 0, "bytes": 0}]}]}`,
		"empty link":       `{"links": [{"link": ""}]}`,
		"bad flow id":      `{"hosts": [{"host": "H1", "onsets": [{"flow": 0, "at_ns": 10}]}]}`,
	}
	for name, src := range cases {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("%s: Parse accepted %s", name, src)
		}
	}
}

func TestCompileResolvesPatterns(t *testing.T) {
	topo := ringTopo(t)
	spec := &Spec{
		Links: []LinkFault{
			{Link: "*", Feedback: []FeedbackFault{{DropProb: 0.5}}},
			{Link: "S1-S2", Flaps: []Flap{{DownAt: 10, UpAt: 20}}},
			{Link: "S1-*", Degrade: []Degrade{{From: 5, Until: 15, Factor: 0.5}}},
		},
		Hosts: []HostFault{
			{Host: "*", Bursts: []Burst{{At: 7, Bytes: 1500}}},
			{Host: "H1", Onsets: []Onset{{Flow: 2, At: 99}}},
		},
	}
	p, err := spec.Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	// "*" matches the 3 ring (switch-switch) links only.
	if got := len(p.feedback); got != 3 {
		t.Errorf("feedback on %d links, want 3 switch-switch links", got)
	}
	for id := range p.feedback {
		l := topo.Link(id)
		if topo.Node(l.A).Kind != topology.Switch || topo.Node(l.B).Kind != topology.Switch {
			t.Errorf("feedback compiled onto non switch-switch link %d", l.ID)
		}
	}
	// Events: 1 flap (down+up) + S1's 3 links degrade (2 each) + 3 host bursts.
	if got, want := len(p.Events()), 2+6+3; got != want {
		t.Fatalf("compiled %d events, want %d", got, want)
	}
	for i := 1; i < len(p.events); i++ {
		if p.events[i].At < p.events[i-1].At {
			t.Fatalf("events not sorted by time: %+v", p.events)
		}
	}
	if at, ok := p.onsets[2]; !ok || at != 99 {
		t.Errorf("onset for flow 2 = (%v, %v), want (99, true)", at, ok)
	}
}

func TestCompileRejectsUnmatched(t *testing.T) {
	topo := ringTopo(t)
	for _, spec := range []*Spec{
		{Links: []LinkFault{{Link: "S1-S9", Flaps: []Flap{{DownAt: 1}}}}},
		{Links: []LinkFault{{Link: "bogus", Flaps: []Flap{{DownAt: 1}}}}},
		{Hosts: []HostFault{{Host: "S1", Bursts: []Burst{{At: 1, Bytes: 10}}}}},
		{Hosts: []HostFault{{Host: "H9", Bursts: []Burst{{At: 1, Bytes: 10}}}}},
	} {
		if _, err := spec.Compile(topo); err == nil {
			t.Errorf("Compile accepted unresolvable spec %+v", spec)
		}
	}
	// Host-attached links resolve via "H1-*" but "*" skips them.
	p, err := (&Spec{Links: []LinkFault{{Link: "H1-*", Flaps: []Flap{{DownAt: 1}}}}}).Compile(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events()) != 1 {
		t.Errorf("H1-* matched %d links, want 1", len(p.Events()))
	}
}

func TestInjectorDeterminism(t *testing.T) {
	topo := ringTopo(t)
	spec, err := Preset("feedback-loss")
	if err != nil {
		t.Fatal(err)
	}
	plan := spec.MustCompile(topo)
	link := topo.LinkBetween(topo.MustLookup("S1"), topo.MustLookup("S2"))

	type verdict struct {
		drop  bool
		extra units.Time
	}
	run := func(seed int64) []verdict {
		inj := plan.NewInjector(seed)
		out := make([]verdict, 0, 200)
		for i := 0; i < 200; i++ {
			d, e := inj.FeedbackVerdict(link.ID, link.A, 0,
				flowcontrol.KindStage, units.Time(i)*units.Microsecond)
			out = append(out, verdict{d, e})
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at verdict %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 200-verdict sequences")
	}
}

func TestFeedbackVerdictMaxBurst(t *testing.T) {
	topo := ringTopo(t)
	plan := (&Spec{Links: []LinkFault{{
		Link:     "S1-S2",
		Feedback: []FeedbackFault{{DropProb: 1.0, MaxBurst: 3}},
	}}}).MustCompile(topo)
	inj := plan.NewInjector(1)
	link := topo.LinkBetween(topo.MustLookup("S1"), topo.MustLookup("S2"))

	run := 0
	for i := 0; i < 40; i++ {
		drop, _ := inj.FeedbackVerdict(link.ID, link.A, 0, flowcontrol.KindStage, units.Time(i))
		if drop {
			run++
			if run > 3 {
				t.Fatalf("verdict %d: %d consecutive drops despite max_burst 3", i, run)
			}
		} else {
			if run != 3 {
				t.Errorf("verdict %d delivered after a run of only %d drops (p=1)", i, run)
			}
			run = 0
		}
	}
	if got := inj.Stats().FeedbackDropped; got != 30 {
		t.Errorf("dropped %d of 40, want 30 (3 of every 4)", got)
	}
}

func TestFeedbackVerdictKindFilter(t *testing.T) {
	topo := ringTopo(t)
	spec, err := Preset("resume-loss")
	if err != nil {
		t.Fatal(err)
	}
	plan := spec.MustCompile(topo)
	inj := plan.NewInjector(7)
	link := topo.LinkBetween(topo.MustLookup("S1"), topo.MustLookup("S2"))

	for i := 0; i < 100; i++ {
		for _, k := range []flowcontrol.Kind{
			flowcontrol.KindPause, flowcontrol.KindStage,
			flowcontrol.KindCredit, flowcontrol.KindQueue,
		} {
			if drop, _ := inj.FeedbackVerdict(link.ID, link.A, 0, k, units.Time(i)); drop {
				t.Fatalf("resume-loss dropped a %s message", k)
			}
		}
	}
	drops := 0
	for i := 0; i < 400; i++ {
		if drop, _ := inj.FeedbackVerdict(link.ID, link.A, 0, flowcontrol.KindResume, units.Time(i)); drop {
			drops++
		}
	}
	// p=0.5 over 400 draws: [140, 260] is > 6 sigma.
	if drops < 140 || drops > 260 {
		t.Errorf("resume-loss dropped %d/400 RESUME frames, want ~200", drops)
	}
}

func TestFeedbackVerdictWindowAndDelay(t *testing.T) {
	topo := ringTopo(t)
	plan := (&Spec{Links: []LinkFault{{
		Link: "S1-S2",
		Feedback: []FeedbackFault{{
			Delay: 5 * units.Microsecond,
			From:  10 * units.Microsecond,
			Until: 20 * units.Microsecond,
		}},
	}}}).MustCompile(topo)
	inj := plan.NewInjector(1)
	link := topo.LinkBetween(topo.MustLookup("S1"), topo.MustLookup("S2"))

	check := func(at units.Time, want units.Time) {
		t.Helper()
		drop, extra := inj.FeedbackVerdict(link.ID, link.A, 0, flowcontrol.KindStage, at)
		if drop || extra != want {
			t.Errorf("at %v: (drop=%v, extra=%v), want (false, %v)", at, drop, extra, want)
		}
	}
	check(9*units.Microsecond, 0)
	check(10*units.Microsecond, 5*units.Microsecond)
	check(19*units.Microsecond, 5*units.Microsecond)
	check(20*units.Microsecond, 0)
	if got := inj.Stats().FeedbackDelayed; got != 2 {
		t.Errorf("FeedbackDelayed = %d, want 2", got)
	}
}

func TestFlowOnset(t *testing.T) {
	topo := ringTopo(t)
	plan := (&Spec{Hosts: []HostFault{{
		Host:   "H1",
		Onsets: []Onset{{Flow: 5, At: 100}},
	}}}).MustCompile(topo)
	inj := plan.NewInjector(1)
	if got := inj.FlowOnset(5, 10); got != 100 {
		t.Errorf("FlowOnset(5, 10) = %v, want 100 (delayed)", got)
	}
	if got := inj.FlowOnset(5, 200); got != 200 {
		t.Errorf("FlowOnset(5, 200) = %v, want 200 (already later)", got)
	}
	if got := inj.FlowOnset(6, 10); got != 10 {
		t.Errorf("FlowOnset(6, 10) = %v, want 10 (no onset)", got)
	}
}

func TestBindOnce(t *testing.T) {
	topo := ringTopo(t)
	plan := (&Spec{Links: []LinkFault{{
		Link: "S1-S2", Flaps: []Flap{{DownAt: 1}},
	}}}).MustCompile(topo)
	inj := plan.NewInjector(1)
	inj.Bind()
	defer func() {
		if recover() == nil {
			t.Error("second Bind did not panic")
		}
	}()
	inj.Bind()
}

func TestPresetsCompileOnRing(t *testing.T) {
	topo := ringTopo(t)
	for _, name := range PresetNames() {
		spec, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if spec.Name != name {
			t.Errorf("preset %q has name %q", name, spec.Name)
		}
		if _, err := spec.Compile(topo); err != nil {
			t.Errorf("preset %q does not compile on the fig9 ring: %v", name, err)
		}
	}
	if _, err := Preset("no-such"); err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Errorf("Preset(no-such) error = %v", err)
	}
}
