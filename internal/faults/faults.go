// Package faults is a deterministic, seeded fault-injection layer for the
// simulator. A Spec is a JSON-serialisable scenario description: per-link
// fault plans (feedback-message drop/delay/reorder with bounded jitter,
// link down/up flaps, transient rate degradation) and per-host arrival
// perturbations (synchronised injection bursts, delayed flow onset). A Spec
// is compiled once against a topology into an immutable Plan; each Network
// then gets its own Injector (Plan.NewInjector), which owns the scenario's
// random source.
//
// The package deliberately does not import netsim — the dependency points
// the other way, exactly like internal/metrics: netsim consults the
// Injector behind a single nil check (netsim.Config.Faults), so a nil
// injector costs nothing on the hot path. All fault actuation is scheduled
// through the network's own event engine, and every random draw happens in
// event order on the injector's private source, so a faulted run is
// bit-identical for every worker count (see internal/runner).
//
// Fault model, mapped to the paper's failure discussion and the triggers
// DCFIT identifies:
//
//   - Feedback loss/delay: control frames (PAUSE/RESUME, stage, credit)
//     are dropped with a probability or delayed with bounded jitter. A lost
//     RESUME is the canonical rare trigger that leaves PFC paused forever;
//     GFC's stage/credit feedback is either refreshed (buffer-based with
//     Refresh) or periodic (time-based), so it tolerates the same loss.
//   - Link flaps: a link goes administratively down and later comes back.
//     In-flight packets still arrive; queued traffic holds. Deadlock
//     detection must not confuse the outage with circular wait.
//   - Rate degradation: a link transiently runs at a fraction of its
//     capacity (autoneg downshift, FEC retrain), squeezing drains.
//   - Host bursts / onsets: synchronised pacer-bypass bursts and delayed
//     flow starts create the pathological arrival patterns that fill
//     cyclic buffers.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// Spec is one fault scenario. All times are absolute simulation times in
// nanoseconds; a zero Until means "for the rest of the run".
type Spec struct {
	// Name labels the scenario in reports.
	Name string `json:"name,omitempty"`
	// Links lists per-link fault plans. Link patterns: "A-B" names the
	// link between nodes A and B, "A-*" every live link at A, and "*"
	// every live switch-to-switch link.
	Links []LinkFault `json:"links,omitempty"`
	// Hosts lists per-host arrival perturbations. Host patterns: a host
	// name, or "*" for every host.
	Hosts []HostFault `json:"hosts,omitempty"`
}

// LinkFault is the fault plan of one link pattern.
type LinkFault struct {
	Link     string          `json:"link"`
	Feedback []FeedbackFault `json:"feedback,omitempty"`
	Flaps    []Flap          `json:"flaps,omitempty"`
	Degrade  []Degrade       `json:"degrade,omitempty"`
}

// FeedbackFault perturbs flow-control messages crossing the link (in either
// direction) during [From, Until).
type FeedbackFault struct {
	// DropProb is the per-message drop probability in [0,1].
	DropProb float64 `json:"drop_prob,omitempty"`
	// MaxBurst bounds consecutive drops per (link, receiver, priority)
	// channel: after MaxBurst drops in a row the next message is forced
	// through. Zero means unbounded. A bound is what makes theorem-level
	// safety statements under loss checkable: the effective feedback
	// latency becomes τ + (MaxBurst+1)·(refresh or period).
	MaxBurst int `json:"max_burst,omitempty"`
	// Kinds restricts the fault to the named message kinds
	// ("PAUSE", "RESUME", "STAGE", "CREDIT", "QUEUE"); empty means all.
	Kinds []string `json:"kinds,omitempty"`
	// Delay is a fixed extra latency added to every affected message.
	Delay units.Time `json:"delay_ns,omitempty"`
	// Jitter adds a uniform random [0, Jitter) component on top of
	// Delay. Because the draw is per message, jitter can reorder
	// messages relative to each other.
	Jitter units.Time `json:"jitter_ns,omitempty"`
	// From / Until bound the fault window; Until zero means open-ended.
	From  units.Time `json:"from_ns,omitempty"`
	Until units.Time `json:"until_ns,omitempty"`
}

// Flap takes the link administratively down at DownAt and back up at UpAt
// (zero UpAt: it stays down).
type Flap struct {
	DownAt units.Time `json:"down_at_ns"`
	UpAt   units.Time `json:"up_at_ns,omitempty"`
}

// Degrade runs the link at Factor × capacity during [From, Until).
type Degrade struct {
	From   units.Time `json:"from_ns"`
	Until  units.Time `json:"until_ns,omitempty"`
	Factor float64    `json:"factor"`
}

// HostFault is the perturbation plan of one host pattern.
type HostFault struct {
	Host   string  `json:"host"`
	Bursts []Burst `json:"bursts,omitempty"`
	Onsets []Onset `json:"onsets,omitempty"`
}

// Burst grants the host Bytes of pacer-bypass budget at time At: its active
// flows release that much data at NIC speed regardless of their pacers —
// a synchronised burst. Unpaced flows already inject at line rate, so
// bursts only matter for paced (e.g. DCQCN-controlled) flows.
type Burst struct {
	At    units.Time `json:"at_ns"`
	Bytes units.Size `json:"bytes"`
}

// Onset delays the start of flow Flow (by netsim flow ID) to time At when
// At is later than the flow's scheduled start — the "victim flow arrives
// late, after the cycle has formed" trigger.
type Onset struct {
	Flow int        `json:"flow"`
	At   units.Time `json:"at_ns"`
}

// Parse decodes a Spec from JSON, rejecting unknown fields.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads a Spec from a JSON file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = path
	}
	return s, nil
}

// Validate checks the spec's internal consistency (windows ordered,
// probabilities and factors in range, kinds known).
func (s *Spec) Validate() error {
	for i, lf := range s.Links {
		if lf.Link == "" {
			return fmt.Errorf("faults: links[%d]: empty link pattern", i)
		}
		for j, fb := range lf.Feedback {
			at := fmt.Sprintf("links[%d].feedback[%d]", i, j)
			if fb.DropProb < 0 || fb.DropProb > 1 {
				return fmt.Errorf("faults: %s: drop_prob %v outside [0,1]", at, fb.DropProb)
			}
			if fb.MaxBurst < 0 {
				return fmt.Errorf("faults: %s: negative max_burst", at)
			}
			if fb.Delay < 0 || fb.Jitter < 0 {
				return fmt.Errorf("faults: %s: negative delay or jitter", at)
			}
			if fb.From < 0 || (fb.Until != 0 && fb.Until <= fb.From) {
				return fmt.Errorf("faults: %s: window [%v,%v) is empty", at, fb.From, fb.Until)
			}
			if fb.DropProb == 0 && fb.Delay == 0 && fb.Jitter == 0 {
				return fmt.Errorf("faults: %s: no effect (zero drop_prob, delay and jitter)", at)
			}
			if _, err := kindMask(fb.Kinds); err != nil {
				return fmt.Errorf("faults: %s: %w", at, err)
			}
		}
		for j, fl := range lf.Flaps {
			if fl.DownAt < 0 || (fl.UpAt != 0 && fl.UpAt <= fl.DownAt) {
				return fmt.Errorf("faults: links[%d].flaps[%d]: window [%v,%v) is empty",
					i, j, fl.DownAt, fl.UpAt)
			}
		}
		for j, dg := range lf.Degrade {
			if dg.Factor <= 0 || dg.Factor >= 1 {
				return fmt.Errorf("faults: links[%d].degrade[%d]: factor %v outside (0,1)",
					i, j, dg.Factor)
			}
			if dg.From < 0 || (dg.Until != 0 && dg.Until <= dg.From) {
				return fmt.Errorf("faults: links[%d].degrade[%d]: window [%v,%v) is empty",
					i, j, dg.From, dg.Until)
			}
		}
	}
	for i, hf := range s.Hosts {
		if hf.Host == "" {
			return fmt.Errorf("faults: hosts[%d]: empty host pattern", i)
		}
		for j, b := range hf.Bursts {
			if b.At < 0 || b.Bytes <= 0 {
				return fmt.Errorf("faults: hosts[%d].bursts[%d]: need at_ns >= 0 and bytes > 0", i, j)
			}
		}
		for j, o := range hf.Onsets {
			if o.At < 0 {
				return fmt.Errorf("faults: hosts[%d].onsets[%d]: negative at_ns", i, j)
			}
			if o.Flow <= 0 {
				return fmt.Errorf("faults: hosts[%d].onsets[%d]: flow id must be positive", i, j)
			}
		}
	}
	return nil
}

// kindMask converts kind names to a bitmask over flowcontrol.Kind; zero
// means "all kinds". "PAUSE" and "RESUME" cover both the class-scoped PFC
// frames and BFC's queue-scoped QPAUSE/QRESUME — a queue resume IS a
// resume, so the fault presets written against PFC bite BFC identically.
func kindMask(names []string) (uint32, error) {
	var mask uint32
	for _, name := range names {
		switch strings.ToUpper(name) {
		case "PAUSE":
			mask |= 1<<uint(flowcontrol.KindPause) | 1<<uint(flowcontrol.KindQueuePause)
		case "RESUME":
			mask |= 1<<uint(flowcontrol.KindResume) | 1<<uint(flowcontrol.KindQueueResume)
		case "STAGE":
			mask |= 1 << uint(flowcontrol.KindStage)
		case "CREDIT":
			mask |= 1 << uint(flowcontrol.KindCredit)
		case "QUEUE":
			mask |= 1 << uint(flowcontrol.KindQueue)
		default:
			return 0, fmt.Errorf("unknown message kind %q", name)
		}
	}
	return mask, nil
}

// EventKind enumerates scheduled (non-probabilistic) fault actuations.
type EventKind uint8

// Timeline event kinds.
const (
	// LinkDown / LinkUp flip the link's administrative state.
	LinkDown EventKind = iota
	LinkUp
	// RateScale runs the link at Factor × nominal capacity
	// (Factor 1 restores it).
	RateScale
	// HostBurst grants Node a pacer-bypass budget of Bytes.
	HostBurst
)

func (k EventKind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case RateScale:
		return "rate-scale"
	case HostBurst:
		return "host-burst"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one scheduled fault actuation; the simulator schedules every
// compiled event on its engine at construction.
type Event struct {
	At     units.Time
	Kind   EventKind
	Link   topology.LinkID // LinkDown / LinkUp / RateScale
	Node   topology.NodeID // HostBurst
	Factor float64         // RateScale
	Bytes  units.Size      // HostBurst
}

// compiledFeedback is one feedback fault bound to a concrete link.
type compiledFeedback struct {
	dropProb float64
	maxBurst int
	kinds    uint32 // bitmask over flowcontrol.Kind; 0 = all
	delay    units.Time
	jitter   units.Time
	from     units.Time
	until    units.Time // 0 = open-ended
}

func (f *compiledFeedback) active(now units.Time) bool {
	return now >= f.from && (f.until == 0 || now < f.until)
}

func (f *compiledFeedback) matches(k flowcontrol.Kind) bool {
	return f.kinds == 0 || f.kinds&(1<<uint(k)) != 0
}

// Plan is a Spec compiled against one topology: link and host patterns are
// resolved, timeline events sorted. A Plan is immutable and may be shared
// across concurrently running networks; each network needs its own
// Injector.
type Plan struct {
	Spec *Spec
	// feedback[linkID] lists the feedback faults on that link.
	feedback map[topology.LinkID][]compiledFeedback
	events   []Event
	onsets   map[int]units.Time
}

// Compile resolves the spec against topo. Patterns that match nothing are
// an error (a silently inert fault plan is a debugging trap).
func (s *Spec) Compile(topo *topology.Topology) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{
		Spec:     s,
		feedback: make(map[topology.LinkID][]compiledFeedback),
		onsets:   make(map[int]units.Time),
	}
	for i, lf := range s.Links {
		links, err := resolveLinks(topo, lf.Link)
		if err != nil {
			return nil, fmt.Errorf("faults: links[%d]: %w", i, err)
		}
		for _, l := range links {
			for _, fb := range lf.Feedback {
				mask, _ := kindMask(fb.Kinds) // validated above
				p.feedback[l.ID] = append(p.feedback[l.ID], compiledFeedback{
					dropProb: fb.DropProb, maxBurst: fb.MaxBurst, kinds: mask,
					delay: fb.Delay, jitter: fb.Jitter,
					from: fb.From, until: fb.Until,
				})
			}
			for _, fl := range lf.Flaps {
				p.events = append(p.events, Event{At: fl.DownAt, Kind: LinkDown, Link: l.ID})
				if fl.UpAt > 0 {
					p.events = append(p.events, Event{At: fl.UpAt, Kind: LinkUp, Link: l.ID})
				}
			}
			for _, dg := range lf.Degrade {
				p.events = append(p.events, Event{
					At: dg.From, Kind: RateScale, Link: l.ID, Factor: dg.Factor,
				})
				if dg.Until > 0 {
					p.events = append(p.events, Event{
						At: dg.Until, Kind: RateScale, Link: l.ID, Factor: 1,
					})
				}
			}
		}
	}
	for i, hf := range s.Hosts {
		hosts, err := resolveHosts(topo, hf.Host)
		if err != nil {
			return nil, fmt.Errorf("faults: hosts[%d]: %w", i, err)
		}
		for _, h := range hosts {
			for _, b := range hf.Bursts {
				p.events = append(p.events, Event{
					At: b.At, Kind: HostBurst, Node: h, Bytes: b.Bytes,
				})
			}
		}
		for _, o := range hf.Onsets {
			if prev, dup := p.onsets[o.Flow]; dup && prev != o.At {
				return nil, fmt.Errorf("faults: hosts[%d]: conflicting onsets for flow %d", i, o.Flow)
			}
			p.onsets[o.Flow] = o.At
		}
	}
	// Stable sort keeps same-time events in spec order, so compilation is
	// deterministic and so is the engine's same-timestamp FIFO.
	sort.SliceStable(p.events, func(i, j int) bool { return p.events[i].At < p.events[j].At })
	return p, nil
}

// MustCompile is Compile panicking on error (static experiment setup).
func (s *Spec) MustCompile(topo *topology.Topology) *Plan {
	p, err := s.Compile(topo)
	if err != nil {
		panic(err)
	}
	return p
}

// resolveLinks expands a link pattern. "*" matches live switch-to-switch
// links; "A-*" (or "*-A") every live link at A; "A-B" the live link between
// A and B.
func resolveLinks(topo *topology.Topology, pattern string) ([]*topology.Link, error) {
	if pattern == "*" {
		var out []*topology.Link
		for i := 0; i < topo.NumLinks(); i++ {
			l := topo.Link(topology.LinkID(i))
			if l.Failed {
				continue
			}
			if topo.Node(l.A).Kind == topology.Switch && topo.Node(l.B).Kind == topology.Switch {
				out = append(out, l)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("pattern %q matches no switch-to-switch link", pattern)
		}
		return out, nil
	}
	a, b, ok := strings.Cut(pattern, "-")
	if !ok {
		return nil, fmt.Errorf("link pattern %q is not \"A-B\", \"A-*\" or \"*\"", pattern)
	}
	if a == "*" {
		a, b = b, a
	}
	na, found := topo.Lookup(a)
	if !found {
		return nil, fmt.Errorf("link pattern %q: no node named %q", pattern, a)
	}
	if b == "*" {
		var out []*topology.Link
		for _, at := range topo.Ports(na) {
			if !at.Link.Failed {
				out = append(out, at.Link)
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("pattern %q matches no live link", pattern)
		}
		return out, nil
	}
	nb, found := topo.Lookup(b)
	if !found {
		return nil, fmt.Errorf("link pattern %q: no node named %q", pattern, b)
	}
	l := topo.LinkBetween(na, nb)
	if l == nil {
		return nil, fmt.Errorf("link pattern %q: no live link between %s and %s", pattern, a, b)
	}
	return []*topology.Link{l}, nil
}

// resolveHosts expands a host pattern ("*" or a host name).
func resolveHosts(topo *topology.Topology, pattern string) ([]topology.NodeID, error) {
	if pattern == "*" {
		hosts := topo.Hosts()
		if len(hosts) == 0 {
			return nil, fmt.Errorf("pattern %q: topology has no hosts", pattern)
		}
		return hosts, nil
	}
	id, found := topo.Lookup(pattern)
	if !found {
		return nil, fmt.Errorf("host pattern %q: no such node", pattern)
	}
	if topo.Node(id).Kind != topology.Host {
		return nil, fmt.Errorf("host pattern %q names a switch", pattern)
	}
	return []topology.NodeID{id}, nil
}

// Events returns the compiled timeline (sorted by time).
func (p *Plan) Events() []Event { return p.events }

// HasFeedbackFaults reports whether any link carries feedback perturbation.
func (p *Plan) HasFeedbackFaults() bool { return len(p.feedback) > 0 }
