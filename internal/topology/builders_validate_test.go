package topology

import (
	"strings"
	"testing"
)

// mustPanic runs f and asserts it panics with a message containing want
// (including the offending value, so misuse is diagnosable from the message
// alone).
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T); want string", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	f()
}

func TestBuilderParamValidation(t *testing.T) {
	p := DefaultLinkParams()
	t.Run("fat-tree odd k", func(t *testing.T) {
		mustPanic(t, "got k = 3", func() { FatTree(3, p) })
	})
	t.Run("fat-tree zero k", func(t *testing.T) {
		mustPanic(t, "got k = 0", func() { FatTree(0, p) })
	})
	t.Run("fat-tree negative k", func(t *testing.T) {
		mustPanic(t, "got k = -2", func() { FatTree(-2, p) })
	})
	t.Run("ring too small", func(t *testing.T) {
		mustPanic(t, "got n = 2", func() { Ring(2, p) })
	})
	t.Run("ring zero hosts", func(t *testing.T) {
		mustPanic(t, "got h = 0", func() { RingHosts(3, 0, p) })
	})
	t.Run("linear empty", func(t *testing.T) {
		mustPanic(t, "got n = 0", func() { Linear(0, p) })
	})
	t.Run("dumbbell empty", func(t *testing.T) {
		mustPanic(t, "got n = 0", func() { Dumbbell(0, p) })
	})
}

// TestFatTreeHostCount checks the closed-form k³/4 host count against the
// built topologies across the supported arities, including the k = 8
// Clos-scale scenario (128 hosts).
func TestFatTreeHostCount(t *testing.T) {
	for _, k := range []int{2, 4, 6, 8} {
		topo := FatTree(k, DefaultLinkParams())
		want := FatTreeHostCount(k)
		if got := len(topo.Hosts()); got != want {
			t.Errorf("k=%d: built %d hosts, FatTreeHostCount says %d", k, got, want)
		}
		// The switch census is pinned too: k²/2 edge + k²/2 agg + (k/2)²
		// core.
		wantSwitches := k*k + (k/2)*(k/2)
		got := 0
		for i := 0; i < topo.NumNodes(); i++ {
			if topo.Node(NodeID(i)).Kind == Switch {
				got++
			}
		}
		if got != wantSwitches {
			t.Errorf("k=%d: built %d switches, want %d", k, got, wantSwitches)
		}
	}
}
