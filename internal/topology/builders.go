package topology

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/units"
)

// LinkParams are the capacity and propagation delay applied to every link a
// builder creates.
type LinkParams struct {
	Capacity units.Rate
	Delay    units.Time
}

// DefaultLinkParams matches the paper's simulations: 10 Gb/s links with 1 µs
// propagation delay.
func DefaultLinkParams() LinkParams {
	return LinkParams{Capacity: 10 * units.Gbps, Delay: 1 * units.Microsecond}
}

// Ring builds the deadlock-prone topology of Figure 1: n switches joined in
// a cycle, each with one attached host named H1..Hn. The paper uses n = 3.
func Ring(n int, p LinkParams) *Topology { return RingHosts(n, 1, p) }

// RingHosts builds an n-switch ring with h hosts per switch. Hosts on
// switch i are named H<i+1> (first host) then H<i+1>b, H<i+1>c, … With
// h ≥ 2 the ring egresses are shared by more local injectors than transit
// channels, so clockwise transit traffic is structurally squeezed below its
// arrival rate and the cyclic buffers fill — the deterministic analogue of
// the timing-noise-driven buffer fill in the paper's software testbed.
func RingHosts(n, h int, p LinkParams) *Topology {
	if n < 3 {
		panic(fmt.Sprintf("topology: ring needs at least 3 switches, got n = %d", n))
	}
	if h < 1 {
		panic(fmt.Sprintf("topology: ring needs at least 1 host per switch, got h = %d", h))
	}
	name := fmt.Sprintf("ring-%d", n)
	if h > 1 {
		name = fmt.Sprintf("ring-%dx%d", n, h)
	}
	t := New(name)
	sw := make([]NodeID, n)
	for i := 0; i < n; i++ {
		sw[i] = t.AddSwitch(fmt.Sprintf("S%d", i+1))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < h; j++ {
			hn := fmt.Sprintf("H%d", i+1)
			if j > 0 {
				hn += string(rune('a' + j))
			}
			host := t.AddHost(hn)
			t.AddLink(host, sw[i], p.Capacity, p.Delay)
		}
	}
	for i := 0; i < n; i++ {
		t.AddLink(sw[i], sw[(i+1)%n], p.Capacity, p.Delay)
	}
	return t
}

// FatTree builds a standard k-ary fat-tree (Al-Fares et al., SIGCOMM 2008):
// k pods, each with k/2 edge and k/2 aggregation switches; (k/2)² core
// switches; k/2 hosts per edge switch, for k³/4 hosts total.
//
// Naming follows Figure 11 of the GFC paper: hosts H0..H(k³/4−1), edge
// switches E1..E(k²/2), aggregation switches A1..A(k²/2) and core switches
// C1..C((k/2)²). Aggregation switch j (0-based within its pod) connects to
// core group j, i.e. cores j·k/2 .. j·k/2+k/2−1.
func FatTree(k int, p LinkParams) *Topology {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topology: fat-tree arity must be even and >= 2, got k = %d", k))
	}
	t := New(fmt.Sprintf("fattree-%d", k))
	half := k / 2

	cores := make([]NodeID, half*half)
	for i := range cores {
		cores[i] = t.AddSwitch(fmt.Sprintf("C%d", i+1))
		t.SetLayer(cores[i], "core", -1)
	}

	hostN := 0
	for pod := 0; pod < k; pod++ {
		aggs := make([]NodeID, half)
		edges := make([]NodeID, half)
		for j := 0; j < half; j++ {
			aggs[j] = t.AddSwitch(fmt.Sprintf("A%d", pod*half+j+1))
			t.SetLayer(aggs[j], "agg", pod)
		}
		for j := 0; j < half; j++ {
			edges[j] = t.AddSwitch(fmt.Sprintf("E%d", pod*half+j+1))
			t.SetLayer(edges[j], "edge", pod)
		}
		// Edge <-> agg full bipartite within the pod.
		for _, e := range edges {
			for _, a := range aggs {
				t.AddLink(e, a, p.Capacity, p.Delay)
			}
		}
		// Agg j <-> its core group.
		for j, a := range aggs {
			for c := 0; c < half; c++ {
				t.AddLink(a, cores[j*half+c], p.Capacity, p.Delay)
			}
		}
		// Hosts.
		for _, e := range edges {
			for h := 0; h < half; h++ {
				host := t.AddHost(fmt.Sprintf("H%d", hostN))
				t.SetLayer(host, "host", pod)
				hostN++
				t.AddLink(host, e, p.Capacity, p.Delay)
			}
		}
	}
	return t
}

// FatTreeHostCount reports the number of hosts in a k-ary fat-tree.
func FatTreeHostCount(k int) int { return k * k * k / 4 }

// Dumbbell builds the congestion-control topology of the Figure 20 study:
// senders H1..Hn attached to switch S1, S1 joined to S2, and the single
// receiver Hr attached to S2. All n senders share the S1→S2 bottleneck.
func Dumbbell(n int, p LinkParams) *Topology {
	if n < 1 {
		panic(fmt.Sprintf("topology: dumbbell needs at least one sender, got n = %d", n))
	}
	t := New(fmt.Sprintf("dumbbell-%d", n))
	s1 := t.AddSwitch("S1")
	s2 := t.AddSwitch("S2")
	for i := 1; i <= n; i++ {
		h := t.AddHost(fmt.Sprintf("H%d", i))
		t.AddLink(h, s1, p.Capacity, p.Delay)
	}
	r := t.AddHost(fmt.Sprintf("H%d", n+1))
	t.AddLink(s1, s2, p.Capacity, p.Delay)
	t.AddLink(r, s2, p.Capacity, p.Delay)
	return t
}

// Linear builds a chain of n switches, each with one host: H1-S1-S2-...-Sn-Hn.
// Useful for hop-by-hop backpressure tests with no CBD.
func Linear(n int, p LinkParams) *Topology {
	if n < 1 {
		panic(fmt.Sprintf("topology: linear chain needs at least one switch, got n = %d", n))
	}
	t := New(fmt.Sprintf("linear-%d", n))
	prev := None
	for i := 1; i <= n; i++ {
		s := t.AddSwitch(fmt.Sprintf("S%d", i))
		h := t.AddHost(fmt.Sprintf("H%d", i))
		t.AddLink(h, s, p.Capacity, p.Delay)
		if prev != None {
			t.AddLink(prev, s, p.Capacity, p.Delay)
		}
		prev = s
	}
	return t
}

// TwoToOne builds the 2-to-1 congestion scenario of Figure 5: two senders
// and one receiver on a single switch.
func TwoToOne(p LinkParams) *Topology {
	t := New("two-to-one")
	s := t.AddSwitch("S1")
	for _, n := range []string{"H1", "H2", "H3"} {
		h := t.AddHost(n)
		t.AddLink(h, s, p.Capacity, p.Delay)
	}
	return t
}
