package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gfcsim/gfc/internal/units"
)

func TestAddNodesAndLinks(t *testing.T) {
	topo := New("t")
	a := topo.AddSwitch("S1")
	b := topo.AddSwitch("S2")
	h := topo.AddHost("H1")
	if topo.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", topo.NumNodes())
	}
	id := topo.AddLink(a, b, 10*units.Gbps, units.Microsecond)
	topo.AddLink(h, a, 10*units.Gbps, units.Microsecond)
	l := topo.Link(id)
	if l.A != a || l.B != b || l.PortA != 0 || l.PortB != 0 {
		t.Fatalf("link = %+v", l)
	}
	if l.Other(a) != b || l.Other(b) != a {
		t.Error("Other endpoints wrong")
	}
	if l.PortOn(a) != 0 || l.PortOn(b) != 0 {
		t.Error("PortOn wrong")
	}
	// Second link on a gets port 1.
	if got := topo.Ports(a); len(got) != 2 || got[1].Peer != h {
		t.Fatalf("Ports(a) = %+v", got)
	}
}

func TestLookup(t *testing.T) {
	topo := New("t")
	s := topo.AddSwitch("S1")
	if id, ok := topo.Lookup("S1"); !ok || id != s {
		t.Fatal("Lookup failed")
	}
	if _, ok := topo.Lookup("nope"); ok {
		t.Fatal("Lookup found ghost")
	}
	if topo.MustLookup("S1") != s {
		t.Fatal("MustLookup wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup on missing name did not panic")
		}
	}()
	topo.MustLookup("nope")
}

func TestDuplicateNamePanics(t *testing.T) {
	topo := New("t")
	topo.AddSwitch("S1")
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	topo.AddSwitch("S1")
}

func TestBadLinkPanics(t *testing.T) {
	topo := New("t")
	a := topo.AddSwitch("S1")
	b := topo.AddSwitch("S2")
	for _, fn := range []func(){
		func() { topo.AddLink(a, a, units.Gbps, 0) },
		func() { topo.AddLink(a, b, 0, 0) },
		func() { topo.AddLink(a, b, units.Gbps, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad link did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestFailLink(t *testing.T) {
	topo := Ring(3, DefaultLinkParams())
	s1 := topo.MustLookup("S1")
	s2 := topo.MustLookup("S2")
	if topo.LinkBetween(s1, s2) == nil {
		t.Fatal("no S1-S2 link")
	}
	id := topo.FailLinkBetween("S1", "S2")
	if !topo.Link(id).Failed {
		t.Fatal("link not marked failed")
	}
	if topo.LinkBetween(s1, s2) != nil {
		t.Fatal("LinkBetween returned failed link")
	}
	found := false
	for _, p := range topo.Neighbors(s1) {
		if p == s2 {
			found = true
		}
	}
	if found {
		t.Fatal("Neighbors includes failed link peer")
	}
}

func TestRingShape(t *testing.T) {
	topo := Ring(3, DefaultLinkParams())
	if got := len(topo.Hosts()); got != 3 {
		t.Errorf("hosts = %d", got)
	}
	if got := len(topo.Switches()); got != 3 {
		t.Errorf("switches = %d", got)
	}
	if got := topo.NumLinks(); got != 6 {
		t.Errorf("links = %d", got)
	}
	if !topo.Connected() {
		t.Error("ring not connected")
	}
	// Each switch: 1 host port + 2 ring ports.
	for _, s := range topo.Switches() {
		if got := len(topo.Ports(s)); got != 3 {
			t.Errorf("switch %d has %d ports", s, got)
		}
	}
}

func TestRingTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Ring(2) did not panic")
		}
	}()
	Ring(2, DefaultLinkParams())
}

func TestFatTreeShape(t *testing.T) {
	for _, k := range []int{4, 8} {
		topo := FatTree(k, DefaultLinkParams())
		wantHosts := FatTreeHostCount(k)
		if got := len(topo.Hosts()); got != wantHosts {
			t.Errorf("k=%d hosts = %d, want %d", k, got, wantHosts)
		}
		wantSwitches := k*k/2 + k*k/2 + k*k/4 // edge + agg + core... edge=agg=k*k/2? no
		wantSwitches = k*(k/2)*2 + (k/2)*(k/2)
		if got := len(topo.Switches()); got != wantSwitches {
			t.Errorf("k=%d switches = %d, want %d", k, got, wantSwitches)
		}
		// Every switch in a fat-tree has exactly k ports.
		for _, s := range topo.Switches() {
			if got := len(topo.Ports(s)); got != k {
				t.Errorf("k=%d switch %s has %d ports", k, topo.Node(s).Name, got)
			}
		}
		if !topo.Connected() {
			t.Errorf("k=%d fat-tree not connected", k)
		}
	}
}

func TestFatTreeLayers(t *testing.T) {
	topo := FatTree(4, DefaultLinkParams())
	counts := map[string]int{}
	for _, s := range topo.Switches() {
		counts[topo.Node(s).Layer]++
	}
	if counts["core"] != 4 || counts["agg"] != 8 || counts["edge"] != 8 {
		t.Fatalf("layer counts = %v", counts)
	}
	// Core switches connect only to aggs, one per pod.
	c1 := topo.MustLookup("C1")
	pods := map[int]bool{}
	for _, at := range topo.Ports(c1) {
		n := topo.Node(at.Peer)
		if n.Layer != "agg" {
			t.Fatalf("core connects to %s", n.Layer)
		}
		pods[n.Pod] = true
	}
	if len(pods) != 4 {
		t.Fatalf("C1 reaches %d pods, want 4", len(pods))
	}
}

func TestFatTreeOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FatTree(3) did not panic")
		}
	}()
	FatTree(3, DefaultLinkParams())
}

func TestDumbbell(t *testing.T) {
	topo := Dumbbell(8, DefaultLinkParams())
	if got := len(topo.Hosts()); got != 9 {
		t.Errorf("hosts = %d, want 9", got)
	}
	if got := len(topo.Switches()); got != 2 {
		t.Errorf("switches = %d, want 2", got)
	}
	if !topo.Connected() {
		t.Error("dumbbell not connected")
	}
}

func TestLinear(t *testing.T) {
	topo := Linear(4, DefaultLinkParams())
	if got := len(topo.Hosts()); got != 4 {
		t.Errorf("hosts = %d", got)
	}
	if got := topo.NumLinks(); got != 4+3 {
		t.Errorf("links = %d", got)
	}
}

func TestTwoToOne(t *testing.T) {
	topo := TwoToOne(DefaultLinkParams())
	if len(topo.Hosts()) != 3 || len(topo.Switches()) != 1 {
		t.Fatal("wrong two-to-one shape")
	}
}

func TestFailRandomLinksOnlySwitchLinks(t *testing.T) {
	topo := FatTree(4, DefaultLinkParams())
	rng := rand.New(rand.NewSource(1))
	failed := topo.FailRandomLinks(rng, 1.0) // fail everything failable
	for _, id := range failed {
		l := topo.Link(id)
		if topo.Node(l.A).Kind != Switch || topo.Node(l.B).Kind != Switch {
			t.Fatal("host link failed")
		}
	}
	// With every switch-switch link down, hosts on different edges are
	// disconnected.
	if topo.Connected() {
		t.Error("still connected after failing all fabric links")
	}
	// All switch-switch links failed: 4 edge-agg per pod * ... count:
	wantFailed := 0
	for i := 0; i < topo.NumLinks(); i++ {
		l := topo.Link(i2l(i))
		if topo.Node(l.A).Kind == Switch && topo.Node(l.B).Kind == Switch {
			wantFailed++
		}
	}
	if len(failed) != wantFailed {
		t.Errorf("failed %d, want %d", len(failed), wantFailed)
	}
}

func i2l(i int) LinkID { return LinkID(i) }

func TestFailRandomLinksProbZero(t *testing.T) {
	topo := FatTree(4, DefaultLinkParams())
	rng := rand.New(rand.NewSource(1))
	if got := topo.FailRandomLinks(rng, 0); len(got) != 0 {
		t.Errorf("failed %d links at prob 0", len(got))
	}
}

func TestClone(t *testing.T) {
	topo := Ring(3, DefaultLinkParams())
	c := topo.Clone()
	topo.FailLinkBetween("S1", "S2")
	if c.LinkBetween(c.MustLookup("S1"), c.MustLookup("S2")) == nil {
		t.Fatal("clone shares failure state with original")
	}
	// Clone's attachments point at clone's links.
	c.FailLinkBetween("S2", "S3")
	if topo.LinkBetween(topo.MustLookup("S2"), topo.MustLookup("S3")) == nil {
		t.Fatal("original affected by clone failure")
	}
	if c.NumNodes() != topo.NumNodes() || c.NumLinks() != topo.NumLinks() {
		t.Fatal("clone shape differs")
	}
}

// Property: in any fat-tree, port counts are uniform and the topology is
// connected.
func TestFatTreeInvariants(t *testing.T) {
	f := func(kk uint8) bool {
		k := int(kk%3)*2 + 4 // 4, 6, 8
		topo := FatTree(k, DefaultLinkParams())
		for _, s := range topo.Switches() {
			if len(topo.Ports(s)) != k {
				return false
			}
		}
		for _, h := range topo.Hosts() {
			if len(topo.Ports(h)) != 1 {
				return false
			}
		}
		return topo.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
