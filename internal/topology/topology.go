// Package topology models the physical network: nodes (hosts and switches)
// joined by full-duplex links with capacity and propagation delay. It also
// provides builders for every topology the paper evaluates — the 3-switch
// deadlock ring of Figure 1, k-ary fat-trees (Figure 11) and the dumbbell
// used for the DCQCN interaction study — plus random link-failure injection
// for the large-scale sweeps of Table 1.
package topology

import (
	"fmt"
	"math/rand"

	"github.com/gfcsim/gfc/internal/units"
)

// NodeID identifies a node within one Topology.
type NodeID int

// None is the invalid node ID.
const None NodeID = -1

// Kind distinguishes traffic endpoints from forwarding elements.
type Kind uint8

// Node kinds.
const (
	Host Kind = iota
	Switch
)

func (k Kind) String() string {
	switch k {
	case Host:
		return "host"
	case Switch:
		return "switch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Node is a network element.
type Node struct {
	ID   NodeID
	Kind Kind
	Name string
	// Layer tags switches in structured topologies ("edge", "agg",
	// "core") and is empty elsewhere.
	Layer string
	// Pod is the pod index in fat-trees, -1 elsewhere.
	Pod int
}

// LinkID identifies a link within one Topology.
type LinkID int

// Link is a full-duplex connection between two nodes. Port numbers are the
// per-node indices of the attachment points; they are what flow-control
// state hangs off.
type Link struct {
	ID       LinkID
	A, B     NodeID
	PortA    int // port index on A
	PortB    int // port index on B
	Capacity units.Rate
	Delay    units.Time
	Failed   bool
}

// Other returns the endpoint of l that is not n.
func (l *Link) Other(n NodeID) NodeID {
	if l.A == n {
		return l.B
	}
	return l.A
}

// PortOn returns the port index of l on node n.
func (l *Link) PortOn(n NodeID) int {
	if l.A == n {
		return l.PortA
	}
	return l.PortB
}

// Attachment is one end of a link as seen from a node.
type Attachment struct {
	Link *Link
	Peer NodeID
	Port int // local port index
}

// Topology is a mutable network graph. Build it with AddHost / AddSwitch /
// AddLink, or use one of the ready-made builders.
type Topology struct {
	Name  string
	nodes []Node
	links []*Link
	adj   [][]Attachment // by node, indexed by local port
	byNam map[string]NodeID
}

// New returns an empty topology with the given name.
func New(name string) *Topology {
	return &Topology{Name: name, byNam: make(map[string]NodeID)}
}

func (t *Topology) addNode(kind Kind, name string) NodeID {
	if _, dup := t.byNam[name]; dup {
		panic(fmt.Sprintf("topology: duplicate node name %q", name))
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, Node{ID: id, Kind: kind, Name: name, Pod: -1})
	t.adj = append(t.adj, nil)
	t.byNam[name] = id
	return id
}

// AddHost adds a host node.
func (t *Topology) AddHost(name string) NodeID { return t.addNode(Host, name) }

// AddSwitch adds a switch node.
func (t *Topology) AddSwitch(name string) NodeID { return t.addNode(Switch, name) }

// SetLayer tags node n with a layer label and pod index.
func (t *Topology) SetLayer(n NodeID, layer string, pod int) {
	t.nodes[n].Layer = layer
	t.nodes[n].Pod = pod
}

// AddLink joins a and b with a full-duplex link, assigning the next free
// port on each side, and returns its ID.
func (t *Topology) AddLink(a, b NodeID, capacity units.Rate, delay units.Time) LinkID {
	if a == b {
		panic("topology: self-link")
	}
	if capacity <= 0 {
		panic("topology: non-positive link capacity")
	}
	if delay < 0 {
		panic("topology: negative link delay")
	}
	id := LinkID(len(t.links))
	l := &Link{
		ID: id, A: a, B: b,
		PortA: len(t.adj[a]), PortB: len(t.adj[b]),
		Capacity: capacity, Delay: delay,
	}
	t.links = append(t.links, l)
	t.adj[a] = append(t.adj[a], Attachment{Link: l, Peer: b, Port: l.PortA})
	t.adj[b] = append(t.adj[b], Attachment{Link: l, Peer: a, Port: l.PortB})
	return id
}

// NumNodes reports the number of nodes.
func (t *Topology) NumNodes() int { return len(t.nodes) }

// NumLinks reports the number of links, failed or not.
func (t *Topology) NumLinks() int { return len(t.links) }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) *Node { return &t.nodes[id] }

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) *Link { return t.links[id] }

// Lookup finds a node by name; the second result reports whether it exists.
func (t *Topology) Lookup(name string) (NodeID, bool) {
	id, ok := t.byNam[name]
	return id, ok
}

// MustLookup finds a node by name and panics if it does not exist.
func (t *Topology) MustLookup(name string) NodeID {
	id, ok := t.byNam[name]
	if !ok {
		panic(fmt.Sprintf("topology: no node named %q", name))
	}
	return id
}

// Ports returns the attachments of node n indexed by local port. Failed
// links are included; callers that care must check Link.Failed.
func (t *Topology) Ports(n NodeID) []Attachment { return t.adj[n] }

// Neighbors returns the peers of n over non-failed links.
func (t *Topology) Neighbors(n NodeID) []NodeID {
	var out []NodeID
	for _, at := range t.adj[n] {
		if !at.Link.Failed {
			out = append(out, at.Peer)
		}
	}
	return out
}

// Hosts returns the IDs of all host nodes.
func (t *Topology) Hosts() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Kind == Host {
			out = append(out, n.ID)
		}
	}
	return out
}

// Switches returns the IDs of all switch nodes.
func (t *Topology) Switches() []NodeID {
	var out []NodeID
	for _, n := range t.nodes {
		if n.Kind == Switch {
			out = append(out, n.ID)
		}
	}
	return out
}

// LinkBetween returns the non-failed link joining a and b, or nil.
func (t *Topology) LinkBetween(a, b NodeID) *Link {
	for _, at := range t.adj[a] {
		if at.Peer == b && !at.Link.Failed {
			return at.Link
		}
	}
	return nil
}

// FailLink marks link id as failed. Routing and simulation ignore failed
// links.
func (t *Topology) FailLink(id LinkID) { t.links[id].Failed = true }

// FailLinkBetween fails the link joining the named nodes and returns its ID.
func (t *Topology) FailLinkBetween(a, b string) LinkID {
	l := t.LinkBetween(t.MustLookup(a), t.MustLookup(b))
	if l == nil {
		panic(fmt.Sprintf("topology: no live link between %s and %s", a, b))
	}
	l.Failed = true
	return l.ID
}

// FailRandomLinks fails each switch-to-switch link independently with the
// given probability, using rng, and returns the failed link IDs. Host
// attachment links never fail (a failed host link just removes the host,
// which the paper's sweep does not model).
func (t *Topology) FailRandomLinks(rng *rand.Rand, prob float64) []LinkID {
	var failed []LinkID
	for _, l := range t.links {
		if l.Failed {
			continue
		}
		if t.nodes[l.A].Kind != Switch || t.nodes[l.B].Kind != Switch {
			continue
		}
		if rng.Float64() < prob {
			l.Failed = true
			failed = append(failed, l.ID)
		}
	}
	return failed
}

// Connected reports whether all hosts can reach each other over non-failed
// links.
func (t *Topology) Connected() bool {
	hosts := t.Hosts()
	if len(hosts) <= 1 {
		return true
	}
	seen := make([]bool, len(t.nodes))
	queue := []NodeID{hosts[0]}
	seen[hosts[0]] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, p := range t.Neighbors(n) {
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	for _, h := range hosts {
		if !seen[h] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the topology, including failure state.
func (t *Topology) Clone() *Topology {
	c := New(t.Name)
	c.nodes = append([]Node(nil), t.nodes...)
	c.links = make([]*Link, len(t.links))
	for i, l := range t.links {
		cp := *l
		c.links[i] = &cp
	}
	c.adj = make([][]Attachment, len(t.adj))
	for n, ats := range t.adj {
		c.adj[n] = make([]Attachment, len(ats))
		for i, at := range ats {
			c.adj[n][i] = Attachment{Link: c.links[at.Link.ID], Peer: at.Peer, Port: at.Port}
		}
	}
	for name, id := range t.byNam {
		c.byNam[name] = id
	}
	return c
}
