package baselines

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/topology"
)

// Dateline returns a netsim Escalation hook implementing the classic
// virtual-channel scheme for rings: packets crossing the "dateline" link
// (from the named switch to its clockwise successor) are bumped from
// priority class 0 to class 1. Because no packet re-crosses the dateline in
// class 1, the class-1 buffer dependencies cannot close a cycle, and class
// 0's cycle is broken at the dateline — circular wait is impossible with
// two priority classes.
//
// This is the queue-management family of deadlock avoidance (§8): effective,
// but the number of required classes grows with the topology (one ring
// needs 2; meshes of rings and larger CBDs need more), which is the
// scalability criticism the paper levels at it.
func Dateline(t *topology.Topology, from, to string) (func(pkt *netsim.Packet, at topology.NodeID) int, error) {
	a, ok := t.Lookup(from)
	if !ok {
		return nil, fmt.Errorf("baselines: unknown node %q", from)
	}
	b, ok := t.Lookup(to)
	if !ok {
		return nil, fmt.Errorf("baselines: unknown node %q", to)
	}
	if t.LinkBetween(a, b) == nil {
		return nil, fmt.Errorf("baselines: no live link %s-%s", from, to)
	}
	return func(pkt *netsim.Packet, at topology.NodeID) int {
		// The packet has just been admitted at `at`; it crossed the
		// dateline if it arrived over the a→b link.
		if at == b && pkt.Priority == 0 && cameFrom(pkt, a) {
			return 1
		}
		return pkt.Priority
	}, nil
}

// cameFrom reports whether pkt's previous hop transmitted from node n.
func cameFrom(pkt *netsim.Packet, n topology.NodeID) bool {
	// pkt.CurrentHop is the hop about to be transmitted by the current
	// node; the packet was just received, so the previous path entry is
	// the transmitter. Escalation runs before hop advancement, so
	// CurrentHop still names the sender.
	return pkt.CurrentHop().Node == n
}
