package baselines

import (
	"fmt"
	"sort"

	"github.com/gfcsim/gfc/internal/cbd"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
)

// Tagger is a simplified reimplementation of the Tagger idea (Hu et al.,
// CoNEXT 2017; §8 of the GFC paper): break *circular wait* by bumping a
// packet's priority class when it crosses one of a statically computed set
// of "risky" channel-to-channel transitions, so that no cycle exists within
// any single class. Unlike the generic hop-by-hop escalation (which needs
// as many classes as the longest path), the rule set is derived from the
// actual buffer-dependency graph of the expected routes, so the class
// budget stays small — but it is still finite, which is Tagger's documented
// limitation: if the traffic escapes the analysed routes, packets may need
// a class that does not exist.
type Tagger struct {
	topo *topology.Topology
	// bump[classless transition] — the set of (via, from, to) node
	// triples at which a packet entering `via` from `from` and leaving
	// toward `to` must move up one class.
	bump map[[3]topology.NodeID]bool
	// Classes is the number of priority classes the rule set needs
	// (1 + the longest chain of bumps on any analysed path).
	Classes int
}

// NewTagger analyses the given forwarding paths and returns rules that
// guarantee no cyclic buffer dependency within any priority class. The
// algorithm breaks every cycle of the dependency graph by marking a
// transition edge on it, iterating until acyclic (a greedy feedback-edge
// cut; Tagger proper exploits topology structure for minimality, which a
// simulator does not need).
func NewTagger(t *topology.Topology, paths [][]routing.Hop) (*Tagger, error) {
	tg := &Tagger{topo: t, bump: make(map[[3]topology.NodeID]bool)}

	// Iterate: build the class-0 dependency graph of path segments that
	// have no bump yet; every cycle found gets its first edge bumped.
	for iter := 0; ; iter++ {
		if iter > t.NumLinks()*2 {
			return nil, fmt.Errorf("baselines: tagger failed to converge")
		}
		g := cbd.NewGraph(t)
		for _, p := range paths {
			// Split the path at bumps: each fragment lives in one
			// class, and only same-class fragments can deadlock
			// together. (Higher classes inherit a sub-path of the
			// original, so if class 0's graph is acyclic and each
			// bump strictly increases the class, every class's
			// graph is a subgraph of an acyclic one... which is
			// not automatic — so all fragments of all classes are
			// folded into one graph per iteration, conservatively.)
			frag := make([]routing.Hop, 0, len(p))
			for i, h := range p {
				if i > 0 && i+1 <= len(p) {
					via := h.Node
					from := p[i-1].Node
					var to topology.NodeID
					if i+1 < len(p) {
						to = p[i+1].Node
					} else {
						to = h.Link.Other(h.Node)
					}
					if tg.bump[[3]topology.NodeID{via, from, to}] {
						g.AddPath(frag)
						frag = frag[:0]
					}
				}
				frag = append(frag, h)
			}
			g.AddPath(frag)
		}
		cyc := g.FindCycle()
		if cyc == nil {
			break
		}
		// Bump the transition between the first two cycle channels:
		// packets arriving at cyc[0].To from cyc[0].From and heading
		// to cyc[1].To switch class there.
		key := [3]topology.NodeID{cyc[0].To, cyc[0].From, cyc[1].To}
		if tg.bump[key] {
			return nil, fmt.Errorf("baselines: tagger re-marked %v", key)
		}
		tg.bump[key] = true
	}

	// Class budget: 1 + max bumps along any path.
	maxBumps := 0
	for _, p := range paths {
		b := tg.pathBumps(p)
		if b > maxBumps {
			maxBumps = b
		}
	}
	tg.Classes = maxBumps + 1
	return tg, nil
}

// pathBumps counts the escalations a packet on p experiences.
func (tg *Tagger) pathBumps(p []routing.Hop) int {
	n := 0
	for i := 1; i < len(p); i++ {
		via := p[i].Node
		from := p[i-1].Node
		var to topology.NodeID
		if i+1 < len(p) {
			to = p[i+1].Node
		} else {
			to = p[i].Link.Other(p[i].Node)
		}
		if tg.bump[[3]topology.NodeID{via, from, to}] {
			n++
		}
	}
	return n
}

// Rules lists the bump triples, sorted, for inspection.
func (tg *Tagger) Rules() [][3]topology.NodeID {
	out := make([][3]topology.NodeID, 0, len(tg.bump))
	for k := range tg.bump {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for x := 0; x < 3; x++ {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return out
}

// Escalation returns the netsim hook applying the rule set. The simulation
// must be configured with at least Classes priority classes.
func (tg *Tagger) Escalation() func(pkt *netsim.Packet, at topology.NodeID) int {
	return func(pkt *netsim.Packet, at topology.NodeID) int {
		// The packet was just admitted at `at`; its sender is
		// CurrentHop().Node (hop not yet advanced) and its next node
		// follows from the path.
		hop := pkt.CurrentHop()
		from := hop.Node
		idx := -1
		for i := range pkt.Path {
			if pkt.Path[i].Node == from && pkt.Path[i].Link == hop.Link {
				idx = i
				break
			}
		}
		if idx < 0 || idx+1 >= len(pkt.Path) {
			return pkt.Priority
		}
		var to topology.NodeID
		if idx+2 < len(pkt.Path) {
			to = pkt.Path[idx+2].Node
		} else {
			last := pkt.Path[idx+1]
			to = last.Link.Other(last.Node)
		}
		if tg.bump[[3]topology.NodeID{at, from, to}] {
			return pkt.Priority + 1
		}
		return pkt.Priority
	}
}
