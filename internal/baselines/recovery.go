package baselines

import (
	"github.com/gfcsim/gfc/internal/deadlock"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/units"
)

// Recovery implements the reactive family (§8, [2,3,36,38,52]): it watches
// the network with a deadlock detector and, on detection, drops the head
// packet of every buffer in the cycle — the minimal packet sacrifice that
// breaks the circular wait. Then detection restarts. Every intervention is
// counted; the drop count is the losslessness violation the paper holds
// against recovery schemes ("blunt and rigid").
type Recovery struct {
	net *netsim.Network
	// Interventions counts detected deadlocks broken.
	Interventions int
	// PacketsDropped counts packets sacrificed.
	PacketsDropped int
	// Window and Interval configure the underlying detector.
	Window   units.Time
	Interval units.Time

	det *deadlock.Detector
}

// NewRecovery returns a recovery agent over n. The detection window
// defaults to 2 ms — recovery schemes detect aggressively since their only
// cost is dropped packets.
func NewRecovery(n *netsim.Network) *Recovery {
	return &Recovery{
		net:      n,
		Window:   2 * units.Millisecond,
		Interval: units.Millisecond,
	}
}

// Install schedules the detect-and-break loop.
func (r *Recovery) Install() {
	r.reset()
	var tick func()
	tick = func() {
		if rep := r.det.Check(); rep != nil {
			r.breakCycle(rep)
			r.reset() // start a fresh detection epoch
		}
		r.net.Engine().After(r.Interval, tick)
	}
	r.net.Engine().After(r.Interval, tick)
}

func (r *Recovery) reset() {
	r.det = deadlock.NewDetector(r.net)
	r.det.Window = r.Window
	r.det.Interval = r.Interval
}

// headsPerBreak is how many head packets are sacrificed per cycle buffer
// per intervention. One head technically breaks the instantaneous wait, but
// with the buffers still above XON the pause re-engages immediately;
// draining a few packets is what practical schemes do. Either way the cycle
// re-forms under sustained pressure — recovery treats the symptom, which is
// precisely the paper's criticism.
const headsPerBreak = 4

// breakCycle drops head packets of every ingress buffer in the detected
// cycle.
func (r *Recovery) breakCycle(rep *deadlock.Report) {
	r.Interventions++
	for _, ch := range rep.Cycle {
		port := r.net.PortFor(ch.Node, ch.From)
		if port < 0 {
			continue
		}
		for i := 0; i < headsPerBreak; i++ {
			if !r.net.DropIngressHead(ch.Node, port, ch.Prio) {
				break
			}
			r.PacketsDropped++
		}
	}
}
