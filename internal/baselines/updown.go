// Package baselines implements the deadlock-handling alternatives the
// paper's related work surveys (§8), so the evaluation can compare GFC
// against them on equal footing:
//
//   - Up*/Down* routing (Autonet [51]): a CBD-free routing restriction —
//     deadlock can never form, at the cost of longer paths and lost
//     multipath diversity;
//   - dateline priority escalation ([6, 20, 35] and, structurally, Tagger
//     [25]): breaking circular wait by bumping packets into a higher
//     priority class when they cross a cut of the cycle — deadlock-free
//     within the queue budget, at the cost of extra priority queues;
//   - deadlock recovery ([2, 3, 36, 38, 52]): detect the cycle at runtime
//     and drop packets to break it — reactive, and violates losslessness.
package baselines

import (
	"fmt"
	"sort"

	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
)

// UpDown computes Up*/Down* routes: links are oriented toward a spanning
// tree root (chosen as the first switch, or the lowest-ID switch with the
// most ports), and a legal path is a sequence of zero or more "up" (toward
// the root) links followed by zero or more "down" links. No legal set of
// paths can form a cyclic buffer dependency.
type UpDown struct {
	topo *topology.Topology
	// level[n] is the BFS tree depth of node n from the root; up moves
	// strictly decrease (level, id) lexicographically.
	level []int
	root  topology.NodeID
}

// NewUpDown builds the orientation for t over its live links.
func NewUpDown(t *topology.Topology) (*UpDown, error) {
	switches := t.Switches()
	if len(switches) == 0 {
		return nil, fmt.Errorf("baselines: no switches")
	}
	// Root: the switch with the highest degree, lowest ID on ties — the
	// usual Autonet heuristic.
	root := switches[0]
	best := -1
	for _, s := range switches {
		d := len(t.Neighbors(s))
		if d > best || (d == best && s < root) {
			best = d
			root = s
		}
	}
	u := &UpDown{topo: t, root: root, level: make([]int, t.NumNodes())}
	for i := range u.level {
		u.level[i] = -1
	}
	u.level[root] = 0
	queue := []topology.NodeID{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, p := range t.Neighbors(n) {
			if u.level[p] < 0 {
				u.level[p] = u.level[n] + 1
				queue = append(queue, p)
			}
		}
	}
	return u, nil
}

// Root returns the spanning-tree root.
func (u *UpDown) Root() topology.NodeID { return u.root }

// isUp reports whether moving a→b is an "up" move: toward the root in
// (level, id) lexicographic order. Every link has exactly one up direction,
// so the orientation is total and acyclic.
func (u *UpDown) isUp(a, b topology.NodeID) bool {
	if u.level[b] != u.level[a] {
		return u.level[b] < u.level[a]
	}
	return b < a
}

// Path computes a shortest Up*/Down*-legal path from src to dst, or an
// error when none exists (disconnected). Ties prefer fewer direction
// changes, then lower node IDs — deterministic.
func (u *UpDown) Path(src, dst topology.NodeID) ([]routing.Hop, error) {
	if src == dst {
		return nil, fmt.Errorf("baselines: src == dst")
	}
	t := u.topo
	// BFS over (node, phase): phase 0 = still allowed to go up,
	// phase 1 = committed to down moves only.
	type state struct {
		node  topology.NodeID
		phase int
	}
	type prevInfo struct {
		prev state
		at   topology.Attachment
		ok   bool
	}
	prev := make(map[state]prevInfo)
	start := state{src, 0}
	prev[start] = prevInfo{}
	queue := []state{start}
	var goal state
	found := false
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		// Deterministic expansion order: by local port index.
		ats := t.Ports(cur.node)
		for i := 0; i < len(ats); i++ {
			at := ats[i]
			if at.Link.Failed {
				continue
			}
			// Hosts do not forward transit traffic.
			if t.Node(cur.node).Kind == topology.Host && cur.node != src {
				continue
			}
			next := at.Peer
			up := u.isUp(cur.node, next)
			// Hosts sit below their switch: host links are
			// "down" toward the host regardless of orientation.
			if t.Node(next).Kind == topology.Host {
				up = false
			}
			if t.Node(cur.node).Kind == topology.Host {
				up = true
			}
			var ns state
			switch {
			case up && cur.phase == 0:
				ns = state{next, 0}
			case !up:
				ns = state{next, 1}
			default:
				continue // down→up is illegal
			}
			if _, seen := prev[ns]; seen {
				continue
			}
			prev[ns] = prevInfo{prev: cur, at: at, ok: true}
			if next == dst {
				goal = ns
				found = true
				break
			}
			if t.Node(next).Kind == topology.Switch {
				queue = append(queue, ns)
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("baselines: no up*/down* path %d -> %d",
			src, dst)
	}
	// Reconstruct.
	var rev []routing.Hop
	for s := goal; ; {
		pi := prev[s]
		if !pi.ok {
			break
		}
		rev = append(rev, routing.Hop{
			Node: pi.prev.node,
			Port: pi.at.Link.PortOn(pi.prev.node),
			Link: pi.at.Link,
		})
		s = pi.prev
	}
	out := make([]routing.Hop, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out, nil
}

// AllPairsStretch compares Up*/Down* path lengths with shortest paths over
// all ordered host pairs: it returns the mean stretch (UpDown length /
// SPF length) and the fraction of pairs with stretch > 1 — the multipath /
// path-length cost the paper cites against CBD-free routing.
func (u *UpDown) AllPairsStretch(tab *routing.Table) (mean float64, inflated float64, err error) {
	hosts := u.topo.Hosts()
	var sum float64
	var n, longer int
	// Deterministic order.
	sorted := append([]topology.NodeID(nil), hosts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, s := range sorted {
		for _, d := range sorted {
			if s == d || !tab.Reachable(s, d) {
				continue
			}
			ud, err := u.Path(s, d)
			if err != nil {
				return 0, 0, err
			}
			spf, _ := tab.Distance(s, d)
			stretch := float64(len(ud)) / float64(spf)
			sum += stretch
			n++
			if len(ud) > spf {
				longer++
			}
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("baselines: no reachable pairs")
	}
	return sum / float64(n), float64(longer) / float64(n), nil
}
