package baselines

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gfcsim/gfc/internal/cbd"
	"github.com/gfcsim/gfc/internal/deadlock"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// --- Up*/Down* ---

func TestUpDownPathsLegal(t *testing.T) {
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	ud, err := NewUpDown(topo)
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()
	for _, s := range hosts[:4] {
		for _, d := range hosts[len(hosts)-4:] {
			if s == d {
				continue
			}
			p, err := ud.Path(s, d)
			if err != nil {
				t.Fatalf("%v->%v: %v", s, d, err)
			}
			// Verify up-then-down: once a down move happens, no up.
			down := false
			for i := 0; i+1 < len(p); i++ {
				a, b := p[i].Node, p[i+1].Node
				up := ud.isUp(a, b)
				if topo.Node(b).Kind == topology.Host {
					up = false
				}
				if topo.Node(a).Kind == topology.Host {
					up = true
				}
				if up && down {
					t.Fatalf("illegal down->up at hop %d of %v->%v", i, s, d)
				}
				if !up {
					down = true
				}
			}
			// Ends at d.
			last := p[len(p)-1]
			if last.Link.Other(last.Node) != d {
				t.Fatalf("path does not end at destination")
			}
		}
	}
}

func TestUpDownIsCBDFree(t *testing.T) {
	// The defining property: the union of up*/down* paths over ALL host
	// pairs can never contain a cyclic buffer dependency — even on
	// randomly failed topologies where SPF unions can.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		topo := topology.FatTree(4, topology.DefaultLinkParams())
		topo.FailRandomLinks(rng, 0.08)
		ud, err := NewUpDown(topo)
		if err != nil {
			return false
		}
		g := cbd.NewGraph(topo)
		hosts := topo.Hosts()
		for _, s := range hosts {
			for _, d := range hosts {
				if s == d {
					continue
				}
				p, err := ud.Path(s, d)
				if err != nil {
					continue // disconnected under up*/down*
				}
				g.AddPath(p)
			}
		}
		return !g.HasCycle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestUpDownRingBreaksCycle(t *testing.T) {
	// On the ring, up*/down* refuses the route around the cycle: the
	// union of its paths is acyclic while the clockwise pattern is not.
	topo := topology.Ring(3, topology.DefaultLinkParams())
	ud, err := NewUpDown(topo)
	if err != nil {
		t.Fatal(err)
	}
	g := cbd.NewGraph(topo)
	hosts := topo.Hosts()
	for _, s := range hosts {
		for _, d := range hosts {
			if s == d {
				continue
			}
			p, err := ud.Path(s, d)
			if err != nil {
				t.Fatalf("ring pair unreachable under up*/down*: %v", err)
			}
			g.AddPath(p)
		}
	}
	if g.HasCycle() {
		t.Fatal("up*/down* produced a CBD on the ring")
	}
}

func TestUpDownStretch(t *testing.T) {
	// The cost side: on a healthy fat-tree up*/down* should be close to
	// shortest, but on a ring some pairs take the long way round.
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	ud, err := NewUpDown(topo)
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewSPF(topo)
	mean, inflated, err := ud.AllPairsStretch(tab)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 1.0 {
		t.Fatalf("mean stretch %v < 1", mean)
	}
	if mean > 1.5 {
		t.Errorf("fat-tree up*/down* stretch %v unexpectedly high", mean)
	}
	_ = inflated
	// Ring: the long-way-round cost must show up.
	ring := topology.Ring(5, topology.DefaultLinkParams())
	udr, err := NewUpDown(ring)
	if err != nil {
		t.Fatal(err)
	}
	rmean, rinfl, err := udr.AllPairsStretch(routing.NewSPF(ring))
	if err != nil {
		t.Fatal(err)
	}
	if rinfl == 0 {
		t.Errorf("no inflated pairs on a 5-ring (mean %v)", rmean)
	}
}

// --- Dateline ---

func ringDeadlockSim(t *testing.T, prios int, esc func(*netsim.Packet, topology.NodeID) int) (*netsim.Network, *deadlock.Detector) {
	t.Helper()
	topo := topology.RingHosts(3, 2, topology.DefaultLinkParams())
	cfg := netsim.Config{
		BufferSize: 1000 * units.KB,
		Tau:        90 * units.Microsecond,
		Priorities: prios,
		FlowControl: flowcontrol.NewPFC(flowcontrol.PFCConfig{
			XOFF: 800 * units.KB, XON: 797 * units.KB}),
		Escalation: esc,
	}
	n, err := netsim.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, path := range routing.RingHostsClockwisePaths(topo, 3, 2) {
		f := &netsim.Flow{ID: i + 1, Src: path[0].Node,
			Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
			Path: path}
		if err := n.AddFlow(f, 0); err != nil {
			t.Fatal(err)
		}
	}
	det := deadlock.NewDetector(n)
	det.Install()
	return n, det
}

func TestDatelineAvoidsRingDeadlock(t *testing.T) {
	// Control: plain PFC deadlocks on this ring.
	n0, det0 := ringDeadlockSim(t, 1, nil)
	n0.Run(100 * units.Millisecond)
	if det0.Deadlocked() == nil {
		t.Fatal("control run did not deadlock; dateline test is vacuous")
	}

	// Dateline: two priority classes, escalate on the S3→S1 crossing.
	topoRef := topology.RingHosts(3, 2, topology.DefaultLinkParams())
	esc, err := Dateline(topoRef, "S3", "S1")
	if err != nil {
		t.Fatal(err)
	}
	// Note the escalation hook must be built against the simulation's
	// own topology for node IDs to match; rebuild inline.
	n1, det1 := ringDeadlockSim(t, 2, func(pkt *netsim.Packet, at topology.NodeID) int {
		return esc(pkt, at)
	})
	n1.Run(150 * units.Millisecond)
	if rep := det1.Deadlocked(); rep != nil {
		t.Fatalf("dateline PFC deadlocked: %+v", rep)
	}
	if n1.Drops() != 0 {
		t.Fatalf("drops = %d", n1.Drops())
	}
	if n1.TotalDelivered() <= n0.TotalDelivered() {
		t.Errorf("dateline delivered %v, control (deadlocked) %v",
			n1.TotalDelivered(), n0.TotalDelivered())
	}
}

func TestDatelineErrors(t *testing.T) {
	topo := topology.Ring(3, topology.DefaultLinkParams())
	if _, err := Dateline(topo, "nope", "S1"); err == nil {
		t.Error("unknown from accepted")
	}
	if _, err := Dateline(topo, "S1", "nope"); err == nil {
		t.Error("unknown to accepted")
	}
	if _, err := Dateline(topo, "S1", "H2"); err == nil {
		t.Error("non-adjacent pair accepted")
	}
}

func TestEscalationValidation(t *testing.T) {
	topo := topology.Linear(2, topology.DefaultLinkParams())
	cfg := netsim.Config{
		BufferSize:  300 * units.KB,
		FlowControl: flowcontrol.NewPFCDefault(),
		Escalation: func(pkt *netsim.Packet, _ topology.NodeID) int {
			return pkt.Priority - 1 // illegal: lowering
		},
	}
	n, err := netsim.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewSPF(topo)
	src, dst := topo.MustLookup("H1"), topo.MustLookup("H2")
	p, _ := tab.Path(src, dst, 1)
	if err := n.AddFlow(&netsim.Flow{ID: 1, Src: src, Dst: dst, Size: units.KB, Path: p}, 0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("illegal escalation did not panic")
		}
	}()
	n.Run(units.Millisecond)
}

// --- Recovery ---

func TestRecoveryBreaksDeadlockWithDrops(t *testing.T) {
	build := func(withRecovery bool) (*netsim.Network, *Recovery) {
		topo := topology.RingHosts(3, 2, topology.DefaultLinkParams())
		cfg := netsim.Config{
			BufferSize: 1000 * units.KB,
			Tau:        90 * units.Microsecond,
			FlowControl: flowcontrol.NewPFC(flowcontrol.PFCConfig{
				XOFF: 800 * units.KB, XON: 797 * units.KB}),
		}
		n, err := netsim.New(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, path := range routing.RingHostsClockwisePaths(topo, 3, 2) {
			f := &netsim.Flow{ID: i + 1, Src: path[0].Node,
				Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
				Path: path}
			if err := n.AddFlow(f, 0); err != nil {
				t.Fatal(err)
			}
		}
		var rec *Recovery
		if withRecovery {
			rec = NewRecovery(n)
			rec.Install()
		}
		return n, rec
	}
	control, _ := build(false)
	control.Run(200 * units.Millisecond)

	n, rec := build(true)
	n.Run(200 * units.Millisecond)

	if rec.Interventions == 0 {
		t.Fatal("recovery never intervened on a deadlocking ring")
	}
	if rec.PacketsDropped == 0 || n.Drops() == 0 {
		t.Fatal("recovery broke deadlock without drops?")
	}
	// Recovery keeps some traffic moving — more than the frozen control —
	// but it thrashes: the cycle re-forms under sustained pressure, so
	// interventions repeat. Both facts are the paper's criticism of the
	// reactive family.
	if n.TotalDelivered() <= control.TotalDelivered() {
		t.Errorf("recovery delivered %v, control %v",
			n.TotalDelivered(), control.TotalDelivered())
	}
	if rec.Interventions < 2 {
		t.Errorf("interventions = %d; expected re-formation under pressure", rec.Interventions)
	}
}

func TestRecoveryIdleOnHealthyNetwork(t *testing.T) {
	topo := topology.TwoToOne(topology.DefaultLinkParams())
	n, err := netsim.New(topo, netsim.Config{
		BufferSize:  300 * units.KB,
		FlowControl: flowcontrol.NewPFCDefault(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewSPF(topo)
	for i, src := range []string{"H1", "H2"} {
		s := topo.MustLookup(src)
		d := topo.MustLookup("H3")
		p, _ := tab.Path(s, d, uint64(i))
		if err := n.AddFlow(&netsim.Flow{ID: i, Src: s, Dst: d, Path: p}, 0); err != nil {
			t.Fatal(err)
		}
	}
	rec := NewRecovery(n)
	rec.Install()
	n.Run(50 * units.Millisecond)
	if rec.Interventions != 0 || n.Drops() != 0 {
		t.Fatalf("recovery intervened on plain congestion: %d interventions, %d drops",
			rec.Interventions, n.Drops())
	}
}

// --- Tagger ---

func TestTaggerRingRules(t *testing.T) {
	topo := topology.RingHosts(3, 2, topology.DefaultLinkParams())
	paths := routing.RingHostsClockwisePaths(topo, 3, 2)
	tg, err := NewTagger(topo, paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(tg.Rules()) == 0 {
		t.Fatal("no bump rules on a cyclic pattern")
	}
	if tg.Classes != 2 {
		t.Errorf("ring needs %d classes, want 2", tg.Classes)
	}
	// The fragments' union per construction is acyclic: re-verify
	// directly by splitting the paths at bumps.
	g := cbd.NewGraph(topo)
	for _, p := range paths {
		frag := make([]routing.Hop, 0, len(p))
		for i, h := range p {
			if i > 0 && tg.pathBumps(p[:i+1]) > tg.pathBumps(p[:i]) {
				g.AddPath(frag)
				frag = frag[:0]
			}
			frag = append(frag, h)
		}
		g.AddPath(frag)
	}
	if g.HasCycle() {
		t.Fatal("bumped fragments still form a CBD")
	}
}

func TestTaggerAcyclicNeedsNoRules(t *testing.T) {
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	tab := routing.NewSPF(topo)
	hosts := topo.Hosts()
	var paths [][]routing.Hop
	for i := 0; i < 8; i++ {
		src, dst := hosts[i], hosts[len(hosts)-1-i]
		p, err := tab.Path(src, dst, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	tg, err := NewTagger(topo, paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(tg.Rules()) != 0 {
		t.Errorf("rules on CBD-free traffic: %v", tg.Rules())
	}
	if tg.Classes != 1 {
		t.Errorf("classes = %d, want 1", tg.Classes)
	}
}

func TestTaggerAvoidsRingDeadlockUnderPFC(t *testing.T) {
	topo := topology.RingHosts(3, 2, topology.DefaultLinkParams())
	paths := routing.RingHostsClockwisePaths(topo, 3, 2)
	tg, err := NewTagger(topo, paths)
	if err != nil {
		t.Fatal(err)
	}
	cfg := netsim.Config{
		BufferSize: 1000 * units.KB,
		Tau:        90 * units.Microsecond,
		Priorities: tg.Classes,
		FlowControl: flowcontrol.NewPFC(flowcontrol.PFCConfig{
			XOFF: 800 * units.KB, XON: 797 * units.KB}),
		Escalation: tg.Escalation(),
	}
	n, err := netsim.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range paths {
		f := &netsim.Flow{ID: i + 1, Src: p[0].Node,
			Dst:  p[len(p)-1].Link.Other(p[len(p)-1].Node),
			Path: p}
		if err := n.AddFlow(f, 0); err != nil {
			t.Fatal(err)
		}
	}
	det := deadlock.NewDetector(n)
	det.Install()
	n.Run(150 * units.Millisecond)
	if rep := det.Deadlocked(); rep != nil {
		t.Fatalf("tagger-protected PFC deadlocked: %+v", rep)
	}
	if n.Drops() != 0 {
		t.Fatalf("drops = %d", n.Drops())
	}
	// Decent utilisation: the ring must keep moving at real rates.
	if rate := units.RateOf(n.TotalDelivered(), n.Now()); rate < 10*units.Gbps {
		t.Errorf("aggregate %v, want the ring near capacity", rate)
	}
}

func TestTaggerFatTreeCaseStudy(t *testing.T) {
	// The Figure 12 scenario: tagger's rules break the C1→A3→C2→A7→C1
	// cycle with one extra class.
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	for _, pair := range [][2]string{
		{"C1", "A5"}, {"A1", "C2"}, {"E1", "A2"}, {"E5", "A6"},
	} {
		topo.FailLinkBetween(pair[0], pair[1])
	}
	mk := func(names ...string) []routing.Hop {
		return routing.MustExplicitPath(topo, names...)
	}
	paths := [][]routing.Hop{
		mk("H0", "E1", "A1", "C1", "A3", "C2", "A5", "E5", "H8"),
		mk("H4", "E3", "A3", "C2", "A7", "E7", "H12"),
		mk("H9", "E5", "A5", "C2", "A7", "C1", "A1", "E1", "H1"),
		mk("H13", "E7", "A7", "C1", "A3", "E3", "H5"),
	}
	tg, err := NewTagger(topo, paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(tg.Rules()) == 0 {
		t.Fatal("no rules for a cyclic scenario")
	}
	if tg.Classes > 3 {
		t.Errorf("classes = %d; tagger's promise is a small budget", tg.Classes)
	}
}
