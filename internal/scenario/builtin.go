package scenario

import "github.com/gfcsim/gfc/internal/units"

// caseStudyFailLinks are the four failures that force the Figure 11/12 CBD
// C1→A3→C2→A7→C1 on the canonical k=4 fat-tree wiring (see
// experiments.NewFatTreeDeadlock for the derivation).
var caseStudyFailLinks = []string{"C1-A5", "A1-C2", "E1-A2", "E5-A6"}

// caseStudyFlows are the paper's four CBD flows F1..F4 plus the cross-flow
// squeeze trigger, as explicit paths.
var caseStudyFlows = []FlowSpec{
	{ID: 1, Path: []string{"H0", "E1", "A1", "C1", "A3", "C2", "A5", "E5", "H8"}},
	{ID: 2, Path: []string{"H4", "E3", "A3", "C2", "A7", "E7", "H12"}},
	{ID: 3, Path: []string{"H9", "E5", "A5", "C2", "A7", "C1", "A1", "E1", "H1"}},
	{ID: 4, Path: []string{"H13", "E7", "A7", "C1", "A3", "E3", "H5"}},
	{ID: 50, Path: []string{"H6", "E4", "A3", "C2", "A7", "E8", "H14"}},
}

// clos128 returns the headline Clos-scale scenario: a k=8 fat-tree
// (128 hosts, 80 switches) under the paper's random inter-rack enterprise
// workload with §6.2.2 parameters — the scale the bespoke drivers could
// never express. CI runs all four schemes of it as a smoke test.
func clos128(fc FC) Spec {
	return Spec{
		Name:        "clos128-" + schemeSlug(fc),
		Description: "k=8 fat-tree (128 hosts), enterprise inter-rack workload, " + string(fc),
		Seed:        1,
		Topology:    TopologySpec{Builder: "fat-tree", K: 8},
		Routing:     RoutingSpec{Policy: "spf"},
		Workload:    WorkloadSpec{Generator: &GeneratorSpec{Dist: "enterprise"}},
		Scheme:      SchemeSpec{FC: fc, Preset: "sim"},
		Run:         RunSpec{DurationNs: 2 * units.Millisecond, DetectDeadlock: true},
	}
}

// clos1024 returns the frontier-scale scenario: a k=16 fat-tree (1024 hosts,
// 320 switches, 3072 links) under the same enterprise workload as clos128.
// At this scale a runaway run is expensive, so the spec declares its own
// governor Limits: the event cap is ~4× a healthy full-duration run
// (measured ~3.5M events over the 1 ms horizon on every scheme), the stall
// window is far past any legitimate quiet period, and the wall cap keeps a
// wedged CI job bounded. Only governed runs (RunBounded / gfcsim -budget
// paths) enforce them.
func clos1024(fc FC) Spec {
	return Spec{
		Name:        "clos1024-" + schemeSlug(fc),
		Description: "k=16 fat-tree (1024 hosts), enterprise inter-rack workload, " + string(fc),
		Seed:        1,
		Topology:    TopologySpec{Builder: "fat-tree", K: 16},
		Routing:     RoutingSpec{Policy: "spf"},
		Workload:    WorkloadSpec{Generator: &GeneratorSpec{Dist: "enterprise"}},
		Scheme:      SchemeSpec{FC: fc, Preset: "sim"},
		Run:         RunSpec{DurationNs: units.Millisecond, DetectDeadlock: true},
		Limits: &LimitsSpec{
			MaxEvents:   15_000_000,
			MaxWallMs:   120_000,
			StallEvents: 2_000_000,
		},
	}
}

// clos3456 returns the ROADMAP's scale-frontier scenario: a k=24 fat-tree
// (3456 hosts, 720 switches) under the enterprise workload. A full run at
// this scale is an hours-class job, so the declared Limits matter more than
// at k=16: the event cap is ~4× a healthy 1 ms run extrapolated from the
// measured clos1024 event rate (~3.5M events/ms at k=16, ~3.4× the fabric
// here), the wall cap bounds a wedged cell at five minutes per governed
// run, and the heap guard stops a leaking run well before the OOM killer
// would take the whole sweep process with it.
func clos3456(fc FC) Spec {
	return Spec{
		Name:        "clos3456-" + schemeSlug(fc),
		Description: "k=24 fat-tree (3456 hosts), enterprise inter-rack workload, " + string(fc),
		Seed:        1,
		Topology:    TopologySpec{Builder: "fat-tree", K: 24},
		Routing:     RoutingSpec{Policy: "spf"},
		Workload:    WorkloadSpec{Generator: &GeneratorSpec{Dist: "enterprise"}},
		Scheme:      SchemeSpec{FC: fc, Preset: "sim"},
		Run:         RunSpec{DurationNs: units.Millisecond, DetectDeadlock: true},
		Limits: &LimitsSpec{
			MaxEvents:    50_000_000,
			MaxWallMs:    300_000,
			StallEvents:  5_000_000,
			MaxHeapBytes: 8 << 30,
		},
	}
}

// twoToOne returns the Figure 5 congestion-control microbenchmark: two
// senders share one receiver link through a single switch. It is the
// smallest scenario with genuine flow-control dynamics, which makes it the
// backend-conformance workhorse: acyclic, declared flows, one scheme knob.
func twoToOne(fc FC) Spec {
	return Spec{
		Name:        "twotoone-" + schemeSlug(fc),
		Description: "fig5 two-to-one congestion: two senders share one receiver link, " + string(fc),
		Topology:    TopologySpec{Builder: "two-to-one"},
		Routing:     RoutingSpec{Policy: "spf"},
		Workload: WorkloadSpec{Flows: []FlowSpec{
			{ID: 1, Src: "H1", Dst: "H3"},
			{ID: 2, Src: "H2", Dst: "H3"},
		}},
		Scheme: SchemeSpec{FC: fc, Preset: "sim"},
		Run:    RunSpec{DurationNs: 20 * units.Millisecond, DetectDeadlock: true},
	}
}

// schemeSlug is the lower-case registry suffix for a scheme.
func schemeSlug(fc FC) string {
	switch fc {
	case PFC:
		return "pfc"
	case CBFC:
		return "cbfc"
	case GFCBuf:
		return "gfcbuf"
	case GFCTime:
		return "gfctime"
	case GFCConceptual:
		return "gfcconceptual"
	case BFC:
		return "bfc"
	default:
		return string(fc)
	}
}

func init() {
	// The paper's figures as data. Durations are the CLI defaults; callers
	// (and -duration) can override before Build.
	Register(Spec{
		Name:        "ring-steady-gfcbuf",
		Description: "fig9 steady state: critically loaded 3-switch ring, testbed params, buffer-based GFC",
		Topology:    TopologySpec{Builder: "ring", N: 3},
		Workload:    WorkloadSpec{Pattern: "ring-clockwise"},
		Scheme:      SchemeSpec{FC: GFCBuf, Preset: "testbed"},
		Run:         RunSpec{DurationNs: 60 * units.Millisecond, DetectDeadlock: true},
	})
	Register(Spec{
		Name:        "ring-formation-pfc",
		Description: "fig9 deadlock formation: 2 hosts/switch ring squeezes transit until PFC wedges",
		Topology:    TopologySpec{Builder: "ring", N: 3, HostsPerSwitch: 2},
		Workload:    WorkloadSpec{Pattern: "ring-clockwise"},
		Scheme:      SchemeSpec{FC: PFC, Preset: "testbed"},
		Run:         RunSpec{DurationNs: 200 * units.Millisecond, DetectDeadlock: true},
	})
	Register(Spec{
		Name:        "ring-faulted-resume-loss-pfc",
		Description: "canonical faulted ring: resume-loss preset wedges PFC shut (seed 1)",
		Seed:        1,
		Topology:    TopologySpec{Builder: "ring", N: 3},
		Workload:    WorkloadSpec{Pattern: "ring-clockwise"},
		Scheme:      SchemeSpec{FC: PFC, Preset: "testbed"},
		Faults:      &FaultsSpec{Preset: "resume-loss"},
		Run:         RunSpec{DurationNs: 60 * units.Millisecond, DetectDeadlock: true},
	})
	Register(Spec{
		Name:        "ring-formation-bfc",
		Description: "fig9 formation ring under BFC: per-queue pauses keep victim flows moving, the ring that wedges PFC stays live",
		Topology:    TopologySpec{Builder: "ring", N: 3, HostsPerSwitch: 2},
		Workload:    WorkloadSpec{Pattern: "ring-clockwise"},
		Scheme:      SchemeSpec{FC: BFC, Preset: "testbed"},
		Run:         RunSpec{DurationNs: 200 * units.Millisecond, DetectDeadlock: true, Detector: "both"},
	})
	Register(Spec{
		Name:        "ring-formation-pfc-dcfit",
		Description: "fig9 deadlock formation under PFC with in-data-plane DCFIT detection alongside the global detector",
		Topology:    TopologySpec{Builder: "ring", N: 3, HostsPerSwitch: 2},
		Workload:    WorkloadSpec{Pattern: "ring-clockwise"},
		Scheme:      SchemeSpec{FC: PFC, Preset: "testbed"},
		Run:         RunSpec{DurationNs: 200 * units.Millisecond, DetectDeadlock: true, Detector: "both"},
	})
	Register(Spec{
		Name:        "ring-faulted-resume-loss-bfc",
		Description: "canonical faulted ring: resume-loss preset wedges a BFC queue shut (seed 1)",
		Seed:        1,
		Topology:    TopologySpec{Builder: "ring", N: 3},
		Workload:    WorkloadSpec{Pattern: "ring-clockwise"},
		Scheme:      SchemeSpec{FC: BFC, Preset: "testbed"},
		Faults:      &FaultsSpec{Preset: "resume-loss"},
		Run:         RunSpec{DurationNs: 60 * units.Millisecond, DetectDeadlock: true},
	})
	Register(Spec{
		Name:        "casestudy-pfc",
		Description: "fig12 case study: k=4 fat-tree with failed links, CBD flows + cross squeeze, PFC deadlocks",
		Topology:    TopologySpec{Builder: "fat-tree", K: 4, FailLinks: caseStudyFailLinks},
		Workload:    WorkloadSpec{Flows: caseStudyFlows},
		Scheme:      SchemeSpec{FC: PFC, Preset: "sim"},
		Run:         RunSpec{DurationNs: 60 * units.Millisecond, DetectDeadlock: true},
	})
	Register(Spec{
		Name:        "casestudy-gfcbuf",
		Description: "fig12 case study under buffer-based GFC: the CBD fills but keeps trickling",
		Topology:    TopologySpec{Builder: "fat-tree", K: 4, FailLinks: caseStudyFailLinks},
		Workload:    WorkloadSpec{Flows: caseStudyFlows},
		Scheme:      SchemeSpec{FC: GFCBuf, Preset: "sim"},
		Run:         RunSpec{DurationNs: 60 * units.Millisecond, DetectDeadlock: true},
	})
	Register(Spec{
		Name:        "evolution-pfc",
		Description: "fig18 throughput evolution: CBD-prone random k=4 scenario where PFC collapses mid-run",
		Seed:        8061, // workload seed; topology seed pinned in fail_random
		Topology:    TopologySpec{Builder: "fat-tree", K: 4, FailRandom: &FailRandomSpec{Prob: 0.05, Seed: 106}},
		Routing:     RoutingSpec{Policy: "spf"},
		Workload:    WorkloadSpec{Generator: &GeneratorSpec{Dist: "enterprise"}},
		Scheme:      SchemeSpec{FC: PFC, Preset: "sim"},
		Run:         RunSpec{DurationNs: 40 * units.Millisecond, DetectDeadlock: true},
	})
	Register(Spec{
		Name:        "overhead-gfcbuf",
		Description: "fig19 feedback overhead: healthy k=4 fat-tree, enterprise workload, buffer-based GFC",
		Seed:        1,
		Topology:    TopologySpec{Builder: "fat-tree", K: 4},
		Routing:     RoutingSpec{Policy: "spf"},
		Workload:    WorkloadSpec{Generator: &GeneratorSpec{Dist: "enterprise"}},
		Scheme:      SchemeSpec{FC: GFCBuf, Preset: "sim"},
		Run:         RunSpec{DurationNs: 5 * units.Millisecond},
	})
	Register(Spec{
		Name:        "incast-gfcbuf",
		Description: "fig20 incast fabric: 8 senders into one receiver over a dumbbell, ECN 40KB, buffer-based GFC",
		Topology:    TopologySpec{Builder: "dumbbell", N: 8},
		Routing:     RoutingSpec{Policy: "spf"},
		Workload: WorkloadSpec{Flows: []FlowSpec{
			{ID: 1, Src: "H1", Dst: "H9"}, {ID: 2, Src: "H2", Dst: "H9"},
			{ID: 3, Src: "H3", Dst: "H9"}, {ID: 4, Src: "H4", Dst: "H9"},
			{ID: 5, Src: "H5", Dst: "H9"}, {ID: 6, Src: "H6", Dst: "H9"},
			{ID: 7, Src: "H7", Dst: "H9"}, {ID: 8, Src: "H8", Dst: "H9"},
		}},
		Scheme: SchemeSpec{FC: GFCBuf, Preset: "sim"},
		Sim:    SimSpec{ECNBytes: 40 * units.KB},
		Run:    RunSpec{DurationNs: 20 * units.Millisecond},
	})
	Register(Spec{
		Name:        "sweep-cell-pfc",
		Description: "one table1 sweep cell: CBD-prone random k=4 failure scenario (seed 35) under PFC",
		Seed:        35,
		Topology:    TopologySpec{Builder: "fat-tree", K: 4, FailRandom: &FailRandomSpec{Prob: 0.05, Seed: 35}},
		Routing:     RoutingSpec{Policy: "spf"},
		Workload:    WorkloadSpec{Generator: &GeneratorSpec{Dist: "enterprise", FlowsPerHost: 4}},
		Scheme:      SchemeSpec{FC: PFC, Preset: "sim"},
		Run:         RunSpec{DurationNs: 25 * units.Millisecond, DetectDeadlock: true, StopOnDeadlock: true},
	})
	// All five schemes of the fig5 microbenchmark: the four fluid-capable
	// ones anchor the backend-conformance suite, CBFC pins its skip reason.
	for _, fc := range AllFCs() {
		Register(twoToOne(fc))
	}
	Register(twoToOne(GFCConceptual))
	for _, fc := range AllFCs() {
		Register(clos128(fc))
	}
	// BFC rides the Clos tier too (the CI race smoke target); it is not in
	// AllFCs because the paper's own comparisons stay four-scheme.
	Register(clos128(BFC))
	// The k=16 tier registers only the paper's headline schemes: PFC (the
	// deadlock-prone baseline) and both deployable GFC designs. CBFC and
	// conceptual GFC add nothing at this scale that clos128 doesn't show,
	// and each registered variant is a multi-minute full run.
	for _, fc := range []FC{PFC, GFCBuf, GFCTime} {
		Register(clos1024(fc))
	}
	// The k=24 frontier keeps the same three-scheme policy.
	for _, fc := range []FC{PFC, GFCBuf, GFCTime} {
		Register(clos3456(fc))
	}
}
