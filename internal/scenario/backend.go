package scenario

import (
	"context"
	"fmt"

	"github.com/gfcsim/gfc/internal/analytic"
	"github.com/gfcsim/gfc/internal/netsim"
)

// Runner is a built, ready-to-run scenario under any backend. *Sim (the
// packet path) satisfies it directly; the fluid backend returns its own
// implementation. RunBounded composes the spec's Limits with the caller's
// extra budget and honours ctx cancellation.
type Runner interface {
	RunBounded(ctx context.Context, extra netsim.Budget) (*Result, error)
}

// Predictor is the optional Runner facet exposing the compiled spec's
// analytic prediction before (or after) the run. Both backends implement
// it; auto-mode sweep triage uses it to decide escalation without running
// anything.
type Predictor interface {
	Predict() (*analytic.Prediction, error)
}

// Backend compiles Specs for one simulation engine. Build compiles the Spec
// once; the returned Runner is single-use, like *Sim.
type Backend interface {
	Name() string
	// Supports reports nil when the backend can faithfully simulate spec,
	// or an error naming the unsupported feature (the conformance suite
	// asserts these reasons).
	Supports(spec *Spec) error
	Build(spec Spec, ov *Overrides) (Runner, error)
}

// PacketBackend is the netsim path behind the Backend interface: a pure
// wrapper over Build, so selecting it is byte-identical to calling Build
// directly (the golden trace hashes pin this).
type PacketBackend struct{}

// Name implements Backend.
func (PacketBackend) Name() string { return "packet" }

// Supports implements Backend: netsim simulates every valid Spec.
func (PacketBackend) Supports(*Spec) error { return nil }

// Build implements Backend.
func (PacketBackend) Build(spec Spec, ov *Overrides) (Runner, error) {
	return Build(spec, ov)
}

// autoBackend resolves to fluid when the spec is fluid-representable and to
// packet otherwise — the per-spec flavour of the sweeps' adaptive-fidelity
// triage (which additionally escalates on analytic-boundary proximity).
type autoBackend struct{}

func (autoBackend) Name() string { return "auto" }

func (autoBackend) Supports(*Spec) error { return nil }

func (autoBackend) Build(spec Spec, ov *Overrides) (Runner, error) {
	var fl FluidBackend
	if fl.Supports(&spec) == nil {
		return fl.Build(spec, ov)
	}
	return Build(spec, ov)
}

// BackendFor resolves a Spec.Sim.Backend value ("" means packet).
func BackendFor(name string) (Backend, error) {
	switch name {
	case "", "packet":
		return PacketBackend{}, nil
	case "fluid":
		return FluidBackend{}, nil
	case "auto":
		return autoBackend{}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown backend %q (want packet, fluid or auto)", name)
	}
}

// BuildBackend compiles spec with the backend its Sim.Backend field selects.
func BuildBackend(spec Spec, ov *Overrides) (Runner, error) {
	be, err := BackendFor(spec.Sim.Backend)
	if err != nil {
		return nil, err
	}
	return be.Build(spec, ov)
}
