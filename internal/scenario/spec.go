// Package scenario is the declarative experiment layer: one JSON-serialisable
// Spec declares a complete simulation — topology builder and parameters,
// routing policy, workload (pinned flows or the paper's inter-rack
// generator), flow-control scheme with FCParams, an optional fault scenario
// and the run/stop conditions — and one Build call compiles it into a
// ready-to-run netsim.Network.
//
// Every figure/table driver in internal/experiments is a thin Spec literal
// over this layer, and the same Specs are exposed by name through a registry
// (Register/Get/Names) consumed by cmd/gfcsim and examples/sweep; user
// -scenario files parse with the same strict decoder as fault specs
// (unknown fields rejected).
//
// Build is deterministic: for one (Spec, seed) pair the constructed network
// replays bit-identically. The only random sources are the topology's
// FailRandom generator, the workload generator and the fault injector — each
// privately seeded from the Spec, never from global state.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/units"
)

// Spec is one complete scenario description. The zero value is not runnable;
// at minimum Topology, Scheme, a workload source and Run.Duration are needed
// (Validate spells out the rules).
type Spec struct {
	// Name identifies the scenario (registry key, report label).
	Name string `json:"name"`
	// Description is a one-line summary shown by listings.
	Description string `json:"description,omitempty"`
	// Seed is the scenario's base random seed; per-subsystem seeds
	// (workload, faults) default to it when unset.
	Seed int64 `json:"seed,omitempty"`

	Topology TopologySpec `json:"topology"`
	Routing  RoutingSpec  `json:"routing,omitempty"`
	Workload WorkloadSpec `json:"workload"`
	Scheme   SchemeSpec   `json:"scheme"`
	Sim      SimSpec      `json:"sim,omitempty"`
	Faults   *FaultsSpec  `json:"faults,omitempty"`
	Run      RunSpec      `json:"run"`
	// Limits declares run-governor bounds for the scenario; nil means
	// unbounded. They apply only to governed runs (Sim.RunBounded) and are
	// overlaid by any caller-side budget flags.
	Limits *LimitsSpec `json:"limits,omitempty"`
}

// TopologySpec selects a topology builder and its parameters.
type TopologySpec struct {
	// Builder is one of "ring", "fat-tree", "dumbbell", "linear",
	// "two-to-one".
	Builder string `json:"builder"`
	// K is the fat-tree arity (even, >= 2).
	K int `json:"k,omitempty"`
	// N is the switch/sender count for ring (>= 3), dumbbell and linear
	// (>= 1).
	N int `json:"n,omitempty"`
	// HostsPerSwitch applies to rings; default 1.
	HostsPerSwitch int `json:"hosts_per_switch,omitempty"`
	// CapacityBps / DelayNs override the 10 Gb/s / 1 µs link defaults.
	CapacityBps units.Rate `json:"capacity_bps,omitempty"`
	DelayNs     units.Time `json:"delay_ns,omitempty"`
	// FailLinks names links ("A-B") to fail after building, in order.
	FailLinks []string `json:"fail_links,omitempty"`
	// FailRandom fails each switch-to-switch link with probability Prob
	// using a private source seeded with Seed (the Table 1 scenario
	// generator).
	FailRandom *FailRandomSpec `json:"fail_random,omitempty"`
}

// FailRandomSpec parameterises random link failures.
type FailRandomSpec struct {
	Prob float64 `json:"prob"`
	Seed int64   `json:"seed"`
}

// RoutingSpec selects the routing policy.
type RoutingSpec struct {
	// Policy is "auto" (default: build an SPF table only when the
	// workload needs one), "spf" (all hosts), "spf-toward" (only the
	// named destinations) or "none".
	Policy string `json:"policy,omitempty"`
	// Toward lists destination host names for "spf-toward".
	Toward []string `json:"toward,omitempty"`
}

// WorkloadSpec declares the traffic. Exactly one source must be present:
// a Pattern, a Flows list, or a Generator (Flows may accompany a Pattern in
// neither case — they are mutually exclusive to keep flow IDs unambiguous).
type WorkloadSpec struct {
	// Pattern names a built-in flow pattern; "ring-clockwise" is the
	// Figure 1 pattern (every host sends two switches clockwise).
	Pattern string `json:"pattern,omitempty"`
	// Flows pins individual flows (CBR/unbounded or sized).
	Flows []FlowSpec `json:"flows,omitempty"`
	// Generator drives every host with the paper's random inter-rack
	// workload (§6.2.3).
	Generator *GeneratorSpec `json:"generator,omitempty"`
}

// FlowSpec is one declared flow. Give either an explicit Path of node names
// (source first; the destination host last) or a Src/Dst pair routed over
// the scenario's table with the flow's ID as ECMP key.
type FlowSpec struct {
	// ID defaults to the flow's 1-based position in the list.
	ID   int      `json:"id,omitempty"`
	Path []string `json:"path,omitempty"`
	Src  string   `json:"src,omitempty"`
	Dst  string   `json:"dst,omitempty"`
	// SizeBytes is the flow size; 0 means unbounded (runs forever).
	SizeBytes units.Size `json:"size_bytes,omitempty"`
	Priority  int        `json:"priority,omitempty"`
	// StartNs delays the flow's first packet.
	StartNs units.Time `json:"start_ns,omitempty"`
}

// GeneratorSpec parameterises the random inter-rack workload generator.
type GeneratorSpec struct {
	// Dist is "enterprise" (default), "datamining" or "uniform".
	Dist string `json:"dist,omitempty"`
	// UniformBytes is the fixed size for Dist "uniform".
	UniformBytes units.Size `json:"uniform_bytes,omitempty"`
	// FlowsPerHost is the per-host concurrency; <= 0 means 1.
	FlowsPerHost int `json:"flows_per_host,omitempty"`
	// ThinkNs is the idle gap between a host's flow finishing and its
	// successor launching; 0 chains back-to-back (the paper's workload).
	// A positive value turns the saturating workload into flow churn.
	ThinkNs units.Time `json:"think_ns,omitempty"`
	// Seed seeds the generator's private source; 0 uses Spec.Seed.
	Seed     int64 `json:"seed,omitempty"`
	Priority int   `json:"priority,omitempty"`
}

// SchemeSpec selects the flow-control scheme and its parameters.
type SchemeSpec struct {
	FC FC `json:"fc"`
	// Preset is "" (Params used verbatim), "testbed" (§6.1) or "sim"
	// (§6.2.2); non-zero Params fields overlay the preset.
	Preset string   `json:"preset,omitempty"`
	Params FCParams `json:"params,omitempty"`
}

// SimSpec overrides netsim.Config knobs; zero fields keep the preset's (or
// netsim's) defaults.
type SimSpec struct {
	BufferBytes    units.Size `json:"buffer_bytes,omitempty"`
	MTUBytes       units.Size `json:"mtu_bytes,omitempty"`
	Priorities     int        `json:"priorities,omitempty"`
	ProcDelayNs    units.Time `json:"proc_delay_ns,omitempty"`
	TauNs          units.Time `json:"tau_ns,omitempty"`
	ECNBytes       units.Size `json:"ecn_bytes,omitempty"`
	HostQueueDepth int        `json:"host_queue_depth,omitempty"`
	// Scheduling is "" or one of "input-queued", "fifo", "voq",
	// "blocking".
	Scheduling       string     `json:"scheduling,omitempty"`
	TxRing           int        `json:"tx_ring,omitempty"`
	FeedbackJitterNs units.Time `json:"feedback_jitter_ns,omitempty"`
	JitterSeed       int64      `json:"jitter_seed,omitempty"`
	// Backend selects the simulation backend: "" or "packet" replays every
	// packet through netsim; "fluid" integrates the network-of-queues rate
	// model (orders of magnitude faster, subject to Supports); "auto" uses
	// fluid when the spec is fluid-representable and falls back to packet
	// otherwise.
	Backend string `json:"backend,omitempty"`
	// FluidStepNs overrides the fluid backend's integration step (default
	// 500 ns). Coarser steps trade occupancy resolution — roughly one
	// step's worth of line-rate bytes — for proportionally less work;
	// sweep triage runs at 2 µs. Ignored by the packet backend.
	FluidStepNs units.Time `json:"fluid_step_ns,omitempty"`
}

// FaultsSpec references a fault scenario: a built-in preset by name or an
// inline faults.Spec, injected with a private source seeded by Seed.
type FaultsSpec struct {
	Preset string       `json:"preset,omitempty"`
	Inline *faults.Spec `json:"inline,omitempty"`
	// Seed seeds the injector; 0 uses Spec.Seed.
	Seed int64 `json:"seed,omitempty"`
}

// LimitsSpec declares the scenario's run-governor budget: how far a run may
// go before it is declared runaway. A fuzzed or mis-parameterised spec then
// terminates with a structured verdict and a flight-recorder snapshot
// instead of wedging its sweep.
type LimitsSpec struct {
	// MaxEvents caps fired events per governed run; 0 is unlimited.
	MaxEvents uint64 `json:"max_events,omitempty"`
	// MaxWallMs caps host wall-clock milliseconds; 0 is unlimited.
	MaxWallMs int64 `json:"max_wall_ms,omitempty"`
	// StallEvents arms netsim's livelock watchdog; 0 disables it.
	StallEvents uint64 `json:"stall_events,omitempty"`
	// CheckEvery is the governor polling interval in events; 0 uses the
	// netsim default.
	CheckEvery uint64 `json:"check_every,omitempty"`
	// MaxHeapBytes arms netsim's OOM guard: the run stops with a
	// structured verdict if the Go heap exceeds this size, instead of
	// letting one oversized scenario OOM-kill the whole sweep process.
	// 0 disables the guard.
	MaxHeapBytes int64 `json:"max_heap_bytes,omitempty"`
}

// Budget converts the declared limits to a netsim budget.
func (l *LimitsSpec) Budget() netsim.Budget {
	if l == nil {
		return netsim.Budget{}
	}
	return netsim.Budget{
		MaxEvents:   l.MaxEvents,
		MaxWall:     time.Duration(l.MaxWallMs) * time.Millisecond,
		StallEvents: l.StallEvents,
		CheckEvery:  l.CheckEvery,
		MaxHeap:     uint64(max(l.MaxHeapBytes, 0)),
	}
}

func (l *LimitsSpec) validate() error {
	if l.MaxWallMs < 0 {
		return fmt.Errorf("scenario: limits: negative max_wall_ms %d", l.MaxWallMs)
	}
	if l.MaxHeapBytes < 0 {
		return fmt.Errorf("scenario: limits: negative max_heap_bytes %d", l.MaxHeapBytes)
	}
	return nil
}

// RunSpec declares duration and stop conditions.
type RunSpec struct {
	DurationNs units.Time `json:"duration_ns"`
	// DetectDeadlock installs the runtime deadlock detector.
	DetectDeadlock bool `json:"detect_deadlock,omitempty"`
	// Detector selects which detector DetectDeadlock/StopOnDeadlock
	// install: "" or "global" is the buffer-snapshot detector, "dcfit" the
	// in-data-plane initial-trigger detector, "both" installs both (the
	// global verdict drives stop conditions; DCFIT reports alongside).
	Detector string `json:"detector,omitempty"`
	// StopOnDeadlock ends the run at first detection (implies
	// DetectDeadlock).
	StopOnDeadlock bool `json:"stop_on_deadlock,omitempty"`
	// Quiesce ends the run when the event queue drains, if that happens
	// before DurationNs. Recurring events (the deadlock detector's poll,
	// unbounded flows) keep the queue non-empty, so Quiesce only
	// terminates early for finite, detector-free workloads.
	Quiesce bool `json:"quiesce,omitempty"`
	// Analytic attaches the network-wide analytic checker: Build ensures
	// a metrics registry is bound (attaching one if no override supplies
	// it) and Run/RunBounded fill Result.Analytic with the prediction and
	// the end-of-run verdict (internal/analytic, DESIGN.md §3.8). The
	// check is post-run only — it never perturbs the event sequence.
	Analytic bool `json:"analytic,omitempty"`
}

// Parse decodes a Spec from JSON, rejecting unknown fields, and validates it.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads a Spec from a JSON file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = path
	}
	return s, nil
}

// Marshal encodes the spec as indented JSON (the worked-example format of
// EXPERIMENTS.md).
func (s *Spec) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding spec: %w", err)
	}
	return append(out, '\n'), nil
}

// Validate checks the whole spec. Build re-checks the sections it actually
// uses, so override-driven builds (prebuilt topology/table) skip the parts
// they replace.
func (s *Spec) Validate() error {
	if err := s.Topology.validate(); err != nil {
		return err
	}
	if err := s.Routing.validate(); err != nil {
		return err
	}
	if err := s.Workload.validate(); err != nil {
		return err
	}
	if err := s.Scheme.validate(); err != nil {
		return err
	}
	if err := s.Sim.validate(); err != nil {
		return err
	}
	if s.Faults != nil {
		if err := s.Faults.validate(); err != nil {
			return err
		}
	}
	if s.Limits != nil {
		if err := s.Limits.validate(); err != nil {
			return err
		}
	}
	return s.Run.validate()
}

func (t *TopologySpec) validate() error {
	switch t.Builder {
	case "ring":
		if n := t.n(); n < 3 {
			return fmt.Errorf("scenario: topology: ring needs n >= 3, got %d", n)
		}
		if t.HostsPerSwitch < 0 {
			return fmt.Errorf("scenario: topology: negative hosts_per_switch %d", t.HostsPerSwitch)
		}
	case "fat-tree":
		if t.K < 2 || t.K%2 != 0 {
			return fmt.Errorf("scenario: topology: fat-tree arity must be even and >= 2, got %d", t.K)
		}
	case "dumbbell", "linear":
		if t.N < 1 {
			return fmt.Errorf("scenario: topology: %s needs n >= 1, got %d", t.Builder, t.N)
		}
	case "two-to-one":
		// No parameters.
	case "":
		return fmt.Errorf("scenario: topology: builder is required")
	default:
		return fmt.Errorf("scenario: topology: unknown builder %q", t.Builder)
	}
	if t.CapacityBps < 0 || t.DelayNs < 0 {
		return fmt.Errorf("scenario: topology: negative capacity or delay")
	}
	if fr := t.FailRandom; fr != nil {
		if fr.Prob < 0 || fr.Prob > 1 {
			return fmt.Errorf("scenario: topology: fail_random prob %v outside [0,1]", fr.Prob)
		}
	}
	return nil
}

// n is the ring switch count with its default applied.
func (t *TopologySpec) n() int {
	if t.Builder == "ring" && t.N == 0 {
		return 3
	}
	return t.N
}

// HostCount reports how many hosts the topology will have, without building
// it — what catalogue listings show so a user can judge a scenario's scale
// before running it. Unknown builders report 0 (validation rejects them
// anyway).
func (t *TopologySpec) HostCount() int {
	switch t.Builder {
	case "ring":
		h := t.HostsPerSwitch
		if h == 0 {
			h = 1
		}
		return t.n() * h
	case "fat-tree":
		return t.K * t.K * t.K / 4
	case "dumbbell":
		return t.N + 1 // n senders plus the one receiver
	case "linear":
		return t.N // one host per switch
	case "two-to-one":
		return 3
	default:
		return 0
	}
}

func (r *RoutingSpec) validate() error {
	switch r.Policy {
	case "", "auto", "spf", "none":
	case "spf-toward":
		if len(r.Toward) == 0 {
			return fmt.Errorf("scenario: routing: spf-toward needs a toward list")
		}
	default:
		return fmt.Errorf("scenario: routing: unknown policy %q", r.Policy)
	}
	return nil
}

func (w *WorkloadSpec) validate() error {
	sources := 0
	if w.Pattern != "" {
		sources++
	}
	if len(w.Flows) > 0 {
		sources++
	}
	if w.Generator != nil {
		sources++
	}
	if sources == 0 {
		return fmt.Errorf("scenario: workload: needs a pattern, flows or a generator")
	}
	if sources > 1 {
		return fmt.Errorf("scenario: workload: pattern, flows and generator are mutually exclusive")
	}
	if w.Pattern != "" && w.Pattern != "ring-clockwise" {
		return fmt.Errorf("scenario: workload: unknown pattern %q", w.Pattern)
	}
	for i, f := range w.Flows {
		hasPath := len(f.Path) > 0
		hasPair := f.Src != "" || f.Dst != ""
		if hasPath && hasPair {
			return fmt.Errorf("scenario: workload: flows[%d]: give a path or a src/dst pair, not both", i)
		}
		if hasPath && len(f.Path) < 2 {
			return fmt.Errorf("scenario: workload: flows[%d]: path needs at least two nodes", i)
		}
		if !hasPath && (f.Src == "" || f.Dst == "") {
			return fmt.Errorf("scenario: workload: flows[%d]: needs a path or both src and dst", i)
		}
		if f.SizeBytes < 0 || f.StartNs < 0 {
			return fmt.Errorf("scenario: workload: flows[%d]: negative size or start", i)
		}
		if f.ID < 0 {
			return fmt.Errorf("scenario: workload: flows[%d]: negative id", i)
		}
	}
	if g := w.Generator; g != nil {
		switch g.Dist {
		case "", "enterprise", "datamining":
		case "uniform":
			if g.UniformBytes <= 0 {
				return fmt.Errorf("scenario: workload: generator dist uniform needs uniform_bytes > 0, got %d", g.UniformBytes)
			}
		default:
			return fmt.Errorf("scenario: workload: unknown generator dist %q", g.Dist)
		}
		if g.ThinkNs < 0 {
			return fmt.Errorf("scenario: workload: negative generator think_ns %d", g.ThinkNs)
		}
	}
	return nil
}

func (sc *SchemeSpec) validate() error {
	if sc.FC == "" {
		return fmt.Errorf("scenario: scheme: fc is required")
	}
	if !sc.FC.Known() {
		return fmt.Errorf("scenario: scheme: unknown fc %q", sc.FC)
	}
	switch sc.Preset {
	case "", "testbed", "sim":
	default:
		return fmt.Errorf("scenario: scheme: unknown preset %q (want testbed or sim)", sc.Preset)
	}
	return nil
}

func (m *SimSpec) validate() error {
	if _, err := parseScheduling(m.Scheduling); err != nil {
		return err
	}
	if m.BufferBytes < 0 || m.MTUBytes < 0 || m.ECNBytes < 0 ||
		m.ProcDelayNs < 0 || m.TauNs < 0 || m.FeedbackJitterNs < 0 ||
		m.FluidStepNs < 0 {
		return fmt.Errorf("scenario: sim: negative size or time field")
	}
	switch m.Backend {
	case "", "packet", "fluid", "auto":
	default:
		return fmt.Errorf("scenario: sim: unknown backend %q (want packet, fluid or auto)", m.Backend)
	}
	return nil
}

func (f *FaultsSpec) validate() error {
	if (f.Preset == "") == (f.Inline == nil) {
		return fmt.Errorf("scenario: faults: give exactly one of preset or inline")
	}
	if f.Inline != nil {
		return f.Inline.Validate()
	}
	if _, err := faults.Preset(f.Preset); err != nil {
		return err
	}
	return nil
}

func (r *RunSpec) validate() error {
	if r.DurationNs <= 0 {
		return fmt.Errorf("scenario: run: duration_ns must be positive, got %d", r.DurationNs)
	}
	switch r.Detector {
	case "", "global", "dcfit", "both":
	default:
		return fmt.Errorf("scenario: run: unknown detector %q (want global, dcfit or both)", r.Detector)
	}
	return nil
}

func parseScheduling(s string) (netsim.Scheduling, error) {
	switch s {
	case "", "input-queued":
		return netsim.SchedInputQueued, nil
	case "fifo":
		return netsim.SchedFIFO, nil
	case "voq":
		return netsim.SchedVOQ, nil
	case "blocking":
		return netsim.SchedBlocking, nil
	default:
		return 0, fmt.Errorf("scenario: sim: unknown scheduling %q", s)
	}
}
