package scenario

import (
	"testing"

	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/units"
)

// TestClos128Smoke is the CI smoke test for the headline Clos-scale
// scenarios: the k=8 fat-tree (128 hosts, 80 switches) under the paper's
// inter-rack enterprise workload, once per scheme. Each run must complete
// with traffic delivered, and the GFC variants must finish with zero
// invariant violations and no deadlock — the paper's central claim at a
// scale the bespoke drivers never reached. BFC rides along: its per-flow
// queue assignment and per-queue pause bookkeeping get their concurrency
// shakedown here under -race, and on a healthy fabric it must be as
// lossless and deadlock-free as PFC.
func TestClos128Smoke(t *testing.T) {
	for _, fc := range append(AllFCs(), BFC) {
		fc := fc
		t.Run(string(fc), func(t *testing.T) {
			spec, ok := Get("clos128-" + schemeSlug(fc))
			if !ok {
				t.Fatalf("clos128 scenario for %s not registered", fc)
			}
			if testing.Short() {
				// Race-detector CI budgets: a quarter of the
				// catalogue duration still covers thousands of
				// flow completions.
				spec.Run.DurationNs = 500 * units.Microsecond
			}
			reg := metrics.New(metrics.Options{})
			sim, err := Build(spec, &Overrides{Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			if got := len(sim.Topo.Hosts()); got != 128 {
				t.Fatalf("clos128 has %d hosts, want 128", got)
			}
			res := sim.Run()
			if res.End < spec.Run.DurationNs {
				t.Fatalf("run ended at %v, want %v", res.End, spec.Run.DurationNs)
			}
			if res.Delivered == 0 {
				t.Fatal("no traffic delivered")
			}
			t.Logf("%s: delivered %v, drops %d, violations %d, deadlocked %v",
				fc, res.Delivered, res.Drops, res.Violations, res.Deadlocked)
			if fc == BFC {
				if res.Drops != 0 || res.Violations != 0 {
					t.Errorf("BFC: drops=%d violations=%d on the healthy Clos; want lossless",
						res.Drops, res.Violations)
				}
				if res.Deadlocked {
					t.Errorf("BFC deadlocked on a healthy fat-tree")
				}
			}
			if fc.IsGFC() {
				if res.Violations != 0 {
					t.Errorf("%s: %d invariant violations on the healthy Clos; want 0", fc, res.Violations)
					for _, v := range reg.Violations() {
						t.Logf("violation: %+v", v)
					}
				}
				if res.Deadlocked {
					t.Errorf("%s deadlocked on a healthy fat-tree", fc)
				}
			}
		})
	}
}
