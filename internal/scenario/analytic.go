package scenario

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/analytic"
	"github.com/gfcsim/gfc/internal/cbd"
	"github.com/gfcsim/gfc/internal/workload"
)

// AnalyticCheck is the network-wide analytic verdict attached to a Result
// when Run.Analytic is set.
type AnalyticCheck struct {
	// Prediction is the per-topology analytic prediction the run was
	// checked against (nil when the scenario could not be analysed).
	Prediction *analytic.Prediction
	// Err is nil when every asserted bound held. Otherwise it is either
	// the *metrics.InvariantError listing the violated network-wide
	// bounds, or the analysis error when the prediction itself failed.
	Err error
}

// Predict computes the analytic prediction for this built scenario
// (internal/analytic, DESIGN.md §3.8). The cyclic-buffer-dependency verdict
// comes from Overrides.CBDCyclic when supplied (sweeps precompute it per
// topology); otherwise it is derived once from the built workload — declared
// flow paths, plus the all-inter-rack-pairs union when a generator is
// attached — and cached on the Sim.
func (s *Sim) Predict() (*analytic.Prediction, error) {
	known, cyclic := s.cbdVerdict()
	return analytic.Predict(analytic.Input{
		Topo:   s.Topo,
		Scheme: analytic.Scheme(s.Spec.Scheme.FC),
		Cfg:    s.cfg,
		Params: analytic.Params{
			XOFF:   s.fp.XOFF,
			XON:    s.fp.XON,
			B1:     s.fp.B1,
			Bm:     s.fp.Bm,
			B0:     s.fp.B0,
			Period: s.fp.Period,
		},
		CBDKnown:  known,
		CBDCyclic: cyclic,
		Faulted:   s.Injector != nil,
		Duration:  s.Spec.Run.DurationNs,
	})
}

// cbdVerdict resolves (and caches) the dependency-graph verdict.
func (s *Sim) cbdVerdict() (known, cyclic bool) {
	if s.cbdCyclic != nil {
		return true, *s.cbdCyclic
	}
	if len(s.Flows) == 0 && s.Gen == nil {
		return false, false // nothing to derive from: treated as cyclic
	}
	if s.Gen != nil && s.Table == nil {
		return false, false
	}
	g := cbd.NewGraph(s.Topo)
	for _, f := range s.Flows {
		g.AddPath(f.Path)
	}
	if s.Gen != nil {
		// A generator can start a flow between any inter-rack host pair,
		// so fold in the union of all such paths — the conservative
		// superset of what the run may route.
		union := cbd.FromAllPairs(s.Topo, s.Table, workload.EdgeRacks(s.Topo))
		c := g.HasCycle() || union.HasCycle()
		s.cbdCyclic = &c
		return true, c
	}
	c := g.HasCycle()
	s.cbdCyclic = &c
	return true, c
}

// VerifyAnalytic checks res against this scenario's analytic prediction,
// returning the prediction and the verdict: nil when every network-wide
// bound held, a *metrics.InvariantError otherwise. A governed run that was
// stopped early (res.Stopped != nil) drops the progress floor — the horizon
// the floor reasons about was never reached.
func (s *Sim) VerifyAnalytic(res *Result) (*analytic.Prediction, error) {
	pred, err := s.Predict()
	if err != nil {
		return nil, err
	}
	if s.Metrics == nil {
		return pred, fmt.Errorf("scenario: analytic check needs a metrics registry (set run.analytic or attach one via Overrides)")
	}
	b := pred.Bounds()
	if res.Stopped != nil {
		b.MinDelivered = 0
	}
	if ierr := s.Metrics.CheckNetwork(b, res.End, res.Delivered, res.Deadlocked); ierr != nil {
		return pred, ierr
	}
	return pred, nil
}

// analyticCheck wraps VerifyAnalytic into the Result attachment.
func (s *Sim) analyticCheck(res *Result) *AnalyticCheck {
	pred, err := s.VerifyAnalytic(res)
	return &AnalyticCheck{Prediction: pred, Err: err}
}

// CheckAnalytic runs the network-wide analytic check against the network's
// current state — the entry point for drivers that step the engine
// themselves instead of calling Run/RunBounded. It returns nil when every
// bound held.
func (s *Sim) CheckAnalytic() error {
	return s.analyticCheck(s.summarise()).Err
}
