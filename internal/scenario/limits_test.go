package scenario

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/units"
)

// governedSpec is the Figure 1 ring under PFC — unbounded clockwise flows,
// so a governed run always has events left to burn through.
func governedSpec() Spec {
	return Spec{
		Name:     "limits-test-ring",
		Topology: TopologySpec{Builder: "ring", N: 3},
		Workload: WorkloadSpec{Pattern: "ring-clockwise"},
		Scheme:   SchemeSpec{FC: PFC, Preset: "sim"},
		Run:      RunSpec{DurationNs: 5 * units.Millisecond},
	}
}

func TestLimitsParseAndRoundTrip(t *testing.T) {
	spec, err := Parse([]byte(`{
		"name": "bounded",
		"topology": {"builder": "ring"},
		"workload": {"pattern": "ring-clockwise"},
		"scheme": {"fc": "PFC"},
		"run": {"duration_ns": 1000000},
		"limits": {"max_events": 50000, "max_wall_ms": 2000, "stall_events": 10000}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	l := spec.Limits
	if l == nil || l.MaxEvents != 50000 || l.MaxWallMs != 2000 || l.StallEvents != 10000 {
		t.Fatalf("limits = %+v", l)
	}
	b := l.Budget()
	if b.MaxEvents != 50000 || b.MaxWall.Milliseconds() != 2000 || b.StallEvents != 10000 {
		t.Fatalf("budget = %+v", b)
	}
	data, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if *back.Limits != *spec.Limits {
		t.Fatalf("limits round trip: %+v != %+v", back.Limits, spec.Limits)
	}
}

func TestLimitsValidate(t *testing.T) {
	_, err := Parse([]byte(`{
		"name": "bad",
		"topology": {"builder": "ring"},
		"workload": {"pattern": "ring-clockwise"},
		"scheme": {"fc": "PFC"},
		"run": {"duration_ns": 1},
		"limits": {"max_wall_ms": -5}
	}`))
	if err == nil || !strings.Contains(err.Error(), "max_wall_ms") {
		t.Fatalf("negative max_wall_ms accepted: %v", err)
	}
	_, err = Parse([]byte(`{
		"name": "bad",
		"topology": {"builder": "ring"},
		"workload": {"pattern": "ring-clockwise"},
		"scheme": {"fc": "PFC"},
		"run": {"duration_ns": 1},
		"limits": {"max_cycles": 7}
	}`))
	if err == nil {
		t.Fatal("unknown limits field accepted")
	}
}

func TestRunBoundedHonoursSpecLimits(t *testing.T) {
	spec := governedSpec()
	spec.Limits = &LimitsSpec{MaxEvents: 5000, CheckEvery: 64}
	sim, err := Build(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunBounded(context.Background(), netsim.Budget{})
	var re *netsim.RunError
	if !errors.As(err, &re) || re.Reason != netsim.StopEventBudget {
		t.Fatalf("err = %v, want event-budget RunError", err)
	}
	if res == nil || res.Stopped != re {
		t.Fatal("partial Result does not carry the governor verdict")
	}
	if res.End == 0 {
		t.Fatal("partial Result has no progress recorded")
	}
	if re.Snapshot == nil || re.Snapshot.Packets.Total() == 0 {
		t.Fatal("flight recorder empty for a loaded ring")
	}
}

func TestRunBoundedOverlayPrecedence(t *testing.T) {
	// The caller's budget must override the spec's generous Limits.
	spec := governedSpec()
	spec.Limits = &LimitsSpec{MaxEvents: 1 << 40}
	sim, err := Build(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.RunBounded(context.Background(), netsim.Budget{MaxEvents: 2000, CheckEvery: 64})
	var re *netsim.RunError
	if !errors.As(err, &re) || re.Reason != netsim.StopEventBudget {
		t.Fatalf("err = %v, want event-budget trip from the overlay", err)
	}
	if re.Snapshot.Events >= 1<<40 {
		t.Fatal("spec limit won over the caller's budget")
	}
}

func TestRunBoundedWithoutLimitsMatchesRun(t *testing.T) {
	a, err := Build(governedSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(governedSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ra := a.Run()
	rb, err := b.RunBounded(context.Background(), netsim.Budget{})
	if err != nil {
		t.Fatalf("unbounded RunBounded: %v", err)
	}
	if rb.Stopped != nil {
		t.Fatal("completed run marked as stopped")
	}
	if ra.End != rb.End || ra.Delivered != rb.Delivered || ra.Drops != rb.Drops ||
		ra.Deadlocked != rb.Deadlocked {
		t.Fatalf("governed run diverged: %+v vs %+v", ra, rb)
	}
}
