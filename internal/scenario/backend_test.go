package scenario

import (
	"context"
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

func TestBackendFor(t *testing.T) {
	for name, want := range map[string]string{
		"": "packet", "packet": "packet", "fluid": "fluid", "auto": "auto",
	} {
		be, err := BackendFor(name)
		if err != nil {
			t.Fatalf("BackendFor(%q): %v", name, err)
		}
		if be.Name() != want {
			t.Errorf("BackendFor(%q).Name() = %q, want %q", name, be.Name(), want)
		}
	}
	if _, err := BackendFor("quantum"); err == nil || !strings.Contains(err.Error(), "quantum") {
		t.Errorf("BackendFor(quantum) = %v, want error naming it", err)
	}
}

func TestSpecBackendValidation(t *testing.T) {
	spec := twoToOne(GFCBuf)
	for _, ok := range []string{"", "packet", "fluid", "auto"} {
		spec.Sim.Backend = ok
		if err := spec.Validate(); err != nil {
			t.Errorf("backend %q: %v", ok, err)
		}
	}
	spec.Sim.Backend = "analog"
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "analog") {
		t.Errorf("backend analog: err = %v, want unknown-backend error", err)
	}
}

// TestFluidSupportsReasons pins Supports' rejection reasons feature by
// feature — the conformance suite and sweep triage both key off them.
func TestFluidSupportsReasons(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string // "" means supported
	}{
		{"baseline", func(*Spec) {}, ""},
		{"faults", func(s *Spec) { s.Faults = &FaultsSpec{Preset: "resume-loss"} }, "fault injection"},
		{"generator", func(s *Spec) {
			s.Workload = WorkloadSpec{Generator: &GeneratorSpec{Dist: "enterprise"}}
		}, "generator"},
		{"cbfc", func(s *Spec) { s.Scheme.FC = CBFC }, "credit"},
		{"bfc", func(s *Spec) { s.Scheme.FC = BFC }, "per-flow queues"},
		{"priorities", func(s *Spec) { s.Sim.Priorities = 2 }, "priority classes"},
		{"jitter", func(s *Spec) { s.Sim.FeedbackJitterNs = units.Microsecond }, "jitter"},
		{"scheduling", func(s *Spec) { s.Sim.Scheduling = "blocking" }, "packet-granular"},
		{"dcfit", func(s *Spec) { s.Run.Detector = "dcfit" }, "DCFIT"},
		{"both-detectors", func(s *Spec) { s.Run.Detector = "both" }, "DCFIT"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := twoToOne(GFCBuf)
			tc.mutate(&spec)
			err := FluidBackend{}.Supports(&spec)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Supports: %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Supports = %v, want reason containing %q", err, tc.want)
			}
		})
	}
}

// TestAutoBackendDispatch checks the per-spec auto triage: fluid-capable
// specs compile onto the fluid solver, everything else onto netsim.
func TestAutoBackendDispatch(t *testing.T) {
	spec := twoToOne(GFCBuf)
	spec.Sim.Backend = "auto"
	r, err := BuildBackend(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunBounded(context.Background(), netsim.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "fluid" {
		t.Errorf("auto on a fluid-capable spec ran %q, want fluid", res.Backend)
	}

	spec = twoToOne(CBFC)
	spec.Sim.Backend = "auto"
	r, err = BuildBackend(spec, &Overrides{Metrics: metrics.New(metrics.Options{})})
	if err != nil {
		t.Fatal(err)
	}
	res, err = r.RunBounded(context.Background(), netsim.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "packet" {
		t.Errorf("auto on a CBFC spec ran %q, want packet", res.Backend)
	}
}

// TestFluidBuildRejections pins Build's own gates (beyond Supports).
func TestFluidBuildRejections(t *testing.T) {
	spec := twoToOne(GFCBuf)
	trace := func(*topology.Topology) *netsim.Trace { return &netsim.Trace{} }
	if _, err := (FluidBackend{}).Build(spec, &Overrides{Trace: trace}); err == nil ||
		!strings.Contains(err.Error(), "packet-only") {
		t.Errorf("Trace override: err = %v, want packet-only rejection", err)
	}
	cbfc := twoToOne(CBFC)
	if _, err := (FluidBackend{}).Build(cbfc, nil); err == nil ||
		!strings.Contains(err.Error(), "credit") {
		t.Errorf("CBFC build: err = %v, want Supports rejection", err)
	}
}

// TestFluidRunnerSingleUse mirrors the packet Sim's single-use contract.
func TestFluidRunnerSingleUse(t *testing.T) {
	r, err := (FluidBackend{}).Build(twoToOne(PFC), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunBounded(context.Background(), netsim.Budget{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunBounded(context.Background(), netsim.Budget{}); err == nil {
		t.Error("second RunBounded succeeded, want single-use error")
	}
}

// TestFluidAnalyticAttached checks the fluid runner carries the same
// analytic verdict machinery as the packet path: a registry-bound run with
// Run.Analytic set yields a prediction and no invariant violation.
func TestFluidAnalyticAttached(t *testing.T) {
	spec := twoToOne(GFCBuf)
	spec.Run.Analytic = true
	reg := metrics.New(metrics.Options{})
	r, err := (FluidBackend{}).Build(spec, &Overrides{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunBounded(context.Background(), netsim.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Analytic == nil {
		t.Fatal("no analytic check attached")
	}
	if res.Analytic.Err != nil {
		t.Fatalf("analytic invariant violated: %v", res.Analytic.Err)
	}
	if res.Analytic.Prediction == nil {
		t.Fatal("no prediction recorded")
	}
	if res.HighWater <= 0 {
		t.Error("fluid run recorded no high-water occupancy")
	}
}
