package scenario

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"testing"

	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/units"
)

// updateClos rewrites testdata/clos1024_hashes.json with the hashes of the
// current build:
//
//	go test ./internal/scenario -run TestClos1024Golden -update-clos
//
// Only do this for an intended behaviour change; like the experiments
// goldens, these exist to catch silent drift in the simulation core — now at
// the k=16 scale where a reordered event is most likely to hide.
var updateClos = flag.Bool("update-clos", false, "rewrite clos1024 golden hashes")

const clos1024GoldenPath = "testdata/clos1024_hashes.json"

// clos1024Schemes mirrors the registration list in builtin.go.
var clos1024Schemes = []FC{PFC, GFCBuf, GFCTime}

// clos1024GoldenDuration is the pinned horizon for the golden-hash gate:
// long enough to cover thousands of flow completions and the full flow-start
// transient, short enough (~1s/scheme) to run on every CI invocation.
const clos1024GoldenDuration = 200 * units.Microsecond

// runClos1024 builds and runs one clos1024 scheme for the given horizon
// under the spec's own governor limits, failing the test if the governor
// trips.
func runClos1024(t *testing.T, fc FC, d units.Time) (*Sim, *Result) {
	t.Helper()
	spec, ok := Get("clos1024-" + schemeSlug(fc))
	if !ok {
		t.Fatalf("clos1024 scenario for %s not registered", fc)
	}
	spec.Run.DurationNs = d
	reg := metrics.New(metrics.Options{})
	sim, err := Build(spec, &Overrides{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sim.Topo.Hosts()); got != 1024 {
		t.Fatalf("clos1024 has %d hosts, want 1024", got)
	}
	res, err := sim.RunBounded(context.Background(), netsim.Budget{})
	if err != nil {
		t.Fatalf("governor tripped inside the scenario's own limits: %v", err)
	}
	return sim, res
}

// TestClos1024Smoke is the frontier-scale CI smoke test: the k=16 fat-tree
// (1024 hosts, 320 switches) under the enterprise workload, once per
// registered scheme, governed by the scenario's declared Limits. In -short
// mode (the dedicated CI step) the horizon shrinks to the golden duration;
// a full run covers the catalogue's 1 ms.
func TestClos1024Smoke(t *testing.T) {
	d := units.Millisecond
	if testing.Short() {
		d = clos1024GoldenDuration
	}
	if raceEnabled {
		// ~10× slower and ~3.5M events per full run: keep the race CI
		// step affordable without losing the build/run coverage.
		d = 50 * units.Microsecond
	}
	for _, fc := range clos1024Schemes {
		fc := fc
		t.Run(string(fc), func(t *testing.T) {
			_, res := runClos1024(t, fc, d)
			if res.End < d {
				t.Fatalf("run ended at %v, want %v", res.End, d)
			}
			if res.Delivered == 0 {
				t.Fatal("no traffic delivered")
			}
			t.Logf("%s: delivered %v, drops %d, violations %d, deadlocked %v",
				fc, res.Delivered, res.Drops, res.Violations, res.Deadlocked)
			if res.Drops != 0 {
				t.Errorf("%s: %d drops on a lossless fabric", fc, res.Drops)
			}
			if fc.IsGFC() {
				if res.Violations != 0 {
					t.Errorf("%s: %d invariant violations on the healthy Clos; want 0", fc, res.Violations)
				}
				if res.Deadlocked {
					t.Errorf("%s deadlocked on a healthy fat-tree", fc)
				}
			}
		})
	}
}

// TestClos1024Golden pins an FNV-1a hash of each clos1024 scheme's run
// verdict at a fixed 200 µs horizon: end time, events fired, bytes
// delivered, drops and the deadlock verdict. Any event reordering at k=16
// scale — a heap tie broken differently, a batched arrival admitted out of
// order — shifts the fired-event count or delivered bytes and fails here.
func TestClos1024Golden(t *testing.T) {
	if raceEnabled {
		t.Skip("hashes are identical under race; skip the ~10× slower duplicate")
	}
	want := map[string]string{}
	if data, err := os.ReadFile(clos1024GoldenPath); err == nil {
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatalf("parsing %s: %v", clos1024GoldenPath, err)
		}
	} else if !*updateClos {
		t.Fatalf("reading %s: %v (run with -update-clos to create)", clos1024GoldenPath, err)
	}
	got := map[string]string{}
	for _, fc := range clos1024Schemes {
		fc := fc
		t.Run(string(fc), func(t *testing.T) {
			sim, res := runClos1024(t, fc, clos1024GoldenDuration)
			h := fnv.New64a()
			var buf [8]byte
			for _, v := range []uint64{
				uint64(res.End),
				sim.Net.Engine().Fired(),
				uint64(res.Delivered),
				uint64(res.Drops),
				uint64(boolBit(res.Deadlocked)),
				uint64(res.DeadlockAt),
			} {
				for i := range buf {
					buf[i] = byte(v >> (8 * i))
				}
				h.Write(buf[:])
			}
			name := "clos1024-" + schemeSlug(fc)
			sum := fmt.Sprintf("%016x", h.Sum64())
			got[name] = sum
			if *updateClos {
				t.Logf("%s: %s", name, sum)
				return
			}
			if want[name] != sum {
				t.Errorf("%s: hash %s, golden %s — k=16 run drifted; if intended, rerun with -update-clos",
					name, sum, want[name])
			}
		})
	}
	if *updateClos {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(clos1024GoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}
