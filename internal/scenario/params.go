package scenario

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/units"
)

// FC names a flow-control scheme under evaluation.
type FC string

// The four schemes of the paper's comparison, plus the conceptual design of
// §4.1 (continuous feedback; used by the Figure 5 illustration only) and BFC
// (per-flow-queue backpressure, Goyal et al.; the fault-matrix challenger).
const (
	PFC           FC = "PFC"
	CBFC          FC = "CBFC"
	GFCBuf        FC = "GFC-buffer"
	GFCTime       FC = "GFC-time"
	GFCConceptual FC = "GFC-conceptual"
	BFC           FC = "BFC"
)

// AllFCs lists the four schemes in the paper's presentation order. BFC is
// not included — it is outside the paper's own comparison; racers that want
// it (the fault matrix) add it explicitly.
func AllFCs() []FC { return []FC{PFC, GFCBuf, CBFC, GFCTime} }

// IsGFC reports whether the scheme is one of the GFC variants.
func (fc FC) IsGFC() bool { return fc == GFCBuf || fc == GFCTime }

// Known reports whether fc names a scheme Factory can build.
func (fc FC) Known() bool {
	switch fc {
	case PFC, CBFC, GFCBuf, GFCTime, GFCConceptual, BFC:
		return true
	}
	return false
}

// FCParams carries the per-scheme parameters of one experimental setup. All
// fields are JSON-serialisable so a SchemeSpec can carry them verbatim; zero
// fields defer to the flow-control factories' own derivations.
type FCParams struct {
	XOFF units.Size `json:"xoff_bytes,omitempty"` // PFC
	XON  units.Size `json:"xon_bytes,omitempty"`  // PFC
	// B1 is buffer-based GFC's first threshold.
	B1 units.Size `json:"b1_bytes,omitempty"`
	// Bm is the GFC mapping ceiling (0 = derive).
	Bm units.Size `json:"bm_bytes,omitempty"`
	// Period is the CBFC / time-based GFC feedback period.
	Period units.Time `json:"period_ns,omitempty"`
	// B0 is the time-based (and conceptual) GFC threshold.
	B0 units.Size `json:"b0_bytes,omitempty"`
	// Refresh is buffer-based GFC's periodic stage re-advertisement
	// (loss repair); zero keeps the paper's pure edge-triggered feedback.
	Refresh units.Time `json:"refresh_ns,omitempty"`
	// Queues is BFC's physical queue count per channel (0 = the
	// flowcontrol default). BFC derives its per-queue XOFF/XON from the
	// channel parameters rather than taking the PFC thresholds above —
	// those are class-scoped and would overcommit the buffer queues-fold.
	Queues int `json:"queues,omitempty"`
}

// merge overlays the non-zero fields of o onto p.
func (p FCParams) merge(o FCParams) FCParams {
	if o.XOFF != 0 {
		p.XOFF = o.XOFF
	}
	if o.XON != 0 {
		p.XON = o.XON
	}
	if o.B1 != 0 {
		p.B1 = o.B1
	}
	if o.Bm != 0 {
		p.Bm = o.Bm
	}
	if o.Period != 0 {
		p.Period = o.Period
	}
	if o.B0 != 0 {
		p.B0 = o.B0
	}
	if o.Refresh != 0 {
		p.Refresh = o.Refresh
	}
	if o.Queues != 0 {
		p.Queues = o.Queues
	}
	return p
}

// Factory returns the flowcontrol.Factory for scheme fc under params p.
func (p FCParams) Factory(fc FC) flowcontrol.Factory {
	switch fc {
	case PFC:
		if p.XOFF > 0 {
			return flowcontrol.NewPFC(flowcontrol.PFCConfig{XOFF: p.XOFF, XON: p.XON})
		}
		return flowcontrol.NewPFCDefault()
	case CBFC:
		return flowcontrol.NewCBFC(flowcontrol.CBFCConfig{Period: p.Period})
	case GFCBuf:
		return flowcontrol.NewGFCBuffer(flowcontrol.GFCBufferConfig{B1: p.B1, Bm: p.Bm, Refresh: p.Refresh})
	case GFCTime:
		return flowcontrol.NewGFCTime(flowcontrol.GFCTimeConfig{Period: p.Period, B0: p.B0, Bm: p.Bm})
	case GFCConceptual:
		return flowcontrol.NewGFCConceptual(flowcontrol.GFCConceptualConfig{B0: p.B0, Bm: p.Bm})
	case BFC:
		return flowcontrol.NewBFCQueues(p.Queues)
	default:
		panic(fmt.Sprintf("scenario: unknown scheme %q", fc))
	}
}

// TestbedParams are the §6.1 software-testbed settings: 1 MB buffers,
// τ = 90 µs, XOFF/XON = 800/797 KB, B1 = 750 KB, T = 52.4 µs, B0 = 492 KB.
func TestbedParams() (netsim.Config, FCParams) {
	cfg := netsim.Config{
		BufferSize: 1000 * units.KB,
		Tau:        90 * units.Microsecond,
	}
	fp := FCParams{
		XOFF:   800 * units.KB,
		XON:    797 * units.KB,
		B1:     750 * units.KB,
		Period: 52400 * units.Nanosecond,
		B0:     492 * units.KB,
	}
	return cfg, fp
}

// SimParams are the §6.2.2 packet-level simulation settings: 300 KB buffers,
// 10 Gb/s, 1 µs propagation, XOFF/XON = 280/277 KB.
//
// The paper sets B_m = B = 300 KB and B1 = 281 KB / B0 = 159 KB. Because the
// practical step mapping keeps a positive floor rate at its deepest stage
// (§4.2), a fully stopped drain can push the queue a few packets past B_m;
// we keep four MTUs of headroom (B_m = 294 KB) and shift B1/B0 down by the
// same margin so the paper's own safety bounds still hold and losslessness
// stays strict.
func SimParams() (netsim.Config, FCParams) {
	cfg := netsim.Config{
		BufferSize: 300 * units.KB,
	}
	fp := FCParams{
		XOFF:   280 * units.KB,
		XON:    277 * units.KB,
		B1:     275 * units.KB,
		Bm:     294 * units.KB,
		Period: 52400 * units.Nanosecond,
		B0:     153 * units.KB,
	}
	return cfg, fp
}
