package scenario

import (
	"reflect"
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/units"
)

// TestRegisteredRoundTrip pins the serialisation contract: every registered
// Spec survives Spec → JSON → Spec without loss, so a figure scenario dumped
// to a file and fed back through -scenario reproduces the run exactly.
func TestRegisteredRoundTrip(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			spec, ok := Get(name)
			if !ok {
				t.Fatalf("Get(%q) missing", name)
			}
			data, err := spec.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			back, err := Parse(data)
			if err != nil {
				t.Fatalf("re-parsing %q: %v\n%s", name, err, data)
			}
			if !reflect.DeepEqual(*back, spec) {
				t.Fatalf("round trip not lossless:\nwant %+v\ngot  %+v", spec, *back)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{
		"name": "bad",
		"topology": {"builder": "ring"},
		"workload": {"pattern": "ring-clockwise"},
		"scheme": {"fc": "PFC"},
		"run": {"duration_ns": 1000000},
		"bogus_knob": 7
	}`))
	if err == nil {
		t.Fatal("unknown top-level field accepted")
	}
	if !strings.Contains(err.Error(), "bogus_knob") {
		t.Fatalf("error %q does not name the unknown field", err)
	}
	_, err = Parse([]byte(`{
		"name": "bad",
		"topology": {"builder": "ring", "spokes": 5},
		"workload": {"pattern": "ring-clockwise"},
		"scheme": {"fc": "PFC"},
		"run": {"duration_ns": 1000000}
	}`))
	if err == nil {
		t.Fatal("unknown nested field accepted")
	}
}

func TestParseValidates(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"no duration", `{"name":"x","topology":{"builder":"ring"},"workload":{"pattern":"ring-clockwise"},"scheme":{"fc":"PFC"},"run":{}}`, "duration_ns"},
		{"no workload", `{"name":"x","topology":{"builder":"ring"},"workload":{},"scheme":{"fc":"PFC"},"run":{"duration_ns":1}}`, "pattern, flows or a generator"},
		{"bad fc", `{"name":"x","topology":{"builder":"ring"},"workload":{"pattern":"ring-clockwise"},"scheme":{"fc":"XON/XOFF"},"run":{"duration_ns":1}}`, "unknown fc"},
		{"bad builder", `{"name":"x","topology":{"builder":"torus"},"workload":{"pattern":"ring-clockwise"},"scheme":{"fc":"PFC"},"run":{"duration_ns":1}}`, "unknown builder"},
		{"odd fat-tree", `{"name":"x","topology":{"builder":"fat-tree","k":3},"workload":{"generator":{}},"scheme":{"fc":"PFC"},"run":{"duration_ns":1}}`, "even"},
		{"small ring", `{"name":"x","topology":{"builder":"ring","n":2},"workload":{"pattern":"ring-clockwise"},"scheme":{"fc":"PFC"},"run":{"duration_ns":1}}`, "n >= 3"},
		{"two sources", `{"name":"x","topology":{"builder":"ring"},"workload":{"pattern":"ring-clockwise","generator":{}},"scheme":{"fc":"PFC"},"run":{"duration_ns":1}}`, "mutually exclusive"},
		{"uniform needs size", `{"name":"x","topology":{"builder":"fat-tree","k":4},"workload":{"generator":{"dist":"uniform"}},"scheme":{"fc":"PFC"},"run":{"duration_ns":1}}`, "uniform_bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatalf("accepted; want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestRegisteredScenariosBuild compiles every catalogue entry into a network.
// Building is cheap (no simulation), so even the Clos-scale specs stay inside
// -short budgets.
func TestRegisteredScenariosBuild(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			spec, _ := Get(name)
			sim, err := Build(spec, nil)
			if err != nil {
				t.Fatalf("Build(%q): %v", name, err)
			}
			if sim.Net == nil {
				t.Fatal("Build returned nil network")
			}
			if (spec.Run.DetectDeadlock || spec.Run.StopOnDeadlock) && sim.probe() == nil {
				t.Fatal("spec asked for deadlock detection but no detector installed")
			}
			if spec.Run.Detector == "both" && (sim.Detector == nil || sim.DCFIT == nil) {
				t.Fatal("detector \"both\" did not install both detectors")
			}
			if spec.Workload.Generator != nil && sim.Gen == nil {
				t.Fatal("spec has a generator but none was started")
			}
			if n := len(spec.Workload.Flows); n > 0 && len(sim.Flows) != n {
				t.Fatalf("declared %d flows, built %d", n, len(sim.Flows))
			}
		})
	}
}

// TestFCParamsMerge pins the preset-overlay semantics -scenario files rely
// on: non-zero fields win, zero fields inherit.
func TestFCParamsMerge(t *testing.T) {
	base := FCParams{XOFF: 800 * units.KB, XON: 797 * units.KB, B1: 750 * units.KB}
	got := base.merge(FCParams{XON: 100 * units.KB, Refresh: 90 * units.Microsecond})
	if got.XOFF != 800*units.KB || got.XON != 100*units.KB ||
		got.B1 != 750*units.KB || got.Refresh != 90*units.Microsecond {
		t.Fatalf("merge = %+v", got)
	}
}
