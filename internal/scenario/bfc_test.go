package scenario

import (
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/deadlock"
	"github.com/gfcsim/gfc/internal/units"
)

func runPreset(t *testing.T, name string) *Result {
	t.Helper()
	spec, ok := Get(name)
	if !ok {
		t.Fatalf("preset %q not registered", name)
	}
	sim, err := Build(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Run()
}

// TestBFCFormationRingSurvives: the fig9 formation ring wedges PFC in
// milliseconds; under BFC the per-queue pauses stop only the hot flows'
// queues, the victim flows keep the cycle draining, and the run completes
// live and lossless with neither detector convicting.
func TestBFCFormationRingSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("200 ms testbed ring run")
	}
	res := runPreset(t, "ring-formation-bfc")
	if res.Deadlocked {
		t.Fatalf("BFC formation ring deadlocked: kind %v at %v", res.DeadlockKind, res.DeadlockAt)
	}
	if res.DCFITDeadlocked {
		t.Fatalf("DCFIT convicted the live BFC ring at %v", res.DCFITAt)
	}
	if res.Drops != 0 {
		t.Fatalf("drops = %d", res.Drops)
	}
	if res.Delivered == 0 {
		t.Fatal("no progress")
	}
}

// TestBFCResumeLossWedges is the satellite wedged-channel check: the
// resume-loss fault preset eats a QRESUME, the queue stays paused forever,
// and the global detector must call it a wedged channel — the verdict Kind
// distinguishing a lost release signal from a circular wait.
func TestBFCResumeLossWedges(t *testing.T) {
	res := runPreset(t, "ring-faulted-resume-loss-bfc")
	if !res.Deadlocked {
		t.Fatal("lost QRESUME did not wedge the BFC ring")
	}
	if res.DeadlockKind != deadlock.WedgedChannel {
		t.Fatalf("DeadlockKind = %v, want wedged-channel", res.DeadlockKind)
	}
	if res.Drops != 0 {
		t.Fatalf("drops = %d; a wedged fabric must still be lossless", res.Drops)
	}
}

// TestDCFITPresetAgreesWithGlobal races both detectors on the PFC formation
// ring end-to-end through the scenario layer: both convict, and the DCFIT
// onset lands within a couple of windows of the global one.
func TestDCFITPresetAgreesWithGlobal(t *testing.T) {
	res := runPreset(t, "ring-formation-pfc-dcfit")
	if !res.Deadlocked {
		t.Fatal("global detector missed the PFC ring deadlock")
	}
	if !res.DCFITDeadlocked {
		t.Fatal("DCFIT missed the PFC ring deadlock")
	}
	diff := res.DeadlockAt - res.DCFITAt
	if diff < 0 {
		diff = -diff
	}
	if tol := 10 * units.Millisecond; diff > tol {
		t.Fatalf("onset disagreement: global %v vs dcfit %v", res.DeadlockAt, res.DCFITAt)
	}
}

// TestDetectorFieldValidation pins the strict parsing of Run.Detector.
func TestDetectorFieldValidation(t *testing.T) {
	_, err := Parse([]byte(`{
		"name": "x",
		"topology": {"builder": "ring"},
		"workload": {"pattern": "ring-clockwise"},
		"scheme": {"fc": "BFC"},
		"run": {"duration_ns": 1000000, "detect_deadlock": true, "detector": "psychic"}
	}`))
	if err == nil {
		t.Fatal("unknown detector accepted")
	}
	if !strings.Contains(err.Error(), "unknown detector") {
		t.Fatalf("error %q does not name the detector field", err)
	}
}
