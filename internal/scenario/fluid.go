package scenario

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/gfcsim/gfc/internal/analytic"
	"github.com/gfcsim/gfc/internal/cbd"
	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/fluid"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
	"github.com/gfcsim/gfc/internal/workload"
)

// FluidBackend compiles a Spec onto the network-of-queues fluid solver
// (fluid.RunNet): per-channel rate integration instead of per-packet events.
// It binds the same metrics.Registry layout netsim does, so invariant
// checking, CheckNetwork and report writers work unchanged; what it cannot
// represent it rejects from Supports with the reason named.
type FluidBackend struct {
	// RenderGenerator substitutes a deterministic saturating stand-in for
	// generator workloads: FlowsPerHost unbounded flows per host toward
	// seeded inter-rack destinations. The stand-in upper-bounds the
	// generator's congestion (persistent sources never pause to think),
	// which is what sweep triage wants — occupancy envelopes checked
	// against the worst case — but it is not the generator's byte
	// sequence, so it stays off outside experiments.RunSweep auto mode.
	RenderGenerator bool
}

// Name implements Backend.
func (FluidBackend) Name() string { return "fluid" }

// Supports implements Backend: nil when spec is fluid-representable, else
// an error naming the packet-granular feature. The conformance suite
// asserts these reasons, so keep them stable.
func (b FluidBackend) Supports(spec *Spec) error {
	if spec.Faults != nil {
		return fmt.Errorf("scenario: fluid backend: fault injection is event-granular (feedback loss, flaps)")
	}
	if spec.Workload.Generator != nil && !b.RenderGenerator {
		return fmt.Errorf("scenario: fluid backend: generator workloads (random flow churn) have no fluid rendition")
	}
	switch spec.Scheme.FC {
	case PFC, GFCBuf, GFCTime, GFCConceptual:
	case CBFC:
		return fmt.Errorf("scenario: fluid backend: CBFC credit accounting is message-granular")
	case BFC:
		return fmt.Errorf("scenario: fluid backend: BFC per-flow queues are packet-granular")
	default:
		return fmt.Errorf("scenario: fluid backend: no fluid mapping for scheme %q", spec.Scheme.FC)
	}
	if spec.Sim.Priorities > 1 {
		return fmt.Errorf("scenario: fluid backend: multiple priority classes are packet-granular")
	}
	if spec.Sim.FeedbackJitterNs > 0 {
		return fmt.Errorf("scenario: fluid backend: feedback jitter is event-granular")
	}
	switch spec.Sim.Scheduling {
	case "", "input-queued":
	default:
		return fmt.Errorf("scenario: fluid backend: scheduling %q is packet-granular (fluid models ingress queues only)", spec.Sim.Scheduling)
	}
	if spec.Run.Detector == "dcfit" || spec.Run.Detector == "both" {
		return fmt.Errorf("scenario: fluid backend: DCFIT in-data-plane detection is packet-granular")
	}
	return nil
}

// Build implements Backend. The construction order mirrors the packet
// Build — topology, routing, workload validation, config, registry — so the
// two backends compile a Spec into directly comparable networks.
func (b FluidBackend) Build(spec Spec, ov *Overrides) (Runner, error) {
	if err := b.Supports(&spec); err != nil {
		return nil, err
	}
	if ov == nil {
		ov = &Overrides{}
	}
	if ov.Trace != nil || ov.OnFlow != nil || ov.FaultPlan != nil {
		return nil, fmt.Errorf("scenario: fluid backend: Trace/OnFlow/FaultPlan overrides are packet-only")
	}

	topo := ov.Topo
	if topo == nil {
		if err := spec.Topology.validate(); err != nil {
			return nil, err
		}
		var err error
		if topo, err = buildTopology(spec.Topology); err != nil {
			return nil, err
		}
	}
	tab := ov.Table
	if tab == nil {
		if err := spec.Routing.validate(); err != nil {
			return nil, err
		}
		var err error
		if tab, err = buildRouting(spec, topo); err != nil {
			return nil, err
		}
	}
	if err := spec.Workload.validate(); err != nil {
		return nil, err
	}
	cfg, fp, err := spec.simConfig()
	if err != nil {
		return nil, err
	}
	// The defaults netsim.New would fill; the fluid model needs the same
	// values for threshold derivation.
	if cfg.MTU == 0 {
		cfg.MTU = 1500 * units.Byte
	}
	if cfg.ProcDelay == 0 {
		cfg.ProcDelay = 3 * units.Microsecond
	}
	if cfg.Priorities == 0 {
		cfg.Priorities = 1
	}
	if cfg.BufferSize <= 0 {
		return nil, fmt.Errorf("scenario: fluid backend: BufferSize must be positive")
	}

	reg := ov.Metrics
	if spec.Run.Analytic && reg == nil {
		reg = metrics.New(metrics.Options{})
	}
	if reg != nil {
		bindRegistry(reg, topo, cfg)
	}

	channels, err := fluidChannels(spec.Scheme.FC, topo, cfg, fp)
	if err != nil {
		return nil, err
	}

	s := &fluidSim{
		spec: spec, topo: topo, tab: tab, reg: reg, cfg: cfg, fp: fp,
		cbdCyclic: ov.CBDCyclic,
	}
	var netFlows []fluid.NetFlow
	if spec.Workload.Generator != nil {
		netFlows, err = renderGeneratorFlows(spec, topo, tab)
		if err != nil {
			return nil, err
		}
		s.genUnion = true
	} else {
		resolved, err := resolveFlows(spec, topo, tab)
		if err != nil {
			return nil, err
		}
		for _, rf := range resolved {
			netFlows = append(netFlows, fluid.NetFlow{
				Path:  rf.flow.Path,
				Size:  rf.flow.Size,
				Start: rf.start,
			})
		}
	}
	if len(netFlows) == 0 {
		return nil, fmt.Errorf("scenario: fluid backend: workload resolved to no flows")
	}
	for _, f := range netFlows {
		s.paths = append(s.paths, f.Path)
	}
	s.netcfg = fluid.NetConfig{
		Channels: channels,
		Flows:    netFlows,
		Horizon:  spec.Run.DurationNs,
		Step:     spec.Sim.FluidStepNs,
		MTU:      cfg.MTU,
		Metrics:  reg,
	}
	return s, nil
}

// bindRegistry gives reg the exact channel layout netsim.New would: every
// node, every port (failed links included), in (node, port, priority) order,
// with netsim's buffer values. Anything consuming ChannelIndex or the
// export/report paths then behaves identically across backends.
func bindRegistry(reg *metrics.Registry, topo *topology.Topology, cfg netsim.Config) {
	infos := make([]metrics.NodeInfo, topo.NumNodes())
	for n := 0; n < topo.NumNodes(); n++ {
		id := topology.NodeID(n)
		node := topo.Node(id)
		info := metrics.NodeInfo{
			ID: id, Name: node.Name,
			Host: node.Kind == topology.Host,
		}
		buf := cfg.BufferSize
		if info.Host {
			buf = netsim.HostIngressBuffer
		}
		for _, at := range topo.Ports(id) {
			info.Ports = append(info.Ports, metrics.PortInfo{
				Peer: at.Peer, PeerName: topo.Node(at.Peer).Name,
				Buffer: buf,
			})
		}
		infos[n] = info
	}
	reg.Bind(infos, cfg.Priorities)
}

// fluidChannels lists every live ingress channel with its queue-to-rate law,
// mirroring the flowcontrol factory derivations exactly (same thresholds
// from the same FCParams and per-link τ), so the fluid dynamics obey the
// parameters the packet network would install.
func fluidChannels(fc FC, topo *topology.Topology, cfg netsim.Config, fp FCParams) ([]fluid.NetChannel, error) {
	var out []fluid.NetChannel
	for n := 0; n < topo.NumNodes(); n++ {
		id := topology.NodeID(n)
		host := topo.Node(id).Kind == topology.Host
		for _, at := range topo.Ports(id) {
			if at.Link.Failed {
				continue
			}
			ch := fluid.NetChannel{
				Node: id, Port: at.Port,
				Capacity: at.Link.Capacity,
				Buffer:   cfg.BufferSize,
				Host:     host,
			}
			if host {
				ch.Buffer = netsim.HostIngressBuffer
			} else {
				// Threshold derivation uses the worst-case budget τ
				// (config override, else equation (6) per link), exactly
				// like netsim.Network.tauFor.
				tau := cfg.Tau
				if tau <= 0 {
					tau = core.Tau(at.Link.Capacity, cfg.MTU, at.Link.Delay, cfg.ProcDelay)
				}
				m, period, err := fluidMapping(fc, fp, cfg, at.Link.Capacity, tau)
				if err != nil {
					return nil, fmt.Errorf("scenario: fluid backend: %s ingress from %s: %w",
						topo.Node(id).Name, topo.Node(at.Peer).Name, err)
				}
				ch.Mapping = m
				ch.Period = period
				// The dynamics lag is the physical feedback latency the
				// packet network actually exhibits — equation (6) plus a
				// few packets of serialisation the fluid model elides
				// (calibrated by the differential harness).
				ch.Tau = core.Tau(at.Link.Capacity, cfg.MTU, at.Link.Delay, cfg.ProcDelay) +
					4*units.TransmissionTime(cfg.MTU, at.Link.Capacity)
			}
			out = append(out, ch)
		}
	}
	return out, nil
}

// fluidMapping derives one channel's queue-to-rate law from the same
// parameters the flowcontrol factories use. Any change to a factory's
// derivation must be mirrored here — the conformance suite catches drift.
func fluidMapping(fc FC, fp FCParams, cfg netsim.Config, capacity units.Rate, tau units.Time) (fluid.Mapping, units.Time, error) {
	buffer := cfg.BufferSize
	mtu := cfg.MTU
	switch fc {
	case PFC:
		xoff, xon := fp.XOFF, fp.XON
		if xoff <= 0 {
			pc, err := flowcontrol.RecommendedPFC(flowcontrol.Params{
				Capacity: capacity, Buffer: buffer, MTU: mtu, Tau: tau,
			})
			if err != nil {
				return nil, 0, err
			}
			xoff, xon = pc.XOFF, pc.XON
		}
		if xon <= 0 || xon > xoff || buffer-xoff < units.BytesIn(capacity, tau) {
			return nil, 0, fmt.Errorf("fluid: PFC thresholds XOFF=%v XON=%v invalid for buffer %v, τ=%v",
				xoff, xon, buffer, tau)
		}
		return &fluid.OnOff{C: capacity, XOFF: xoff, XON: xon}, 0, nil
	case GFCBuf:
		bm := fp.Bm
		if bm <= 0 {
			bm = buffer - 4*mtu
		}
		const ratio = 0.5
		need := units.Size(float64(units.BytesIn(capacity, tau)) / (1 - ratio))
		bound := bm - need
		b1 := fp.B1
		if b1 <= 0 {
			b1 = bound
		}
		if b1 > bound {
			return nil, 0, fmt.Errorf("fluid: B1 %v above the safe bound %v (Bm − Cτ/(1−r))", b1, bound)
		}
		st, err := core.NewStageTableRatio(capacity, bm, b1, ratio)
		if err != nil {
			return nil, 0, err
		}
		return fluid.Staged{T: st}, 0, nil
	case GFCTime:
		period := fp.Period
		if period <= 0 {
			period = flowcontrol.RecommendedCBFCPeriod(capacity)
		}
		bm := fp.Bm
		if bm <= 0 {
			bm = buffer - 4*mtu
		}
		b0 := fp.B0
		if b0 <= 0 {
			b0 = core.TimeBasedB0Bound(bm, capacity, tau, period)
		}
		if b0 <= 0 || b0 >= bm {
			return nil, 0, fmt.Errorf("fluid: time-based B0 %v outside (0, Bm=%v)", b0, bm)
		}
		m := core.ContinuousMapping{C: capacity, B0: b0, Bm: bm}
		return fluid.Floored{M: fluid.Continuous{M: m}, Min: flowcontrol.DefaultMinRate}, period, nil
	case GFCConceptual:
		bm := fp.Bm
		if bm <= 0 {
			bm = buffer
		}
		b0 := fp.B0
		if b0 <= 0 {
			b0 = core.ConceptualB0Bound(bm, capacity, tau)
		}
		if b0 <= 0 || b0 >= bm {
			return nil, 0, fmt.Errorf("fluid: conceptual B0 %v outside (0, Bm=%v)", b0, bm)
		}
		m := core.ContinuousMapping{C: capacity, B0: b0, Bm: bm}
		return fluid.Floored{M: fluid.Continuous{M: m}, Min: flowcontrol.DefaultMinRate}, 0, nil
	default:
		return nil, 0, fmt.Errorf("fluid: no mapping for scheme %q", fc)
	}
}

// renderGeneratorFlows builds the saturating generator stand-in: for every
// host, FlowsPerHost unbounded flows toward seeded uniformly-random
// inter-rack reachable destinations (the generator's own destination rule).
// Deterministic per (spec, seed); hosts with no reachable inter-rack peer
// stay idle, exactly like workload.Generator.
func renderGeneratorFlows(spec Spec, topo *topology.Topology, tab *routing.Table) ([]fluid.NetFlow, error) {
	g := spec.Workload.Generator
	if tab == nil {
		return nil, fmt.Errorf("scenario: workload generator needs a routing table (set routing policy spf)")
	}
	seed := g.Seed
	if seed == 0 {
		seed = spec.Seed
	}
	rng := rand.New(rand.NewSource(seed))
	racks := workload.EdgeRacks(topo)
	hosts := topo.Hosts()
	k := g.FlowsPerHost
	if k < 1 {
		k = 1
	}
	var out []fluid.NetFlow
	id := 0
	for _, h := range hosts {
		for i := 0; i < k; i++ {
			dst, ok := pickDst(rng, tab, racks, hosts, h)
			if !ok {
				break // no reachable inter-rack destination: host idle
			}
			id++
			key := uint64(id)*1315423911 ^ uint64(h)<<24 ^ uint64(dst)
			path, err := tab.Path(h, dst, key)
			if err != nil {
				return nil, fmt.Errorf("scenario: fluid backend: routing stand-in flow %d: %w", id, err)
			}
			out = append(out, fluid.NetFlow{Path: path})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: fluid backend: generator stand-in produced no flows (no inter-rack reachability)")
	}
	return out, nil
}

// pickDst mirrors workload.Generator.pickDst: rejection-sample, then scan.
func pickDst(rng *rand.Rand, tab *routing.Table, racks workload.RackOf, hosts []topology.NodeID, src topology.NodeID) (topology.NodeID, bool) {
	for try := 0; try < 16; try++ {
		d := hosts[rng.Intn(len(hosts))]
		if d != src && racks(d) != racks(src) && tab.Reachable(src, d) {
			return d, true
		}
	}
	var candidates []topology.NodeID
	for _, d := range hosts {
		if d != src && racks(d) != racks(src) && tab.Reachable(src, d) {
			candidates = append(candidates, d)
		}
	}
	if len(candidates) == 0 {
		return topology.None, false
	}
	return candidates[rng.Intn(len(candidates))], true
}

// fluidSim is the fluid backend's Runner: a compiled NetConfig plus the
// context the analytic checker needs.
type fluidSim struct {
	spec Spec
	topo *topology.Topology
	tab  *routing.Table
	reg  *metrics.Registry
	cfg  netsim.Config
	fp   FCParams
	netcfg fluid.NetConfig
	// paths back the CBD verdict; genUnion folds in the all-inter-rack-
	// pairs union when the workload is a rendered generator.
	paths     [][]routing.Hop
	genUnion  bool
	cbdCyclic *bool
	ran       bool
}

// RunBounded implements Runner. Event budgets do not apply to a rate
// integrator; the horizon is the spec's duration and ctx cancellation is
// honoured mid-integration.
func (s *fluidSim) RunBounded(ctx context.Context, _ netsim.Budget) (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("scenario: fluid runner is single-use")
	}
	s.ran = true
	s.netcfg.Ctx = ctx
	nres, err := fluid.RunNet(s.netcfg)
	if err != nil {
		if nres == nil {
			return nil, err
		}
		return s.summarise(nres), err
	}
	res := s.summarise(nres)
	if s.spec.Run.Analytic && s.reg != nil {
		res.Analytic = s.analyticCheck(res)
	}
	return res, nil
}

func (s *fluidSim) summarise(nres *fluid.NetResult) *Result {
	res := &Result{
		Name:       s.spec.Name,
		FC:         s.spec.Scheme.FC,
		Backend:    "fluid",
		End:        nres.End,
		Deadlocked: nres.Deadlocked,
		DeadlockAt: nres.DeadlockAt,
		Drops:      nres.Drops,
		Delivered:  nres.Delivered,
		HighWater:  nres.HighWater,
	}
	if s.reg != nil {
		res.Violations = s.reg.Summary().Violations
	}
	return res
}

// Predict mirrors Sim.Predict on the fluid compilation: the same
// analytic.Input from the same resolved config and thresholds.
func (s *fluidSim) Predict() (*analytic.Prediction, error) {
	known, cyclic := s.cbdVerdict()
	return analytic.Predict(analytic.Input{
		Topo:   s.topo,
		Scheme: analytic.Scheme(s.spec.Scheme.FC),
		Cfg:    s.cfg,
		Params: analytic.Params{
			XOFF:   s.fp.XOFF,
			XON:    s.fp.XON,
			B1:     s.fp.B1,
			Bm:     s.fp.Bm,
			B0:     s.fp.B0,
			Period: s.fp.Period,
		},
		CBDKnown:  known,
		CBDCyclic: cyclic,
		Duration:  s.spec.Run.DurationNs,
	})
}

func (s *fluidSim) cbdVerdict() (known, cyclic bool) {
	if s.cbdCyclic != nil {
		return true, *s.cbdCyclic
	}
	g := cbd.NewGraph(s.topo)
	for _, p := range s.paths {
		g.AddPath(p)
	}
	c := g.HasCycle()
	if s.genUnion && s.tab != nil {
		union := cbd.FromAllPairs(s.topo, s.tab, workload.EdgeRacks(s.topo))
		c = c || union.HasCycle()
	}
	s.cbdCyclic = &c
	return true, c
}

func (s *fluidSim) analyticCheck(res *Result) *AnalyticCheck {
	pred, err := s.Predict()
	if err != nil {
		return &AnalyticCheck{Err: err}
	}
	b := pred.Bounds()
	if ierr := s.reg.CheckNetwork(b, res.End, res.Delivered, res.Deadlocked); ierr != nil {
		return &AnalyticCheck{Prediction: pred, Err: ierr}
	}
	return &AnalyticCheck{Prediction: pred}
}
