package scenario

import (
	"context"
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/units"
)

// clos3456Schemes mirrors the registration list in builtin.go.
var clos3456Schemes = []FC{PFC, GFCBuf, GFCTime}

// TestClos3456Registered pins the catalogue contract for the k=24 tier:
// all three presets resolve, declare governor limits (including the heap
// guard — mandatory at a scale where one run holds multi-GiB of state), and
// name their scale.
func TestClos3456Registered(t *testing.T) {
	for _, fc := range clos3456Schemes {
		name := "clos3456-" + schemeSlug(fc)
		spec, ok := Get(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if spec.Topology.K != 24 {
			t.Fatalf("%s: k = %d", name, spec.Topology.K)
		}
		if !strings.Contains(spec.Description, "3456 hosts") {
			t.Fatalf("%s description %q does not state the host count", name, spec.Description)
		}
		l := spec.Limits
		if l == nil || l.MaxEvents == 0 || l.MaxWallMs == 0 || l.StallEvents == 0 {
			t.Fatalf("%s: incomplete governor limits %+v", name, l)
		}
		if l.MaxHeapBytes == 0 {
			t.Fatalf("%s declares no heap guard", name)
		}
		if b := l.Budget(); b.MaxHeap != uint64(l.MaxHeapBytes) {
			t.Fatalf("%s: Budget().MaxHeap = %d, want %d", name, b.MaxHeap, l.MaxHeapBytes)
		}
	}
}

// TestClos3456Smoke builds the k=24 fat-tree (3456 hosts, 720 switches) and
// runs a short horizon per scheme under the spec's declared limits — enough
// to cover build, routing, generator and flow-control at the scale frontier
// without making CI an hours-class job. -short skips it: the build alone is
// ~1s/scheme and the run is event-heavy.
func TestClos3456Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("k=24 build+run is too heavy for -short CI steps")
	}
	d := 20 * units.Microsecond
	if raceEnabled {
		d = 5 * units.Microsecond
	}
	for _, fc := range clos3456Schemes {
		fc := fc
		t.Run(string(fc), func(t *testing.T) {
			spec, _ := Get("clos3456-" + schemeSlug(fc))
			spec.Run.DurationNs = d
			reg := metrics.New(metrics.Options{})
			sim, err := Build(spec, &Overrides{Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			if got := len(sim.Topo.Hosts()); got != 3456 {
				t.Fatalf("clos3456 has %d hosts, want 3456", got)
			}
			res, err := sim.RunBounded(context.Background(), netsim.Budget{})
			if err != nil {
				t.Fatalf("governor tripped inside the scenario's own limits: %v", err)
			}
			if res.End < d {
				t.Fatalf("run ended at %v, want %v", res.End, d)
			}
			if res.Delivered == 0 {
				t.Fatal("no traffic delivered")
			}
			if res.Drops != 0 {
				t.Errorf("%s: %d drops on a lossless fabric", fc, res.Drops)
			}
			t.Logf("%s: delivered %v, drops %d, deadlocked %v", fc, res.Delivered, res.Drops, res.Deadlocked)
		})
	}
}
