package scenario

import (
	"context"
	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/fluid"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// conformanceSkips lists every registered scenario the backend-conformance
// suite may skip, with the substring its skip reason must contain. The
// mapping is enforced both ways: a scenario that skips for an unlisted
// reason fails, and a listed scenario that turns out to be comparable fails
// too — so the list cannot rot as the catalogue grows.
var conformanceSkips = map[string]string{
	"ring-steady-gfcbuf":           "cyclic",
	"ring-formation-pfc":           "cyclic",
	"ring-faulted-resume-loss-pfc": "fault injection",
	"ring-formation-bfc":           "per-flow queues",
	"ring-formation-pfc-dcfit":     "DCFIT",
	"ring-faulted-resume-loss-bfc": "fault injection",
	"casestudy-pfc":                "cyclic",
	"casestudy-gfcbuf":             "cyclic",
	"evolution-pfc":                "generator",
	"overhead-gfcbuf":              "generator",
	"sweep-cell-pfc":               "generator",
	"twotoone-cbfc":                "credit",
	"clos128-pfc":                  "generator",
	"clos128-gfcbuf":               "generator",
	"clos128-cbfc":                 "generator",
	"clos128-gfctime":              "generator",
	"clos128-bfc":                  "generator",
	"clos1024-pfc":                 "generator",
	"clos1024-gfcbuf":              "generator",
	"clos1024-gfctime":             "generator",
	"clos3456-pfc":                 "generator",
	"clos3456-gfcbuf":              "generator",
	"clos3456-gfctime":             "generator",
}

// requireListedSkip asserts the skip (reason) was declared for name with a
// matching reason substring, then records the skip.
func requireListedSkip(t *testing.T, name, reason string) {
	t.Helper()
	want, listed := conformanceSkips[name]
	if !listed {
		t.Fatalf("scenario skipped (%s) but is not in conformanceSkips — add it with the reason", reason)
	}
	if !strings.Contains(reason, want) {
		t.Fatalf("skip reason %q does not contain the declared %q", reason, want)
	}
	t.Skipf("declared skip: %s", reason)
}

// conformanceBand is the fluid-vs-packet occupancy tolerance for a compiled
// spec: fluid.Band at the topology's fastest link and the configured MTU.
func conformanceBand(t *testing.T, spec Spec, topo *topology.Topology) units.Size {
	t.Helper()
	cfg, _, err := spec.simConfig()
	if err != nil {
		t.Fatalf("simConfig: %v", err)
	}
	mtu := cfg.MTU
	if mtu == 0 {
		mtu = 1500 * units.Byte
	}
	var maxCap units.Rate
	for i := 0; i < topo.NumLinks(); i++ {
		if c := topo.Link(topology.LinkID(i)).Capacity; c > maxCap {
			maxCap = c
		}
	}
	return fluid.Band(maxCap, mtu)
}

// TestBackendConformance runs every registered scenario the fluid backend
// can represent through both backends and asserts they agree: same deadlock
// and loss verdicts, high-water occupancies within the differential
// tolerance band, and both inside the analytic envelope. Scenarios fluid
// cannot represent (or whose CBD is cyclic, where the proportional-share
// solver is not a faithful model) must appear in conformanceSkips with the
// right reason.
func TestBackendConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance suite runs full packet simulations")
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, ok := Get(name)
			if !ok {
				t.Fatalf("registered name %q not gettable", name)
			}
			var fb FluidBackend
			if err := fb.Supports(&spec); err != nil {
				requireListedSkip(t, name, err.Error())
				return
			}

			preg := metrics.New(metrics.Options{})
			psim, err := Build(spec, &Overrides{Metrics: preg})
			if err != nil {
				t.Fatalf("packet build: %v", err)
			}
			if known, cyclic := psim.cbdVerdict(); known && cyclic {
				requireListedSkip(t, name, "cyclic CBD: fluid proportional sharing is not a faithful model")
				return
			}
			if want, listed := conformanceSkips[name]; listed {
				t.Fatalf("scenario is listed as skipped (%q) but both backends can compare it — drop the entry", want)
			}

			band := conformanceBand(t, spec, psim.Topo)

			pres, err := psim.RunBounded(context.Background(), netsim.Budget{})
			if err != nil {
				t.Fatalf("packet run: %v", err)
			}
			fr, err := fb.Build(spec, nil)
			if err != nil {
				t.Fatalf("fluid build: %v", err)
			}
			fres, err := fr.RunBounded(context.Background(), netsim.Budget{})
			if err != nil {
				t.Fatalf("fluid run: %v", err)
			}

			if pres.Backend != "packet" || fres.Backend != "fluid" {
				t.Errorf("backend provenance: packet=%q fluid=%q", pres.Backend, fres.Backend)
			}
			if pres.Deadlocked != fres.Deadlocked {
				t.Errorf("deadlock verdicts disagree: packet=%v fluid=%v", pres.Deadlocked, fres.Deadlocked)
			}
			if pres.Drops != 0 || fres.Drops != 0 {
				t.Errorf("loss verdicts: packet dropped %d, fluid dropped %d (want lossless)", pres.Drops, fres.Drops)
			}
			diff := pres.HighWater - fres.HighWater
			if diff < 0 {
				diff = -diff
			}
			if diff > band {
				t.Errorf("high-water disagreement %v (packet %v vs fluid %v) exceeds tolerance band %v",
					diff, pres.HighWater, fres.HighWater, band)
			}
			pred, err := psim.Predict()
			if err != nil {
				t.Fatalf("analytic prediction: %v", err)
			}
			if b := pred.Bounds(); b.MaxOccupancy > 0 {
				if pres.HighWater > b.MaxOccupancy {
					t.Errorf("packet high-water %v above analytic envelope %v", pres.HighWater, b.MaxOccupancy)
				}
				if fres.HighWater > b.MaxOccupancy {
					t.Errorf("fluid high-water %v above analytic envelope %v", fres.HighWater, b.MaxOccupancy)
				}
			}
		})
	}
}
