package scenario

import (
	"fmt"
	"sort"
)

// registry is the name → Spec catalogue of built-in scenarios. Guarded by
// convention rather than a mutex: registration happens in init and tests
// only read.
var registry = map[string]Spec{}

// Register adds a spec to the catalogue; the name must be unique and the
// spec valid (a bad built-in is a programming error, so both panic).
func Register(s Spec) {
	if s.Name == "" {
		panic("scenario: Register: spec has no name")
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: Register: duplicate scenario %q", s.Name))
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("scenario: Register(%q): %v", s.Name, err))
	}
	registry[s.Name] = s
}

// Get returns the named built-in spec.
func Get(name string) (Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names lists the registered scenarios, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
