package scenario

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"github.com/gfcsim/gfc/internal/deadlock"
	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
	"github.com/gfcsim/gfc/internal/workload"
)

// Overrides carry the runtime-only hooks a Spec cannot serialise. All fields
// are optional; the zero value builds the spec exactly as written.
type Overrides struct {
	// Trace builds the run's observation hooks once the topology exists
	// (closures usually capture node IDs). Installed before the network
	// is constructed, like every hand-written driver did.
	Trace func(*topology.Topology) *netsim.Trace
	// Metrics attaches a fresh registry to the simulation.
	Metrics *metrics.Registry
	// Topo supplies a prebuilt topology, skipping the spec's builder
	// (sweeps reuse one topology across repeats).
	Topo *topology.Topology
	// Table supplies a prebuilt routing table, skipping the spec's
	// routing policy.
	Table *routing.Table
	// FaultPlan supplies a compiled fault plan, skipping the spec's
	// faults section; FaultSeed seeds its injector.
	FaultPlan *faults.Plan
	FaultSeed int64
	// OnFlow runs for each declared flow after construction and before
	// AddFlow — the hook congestion-control attachments (DCQCN) need.
	OnFlow func(*netsim.Flow, *netsim.Network) error
	// CBDCyclic, when non-nil, supplies a precomputed cyclic-buffer-
	// dependency verdict for the analytic checker (true: the workload's
	// paths can close a dependency cycle). Sweeps compute the CBD graph
	// once per generated topology and pass the verdict here; nil lets
	// Sim.Predict derive it from the built workload.
	CBDCyclic *bool
}

// Sim is a built, ready-to-run scenario: the network plus handles to every
// subsystem the spec instantiated.
type Sim struct {
	Spec  Spec
	Topo  *topology.Topology
	Table *routing.Table
	Net   *netsim.Network
	// Flows lists the declared flows in add order (pattern or Flows
	// section; generator flows are not included).
	Flows    []*netsim.Flow
	Gen      *workload.Generator
	Detector *deadlock.Detector
	// DCFIT is the in-data-plane detector, installed when Run.Detector is
	// "dcfit" or "both" (for "dcfit" alone, Detector stays nil).
	DCFIT    *deadlock.DCFIT
	Injector *faults.Injector
	Metrics  *metrics.Registry

	// cfg and fp are the resolved simulator configuration and scheme
	// thresholds Build compiled the network from — the analytic
	// predictor's input.
	cfg netsim.Config
	fp  FCParams
	// cbdCyclic caches the dependency-graph verdict (from the override or
	// a lazy computation in Predict).
	cbdCyclic *bool
}

// probe returns the detector driving the run's stop condition and summary
// verdict: the global detector when installed, else DCFIT, else nil.
func (s *Sim) probe() deadlock.Probe {
	if s.Detector != nil {
		return s.Detector
	}
	if s.DCFIT != nil {
		return s.DCFIT
	}
	return nil
}

// Build compiles a Spec (plus optional Overrides) into a runnable Sim. The
// construction order is fixed — topology, routing, config, faults, network,
// flows, generator, detector — because it is the order every hand-written
// driver used, and event determinism (the golden trace hashes) depends on
// subsystems consuming their private random sources in that order.
func Build(spec Spec, ov *Overrides) (*Sim, error) {
	if ov == nil {
		ov = &Overrides{}
	}

	topo := ov.Topo
	if topo == nil {
		if err := spec.Topology.validate(); err != nil {
			return nil, err
		}
		var err error
		if topo, err = buildTopology(spec.Topology); err != nil {
			return nil, err
		}
	}

	tab := ov.Table
	if tab == nil {
		if err := spec.Routing.validate(); err != nil {
			return nil, err
		}
		var err error
		if tab, err = buildRouting(spec, topo); err != nil {
			return nil, err
		}
	}

	if err := spec.Workload.validate(); err != nil {
		return nil, err
	}
	cfg, fp, err := spec.simConfig()
	if err != nil {
		return nil, err
	}
	if ov.Trace != nil {
		cfg.Trace = ov.Trace(topo)
	}
	cfg.Metrics = ov.Metrics
	if spec.Run.Analytic && cfg.Metrics == nil {
		// The analytic checker consumes end-of-run registry aggregates;
		// attach a counters-only registry when the caller brought none.
		// Registries are passive observers, so this cannot change the
		// event sequence.
		cfg.Metrics = metrics.New(metrics.Options{})
	}

	plan := ov.FaultPlan
	faultSeed := ov.FaultSeed
	if plan == nil && spec.Faults != nil {
		if err := spec.Faults.validate(); err != nil {
			return nil, err
		}
		fs := spec.Faults.Inline
		if fs == nil {
			if fs, err = faults.Preset(spec.Faults.Preset); err != nil {
				return nil, err
			}
		}
		if plan, err = fs.Compile(topo); err != nil {
			return nil, fmt.Errorf("scenario: compiling faults: %w", err)
		}
		faultSeed = spec.Faults.Seed
		if faultSeed == 0 {
			faultSeed = spec.Seed
		}
	}
	var inj *faults.Injector
	if plan != nil {
		inj = plan.NewInjector(faultSeed)
		cfg.Faults = inj
	}

	net, err := netsim.New(topo, cfg)
	if err != nil {
		return nil, err
	}
	sim := &Sim{
		Spec: spec, Topo: topo, Table: tab, Net: net,
		Injector: inj, Metrics: cfg.Metrics,
		cfg: cfg, fp: fp, cbdCyclic: ov.CBDCyclic,
	}

	if err := sim.addFlows(ov); err != nil {
		return nil, err
	}
	if g := spec.Workload.Generator; g != nil {
		if tab == nil {
			return nil, fmt.Errorf("scenario: workload generator needs a routing table (set routing policy spf)")
		}
		dist, err := buildDist(g)
		if err != nil {
			return nil, err
		}
		seed := g.Seed
		if seed == 0 {
			seed = spec.Seed
		}
		gen := workload.NewGenerator(net, tab, dist, workload.EdgeRacks(topo), seed)
		gen.FlowsPerHost = g.FlowsPerHost
		gen.Think = g.ThinkNs
		gen.Priority = g.Priority
		if err := gen.Start(); err != nil {
			return nil, err
		}
		sim.Gen = gen
	}
	if spec.Run.DetectDeadlock || spec.Run.StopOnDeadlock {
		global, dcfit := true, false
		switch spec.Run.Detector {
		case "dcfit":
			global, dcfit = false, true
		case "both":
			dcfit = true
		}
		if global {
			det := deadlock.NewDetector(net)
			det.Install()
			sim.Detector = det
		}
		if dcfit {
			d := deadlock.NewDCFIT(net)
			d.Install()
			sim.DCFIT = d
		}
	}
	return sim, nil
}

// Result summarises one Sim.Run.
type Result struct {
	Name         string
	FC           FC
	End          units.Time
	Deadlocked   bool
	DeadlockAt   units.Time
	DeadlockKind deadlock.Kind
	// DCFITDeadlocked / DCFITAt are the in-data-plane detector's verdict
	// when it was installed (Run.Detector "dcfit" or "both"). With "both",
	// the fields above stay the global detector's verdict so the two can
	// be compared.
	DCFITDeadlocked bool
	DCFITAt         units.Time
	Drops           int64
	Delivered       units.Size
	// HighWater is the maximum switch-ingress occupancy the attached
	// registry observed (zero when no registry was attached).
	HighWater units.Size
	// Backend names the simulation backend that produced this result:
	// "packet" (netsim) or "fluid" (the network-of-queues rate model).
	Backend string
	// Violations is the attached registry's invariant-violation count
	// (zero when no registry was attached).
	Violations int64
	FaultStats faults.Stats
	// Stopped is the governor verdict when a RunBounded run was ended by
	// a budget, the stall watchdog or cancellation; nil for a run that
	// reached its declared end. The summary fields above still describe
	// the partial run up to the stop point.
	Stopped *netsim.RunError
	// Analytic carries the network-wide analytic verdict when
	// Run.Analytic was set (nil otherwise). Run and RunBounded fill it
	// after Stopped is known — early-stopped runs drop the progress
	// floor.
	Analytic *AnalyticCheck
}

// Run executes the built scenario to its declared duration (honouring
// StopOnDeadlock and Quiesce) and collects the summary verdict.
func (s *Sim) Run() *Result {
	d := s.Spec.Run.DurationNs
	eng := s.Net.Engine()
	if p := s.probe(); s.Spec.Run.StopOnDeadlock && p != nil {
		// Poll at the detector's own cadence; once it has a report,
		// stop the engine after the in-flight event.
		var watch func()
		watch = func() {
			if p.Deadlocked() != nil {
				eng.Stop()
				return
			}
			eng.After(p.PollInterval(), watch)
		}
		eng.After(p.PollInterval(), watch)
	}
	if s.Spec.Run.Quiesce {
		for eng.Pending() > 0 && s.Net.Now() < d {
			if !eng.Step() {
				break
			}
		}
	} else {
		// A heartbeat pins the horizon so the clock reaches d even if
		// the event queue drains early (deadlock, finished workload).
		eng.Schedule(d, func() {})
		s.Net.Run(d)
	}

	return s.finish(s.summarise())
}

// RunBounded is Run under the netsim run governor: ctx cancellation,
// event/wall budgets and the stall watchdog all apply, composed from the
// spec's Limits block overlaid with the caller's extra budget (non-zero
// caller fields win). A tripped governor returns the partial Result — with
// Result.Stopped set — alongside the *netsim.RunError. Quiesce specs run
// without the horizon heartbeat, so draining the queue still ends the run
// early; StopOnDeadlock watching works as in Run.
func (s *Sim) RunBounded(ctx context.Context, extra netsim.Budget) (*Result, error) {
	d := s.Spec.Run.DurationNs
	eng := s.Net.Engine()
	if p := s.probe(); s.Spec.Run.StopOnDeadlock && p != nil {
		var watch func()
		watch = func() {
			if p.Deadlocked() != nil {
				eng.Stop()
				return
			}
			eng.After(p.PollInterval(), watch)
		}
		eng.After(p.PollInterval(), watch)
	}
	if !s.Spec.Run.Quiesce {
		// As in Run: pin the horizon so the clock reaches d even if the
		// event queue drains early.
		eng.Schedule(d, func() {})
	}
	err := s.Net.RunBounded(ctx, d, s.Spec.Limits.Budget().Overlay(extra))
	res := s.summarise()
	if err != nil {
		var re *netsim.RunError
		if errors.As(err, &re) {
			res.Stopped = re
		}
		return s.finish(res), err
	}
	return s.finish(res), nil
}

// summarise collects the run's verdict from the network and subsystems.
func (s *Sim) summarise() *Result {
	res := &Result{
		Name:      s.Spec.Name,
		FC:        s.Spec.Scheme.FC,
		Backend:   "packet",
		End:       s.Net.Now(),
		Drops:     s.Net.Drops(),
		Delivered: s.Net.TotalDelivered(),
	}
	if p := s.probe(); p != nil {
		if rep := p.Deadlocked(); rep != nil {
			res.Deadlocked = true
			res.DeadlockAt = rep.At
			res.DeadlockKind = rep.Kind
		}
	}
	if s.DCFIT != nil {
		if rep := s.DCFIT.Deadlocked(); rep != nil {
			res.DCFITDeadlocked = true
			res.DCFITAt = rep.At
		}
	}
	if s.Metrics != nil {
		res.Violations = s.Metrics.Summary().Violations
		res.HighWater = s.Metrics.SwitchHighWater()
	}
	if s.Injector != nil {
		res.FaultStats = s.Injector.Stats()
	}
	return res
}

// finish attaches the analytic verdict once res is complete (Stopped set),
// when the spec asked for it and a registry is bound.
func (s *Sim) finish(res *Result) *Result {
	if s.Spec.Run.Analytic && s.Metrics != nil {
		res.Analytic = s.analyticCheck(res)
	}
	return res
}

func buildTopology(t TopologySpec) (*topology.Topology, error) {
	p := topology.DefaultLinkParams()
	if t.CapacityBps != 0 {
		p.Capacity = t.CapacityBps
	}
	if t.DelayNs != 0 {
		p.Delay = t.DelayNs
	}
	var topo *topology.Topology
	switch t.Builder {
	case "ring":
		h := t.HostsPerSwitch
		if h == 0 {
			h = 1
		}
		topo = topology.RingHosts(t.n(), h, p)
	case "fat-tree":
		topo = topology.FatTree(t.K, p)
	case "dumbbell":
		topo = topology.Dumbbell(t.N, p)
	case "linear":
		topo = topology.Linear(t.N, p)
	case "two-to-one":
		topo = topology.TwoToOne(p)
	default:
		return nil, fmt.Errorf("scenario: topology: unknown builder %q", t.Builder)
	}
	for _, pair := range t.FailLinks {
		a, b, err := splitLink(pair)
		if err != nil {
			return nil, err
		}
		na, ok := topo.Lookup(a)
		if !ok {
			return nil, fmt.Errorf("scenario: topology: fail_links %q: no node named %q", pair, a)
		}
		nb, ok := topo.Lookup(b)
		if !ok {
			return nil, fmt.Errorf("scenario: topology: fail_links %q: no node named %q", pair, b)
		}
		if topo.LinkBetween(na, nb) == nil {
			return nil, fmt.Errorf("scenario: topology: no live link %q to fail", pair)
		}
		topo.FailLinkBetween(a, b)
	}
	if fr := t.FailRandom; fr != nil {
		topo.FailRandomLinks(rand.New(rand.NewSource(fr.Seed)), fr.Prob)
	}
	return topo, nil
}

func splitLink(pair string) (string, string, error) {
	for i := 0; i < len(pair); i++ {
		if pair[i] == '-' {
			return pair[:i], pair[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("scenario: topology: fail_links entry %q is not \"A-B\"", pair)
}

func buildRouting(spec Spec, topo *topology.Topology) (*routing.Table, error) {
	switch spec.Routing.Policy {
	case "spf":
		return routing.NewSPF(topo), nil
	case "spf-toward":
		dsts := make([]topology.NodeID, 0, len(spec.Routing.Toward))
		for _, name := range spec.Routing.Toward {
			id, ok := topo.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("scenario: routing: no node named %q", name)
			}
			dsts = append(dsts, id)
		}
		return routing.NewSPFToward(topo, dsts), nil
	case "none":
		return nil, nil
	default: // "auto", "": build SPF only if something needs a table.
		if spec.needsRouting() {
			return routing.NewSPF(topo), nil
		}
		return nil, nil
	}
}

// needsRouting reports whether any workload element resolves paths through a
// routing table.
func (s *Spec) needsRouting() bool {
	if s.Workload.Generator != nil {
		return true
	}
	for _, f := range s.Workload.Flows {
		if len(f.Path) == 0 {
			return true
		}
	}
	return false
}

// simConfig composes the netsim.Config from the scheme preset and Sim
// overrides, resolves the flow-control factory, and returns the resolved
// FCParams alongside (the analytic predictor consumes the same thresholds
// the factories will install).
func (s *Spec) simConfig() (netsim.Config, FCParams, error) {
	if err := s.Scheme.validate(); err != nil {
		return netsim.Config{}, FCParams{}, err
	}
	if err := s.Sim.validate(); err != nil {
		return netsim.Config{}, FCParams{}, err
	}
	var cfg netsim.Config
	var fp FCParams
	switch s.Scheme.Preset {
	case "testbed":
		cfg, fp = TestbedParams()
	case "sim":
		cfg, fp = SimParams()
	}
	fp = fp.merge(s.Scheme.Params)
	m := s.Sim
	if m.BufferBytes != 0 {
		cfg.BufferSize = m.BufferBytes
	}
	if m.MTUBytes != 0 {
		cfg.MTU = m.MTUBytes
	}
	if m.Priorities != 0 {
		cfg.Priorities = m.Priorities
	}
	if m.ProcDelayNs != 0 {
		cfg.ProcDelay = m.ProcDelayNs
	}
	if m.TauNs != 0 {
		cfg.Tau = m.TauNs
	}
	if m.ECNBytes != 0 {
		cfg.ECNThreshold = m.ECNBytes
	}
	if m.HostQueueDepth != 0 {
		cfg.HostQueueDepth = m.HostQueueDepth
	}
	if m.TxRing != 0 {
		cfg.TxRing = m.TxRing
	}
	if m.FeedbackJitterNs != 0 {
		cfg.FeedbackJitter = m.FeedbackJitterNs
		cfg.JitterSeed = m.JitterSeed
	}
	sched, err := parseScheduling(m.Scheduling)
	if err != nil {
		return netsim.Config{}, FCParams{}, err
	}
	cfg.Scheduling = sched
	cfg.FlowControl = fp.Factory(s.Scheme.FC)
	if s.Scheme.FC == BFC {
		// BFC's per-queue pause needs the physical queues to exist in the
		// switch model; FlowQueues > 0 also forces FIFO scheduling.
		q := fp.Queues
		if q <= 0 {
			q = flowcontrol.DefaultBFCQueues
		}
		cfg.FlowQueues = q
	}
	return cfg, fp, nil
}

// resolvedFlow is one declared flow with its resolved path and start time —
// the backend-independent part of workload instantiation. Both backends
// consume the same resolution so their workloads match flow for flow.
type resolvedFlow struct {
	flow  *netsim.Flow
	start units.Time
}

// resolveFlows materialises the pattern or declared-flows section, in add
// order, without touching any simulator.
func resolveFlows(spec Spec, topo *topology.Topology, tab *routing.Table) ([]resolvedFlow, error) {
	w := spec.Workload
	if w.Pattern == "ring-clockwise" {
		t := spec.Topology
		h := t.HostsPerSwitch
		if h == 0 {
			h = 1
		}
		if t.Builder != "ring" {
			return nil, fmt.Errorf("scenario: pattern ring-clockwise needs the ring builder, not %q", t.Builder)
		}
		var out []resolvedFlow
		for i, path := range routing.RingHostsClockwisePaths(topo, t.n(), h) {
			out = append(out, resolvedFlow{flow: &netsim.Flow{
				ID:   i + 1,
				Src:  path[0].Node,
				Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
				Path: path,
			}})
		}
		return out, nil
	}
	var out []resolvedFlow
	for i, fs := range w.Flows {
		id := fs.ID
		if id == 0 {
			id = i + 1
		}
		f := &netsim.Flow{
			ID:       id,
			Size:     fs.SizeBytes,
			Priority: fs.Priority,
		}
		if len(fs.Path) > 0 {
			path, err := routing.ExplicitPath(topo, fs.Path...)
			if err != nil {
				return nil, fmt.Errorf("scenario: flows[%d]: %w", i, err)
			}
			f.Src = path[0].Node
			f.Dst = path[len(path)-1].Link.Other(path[len(path)-1].Node)
			f.Path = path
		} else {
			if tab == nil {
				return nil, fmt.Errorf("scenario: flows[%d]: src/dst flow needs a routing table (set routing policy spf)", i)
			}
			src, ok := topo.Lookup(fs.Src)
			if !ok {
				return nil, fmt.Errorf("scenario: flows[%d]: no node named %q", i, fs.Src)
			}
			dst, ok := topo.Lookup(fs.Dst)
			if !ok {
				return nil, fmt.Errorf("scenario: flows[%d]: no node named %q", i, fs.Dst)
			}
			path, err := tab.Path(src, dst, uint64(id))
			if err != nil {
				return nil, fmt.Errorf("scenario: flows[%d]: %w", i, err)
			}
			f.Src = src
			f.Dst = dst
			f.Path = path
		}
		out = append(out, resolvedFlow{flow: f, start: fs.StartNs})
	}
	return out, nil
}

// addFlows instantiates the pattern or declared flows, in order.
func (s *Sim) addFlows(ov *Overrides) error {
	flows, err := resolveFlows(s.Spec, s.Topo, s.Table)
	if err != nil {
		return err
	}
	for _, rf := range flows {
		if err := s.add(rf.flow, rf.start, ov); err != nil {
			return err
		}
	}
	return nil
}

func (s *Sim) add(f *netsim.Flow, at units.Time, ov *Overrides) error {
	if ov.OnFlow != nil {
		if err := ov.OnFlow(f, s.Net); err != nil {
			return err
		}
	}
	if err := s.Net.AddFlow(f, at); err != nil {
		return err
	}
	s.Flows = append(s.Flows, f)
	return nil
}

func buildDist(g *GeneratorSpec) (*workload.SizeDist, error) {
	switch g.Dist {
	case "", "enterprise":
		return workload.Enterprise(), nil
	case "datamining":
		return workload.DataMining(), nil
	case "uniform":
		return workload.Uniform(g.UniformBytes), nil
	default:
		return nil, fmt.Errorf("scenario: unknown generator dist %q", g.Dist)
	}
}
