//go:build race

package scenario

// raceEnabled reports whether the race detector is active; its ~10×
// slowdown makes the full-duration clos1024 runs unaffordable, so those
// tests shrink or skip.
const raceEnabled = true
