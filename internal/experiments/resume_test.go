package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/units"
)

// resumeSweepConfig is a small but non-trivial PFC failure sweep: big enough
// that a mid-sweep kill lands between cells, small enough for CI.
func resumeSweepConfig() SweepConfig {
	cfg := DefaultSweep(4)
	cfg.Networks = 16
	cfg.Repeats = 1
	// A failure probability well above the paper's 5% makes most cells
	// CBD-prone, so the test actually simulates (and checkpoints) work.
	cfg.FailureProb = 0.25
	cfg.Duration = 5 * units.Millisecond
	cfg.Workers = 2
	return cfg
}

// aggHash reduces a sweep aggregate to the same FNV-1a fold the goldens use.
func aggHash(res *SweepResult) uint64 {
	g := newHasher()
	g.mix(uint64(res.K), uint64(res.CBDProne), uint64(res.DeadlockCases), uint64(res.Drops))
	g.mix(uint64(res.Bandwidth.Len()), uint64(res.Slowdown.Len()))
	g.float(res.Bandwidth.Mean())
	g.float(res.Bandwidth.Max())
	g.float(res.Slowdown.Mean())
	return g.sum()
}

// TestKillMidSweepResume is the end-to-end resilience contract: a sweep
// cancelled mid-flight (the SIGINT path) with a checkpoint attached, then
// resumed, must produce a bit-identical aggregate to an uninterrupted run.
func TestKillMidSweepResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice plus an interrupted pass")
	}
	cfg := resumeSweepConfig()
	ref, err := RunSweep(context.Background(), PFC, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	cfg.Checkpoint = ckpt

	// Kill the sweep once the checkpoint shows durable progress, like an
	// operator ^C-ing a running sweep.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			if fi, err := os.Stat(ckpt); err == nil && fi.Size() > 0 {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	partial, err := RunSweep(ctx, PFC, cfg)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep failed: %v", err)
	}
	if err == nil {
		t.Log("sweep outran the kill; resume degenerates to pure replay")
	}
	if partial == nil {
		t.Fatal("interrupted sweep returned no partial aggregate")
	}

	resumed, err := RunSweep(context.Background(), PFC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Failures) != 0 {
		t.Fatalf("resumed sweep quarantined cells: %s", resumed.FailureSummary())
	}
	if a, b := aggHash(resumed), aggHash(ref); a != b {
		t.Fatalf("resumed aggregate %016x != uninterrupted %016x", a, b)
	}
}

// TestResumeIsPureReplay pins that a second run over a complete checkpoint
// recomputes nothing and still reproduces the aggregate bit for bit —
// the JSON round-trip of every result field is exact.
func TestResumeIsPureReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice")
	}
	cfg := resumeSweepConfig()
	cfg.Checkpoint = filepath.Join(t.TempDir(), "sweep.ckpt")
	first, err := RunSweep(context.Background(), PFC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage would be recomputation: a replay with a different duration
	// in the jobs would change results, so instead prove replay by timing-
	// independent equality plus the checkpoint being complete.
	second, err := RunSweep(context.Background(), PFC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := aggHash(first), aggHash(second); a != b {
		t.Fatalf("replayed aggregate %016x != computed %016x", a, b)
	}
}

// TestSweepQuarantinesBudgetBlownCells pins quarantine-and-continue: with a
// deliberately tiny event budget every CBD-prone cell trips the governor,
// the sweep still completes, and the failures carry flight-recorder reports
// in deterministic job order.
func TestSweepQuarantinesBudgetBlownCells(t *testing.T) {
	cfg := resumeSweepConfig()
	cfg.Networks = 8
	cfg.Budget = netsim.Budget{MaxEvents: 2000, CheckEvery: 64}
	res, err := RunSweep(context.Background(), PFC, cfg)
	if err != nil {
		t.Fatalf("quarantine-and-continue still errored the sweep: %v", err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("no cell tripped a 2000-event budget")
	}
	if res.CBDProne != 0 {
		t.Fatal("budget-blown cells still aggregated")
	}
	for i := 1; i < len(res.Failures); i++ {
		if res.Failures[i].Job <= res.Failures[i-1].Job {
			t.Fatal("failures not in job order")
		}
	}
	f := res.Failures[0]
	if !strings.Contains(f.Err, "event budget") {
		t.Fatalf("failure %q does not name the budget", f.Err)
	}
	if !strings.Contains(f.Report, "flight recorder:") {
		t.Fatalf("failure carries no flight-recorder report:\n%+v", f)
	}
	sum := res.FailureSummary()
	if !strings.Contains(sum, "cell") || !strings.Contains(sum, "flight recorder:") {
		t.Fatalf("summary missing diagnostics:\n%s", sum)
	}

	// Determinism of the quarantine verdict: an event budget depends only
	// on the event stream, so the summary reproduces exactly.
	res2, err := RunSweep(context.Background(), PFC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.FailureSummary() != sum {
		t.Fatal("failure summary not deterministic across runs")
	}
}
