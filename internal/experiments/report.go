package experiments

import (
	"fmt"
	"math/rand"

	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/units"
	"github.com/gfcsim/gfc/internal/workload"
)

// Fig15Rows regenerates the Figure 15 input: the enterprise flow-size CDF
// at the paper's axis points, as (size, cumulative probability) rows.
func Fig15Rows() *stats.Table {
	d := workload.Enterprise()
	t := &stats.Table{Header: []string{"Flow size", "CDF (analytic)", "CDF (sampled)"}}
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	samples := make([]units.Size, n)
	for i := range samples {
		samples[i] = d.Sample(rng)
	}
	for _, s := range []units.Size{
		500 * units.Byte, units.KB, 10 * units.KB, 100 * units.KB,
		units.MB, 10 * units.MB, 30 * units.MB,
	} {
		count := 0
		for _, v := range samples {
			if v <= s {
				count++
			}
		}
		t.AddRow(s.String(),
			fmt.Sprintf("%.3f", d.CDFAt(s)),
			fmt.Sprintf("%.3f", float64(count)/n))
	}
	return t
}

// Table1Rows renders Table 1 (deadlock cases per scale and scheme) from
// sweep results keyed by scale.
func Table1Rows(results map[int]map[FC]*SweepResult, scales []int) *stats.Table {
	t := &stats.Table{Header: []string{"Scale", "CBD-prone", "PFC", "GFC-buffer", "CBFC", "GFC-time"}}
	for _, k := range scales {
		row := results[k]
		if row == nil {
			continue
		}
		prone := 0
		cell := func(fc FC) string {
			r := row[fc]
			if r == nil {
				return "-"
			}
			prone = r.CBDProne
			return fmt.Sprintf("%d", r.DeadlockCases)
		}
		pfc, gfcb, cbfc, gfct := cell(PFC), cell(GFCBuf), cell(CBFC), cell(GFCTime)
		t.AddRow(fmt.Sprintf("k=%d", k), fmt.Sprintf("%d", prone), pfc, gfcb, cbfc, gfct)
	}
	return t
}

// Fig16Rows renders the average available bandwidth comparison (per-host
// goodput over deadlock-free runs).
func Fig16Rows(results map[int]map[FC]*SweepResult, scales []int) *stats.Table {
	t := &stats.Table{Header: []string{"Scale", "Scheme", "Mean BW/host", "Stddev"}}
	for _, k := range scales {
		for _, fc := range AllFCs() {
			r := results[k][fc]
			if r == nil || r.Bandwidth.Len() == 0 {
				continue
			}
			t.AddRow(fmt.Sprintf("k=%d", k), string(fc),
				units.Rate(r.Bandwidth.Mean()).String(),
				units.Rate(r.Bandwidth.Stddev()).String())
		}
	}
	return t
}

// Fig17Rows renders the average slowdown comparison, normalised to the
// minimum within each scale as in the paper.
func Fig17Rows(results map[int]map[FC]*SweepResult, scales []int) *stats.Table {
	t := &stats.Table{Header: []string{"Scale", "Scheme", "Mean slowdown", "Normalised"}}
	for _, k := range scales {
		min := 0.0
		for _, fc := range AllFCs() {
			r := results[k][fc]
			if r == nil || r.Slowdown.Len() == 0 {
				continue
			}
			m := r.Slowdown.Mean()
			if min == 0 || m < min {
				min = m
			}
		}
		for _, fc := range AllFCs() {
			r := results[k][fc]
			if r == nil || r.Slowdown.Len() == 0 {
				continue
			}
			m := r.Slowdown.Mean()
			t.AddRow(fmt.Sprintf("k=%d", k), string(fc),
				fmt.Sprintf("%.2f", m), fmt.Sprintf("%.3f", m/min))
		}
	}
	return t
}
