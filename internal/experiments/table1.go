package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/gfcsim/gfc/internal/cbd"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/runner"
	"github.com/gfcsim/gfc/internal/scenario"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
	"github.com/gfcsim/gfc/internal/workload"
)

// SweepConfig parameterises the §6.2.3 large-scale simulations (Table 1 and
// Figures 16–18): random link failures on fat-trees, empirical enterprise
// traffic, deadlock detection.
type SweepConfig struct {
	K           int     // fat-tree arity (paper: 4, 8, 16)
	Networks    int     // random failure scenarios to generate (paper: 10000)
	Repeats     int     // workload repetitions per scenario (paper: 100)
	FailureProb float64 // per-link failure probability (paper: 0.05)
	Duration    units.Time
	Seed        int64
	Scheduling  netsim.Scheduling
	// FlowsPerHost scales workload intensity (default 1, the paper's).
	// Budget-limited sweeps use 2–4 to compensate for running far fewer
	// repeats than the paper's 100 per topology.
	FlowsPerHost int
	// Workers is the number of scenarios simulated concurrently.
	// 0 means runtime.GOMAXPROCS(0). Every scenario is share-nothing and
	// seeded from its index, so the aggregate result is bit-identical
	// for every worker count.
	Workers int
	// Budget bounds every repeat's simulation via the netsim run governor
	// (event budget, wall clock, stall watchdog). The zero value imposes
	// no bounds; a budget-blown repeat quarantines its scenario cell
	// instead of wedging the sweep.
	Budget netsim.Budget
	// JobTimeout is a per-scenario wall-clock deadline; 0 means none. A
	// deadline-blown cell is quarantined and the sweep continues.
	JobTimeout time.Duration
	// Checkpoint, when non-empty, is the path of a JSONL checkpoint file:
	// cells are recorded as they complete and a resumed sweep (same
	// SweepKey) replays them instead of recomputing.
	Checkpoint string
	// Analytic enforces the network-wide analytic checker on every repeat
	// (internal/analytic): each run is verified against its topology's
	// occupancy envelope, throughput band and losslessness/progress
	// verdict, the verdict is recorded in the cell's ScenarioResults, and
	// a violated repeat quarantines its cell. Part of the SweepKey: runs
	// with and without the checker do not share checkpoints.
	Analytic bool
	// Backend selects the simulation engine per repeat: "" or "packet"
	// runs everything on netsim; "fluid" integrates every repeat on the
	// network-of-queues solver (the scheme must be fluid-representable);
	// "auto" triages each repeat with the fluid model and re-runs it at
	// packet level when the cell sits near an analytic boundary —
	// occupancy within the differential tolerance band of its envelope, a
	// deadlock/loss verdict the analytic model contradicts, or a scheme
	// whose cyclic-CBD behaviour fluid cannot represent. Part of the
	// SweepKey for the non-packet engines: fluid and packet cells never
	// share a checkpoint.
	Backend string
	// Retry is the transient-failure retry policy: cells that trip a
	// host-condition guard (wall budget, heap guard, per-job deadline) are
	// re-run up to Retry.Max times with seed-derived backoff before
	// quarantining or degrading. Deterministic failures (panics, invariant
	// violations, event-budget trips) never retry. A runtime knob: not
	// part of the SweepKey, since retrying cannot change what a cell
	// computes — only whether it completes.
	Retry runner.Retry
	// Degrade enables the degraded-fidelity fallback: a packet-backend
	// cell that exhausts its retry budget on a transient failure is
	// recomputed on the fluid solver where the analytic model vouches for
	// it (see runDegradedRepeat), with the cause recorded in the cell's
	// provenance. Part of the SweepKey: degraded cells hold fluid-computed
	// values, so degrading and non-degrading sweeps never share a
	// checkpoint.
	Degrade bool
	// failInject, when non-nil, is consulted before generating job's
	// scenario on each primary-path attempt (1-based) and its non-nil
	// return fails the attempt — the deterministic stand-in for
	// host-condition trouble in retry tests. Never applied to degraded
	// fallback runs.
	failInject func(job, attempt int) error
}

// supported fat-tree census: the arities the topology builder and its pinned
// validation tests cover. The paper sweeps 4, 8 and 16; anything even up to
// 32 (32768 hosts) stays within the validated construction.
const (
	minSweepK = 4
	maxSweepK = 32
)

// Validate rejects a sweep configuration that would otherwise fail deep
// inside the run (or silently compute nothing).
func (cfg SweepConfig) Validate() error {
	if cfg.K < minSweepK || cfg.K > maxSweepK || cfg.K%2 != 0 {
		return fmt.Errorf("table1: K = %d outside the supported fat-tree census (even, %d ≤ K ≤ %d)",
			cfg.K, minSweepK, maxSweepK)
	}
	if cfg.Networks <= 0 {
		return fmt.Errorf("table1: Networks = %d; need at least one failure scenario", cfg.Networks)
	}
	if cfg.Repeats <= 0 {
		return fmt.Errorf("table1: Repeats = %d; need at least one workload repetition per scenario", cfg.Repeats)
	}
	if cfg.FailureProb < 0 || cfg.FailureProb > 1 {
		return fmt.Errorf("table1: FailureProb = %g outside [0, 1]", cfg.FailureProb)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("table1: Duration = %d; need a positive run horizon", cfg.Duration)
	}
	switch cfg.Backend {
	case "", "packet", "fluid", "auto":
	default:
		return fmt.Errorf("table1: unknown backend %q (want packet, fluid or auto)", cfg.Backend)
	}
	return nil
}

// DefaultSweep returns a CI-sized sweep for arity k: the paper's failure
// probability with reduced scenario/repeat counts, compensated by a 4×
// workload intensity so deadlock occurrence stays observable (documented in
// EXPERIMENTS.md; the paper runs 10000 scenarios × 100 repeats at 1 flow
// per host).
func DefaultSweep(k int) SweepConfig {
	return SweepConfig{
		K:            k,
		Networks:     200,
		Repeats:      2,
		FailureProb:  0.05,
		Duration:     25 * units.Millisecond,
		Seed:         1,
		FlowsPerHost: 4,
	}
}

// ScenarioResult is the outcome of one (topology, scheme, repeat) run.
type ScenarioResult struct {
	Deadlocked bool
	DeadlockAt units.Time
	// HostBandwidth is the mean per-host goodput (Figure 16).
	HostBandwidth units.Rate
	// Slowdowns collects per-completed-flow slowdown samples (Fig 17).
	Slowdowns []float64
	// FeedbackFraction is total feedback bytes over total link capacity
	// × time (one input to Figure 19).
	FeedbackFraction float64
	Drops            int64
	// Analytic is the network-wide analytic verdict of the repeat, present
	// when the sweep ran with SweepConfig.Analytic. It round-trips through
	// the checkpoint store like every other field, so resumed and replayed
	// cells carry the identical verdict.
	Analytic *AnalyticVerdict `json:"analytic,omitempty"`
	// HighWater is the repeat's maximum switch-channel occupancy — the
	// signal auto-mode triage compares against the analytic envelope.
	HighWater units.Size `json:"high_water,omitempty"`
	// Backend records which engine produced the repeat: "" (historic
	// checkpoints) and "packet" mean netsim, "fluid" the network-of-queues
	// solver. Riding the checkpoint entry is what keeps an auto-mode
	// resume bit-identical: a replayed cell keeps the provenance of the
	// run that computed it rather than re-triaging.
	Backend string `json:"backend,omitempty"`
	// Escalation, set only on auto-mode packet re-runs, names the analytic
	// boundary that forced the escalation.
	Escalation string `json:"escalation,omitempty"`
}

// AnalyticVerdict records what the analytic model predicted for one repeat
// and the aggregates it was checked against (the check itself passed — a
// violated repeat quarantines its cell instead of producing a result).
type AnalyticVerdict struct {
	DeadlockFree bool `json:"deadlock_free"`
	Lossless     bool `json:"lossless"`
	// MaxOccupancy is the predicted per-channel envelope; HighWater the
	// observed switch-channel maximum (HighWater ≤ MaxOccupancy held).
	MaxOccupancy units.Size `json:"max_occupancy"`
	HighWater    units.Size `json:"high_water"`
	// MaxDelivered is the aggregate throughput bound; Delivered the
	// observed total (Delivered ≤ MaxDelivered held).
	MaxDelivered units.Size `json:"max_delivered"`
	Delivered    units.Size `json:"delivered"`
}

// SweepResult aggregates one scheme over one scale.
type SweepResult struct {
	FC FC
	K  int
	// CBDProne is how many generated scenarios could form a CBD (the
	// pre-filter of §6.2.3); only these are simulated.
	CBDProne int
	// DeadlockCases counts CBD-prone scenarios where any repeat
	// deadlocked — a Table 1 cell.
	DeadlockCases int
	// Bandwidth and Slowdown aggregate over deadlock-free runs
	// (Figures 16a/17a) and over all runs (16b/17b handled by caller).
	Bandwidth stats.CDF
	Slowdown  stats.CDF
	Drops     int64
	// AnalyticChecked counts repeats that carried (and passed) the
	// network-wide analytic check — Networks × Repeats of the CBD-prone
	// cells when SweepConfig.Analytic is on and nothing was quarantined.
	AnalyticChecked int
	// Failures lists the quarantined cells (budget-blown, deadline-blown
	// or panicked scenarios), in job order. The sweep's aggregates cover
	// the surviving cells; a non-empty list means the sweep is incomplete
	// and callers should exit non-zero after reporting it.
	Failures []CellFailure
	// Retried lists the cells whose transient failures were absorbed by
	// the retry policy, in job order; Degraded the cells whose values came
	// from the degraded-fidelity fallback. Both fold the runner's
	// provenance, so resumes report the same history as the original run.
	Retried  []CellRetries
	Degraded []DegradedCell
	// Salvage, when non-nil, reports checkpoint lines the resume had to
	// discard (corrupt or torn); the dropped cells were recomputed.
	Salvage *runner.Salvage
}

// CellFailure is one quarantined sweep cell: the scenario job index, the
// rendered error, and — when the failure carried a flight-recorder
// snapshot — its report.
type CellFailure struct {
	Job    int    `json:"job"`
	Err    string `json:"err"`
	Report string `json:"report,omitempty"`
}

// FailureSummary renders the quarantined cells of a sweep as a
// deterministic, job-ordered report.
func (s *SweepResult) FailureSummary() string {
	if len(s.Failures) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d sweep cells quarantined (fc=%v k=%d):\n",
		len(s.Failures), s.FC, s.K)
	for _, f := range s.Failures {
		fmt.Fprintf(&b, "  cell %d: %s\n", f.Job, f.Err)
		if f.Report != "" {
			for _, line := range strings.Split(strings.TrimRight(f.Report, "\n"), "\n") {
				fmt.Fprintf(&b, "    %s\n", line)
			}
		}
	}
	return b.String()
}

// GenerateScenario builds the i-th random failure scenario of a sweep:
// a k-ary fat-tree with each fabric link failed with probability p. Returns
// the topology, its routing table and whether all-pairs inter-rack routing
// can form a CBD.
func GenerateScenario(k int, p float64, seed int64) (*topology.Topology, *routing.Table, bool) {
	topo := topology.FatTree(k, topology.DefaultLinkParams())
	rng := rand.New(rand.NewSource(seed))
	topo.FailRandomLinks(rng, p)
	tab := routing.NewSPF(topo)
	g := cbd.FromAllPairs(topo, tab, workload.EdgeRacks(topo))
	return topo, tab, g.HasCycle()
}

// sweepSpec is the per-repeat Spec both backends compile: the enterprise
// generator workload at the sweep's intensity, seeded by the repeat.
func sweepSpec(fc FC, cfg SweepConfig, repeatSeed int64) scenario.Spec {
	return scenario.Spec{
		Name:     "table1-repeat",
		Topology: scenario.TopologySpec{Builder: "fat-tree", K: cfg.K},
		Routing:  scenario.RoutingSpec{Policy: "spf"},
		Workload: scenario.WorkloadSpec{Generator: &scenario.GeneratorSpec{
			Dist: "enterprise", FlowsPerHost: cfg.FlowsPerHost, Seed: repeatSeed,
		}},
		Scheme: scenario.SchemeSpec{FC: fc, Preset: "sim"},
		Sim:    scenario.SimSpec{Scheduling: cfg.Scheduling.String()},
		Run: scenario.RunSpec{
			DurationNs: cfg.Duration, DetectDeadlock: true,
			Analytic: cfg.Analytic,
		},
	}
}

// RunScenario executes one workload repetition on a prepared scenario. The
// topology and routing table are supplied prebuilt (sweeps reuse them across
// repeats), so the Spec's topology section is documentation only. The run is
// governed: ctx cancellation and cfg.Budget are enforced via
// netsim.RunBounded, and a tripped governor surfaces as a *netsim.RunError.
func RunScenario(ctx context.Context, topo *topology.Topology, tab *routing.Table, fc FC, cfg SweepConfig, repeatSeed int64) (*ScenarioResult, error) {
	spec := sweepSpec(fc, cfg, repeatSeed)
	// The metrics registry supplies the feedback-byte accounting the
	// bespoke Trace closure used to keep.
	reg := metrics.New(metrics.Options{})
	// Every simulated cell passed the CBD pre-filter, so the dependency
	// verdict is cyclic by construction — hand it to the analytic
	// predictor instead of recomputing the all-pairs graph per repeat.
	cyclic := true
	sim, err := scenario.Build(spec, &scenario.Overrides{
		Topo: topo, Table: tab, Metrics: reg, CBDCyclic: &cyclic,
	})
	if err != nil {
		return nil, err
	}
	net := sim.Net
	gen := sim.Gen
	if err := net.RunBounded(ctx, cfg.Duration, cfg.Budget); err != nil {
		return nil, err
	}

	res := &ScenarioResult{Drops: net.Drops()}
	if rep := sim.Detector.Deadlocked(); rep != nil {
		res.Deadlocked = true
		res.DeadlockAt = rep.At
	}
	hosts := len(topo.Hosts())
	res.HostBandwidth = units.RateOf(net.TotalDelivered(), cfg.Duration) / units.Rate(hosts)
	for _, f := range gen.Completed {
		ideal := routing.PathLatency(f.Path, 1500*units.Byte) +
			units.TransmissionTime(f.Size, 10*units.Gbps)
		res.Slowdowns = append(res.Slowdowns, stats.Slowdown(f.FCT(), ideal))
	}
	// Feedback fraction of total fabric capacity over the run.
	var capBits float64
	for i := 0; i < topo.NumLinks(); i++ {
		l := topo.Link(topology.LinkID(i))
		if !l.Failed {
			capBits += 2 * float64(l.Capacity) * cfg.Duration.Seconds()
		}
	}
	if capBits > 0 {
		res.FeedbackFraction = float64(reg.Summary().FeedbackWire.Bits()) / capBits
	}
	res.HighWater = reg.SwitchHighWater()
	if cfg.Analytic {
		pred, verr := sim.VerifyAnalytic(&scenario.Result{
			End:        net.Now(),
			Delivered:  net.TotalDelivered(),
			Deadlocked: res.Deadlocked,
		})
		if verr != nil {
			return nil, fmt.Errorf("analytic check: %w", verr)
		}
		res.Analytic = &AnalyticVerdict{
			DeadlockFree: pred.DeadlockFree,
			Lossless:     pred.Lossless,
			MaxOccupancy: pred.MaxOccupancy,
			HighWater:    reg.SwitchHighWater(),
			MaxDelivered: pred.MaxDelivered,
			Delivered:    net.TotalDelivered(),
		}
	}
	return res, nil
}

// scenarioOutcome is one scenario's worth of sweep data: the per-repeat
// results in repeat order, so the aggregation fold reproduces the serial
// loop exactly. A nil outcome marks a scenario that was not CBD-prone. The
// fields are exported (and JSON-tagged) because outcomes round-trip through
// the checkpoint store; the JSON float encoding is exact, so a replayed
// outcome aggregates bit-identically to a computed one.
type scenarioOutcome struct {
	Repeats []*ScenarioResult `json:"repeats"`
}

// SweepKey identifies the result-determining configuration of a sweep — the
// spec hash written into every checkpoint entry. Two sweeps share a key iff
// their job lists compute the same results, which is what makes a recorded
// cell safe to replay. Runtime knobs (workers, budgets, checkpoint path)
// deliberately stay out: they change how cells run, not what they compute.
func SweepKey(fc FC, cfg SweepConfig) string {
	key := fmt.Sprintf("table1/fc=%v/k=%d/n=%d/r=%d/p=%g/d=%d/seed=%d/sched=%s/fph=%d",
		fc, cfg.K, cfg.Networks, cfg.Repeats, cfg.FailureProb,
		int64(cfg.Duration), cfg.Seed, cfg.Scheduling.String(), cfg.FlowsPerHost)
	if cfg.Analytic {
		// Appended only when on, so checkpoints recorded before the
		// checker existed keep their identity for plain sweeps.
		key += "/analytic=1"
	}
	if cfg.Backend != "" && cfg.Backend != "packet" {
		// Same append-only convention: packet sweeps keep their historic
		// identity, fluid/auto sweeps get their own.
		key += "/backend=" + cfg.Backend
	}
	if cfg.Degrade {
		// Degraded cells carry fluid-computed values, so a degrading sweep
		// must not replay (or be replayed by) a strict one.
		key += "/degrade=1"
	}
	return key
}

// seedOf is the base RNG seed of scenario i, recorded in checkpoint entries.
func (cfg SweepConfig) seedOf(i int) int64 { return cfg.Seed + int64(i) }

// RunSweep executes the Table 1 experiment for one scheme at one scale.
// Scenario generation is shared across schemes via the seed, so — like the
// paper observed — the same topologies deadlock under PFC and CBFC.
//
// Scenarios run concurrently on cfg.Workers goroutines; each one is an
// independent Network seeded purely from the scenario index, and outcomes
// are folded in scenario order, so the result is bit-identical for every
// worker count (including the serial Workers == 1 case).
//
// Resilience semantics: a failed cell (budget-blown, deadline-blown,
// panicked) is quarantined into SweepResult.Failures and the sweep
// continues; with cfg.Checkpoint set, completed cells are recorded as they
// finish and a resumed sweep replays them. Cancelling ctx stops the sweep
// early and returns the partial aggregate alongside the context error —
// cancelled cells are neither aggregated, quarantined nor checkpointed, so
// a resume re-runs exactly those.
func RunSweep(ctx context.Context, fc FC, cfg SweepConfig) (*SweepResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Backend == "fluid" {
		// Fail fast rather than quarantining every cell: a pure-fluid
		// sweep of a scheme the solver cannot represent computes nothing.
		probe := sweepSpec(fc, cfg, 0)
		if err := fluidSweepBackend.Supports(&probe); err != nil {
			return nil, err
		}
	}
	runRepeat := func(ctx context.Context, topo *topology.Topology, tab *routing.Table, seed int64) (*ScenarioResult, error) {
		switch cfg.Backend {
		case "fluid":
			return RunScenarioFluid(ctx, topo, tab, fc, cfg, seed)
		case "auto":
			return runAutoRepeat(ctx, topo, tab, fc, cfg, seed)
		default:
			return RunScenario(ctx, topo, tab, fc, cfg, seed)
		}
	}
	jobs := make([]runner.Job[*scenarioOutcome], cfg.Networks)
	for i := 0; i < cfg.Networks; i++ {
		i := i
		attempt := 0 // owned by one worker at a time; retries re-enter serially
		jobs[i] = func(ctx context.Context) (*scenarioOutcome, error) {
			attempt++
			if inj := cfg.failInject; inj != nil {
				if err := inj(i, attempt); err != nil {
					return nil, err
				}
			}
			topo, tab, prone := GenerateScenario(cfg.K, cfg.FailureProb, cfg.seedOf(i))
			if !prone {
				return nil, nil
			}
			sc := &scenarioOutcome{Repeats: make([]*ScenarioResult, cfg.Repeats)}
			for r := 0; r < cfg.Repeats; r++ {
				res, err := runRepeat(ctx, topo, tab, cfg.Seed*1000+int64(i*cfg.Repeats+r))
				if err != nil {
					return nil, fmt.Errorf("repeat %d: %w", r, err)
				}
				sc.Repeats[r] = res
			}
			return sc, nil
		}
	}
	opts := runner.Options[*scenarioOutcome]{
		Workers:    cfg.Workers,
		JobTimeout: cfg.JobTimeout,
		Seed:       cfg.seedOf,
		Retry:      cfg.Retry,
		Classify:   ClassifyCellFailure,
	}
	if cfg.Degrade && cfg.Backend != "fluid" {
		// A pure-fluid sweep has nothing lower-fidelity to fall back to.
		opts.Degrade = func(ctx context.Context, job int, _ error) (*scenarioOutcome, error) {
			return runDegradedCell(ctx, fc, cfg, job)
		}
	}
	out := &SweepResult{FC: fc, K: cfg.K}
	if cfg.Checkpoint != "" {
		st, err := runner.OpenStore(cfg.Checkpoint, SweepKey(fc, cfg))
		if err != nil {
			return nil, fmt.Errorf("opening checkpoint: %w", err)
		}
		defer st.Close()
		opts.Checkpoint = st
		if sv := st.Salvage(); sv.Dropped > 0 {
			out.Salvage = &sv
		}
	}
	results := runner.RunWith(ctx, jobs, opts)

	for job, jr := range results {
		if prov := jr.Prov; prov != nil {
			if len(prov.Retries) > 0 {
				out.Retried = append(out.Retried, CellRetries{
					Job: job, Attempts: prov.Attempts, Retries: prov.Retries,
				})
			}
			if prov.Degraded != "" {
				out.Degraded = append(out.Degraded, DegradedCell{Job: job, Cause: prov.Degraded})
			}
		}
		if err := jr.Err; err != nil {
			if errors.Is(err, context.Canceled) {
				continue // cut short, not a verdict: a resume re-runs it
			}
			f := CellFailure{Job: job, Err: err.Error()}
			var re *netsim.RunError
			if errors.As(err, &re) && re.Snapshot != nil {
				f.Report = re.Snapshot.String()
			}
			out.Failures = append(out.Failures, f)
			continue
		}
		sc := jr.Value
		if sc == nil {
			continue // not CBD-prone: never simulated
		}
		out.CBDProne++
		dead := false
		for _, res := range sc.Repeats {
			out.Drops += res.Drops
			if res.Analytic != nil {
				out.AnalyticChecked++
			}
			if res.Deadlocked {
				dead = true
			} else {
				out.Bandwidth.Add(float64(res.HostBandwidth))
				for _, s := range res.Slowdowns {
					out.Slowdown.Add(s)
				}
			}
		}
		if dead {
			out.DeadlockCases++
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}
