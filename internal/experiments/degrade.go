package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/runner"
	"github.com/gfcsim/gfc/internal/topology"
)

// This file is the self-healing side of the sweep: the failure taxonomy
// that decides which quarantines earn retries, and the degraded-fidelity
// fallback that recomputes a retry-exhausted packet cell on the fluid
// backend — the paper's gentle-degradation philosophy applied to the
// harness itself. Retrying is reserved for host-condition verdicts
// (DCFIT's persistence-window insight: distinguish transient pause storms
// from real deadlock before acting); anything the simulation itself
// decided — a panic, an invariant violation, an event-budget trip that
// would recur event-for-event — quarantines immediately.

// ClassifyCellFailure buckets a sweep-cell failure for the retry policy.
// It layers the netsim governor taxonomy on runner.DefaultClassify:
// wall-clock and heap trips depend on host conditions (load, co-tenants,
// allocator state) and are transient; event-budget and stall trips are
// functions of the deterministic event stream and would reproduce exactly,
// so they are deterministic like panics and invariant violations.
func ClassifyCellFailure(err error) runner.FailureClass {
	var re *netsim.RunError
	if errors.As(err, &re) {
		switch re.Reason {
		case netsim.StopWallBudget, netsim.StopHeapBudget:
			return runner.ClassTransient
		case netsim.StopCancelled:
			// Defer to the context error it unwraps to (Canceled → skip,
			// DeadlineExceeded → transient).
		default:
			return runner.ClassDeterministic
		}
	}
	return runner.DefaultClassify(err)
}

// DegradedEscalation is the constant Escalation marker on repeats computed
// by the degraded-fidelity fallback. The string is constant — the variable
// cause (which governor trip exhausted the retry budget) lives in the
// cell's Provenance.Degraded — so degraded results stay bit-identical
// across resumes regardless of how the original failure rendered.
const DegradedEscalation = "degraded-fidelity fallback"

// Degradation refusal reasons: each names the invariant that forbids
// trusting a fluid-only result for the cell, mirroring the auto-mode
// escalation taxonomy — but where auto escalates to packet fidelity, a
// degrading cell has already lost packet fidelity, so the cell quarantines.
const (
	degradeUnsupported = "cannot degrade: scheme not fluid-representable"
	degradeCyclic      = "cannot degrade: deadlock-capable scheme on cyclic CBD needs packet fidelity"
	degradeDeadlock    = "cannot degrade: fluid deadlock contradicts analytic deadlock-freedom"
	degradeLoss        = "cannot degrade: fluid loss contradicts analytic losslessness"
	degradeBoundary    = "cannot degrade: occupancy within tolerance band of analytic envelope"
)

// runDegradedRepeat recomputes one repeat on the fluid backend after the
// packet path exhausted its retry budget. The PR 9 differential tolerance
// band is enforced as a runtime invariant from the fluid side: the fallback
// result stands only where the analytic model vouches for the fluid verdict
// on its own — the scheme is provably deadlock-free on this cell, the fluid
// run contradicts no analytic prediction, and the occupancy sits clear of
// the envelope boundary (within the band, only a packet re-run could decide,
// and packet fidelity is exactly what this cell cannot afford).
func runDegradedRepeat(ctx context.Context, topo *topology.Topology, tab *routing.Table, fc FC, cfg SweepConfig, repeatSeed int64) (*ScenarioResult, error) {
	r, pred, err := buildFluidRepeat(topo, tab, fc, cfg, repeatSeed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", degradeUnsupported, err)
	}
	if !pred.DeadlockFree {
		return nil, errors.New(degradeCyclic)
	}
	fres, err := finishFluidRepeat(ctx, r, pred, topo, cfg)
	if err != nil {
		return nil, err
	}
	band := cellBand(topo)
	switch {
	case fres.Deadlocked:
		return nil, errors.New(degradeDeadlock)
	case fres.Drops > 0 && pred.Lossless:
		return nil, errors.New(degradeLoss)
	case pred.MaxOccupancy > 0 && pred.MaxOccupancy-fres.HighWater <= band:
		return nil, errors.New(degradeBoundary)
	}
	fres.Escalation = DegradedEscalation
	return fres, nil
}

// runDegradedCell is the Options.Degrade hook of a sweep: it recomputes the
// whole cell (every repeat) at fluid fidelity with the same seeds the
// packet path used, so a degraded cell is deterministic for its
// (seed, config) like any other. The failure-injection hook deliberately
// does not apply here: it models primary-path host trouble.
func runDegradedCell(ctx context.Context, fc FC, cfg SweepConfig, job int) (*scenarioOutcome, error) {
	topo, tab, prone := GenerateScenario(cfg.K, cfg.FailureProb, cfg.seedOf(job))
	if !prone {
		return nil, nil
	}
	sc := &scenarioOutcome{Repeats: make([]*ScenarioResult, cfg.Repeats)}
	for r := 0; r < cfg.Repeats; r++ {
		res, err := runDegradedRepeat(ctx, topo, tab, fc, cfg, cfg.Seed*1000+int64(job*cfg.Repeats+r))
		if err != nil {
			return nil, fmt.Errorf("repeat %d: %w", r, err)
		}
		sc.Repeats[r] = res
	}
	return sc, nil
}

// CellRetries is one cell's absorbed-retry record, folded from the runner's
// provenance in job order.
type CellRetries struct {
	Job int `json:"job"`
	// Attempts counts primary-path attempts (1 + retries taken).
	Attempts int `json:"attempts"`
	// Retries lists the transient failures absorbed, with their
	// seed-derived backoffs.
	Retries []runner.RetryRecord `json:"retries"`
}

// DegradedCell is one cell whose value came from the degraded-fidelity
// fallback: the job index and the transient cause that exhausted its retry
// budget.
type DegradedCell struct {
	Job   int    `json:"job"`
	Cause string `json:"cause"`
}

// ResilienceSummary renders what the self-healing supervisor did for this
// sweep — salvaged checkpoint lines, absorbed retries, degraded cells — as
// a deterministic, job-ordered report. Empty when the sweep ran clean.
func (s *SweepResult) ResilienceSummary() string {
	if s.Salvage == nil && len(s.Retried) == 0 && len(s.Degraded) == 0 {
		return ""
	}
	var b strings.Builder
	if sv := s.Salvage; sv != nil {
		fmt.Fprintf(&b, "checkpoint salvage: dropped %d corrupt line(s) (%s); the cells were recomputed\n",
			sv.Dropped, sv.Reason)
	}
	for _, r := range s.Retried {
		fmt.Fprintf(&b, "cell %d: %d attempt(s), %d transient failure(s) absorbed:\n",
			r.Job, r.Attempts, len(r.Retries))
		for _, rec := range r.Retries {
			fmt.Fprintf(&b, "  attempt %d (+%v backoff): %s\n", rec.Attempt, rec.Backoff, rec.Err)
		}
	}
	for _, d := range s.Degraded {
		fmt.Fprintf(&b, "cell %d: degraded to fluid fidelity after: %s\n", d.Job, d.Cause)
	}
	return b.String()
}
