package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/gfcsim/gfc/internal/runner"
)

// selfHealSweepConfig is the resume sweep with a retry policy attached: two
// retries with a token backoff base (the recorded backoffs are seed-derived
// regardless of how long the test actually sleeps).
func selfHealSweepConfig() SweepConfig {
	cfg := resumeSweepConfig()
	cfg.Retry = runner.Retry{Max: 2, BackoffBase: time.Microsecond}
	return cfg
}

// injectTransients fails every third cell's first two attempts with a
// transient (host-condition) error, so the retry policy absorbs exactly two
// failures per afflicted cell and the third attempt computes normally.
func injectTransients(job, attempt int) error {
	if job%3 == 1 && attempt <= 2 {
		return fmt.Errorf("injected host stall on cell %d attempt %d: %w",
			job, attempt, context.DeadlineExceeded)
	}
	return nil
}

// TestSweepRetryProvenanceDeterministic pins the self-healing determinism
// contract: a sweep with transient failures absorbed by retries produces a
// bit-identical aggregate AND bit-identical retry provenance at every worker
// count, because attempt counts and backoffs derive from the cell's seed,
// not from scheduling.
func TestSweepRetryProvenanceDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep three times")
	}
	cfg := selfHealSweepConfig()
	cfg.failInject = injectTransients

	var ref *SweepResult
	for _, workers := range []int{1, 4, 16} {
		cfg.Workers = workers
		res, err := RunSweep(context.Background(), PFC, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Failures) != 0 {
			t.Fatalf("workers=%d: retries did not absorb the transients: %s",
				workers, res.FailureSummary())
		}
		if len(res.Retried) == 0 {
			t.Fatalf("workers=%d: no retry provenance recorded", workers)
		}
		for _, r := range res.Retried {
			if r.Job%3 != 1 {
				t.Fatalf("workers=%d: cell %d retried but was never injected", workers, r.Job)
			}
			if r.Attempts != 3 || len(r.Retries) != 2 {
				t.Fatalf("workers=%d: cell %d: %d attempts / %d retries, want 3/2",
					workers, r.Job, r.Attempts, len(r.Retries))
			}
		}
		if ref == nil {
			ref = res
			continue
		}
		if a, b := aggHash(res), aggHash(ref); a != b {
			t.Fatalf("workers=%d aggregate %016x != workers=1 %016x", workers, a, b)
		}
		if !reflect.DeepEqual(res.Retried, ref.Retried) {
			t.Fatalf("workers=%d retry provenance differs:\n%+v\nvs\n%+v",
				workers, res.Retried, ref.Retried)
		}
	}

	// The rendered resilience report is part of the contract too: it must
	// name the absorbed failures with their seed-derived backoffs.
	sum := ref.ResilienceSummary()
	if !strings.Contains(sum, "transient failure(s) absorbed") ||
		!strings.Contains(sum, "injected host stall") {
		t.Fatalf("resilience summary missing retry detail:\n%s", sum)
	}
}

// TestSweepRetryProvenanceSurvivesResume pins that checkpointed cells carry
// their retry provenance across a kill-and-resume: the resumed sweep replays
// completed cells (provenance included) and recomputes the rest, landing on
// the same aggregate and the same Retried records as an uninterrupted run.
func TestSweepRetryProvenanceSurvivesResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep three times")
	}
	cfg := selfHealSweepConfig()
	cfg.failInject = injectTransients
	ref, err := RunSweep(context.Background(), PFC, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Checkpoint = filepath.Join(t.TempDir(), "sweep.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			if fi, err := os.Stat(cfg.Checkpoint); err == nil && fi.Size() > 0 {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	if _, err := RunSweep(ctx, PFC, cfg); err != nil && ctx.Err() == nil {
		t.Fatalf("interrupted sweep failed: %v", err)
	}

	resumed, err := RunSweep(context.Background(), PFC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := aggHash(resumed), aggHash(ref); a != b {
		t.Fatalf("resumed aggregate %016x != uninterrupted %016x", a, b)
	}
	if !reflect.DeepEqual(resumed.Retried, ref.Retried) {
		t.Fatalf("resumed retry provenance differs:\n%+v\nvs\n%+v",
			resumed.Retried, ref.Retried)
	}
}

// TestSweepDegradesToFluid pins the graceful-degradation path end to end: a
// GFC-buffer sweep whose packet path never stops failing transiently falls
// back to the fluid backend once the retry budget is spent, marks every
// degraded cell in provenance, stamps the constant escalation marker on the
// fluid-computed repeats, and stays deterministic across runs.
func TestSweepDegradesToFluid(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the sweep at fluid fidelity")
	}
	cfg := selfHealSweepConfig()
	cfg.Retry.Max = 1
	cfg.Degrade = true
	// The primary path never succeeds: every attempt hits a host stall.
	cfg.failInject = func(job, attempt int) error {
		return fmt.Errorf("injected host stall on cell %d attempt %d: %w",
			job, attempt, context.DeadlineExceeded)
	}

	res, err := RunSweep(context.Background(), GFCBuf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The fallback partitions the sweep: cells the analytic model vouches
	// for degrade to fluid values; cells within the tolerance band of the
	// envelope (where only a packet re-run could decide) refuse and
	// quarantine. Both sides must be accounted for — no cell vanishes.
	if got := len(res.Degraded) + len(res.Failures); got != cfg.Networks {
		t.Fatalf("%d degraded + %d quarantined != %d cells",
			len(res.Degraded), len(res.Failures), cfg.Networks)
	}
	if len(res.Degraded) == 0 {
		t.Fatalf("no cell degraded: %s", res.FailureSummary())
	}
	for _, d := range res.Degraded {
		if !strings.Contains(d.Cause, "injected host stall") {
			t.Fatalf("cell %d degraded cause %q does not name the transient", d.Job, d.Cause)
		}
	}
	for _, f := range res.Failures {
		if !strings.Contains(f.Err, "cannot degrade") {
			t.Fatalf("cell %d quarantined without a degradation refusal: %q", f.Job, f.Err)
		}
	}
	if res.CBDProne == 0 {
		t.Fatal("no degraded cell aggregated (all reported non-prone?)")
	}
	sum := res.ResilienceSummary()
	if !strings.Contains(sum, "degraded to fluid fidelity") {
		t.Fatalf("resilience summary missing degradation:\n%s", sum)
	}

	// Determinism: degraded cells are computed from (seed, config) like any
	// other, and the band refusal is a function of the fluid trajectory, so
	// a second run reproduces aggregate, provenance and refusals exactly.
	res2, err := RunSweep(context.Background(), GFCBuf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := aggHash(res2), aggHash(res); a != b {
		t.Fatalf("degraded sweep not deterministic: %016x != %016x", a, b)
	}
	if !reflect.DeepEqual(res2.Degraded, res.Degraded) {
		t.Fatal("degraded provenance not deterministic")
	}
	if res2.FailureSummary() != res.FailureSummary() {
		t.Fatal("degradation refusals not deterministic")
	}
}

// TestSweepDegradeQuarantinesUnsupported pins the refusal side: CBFC has no
// fluid rendition, so a retry-exhausted CBFC cell cannot degrade — it
// quarantines with both the original transient cause and the degradation
// refusal in its report.
func TestSweepDegradeQuarantinesUnsupported(t *testing.T) {
	cfg := selfHealSweepConfig()
	cfg.Networks = 4
	cfg.Retry.Max = 1
	cfg.Degrade = true
	cfg.failInject = func(job, attempt int) error {
		return fmt.Errorf("injected host stall on cell %d attempt %d: %w",
			job, attempt, context.DeadlineExceeded)
	}

	// The prone cells are the ones that would simulate — only they need a
	// fluid rendition; a non-prone cell's recomputation is the prone check
	// itself, so it degrades to its (empty) value on any scheme.
	prone := map[int]bool{}
	for i := 0; i < cfg.Networks; i++ {
		if _, _, p := GenerateScenario(cfg.K, cfg.FailureProb, cfg.seedOf(i)); p {
			prone[i] = true
		}
	}
	if len(prone) == 0 {
		t.Fatal("test sweep has no CBD-prone cell")
	}

	res, err := RunSweep(context.Background(), CBFC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != len(prone) {
		t.Fatalf("%d cells quarantined, want the %d prone ones: %s",
			len(res.Failures), len(prone), res.FailureSummary())
	}
	for _, f := range res.Failures {
		if !prone[f.Job] {
			t.Fatalf("non-prone cell %d quarantined: %q", f.Job, f.Err)
		}
		if !strings.Contains(f.Err, "injected host stall") {
			t.Fatalf("cell %d failure %q lost the original cause", f.Job, f.Err)
		}
		if !strings.Contains(f.Err, "not fluid-representable") {
			t.Fatalf("cell %d failure %q does not name the degradation refusal", f.Job, f.Err)
		}
	}
	for _, d := range res.Degraded {
		if prone[d.Job] {
			t.Fatalf("prone CBFC cell %d claimed a degraded value", d.Job)
		}
	}
}

// TestSweepKeyDegradeDistinct pins that degrading changes the checkpoint
// identity: degraded cells hold fluid-computed values, so a degrading sweep
// must never replay a non-degrading sweep's checkpoint (and vice versa).
func TestSweepKeyDegradeDistinct(t *testing.T) {
	cfg := selfHealSweepConfig()
	plain := SweepKey(GFCBuf, cfg)
	cfg.Degrade = true
	degraded := SweepKey(GFCBuf, cfg)
	if plain == degraded {
		t.Fatal("SweepKey ignores Degrade")
	}
	if !strings.Contains(degraded, "degrade=1") {
		t.Fatalf("degrading key %q does not mark the fallback", degraded)
	}
	// Retry, by contrast, is a runtime knob: retrying recomputes the same
	// deterministic value, so it must NOT split the checkpoint namespace.
	cfg.Retry.Max = 99
	if got := SweepKey(GFCBuf, cfg); got != degraded {
		t.Fatalf("SweepKey depends on the retry policy: %q != %q", got, degraded)
	}
}
