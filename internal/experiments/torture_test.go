package experiments

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// Crash torture: the checkpoint contract under SIGKILL. Unlike the
// kill-and-resume tests (context cancellation — a graceful stop that never
// tears a write), this harness re-execs the test binary as a sweep child and
// kills it with SIGKILL at a randomized point, so the process can die inside
// Store.Record's write(2). Each round then corrupts the checkpoint tail a
// different way before resuming, and the resumed sweep must still produce a
// byte-identical aggregate to an uninterrupted run — the salvage path
// recomputes whatever the corruption ate.

const (
	tortureChildEnv = "GFC_TORTURE_CHILD"
	tortureCkptEnv  = "GFC_TORTURE_CKPT"
)

// TestTortureChild is the re-exec entry point, not a test: the parent runs
// the binary with -test.run pinning this function and the env vars set. It
// runs the torture sweep until completion or SIGKILL.
func TestTortureChild(t *testing.T) {
	if os.Getenv(tortureChildEnv) != "1" {
		t.Skip("re-exec helper; only runs as a torture subprocess")
	}
	cfg := resumeSweepConfig()
	cfg.Checkpoint = os.Getenv(tortureCkptEnv)
	if _, err := RunSweep(context.Background(), PFC, cfg); err != nil {
		t.Fatal(err)
	}
}

// corruptTail mutates a checkpoint that survived a SIGKILL, exercising one
// salvage path per round: a torn final line (as if the kill landed mid-
// write), a bit flip inside a committed line (media corruption), and a
// garbage append (another process scribbled on the file).
func corruptTail(t *testing.T, path string, round int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	switch round % 3 {
	case 0: // torn write: cut the final line mid-entry
		cut := len(data) - 1 - len(data)/10
		if cut < 1 {
			cut = 1
		}
		data = data[:cut]
	case 1: // bit flip in the last committed line
		if i := bytes.LastIndexByte(data[:len(data)-1], '\n'); i >= 0 && i+2 < len(data) {
			data[i+2] ^= 0x20
		}
	case 2: // garbage append
		data = append(data, "\x00\xfe not a checkpoint line\n"...)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCrashTortureResume is the torture loop: SIGKILL the sweep at three
// different progress points, corrupt the checkpoint tail three different
// ways, and require every resume to finish with the uninterrupted
// aggregate, bit for bit.
func TestCrashTortureResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary under SIGKILL three times")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeSweepConfig()
	ref, err := RunSweep(context.Background(), PFC, cfg)
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 3; round++ {
		ckpt := filepath.Join(t.TempDir(), "torture.ckpt")
		cmd := exec.Command(exe, "-test.run", "TestTortureChild$")
		cmd.Env = append(os.Environ(), tortureChildEnv+"=1", tortureCkptEnv+"="+ckpt)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}

		// Kill once the checkpoint shows round-dependent progress, so the
		// three kills land at different cells (and, with write(2) taking
		// microseconds against a millisecond poll, sometimes mid-write —
		// the torn-tail round reproduces that case deterministically).
		minSize := int64(1 + round*200)
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if fi, err := os.Stat(ckpt); err == nil && fi.Size() >= minSize {
				break
			}
			time.Sleep(time.Millisecond)
		}
		_ = cmd.Process.Kill() // SIGKILL: no deferred cleanup, no flush
		_ = cmd.Wait()

		if _, err := os.Stat(ckpt); err != nil {
			// The child died before opening the store (or outran the kill
			// with the file already complete — then this Stat succeeds).
			t.Fatalf("round %d: no checkpoint to torture: %v", round, err)
		}
		corruptTail(t, ckpt, round)

		cfg.Checkpoint = ckpt
		res, err := RunSweep(context.Background(), PFC, cfg)
		if err != nil {
			t.Fatalf("round %d: resume failed: %v", round, err)
		}
		if len(res.Failures) != 0 {
			t.Fatalf("round %d: resume quarantined cells: %s", round, res.FailureSummary())
		}
		if a, b := aggHash(res), aggHash(ref); a != b {
			t.Fatalf("round %d: resumed aggregate %016x != uninterrupted %016x", round, a, b)
		}
		if sv := res.Salvage; sv != nil {
			t.Logf("round %d: salvage dropped %d line(s): %s", round, sv.Dropped, sv.Reason)
		}
	}
}
