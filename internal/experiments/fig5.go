package experiments

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/scenario"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// Fig5Result holds the rate and queue evolutions of the §4.1 illustration.
type Fig5Result struct {
	FC FC
	// Queue is the congested ingress queue length over time (bytes).
	Queue *stats.Series
	// Rate is H1's input rate over time (bits/s), measured as arrival
	// bytes at the switch in 25 µs bins.
	Rate *stats.Series
	// SteadyQueue is the mean queue over the final quarter of the run.
	SteadyQueue units.Size
	Drops       int64
}

// RunFig5 reproduces Figure 5: a 2-to-1 congestion scenario (two hosts into
// one) with C = 10 Gb/s, τ = 25 µs, Bm = 100 KB, B0 = 50 KB; PFC runs with
// XOFF = 80 KB, XON = 77 KB. Under PFC the queue saws between XON and XOFF
// and the input rate alternates 0 ↔ line rate; under conceptual GFC the
// queue converges to B_s = 75 KB and the rate to the 5 Gb/s draining rate.
// fc must be PFC or GFCConceptual (pass GFCBuf for the practical variant's
// behaviour under the same scenario).
func RunFig5(fc FC, duration units.Time) (*Fig5Result, error) {
	if duration == 0 {
		duration = 20 * units.Millisecond
	}
	scheme := scenario.SchemeSpec{FC: fc}
	switch fc {
	case PFC:
		scheme.Params = scenario.FCParams{XOFF: 80 * units.KB, XON: 77 * units.KB}
	case GFCBuf:
		scheme.Params = scenario.FCParams{B1: 60 * units.KB, Bm: 110 * units.KB}
	default:
		// The figure's idealised design: continuous feedback with
		// B0 = 50 KB, Bm = 100 KB regardless of the label asked for.
		scheme.FC = GFCConceptual
		scheme.Params = scenario.FCParams{B0: 50 * units.KB, Bm: 100 * units.KB}
	}
	spec := scenario.Spec{
		Name:     "fig5-two-to-one",
		Topology: scenario.TopologySpec{Builder: "two-to-one"},
		Routing:  scenario.RoutingSpec{Policy: "spf"},
		Workload: scenario.WorkloadSpec{Flows: []scenario.FlowSpec{
			{ID: 1, Src: "H1", Dst: "H3"},
			{ID: 2, Src: "H2", Dst: "H3"},
		}},
		Scheme: scheme,
		Sim: scenario.SimSpec{
			BufferBytes: 120 * units.KB, // B ≥ Bm, a little slack above the mapping
			TauNs:       25 * units.Microsecond,
			// Make the actual feedback latency match the illustration's
			// τ = 25 µs (message wire time + 1 µs propagation +
			// ProcDelay).
			ProcDelayNs: 23950 * units.Nanosecond,
		},
		Run: scenario.RunSpec{DurationNs: duration, Analytic: true},
	}

	res := &Fig5Result{FC: fc, Queue: &stats.Series{}, Rate: &stats.Series{}}
	arrivals := stats.NewBinCounter(25 * units.Microsecond)
	sim, err := scenario.Build(spec, &scenario.Overrides{
		Trace: func(topo *topology.Topology) *netsim.Trace {
			s1 := topo.MustLookup("S1")
			h1 := topo.MustLookup("H1")
			return &netsim.Trace{
				OnQueue: func(t units.Time, node topology.NodeID, port, _ int, q units.Size) {
					// Monitor the ingress from H1 (port 0 on S1).
					if node == s1 && port == 0 {
						res.Queue.Append(t, float64(q))
					}
				},
				OnArrival: func(t units.Time, node topology.NodeID, pkt *netsim.Packet) {
					if node == s1 && pkt.Flow.Src == h1 {
						arrivals.Add(t, pkt.Size)
					}
				},
			}
		},
	})
	if err != nil {
		return nil, err
	}
	net := sim.Net
	net.Run(duration)
	for i, r := range arrivals.Rates() {
		res.Rate.Append(units.Time(i)*arrivals.Width, float64(r))
	}
	res.SteadyQueue = units.Size(res.Queue.MeanAfter(duration * 3 / 4))
	res.Drops = net.Drops()
	if err := sim.CheckAnalytic(); err != nil {
		return res, fmt.Errorf("fig5 %v: %w", fc, err)
	}
	return res, nil
}
