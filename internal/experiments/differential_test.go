package experiments

import (
	"testing"

	"github.com/gfcsim/gfc/internal/core"
	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/flowcontrol"
	"github.com/gfcsim/gfc/internal/fluid"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// The differential scenario: a chain H1 —10G— S1 —10G— S2 —5G— H2. The 5G
// drain link makes the S2←S1 ingress the single controlled queue, which is
// exactly what internal/fluid integrates: a GFC-mapped arrival rate against
// a constant drain. The packet simulation and the fluid model are
// independent implementations of the same dynamics, so their steady-state
// occupancies must agree to within the discretisation error — a band that
// scales with the MTU (packet quantisation) plus the rate mismatch accrued
// over the feedback-latency uncertainty.
type diffCase struct {
	name string
	mtu  units.Size
	// extraDelay is a deterministic fault-injected feedback delay; the
	// fluid model receives the same delay as extra Tau.
	extraDelay units.Time
}

// diffNetsimSteady runs the packet simulation and returns the steady
// S2←S1 ingress occupancy (mean of the final quarter of 20 ms).
func diffNetsimSteady(t *testing.T, c diffCase, b1, bm units.Size) units.Size {
	t.Helper()
	topo := topology.New("diff-chain")
	h1 := topo.AddHost("H1")
	s1 := topo.AddSwitch("S1")
	s2 := topo.AddSwitch("S2")
	h2 := topo.AddHost("H2")
	lp := topology.DefaultLinkParams()
	topo.AddLink(h1, s1, lp.Capacity, lp.Delay)
	topo.AddLink(s1, s2, lp.Capacity, lp.Delay)
	topo.AddLink(s2, h2, lp.Capacity/2, lp.Delay) // the 5G drain

	cfg := netsim.Config{
		MTU:        c.mtu,
		BufferSize: 1000 * units.KB,
		Tau:        90 * units.Microsecond,
		FlowControl: flowcontrol.NewGFCBuffer(flowcontrol.GFCBufferConfig{
			B1: b1, Bm: bm,
		}),
	}
	if c.extraDelay > 0 {
		spec := &faults.Spec{
			Name: "diff-delay",
			Links: []faults.LinkFault{{
				Link:     "S1-S2",
				Feedback: []faults.FeedbackFault{{Delay: c.extraDelay}},
			}},
		}
		plan, err := spec.Compile(topo)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = plan.NewInjector(1)
	}

	queue := &stats.Series{}
	ingressPort := topo.LinkBetween(s1, s2).PortOn(s2)
	cfg.Trace = &netsim.Trace{
		OnQueue: func(at units.Time, node topology.NodeID, port, _ int, q units.Size) {
			if node == s2 && port == ingressPort {
				queue.Append(at, float64(q))
			}
		},
	}
	n, err := netsim.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := routing.NewSPF(topo)
	path, err := tab.Path(h1, h2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AddFlow(&netsim.Flow{ID: 1, Src: h1, Dst: h2, Path: path}, 0); err != nil {
		t.Fatal(err)
	}
	const horizon = 20 * units.Millisecond
	n.Run(horizon)
	if n.Drops() != 0 {
		t.Fatalf("differential chain dropped %d packets", n.Drops())
	}
	return units.Size(queue.MeanAfter(horizon * 3 / 4))
}

// diffFluidSteady integrates the matching fluid model. Tau is the packet
// simulation's effective feedback latency: feedback processing (3 µs
// default) plus propagation (1 µs) plus the pipeline delays the fluid model
// elides — serialisation of the data packets in flight on both sides of the
// crossing and the rate-limiter's application granularity — measured at
// ≈13 µs end to end on this chain. Injected feedback delay adds directly.
func diffFluidSteady(t *testing.T, c diffCase, b1, bm units.Size) units.Size {
	t.Helper()
	table, err := core.NewStageTableRatio(10*units.Gbps, bm, b1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fluid.Run(fluid.Config{
		Mapping: fluid.Staged{T: table},
		Drain:   fluid.ConstantDrain(5 * units.Gbps),
		Tau:     13*units.Microsecond + c.extraDelay,
		Step:    100 * units.Nanosecond,
		Horizon: 20 * units.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Steady
}

// TestDifferentialNetsimVsFluid cross-validates the packet simulation
// against the fluid model on the bottleneck chain, clean and under an
// injected deterministic feedback delay. The tolerance tightens with the
// MTU: shrinking packets shrinks the quantisation error, so a finer MTU
// must bring the two models closer.
func TestDifferentialNetsimVsFluid(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four 20 ms chain simulations")
	}
	const (
		b1 = 750 * units.KB
		bm = 994 * units.KB // 1000 KB buffer − 4 × 1500 B (factory default)
	)
	cases := []diffCase{
		{name: "clean-mtu1500", mtu: 1500 * units.Byte},
		{name: "clean-mtu500", mtu: 500 * units.Byte},
		{name: "delayed-20us", mtu: 1500 * units.Byte, extraDelay: 20 * units.Microsecond},
		{name: "delayed-50us", mtu: 1500 * units.Byte, extraDelay: 50 * units.Microsecond},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sim := diffNetsimSteady(t, c, b1, bm)
			fl := diffFluidSteady(t, c, b1, bm)
			diff := sim - fl
			if diff < 0 {
				diff = -diff
			}
			// Band: the backlog the 5 Gb/s rate mismatch accrues over the
			// residual feedback-latency uncertainty (±3 µs around the
			// measured effective Tau), plus packet quantisation — so the
			// band, and the agreement it demands, tightens with the MTU.
			band := units.BytesIn(5*units.Gbps, 3*units.Microsecond) + 4*c.mtu
			t.Logf("steady occupancy: netsim %v, fluid %v, diff %v (band %v)", sim, fl, diff, band)
			if diff > band {
				t.Errorf("netsim %v vs fluid %v: |diff| %v exceeds band %v", sim, fl, diff, band)
			}
		})
	}
}
