package experiments

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/scenario"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/units"
)

// OverheadResult is the Figure 19 measurement: the distribution of per-port
// feedback-message bandwidth under buffer-based GFC, counted in 500 µs bins
// as a fraction of link capacity. The paper reports mean 0.21%, p99 < 0.4%,
// max 0.49%.
type OverheadResult struct {
	// CDF holds one sample per (port, bin): feedback bandwidth fraction.
	CDF *stats.CDF
	// Mean, P99 and Max are fractions of link capacity.
	Mean, P99, Max float64
	Drops          int64
}

// OverheadConfig parameterises RunOverhead.
type OverheadConfig struct {
	K        int // fat-tree arity (paper: 16; default 8 for CI budgets)
	Seed     int64
	Duration units.Time
	FC       FC // default GFCBuf (the paper's subject); CBFC for contrast
}

// RunOverhead measures feedback bandwidth on a healthy fat-tree under the
// random enterprise workload.
func RunOverhead(cfg OverheadConfig) (*OverheadResult, error) {
	if cfg.K == 0 {
		cfg.K = 8
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * units.Millisecond
	}
	if cfg.FC == "" {
		cfg.FC = GFCBuf
	}
	spec := scenario.Spec{
		Name:     "fig19-overhead",
		Topology: scenario.TopologySpec{Builder: "fat-tree", K: cfg.K},
		Routing:  scenario.RoutingSpec{Policy: "spf"},
		Workload: scenario.WorkloadSpec{Generator: &scenario.GeneratorSpec{Dist: "enterprise", Seed: cfg.Seed}},
		Scheme:   scenario.SchemeSpec{FC: cfg.FC, Preset: "sim"},
		Run:      scenario.RunSpec{DurationNs: cfg.Duration, Analytic: true},
	}
	// Per-channel feedback wire bytes come straight off the metrics
	// registry: the run is stepped one bin at a time and each channel's
	// cumulative FeedbackWire counter is differenced per step.
	const bin = 500 * units.Microsecond
	reg := metrics.New(metrics.Options{})
	sim, err := scenario.Build(spec, &scenario.Overrides{Metrics: reg})
	if err != nil {
		return nil, err
	}
	net := sim.Net
	nBins := int(cfg.Duration / bin)
	nc := reg.NumChannels()
	prev := make([]units.Size, nc)
	binWire := make([][]units.Size, nc)
	for c := range binWire {
		binWire[c] = make([]units.Size, nBins)
	}
	for b := 0; b < nBins; b++ {
		net.Run(bin * units.Time(b+1))
		for c := 0; c < nc; c++ {
			w := reg.Counter(c).FeedbackWire
			binWire[c][b] = w - prev[c]
			prev[c] = w
		}
	}
	net.Run(cfg.Duration) // tail when Duration is not a whole bin count

	res := &OverheadResult{CDF: &stats.CDF{}, Drops: net.Drops()}
	cap10G := float64(10 * units.Gbps)
	for c := 0; c < nc; c++ {
		// As in the paper's measurement, only channels that carried any
		// feedback contribute samples (idle ports would swamp the CDF
		// with zeros).
		if prev[c] == 0 {
			continue
		}
		for _, w := range binWire[c] {
			rate := units.RateOf(w, bin)
			res.CDF.Add(float64(rate) / cap10G)
		}
	}
	res.Mean = res.CDF.Mean()
	res.P99 = res.CDF.Quantile(0.99)
	res.Max = res.CDF.Max()
	if err := sim.CheckAnalytic(); err != nil {
		return res, fmt.Errorf("fig19 %v: %w", cfg.FC, err)
	}
	return res, nil
}
