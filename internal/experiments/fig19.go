package experiments

import (
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
	"github.com/gfcsim/gfc/internal/workload"
)

// OverheadResult is the Figure 19 measurement: the distribution of per-port
// feedback-message bandwidth under buffer-based GFC, counted in 500 µs bins
// as a fraction of link capacity. The paper reports mean 0.21%, p99 < 0.4%,
// max 0.49%.
type OverheadResult struct {
	// CDF holds one sample per (port, bin): feedback bandwidth fraction.
	CDF *stats.CDF
	// Mean, P99 and Max are fractions of link capacity.
	Mean, P99, Max float64
	Drops          int64
}

// OverheadConfig parameterises RunOverhead.
type OverheadConfig struct {
	K        int // fat-tree arity (paper: 16; default 8 for CI budgets)
	Seed     int64
	Duration units.Time
	FC       FC // default GFCBuf (the paper's subject); CBFC for contrast
}

// RunOverhead measures feedback bandwidth on a healthy fat-tree under the
// random enterprise workload.
func RunOverhead(cfg OverheadConfig) (*OverheadResult, error) {
	if cfg.K == 0 {
		cfg.K = 8
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * units.Millisecond
	}
	if cfg.FC == "" {
		cfg.FC = GFCBuf
	}
	topo := topology.FatTree(cfg.K, topology.DefaultLinkParams())
	tab := routing.NewSPF(topo)
	simCfg, fp := SimParams()
	simCfg.FlowControl = fp.Factory(cfg.FC)

	const bin = 500 * units.Microsecond
	// Per receiving channel (keyed by upstream node and downstream
	// node), count feedback bytes per bin.
	type chanKey struct{ from, to topology.NodeID }
	counters := make(map[chanKey]*stats.BinCounter)
	simCfg.Trace = &netsim.Trace{
		OnFeedback: func(t units.Time, from, to topology.NodeID, _ int, wire units.Size) {
			k := chanKey{from, to}
			c := counters[k]
			if c == nil {
				c = stats.NewBinCounter(bin)
				counters[k] = c
			}
			c.Add(t, wire)
		},
	}
	net, err := netsim.New(topo, simCfg)
	if err != nil {
		return nil, err
	}
	gen := workload.NewGenerator(net, tab, workload.Enterprise(), workload.EdgeRacks(topo), cfg.Seed)
	if err := gen.Start(); err != nil {
		return nil, err
	}
	net.Run(cfg.Duration)

	res := &OverheadResult{CDF: &stats.CDF{}, Drops: net.Drops()}
	nBins := int(cfg.Duration / bin)
	cap10G := float64(10 * units.Gbps)
	for _, c := range counters {
		bins := c.Bins()
		for i := 0; i < nBins; i++ {
			var rate units.Rate
			if i < len(bins) {
				rate = units.RateOf(bins[i], bin)
			}
			res.CDF.Add(float64(rate) / cap10G)
		}
	}
	res.Mean = res.CDF.Mean()
	res.P99 = res.CDF.Quantile(0.99)
	res.Max = res.CDF.Max()
	return res, nil
}
