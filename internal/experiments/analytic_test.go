package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/gfcsim/gfc/internal/units"
)

// TestSweepConfigValidate pins the sweep-parameter gate: every rejection is
// descriptive, and the boundary values on both sides land where documented.
func TestSweepConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*SweepConfig)
		want string // "" = valid
	}{
		{"default", func(cfg *SweepConfig) {}, ""},
		{"k floor", func(cfg *SweepConfig) { cfg.K = 4 }, ""},
		{"k ceiling", func(cfg *SweepConfig) { cfg.K = 32 }, ""},
		{"k below census", func(cfg *SweepConfig) { cfg.K = 2 }, "fat-tree census"},
		{"k odd", func(cfg *SweepConfig) { cfg.K = 5 }, "fat-tree census"},
		{"k above census", func(cfg *SweepConfig) { cfg.K = 34 }, "fat-tree census"},
		{"k zero", func(cfg *SweepConfig) { cfg.K = 0 }, "fat-tree census"},
		{"no networks", func(cfg *SweepConfig) { cfg.Networks = 0 }, "at least one failure scenario"},
		{"negative networks", func(cfg *SweepConfig) { cfg.Networks = -3 }, "at least one failure scenario"},
		{"no repeats", func(cfg *SweepConfig) { cfg.Repeats = 0 }, "at least one workload repetition"},
		{"failure prob floor", func(cfg *SweepConfig) { cfg.FailureProb = 0 }, ""},
		{"failure prob ceiling", func(cfg *SweepConfig) { cfg.FailureProb = 1 }, ""},
		{"failure prob negative", func(cfg *SweepConfig) { cfg.FailureProb = -0.01 }, "outside [0, 1]"},
		{"failure prob above one", func(cfg *SweepConfig) { cfg.FailureProb = 1.01 }, "outside [0, 1]"},
		{"no horizon", func(cfg *SweepConfig) { cfg.Duration = 0 }, "positive run horizon"},
		{"negative horizon", func(cfg *SweepConfig) { cfg.Duration = -units.Millisecond }, "positive run horizon"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultSweep(8)
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// RunSweep refuses an invalid config up front rather than mid-flight.
	bad := DefaultSweep(4)
	bad.Repeats = 0
	if _, err := RunSweep(context.Background(), PFC, bad); err == nil ||
		!strings.Contains(err.Error(), "workload repetition") {
		t.Fatalf("RunSweep accepted an invalid config: %v", err)
	}
}

// TestSweepKeyAnalyticSuffix pins checkpoint-key separation: enabling the
// analytic checker must never replay results recorded without it.
func TestSweepKeyAnalyticSuffix(t *testing.T) {
	cfg := resumeSweepConfig()
	plain := SweepKey(PFC, cfg)
	cfg.Analytic = true
	checked := SweepKey(PFC, cfg)
	if plain == checked {
		t.Fatal("Analytic does not change the sweep key")
	}
	if !strings.HasSuffix(checked, "/analytic=1") {
		t.Fatalf("analytic key %q missing the /analytic=1 suffix", checked)
	}
	if strings.Contains(plain, "analytic") {
		t.Fatalf("legacy key %q mentions analytic (old checkpoints would invalidate)", plain)
	}
}

// analyticHash folds the per-repeat checker participation into the aggregate
// hash, so resume/worker comparisons cover the analytic verdicts too.
func analyticHash(res *SweepResult) uint64 {
	g := newHasher()
	g.mix(aggHash(res), uint64(res.AnalyticChecked))
	return g.sum()
}

// TestAnalyticSweepKillAndResume is the ISSUE's k=4 CI slice of the
// full-scale Table 1 contract: a checker-enforced sweep killed mid-flight
// and resumed from its checkpoint reproduces the uninterrupted aggregate bit
// for bit, including how many repeats the checker validated.
func TestAnalyticSweepKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice plus an interrupted pass")
	}
	cfg := resumeSweepConfig()
	cfg.Analytic = true
	ref, err := RunSweep(context.Background(), PFC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Failures) != 0 {
		t.Fatalf("checker quarantined cells on the reference run: %s", ref.FailureSummary())
	}
	if ref.AnalyticChecked == 0 {
		t.Fatal("analytic sweep validated no repeats")
	}
	// Repeats = 1, and only CBD-prone cells simulate: every simulated
	// repeat must have carried the checker.
	if ref.AnalyticChecked != ref.CBDProne {
		t.Fatalf("AnalyticChecked = %d, want one per CBD-prone cell (%d)",
			ref.AnalyticChecked, ref.CBDProne)
	}

	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	cfg.Checkpoint = ckpt
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			if fi, err := os.Stat(ckpt); err == nil && fi.Size() > 0 {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	partial, err := RunSweep(ctx, PFC, cfg)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep failed: %v", err)
	}
	if err == nil {
		t.Log("sweep outran the kill; resume degenerates to pure replay")
	}
	if partial == nil {
		t.Fatal("interrupted sweep returned no partial aggregate")
	}

	resumed, err := RunSweep(context.Background(), PFC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Failures) != 0 {
		t.Fatalf("resumed sweep quarantined cells: %s", resumed.FailureSummary())
	}
	if a, b := analyticHash(resumed), analyticHash(ref); a != b {
		t.Fatalf("resumed aggregate %016x != uninterrupted %016x (AnalyticChecked %d vs %d)",
			a, b, resumed.AnalyticChecked, ref.AnalyticChecked)
	}
}

// TestAnalyticVerdictWorkerIndependence pins that the per-cell checker
// verdicts — like the aggregates they ride on — do not depend on sweep
// parallelism.
func TestAnalyticVerdictWorkerIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep at two worker counts")
	}
	cfg := resumeSweepConfig()
	cfg.Networks = 8
	cfg.Analytic = true
	var hashes []uint64
	var checked []int
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		res, err := RunSweep(context.Background(), PFC, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Failures) != 0 {
			t.Fatalf("workers=%d quarantined cells: %s", workers, res.FailureSummary())
		}
		hashes = append(hashes, analyticHash(res))
		checked = append(checked, res.AnalyticChecked)
	}
	if hashes[0] != hashes[1] {
		t.Fatalf("aggregate depends on worker count: %016x (w=1) != %016x (w=4); AnalyticChecked %d vs %d",
			hashes[0], hashes[1], checked[0], checked[1])
	}
}
