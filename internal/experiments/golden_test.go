package experiments

import (
	"context"

	"encoding/json"
	"flag"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/gfcsim/gfc/internal/deadlock"
	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/units"
)

// update rewrites testdata/golden_hashes.json with the hashes of the
// current build:
//
//	go test ./internal/experiments -run TestGolden -update
//
// Do this only after verifying that a behaviour change is intended; the
// goldens exist to catch silent drift in the simulation core.
var update = flag.Bool("update", false, "rewrite golden trace hashes")

const goldenPath = "testdata/golden_hashes.json"

// hasher folds run results into an FNV-1a hash. Everything is reduced to
// uint64 words (floats via their IEEE-754 bits), so two runs hash equal iff
// they produced bit-identical results.
type hasher struct{ h hash.Hash64 }

func newHasher() *hasher { return &hasher{h: fnv.New64a()} }

func (g *hasher) mix(vs ...uint64) {
	var buf [8]byte
	for _, v := range vs {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		g.h.Write(buf[:])
	}
}

func (g *hasher) float(f float64) { g.mix(math.Float64bits(f)) }

func (g *hasher) series(s *stats.Series) {
	g.mix(uint64(len(s.T)))
	for i := range s.T {
		g.mix(uint64(s.T[i]))
		g.float(s.V[i])
	}
}

func (g *hasher) sum() uint64 { return g.h.Sum64() }

func (g *hasher) ring(res *RingResult) {
	g.series(res.Queue)
	g.series(res.Rate)
	g.mix(uint64(res.SteadyQueue), uint64(res.SteadyRate), uint64(res.Drops),
		uint64(res.Delivered), uint64(res.MinFlow))
	g.mix(uint64(res.DeadlockAt), uint64(res.DeadlockKind))
	if res.Deadlocked {
		g.mix(1)
	}
	g.mix(uint64(res.FaultStats.FeedbackDropped), uint64(res.FaultStats.FeedbackDelayed))
}

func (g *hasher) cell(c FaultCell) {
	g.mix(uint64(c.DeadlockAt), uint64(c.DeadlockKind), uint64(c.DCFITAt))
	if c.Deadlocked {
		g.mix(1)
	}
	if c.DCFITDeadlocked {
		g.mix(2)
	}
	g.mix(uint64(c.Drops), uint64(c.Violations), uint64(c.FaultsInjected),
		uint64(c.FeedbackDropped), uint64(c.FeedbackDelayed))
	g.mix(uint64(c.Delivered), uint64(c.MinFlow), uint64(c.SteadyRate))
}

// goldenRuns maps each golden name to the run it hashes. Durations are
// trimmed for CI; what matters is that every subsystem on the hashed path —
// engine ordering, flow control, scheduling, fault injection — reproduces
// the exact event sequence.
var goldenRuns = map[string]func(t *testing.T) uint64{
	"fig9-ring-gfcbuf": func(t *testing.T) uint64 {
		res, err := RunRing(RingConfig{FC: GFCBuf, Duration: 30 * units.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		g := newHasher()
		g.ring(res)
		return g.sum()
	},
	"fig9-ring-faulted": func(t *testing.T) uint64 {
		// The canonical faulted scenario: resume-loss on the fig9 ring,
		// PFC (wedges) and buffer-based GFC with refresh (rides it out).
		spec, err := faults.Preset("resume-loss")
		if err != nil {
			t.Fatal(err)
		}
		plan, err := spec.Compile(RingTopology(1))
		if err != nil {
			t.Fatal(err)
		}
		g := newHasher()
		for _, fc := range []FC{PFC, GFCBuf} {
			cfg := RingConfig{
				FC: fc, Duration: 30 * units.Millisecond,
				Faults: plan, FaultSeed: 1,
			}
			if fc == GFCBuf {
				cfg.Refresh = 90 * units.Microsecond
			}
			res, err := RunRing(cfg)
			if err != nil {
				t.Fatal(err)
			}
			g.ring(res)
		}
		return g.sum()
	},
	"fig12-casestudy-pfc": func(t *testing.T) uint64 {
		res, _, err := RunCaseStudy(CaseStudyConfig{
			FC: PFC, Duration: 30 * units.Millisecond, WithCross: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := newHasher()
		for _, r := range res.FlowRates {
			g.mix(uint64(r))
		}
		g.mix(uint64(res.DeadlockAt), uint64(res.Drops))
		if res.Deadlocked {
			g.mix(1)
		}
		for _, r := range res.Throughput.Rates() {
			g.mix(uint64(r))
		}
		return g.sum()
	},
	"fig19-overhead": func(t *testing.T) uint64 {
		res, err := RunOverhead(OverheadConfig{
			K: 4, Seed: 1, Duration: 5 * units.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := newHasher()
		g.mix(uint64(res.CDF.Len()), uint64(res.Drops))
		g.float(res.Mean)
		g.float(res.P99)
		g.float(res.Max)
		return g.sum()
	},
	"table1-sweep-pfc": func(t *testing.T) uint64 {
		return sweepHash(t, 4)
	},
	"faultmatrix-race": func(t *testing.T) uint64 {
		// The scheme-race slice of the fault matrix: the on/off schemes
		// (PFC and BFC) under the two fault presets that break them, with
		// both detectors' verdicts folded into the hash — pins BFC's
		// per-queue pause plumbing and DCFIT's edge tracking end to end.
		cells, err := RunFaultMatrix(FaultMatrixConfig{
			Schemes:   []FC{PFC, BFC},
			Scenarios: []string{"resume-loss", "feedback-loss"},
			Duration:  30 * units.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := newHasher()
		for _, c := range cells {
			g.cell(c)
		}
		return g.sum()
	},
}

// sweepHash runs a small PFC failure sweep with the given worker count and
// hashes its aggregate. Used both as a golden and as the worker-count
// independence check.
func sweepHash(t *testing.T, workers int) uint64 {
	cfg := DefaultSweep(4)
	cfg.Networks = 30
	cfg.Repeats = 1
	cfg.Duration = 10 * units.Millisecond
	cfg.Workers = workers
	res, err := RunSweep(context.Background(), PFC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := newHasher()
	g.mix(uint64(res.K), uint64(res.CBDProne), uint64(res.DeadlockCases), uint64(res.Drops))
	g.mix(uint64(res.Bandwidth.Len()), uint64(res.Slowdown.Len()))
	g.float(res.Bandwidth.Mean())
	g.float(res.Bandwidth.Max())
	g.float(res.Slowdown.Mean())
	return g.sum()
}

// TestGoldenTraces regression-pins the end-to-end event streams of the
// paper's key experiments (fig9, fig12, fig19, table1) plus the canonical
// faulted scenario against recorded FNV-1a hashes. A mismatch means the
// simulation produced different results than the commit that recorded the
// goldens — intended changes re-record with -update.
func TestGoldenTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five experiments (~10 s)")
	}
	want := map[string]string{}
	data, err := os.ReadFile(goldenPath)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatalf("corrupt %s: %v", goldenPath, err)
		}
	case os.IsNotExist(err) && *update:
		// First recording.
	default:
		t.Fatalf("reading %s: %v (run with -update to record)", goldenPath, err)
	}

	got := map[string]string{}
	for name, run := range goldenRuns {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			h := fmt.Sprintf("%016x", run(t))
			got[name] = h
			if *update {
				return
			}
			w, ok := want[name]
			if !ok {
				t.Fatalf("no golden recorded for %s (run with -update)", name)
			}
			if h != w {
				t.Errorf("trace hash %s, golden %s — simulation behaviour changed; "+
					"re-record with -update if intended", h, w)
			}
		})
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d golden hashes to %s", len(got), goldenPath)
	}
}

// TestSweepWorkerIndependence pins the share-nothing parallelism contract on
// the table1 sweep: the aggregate must be bit-identical for every worker
// count (each scenario is seeded from its index and folded in order).
func TestSweepWorkerIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice")
	}
	if a, b := sweepHash(t, 1), sweepHash(t, 4); a != b {
		t.Fatalf("sweep hash differs across worker counts: %016x (1 worker) vs %016x (4)", a, b)
	}
}

// TestFaultedRingDeterminism replays the canonical faulted scenario twice
// and demands bit-identical traces: every random draw of the injector comes
// from its private, seeded source, in event order.
func TestFaultedRingDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the faulted ring twice")
	}
	run := goldenRuns["fig9-ring-faulted"]
	if a, b := run(t), run(t); a != b {
		t.Fatalf("faulted ring not deterministic: %016x vs %016x", a, b)
	}
}

// TestGoldenKindStability pins the enum values baked into recorded hashes:
// reordering deadlock.Kind would silently shift every golden.
func TestGoldenKindStability(t *testing.T) {
	if deadlock.CircularWait != 0 || deadlock.WedgedChannel != 1 {
		t.Fatal("deadlock.Kind values changed; goldens must be re-recorded with -update")
	}
}
