package experiments

import (
	"testing"

	"github.com/gfcsim/gfc/internal/deadlock"
	"github.com/gfcsim/gfc/internal/units"
)

// TestFaultMatrixHeadline runs the full scheme × scenario robustness matrix
// with its defaults and pins the headline contrast of the fault-injection
// study: on the critically loaded fig9 ring,
//
//   - the clean column is clean for every scheme (no deadlock, no drops, no
//     violations, every flow progressing at line-ish rate);
//   - "resume-loss" wedges PFC — one lost RESUME during the congestion
//     squeeze holds a fabric hop shut forever and the detector reports a
//     wedged channel, not a circular wait;
//   - "feedback-loss" breaks PFC's losslessness (lost PAUSE frames overrun
//     the ingress buffers; the invariant layer attributes the violations);
//   - BFC shares PFC's on/off failure modes at queue granularity: a lost
//     QRESUME wedges it, lost QPAUSEs overrun it — per-queue state narrows
//     the blast radius but does not change the robustness class;
//   - both GFC variants survive every scenario with zero drops, zero
//     violations, no deadlock, and every flow making progress — their rates
//     never reach zero, so no single lost message can wedge them;
//   - the DCFIT column convicts exactly where pause edges close a cycle
//     (PFC resume-loss, where the wedge cascades class pauses around the
//     ring) and stays silent everywhere else.
func TestFaultMatrixHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full 5×6 fault matrix (~3 s)")
	}
	cells, err := RunFaultMatrix(FaultMatrixConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(MatrixSchemes()) * len(FaultScenarios()); len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}

	byCell := make(map[[2]string]FaultCell, len(cells))
	for _, c := range cells {
		byCell[[2]string{string(c.FC), c.Scenario}] = c
	}
	cell := func(fc FC, scenario string) FaultCell {
		c, ok := byCell[[2]string{string(fc), scenario}]
		if !ok {
			t.Fatalf("matrix missing cell (%s, %s)", fc, scenario)
		}
		return c
	}

	// Clean column: every scheme is healthy, so any trouble in a faulted
	// column is attributable to the injected scenario.
	for _, fc := range MatrixSchemes() {
		c := cell(fc, CleanScenario)
		if c.Deadlocked || c.Drops != 0 || c.Violations != 0 {
			t.Errorf("clean %s not clean: %+v", fc, c)
		}
		if c.FaultsInjected != 0 || c.FeedbackDropped != 0 {
			t.Errorf("clean %s recorded faults: %+v", fc, c)
		}
		if c.MinFlow == 0 {
			t.Errorf("clean %s starved a flow", fc)
		}
	}

	// PFC under resume-loss: the wedge. Rate is zero from the wedge on.
	rl := cell(PFC, "resume-loss")
	if !rl.Deadlocked {
		t.Fatal("PFC under resume-loss did not deadlock")
	}
	if rl.DeadlockKind != deadlock.WedgedChannel {
		t.Errorf("PFC resume-loss deadlock kind = %v, want wedged-channel", rl.DeadlockKind)
	}
	if rl.SteadyRate != 0 {
		t.Errorf("PFC resume-loss steady rate = %v, want 0 (ring frozen)", rl.SteadyRate)
	}
	if rl.FeedbackDropped == 0 {
		t.Error("PFC resume-loss dropped no feedback — scenario did not bite")
	}

	// PFC under feedback-loss: lossy PAUSE → buffer overruns. The fabric
	// keeps moving (no deadlock) but losslessness is gone, and the
	// invariant layer must have caught it.
	fl := cell(PFC, "feedback-loss")
	if fl.Drops == 0 {
		t.Error("PFC under feedback-loss dropped nothing — PAUSE loss did not overrun")
	}
	if fl.Violations == 0 {
		t.Error("PFC drops not flagged as invariant violations")
	}

	// BFC shares PFC's failure modes, per queue: a lost QRESUME wedges the
	// ring shut (losslessly), lost QPAUSEs overrun the ingress.
	brl := cell(BFC, "resume-loss")
	if !brl.Deadlocked {
		t.Fatal("BFC under resume-loss did not wedge")
	}
	if brl.DeadlockKind != deadlock.WedgedChannel {
		t.Errorf("BFC resume-loss deadlock kind = %v, want wedged-channel", brl.DeadlockKind)
	}
	if brl.Drops != 0 {
		t.Errorf("BFC resume-loss drops = %d; a wedged fabric must stay lossless", brl.Drops)
	}
	if brl.SteadyRate != 0 {
		t.Errorf("BFC resume-loss steady rate = %v, want 0 (ring frozen)", brl.SteadyRate)
	}
	bfl := cell(BFC, "feedback-loss")
	if bfl.Drops == 0 || bfl.Violations == 0 {
		t.Errorf("BFC under feedback-loss: drops=%d violations=%d, want QPAUSE loss to overrun",
			bfl.Drops, bfl.Violations)
	}

	// The GFC survival claim, across every scenario including the two that
	// break PFC: no deadlock, strictly lossless, every flow progressing.
	for _, fc := range []FC{GFCBuf, GFCTime} {
		for _, scenario := range FaultScenarios() {
			c := cell(fc, scenario)
			if c.Deadlocked {
				t.Errorf("%s deadlocked under %q at %v", fc, scenario, c.DeadlockAt)
			}
			if c.Drops != 0 || c.Violations != 0 {
				t.Errorf("%s under %q: drops=%d violations=%d, want lossless",
					fc, scenario, c.Drops, c.Violations)
			}
			if c.MinFlow == 0 {
				t.Errorf("%s under %q starved a flow", fc, scenario)
			}
		}
	}

	// Faulted scenarios actually injected: the loss/delay presets must have
	// perturbed messages for the schemes that emit feedback continuously.
	if c := cell(CBFC, "feedback-loss"); c.FeedbackDropped == 0 {
		t.Error("CBFC under feedback-loss lost no credits")
	}
	if c := cell(GFCTime, "feedback-delay"); c.FeedbackDelayed == 0 {
		t.Error("GFC-time under feedback-delay delayed nothing")
	}

	// DCFIT verdicts per cell: only pause-edge cycles are visible to it. The
	// PFC resume-loss wedge cascades class pauses around the whole ring, so
	// the edges close and DCFIT convicts; BFC's wedge is queue-scoped and
	// never closes a cycle, and CBFC/GFC emit no pause edges at all.
	for _, c := range cells {
		wantConvict := c.FC == PFC && c.Scenario == "resume-loss"
		if c.DCFITDeadlocked != wantConvict {
			t.Errorf("DCFIT verdict for (%s, %s) = %v, want %v",
				c.FC, c.Scenario, c.DCFITDeadlocked, wantConvict)
		}
	}
	if c := cell(PFC, "resume-loss"); c.DCFITDeadlocked && c.DCFITAt < c.DeadlockAt-10*units.Millisecond {
		t.Errorf("DCFIT onset %v implausibly early vs global %v", c.DCFITAt, c.DeadlockAt)
	}
}

// TestFaultMatrixDeterministic pins replay: the same config must produce
// byte-identical cells on a second run (per-cell injectors are freshly
// seeded, so no state leaks between runs or cells).
func TestFaultMatrixDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the resume-loss column twice")
	}
	cfg := FaultMatrixConfig{
		Schemes:   []FC{PFC, GFCBuf},
		Scenarios: []string{"resume-loss"},
		Duration:  30 * units.Millisecond,
	}
	a, err := RunFaultMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaultMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("cell counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cell %d differs across identical runs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}

// TestFaultMatrixRows sanity-checks the rendered table.
func TestFaultMatrixRows(t *testing.T) {
	cells := []FaultCell{{
		FC: PFC, Scenario: "resume-loss",
		Deadlocked: true, DeadlockAt: 10 * units.Millisecond,
		DeadlockKind: deadlock.WedgedChannel,
	}}
	tab := FaultMatrixRows(cells)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tab.Rows))
	}
	if got := tab.Rows[0][2]; got != "wedged-channel at 10ms" {
		t.Errorf("verdict cell = %q", got)
	}
	if got := tab.Rows[0][3]; got != "silent" {
		t.Errorf("DCFIT cell = %q, want silent", got)
	}
}
