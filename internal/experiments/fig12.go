package experiments

import (
	"github.com/gfcsim/gfc/internal/deadlock"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/units"
)

// CaseStudyResult is the outcome of one Figure 12/13 run: per-flow
// throughput series and the deadlock verdict.
type CaseStudyResult struct {
	FC         FC
	Deadlocked bool
	DeadlockAt units.Time
	// FlowRates[i] is flow i+1's average goodput over the final
	// measurement window.
	FlowRates []units.Rate
	// Throughput is the aggregate goodput, binned at 100 µs (§6.2.3).
	Throughput *stats.BinCounter
	Drops      int64

	// Victim statistics (WithVictim only). VictimRate is the final
	// window's goodput; VictimTotal the cumulative delivery;
	// VictimProgressed whether any victim byte arrived during the final
	// window — the deadlock-starvation discriminator (under a squeezed
	// but alive GFC fabric the rate can quantise to zero packets per
	// window while progress continues over longer spans).
	VictimRate       units.Rate
	VictimTotal      units.Size
	VictimProgressed bool
}

// CaseStudyConfig parameterises the Figures 12–14 runs.
type CaseStudyConfig struct {
	FC         FC
	Scheduling netsim.Scheduling
	Duration   units.Time // default 100 ms
	WithVictim bool       // add the Figure 14 victim flow
	// Oversubscribed adds the sibling flows, doubling CBD load.
	Oversubscribed bool
	// WithCross adds the CrossFlow squeeze trigger; with it, the CBD
	// fills and PFC/CBFC deadlock even under fair input-queued
	// switching.
	WithCross bool
	// Metrics, when non-nil, is attached to the simulation (fresh,
	// unbound) and collects per-channel counters and invariant verdicts
	// alongside the case study's own traces.
	Metrics *metrics.Registry
}

// RunCaseStudy executes the fat-tree deadlock case study (Figures 12, 13
// and, with WithVictim, 14) under one flow-control scheme.
func RunCaseStudy(cfg CaseStudyConfig) (*CaseStudyResult, units.Rate, error) {
	if cfg.Duration == 0 {
		cfg.Duration = 100 * units.Millisecond
	}
	sc := NewFatTreeDeadlock()
	simCfg, fp := SimParams()
	simCfg.FlowControl = fp.Factory(cfg.FC)
	simCfg.Scheduling = cfg.Scheduling
	simCfg.Metrics = cfg.Metrics

	tp := stats.NewBinCounter(100 * units.Microsecond)
	simCfg.Trace = &netsim.Trace{
		OnDeliver: func(t units.Time, _ *netsim.Flow, pkt *netsim.Packet) {
			tp.Add(t, pkt.Size)
		},
	}
	net, err := netsim.New(sc.Topo, simCfg)
	if err != nil {
		return nil, 0, err
	}
	flows := sc.Flows()
	if cfg.Oversubscribed {
		flows = append(flows, sc.SiblingFlows()...)
	}
	if cfg.WithCross {
		flows = append(flows, sc.CrossFlow())
	}
	for _, f := range flows {
		if err := net.AddFlow(f, 0); err != nil {
			return nil, 0, err
		}
	}
	var victim *netsim.Flow
	if cfg.WithVictim {
		victim = sc.VictimFlow()
		if err := net.AddFlow(victim, 0); err != nil {
			return nil, 0, err
		}
	}
	det := deadlock.NewDetector(net)
	det.Install()

	// Run to the measurement window, snapshot, then finish. A heartbeat
	// keeps the clock advancing through deadlocked (event-free) phases.
	windowStart := cfg.Duration * 3 / 4
	hb := windowStart / 2
	for net.Now() < windowStart {
		at := net.Now() + hb
		if at > windowStart {
			at = windowStart
		}
		net.Engine().Schedule(at, func() {})
		net.Run(at)
	}
	base := make([]units.Size, len(flows))
	for i, f := range flows {
		base[i] = f.Delivered
	}
	var victimBase units.Size
	if victim != nil {
		victimBase = victim.Delivered
	}
	net.Engine().Schedule(cfg.Duration, func() {})
	net.Run(cfg.Duration)
	window := cfg.Duration - windowStart

	res := &CaseStudyResult{
		FC:         cfg.FC,
		Throughput: tp,
		Drops:      net.Drops(),
	}
	if rep := det.Deadlocked(); rep != nil {
		res.Deadlocked = true
		res.DeadlockAt = rep.At
	}
	for i, f := range flows {
		res.FlowRates = append(res.FlowRates, units.RateOf(f.Delivered-base[i], window))
	}
	var victimRate units.Rate
	if victim != nil {
		victimRate = units.RateOf(victim.Delivered-victimBase, window)
		res.VictimRate = victimRate
		res.VictimTotal = victim.Delivered
		res.VictimProgressed = victim.Delivered > victimBase
	}
	return res, victimRate, nil
}
