package experiments

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/scenario"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// CaseStudyResult is the outcome of one Figure 12/13 run: per-flow
// throughput series and the deadlock verdict.
type CaseStudyResult struct {
	FC         FC
	Deadlocked bool
	DeadlockAt units.Time
	// FlowRates[i] is flow i+1's average goodput over the final
	// measurement window.
	FlowRates []units.Rate
	// Throughput is the aggregate goodput, binned at 100 µs (§6.2.3).
	Throughput *stats.BinCounter
	Drops      int64

	// Victim statistics (WithVictim only). VictimRate is the final
	// window's goodput; VictimTotal the cumulative delivery;
	// VictimProgressed whether any victim byte arrived during the final
	// window — the deadlock-starvation discriminator (under a squeezed
	// but alive GFC fabric the rate can quantise to zero packets per
	// window while progress continues over longer spans).
	VictimRate       units.Rate
	VictimTotal      units.Size
	VictimProgressed bool
}

// CaseStudyConfig parameterises the Figures 12–14 runs.
type CaseStudyConfig struct {
	FC         FC
	Scheduling netsim.Scheduling
	Duration   units.Time // default 100 ms
	WithVictim bool       // add the Figure 14 victim flow
	// Oversubscribed adds the sibling flows, doubling CBD load.
	Oversubscribed bool
	// WithCross adds the CrossFlow squeeze trigger; with it, the CBD
	// fills and PFC/CBFC deadlock even under fair input-queued
	// switching.
	WithCross bool
	// Metrics, when non-nil, is attached to the simulation (fresh,
	// unbound) and collects per-channel counters and invariant verdicts
	// alongside the case study's own traces.
	Metrics *metrics.Registry
}

// caseStudySpec assembles the Figure 12–14 flow set (see
// FatTreeDeadlockScenario for the path derivations) as a Spec literal.
func caseStudySpec(cfg CaseStudyConfig) scenario.Spec {
	flows := []scenario.FlowSpec{
		{ID: 1, Path: []string{"H0", "E1", "A1", "C1", "A3", "C2", "A5", "E5", "H8"}},
		{ID: 2, Path: []string{"H4", "E3", "A3", "C2", "A7", "E7", "H12"}},
		{ID: 3, Path: []string{"H9", "E5", "A5", "C2", "A7", "C1", "A1", "E1", "H1"}},
		{ID: 4, Path: []string{"H13", "E7", "A7", "C1", "A3", "E3", "H5"}},
	}
	if cfg.Oversubscribed {
		flows = append(flows,
			scenario.FlowSpec{ID: 5, Path: []string{"H1", "E1", "A1", "C1", "A3", "C2", "A5", "E5", "H9"}},
			scenario.FlowSpec{ID: 6, Path: []string{"H5", "E3", "A3", "C2", "A7", "E7", "H13"}},
			scenario.FlowSpec{ID: 7, Path: []string{"H8", "E5", "A5", "C2", "A7", "C1", "A1", "E1", "H0"}},
			scenario.FlowSpec{ID: 8, Path: []string{"H12", "E7", "A7", "C1", "A3", "E3", "H4"}},
		)
	}
	if cfg.WithCross {
		flows = append(flows,
			scenario.FlowSpec{ID: 50, Path: []string{"H6", "E4", "A3", "C2", "A7", "E8", "H14"}})
	}
	if cfg.WithVictim {
		flows = append(flows,
			scenario.FlowSpec{ID: 99, Path: []string{"H12", "E7", "A7", "C2", "A3", "E3", "H4"}})
	}
	return scenario.Spec{
		Name: "fig12-casestudy",
		Topology: scenario.TopologySpec{
			Builder:   "fat-tree",
			K:         4,
			FailLinks: []string{"C1-A5", "A1-C2", "E1-A2", "E5-A6"},
		},
		Workload: scenario.WorkloadSpec{Flows: flows},
		Scheme:   scenario.SchemeSpec{FC: cfg.FC, Preset: "sim"},
		Sim:      scenario.SimSpec{Scheduling: cfg.Scheduling.String()},
		Run: scenario.RunSpec{
			DurationNs: cfg.Duration, DetectDeadlock: true, Analytic: true,
		},
	}
}

// RunCaseStudy executes the fat-tree deadlock case study (Figures 12, 13
// and, with WithVictim, 14) under one flow-control scheme.
func RunCaseStudy(cfg CaseStudyConfig) (*CaseStudyResult, units.Rate, error) {
	if cfg.Duration == 0 {
		cfg.Duration = 100 * units.Millisecond
	}
	tp := stats.NewBinCounter(100 * units.Microsecond)
	sim, err := scenario.Build(caseStudySpec(cfg), &scenario.Overrides{
		Metrics: cfg.Metrics,
		Trace: func(*topology.Topology) *netsim.Trace {
			return &netsim.Trace{
				OnDeliver: func(t units.Time, _ *netsim.Flow, pkt *netsim.Packet) {
					tp.Add(t, pkt.Size)
				},
			}
		},
	})
	if err != nil {
		return nil, 0, err
	}
	net := sim.Net
	flows := sim.Flows
	var victim *netsim.Flow
	if cfg.WithVictim {
		victim = flows[len(flows)-1]
		flows = flows[:len(flows)-1]
	}

	// Run to the measurement window, snapshot, then finish. A heartbeat
	// keeps the clock advancing through deadlocked (event-free) phases.
	windowStart := cfg.Duration * 3 / 4
	hb := windowStart / 2
	for net.Now() < windowStart {
		at := net.Now() + hb
		if at > windowStart {
			at = windowStart
		}
		net.Engine().Schedule(at, func() {})
		net.Run(at)
	}
	base := make([]units.Size, len(flows))
	for i, f := range flows {
		base[i] = f.Delivered
	}
	var victimBase units.Size
	if victim != nil {
		victimBase = victim.Delivered
	}
	net.Engine().Schedule(cfg.Duration, func() {})
	net.Run(cfg.Duration)
	window := cfg.Duration - windowStart

	res := &CaseStudyResult{
		FC:         cfg.FC,
		Throughput: tp,
		Drops:      net.Drops(),
	}
	if rep := sim.Detector.Deadlocked(); rep != nil {
		res.Deadlocked = true
		res.DeadlockAt = rep.At
	}
	for i, f := range flows {
		res.FlowRates = append(res.FlowRates, units.RateOf(f.Delivered-base[i], window))
	}
	var victimRate units.Rate
	if victim != nil {
		victimRate = units.RateOf(victim.Delivered-victimBase, window)
		res.VictimRate = victimRate
		res.VictimTotal = victim.Delivered
		res.VictimProgressed = victim.Delivered > victimBase
	}
	if err := sim.CheckAnalytic(); err != nil {
		return res, victimRate, fmt.Errorf("fig12 %v: %w", cfg.FC, err)
	}
	return res, victimRate, nil
}
