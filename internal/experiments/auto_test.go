package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/gfcsim/gfc/internal/runner"
	"github.com/gfcsim/gfc/internal/units"
)

// autoSweepConfig is the CI-sized adaptive-fidelity sweep: high failure
// probability so most cells are CBD-prone and actually triaged.
func autoSweepConfig() SweepConfig {
	cfg := DefaultSweep(4)
	cfg.Networks = 8
	cfg.Repeats = 1
	cfg.FailureProb = 0.25
	cfg.Duration = 5 * units.Millisecond
	cfg.Workers = 2
	return cfg
}

// cellProvenance is one repeat's backend record, extracted from checkpoint
// entries (and pinned by the escalation golden).
type cellProvenance struct {
	Job        int    `json:"job"`
	Repeat     int    `json:"repeat"`
	Backend    string `json:"backend"`
	Escalation string `json:"escalation,omitempty"`
}

// checkpointProvenance parses a sweep checkpoint and returns the per-repeat
// backend provenance of every successful cell, in job order.
func checkpointProvenance(t *testing.T, path, key string) []cellProvenance {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	perJob := map[int][]cellProvenance{}
	jobs := []int{}
	for n, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		if n == 0 {
			// v2 checkpoint header line.
			var hdr struct {
				Version int `json:"gfc_checkpoint"`
			}
			if json.Unmarshal(line, &hdr) != nil || hdr.Version < 2 {
				t.Fatalf("checkpoint lacks a v2 header: %s", line)
			}
			continue
		}
		// Each entry rides a CRC32 envelope; verifying it here keeps this
		// an independent check of the on-disk format, not just of Lookup.
		var env struct {
			CRC uint32          `json:"crc"`
			E   json.RawMessage `json:"e"`
		}
		if err := json.Unmarshal(line, &env); err != nil {
			t.Fatalf("unparseable envelope line: %v", err)
		}
		if crc32.ChecksumIEEE(env.E) != env.CRC {
			t.Fatalf("checkpoint line %d fails its CRC", n)
		}
		var e runner.Entry
		if err := json.Unmarshal(env.E, &e); err != nil {
			t.Fatalf("unparseable checkpoint line: %v", err)
		}
		if e.Key != key || len(e.Value) == 0 {
			continue
		}
		var sc scenarioOutcome
		if err := json.Unmarshal(e.Value, &sc); err != nil {
			t.Fatalf("unparseable cell value: %v", err)
		}
		if _, seen := perJob[e.Job]; !seen {
			jobs = append(jobs, e.Job)
		}
		var cells []cellProvenance
		for r, res := range sc.Repeats {
			if res == nil {
				continue
			}
			cells = append(cells, cellProvenance{
				Job: e.Job, Repeat: r,
				Backend: res.Backend, Escalation: res.Escalation,
			})
		}
		perJob[e.Job] = cells
	}
	var out []cellProvenance
	for i := 0; i <= maxJob(jobs); i++ {
		out = append(out, perJob[i]...)
	}
	return out
}

func maxJob(jobs []int) int {
	m := -1
	for _, j := range jobs {
		if j > m {
			m = j
		}
	}
	return m
}

// TestAutoSweepMatchesPacketVerdicts is the adaptive-fidelity contract: an
// auto-mode sweep must reproduce the all-packet sweep's quarantine and
// verdict aggregates — CBD census, deadlock cases, drops, failures — while
// doing strictly less packet work.
func TestAutoSweepMatchesPacketVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep at both fidelities")
	}
	cfg := autoSweepConfig()
	for _, fc := range []FC{GFCBuf, PFC} {
		fc := fc
		t.Run(string(fc), func(t *testing.T) {
			start := time.Now()
			packet, err := RunSweep(context.Background(), fc, cfg)
			if err != nil {
				t.Fatal(err)
			}
			packetElapsed := time.Since(start)

			auto := cfg
			auto.Backend = "auto"
			start = time.Now()
			ares, err := RunSweep(context.Background(), fc, auto)
			if err != nil {
				t.Fatal(err)
			}
			autoElapsed := time.Since(start)

			if ares.CBDProne != packet.CBDProne {
				t.Errorf("CBD census: auto %d vs packet %d", ares.CBDProne, packet.CBDProne)
			}
			if ares.DeadlockCases != packet.DeadlockCases {
				t.Errorf("deadlock cases: auto %d vs packet %d", ares.DeadlockCases, packet.DeadlockCases)
			}
			if ares.Drops != packet.Drops {
				t.Errorf("drops: auto %d vs packet %d", ares.Drops, packet.Drops)
			}
			if len(ares.Failures) != len(packet.Failures) {
				t.Errorf("quarantines: auto %d vs packet %d\n%s",
					len(ares.Failures), len(packet.Failures), ares.FailureSummary())
			}
			t.Logf("fc=%v: packet %v, auto %v (%.1f× speedup)",
				fc, packetElapsed, autoElapsed,
				float64(packetElapsed)/float64(autoElapsed))
		})
	}
}

// TestAutoSweepSpeedup measures the adaptive-fidelity payoff at the
// table1 duration (25 ms, where packet cost dominates cell setup): an
// auto-mode GFC-time sweep — whose cells all stay at fluid fidelity, see
// the escalation golden — must beat the all-packet sweep by an order of
// magnitude while agreeing on every verdict aggregate.
func TestAutoSweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full-duration packet cells")
	}
	cfg := DefaultSweep(4)
	cfg.Networks = 4
	cfg.Repeats = 1
	cfg.FailureProb = 0.25
	cfg.Workers = 1 // serial on both sides, so the ratio is per-cell cost

	start := time.Now()
	packet, err := RunSweep(context.Background(), GFCTime, cfg)
	if err != nil {
		t.Fatal(err)
	}
	packetElapsed := time.Since(start)

	auto := cfg
	auto.Backend = "auto"
	start = time.Now()
	ares, err := RunSweep(context.Background(), GFCTime, auto)
	if err != nil {
		t.Fatal(err)
	}
	autoElapsed := time.Since(start)

	if ares.CBDProne != packet.CBDProne || ares.DeadlockCases != packet.DeadlockCases ||
		ares.Drops != packet.Drops || len(ares.Failures) != len(packet.Failures) {
		t.Errorf("verdict aggregates disagree: auto %+v packet %+v", ares, packet)
	}
	speedup := float64(packetElapsed) / float64(autoElapsed)
	t.Logf("packet %v, auto %v: %.1f× speedup", packetElapsed, autoElapsed, speedup)
	if speedup < 10 {
		t.Errorf("adaptive fidelity bought only %.1f× (want ≥10×)", speedup)
	}
}

// TestAutoEscalationGolden pins which cells of the canonical CI sweep the
// triage escalates, and why, against a golden file. A change to the fluid
// solver, the analytic envelopes or the tolerance band that silently shifts
// the escalation set fails here; deliberate changes re-pin with -update.
func TestAutoEscalationGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the triaged sweep")
	}
	got := map[string][]cellProvenance{}
	cfg := autoSweepConfig()
	cfg.Backend = "auto"
	for _, fc := range []FC{GFCBuf, GFCTime, PFC, CBFC} {
		ckpt := filepath.Join(t.TempDir(), "auto.ckpt")
		run := cfg
		run.Checkpoint = ckpt
		res, err := RunSweep(context.Background(), fc, run)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Failures) != 0 {
			t.Fatalf("fc=%v quarantined cells:\n%s", fc, res.FailureSummary())
		}
		got[string(fc)] = checkpointProvenance(t, ckpt, SweepKey(fc, run))
	}

	goldenPath := filepath.Join("testdata", "auto_escalations.json")
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing escalation golden (run with -update): %v", err)
	}
	want := map[string][]cellProvenance{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for fc, wcells := range want {
		gcells := got[fc]
		if len(gcells) != len(wcells) {
			t.Errorf("fc=%s: %d triaged repeats, golden has %d", fc, len(gcells), len(wcells))
			continue
		}
		for i, w := range wcells {
			if gcells[i] != w {
				t.Errorf("fc=%s repeat %d: got %+v, golden %+v", fc, i, gcells[i], w)
			}
		}
	}
	for fc := range got {
		if _, ok := want[fc]; !ok {
			t.Errorf("fc=%s triaged but absent from golden", fc)
		}
	}
}

// TestAutoSweepKillResumeBitIdentical extends the resume contract to
// adaptive fidelity: an auto-mode sweep killed mid-flight and resumed must
// reproduce the uninterrupted aggregate bit for bit, and the resumed
// checkpoint must carry per-repeat backend provenance identical to an
// uninterrupted checkpointed run — replayed cells keep the provenance of
// the run that computed them.
func TestAutoSweepKillResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep three times")
	}
	cfg := autoSweepConfig()
	cfg.Backend = "auto"
	ref, err := RunSweep(context.Background(), GFCBuf, cfg)
	if err != nil {
		t.Fatal(err)
	}

	full := cfg
	full.Checkpoint = filepath.Join(t.TempDir(), "full.ckpt")
	fres, err := RunSweep(context.Background(), GFCBuf, full)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := aggHash(fres), aggHash(ref); a != b {
		t.Fatalf("checkpointed aggregate %016x != plain %016x", a, b)
	}

	killed := cfg
	killed.Checkpoint = filepath.Join(t.TempDir(), "killed.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			if fi, err := os.Stat(killed.Checkpoint); err == nil && fi.Size() > 0 {
				cancel()
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	if _, err := RunSweep(ctx, GFCBuf, killed); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep failed: %v", err)
	}
	resumed, err := RunSweep(context.Background(), GFCBuf, killed)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := aggHash(resumed), aggHash(ref); a != b {
		t.Fatalf("resumed aggregate %016x != uninterrupted %016x", a, b)
	}

	key := SweepKey(GFCBuf, cfg)
	fullProv := checkpointProvenance(t, full.Checkpoint, key)
	resProv := checkpointProvenance(t, killed.Checkpoint, key)
	if len(fullProv) == 0 {
		t.Fatal("no triaged repeats in the checkpoint")
	}
	sawFluid := false
	for _, p := range fullProv {
		if p.Backend == "" {
			t.Fatalf("repeat %+v carries no backend provenance", p)
		}
		if p.Backend == "fluid" {
			sawFluid = true
		}
	}
	if !sawFluid {
		t.Error("triage escalated every repeat; fluid fidelity never used")
	}
	if len(resProv) != len(fullProv) {
		t.Fatalf("resumed checkpoint has %d repeats, uninterrupted %d", len(resProv), len(fullProv))
	}
	for i := range fullProv {
		if resProv[i] != fullProv[i] {
			t.Errorf("provenance diverged at %d: resumed %+v vs uninterrupted %+v",
				i, resProv[i], fullProv[i])
		}
	}
}
