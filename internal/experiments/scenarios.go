// Package experiments contains one driver per table and figure of the
// paper's evaluation (§6), plus the ablations DESIGN.md calls out. Each
// driver builds its scenario, runs the packet-level simulation and returns
// the rows/series the paper reports.
package experiments

import (
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/scenario"
	"github.com/gfcsim/gfc/internal/topology"
)

// FC, FCParams and the paper's parameter presets live in internal/scenario
// (the declarative layer every driver compiles through); the aliases below
// keep this package's historical API intact.
type (
	// FC names a flow-control scheme under evaluation.
	FC = scenario.FC
	// FCParams carries the per-scheme parameters of one experimental
	// setup.
	FCParams = scenario.FCParams
)

// The four schemes of the paper's comparison, plus the conceptual design of
// §4.1 (continuous feedback; used by the Figure 5 illustration only) and BFC
// (the fault-matrix challenger).
const (
	PFC           = scenario.PFC
	CBFC          = scenario.CBFC
	GFCBuf        = scenario.GFCBuf
	GFCTime       = scenario.GFCTime
	GFCConceptual = scenario.GFCConceptual
	BFC           = scenario.BFC
)

// AllFCs lists the four schemes in the paper's presentation order.
var AllFCs = scenario.AllFCs

// TestbedParams are the §6.1 software-testbed settings: 1 MB buffers,
// τ = 90 µs, XOFF/XON = 800/797 KB, B1 = 750 KB, T = 52.4 µs, B0 = 492 KB.
func TestbedParams() (netsim.Config, FCParams) { return scenario.TestbedParams() }

// SimParams are the §6.2.2 packet-level simulation settings: 300 KB buffers,
// 10 Gb/s, 1 µs propagation, XOFF/XON = 280/277 KB (see
// scenario.SimParams for the B_m headroom rationale).
func SimParams() (netsim.Config, FCParams) { return scenario.SimParams() }

// FatTreeDeadlockScenario is the Figure 11/12 case study: a k=4 fat-tree
// with link failures that force shortest paths into a 4-channel cyclic
// buffer dependency C1→A3→C2→A7→C1, exercised by the paper's four flows
// F1: H0→H8, F2: H4→H12, F3: H9→H1, F4: H13→H5.
//
// The paper marks three failed links in its Figure 11; the exact count
// needed depends on the (unpublished) wiring of their drawing. On the
// canonical fat-tree wiring used here, four failures produce the identical
// CBD: C1–A5 and E5–A6 force F3's up-down-up detour, A1–C2 and E1–A2 force
// F1's.
type FatTreeDeadlockScenario struct {
	Topo  *topology.Topology
	Paths [][]routing.Hop // F1..F4 in order
	// CBD lists the four cyclic channels for verification.
	CBD [][2]string
}

// NewFatTreeDeadlock builds the scenario.
func NewFatTreeDeadlock() *FatTreeDeadlockScenario {
	topo := topology.FatTree(4, topology.DefaultLinkParams())
	for _, pair := range [][2]string{
		{"C1", "A5"}, {"A1", "C2"}, {"E1", "A2"}, {"E5", "A6"},
	} {
		topo.FailLinkBetween(pair[0], pair[1])
	}
	s := &FatTreeDeadlockScenario{Topo: topo}
	s.Paths = [][]routing.Hop{
		routing.MustExplicitPath(topo, "H0", "E1", "A1", "C1", "A3", "C2", "A5", "E5", "H8"),
		routing.MustExplicitPath(topo, "H4", "E3", "A3", "C2", "A7", "E7", "H12"),
		routing.MustExplicitPath(topo, "H9", "E5", "A5", "C2", "A7", "C1", "A1", "E1", "H1"),
		routing.MustExplicitPath(topo, "H13", "E7", "A7", "C1", "A3", "E3", "H5"),
	}
	s.CBD = [][2]string{{"C1", "A3"}, {"A3", "C2"}, {"C2", "A7"}, {"A7", "C1"}}
	return s
}

// Flows instantiates the four unbounded flows of the case study.
func (s *FatTreeDeadlockScenario) Flows() []*netsim.Flow {
	out := make([]*netsim.Flow, len(s.Paths))
	for i, p := range s.Paths {
		out[i] = &netsim.Flow{
			ID:   i + 1,
			Src:  p[0].Node,
			Dst:  p[len(p)-1].Link.Other(p[len(p)-1].Node),
			Path: p,
		}
	}
	return out
}

// SiblingFlows returns four additional flows from the sibling host under
// each source edge switch, following the same fabric paths as F1..F4. Adding
// them doubles the offered load on every CBD channel (2:1 persistent
// oversubscription), which makes the cyclic buffers fill deterministically
// under any switching discipline — the regime in which PFC/CBFC deadlock
// while GFC keeps trickling.
func (s *FatTreeDeadlockScenario) SiblingFlows() []*netsim.Flow {
	specs := [][]string{
		{"H1", "E1", "A1", "C1", "A3", "C2", "A5", "E5", "H9"},
		{"H5", "E3", "A3", "C2", "A7", "E7", "H13"},
		{"H8", "E5", "A5", "C2", "A7", "C1", "A1", "E1", "H0"},
		{"H12", "E7", "A7", "C1", "A3", "E3", "H4"},
	}
	out := make([]*netsim.Flow, len(specs))
	for i, names := range specs {
		p := routing.MustExplicitPath(s.Topo, names...)
		out[i] = &netsim.Flow{
			ID:   i + 5,
			Src:  p[0].Node,
			Dst:  p[len(p)-1].Link.Other(p[len(p)-1].Node),
			Path: p,
		}
	}
	return out
}

// CrossFlow returns the deadlock trigger: a fifth flow entering the CBD
// switch A3 from the pod's other edge (E4) and sharing the cyclic channel
// A3→C2. It gives the A3→C2 egress a third ingress claimant, squeezing
// F1's transit service below its arrival rate; the ingress A3←C1 then fills,
// pauses C1→A3, and the pause cascades around the cycle — the paper's
// deadlock-formation mechanism ("deadlock pressures congestion back", §6.2).
func (s *FatTreeDeadlockScenario) CrossFlow() *netsim.Flow {
	p := routing.MustExplicitPath(s.Topo, "H6", "E4", "A3", "C2", "A7", "E8", "H14")
	return &netsim.Flow{
		ID:   50,
		Src:  p[0].Node,
		Dst:  p[len(p)-1].Link.Other(p[len(p)-1].Node),
		Path: p,
	}
}

// VictimFlow returns the Figure 14 victim: a flow that shares links with the
// CBD flows' paths but never traverses a CBD channel. H12→H4 retraces F2's
// path in reverse (E7→A7 up, C2 down to A3, E3), using only the reverse
// directions of the cyclic channels.
func (s *FatTreeDeadlockScenario) VictimFlow() *netsim.Flow {
	p := routing.MustExplicitPath(s.Topo, "H12", "E7", "A7", "C2", "A3", "E3", "H4")
	return &netsim.Flow{
		ID:   99,
		Src:  p[0].Node,
		Dst:  p[len(p)-1].Link.Other(p[len(p)-1].Node),
		Path: p,
	}
}
