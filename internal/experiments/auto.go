package experiments

import (
	"context"
	"errors"
	"fmt"

	"github.com/gfcsim/gfc/internal/analytic"
	"github.com/gfcsim/gfc/internal/fluid"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/scenario"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// This file is the adaptive-fidelity side of the Table 1 sweep: repeats are
// triaged with the fluid network solver (three-plus orders of magnitude
// fewer state updates than packet simulation) and re-run at packet level
// only when the cell sits near an analytic boundary, where the fluid
// verdict cannot be trusted on its own.

// fluidSweepBackend compiles sweep repeats for the fluid solver. The
// generator stand-in is enabled: sweep workloads are random enterprise
// traffic, and the stand-in's persistent saturating flows upper-bound the
// congestion the generator can create — the right polarity for triage,
// which must never under-estimate occupancy.
var fluidSweepBackend = scenario.FluidBackend{RenderGenerator: true}

// Escalation reasons, pinned by the golden escalation test: each names the
// analytic boundary that forced the packet re-run.
const (
	escalateUnsupported = "fluid-unsupported scheme"
	escalateCyclic      = "deadlock-capable scheme on cyclic CBD"
	escalateFailed      = "fluid run failed"
	escalateDeadlock    = "fluid deadlock contradicts analytic deadlock-freedom"
	escalateLoss        = "fluid loss contradicts analytic losslessness"
	escalateBoundary    = "occupancy within tolerance band of analytic envelope"
)

// cellBand is the differential tolerance band of one sweep cell: fluid.Band
// at the topology's fastest live link and the sweep MTU (the sim preset's
// 1500 B default).
func cellBand(topo *topology.Topology) units.Size {
	var maxCap units.Rate
	for i := 0; i < topo.NumLinks(); i++ {
		l := topo.Link(topology.LinkID(i))
		if !l.Failed && l.Capacity > maxCap {
			maxCap = l.Capacity
		}
	}
	return fluid.Band(maxCap, 1500*units.Byte)
}

// buildFluidRepeat compiles one repeat for the fluid solver and returns the
// runner plus its analytic prediction (computable before the run).
func buildFluidRepeat(topo *topology.Topology, tab *routing.Table, fc FC, cfg SweepConfig, repeatSeed int64) (scenario.Runner, *analytic.Prediction, error) {
	spec := sweepSpec(fc, cfg, repeatSeed)
	// Triage integrates at 2 µs: the sweep dynamics (τ ≥ 12 µs) are far
	// slower, and any cell the coarse step puts near the envelope is
	// re-run at packet fidelity anyway.
	spec.Sim.FluidStepNs = 2 * units.Microsecond
	if err := fluidSweepBackend.Supports(&spec); err != nil {
		return nil, nil, err
	}
	reg := metrics.New(metrics.Options{})
	cyclic := true // every simulated cell passed the CBD pre-filter
	r, err := fluidSweepBackend.Build(spec, &scenario.Overrides{
		Topo: topo, Table: tab, Metrics: reg, CBDCyclic: &cyclic,
	})
	if err != nil {
		return nil, nil, err
	}
	pred, err := r.(scenario.Predictor).Predict()
	if err != nil {
		return nil, nil, err
	}
	return r, pred, nil
}

// finishFluidRepeat runs a compiled fluid repeat and translates the result
// into sweep terms. Slowdown samples stay empty (the stand-in's flows are
// unbounded, so there are no completion times) and FeedbackFraction stays
// zero (the solver models feedback as a latency, not as wire bytes) —
// documented in EXPERIMENTS.md alongside the aggregates that therefore only
// cover packet-produced repeats.
func finishFluidRepeat(ctx context.Context, r scenario.Runner, pred *analytic.Prediction, topo *topology.Topology, cfg SweepConfig) (*ScenarioResult, error) {
	sres, err := r.RunBounded(ctx, cfg.Budget)
	if err != nil {
		return nil, err
	}
	res := &ScenarioResult{
		Backend:    "fluid",
		Deadlocked: sres.Deadlocked,
		DeadlockAt: sres.DeadlockAt,
		Drops:      sres.Drops,
		HighWater:  sres.HighWater,
	}
	hosts := len(topo.Hosts())
	if hosts > 0 {
		res.HostBandwidth = units.RateOf(sres.Delivered, cfg.Duration) / units.Rate(hosts)
	}
	if cfg.Analytic {
		if sres.Analytic == nil {
			return nil, fmt.Errorf("fluid repeat carried no analytic check")
		}
		if sres.Analytic.Err != nil {
			return res, fmt.Errorf("analytic check: %w", sres.Analytic.Err)
		}
		res.Analytic = &AnalyticVerdict{
			DeadlockFree: pred.DeadlockFree,
			Lossless:     pred.Lossless,
			MaxOccupancy: pred.MaxOccupancy,
			HighWater:    sres.HighWater,
			MaxDelivered: pred.MaxDelivered,
			Delivered:    sres.Delivered,
		}
	}
	return res, nil
}

// RunScenarioFluid executes one workload repetition on the fluid backend —
// the pure-fluid counterpart of RunScenario. The scheme must be
// fluid-representable (RunSweep pre-checks this for fluid-mode sweeps).
func RunScenarioFluid(ctx context.Context, topo *topology.Topology, tab *routing.Table, fc FC, cfg SweepConfig, repeatSeed int64) (*ScenarioResult, error) {
	r, pred, err := buildFluidRepeat(topo, tab, fc, cfg, repeatSeed)
	if err != nil {
		return nil, err
	}
	res, err := finishFluidRepeat(ctx, r, pred, topo, cfg)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runAutoRepeat is the adaptive-fidelity repeat: fluid triage, escalated to
// a packet re-run at any analytic boundary. On every escalation where the
// fluid pass produced a result, the differential tolerance band is enforced
// as a runtime invariant — the packet occupancy may not exceed the fluid
// (saturating, hence upper-bounding) occupancy by more than the band; a
// violation means the two engines disagree about the same network and
// quarantines the cell rather than aggregating either answer.
func runAutoRepeat(ctx context.Context, topo *topology.Topology, tab *routing.Table, fc FC, cfg SweepConfig, repeatSeed int64) (*ScenarioResult, error) {
	escalate := func(reason string, fres *ScenarioResult) (*ScenarioResult, error) {
		pres, err := RunScenario(ctx, topo, tab, fc, cfg, repeatSeed)
		if err != nil {
			return nil, err
		}
		pres.Backend = "packet"
		pres.Escalation = reason
		if fres != nil {
			band := cellBand(topo)
			if pres.HighWater > fres.HighWater+band {
				return nil, fmt.Errorf(
					"backend divergence on escalation %q: packet high-water %v exceeds fluid %v by more than the tolerance band %v",
					reason, pres.HighWater, fres.HighWater, band)
			}
			if pres.Deadlocked && !fres.Deadlocked && reason == escalateBoundary {
				return nil, fmt.Errorf(
					"backend divergence on escalation %q: packet deadlocked at %v but fluid saw progress",
					reason, pres.DeadlockAt)
			}
		}
		return pres, nil
	}

	r, pred, err := buildFluidRepeat(topo, tab, fc, cfg, repeatSeed)
	if err != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return escalate(escalateUnsupported+": "+err.Error(), nil)
	}
	if !pred.DeadlockFree {
		// The analytic model says this scheme can deadlock on a cyclic
		// CBD. Deadlock formation is a packet-granular phenomenon (HOL
		// blocking, pause cascades); the fluid solver's proportional
		// sharing cannot decide it, so the repeat runs at full fidelity.
		return escalate(escalateCyclic, nil)
	}
	fres, ferr := finishFluidRepeat(ctx, r, pred, topo, cfg)
	if ferr != nil {
		if errors.Is(ferr, context.Canceled) || errors.Is(ferr, context.DeadlineExceeded) {
			return nil, ferr
		}
		return escalate(escalateFailed+": "+ferr.Error(), fres)
	}
	band := cellBand(topo)
	switch {
	case fres.Deadlocked:
		return escalate(escalateDeadlock, fres)
	case fres.Drops > 0 && pred.Lossless:
		return escalate(escalateLoss, fres)
	case pred.MaxOccupancy > 0 && pred.MaxOccupancy-fres.HighWater <= band:
		return escalate(escalateBoundary, fres)
	}
	return fres, nil
}
