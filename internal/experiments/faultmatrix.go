package experiments

import (
	"context"
	"fmt"

	"github.com/gfcsim/gfc/internal/deadlock"
	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/runner"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/units"
)

// CleanScenario is the fault-matrix column with no injected faults.
const CleanScenario = "clean"

// FaultScenarios lists the canonical matrix columns: a clean baseline plus
// every built-in fault preset.
func FaultScenarios() []string {
	return append([]string{CleanScenario}, faults.PresetNames()...)
}

// MatrixSchemes lists the default fault-matrix rows: the paper's four
// schemes plus BFC, the per-flow-queue challenger raced against them.
func MatrixSchemes() []FC {
	return append(AllFCs(), BFC)
}

// FaultCell is one (scheme, scenario) cell of the fault matrix: the §6.1
// ring run under an injected fault scenario, with the deadlock verdict,
// invariant outcome and progress measures the robustness comparison needs.
type FaultCell struct {
	FC       FC
	Scenario string

	Deadlocked   bool
	DeadlockAt   units.Time
	DeadlockKind deadlock.Kind
	// DCFITDeadlocked / DCFITAt report the in-data-plane detector, which
	// runs alongside the global one in every cell. It only sees pause
	// edges, so it stays silent for CBFC/GFC by design. A wedge is not
	// itself a cycle, but when its backpressure cascades class pauses all
	// the way around the ring (PFC under resume-loss) the edges do close
	// and DCFIT convicts; BFC's queue-scoped wedge never closes one, so
	// that cell stays silent — the disagreements are the comparison.
	DCFITDeadlocked bool
	DCFITAt         units.Time
	Drops           int64
	Violations      int64

	// FaultsInjected counts actuated timeline events plus feedback
	// perturbations; FeedbackDropped/Delayed break out the message-level
	// share.
	FaultsInjected  int64
	FeedbackDropped int64
	FeedbackDelayed int64

	// Delivered is the total goodput; MinFlow the worst-served flow's
	// share. A positive MinFlow means every port kept progressing.
	Delivered  units.Size
	MinFlow    units.Size
	SteadyRate units.Rate

	// Retries counts transient failures absorbed before this cell's run
	// completed (0 for a clean first attempt). Not a printed column:
	// FaultMatrixRows' output is golden-pinned.
	Retries int
}

// FaultMatrixConfig parameterises RunFaultMatrix.
type FaultMatrixConfig struct {
	Schemes   []FC       // default AllFCs()
	Scenarios []string   // default FaultScenarios()
	Duration  units.Time // default 60 ms
	// HostsPerSwitch defaults to 1: the critically loaded ring where every
	// scheme is clean without faults, so any deadlock in a faulted column
	// is attributable to the injected scenario.
	HostsPerSwitch int
	// Seed seeds each cell's injector (per-cell injectors keep cells
	// independent and individually replayable). Default 1.
	Seed int64
	// Refresh is applied to buffer-based GFC in every faulted cell (loss
	// repair; see GFCBufferConfig.Refresh). The clean column always runs
	// with Refresh 0 so it matches the golden fig9 traces. Default τ
	// (90 µs), bounding feedback staleness at roughly one reaction budget.
	Refresh units.Time
	// Ctx and Budget govern each cell's run (see RingConfig); left zero,
	// cells run ungoverned as they always have.
	Ctx    context.Context
	Budget netsim.Budget
	// Retry is the transient-failure retry policy applied per cell under
	// the sweep classification (wall/heap trips retry with seed-derived
	// backoff; deterministic failures and deadlock verdicts do not). The
	// zero value disables retrying.
	Retry runner.Retry
}

// RunFaultMatrix runs the scheme × scenario robustness matrix on the fig9
// ring. The headline contrast: "resume-loss" permanently pauses a hop the
// moment one RESUME frame is lost, so PFC — and BFC, whose per-queue
// QRESUME is just as losable — wedge shut (the detector fires) while both
// GFC variants, whose rates never reach zero, keep every flow progressing
// under every scenario with no losses and no invariant violations. Every
// cell also runs the in-data-plane DCFIT detector alongside the global one;
// its columns expose what delivery-time pause tracking can and cannot see.
func RunFaultMatrix(cfg FaultMatrixConfig) ([]FaultCell, error) {
	if cfg.Schemes == nil {
		cfg.Schemes = MatrixSchemes()
	}
	if cfg.Scenarios == nil {
		cfg.Scenarios = FaultScenarios()
	}
	if cfg.Duration == 0 {
		cfg.Duration = 60 * units.Millisecond
	}
	if cfg.HostsPerSwitch == 0 {
		cfg.HostsPerSwitch = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Refresh == 0 {
		cfg.Refresh = 90 * units.Microsecond
	}
	topo := RingTopology(cfg.HostsPerSwitch)

	var cells []FaultCell
	for _, scenario := range cfg.Scenarios {
		var plan *faults.Plan
		if scenario != CleanScenario {
			spec, err := faults.Preset(scenario)
			if err != nil {
				return nil, err
			}
			plan, err = spec.Compile(topo)
			if err != nil {
				return nil, fmt.Errorf("experiments: compiling %q: %w", scenario, err)
			}
		}
		for si, fc := range cfg.Schemes {
			ctx := cfg.Ctx
			if ctx == nil {
				ctx = context.Background()
			}
			// Each attempt rebuilds its registry and simulation from
			// scratch, so a retried cell is bit-identical to a clean
			// first run; the backoff seed is the cell's position, making
			// retry sequencing reproducible across runs.
			var reg *metrics.Registry
			cellSeed := cfg.Seed*1000 + int64(len(cells))*10 + int64(si)
			res, prov, err := runner.Supervise(ctx, cellSeed, cfg.Retry, ClassifyCellFailure,
				func(ctx context.Context) (*RingResult, error) {
					reg = metrics.New(metrics.Options{})
					ring := RingConfig{
						FC:             fc,
						Duration:       cfg.Duration,
						HostsPerSwitch: cfg.HostsPerSwitch,
						Metrics:        reg,
						Faults:         plan,
						FaultSeed:      cfg.Seed,
						// Both detectors report in every cell; the global
						// verdict is the row's, DCFIT's fills its own columns.
						Detector: "both",
						Ctx:      ctx,
						Budget:   cfg.Budget,
					}
					if fc == GFCBuf && plan != nil {
						ring.Refresh = cfg.Refresh
					}
					return RunRing(ring)
				})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s under %q: %w", fc, scenario, err)
			}
			cell := FaultCell{
				FC: fc, Scenario: scenario,
				Deadlocked: res.Deadlocked, DeadlockAt: res.DeadlockAt,
				DeadlockKind:    res.DeadlockKind,
				DCFITDeadlocked: res.DCFITDeadlocked,
				DCFITAt:         res.DCFITAt,
				Drops:           res.Drops,
				Violations:      reg.Summary().Violations,
				Delivered:       res.Delivered, MinFlow: res.MinFlow,
				SteadyRate: res.SteadyRate,
			}
			cell.FaultsInjected = reg.FaultsInjected()
			cell.FeedbackDropped = res.FaultStats.FeedbackDropped
			cell.FeedbackDelayed = res.FaultStats.FeedbackDelayed
			if prov != nil {
				cell.Retries = len(prov.Retries)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// FaultMatrixRows renders the matrix as a printable table, one row per
// (scheme, scenario) cell.
func FaultMatrixRows(cells []FaultCell) *stats.Table {
	t := &stats.Table{Header: []string{
		"Scheme", "Scenario", "Deadlock", "DCFIT", "Drops", "Violations",
		"Faults", "Min flow", "Steady rate",
	}}
	for _, c := range cells {
		verdict := "no"
		if c.Deadlocked {
			verdict = fmt.Sprintf("%v at %v", c.DeadlockKind, c.DeadlockAt)
		}
		dcfit := "silent"
		if c.DCFITDeadlocked {
			dcfit = fmt.Sprintf("at %v", c.DCFITAt)
		}
		t.AddRow(string(c.FC), c.Scenario, verdict, dcfit,
			fmt.Sprintf("%d", c.Drops),
			fmt.Sprintf("%d", c.Violations),
			fmt.Sprintf("%d", c.FaultsInjected),
			c.MinFlow.String(),
			c.SteadyRate.String())
	}
	return t
}
