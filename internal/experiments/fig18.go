package experiments

import (
	"fmt"

	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/scenario"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// EvolutionResult is one Figure 18 run: the network-wide average throughput
// evolution on a deadlock-prone random scenario. Under PFC the curve
// collapses to zero shortly after the fatal flow combination appears; under
// GFC it stays up.
type EvolutionResult struct {
	FC         FC
	Deadlocked bool
	DeadlockAt units.Time
	// Throughput is aggregate delivered bytes in 100 µs bins.
	Throughput *stats.BinCounter
	// FinalRate is the aggregate goodput over the last quarter.
	FinalRate units.Rate
	Drops     int64
}

// EvolutionConfig parameterises RunEvolution. Scale and seed select the
// random scenario; the defaults pick a k=4 scenario known to deadlock under
// PFC with the default workload seed.
type EvolutionConfig struct {
	FC       FC
	K        int
	Seed     int64 // topology seed
	Workload int64 // workload seed
	Duration units.Time
}

// DefaultEvolution returns the configuration used for the Figure 18
// reproduction: a CBD-prone k=4 scenario and workload seed under which PFC
// deadlocks mid-run.
func DefaultEvolution(fc FC) EvolutionConfig {
	return EvolutionConfig{
		FC:       fc,
		K:        4,
		Seed:     106,
		Workload: 8061, // PFC deadlocks at ≈27 ms under this combination
		Duration: 40 * units.Millisecond,
	}
}

// RunEvolution executes one Figure 18 trace.
func RunEvolution(cfg EvolutionConfig) (*EvolutionResult, error) {
	spec := scenario.Spec{
		Name: "fig18-evolution",
		Topology: scenario.TopologySpec{
			Builder: "fat-tree", K: cfg.K,
			FailRandom: &scenario.FailRandomSpec{Prob: 0.05, Seed: cfg.Seed},
		},
		Routing:  scenario.RoutingSpec{Policy: "spf"},
		Workload: scenario.WorkloadSpec{Generator: &scenario.GeneratorSpec{Dist: "enterprise", Seed: cfg.Workload}},
		Scheme:   scenario.SchemeSpec{FC: cfg.FC, Preset: "sim"},
		Run: scenario.RunSpec{
			DurationNs: cfg.Duration, DetectDeadlock: true, Analytic: true,
		},
	}
	tp := stats.NewBinCounter(100 * units.Microsecond)
	sim, err := scenario.Build(spec, &scenario.Overrides{
		Trace: func(*topology.Topology) *netsim.Trace {
			return &netsim.Trace{
				OnDeliver: func(t units.Time, _ *netsim.Flow, pkt *netsim.Packet) {
					tp.Add(t, pkt.Size)
				},
			}
		},
	})
	if err != nil {
		return nil, err
	}
	net := sim.Net
	net.Run(cfg.Duration)

	res := &EvolutionResult{FC: cfg.FC, Throughput: tp, Drops: net.Drops()}
	if rep := sim.Detector.Deadlocked(); rep != nil {
		res.Deadlocked = true
		res.DeadlockAt = rep.At
	}
	// Final-quarter aggregate rate.
	bins := tp.Bins()
	start := len(bins) * 3 / 4
	var bytes units.Size
	for _, b := range bins[start:] {
		bytes += b
	}
	res.FinalRate = units.RateOf(bytes, units.Time(len(bins)-start)*tp.Width)
	if err := sim.CheckAnalytic(); err != nil {
		return res, fmt.Errorf("fig18 %v: %w", cfg.FC, err)
	}
	return res, nil
}
