package experiments

import (
	"context"

	"strings"
	"testing"

	"github.com/gfcsim/gfc/internal/cbd"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/units"
)

func TestFCFactoryAndNames(t *testing.T) {
	_, fp := TestbedParams()
	for _, fc := range AllFCs() {
		if fp.Factory(fc) == nil {
			t.Errorf("no factory for %s", fc)
		}
	}
	if !GFCBuf.IsGFC() || !GFCTime.IsGFC() || PFC.IsGFC() || CBFC.IsGFC() {
		t.Error("IsGFC misclassifies")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown FC did not panic")
		}
	}()
	fp.Factory(FC("bogus"))
}

func TestFatTreeScenarioHasCBD(t *testing.T) {
	sc := NewFatTreeDeadlock()
	g := cbd.NewGraph(sc.Topo)
	for _, p := range sc.Paths {
		g.AddPath(p)
	}
	if !g.HasCycle() {
		t.Fatal("case-study flows do not form a CBD")
	}
	cyc := g.FindCycle()
	if len(cyc) != 4 {
		t.Fatalf("cycle length %d, want the 4 core-agg channels", len(cyc))
	}
	// The cycle must be exactly the documented one.
	want := map[string]bool{}
	for _, pair := range sc.CBD {
		want[pair[0]+">"+pair[1]] = true
	}
	for _, c := range cyc {
		key := sc.Topo.Node(c.From).Name + ">" + sc.Topo.Node(c.To).Name
		if !want[key] {
			t.Errorf("unexpected cycle member %s", key)
		}
	}
}

func TestFatTreeScenarioPathsAreShortest(t *testing.T) {
	// The explicit paths must not be longer than SPF distances on the
	// failed topology — they are legitimate routes, not contrivances.
	sc := NewFatTreeDeadlock()
	tab := routing.NewSPF(sc.Topo)
	for i, p := range sc.Paths {
		src := p[0].Node
		dst := p[len(p)-1].Link.Other(p[len(p)-1].Node)
		d, ok := tab.Distance(src, dst)
		if !ok {
			t.Fatalf("flow %d: dst unreachable", i+1)
		}
		if len(p) != d {
			t.Errorf("flow %d: explicit path %d hops, SPF %d", i+1, len(p), d)
		}
	}
}

func TestCaseStudySteadyState(t *testing.T) {
	// Figure 12(b)/13(b): under GFC the four flows share 5 Gb/s each.
	for _, fc := range []FC{GFCBuf, GFCTime} {
		res, _, err := RunCaseStudy(CaseStudyConfig{
			FC: fc, Duration: 40 * units.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			t.Fatalf("%s deadlocked in the critical case study", fc)
		}
		if res.Drops != 0 {
			t.Fatalf("%s drops = %d", fc, res.Drops)
		}
		for i, r := range res.FlowRates {
			if r < 4.5*units.Gbps || r > 5.5*units.Gbps {
				t.Errorf("%s flow %d rate %v, want ≈5G", fc, i+1, r)
			}
		}
	}
}

func TestCaseStudyDeadlockFormation(t *testing.T) {
	// With the cross-flow squeeze, PFC and CBFC deadlock (paper Fig
	// 12(a)/13(a); our PFC collapse at ≈8 ms mirrors the paper's 8.5 ms
	// Figure 18 timing), while both GFC variants keep the network alive.
	for _, tc := range []struct {
		fc   FC
		dead bool
	}{
		{PFC, true}, {CBFC, true}, {GFCBuf, false}, {GFCTime, false},
	} {
		res, _, err := RunCaseStudy(CaseStudyConfig{
			FC: tc.fc, Duration: 40 * units.Millisecond, WithCross: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked != tc.dead {
			t.Errorf("%s deadlocked=%v, want %v", tc.fc, res.Deadlocked, tc.dead)
		}
		if res.Drops != 0 {
			t.Errorf("%s drops = %d", tc.fc, res.Drops)
		}
	}
}

func TestCaseStudyVictim(t *testing.T) {
	// Figure 14: after PFC deadlocks, the victim flow (which avoids the
	// CBD channels) starves; under GFC it keeps its full share in the
	// critical configuration.
	res, victim, err := RunCaseStudy(CaseStudyConfig{
		FC: PFC, Duration: 40 * units.Millisecond, WithCross: true, WithVictim: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("PFC did not deadlock")
	}
	if victim != 0 {
		t.Errorf("PFC victim rate %v, want 0 (starved)", victim)
	}
	_, victim, err = RunCaseStudy(CaseStudyConfig{
		FC: GFCBuf, Duration: 40 * units.Millisecond, WithVictim: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if victim < 4*units.Gbps {
		t.Errorf("GFC victim rate %v, want ≈5G", victim)
	}
}

func TestRunFig5(t *testing.T) {
	// Conceptual GFC: queue converges to B_s = 75KB, rate to 5G.
	res, err := RunFig5(GFCConceptual, 20*units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops != 0 {
		t.Fatalf("drops = %d", res.Drops)
	}
	if q := res.SteadyQueue; q < 70*units.KB || q > 80*units.KB {
		t.Errorf("steady queue %v, want ≈75KB", q)
	}
	if r := units.Rate(res.Rate.MeanAfter(15 * units.Millisecond)); r < 4.5*units.Gbps || r > 5.5*units.Gbps {
		t.Errorf("steady rate %v, want ≈5G", r)
	}

	// PFC: queue saws between XON/XOFF; the rate trace must contain
	// both line-rate and zero bins (ON/OFF alternation).
	pfc, err := RunFig5(PFC, 20*units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if pfc.Drops != 0 {
		t.Fatalf("PFC drops = %d", pfc.Drops)
	}
	var sawZero, sawLine bool
	for i, v := range pfc.Rate.V {
		if pfc.Rate.T[i] < 5*units.Millisecond {
			continue // skip the fill transient
		}
		if v == 0 {
			sawZero = true
		}
		if v > 9e9 {
			sawLine = true
		}
	}
	if !sawZero || !sawLine {
		t.Errorf("PFC rate did not alternate 0↔line (zero=%v line=%v)", sawZero, sawLine)
	}
	// Queue stays in the XON..XOFF+headroom band at steady state.
	if q := pfc.SteadyQueue; q < 70*units.KB || q > 90*units.KB {
		t.Errorf("PFC steady queue %v, want near XOFF=80KB", q)
	}
}

func TestRunRingMatchesPaper(t *testing.T) {
	// Figure 9(b): buffer-based GFC settles with the host queue in the
	// first stage band and the input rate at 5G.
	res, err := RunRing(RingConfig{FC: GFCBuf, Duration: 40 * units.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked || res.Drops != 0 {
		t.Fatalf("GFC ring: deadlock=%v drops=%d", res.Deadlocked, res.Drops)
	}
	if q := res.SteadyQueue; q < 740*units.KB || q > 890*units.KB {
		t.Errorf("steady queue %v, paper ≈840KB", q)
	}
	if r := res.SteadyRate; r < 4.5*units.Gbps || r > 5.5*units.Gbps {
		t.Errorf("steady rate %v, paper 5G", r)
	}

	// Figure 9(a): PFC deadlocks in the 2-host formation regime.
	pfc, err := RunRing(RingConfig{FC: PFC, Duration: 60 * units.Millisecond, HostsPerSwitch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !pfc.Deadlocked {
		t.Error("PFC ring did not deadlock")
	}
}

func TestRunFig10Shapes(t *testing.T) {
	// Figure 10(b): time-based GFC settles near 745 KB at 5G.
	res, err := RunRing(RingConfig{FC: GFCTime, Duration: 40 * units.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked || res.Drops != 0 {
		t.Fatalf("GFC-time ring: deadlock=%v drops=%d", res.Deadlocked, res.Drops)
	}
	if q := res.SteadyQueue; q < 650*units.KB || q > 800*units.KB {
		t.Errorf("steady queue %v, paper ≈745KB", q)
	}
	// Figure 10(a): CBFC deadlocks in the formation regime.
	cb, err := RunRing(RingConfig{FC: CBFC, Duration: 200 * units.Millisecond, HostsPerSwitch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cb.Deadlocked {
		t.Error("CBFC ring did not deadlock")
	}
}

func TestRunFig20Interaction(t *testing.T) {
	res, err := RunFig20(15 * units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops != 0 {
		t.Fatalf("drops = %d", res.Drops)
	}
	// GFC must have capped the onset: ingress queues bounded well below
	// the 1MB buffer.
	if res.MaxQueue >= 900*units.KB {
		t.Errorf("max queue %v; GFC safeguard failed", res.MaxQueue)
	}
	// DCQCN converges near the 1.25G fair share and below GFC's cap.
	if res.FinalDCQCN < 0.4*units.Gbps || res.FinalDCQCN > 3*units.Gbps {
		t.Errorf("final DCQCN rate %v, want ≈1.25G", res.FinalDCQCN)
	}
	// Either GFC capped the onset (port rate dipped below line rate)
	// or DCQCN reacted fast enough that the queue never reached B1 —
	// both are the §7 division of labour; what must NOT happen is a
	// deep queue with GFC silent.
	var gfcEarly float64 = 10e9
	for i, ts := range res.GFCRate.T {
		if ts < units.Millisecond && res.GFCRate.V[i] < gfcEarly {
			gfcEarly = res.GFCRate.V[i]
		}
	}
	if gfcEarly >= 10e9 && res.MaxQueue >= 275*units.KB {
		t.Error("queue crossed B1 but GFC never limited the port")
	}
}

func TestRunOverheadFig19(t *testing.T) {
	res, err := RunOverhead(OverheadConfig{K: 4, Duration: 10 * units.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops != 0 {
		t.Fatalf("drops = %d", res.Drops)
	}
	// Paper: mean 0.21%, 99% < 0.4%, max 0.49%. Shape check: all tiny.
	if res.Mean > 0.005 {
		t.Errorf("mean overhead %.4f, want < 0.5%%", res.Mean)
	}
	if res.Max > 0.02 {
		t.Errorf("max overhead %.4f, implausibly high", res.Max)
	}
	if res.CDF.Len() == 0 {
		t.Fatal("no samples")
	}
}

func TestGenerateScenarioDeterminism(t *testing.T) {
	_, _, p1 := GenerateScenario(4, 0.05, 35)
	_, _, p2 := GenerateScenario(4, 0.05, 35)
	if p1 != p2 {
		t.Fatal("scenario generation not deterministic")
	}
	if !p1 {
		t.Fatal("seed 35 should be CBD-prone (regression guard)")
	}
}

func TestRunScenarioSmoke(t *testing.T) {
	topo, tab, prone := GenerateScenario(4, 0.05, 35)
	if !prone {
		t.Skip("seed no longer prone")
	}
	cfg := DefaultSweep(4)
	cfg.Duration = 5 * units.Millisecond
	res, err := RunScenario(context.Background(), topo, tab, GFCBuf, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Error("GFC deadlocked in sweep scenario")
	}
	if res.Drops != 0 {
		t.Errorf("drops = %d", res.Drops)
	}
	if res.HostBandwidth <= 0 {
		t.Error("no goodput recorded")
	}
	if res.FeedbackFraction < 0 || res.FeedbackFraction > 0.05 {
		t.Errorf("feedback fraction %v out of range", res.FeedbackFraction)
	}
}

func TestFig15Rows(t *testing.T) {
	tbl := Fig15Rows()
	out := tbl.String()
	if !strings.Contains(out, "10KB") || !strings.Contains(out, "0.65") {
		t.Errorf("Fig15 table missing expected knots:\n%s", out)
	}
}

func TestReportTables(t *testing.T) {
	results := map[int]map[FC]*SweepResult{
		4: {
			PFC:    {FC: PFC, K: 4, CBDProne: 5, DeadlockCases: 2},
			GFCBuf: {FC: GFCBuf, K: 4, CBDProne: 5, DeadlockCases: 0},
		},
	}
	results[4][PFC].Bandwidth.Add(5e9)
	results[4][PFC].Slowdown.Add(2.0)
	results[4][GFCBuf].Bandwidth.Add(5e9)
	results[4][GFCBuf].Slowdown.Add(2.0)

	t1 := Table1Rows(results, []int{4}).String()
	if !strings.Contains(t1, "k=4") || !strings.Contains(t1, "2") {
		t.Errorf("Table1:\n%s", t1)
	}
	f16 := Fig16Rows(results, []int{4}).String()
	if !strings.Contains(f16, "5Gbps") {
		t.Errorf("Fig16:\n%s", f16)
	}
	f17 := Fig17Rows(results, []int{4}).String()
	if !strings.Contains(f17, "1.000") {
		t.Errorf("Fig17:\n%s", f17)
	}
}

func TestRunEvolutionPFCCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cfg := DefaultEvolution(PFC)
	res, err := RunEvolution(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Skip("selected seed no longer deadlocks under PFC; Figure 18 bench scans seeds")
	}
	gfc, err := RunEvolution(DefaultEvolution(GFCBuf))
	if err != nil {
		t.Fatal(err)
	}
	if gfc.Deadlocked {
		t.Error("GFC deadlocked in evolution run")
	}
	if gfc.FinalRate < units.Gbps {
		t.Errorf("GFC final aggregate %v, want healthy", gfc.FinalRate)
	}
	// The paper's k=16 network wedges completely within ~200µs; in this
	// reduced k=4 horizon the collapse is partial — CBD-adjacent hosts
	// freeze while distant ones keep running until their next dead-path
	// destination. The comparative claim must hold: PFC's post-deadlock
	// aggregate sits well below GFC's on the identical scenario.
	if res.FinalRate >= gfc.FinalRate*3/4 {
		t.Errorf("PFC final %v not clearly below GFC final %v", res.FinalRate, gfc.FinalRate)
	}
}
