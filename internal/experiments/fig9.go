package experiments

import (
	"github.com/gfcsim/gfc/internal/deadlock"
	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/routing"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// RingResult holds one Figures 9/10 run: the queue and input-rate traces of
// the switch port connecting H1, plus the deadlock verdict.
type RingResult struct {
	FC         FC
	Deadlocked bool
	DeadlockAt units.Time
	// DeadlockKind distinguishes a circular wait from a fault-wedged
	// channel (meaningful only when Deadlocked).
	DeadlockKind deadlock.Kind
	Queue        *stats.Series // ingress S1←H1 occupancy
	Rate         *stats.Series // H1's achieved input rate, 100 µs bins
	// SteadyQueue / SteadyRate average the final quarter of the run
	// (≈840 KB / 5 Gb/s for buffer-based GFC in the paper's testbed,
	// ≈745 KB / 5 Gb/s for time-based).
	SteadyQueue units.Size
	SteadyRate  units.Rate
	Drops       int64
	// Delivered totals the bytes every flow got to its destination;
	// MinFlow is the worst-served flow's share (zero means a flow was
	// starved outright — the per-port progress criterion of the fault
	// matrix).
	Delivered units.Size
	MinFlow   units.Size
	// FaultStats reports what the run's injector actually did (zero when
	// the run was clean).
	FaultStats faults.Stats
}

// RingConfig parameterises the Figures 9/10 testbed reproduction.
type RingConfig struct {
	FC       FC
	Duration units.Time // default 60 ms
	// HostsPerSwitch: 1 gives the paper's critically loaded testbed
	// topology, where GFC settles at its steady state; 2 adds the
	// sibling hosts whose extra injectors squeeze transit traffic and
	// make the cyclic buffers fill — the deadlock-formation regime for
	// PFC/CBFC. Default 1.
	HostsPerSwitch int
	Scheduling     netsim.Scheduling
	// Tau overrides the testbed's 90 µs worst-case feedback latency
	// used for parameter derivation (ablations).
	Tau units.Time
	// Metrics, when non-nil, is attached to the simulation (fresh,
	// unbound) and collects per-channel counters, occupancy series and
	// invariant verdicts alongside the figure's own traces.
	Metrics *metrics.Registry
	// Faults, when non-nil, injects the compiled fault plan: its timeline
	// is scheduled on the run's engine and feedback emissions consult a
	// fresh injector seeded with FaultSeed. The plan must be compiled on
	// the same ring topology RunRing builds (RingTopology).
	Faults    *faults.Plan
	FaultSeed int64
	// Refresh sets buffer-based GFC's periodic stage re-advertisement for
	// this run (loss repair under faulted feedback); zero keeps the
	// edge-triggered default and the clean-run traces.
	Refresh units.Time
}

// RingTopology builds the topology RunRing simulates, so fault plans can be
// compiled against the exact link set.
func RingTopology(hostsPerSwitch int) *topology.Topology {
	if hostsPerSwitch == 0 {
		hostsPerSwitch = 1
	}
	return topology.RingHosts(3, hostsPerSwitch, topology.DefaultLinkParams())
}

// RunRing executes the §6.1 ring experiment under one scheme with the
// testbed parameters (1 MB buffers, τ = 90 µs).
func RunRing(cfg RingConfig) (*RingResult, error) {
	if cfg.Duration == 0 {
		cfg.Duration = 60 * units.Millisecond
	}
	if cfg.HostsPerSwitch == 0 {
		cfg.HostsPerSwitch = 1
	}
	topo := RingTopology(cfg.HostsPerSwitch)
	simCfg, fp := TestbedParams()
	if cfg.Tau > 0 {
		simCfg.Tau = cfg.Tau
		// Re-derive the GFC thresholds for the new τ so the safety
		// bounds hold (B1 ≤ Bm − 2Cτ with Bm defaulted by the
		// factory).
		fp.B1 = 0
		fp.B0 = 0
	}
	fp.Refresh = cfg.Refresh
	simCfg.FlowControl = fp.Factory(cfg.FC)
	simCfg.Scheduling = cfg.Scheduling
	simCfg.Metrics = cfg.Metrics
	var inj *faults.Injector
	if cfg.Faults != nil {
		inj = cfg.Faults.NewInjector(cfg.FaultSeed)
		simCfg.Faults = inj
	}

	res := &RingResult{FC: cfg.FC, Queue: &stats.Series{}, Rate: &stats.Series{}}
	s1 := topo.MustLookup("S1")
	h1 := topo.MustLookup("H1")
	arrivals := stats.NewBinCounter(100 * units.Microsecond)
	simCfg.Trace = &netsim.Trace{
		OnQueue: func(t units.Time, node topology.NodeID, port, _ int, q units.Size) {
			if node == s1 && port == 0 {
				res.Queue.Append(t, float64(q))
			}
		},
		OnArrival: func(t units.Time, node topology.NodeID, pkt *netsim.Packet) {
			if node == s1 && pkt.Flow.Src == h1 {
				arrivals.Add(t, pkt.Size)
			}
		},
	}
	net, err := netsim.New(topo, simCfg)
	if err != nil {
		return nil, err
	}
	var flows []*netsim.Flow
	for i, path := range routing.RingHostsClockwisePaths(topo, 3, cfg.HostsPerSwitch) {
		f := &netsim.Flow{
			ID:   i + 1,
			Src:  path[0].Node,
			Dst:  path[len(path)-1].Link.Other(path[len(path)-1].Node),
			Path: path,
		}
		if err := net.AddFlow(f, 0); err != nil {
			return nil, err
		}
		flows = append(flows, f)
	}
	det := deadlock.NewDetector(net)
	det.Install()
	net.Run(cfg.Duration)

	for i, r := range arrivals.Rates() {
		res.Rate.Append(units.Time(i)*arrivals.Width, float64(r))
	}
	res.SteadyQueue = units.Size(res.Queue.MeanAfter(cfg.Duration * 3 / 4))
	res.SteadyRate = units.Rate(res.Rate.MeanAfter(cfg.Duration * 3 / 4))
	res.Drops = net.Drops()
	for i, f := range flows {
		res.Delivered += f.Delivered
		if i == 0 || f.Delivered < res.MinFlow {
			res.MinFlow = f.Delivered
		}
	}
	if inj != nil {
		res.FaultStats = inj.Stats()
	}
	if rep := det.Deadlocked(); rep != nil {
		res.Deadlocked = true
		res.DeadlockAt = rep.At
		res.DeadlockKind = rep.Kind
	}
	return res, nil
}
