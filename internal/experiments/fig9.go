package experiments

import (
	"context"
	"fmt"

	"github.com/gfcsim/gfc/internal/deadlock"
	"github.com/gfcsim/gfc/internal/faults"
	"github.com/gfcsim/gfc/internal/metrics"
	"github.com/gfcsim/gfc/internal/netsim"
	"github.com/gfcsim/gfc/internal/scenario"
	"github.com/gfcsim/gfc/internal/stats"
	"github.com/gfcsim/gfc/internal/topology"
	"github.com/gfcsim/gfc/internal/units"
)

// RingResult holds one Figures 9/10 run: the queue and input-rate traces of
// the switch port connecting H1, plus the deadlock verdict.
type RingResult struct {
	FC         FC
	Deadlocked bool
	DeadlockAt units.Time
	// DeadlockKind distinguishes a circular wait from a fault-wedged
	// channel (meaningful only when Deadlocked).
	DeadlockKind deadlock.Kind
	// DCFITDeadlocked / DCFITAt report the in-data-plane detector's
	// verdict when RingConfig.Detector installed it ("dcfit" or "both").
	DCFITDeadlocked bool
	DCFITAt         units.Time
	Queue           *stats.Series // ingress S1←H1 occupancy
	Rate            *stats.Series // H1's achieved input rate, 100 µs bins
	// SteadyQueue / SteadyRate average the final quarter of the run
	// (≈840 KB / 5 Gb/s for buffer-based GFC in the paper's testbed,
	// ≈745 KB / 5 Gb/s for time-based).
	SteadyQueue units.Size
	SteadyRate  units.Rate
	Drops       int64
	// Delivered totals the bytes every flow got to its destination;
	// MinFlow is the worst-served flow's share (zero means a flow was
	// starved outright — the per-port progress criterion of the fault
	// matrix).
	Delivered units.Size
	MinFlow   units.Size
	// FaultStats reports what the run's injector actually did (zero when
	// the run was clean).
	FaultStats faults.Stats
}

// RingConfig parameterises the Figures 9/10 testbed reproduction.
type RingConfig struct {
	FC       FC
	Duration units.Time // default 60 ms
	// HostsPerSwitch: 1 gives the paper's critically loaded testbed
	// topology, where GFC settles at its steady state; 2 adds the
	// sibling hosts whose extra injectors squeeze transit traffic and
	// make the cyclic buffers fill — the deadlock-formation regime for
	// PFC/CBFC. Default 1.
	HostsPerSwitch int
	Scheduling     netsim.Scheduling
	// Tau overrides the testbed's 90 µs worst-case feedback latency
	// used for parameter derivation (ablations).
	Tau units.Time
	// Metrics, when non-nil, is attached to the simulation (fresh,
	// unbound) and collects per-channel counters, occupancy series and
	// invariant verdicts alongside the figure's own traces.
	Metrics *metrics.Registry
	// Faults, when non-nil, injects the compiled fault plan: its timeline
	// is scheduled on the run's engine and feedback emissions consult a
	// fresh injector seeded with FaultSeed. The plan must be compiled on
	// the same ring topology RunRing builds (RingTopology).
	Faults    *faults.Plan
	FaultSeed int64
	// Refresh sets buffer-based GFC's periodic stage re-advertisement for
	// this run (loss repair under faulted feedback); zero keeps the
	// edge-triggered default and the clean-run traces.
	Refresh units.Time
	// Detector selects the deadlock detector(s), as in
	// scenario.RunSpec.Detector: "" or "global", "dcfit", or "both".
	Detector string
	// Ctx and Budget, when either is set, run the simulation under the
	// netsim governor (RunBounded) instead of the uninstrumented Run: the
	// context is polled and the budget enforced, and a tripped governor
	// surfaces as a *netsim.RunError. Left zero, the historic ungoverned
	// path runs — bit-identical to every pinned fig9 golden.
	Ctx    context.Context
	Budget netsim.Budget
}

// RingTopology builds the topology RunRing simulates, so fault plans can be
// compiled against the exact link set.
func RingTopology(hostsPerSwitch int) *topology.Topology {
	if hostsPerSwitch == 0 {
		hostsPerSwitch = 1
	}
	return topology.RingHosts(3, hostsPerSwitch, topology.DefaultLinkParams())
}

// RunRing executes the §6.1 ring experiment under one scheme with the
// testbed parameters (1 MB buffers, τ = 90 µs). It is a thin Spec literal
// over scenario.Build; only the figure's own trace collection stays here.
func RunRing(cfg RingConfig) (*RingResult, error) {
	if cfg.Duration == 0 {
		cfg.Duration = 60 * units.Millisecond
	}
	if cfg.HostsPerSwitch == 0 {
		cfg.HostsPerSwitch = 1
	}
	spec := scenario.Spec{
		Name:     "fig9-ring",
		Topology: scenario.TopologySpec{Builder: "ring", N: 3, HostsPerSwitch: cfg.HostsPerSwitch},
		Workload: scenario.WorkloadSpec{Pattern: "ring-clockwise"},
		Scheme: scenario.SchemeSpec{
			FC: cfg.FC, Preset: "testbed",
			Params: scenario.FCParams{Refresh: cfg.Refresh},
		},
		Sim: scenario.SimSpec{Scheduling: cfg.Scheduling.String()},
		Run: scenario.RunSpec{
			DurationNs: cfg.Duration, DetectDeadlock: true,
			Detector: cfg.Detector, Analytic: true,
		},
	}
	if cfg.Tau > 0 {
		// Tau ablation: re-derive the GFC thresholds for the new τ so
		// the safety bounds hold (B1 ≤ Bm − 2Cτ with Bm defaulted by
		// the factory). The preset's B1/B0 are pinned for τ = 90 µs,
		// so spell the params out instead of overlaying.
		simCfg, fp := TestbedParams()
		fp.B1 = 0
		fp.B0 = 0
		fp.Refresh = cfg.Refresh
		spec.Scheme = scenario.SchemeSpec{FC: cfg.FC, Params: fp}
		spec.Sim.BufferBytes = simCfg.BufferSize
		spec.Sim.TauNs = cfg.Tau
	}

	res := &RingResult{FC: cfg.FC, Queue: &stats.Series{}, Rate: &stats.Series{}}
	arrivals := stats.NewBinCounter(100 * units.Microsecond)
	sim, err := scenario.Build(spec, &scenario.Overrides{
		Metrics:   cfg.Metrics,
		FaultPlan: cfg.Faults,
		FaultSeed: cfg.FaultSeed,
		Trace: func(topo *topology.Topology) *netsim.Trace {
			s1 := topo.MustLookup("S1")
			h1 := topo.MustLookup("H1")
			return &netsim.Trace{
				OnQueue: func(t units.Time, node topology.NodeID, port, _ int, q units.Size) {
					if node == s1 && port == 0 {
						res.Queue.Append(t, float64(q))
					}
				},
				OnArrival: func(t units.Time, node topology.NodeID, pkt *netsim.Packet) {
					if node == s1 && pkt.Flow.Src == h1 {
						arrivals.Add(t, pkt.Size)
					}
				},
			}
		},
	})
	if err != nil {
		return nil, err
	}
	net := sim.Net
	if cfg.Ctx != nil || cfg.Budget != (netsim.Budget{}) {
		ctx := cfg.Ctx
		if ctx == nil {
			ctx = context.Background()
		}
		if err := net.RunBounded(ctx, cfg.Duration, cfg.Budget); err != nil {
			return nil, err
		}
	} else {
		net.Run(cfg.Duration)
	}

	for i, r := range arrivals.Rates() {
		res.Rate.Append(units.Time(i)*arrivals.Width, float64(r))
	}
	res.SteadyQueue = units.Size(res.Queue.MeanAfter(cfg.Duration * 3 / 4))
	res.SteadyRate = units.Rate(res.Rate.MeanAfter(cfg.Duration * 3 / 4))
	res.Drops = net.Drops()
	for i, f := range sim.Flows {
		res.Delivered += f.Delivered
		if i == 0 || f.Delivered < res.MinFlow {
			res.MinFlow = f.Delivered
		}
	}
	if sim.Injector != nil {
		res.FaultStats = sim.Injector.Stats()
	}
	switch {
	case sim.Detector != nil:
		if rep := sim.Detector.Deadlocked(); rep != nil {
			res.Deadlocked = true
			res.DeadlockAt = rep.At
			res.DeadlockKind = rep.Kind
		}
	case sim.DCFIT != nil:
		// Detector "dcfit" alone: its verdict is the run's verdict.
		if rep := sim.DCFIT.Deadlocked(); rep != nil {
			res.Deadlocked = true
			res.DeadlockAt = rep.At
			res.DeadlockKind = rep.Kind
		}
	}
	if sim.DCFIT != nil {
		if rep := sim.DCFIT.Deadlocked(); rep != nil {
			res.DCFITDeadlocked = true
			res.DCFITAt = rep.At
		}
	}
	if err := sim.CheckAnalytic(); err != nil {
		return res, fmt.Errorf("fig9 %v: %w", cfg.FC, err)
	}
	return res, nil
}
